package dpreverser_test

import (
	"strings"
	"testing"

	"dpreverser/internal/experiments"
	"dpreverser/internal/vehicle"
)

// TestEndToEndThreeTransports drives the complete system — vehicle
// simulation, diagnostic tool, cyber-physical rig, reverse-engineering
// pipeline, ground-truth scoring — across one car per transport family.
func TestEndToEndThreeTransports(t *testing.T) {
	opt := experiments.Options{Quick: true, Seed: 5}
	cars := []string{
		"Car A", // UDS over ISO 15765-2
		"Car C", // KWP 2000 over VW TP 2.0
		"Car F", // UDS over BMW extended addressing
	}
	var runs []*experiments.CarRun
	for _, car := range cars {
		p, ok := vehicle.ProfileByCar(car)
		if !ok {
			t.Fatalf("unknown car %q", car)
		}
		run, err := experiments.RunCar(p, opt)
		if err != nil {
			t.Fatalf("%s: %v", car, err)
		}
		defer run.Vehicle.Close()
		runs = append(runs, run)
	}

	rows := experiments.Precision(runs)
	total := experiments.PrecisionTotals(rows)
	wantFormulas := 0
	for _, car := range cars {
		p, _ := vehicle.ProfileByCar(car)
		wantFormulas += p.NumFormulaESVs
	}
	if total.FormulaESVs != wantFormulas {
		t.Fatalf("formula streams = %d, want %d", total.FormulaESVs, wantFormulas)
	}
	if total.CorrectGP < wantFormulas*9/10 {
		t.Fatalf("GP correct = %d/%d across three transports", total.CorrectGP, wantFormulas)
	}

	// ECRs on the cars that define them.
	t11 := experiments.Table11(runs)
	for _, row := range t11 {
		p, _ := vehicle.ProfileByCar(row.Car)
		if row.NumECR != p.NumECRs {
			t.Errorf("%s: ECRs = %d, want %d", row.Car, row.NumECR, p.NumECRs)
		}
	}
}

// TestEndToEndSemanticsRecovered verifies the §3.4 deliverable across a
// whole car: every recovered stream's label is a name the manufacturer
// actually assigned.
func TestEndToEndSemanticsRecovered(t *testing.T) {
	p, _ := vehicle.ProfileByCar("Car O")
	run, err := experiments.RunCar(p, experiments.Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Vehicle.Close()

	truthNames := map[string]bool{}
	for _, b := range run.Vehicle.Bindings() {
		for _, did := range b.ECU.DIDs() {
			spec, _ := b.ECU.DIDSpecFor(did)
			truthNames[spec.Name] = true
		}
	}
	labelled, matched := 0, 0
	for _, esv := range run.Result.ESVs {
		if esv.Key.Proto != "UDS" || esv.Label == "" {
			continue
		}
		labelled++
		if truthNames[esv.Label] {
			matched++
		}
	}
	if labelled == 0 {
		t.Fatal("no labels recovered")
	}
	// OCR noise may corrupt an occasional majority label; require ≥90%.
	if matched*10 < labelled*9 {
		t.Fatalf("semantics: %d/%d labels match manufacturer names", matched, labelled)
	}
}

// TestEndToEndAppStudyHeadline reproduces §4.6's comparison conclusion:
// professional tools yield far more UDS/KWP knowledge than apps.
func TestEndToEndAppStudyHeadline(t *testing.T) {
	rows := experiments.Table12()
	udsKwpApps := map[string]bool{}
	for _, r := range rows {
		if r.Kind != "OBD-II" {
			udsKwpApps[r.App] = true
		}
	}
	if len(udsKwpApps) != 3 {
		t.Fatalf("apps with UDS/KWP formulas = %d, want 3", len(udsKwpApps))
	}
	for app := range udsKwpApps {
		if !strings.HasPrefix(app, "Carly") {
			t.Fatalf("unexpected UDS/KWP app %q", app)
		}
	}
}
