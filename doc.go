// Package dpreverser is a from-scratch Go reproduction of DP-Reverser, the
// cyber-physical system for automatically reverse engineering vehicle
// diagnostic protocols (Yu et al., USENIX Security 2022; poster at ICDCS
// 2023).
//
// The physical testbed — 18 vehicles, commercial diagnostic tools, a
// robotic clicker and two cameras — is replaced by deterministic
// simulations (see DESIGN.md for the substitution inventory); everything
// above the hardware boundary, from the ISO 15765-2 / VW TP 2.0 transports
// through the genetic-programming formula inference, is implemented in
// full under internal/.
//
// Entry points:
//
//   - cmd/dpreverse — reverse engineer one simulated car end to end
//   - cmd/experiments — regenerate every table of the paper's evaluation
//   - cmd/appscan — the §4.6 telematics-app formula analysis
//   - examples/ — runnable walkthroughs of the public API
//
// The library entry point is reverser.New(opts...) and
// (*Reverser).Reverse(ctx, capture): a context-aware pipeline that fans
// formula inference across a worker pool while staying byte-identical at
// any parallelism (see the "Public API" section of README.md).
//
// The benchmarks in bench_test.go regenerate the performance-flavoured
// artifacts (Tables 8 and 9, the OCR and planner measurements) plus
// ablations of the design choices DESIGN.md calls out.
package dpreverser
