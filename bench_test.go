package dpreverser_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dpreverser/internal/appanalysis"
	"dpreverser/internal/can"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/experiments"
	"dpreverser/internal/gp"
	"dpreverser/internal/isotp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/regress"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/scaling"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
	"dpreverser/internal/vwtp"
)

// --- E5 / Table 8: formula-inference cost per algorithm ---

// udsDataset is a representative one-variable (UDS) inference input.
func udsDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for x := 0.0; x <= 255; x += 4 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 0.75*x-48)
	}
	return d
}

// kwpDataset is a representative two-variable (KWP 2000) inference input
// with the paper's engine-speed product formula.
func kwpDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for x0 := 200.0; x0 <= 250; x0 += 10 {
		for x1 := 0.0; x1 <= 255; x1 += 16 {
			d.X = append(d.X, []float64{x0, x1})
			d.Y = append(d.Y, x0*x1/5)
		}
	}
	return d
}

func benchGP(b *testing.B, d *gp.Dataset) {
	cfg := gp.DefaultConfig()
	cfg.StopFitness = -1 // full 30×1000 budget, as Table 8 accounts it
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := gp.Run(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPInferUDS regenerates Table 8's UDS row (GP column).
func BenchmarkGPInferUDS(b *testing.B) { benchGP(b, udsDataset()) }

// BenchmarkGPInferKWP regenerates Table 8's KWP row (GP column).
func BenchmarkGPInferKWP(b *testing.B) { benchGP(b, kwpDataset()) }

// BenchmarkGPInferOBD regenerates the Table 5 workload: the two-byte
// engine-speed PID with per-byte variables.
func BenchmarkGPInferOBD(b *testing.B) {
	d := &gp.Dataset{}
	for hi := 0.0; hi <= 64; hi += 4 {
		for lo := 0.0; lo <= 255; lo += 32 {
			d.X = append(d.X, []float64{hi, lo})
			d.Y = append(d.Y, (256*hi+lo)/4)
		}
	}
	benchGP(b, d)
}

// BenchmarkLinearRegression regenerates Table 8's linear-regression column.
func BenchmarkLinearRegression(b *testing.B) {
	d := udsDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := regress.LinearFit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolyFit regenerates Table 8's polynomial column.
func BenchmarkPolyFit(b *testing.B) {
	d := udsDataset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := regress.PolyFit(d, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6 / Table 9: transport assembly throughput ---

// BenchmarkISOTPAssemble measures reassembling a realistic multi-frame UDS
// capture (the Table 9 screening+assembly path).
func BenchmarkISOTPAssemble(b *testing.B) {
	var frames []can.Frame
	payload := make([]byte, 60)
	for i := range payload {
		payload[i] = byte(i)
	}
	fields, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		frames = append(frames, can.MustFrame(0x700, []byte{0x02, 0x3E, 0x00, 0, 0, 0, 0, 0}))
		for _, f := range fields {
			frames = append(frames, can.MustFrame(0x701, f))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msgs, _ := reverser.Assemble(frames)
		if len(msgs) != 100 {
			b.Fatalf("messages = %d", len(msgs))
		}
	}
}

// BenchmarkVWTPAssemble measures reassembling VW TP 2.0 traffic.
func BenchmarkVWTPAssemble(b *testing.B) {
	var frames []can.Frame
	frames = append(frames, can.MustFrame(0x201, []byte{0x00, 0xD0, 0x41, 0x07, 0x01, 0x03, 0x01}))
	payload := make([]byte, 34)
	seq := byte(0)
	for r := 0; r < 100; r++ {
		fields, err := vwtp.Segment(payload, 15, seq)
		if err != nil {
			b.Fatal(err)
		}
		seq = (seq + byte(len(fields))) & 0x0F
		for _, f := range fields {
			frames = append(frames, can.MustFrame(0x301, f))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msgs, _ := reverser.Assemble(frames)
		if len(msgs) != 100 {
			b.Fatalf("messages = %d", len(msgs))
		}
	}
}

// --- E1 / Table 4: OCR throughput ---

// BenchmarkOCRRecognize measures recognising one live-data screen.
func BenchmarkOCRRecognize(b *testing.B) {
	p, _ := vehicle.ProfileByCar("Car L")
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		b.Fatal(err)
	}
	defer tool.Close()
	defer veh.Close()
	tool.ClickWidget("home.diag")
	tool.ClickWidget("ecu.0")
	tool.ClickWidget("func.stream")
	tool.SelectAllOnECU()
	tool.ClickWidget("sel.ok")
	tool.Poll()
	screen := tool.Screen()
	engine := ocr.NewEngine(ocr.HighQualityValueErr, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := engine.Recognize(screen, time.Duration(i))
		if len(f.Rows) == 0 {
			b.Fatal("no rows recognised")
		}
	}
}

// --- E3: full pipeline on one car ---

// BenchmarkPipelineOneCar measures collection + reverse engineering of one
// small car end to end (reduced GP budget; the full budget is the
// experiment harness's job).
func BenchmarkPipelineOneCar(b *testing.B) {
	p, _ := vehicle.ProfileByCar("Car M")
	for i := 0; i < b.N; i++ {
		clock := sim.NewClock(0)
		tool, veh, err := diagtool.ForProfile(p, clock)
		if err != nil {
			b.Fatal(err)
		}
		cfg := rig.DefaultConfig()
		cfg.ReadDuration = 10 * time.Second
		cfg.AlignDuration = 5 * time.Second
		r := rig.New(tool, veh, cfg)
		cap, err := r.RunFull()
		if err != nil {
			b.Fatal(err)
		}
		rcfg := reverser.DefaultConfig()
		rcfg.GP.PopulationSize = 300
		rcfg.GP.Generations = 20
		rv := reverser.New(reverser.WithConfig(rcfg), reverser.WithParallelism(1))
		if _, err := rv.Reverse(context.Background(), cap); err != nil {
			b.Fatal(err)
		}
		r.Close()
		tool.Close()
		veh.Close()
	}
}

// --- Parallel inference engine ---

// benchCapture collects one car once so the reversal benchmarks measure
// analysis alone, not the rig session.
func benchCapture(b *testing.B, car string) rig.Capture {
	b.Helper()
	p, _ := vehicle.ProfileByCar(car)
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		b.Fatal(err)
	}
	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 10 * time.Second
	cfg.AlignDuration = 5 * time.Second
	r := rig.New(tool, veh, cfg)
	cap, err := r.RunFull()
	if err != nil {
		b.Fatal(err)
	}
	r.Close()
	tool.Close()
	veh.Close()
	return cap
}

// BenchmarkReverseOneCar measures the reversal of one pre-collected
// capture at several worker-pool sizes. Per-stream seeding makes every
// variant produce identical formulas; only the wall clock moves.
func BenchmarkReverseOneCar(b *testing.B) {
	cap := benchCapture(b, "Car M")
	rcfg := reverser.DefaultConfig()
	rcfg.GP.PopulationSize = 300
	rcfg.GP.Generations = 20
	rcfg.GP.StopFitness = -1 // fixed budget so worker counts are comparable
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			rv := reverser.New(reverser.WithConfig(rcfg), reverser.WithParallelism(workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rv.Reverse(context.Background(), cap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPParallelEvaluation measures the GP engine's chunked
// population evaluation on one dataset at several Parallelism settings.
func BenchmarkGPParallelEvaluation(b *testing.B) {
	d := kwpDataset()
	cfg := gp.DefaultConfig()
	cfg.StopFitness = -1
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := cfg
			cfg.Parallelism = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := gp.Run(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E8 / Table 11: control-record extraction ---

// BenchmarkECRExtraction measures the active-test capture + three-message
// pattern recovery on a 10-ECR car.
func BenchmarkECRExtraction(b *testing.B) {
	p, _ := vehicle.ProfileByCar("Car I")
	for i := 0; i < b.N; i++ {
		clock := sim.NewClock(0)
		tool, veh, err := diagtool.ForProfile(p, clock)
		if err != nil {
			b.Fatal(err)
		}
		cfg := rig.DefaultConfig()
		cfg.TestDuration = time.Second
		r := rig.New(tool, veh, cfg)
		if err := r.CollectActiveTests(); err != nil {
			b.Fatal(err)
		}
		res, err := reverser.New().Reverse(context.Background(), r.Capture())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ECRs) != p.NumECRs {
			b.Fatalf("ECRs = %d, want %d", len(res.ECRs), p.NumECRs)
		}
		r.Close()
		tool.Close()
		veh.Close()
	}
}

// --- E9 / Table 12: app taint analysis ---

// BenchmarkAppTaintAnalysis measures Algorithm 1 over the largest app in
// the corpus (Carly for Mercedes, 2092 formulas).
func BenchmarkAppTaintAnalysis(b *testing.B) {
	var target *appanalysis.App
	for _, app := range appanalysis.Corpus() {
		if app.Name == "Carly for Mercedes" {
			target = app
		}
	}
	if target == nil {
		b.Fatal("corpus missing Carly for Mercedes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		formulas := appanalysis.Analyze(target)
		if len(formulas) != 1624+468 {
			b.Fatalf("formulas = %d", len(formulas))
		}
	}
}

// --- E11: click planning ---

// BenchmarkPlannerNearestNeighbor measures planning a 14-ESV page.
func BenchmarkPlannerNearestNeighbor(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	points := make([]rig.Point, 14)
	for i := range points {
		points[i] = rig.Point{X: rng.Intn(1024), Y: rng.Intn(768)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		order := rig.NearestNeighbor(rig.Point{}, points)
		if len(order) != 14 {
			b.Fatal("tour incomplete")
		}
	}
}

// --- Ablations (DESIGN.md's called-out design choices) ---
// Each ablation reports a precision metric alongside the timing so the
// effect of the design choice is visible in the benchmark output.

// ablationDataset builds a magnitude-hostile inference problem: Y in the
// thousands, the case Table 2's scaling exists for.
func ablationDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for x := 0.0; x <= 255; x += 3 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 64*x+32) // the paper's RPM magnitude
	}
	return d
}

func ablationPrecision(b *testing.B, infer func(seed int64) (*gp.Node, error)) {
	truth := gp.NewBinary(gp.OpAdd,
		gp.NewBinary(gp.OpMul, gp.NewConst(64), gp.NewVar(0)), gp.NewConst(32))
	domain := ablationDataset().X
	correct := 0
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := infer(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		total++
		// The ablation's question is whether the slope is recovered at all;
		// the tolerance forgives the +32 offset (0.2% of full scale).
		if gp.EquivalentRel(f, truth, domain, 40, 0.05) {
			correct++
		}
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(correct)/float64(total), "precision")
	}
}

// ablationGPConfig is a deliberately small budget so the scaling ablations
// show their effect (with the paper's full budget even the handicapped
// variants often converge).
func ablationGPConfig(seed int64) gp.Config {
	cfg := gp.DefaultConfig()
	cfg.PopulationSize = 400
	cfg.Generations = 15
	cfg.Seed = seed
	return cfg
}

// BenchmarkAblationTable2ScalingOn infers with the paper's magnitude
// pre/post-scaling in place.
func BenchmarkAblationTable2ScalingOn(b *testing.B) {
	d := ablationDataset()
	ablationPrecision(b, func(seed int64) (*gp.Node, error) {
		cfg := ablationGPConfig(seed)
		cfg.DisableLinearScaling = true // isolate Table 2's effect
		res, err := scaling.Infer(d, cfg)
		return res.Best, err
	})
}

// BenchmarkAblationTable2ScalingOff infers on the raw magnitudes.
func BenchmarkAblationTable2ScalingOff(b *testing.B) {
	d := ablationDataset()
	ablationPrecision(b, func(seed int64) (*gp.Node, error) {
		cfg := ablationGPConfig(seed)
		cfg.DisableLinearScaling = true
		res, err := gp.Run(d, cfg)
		return res.Best, err
	})
}

// BenchmarkAblationLinearScalingOn measures the engine's built-in linear
// scaling (shape search + analytic coefficients).
func BenchmarkAblationLinearScalingOn(b *testing.B) {
	d := ablationDataset()
	ablationPrecision(b, func(seed int64) (*gp.Node, error) {
		res, err := gp.Run(d, ablationGPConfig(seed))
		return res.Best, err
	})
}

// BenchmarkAblationOCRFilterOn / Off measure the two-stage incorrect-value
// filter's effect on inference precision under OCR noise.
func benchOCRFilterAblation(b *testing.B, filter bool) {
	rng := rand.New(rand.NewSource(5))
	mkSamples := func() []ocr.Sample {
		var samples []ocr.Sample
		for i := 0; i < 60; i++ {
			v := 25 + 0.2*float64(i)
			if i%17 == 5 {
				v *= 100 // decimal-point loss
			}
			samples = append(samples, ocr.Sample{At: time.Duration(i) * time.Second, Value: v})
		}
		return samples
	}
	truth := gp.NewBinary(gp.OpAdd,
		gp.NewBinary(gp.OpMul, gp.NewConst(0.2), gp.NewVar(0)), gp.NewConst(25))
	correct, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples := mkSamples()
		if filter {
			samples = ocr.Filter(samples, 0, 400)
		}
		d := &gp.Dataset{}
		for _, s := range samples {
			x := s.At.Seconds()
			d.X = append(d.X, []float64{x})
			d.Y = append(d.Y, s.Value)
		}
		lr, err := regress.LinearFit(d)
		total++
		if err == nil && gp.EquivalentRel(lr.Tree, truth, d.X, 1.0, 0.03) {
			correct++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(correct)/float64(total), "precision")
	_ = rng
}

func BenchmarkAblationOCRFilterOn(b *testing.B)  { benchOCRFilterAblation(b, true) }
func BenchmarkAblationOCRFilterOff(b *testing.B) { benchOCRFilterAblation(b, false) }

// BenchmarkAblationPlanner compares the click-ordering strategies' tour
// lengths (reported as a metric, px per tour).
func BenchmarkAblationPlanner(b *testing.B) {
	for _, strategy := range []string{"nearest-neighbour", "random"} {
		b.Run(strategy, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			total := 0.0
			for i := 0; i < b.N; i++ {
				points := make([]rig.Point, 14)
				for j := range points {
					points[j] = rig.Point{X: rng.Intn(1024), Y: rng.Intn(768)}
				}
				start := rig.Point{}
				var order []rig.Point
				if strategy == "nearest-neighbour" {
					order = rig.NearestNeighbor(start, points)
				} else {
					order = rig.RandomOrder(points, rng)
				}
				total += rig.TourLength(start, order)
			}
			b.ReportMetric(total/float64(b.N), "px/tour")
		})
	}
}

// BenchmarkExperimentTable9 regenerates the Table 9 measurement end to end
// on the three relevant cars.
func BenchmarkExperimentTable9(b *testing.B) {
	opt := experiments.Options{Quick: true, Seed: 7}
	for i := 0; i < b.N; i++ {
		var runs []*experiments.CarRun
		for _, car := range []string{"Car A", "Car B", "Car C"} {
			p, _ := vehicle.ProfileByCar(car)
			run, err := experiments.RunCar(p, opt)
			if err != nil {
				b.Fatal(err)
			}
			runs = append(runs, run)
		}
		rows := experiments.Table9(runs)
		if len(rows) != 2 || rows[0].Total == 0 {
			b.Fatalf("table 9 rows = %+v", rows)
		}
		experiments.CloseRuns(runs)
	}
}
