// Quickstart: reverse engineer one simulated vehicle end to end.
//
// The program builds a Skoda Octavia with its LAUNCH X431 diagnostic tool,
// lets the robotic rig drive the tool while sniffing the OBD port and
// filming the screen, and then runs the DP-Reverser pipeline over the
// capture — printing the recovered request semantics and response formulas.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

func main() {
	// 1. Build the car and its diagnostic tool on one virtual clock.
	profile, _ := vehicle.ProfileByCar("Car A") // Skoda Octavia, UDS over ISO-TP
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(profile, clock)
	if err != nil {
		log.Fatal(err)
	}
	defer tool.Close()
	defer veh.Close()

	// 2. Let the cyber-physical rig collect a session: OBD alignment
	//    phase, data-stream recordings for every ECU, active tests.
	r := rig.New(tool, veh, rig.DefaultConfig())
	defer r.Close()
	capture, err := r.RunFull()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d CAN frames, %d video frames, %d clicks\n",
		len(capture.Frames), len(capture.UIFrames), len(capture.Clicks))

	// 3. Reverse engineer the capture. The pipeline only sees frames,
	//    OCR'd text and click timestamps — never the proprietary tables.
	//    Inference fans out across all CPUs; the result is identical at
	//    any worker count.
	rv := reverser.New() // options: WithGPConfig, WithParallelism, WithProgress, ...
	result, err := rv.Reverse(context.Background(), capture)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(result.Summary())

	// 4. Print a few recovered formulas.
	fmt.Println("\nsample of recovered formulas:")
	printed := 0
	for _, esv := range result.ESVs {
		if esv.Formula == nil || printed >= 8 {
			continue
		}
		fmt.Printf("  %-22s %-24s Y = %s\n", esv.Key, esv.Label+" ("+esv.Unit+")", esv.Formula)
		printed++
	}
	if len(result.ECRs) > 0 {
		fmt.Println("\nsample of recovered control records:")
		for i, ecr := range result.ECRs {
			if i >= 4 {
				break
			}
			fmt.Printf("  service %02X id %04X (%s): adjust state % X\n",
				ecr.Service, ecr.ID, ecr.Label, ecr.State)
		}
	}
}
