// Custom car: extend the library with your own vehicle definition.
//
// The fleet of Table 3 is just data — this example builds a vehicle that is
// not in the paper (an imaginary "Aurora EV") with hand-picked proprietary
// encodings, attaches a diagnostic tool, and checks that the DP-Reverser
// pipeline recovers the custom formulas without being told anything about
// them.
//
// Run with:
//
//	go run ./examples/customcar
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/ecu"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/signal"
	"dpreverser/internal/vehicle"
)

func main() {
	// An out-of-fleet profile. The generated ECU tables are driven by the
	// seed; for full control, a downstream user would assemble ecu.Config
	// values directly — shown below by overriding the battery ECU.
	profile := vehicle.Profile{
		Car: "Aurora EV", Model: "Aurora EV prototype",
		Protocol: vehicle.UDS, Transport: vehicle.ISOTP,
		Tool:           "AUTEL 919",
		NumFormulaESVs: 6, NumEnumESVs: 3,
		NumECRs: 2, ECRService: 0x2F,
		Seed: 777,
	}
	veh := vehicle.Build(profile, nil)
	defer veh.Close()

	// Show what the manufacturer "defined" (the secret the pipeline must
	// recover).
	fmt.Println("proprietary tables (hidden from the pipeline):")
	for _, b := range veh.Bindings() {
		for _, did := range b.ECU.DIDs() {
			spec, _ := b.ECU.DIDSpecFor(did)
			if !spec.Enum {
				fmt.Printf("  DID %04X  %-28s %s\n", did, spec.Name, spec.Codec.Expr)
			}
		}
	}

	tool, err := diagtool.New(profile.Tool, veh)
	if err != nil {
		log.Fatal(err)
	}
	defer tool.Close()

	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 20 * time.Second
	r := rig.New(tool, veh, cfg)
	defer r.Close()
	capture, err := r.RunFull()
	if err != nil {
		log.Fatal(err)
	}

	result, err := reverser.New().Reverse(context.Background(), capture)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrecovered by the pipeline:")
	for _, esv := range result.ESVs {
		if esv.Key.Proto != "UDS" || esv.Enum || esv.Formula == nil {
			continue
		}
		fmt.Printf("  DID %04X  %-28s Y = %s\n", esv.Key.DID, esv.Label, esv.Formula)
	}

	// Direct ECU construction for full control over one unit.
	battery := ecu.New(ecu.Config{
		Name:  "Battery Management",
		Clock: veh.Clock,
		DIDs: []ecu.DIDSpec{{
			DID: 0xB042, Name: "Pack temperature", Unit: "°C",
			Codec:  ecu.AffineCodec(1, 0.5, -40),
			Signal: signal.CoolantTemp(999),
			Min:    -40, Max: 87.5,
		}},
	})
	resp := battery.HandleUDS([]byte{0x22, 0xB0, 0x42})
	fmt.Printf("\nhand-built ECU answers 22 B0 42 with % X\n", resp)
}
