// Attack replay (paper §9.3 / Table 13): reverse engineer a vehicle once,
// then inject the recovered diagnostic messages into a *different* vehicle
// of the same model while it is "running", and verify the actions trigger.
//
// This is the paper's threat demonstration: an attacker rents the same car
// model, runs DP-Reverser against it, and can then unlock doors or drive
// actuators on any car of that model through a compromised dongle.
//
// Run with:
//
//	go run ./examples/attackreplay
package main

import (
	"fmt"
	"log"
	"time"

	"dpreverser/internal/experiments"
	"dpreverser/internal/kwp"
	"dpreverser/internal/uds"
	"dpreverser/internal/vehicle"
)

func main() {
	// Step 1: the attacker's lab car — reverse engineer a Lexus NX300.
	profile, _ := vehicle.ProfileByCar("Car D")
	fmt.Printf("reverse engineering a rented %s ...\n", profile.Model)
	run, err := experiments.RunCar(profile, experiments.Options{Quick: true, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	defer run.Vehicle.Close()
	fmt.Printf("recovered %d readable streams and %d control records\n\n",
		len(run.Result.ESVs), len(run.Result.ECRs))

	// Step 2: the victim car — same model, fresh instance, "driving".
	victim := vehicle.Build(profile, nil)
	defer victim.Close()
	victim.Clock.Advance(90 * time.Second) // the car has been driving for a while

	fmt.Printf("injecting into a running %s:\n", profile.Model)

	// Replay a recovered read: the attacker learns live data.
	for _, esv := range run.Result.ESVs {
		if esv.Key.Proto != "UDS" || esv.Formula == nil {
			continue
		}
		req, err := uds.BuildRDBIRequest(esv.Key.DID)
		if err != nil {
			log.Fatal(err)
		}
		resp := inject(victim, req)
		if uds.IsPositiveResponse(resp, uds.SIDReadDataByIdentifier) {
			records, err := uds.ParseRDBIResponse(resp, []uint16{esv.Key.DID})
			if err == nil && len(records) == 1 {
				raw := 0.0
				for _, b := range records[0].Data {
					raw = raw*256 + float64(b)
				}
				value := esv.Formula.Eval([]float64{raw})
				fmt.Printf("  read  % X -> %s = %.2f %s (via recovered formula Y = %s)\n",
					req, esv.Label, value, esv.Unit, esv.Formula)
			}
		}
		break
	}

	// Replay a recovered control record: the attacker drives an actuator.
	for _, ecr := range run.Result.ECRs {
		if !ecr.PatternComplete() {
			continue
		}
		adjust := append([]byte{kwp.SIDIOControlByLocalIdentifier, byte(ecr.ID), uds.IOShortTermAdjustment}, ecr.State...)
		resp := inject(victim, adjust)
		active := actuatorActive(victim, ecr.Label)
		fmt.Printf("  drive % X -> %q responds %02X..., actuator %q active: %v\n",
			adjust, ecr.Label, first(resp), ecr.Label, active)

		// Return control, as the recovered pattern prescribes.
		inject(victim, []byte{kwp.SIDIOControlByLocalIdentifier, byte(ecr.ID), uds.IOReturnControlToECU})
		fmt.Printf("  return control -> actuator active: %v\n", actuatorActive(victim, ecr.Label))
		break
	}
}

// inject probes every ECU of the victim until one answers positively.
func inject(v *vehicle.Vehicle, req []byte) []byte {
	var last []byte
	for _, b := range v.Bindings() {
		client, err := vehicle.Connect(v, b)
		if err != nil {
			continue
		}
		resp, err := client.Request(req)
		client.Close()
		if err != nil {
			continue
		}
		last = resp
		if len(resp) > 0 && resp[0] == req[0]+0x40 {
			return resp
		}
	}
	return last
}

func actuatorActive(v *vehicle.Vehicle, name string) bool {
	for _, e := range v.ECUs() {
		if e.ActuatorActive(name) {
			return true
		}
	}
	return false
}

func first(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}
