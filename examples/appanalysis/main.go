// App analysis walkthrough (paper §9.2, Fig. 9): build the paper's example
// response-processing method in the statement IR, run the forward-taint /
// dependency analysis over it, and show the extracted formula — then scan
// the full 160-app corpus for the Table 12 headline.
//
// Run with:
//
//	go run ./examples/appanalysis
package main

import (
	"fmt"

	"dpreverser/internal/appanalysis"
)

func main() {
	// Fig. 9's decompiled method, statement by statement: read the
	// response, check the "41 0C" prefix, split out two hex fragments,
	// parse them, and compute d1*0.25 + 64*d0.
	m := appanalysis.Method{Name: "processResponse"}
	add := func(s appanalysis.Stmt) int {
		s.ID = len(m.Stmts)
		m.Stmts = append(m.Stmts, s)
		return s.ID
	}
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "r7",
		Callee: "InputStream.read", CtrlDep: -1})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "z0",
		Callee: "String.startsWith", Uses: []string{"r7"}, StrConst: "41 0C", CtrlDep: -1})
	ifID := add(appanalysis.Stmt{Kind: appanalysis.StmtIf, Uses: []string{"z0"}, CtrlDep: -1})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "r7c",
		Callee: "String.replace", Uses: []string{"r7"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "r9",
		Callee: "String.split", Uses: []string{"r7c"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "f0",
		Callee: "Array.index", Uses: []string{"r9"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "v1",
		Callee: "Integer.parseInt", Uses: []string{"f0"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "f1",
		Callee: "Array.index", Uses: []string{"r9"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtInvoke, Def: "v2",
		Callee: "Integer.parseInt", Uses: []string{"f1"}, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtBinOp, Def: "a",
		Uses: []string{"v1"}, Op: "*", ConstVal: 64, HasConst: true, ConstLeft: true, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtBinOp, Def: "b",
		Uses: []string{"v2"}, Op: "*", ConstVal: 0.25, HasConst: true, CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtBinOp, Def: "y",
		Uses: []string{"b", "a"}, Op: "+", CtrlDep: ifID})
	add(appanalysis.Stmt{Kind: appanalysis.StmtDisplay, Uses: []string{"y"}, CtrlDep: ifID})

	app := &appanalysis.App{Name: "Fig9 example", Methods: []appanalysis.Method{m}}
	fmt.Println("Algorithm 1 over the Fig. 9 method:")
	for _, f := range appanalysis.Analyze(app) {
		fmt.Printf("  %s\n", f)
	}

	// Table 12 headline over the whole corpus.
	fmt.Println("\nScanning the 160-app corpus:")
	udsKwpApps, obdApps, empty := 0, 0, 0
	for _, a := range appanalysis.Corpus() {
		counts := appanalysis.CountByKind(appanalysis.Analyze(a))
		switch {
		case counts[appanalysis.KindUDS] > 0 || counts[appanalysis.KindKWP] > 0:
			udsKwpApps++
		case counts[appanalysis.KindOBD] > 0:
			obdApps++
		default:
			empty++
		}
	}
	fmt.Printf("  %d apps with UDS/KWP 2000 formulas (paper: 3)\n", udsKwpApps)
	fmt.Printf("  %d apps with OBD-II formulas only\n", obdApps)
	fmt.Printf("  %d apps with no extractable formulas\n", empty)
}
