// Fleet survey: run the DP-Reverser pipeline over all 18 simulated
// vehicles (paper Table 3) and print the per-car recovery statistics that
// Tables 6, 9 and 11 are built from, plus a comparison of the three
// formula-inference algorithms.
//
// Run with:
//
//	go run ./examples/fleet            # full fleet, reduced GP budget
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dpreverser/internal/experiments"
	"dpreverser/internal/vehicle"
)

func main() {
	opt := experiments.Options{Quick: true, Seed: 11}

	fmt.Println("Collecting and reverse engineering the 18-car fleet ...")
	runs, err := experiments.RunFleet(opt)
	if err != nil {
		log.Fatal(err)
	}
	defer experiments.CloseRuns(runs)

	rows := experiments.Precision(runs)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CAR\tMODEL\tPROTOCOL\tFORMULA ESVs\tGP OK\tLINEAR OK\tPOLY OK\tENUM ESVs\tECRs")
	byCar := map[string]*experiments.CarRun{}
	for _, r := range runs {
		byCar[r.Profile.Car] = r
	}
	for _, row := range rows {
		run := byCar[row.Car]
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Car, run.Profile.Model, run.Profile.Protocol,
			row.FormulaESVs, row.CorrectGP, row.CorrectLinear, row.CorrectPoly,
			row.EnumESVs, len(run.Result.ECRs))
	}
	total := experiments.PrecisionTotals(rows)
	fmt.Fprintf(w, "TOTAL\t\t\t%d\t%d\t%d\t%d\t%d\t\n",
		total.FormulaESVs, total.CorrectGP, total.CorrectLinear, total.CorrectPoly, total.EnumESVs)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nGP precision:      %5.1f%%  (paper: 98.3%%)\n",
		100*float64(total.CorrectGP)/float64(total.FormulaESVs))
	fmt.Printf("Linear regression: %5.1f%%  (paper: 43.8%%)\n",
		100*float64(total.CorrectLinear)/float64(total.FormulaESVs))
	fmt.Printf("Polynomial fit:    %5.1f%%  (paper: 32.1%%)\n",
		100*float64(total.CorrectPoly)/float64(total.FormulaESVs))

	// The Table 9 traffic mix from the same captures.
	t9 := experiments.Table9(runs)
	fmt.Println("\nTransport frame mix (Table 9 shape):")
	for _, r := range t9 {
		fmt.Printf("  %-9s %5d single/last (%4.1f%%), %5d multi/waiting (%4.1f%%)\n",
			r.Protocol, r.Single, 100*float64(r.Single)/float64(r.Total),
			r.Multi, 100*float64(r.Multi)/float64(r.Total))
	}

	// Sanity line: everything the fleet defines should have been seen.
	wantESVs := 0
	for _, p := range vehicle.Fleet() {
		wantESVs += p.NumFormulaESVs + p.NumEnumESVs
	}
	fmt.Printf("\nfleet defines %d readable quantities; pipeline reversed %d\n",
		wantESVs, total.FormulaESVs+total.EnumESVs)
}
