// Fleet survey: run the DP-Reverser pipeline over all 18 simulated
// vehicles (paper Table 3) in parallel and print the per-car recovery
// statistics that Tables 6, 9 and 11 are built from, plus a comparison of
// the three formula-inference algorithms.
//
// The survey fans out twice: RunFleet schedules whole car pipelines
// across the worker pool, and each pipeline fans its per-stream GP runs
// out again. Per-stream seeding makes the output identical to a
// sequential run — rerun with -parallel 1 to check.
//
// Run with:
//
//	go run ./examples/fleet              # full fleet, all CPUs
//	go run ./examples/fleet -parallel 1  # sequential baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"dpreverser/internal/experiments"
	"dpreverser/internal/vehicle"
)

func main() {
	parallel := flag.Int("parallel", 0, "fleet/inference workers (0 = all CPUs)")
	flag.Parse()

	opt := experiments.Options{
		Quick:       true,
		Seed:        11,
		Parallelism: *parallel,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	}

	fmt.Println("Collecting and reverse engineering the 18-car fleet ...")
	start := time.Now() //dplint:allow determinism progress reporting, not part of any table
	runs, err := experiments.RunFleet(opt)
	if err != nil {
		log.Fatal(err)
	}
	defer experiments.CloseRuns(runs)
	fmt.Printf("Fleet surveyed in %v.\n\n", time.Since(start).Round(time.Millisecond)) //dplint:allow determinism progress reporting

	rows := experiments.Precision(runs)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CAR\tMODEL\tPROTOCOL\tFORMULA ESVs\tGP OK\tLINEAR OK\tPOLY OK\tENUM ESVs\tECRs")
	byCar := map[string]*experiments.CarRun{}
	for _, r := range runs {
		byCar[r.Profile.Car] = r
	}
	for _, row := range rows {
		run := byCar[row.Car]
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Car, run.Profile.Model, run.Profile.Protocol,
			row.FormulaESVs, row.CorrectGP, row.CorrectLinear, row.CorrectPoly,
			row.EnumESVs, len(run.Result.ECRs))
	}
	total := experiments.PrecisionTotals(rows)
	fmt.Fprintf(w, "TOTAL\t\t\t%d\t%d\t%d\t%d\t%d\t\n",
		total.FormulaESVs, total.CorrectGP, total.CorrectLinear, total.CorrectPoly, total.EnumESVs)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nGP precision:      %5.1f%%  (paper: 98.3%%)\n",
		100*float64(total.CorrectGP)/float64(total.FormulaESVs))
	fmt.Printf("Linear regression: %5.1f%%  (paper: 43.8%%)\n",
		100*float64(total.CorrectLinear)/float64(total.FormulaESVs))
	fmt.Printf("Polynomial fit:    %5.1f%%  (paper: 32.1%%)\n",
		100*float64(total.CorrectPoly)/float64(total.FormulaESVs))

	// The Table 9 traffic mix from the same captures.
	t9 := experiments.Table9(runs)
	fmt.Println("\nTransport frame mix (Table 9 shape):")
	for _, r := range t9 {
		fmt.Printf("  %-9s %5d single/last (%4.1f%%), %5d multi/waiting (%4.1f%%)\n",
			r.Protocol, r.Single, 100*float64(r.Single)/float64(r.Total),
			r.Multi, 100*float64(r.Multi)/float64(r.Total))
	}

	// Sanity line: everything the fleet defines should have been seen.
	wantESVs := 0
	for _, p := range vehicle.Fleet() {
		wantESVs += p.NumFormulaESVs + p.NumEnumESVs
	}
	fmt.Printf("\nfleet defines %d readable quantities; pipeline reversed %d\n",
		wantESVs, total.FormulaESVs+total.EnumESVs)
}
