// Command dplint runs the repo's custom analyzers (internal/lint) over
// the module source tree. Today that is the determinism analyzer: the
// experiments must be byte-identical across runs, so time.Now/time.Since
// and the global math/rand source are forbidden outside internal/sim.
//
// Usage:
//
//	dplint          # lint the module rooted at the working directory
//	dplint ./...    # same (the pattern is accepted for familiarity)
//	dplint -tests   # also lint _test.go files
//
// Exit status is 1 when any diagnostic is reported. Suppress a deliberate
// finding with a `//dplint:allow <reason>` comment on the same line or
// the line above.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dpreverser/internal/lint"
)

// exemptDirs are subtrees the determinism analyzer does not apply to:
// internal/sim is the one place wall clocks and entropy are wrapped.
var exemptDirs = []string{
	filepath.Join("internal", "sim"),
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		os.Exit(1)
	}
}

func run() error {
	tests := flag.Bool("tests", false, "also lint _test.go files")
	flag.Parse()

	root := "."
	if args := flag.Args(); len(args) == 1 && args[0] != "./..." {
		root = strings.TrimSuffix(args[0], "/...")
	}

	files, err := collect(root, *tests)
	if err != nil {
		return err
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		parsed = append(parsed, f)
	}

	bad := 0
	for _, a := range []*lint.Analyzer{lint.Determinism} {
		diags, err := lint.Run(a, fset, parsed)
		if err != nil {
			return err
		}
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [dplint/%s]\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d diagnostic(s)", bad)
	}
	return nil
}

// collect walks the module tree for lintable .go files, skipping the
// exempt subtrees, hidden and vendored directories, and (by default)
// test files.
func collect(root string, tests bool) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			for _, ex := range exemptDirs {
				if rel == ex {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !tests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		out = append(out, path)
		return nil
	})
	return out, err
}
