// Command dplint runs the repo's type-aware static-analysis suite (see
// internal/lint). With no flags it type-checks the whole module and runs
// every registered analyzer, printing file:line:col diagnostics and
// exiting 1 when any survive suppression.
//
// Usage:
//
//	dplint [flags] [module-root]
//
//	-list            print the registered analyzers and exit
//	-enable  names   run only these analyzers (comma-separated)
//	-disable names   run all but these analyzers
//	-tests           include _test.go files in the analysis
//	-json            emit diagnostics (and suppressions) as JSON
//	-audit-allows    also fail on //dplint:allow directives that
//	                 suppressed nothing in this run
//	-hotalloc        run the escape-analysis ratchet: rebuild the
//	                 hotpath packages with -gcflags=-m and diff the
//	                 escapes against the committed baseline
//	-write-baseline  with -hotalloc: rewrite the baseline instead of
//	                 diffing against it
//	-baseline file   baseline path (default HOTALLOC_BASELINE.txt)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dpreverser/internal/lint"
)

func main() {
	var (
		listFlag      = flag.Bool("list", false, "print the registered analyzers and exit")
		enableFlag    = flag.String("enable", "", "comma-separated analyzers to run (default all)")
		disableFlag   = flag.String("disable", "", "comma-separated analyzers to skip")
		testsFlag     = flag.Bool("tests", false, "include _test.go files")
		jsonFlag      = flag.Bool("json", false, "emit diagnostics as JSON")
		auditFlag     = flag.Bool("audit-allows", false, "fail on stale //dplint:allow directives")
		hotallocFlag  = flag.Bool("hotalloc", false, "diff hotpath heap escapes against the baseline")
		writeBaseline = flag.Bool("write-baseline", false, "with -hotalloc: rewrite the baseline")
		baselineFlag  = flag.String("baseline", lint.DefaultBaselineFile, "hotalloc baseline path (relative to module root)")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range lint.AllAnalyzers() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}

	analyzers, err := lint.Select(*enableFlag, *disableFlag)
	if err != nil {
		fatal(err)
	}

	mod, err := lint.LoadModule(root, *testsFlag)
	if err != nil {
		fatal(err)
	}
	res, err := lint.RunModule(mod, analyzers)
	if err != nil {
		fatal(err)
	}

	failed := false
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
	}
	if len(res.Diagnostics) > 0 {
		failed = true
	}

	if *auditFlag {
		if ranAll := *enableFlag == "" && *disableFlag == ""; !ranAll {
			fatal(fmt.Errorf("-audit-allows needs the full analyzer set: a directive for a skipped analyzer would look stale"))
		}
		for _, d := range res.StaleAllows() {
			failed = true
			fmt.Fprintf(os.Stderr, "%s:%d: stale //dplint:allow %v — it suppressed nothing; remove it\n",
				d.File, d.Line, d.Args)
		}
	}

	if *hotallocFlag {
		if err := runHotAlloc(mod, filepath.Join(mod.Root, *baselineFlag), *writeBaseline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// runHotAlloc executes the escape ratchet: collect current escapes in
// hotpath regions and either rewrite the baseline or fail on any drift.
func runHotAlloc(mod *lint.Module, baselinePath string, write bool) error {
	regions := lint.HotRegions(mod)
	if len(regions) == 0 {
		return fmt.Errorf("hotalloc: no //dplint:hotpath regions found")
	}
	current, err := lint.CollectEscapes(mod, regions)
	if err != nil {
		return err
	}
	if write {
		return os.WriteFile(baselinePath, []byte(lint.FormatBaseline(current)), 0o644)
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("hotalloc: %w (generate it with -hotalloc -write-baseline)", err)
	}
	baseline, err := lint.ParseBaseline(string(data))
	if err != nil {
		return err
	}
	if drift := lint.DiffBaseline(baseline, current); len(drift) > 0 {
		for _, line := range drift {
			fmt.Fprintln(os.Stderr, "hotalloc: "+line)
		}
		return fmt.Errorf("hotalloc: %d escape-profile change(s) against %s", len(drift), filepath.Base(baselinePath))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dplint:", err)
	os.Exit(2)
}
