// Command dpreversed is the multi-tenant reverse-engineering job server:
// the batch pipeline behind cmd/dpreverse, re-hosted as a long-running
// HTTP service. Tenants upload rig captures (or stream live traffic over
// the canbridge line protocol), poll job progress, and fetch results that
// are byte-identical with a local `dpreverse -json` run. Jobs land in a
// sharded in-memory queue partitioned by (tenant, car, stream key) and a
// bounded worker fleet runs them with per-tenant quotas, queue-depth
// backpressure (429 + Retry-After) and graceful drain on SIGTERM.
//
// Usage:
//
//	dpreversed                                # HTTP API on 127.0.0.1:8780
//	dpreversed -addr :8780 -ingest :8781      # plus live canbridge ingest
//	dpreversed -quick                         # reduced GP budget per job
//	dpreversed -loadtest -quick               # built-in load generator →
//	                                          # BENCH_server.json
//
// API sketch (see internal/jobserver for the full surface):
//
//	POST   /api/v1/jobs?tenant=T       upload a capture, returns the job
//	GET    /api/v1/jobs/{id}/events    progress; ?after=N&wait=5s long-polls
//	GET    /api/v1/jobs/{id}/result    schema-v1 result document
//	POST   /api/v1/streams?tenant=T    register a live stream, returns token
//	GET    /api/v1/jobs/{id}/flight    per-job flight record (postmortem)
//	GET    /api/v1/formulas?tenant=T   recovered formulas across jobs
//	GET    /debug/status               live HTML operator dashboard
//	GET    /metrics                    Prometheus exposition (?family=/?prefix=)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpreverser/internal/jobserver"
	"dpreverser/internal/reverser"
	"dpreverser/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpreversed:", err)
		os.Exit(1)
	}
}

// jobOptions is the base reverser configuration every job runs under.
func jobOptions(quick bool, islands int) []reverser.Option {
	cfg := reverser.DefaultConfig()
	if quick {
		cfg.GP.PopulationSize = 150
		cfg.GP.Generations = 10
	}
	cfg.GP.Islands = islands
	return []reverser.Option{reverser.WithConfig(cfg)}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8780", "HTTP listen address")
	ingest := flag.String("ingest", "", "canbridge ingest listen address (empty disables live streams)")
	shards := flag.Int("shards", 4, "job queue shards; (tenant, car, stream) keys pin to one shard")
	workers := flag.Int("workers", 1, "workers per shard (total fleet = shards x workers)")
	queueDepth := flag.Int("queue-depth", 64, "per-shard backlog limit before 429 backpressure")
	tenantMax := flag.Int("tenant-max", 8, "per-tenant live job quota")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on rejected submissions")
	quick := flag.Bool("quick", false, "reduced GP budget per job")
	islands := flag.Int("islands", 1, "GP islands per stream (1 = single panmictic population)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful-drain budget on shutdown before jobs are cancelled")
	logFormat := flag.String("log-format", "text", "structured-log format on stderr (text or json; empty disables)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level (debug, info, warn or error)")
	sloQueue := flag.Duration("slo-queue-wait", 5*time.Second, "queue-wait SLO objective per job")
	sloRun := flag.Duration("slo-run", 2*time.Minute, "run-latency SLO objective per job")
	sloTarget := flag.Float64("slo-target", 0.99, "SLO good-fraction target (burn rate 1.0 = burning exactly the budget)")
	flightEvents := flag.Int("flight-events", telemetry.DefaultRingCapacity, "per-job flight-recorder ring capacity (log records kept per job)")
	ingestIdle := flag.Duration("ingest-idle-timeout", 2*time.Minute, "fail an ingest session whose peer sends nothing for this long (0 disables)")
	ingestFrames := flag.Int("ingest-max-frames", 2_000_000, "per-session ingest frame budget (0 = unlimited)")
	ingestBytes := flag.Int64("ingest-max-bytes", 64<<20, "per-session ingest payload-byte budget (0 = unlimited)")
	ingestScreen := flag.Bool("ingest-screen", true, "reject streamed captures carrying transport-layer attack signatures at admission")
	loadtest := flag.Bool("loadtest", false, "run the built-in load generator instead of serving")
	ltJobs := flag.Int("jobs", 12, "loadtest: captures to submit")
	ltTenants := flag.Int("tenants", 3, "loadtest: tenants to spread the jobs across")
	ltCar := flag.String("car", "Car M", "loadtest: simulated car to capture")
	out := flag.String("o", "BENCH_server.json", "loadtest: benchmark history file to merge into")
	date := flag.String("date", "", "loadtest: entry date, YYYY-MM-DD (default: today)")
	seed := flag.Int64("seed", 1, "loadtest: capture simulation seed")
	flag.Parse()

	cfg := jobserver.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queueDepth,
		TenantMaxActive: *tenantMax,
		RetryAfter:      *retryAfter,
		QueueWaitSLO:    *sloQueue,
		RunSLO:          *sloRun,
		SLOTarget:       *sloTarget,
		FlightEvents:    *flightEvents,
		Reverser:        jobOptions(*quick, *islands),

		IngestIdleTimeout: *ingestIdle,
		IngestMaxFrames:   *ingestFrames,
		IngestMaxBytes:    *ingestBytes,
		ScreenStreams:     *ingestScreen,
	}
	if *loadtest {
		return runLoadtest(cfg, loadtestOptions{
			Jobs: *ltJobs, Tenants: *ltTenants, Car: *ltCar,
			Quick: *quick, Seed: *seed, Out: *out, Date: *date,
		})
	}
	return serve(cfg, *addr, *ingest, *drainTimeout, *logFormat, *logLevel)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains gracefully:
// admission stops, queued and running jobs finish (until -drain-timeout,
// after which they are cancelled), and the HTTP listener shuts down.
func serve(cfg jobserver.Config, addr, ingest string, drainTimeout time.Duration, logFormat, logLevel string) error {
	prov := telemetry.New(nil)
	lc := &telemetry.CLIConfig{LogFormat: logFormat, LogLevel: logLevel}
	log, err := lc.BuildLogger(prov.Clock)
	if err != nil {
		return err
	}
	prov = prov.WithLogger(log)
	srv := jobserver.New(cfg, prov)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dpreversed: HTTP API on http://%s (shards=%d workers/shard=%d quota=%d)\n",
		ln.Addr(), srv.Config().Shards, srv.Config().WorkersPerShard, srv.Config().TenantMaxActive)
	fmt.Fprintf(os.Stderr, "dpreversed: operator dashboard at http://%s/debug/status (metrics at /metrics, /metrics.json)\n", ln.Addr())
	if ingest != "" {
		bound, err := srv.ServeIngest(ingest)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dpreversed: canbridge ingest on %s\n", bound)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		srv.Close() //nolint:errcheck // already failing
		return err
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
	}

	fmt.Fprintln(os.Stderr, "dpreversed: draining (new submissions refused)")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)

	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close() //nolint:errcheck // force-close after a stuck shutdown
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w (remaining jobs were cancelled)", drainErr)
	}
	fmt.Fprintln(os.Stderr, "dpreversed: drained cleanly")
	return nil
}
