package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dpreverser/internal/benchdoc"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/jobserver"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/telemetry"
	"dpreverser/internal/vehicle"
)

// loadtestOptions parameterises the built-in load generator.
type loadtestOptions struct {
	Jobs    int
	Tenants int
	Car     string
	Quick   bool
	Seed    int64
	Out     string
	Date    string
}

// latencyStats summarises one latency sample in milliseconds.
type latencyStats struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// serverReport is one dated load-generator run — an entry in the
// BENCH_server.json history (same artifact format as BENCH_gp.json).
type serverReport struct {
	Date            string `json:"date"`
	Quick           bool   `json:"quick,omitempty"`
	Car             string `json:"car"`
	Jobs            int    `json:"jobs"`
	Tenants         int    `json:"tenants"`
	Shards          int    `json:"shards"`
	WorkersPerShard int    `json:"workers_per_shard"`
	TenantMaxActive int    `json:"tenant_max_active"`
	CaptureFrames   int    `json:"capture_frames"`
	// Rejections counts 429/503 answers the generator absorbed (each is
	// retried after pacing on an in-flight job).
	Rejections int     `json:"rejections"`
	WallMS     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// AllocBytesPerJob is the process-wide heap-allocation delta
	// (runtime.MemStats.TotalAlloc) across the run divided by Jobs. The
	// generator shares the process, so this is an upper bound on the
	// server's own per-job footprint — but the generator's share is small
	// and constant-shaped, so the trend tracks the inference pipeline.
	AllocBytesPerJob uint64 `json:"alloc_bytes_per_job"`
	// AllocsPerJob is the matching malloc-count delta per job.
	AllocsPerJob uint64 `json:"allocs_per_job"`
	// Latency is the client-observed submit-to-done time (queueing
	// included); QueueWait and Run are the server's own clock readings
	// from the job snapshots.
	Latency   latencyStats `json:"latency"`
	QueueWait latencyStats `json:"queue_wait"`
	Run       latencyStats `json:"run"`
}

// summarise reduces a millisecond sample.
func summarise(ms []float64) latencyStats {
	if len(ms) == 0 {
		return latencyStats{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return latencyStats{
		MeanMS: sum / float64(len(sorted)),
		P50MS:  pick(0.50),
		P90MS:  pick(0.90),
		P95MS:  pick(0.95),
		P99MS:  pick(0.99),
		MaxMS:  sorted[len(sorted)-1],
	}
}

// runLoadtest drives an in-process dpreversed over real HTTP with a
// carsim-collected capture: Jobs submissions fan out across Tenants,
// every job is long-polled to completion, and the throughput/latency
// summary is merged into the BENCH_server.json history.
func runLoadtest(cfg jobserver.Config, opt loadtestOptions) error {
	status := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if opt.Jobs < 1 || opt.Tenants < 1 {
		return fmt.Errorf("loadtest needs at least one job and one tenant")
	}
	if opt.Date == "" {
		opt.Date = time.Now().Format("2006-01-02") //dplint:allow determinism entry dates come from the wall clock
	}

	// One simulated capture, reused for every submission: the generator
	// measures the server, not the simulator.
	p, ok := vehicle.ProfileByCar(opt.Car)
	if !ok {
		return fmt.Errorf("unknown car %q", opt.Car)
	}
	status("loadtest: collecting %s capture (seed %d) ...", p.Car, opt.Seed)
	simClock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, simClock)
	if err != nil {
		return err
	}
	defer tool.Close()
	defer veh.Close()
	rigCfg := rig.DefaultConfig()
	rigCfg.Seed = opt.Seed
	rigCfg.ReadDuration = 10 * time.Second
	rigCfg.AlignDuration = 5 * time.Second
	rigCfg.TestDuration = time.Second
	r := rig.New(tool, veh, rigCfg)
	defer r.Close()
	cap, err := r.RunFull()
	if err != nil {
		return err
	}
	var capBody bytes.Buffer
	if err := cap.Save(&capBody); err != nil {
		return err
	}
	status("loadtest: %d CAN frames per capture, %d jobs across %d tenants",
		len(cap.Frames), opt.Jobs, opt.Tenants)

	clock := telemetry.NewWallClock()
	srv := jobserver.New(cfg, telemetry.New(nil))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = hs.Serve(ln) // returns http.ErrServerClosed on hs.Close below
	}()
	defer func() { <-serveDone }() // join the serve goroutine after Close
	defer srv.Close()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	type outcome struct {
		id        string
		state     string
		latencyMS float64
		err       error
	}
	results := make([]outcome, opt.Jobs)
	var rejMu sync.Mutex
	rejections := 0

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := clock.Now()
	var wg sync.WaitGroup
	for i := range results {
		tenant := fmt.Sprintf("tenant-%02d", i%opt.Tenants)
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			submitted := clock.Now()
			id, rejected, err := submitWithRetry(client, base, tenant, capBody.Bytes())
			if rejected > 0 {
				rejMu.Lock()
				rejections += rejected
				rejMu.Unlock()
			}
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			state, err := pollDone(client, base, id)
			results[i] = outcome{
				id: id, state: state, err: err,
				latencyMS: float64((clock.Now() - submitted).Microseconds()) / 1e3,
			}
		}(i, tenant)
	}
	wg.Wait()
	wall := clock.Now() - start
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	rep := serverReport{
		Date: opt.Date, Quick: opt.Quick, Car: p.Car,
		Jobs: opt.Jobs, Tenants: opt.Tenants,
		Shards: srv.Config().Shards, WorkersPerShard: srv.Config().WorkersPerShard,
		TenantMaxActive: srv.Config().TenantMaxActive,
		CaptureFrames:   len(cap.Frames),
		Rejections:      rejections,
		WallMS:          float64(wall.Microseconds()) / 1e3,
	}
	if wall > 0 {
		rep.JobsPerSec = float64(opt.Jobs) / wall.Seconds()
	}
	rep.AllocBytesPerJob = (memAfter.TotalAlloc - memBefore.TotalAlloc) / uint64(opt.Jobs)
	rep.AllocsPerJob = (memAfter.Mallocs - memBefore.Mallocs) / uint64(opt.Jobs)

	var latencies, queueWaits, runs []float64
	for i, res := range results {
		if res.err != nil {
			return fmt.Errorf("job %d: %w", i, res.err)
		}
		if res.state != "done" {
			return fmt.Errorf("job %s finished %s", res.id, res.state)
		}
		latencies = append(latencies, res.latencyMS)
		var snap struct {
			QueueWaitMS float64 `json:"queue_wait_ms"`
			RunMS       float64 `json:"run_ms"`
		}
		if err := getJSON(client, base+"/api/v1/jobs/"+res.id, &snap); err != nil {
			return err
		}
		queueWaits = append(queueWaits, snap.QueueWaitMS)
		runs = append(runs, snap.RunMS)
	}
	rep.Latency = summarise(latencies)
	rep.QueueWait = summarise(queueWaits)
	rep.Run = summarise(runs)

	hist, _, err := benchdoc.Load[serverReport](opt.Out)
	if err != nil {
		return err
	}
	hist.Merge(rep, func(old serverReport) bool {
		return old.Date == rep.Date && old.Quick == rep.Quick
	})
	if err := hist.Write(opt.Out); err != nil {
		return err
	}
	status("loadtest: %d jobs in %.0f ms (%.2f jobs/s, %d rejections paced)",
		opt.Jobs, rep.WallMS, rep.JobsPerSec, rejections)
	status("loadtest: latency p50/p90/p99/max = %.0f/%.0f/%.0f/%.0f ms (queue %.0f ms, run %.0f ms at p50)",
		rep.Latency.P50MS, rep.Latency.P90MS, rep.Latency.P99MS, rep.Latency.MaxMS,
		rep.QueueWait.P50MS, rep.Run.P50MS)
	status("loadtest: %.1f MB allocated per job (%d mallocs)",
		float64(rep.AllocBytesPerJob)/(1<<20), rep.AllocsPerJob)
	status("wrote %s (%d entries)", opt.Out, len(hist.Entries))
	return nil
}

// getJSON fetches one document.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, out)
}

// submitWithRetry uploads one capture, absorbing quota/backpressure
// rejections by pacing on an in-flight job of the same tenant (a
// long-poll on its events) before retrying — the generator never spins
// and never sleeps.
func submitWithRetry(client *http.Client, base, tenant string, capture []byte) (id string, rejected int, err error) {
	for attempt := 0; attempt < 1000; attempt++ {
		resp, err := client.Post(base+"/api/v1/jobs?tenant="+tenant,
			"application/json", bytes.NewReader(capture))
		if err != nil {
			return "", rejected, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", rejected, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var snap struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(raw, &snap); err != nil {
				return "", rejected, err
			}
			return snap.ID, rejected, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
			paceOnTenant(client, base, tenant)
		default:
			return "", rejected, fmt.Errorf("submit for %s: %d: %s", tenant, resp.StatusCode, raw)
		}
	}
	return "", rejected, fmt.Errorf("submit for %s: gave up after repeated rejections", tenant)
}

// paceOnTenant blocks briefly by long-polling a live job of the tenant;
// with none live it returns immediately (the quota has already cleared).
func paceOnTenant(client *http.Client, base, tenant string) {
	var list struct {
		Jobs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	if err := getJSON(client, base+"/api/v1/jobs?tenant="+tenant, &list); err != nil {
		return
	}
	for _, j := range list.Jobs {
		if j.State == "queued" || j.State == "running" || j.State == "streaming" {
			var ev struct{}
			// A far-future cursor makes the long-poll wait for the next
			// update (or the 2s budget) instead of returning history.
			getJSON(client, fmt.Sprintf("%s/api/v1/jobs/%s/events?after=%d&wait=2s",
				base, j.ID, 1<<30), &ev) //nolint:errcheck // pacing only
			return
		}
	}
}

// pollDone long-polls one job to a terminal state.
func pollDone(client *http.Client, base, id string) (string, error) {
	after := 0
	for attempt := 0; attempt < 10000; attempt++ {
		var ev struct {
			State  string `json:"state"`
			Events []struct {
				Seq int `json:"seq"`
			} `json:"events"`
		}
		if err := getJSON(client, fmt.Sprintf("%s/api/v1/jobs/%s/events?after=%d&wait=5s",
			base, id, after), &ev); err != nil {
			return "", err
		}
		after += len(ev.Events)
		switch ev.State {
		case "done", "failed", "cancelled":
			return ev.State, nil
		}
	}
	return "", fmt.Errorf("job %s never finished", id)
}
