// Command dpreverse runs the full DP-Reverser pipeline against one
// simulated vehicle: it drives the car's diagnostic tool with the robotic
// rig, captures the CAN traffic and the OCR'd screen video, and prints
// everything the pipeline reverse engineers — request semantics, response
// formulas, and actuator control records.
//
// Usage:
//
//	dpreverse -car "Car A"          # reverse engineer the Skoda Octavia
//	dpreverse -list                 # list the fleet
//	dpreverse -car "Car K" -quick   # shorter recording, smaller GP budget
//	dpreverse -car "Car A" -json    # machine-readable result on stdout
//	dpreverse -car "Car A" -parallel 4
//	dpreverse -car "Car A" -faults default -fault-seed 1
//
// Inference fans out across -parallel workers (default: all CPUs) and can
// be interrupted with Ctrl-C; results are identical at every worker count.
//
// -faults corrupts the capture before analysis (dropped, duplicated,
// reordered and bit-flipped frames, truncated transfers, OCR misreads);
// the pipeline then degrades gracefully, listing every damaged stream in
// the "Degraded streams" report (JSON: "degraded"). -fault-policy strict
// turns any degradation into a non-zero exit instead. The "adversarial"
// preset switches from random damage to deliberate transport-layer
// attacks (hostile flow control, first-frame floods, interleaved
// transfers, session replays, slow drips); attacked streams are
// attributed by class in the degraded report, e.g.
// fc-starve=1 saturates one class (also: ff-flood, interleave,
// session-replay, slow-drip).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"text/tabwriter"

	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/faults"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/telemetry"
	"dpreverser/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpreverse:", err)
		os.Exit(1)
	}
}

func run() error {
	car := flag.String("car", "Car A", "fleet car to reverse engineer (see -list)")
	list := flag.Bool("list", false, "list the simulated fleet and exit")
	quick := flag.Bool("quick", false, "short recordings and reduced GP budget")
	seed := flag.Int64("seed", 1, "seed for OCR noise and GP")
	parallel := flag.Int("parallel", 0, "inference workers (0 = all CPUs)")
	islands := flag.Int("islands", 1, "GP islands per stream (1 = single panmictic population)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	progress := flag.Bool("progress", false, "report per-stream inference progress on stderr")
	showTraffic := flag.Bool("traffic", false, "print the Table 9 frame-mix statistics")
	saveCapture := flag.String("save-capture", "", "write the collected capture (JSON) to this file")
	loadCapture := flag.String("load-capture", "", "skip collection and analyse this capture file instead")
	faultSpec := flag.String("faults", "", "inject capture faults: none, default, heavy, adversarial, or key=value,... (e.g. drop=0.05,bitflip=0.02 or fc-starve=1)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector")
	faultPolicy := flag.String("fault-policy", "best-effort", "degradation policy: best-effort (report damage, keep going) or strict (fail on any damage)")
	telFlags := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "CAR\tMODEL\tPROTOCOL\tTRANSPORT\tTOOL\tESVs\tECRs")
		for _, p := range vehicle.Fleet() {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d+%d\t%d\n",
				p.Car, p.Model, p.Protocol, p.Transport, p.Tool,
				p.NumFormulaESVs, p.NumEnumESVs, p.NumECRs)
		}
		return w.Flush()
	}

	// Ctrl-C cancels the pipeline between GP generations.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// status goes to stderr so -json keeps stdout machine-readable.
	status := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	tel, telFlush, err := telFlags.Activate(status)
	if err != nil {
		return err
	}
	defer func() {
		if err := telFlush(); err != nil {
			status("telemetry: %v", err)
		}
	}()

	var cap rig.Capture
	if *loadCapture != "" {
		var err error
		cap, err = rig.LoadCaptureFile(*loadCapture)
		if err != nil {
			return err
		}
		status("Loaded capture of %s (%s): %d CAN frames, %d video frames, %d clicks.",
			cap.Car, cap.Model, len(cap.Frames), len(cap.UIFrames), len(cap.Clicks))
	} else {
		p, ok := vehicle.ProfileByCar(*car)
		if !ok {
			return fmt.Errorf("unknown car %q (try -list)", *car)
		}

		status("Collecting %s (%s) with %s over %s ...", p.Car, p.Model, p.Tool, p.Transport)
		clock := sim.NewClock(0)
		tool, veh, err := diagtool.ForProfile(p, clock)
		if err != nil {
			return err
		}
		defer tool.Close()
		defer veh.Close()

		cfgRig := rig.DefaultConfig()
		cfgRig.Seed = *seed
		if *quick {
			cfgRig = quickRigConfig(*seed)
		}
		r := rig.New(tool, veh, cfgRig)
		defer r.Close()
		cap, err = r.RunFull()
		if err != nil {
			return err
		}
		status("Captured %d CAN frames, %d video frames, %d clicks over %v simulated time.",
			len(cap.Frames), len(cap.UIFrames), len(cap.Clicks), clock.Now())
		if *saveCapture != "" {
			if err := rig.SaveCaptureFile(cap, *saveCapture); err != nil {
				return err
			}
			status("Capture written to %s.", *saveCapture)
		}
	}

	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		if spec.Enabled() {
			inj := faults.New(spec, *faultSeed)
			cap.Frames = inj.Frames(cap.Frames)
			cap.UIFrames = inj.UIFrames(cap.UIFrames)
			inj.Publish(tel.RegistryOrNil())
			status("Injected %d faults (%s, seed %d).", inj.Stats().Total(), spec, *faultSeed)
		}
	}

	policy, err := reverser.ParseFaultPolicy(*faultPolicy)
	if err != nil {
		return err
	}

	cfg := reverser.DefaultConfig()
	cfg.GP.Seed = *seed
	cfg.GP.Islands = *islands
	if *quick {
		cfg.GP.PopulationSize = 300
		cfg.GP.Generations = 20
	}
	opts := []reverser.Option{
		reverser.WithConfig(cfg),
		reverser.WithParallelism(*parallel),
		reverser.WithTelemetry(tel),
		reverser.WithFaultPolicy(policy),
	}
	if *progress {
		opts = append(opts, reverser.WithProgress(renderProgress(status)))
	}
	res, err := reverser.New(opts...).Reverse(ctx, cap)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Println()
	fmt.Print(res.Summary())

	if *showTraffic {
		s := res.Stats
		fmt.Printf("\nTraffic mix: %d SF, %d FF, %d CF, %d FC | VW TP: %d waiting, %d last, %d control\n",
			s.ISOTPSingle, s.ISOTPFirst, s.ISOTPConsecutive, s.ISOTPFlowControl,
			s.VWTPWaiting, s.VWTPLast, s.VWTPControl)
	}

	fmt.Println("\nReversed ECU signal values:")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "IDENTIFIER\tSEMANTICS\tUNIT\tKIND\tFORMULA\tPAIRS")
	for _, e := range res.ESVs {
		formula := e.FormulaString()
		if formula == "" {
			formula = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%d\n", e.Key, e.Label, e.Unit, e.Kind(), formula, e.Pairs)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if len(res.ECRs) > 0 {
		fmt.Println("\nReversed ECU control records:")
		w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "SERVICE\tID\tCOMPONENT\tSTATE\tPATTERN")
		for _, e := range res.ECRs {
			pattern := "incomplete"
			if e.PatternComplete() {
				pattern = "freeze/adjust/return"
				if e.Service == 0x30 {
					pattern = "adjust/return"
				}
			}
			fmt.Fprintf(w, "%02X\t%04X\t%s\t% X\t%s\n", e.Service, e.ID, e.Label, e.State, pattern)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}

	if len(res.Degraded) > 0 {
		fmt.Printf("\nDegraded streams (%d):\n", len(res.Degraded))
		w = tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(w, "STAGE\tSTREAM\tREASON\tDETAIL")
		for _, se := range res.Degraded {
			id := "-"
			if se.Key != (reverser.StreamKey{}) {
				id = se.Key.String()
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", se.Stage, id, se.Reason, se.Detail)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// renderProgress turns pipeline progress events into stderr status lines:
// one line per stage with its wall time, one line per inferred stream with
// its generation count.
func renderProgress(status func(format string, args ...any)) reverser.ProgressFunc {
	return func(ev reverser.ProgressEvent) {
		switch ev.Kind {
		case reverser.ProgressStageDone:
			if ev.Stage != "infer" { // stream lines already cover inference
				status("  [%s] %v", ev.Stage, ev.Elapsed.Round(time.Microsecond))
			}
		case reverser.ProgressStreamDone:
			label := ev.Label
			if label == "" {
				label = ev.Stream.String()
			}
			if ev.Evaluations > 0 {
				status("  [infer %d/%d] %s (%d gens, %d evals, %.0f%% cached, %v)",
					ev.Done, ev.Total, label, ev.Generations, ev.Evaluations,
					100*float64(ev.CacheHits)/float64(ev.Evaluations),
					ev.Elapsed.Round(time.Millisecond))
			} else {
				status("  [infer %d/%d] %s (%d gens, %v)",
					ev.Done, ev.Total, label, ev.Generations, ev.Elapsed.Round(time.Millisecond))
			}
		}
	}
}

func quickRigConfig(seed int64) rig.Config {
	cfg := rig.DefaultConfig()
	cfg.Seed = seed
	cfg.ReadDuration = 10 * time.Second
	cfg.AlignDuration = 5 * time.Second
	cfg.TestDuration = time.Second
	return cfg
}
