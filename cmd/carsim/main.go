// Command carsim serves a simulated vehicle's OBD port over TCP, so
// external tooling (any language, even a real diagnostic client) can drive
// the simulator and record captures for the reverse-engineering pipeline.
//
// The wire protocol is candump-based (see internal/canbridge):
//
//	$ carsim -car "Car A" -listen 127.0.0.1:7777 &
//	$ printf 'SEND 700#0322100500000000\nADVANCE 100\n' | nc 127.0.0.1 7777
//	HELLO canbridge 1
//	(000000.000000) 700#0322100500000000
//	(000000.000000) 701#0462100545AAAAAA
//	OK
//	OK
//
// Usage:
//
//	carsim -car "Car A"                 # ephemeral port, printed on stdout
//	carsim -car "Car K" -listen :7777   # fixed port
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dpreverser/internal/canbridge"
	"dpreverser/internal/faults"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "carsim:", err)
		os.Exit(1)
	}
}

func run() error {
	car := flag.String("car", "Car A", "fleet car to serve (see dpreverse -list)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	faultSpec := flag.String("faults", "", "corrupt the streamed traffic: none, default, heavy, or key=value,...")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault injector")
	flag.Parse()

	p, ok := vehicle.ProfileByCar(*car)
	if !ok {
		return fmt.Errorf("unknown car %q", *car)
	}
	clock := sim.NewClock(0)
	veh := vehicle.Build(p, clock)
	defer veh.Close()

	srv := canbridge.NewServer(veh.Bus, clock)
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		if spec.Enabled() {
			// The server serialises filter calls, so the stateful
			// injector needs no locking here.
			srv.SetFilter(faults.New(spec, *faultSeed).Stream)
			fmt.Printf("fault injection: %s (seed %d)\n", spec, *faultSeed)
		}
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		return err
	}
	defer srv.Close()

	fmt.Printf("serving %s (%s, %s over %s) on %s\n",
		p.Car, p.Model, p.Protocol, p.Transport, addr)
	for _, b := range veh.Bindings() {
		fmt.Printf("  ECU %-20s req %03X resp %03X addr %02X\n",
			b.ECU.Name, b.ReqID, b.RespID, b.Addr)
	}
	fmt.Println("commands: SEND <id>#<hex>   ADVANCE <ms>   (^C to stop)")

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	<-sigs
	return nil
}
