// Command dptop is a terminal dashboard for a running dpreversed: it
// polls the server's /metrics.json endpoint and redraws a compact
// operator view — jobs by state, per-shard queue depth, tenant ledger,
// SLO burn rates and runtime health — every interval, top-style.
//
// Usage:
//
//	dptop                                  # watch 127.0.0.1:8780 forever
//	dptop -addr host:8780 -interval 2s     # custom target and cadence
//	dptop -frames 1 -no-clear              # one snapshot, scrollback-friendly
//
// The client is deliberately decoupled from the server's internals: it
// speaks only the public /metrics.json document and keeps its own local
// parsing structs, so it can watch any dpreversed version that serves
// the endpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// jsonMetric mirrors one family in the /metrics.json document.
type jsonMetric struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Labels []string     `json:"labels"`
	Series []jsonSeries `json:"series"`
}

// jsonSeries is one labeled series within a family.
type jsonSeries struct {
	Labels map[string]string `json:"labels"`
	Value  *float64          `json:"value"`
	Count  *uint64           `json:"count"`
	Sum    *float64          `json:"sum"`
}

// metricsDoc is the /metrics.json top-level document.
type metricsDoc struct {
	Metrics []jsonMetric `json:"metrics"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "dpreversed HTTP address to watch")
	interval := flag.Duration("interval", time.Second, "poll cadence")
	frames := flag.Int("frames", 0, "frames to render before exiting (0 = run until interrupted)")
	noClear := flag.Bool("no-clear", false, "append frames instead of clearing the screen")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	url := "http://" + *addr + "/metrics.json"

	for frame := 1; ; frame++ {
		doc, err := fetch(client, url)
		if *noClear {
			fmt.Printf("--- dptop frame %d (%s) ---\n", frame, *addr)
		} else {
			// Clear screen, home cursor.
			fmt.Print("\x1b[2J\x1b[H")
			fmt.Printf("dptop — %s — frame %d (every %s)\n\n", *addr, frame, *interval)
		}
		if err != nil {
			fmt.Printf("unreachable: %v\n", err)
		} else {
			render(doc)
		}
		if *frames > 0 && frame >= *frames {
			if err != nil {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*interval)
	}
}

// fetch retrieves and decodes one metrics snapshot.
func fetch(client *http.Client, url string) (*metricsDoc, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// family finds one metric family by name (nil when absent).
func (d *metricsDoc) family(name string) *jsonMetric {
	for i := range d.Metrics {
		if d.Metrics[i].Name == name {
			return &d.Metrics[i]
		}
	}
	return nil
}

// render draws one frame from the snapshot.
func render(d *metricsDoc) {
	section("jobs", func() {
		kv(d, "dpreverser_jobs_by_state", "state")
		if f := d.family("dpreverser_jobs_finished_total"); f != nil {
			for _, line := range seriesLines(f, "state") {
				fmt.Printf("  finished %s\n", line)
			}
		}
	})
	section("queue depth", func() {
		kv(d, "dpreverser_job_queue_depth", "shard")
	})
	section("tenants", func() {
		kv(d, "dpreverser_tenant_admissions_total", "tenant")
		if f := d.family("dpreverser_tenant_rejections_total"); f != nil {
			for _, s := range f.Series {
				fmt.Printf("  rejected %s/%s = %s\n",
					s.Labels["tenant"], s.Labels["reason"], num(s.Value))
			}
		}
	})
	section("latency (mean s)", func() {
		hist(d, "dpreverser_job_queue_wait_seconds", "queue wait")
		hist(d, "dpreverser_job_run_seconds", "run")
	})
	section("slo burn", func() {
		if f := d.family("dpreverser_slo_burn_rate"); f != nil {
			for _, s := range f.Series {
				marker := ""
				if s.Value != nil && *s.Value > 1 {
					marker = "  <-- burning"
				}
				fmt.Printf("  %s @ %s = %s%s\n",
					s.Labels["slo"], s.Labels["window"], num(s.Value), marker)
			}
		}
		if f := d.family("dpreverser_slo_jobs_total"); f != nil {
			for _, s := range f.Series {
				fmt.Printf("  %s %s = %s\n", s.Labels["slo"], s.Labels["verdict"], num(s.Value))
			}
		}
	})
	section("runtime", func() {
		for _, name := range []string{
			"dpreverser_runtime_goroutines",
			"dpreverser_runtime_heap_alloc_bytes",
			"dpreverser_runtime_heap_objects",
			"dpreverser_runtime_gc_cycles_total",
		} {
			if f := d.family(name); f != nil && len(f.Series) > 0 {
				short := strings.TrimPrefix(name, "dpreverser_runtime_")
				fmt.Printf("  %s = %s\n", short, num(f.Series[0].Value))
			}
		}
	})
}

// section prints a titled block.
func section(title string, body func()) {
	fmt.Printf("%s\n", title)
	body()
	fmt.Println()
}

// kv prints every series of a single-label family as "label = value".
func kv(d *metricsDoc, name, label string) {
	f := d.family(name)
	if f == nil {
		return
	}
	for _, line := range seriesLines(f, label) {
		fmt.Printf("  %s\n", line)
	}
}

// seriesLines renders a family's series as sorted "label = value" lines.
func seriesLines(f *jsonMetric, label string) []string {
	lines := make([]string, 0, len(f.Series))
	for _, s := range f.Series {
		lines = append(lines, fmt.Sprintf("%s = %s", s.Labels[label], num(s.Value)))
	}
	sort.Strings(lines)
	return lines
}

// hist prints a histogram family's mean and count.
func hist(d *metricsDoc, name, title string) {
	f := d.family(name)
	if f == nil || len(f.Series) == 0 {
		return
	}
	s := f.Series[0]
	if s.Count == nil || s.Sum == nil || *s.Count == 0 {
		fmt.Printf("  %s: no samples\n", title)
		return
	}
	fmt.Printf("  %s: mean %.3fs over %d jobs\n", title, *s.Sum/float64(*s.Count), *s.Count)
}

// num formats an optional scalar.
func num(v *float64) string {
	if v == nil {
		return "-"
	}
	if *v == float64(int64(*v)) {
		return fmt.Sprintf("%d", int64(*v))
	}
	return fmt.Sprintf("%.3f", *v)
}
