// Command benchjson runs the GP engine's benchmark workloads through the
// testing.Benchmark harness and records the results as machine-readable
// JSON — the committed BENCH_gp.json baseline that lets a later change
// prove (or disprove) a speedup without re-reading benchmark logs.
//
// The output file is a history document {"entries": [...]}: each run
// appends one dated entry instead of clobbering what is there, so the
// baseline's past stays diffable. Re-running on the same date with the
// same -quick setting replaces that day's entry (idempotent re-runs); a
// legacy single-report file is converted to a one-entry history on first
// merge.
//
// The workloads mirror the repo's benchmarks: the per-sample tree
// interpreter vs the compiled batch VM (BenchmarkGPTreeEval /
// BenchmarkGPCompiledEval in internal/gp), and the Table 8 full-budget
// inference runs (BenchmarkGPInferUDS/KWP/OBD in bench_test.go). The
// cross-generation fitness-cache hit rate comes from the engine's own
// Result counters, so it is exact rather than sampled.
//
// Usage:
//
//	benchjson                 # merges into BENCH_gp.json in the working directory
//	benchjson -o out.json     # merges elsewhere
//	benchjson -quick          # reduced GP budget (CI smoke)
//	benchjson -date 2026-08-05  # override the entry date
//
// All timing flows through testing.Benchmark; apart from the annotated
// entry-date stamp this command never reads the wall clock, so it stays
// inside the repo's determinism lint (the *numbers* vary run to run —
// that is the point of a benchmark — but the code path is clock-free).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"dpreverser/internal/benchdoc"
	"dpreverser/internal/gp"
)

// result is one benchmark row in the JSON output.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// cacheStats is the engine-reported fitness-cache summary for one full
// evolution run at the default budget.
type cacheStats struct {
	Evaluations int     `json:"evaluations"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
}

// report is one dated run of the benchmark suite.
type report struct {
	Date       string     `json:"date"`
	Quick      bool       `json:"quick,omitempty"`
	Benchmarks []result   `json:"benchmarks"`
	Cache      cacheStats `json:"cache"`
	// SpeedupEvalVsTree is ns/op(tree) / ns/op(compiled): how many times
	// faster the batch VM evaluates the reference workload than the
	// recursive interpreter.
	SpeedupEvalVsTree float64 `json:"speedup_eval_vs_tree"`
}

// history is the whole BENCH_gp.json document: every recorded run, oldest
// first (the artifact format shared with BENCH_server.json).
type history = benchdoc.History[report]

// loadHistory reads an existing output file, converting the legacy
// single-report format (pre-history baselines) into a one-entry history.
// A missing file is an empty history.
func loadHistory(path string) (history, error) {
	h, raw, err := benchdoc.Load[report](path)
	if err != nil {
		return history{}, err
	}
	if h.Entries != nil || raw == nil {
		return h, nil
	}
	var legacy report
	if err := json.Unmarshal(raw, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		if legacy.Date == "" {
			legacy.Date = "unknown"
		}
		return history{Entries: []report{legacy}}, nil
	}
	return history{}, fmt.Errorf("%s: not a benchmark history or legacy report", path)
}

// allocRatchetSlack is the tolerated allocs/op growth for GPInferOBD
// over the committed baseline: allocation counts are deterministic
// enough that anything past 10% means a hot path started allocating.
const allocRatchetSlack = 1.10

// findBench returns the named benchmark row from a report.
func findBench(rep report, name string) (result, bool) {
	for _, row := range rep.Benchmarks {
		if row.Name == name {
			return row, true
		}
	}
	return result{}, false
}

// checkAllocRatchet compares the fresh GPInferOBD allocs/op against the
// most recent committed entry with the same -quick setting and fails if
// they regressed past the ratchet slack. With no comparable baseline
// (first run, or first run at this budget) the check is a no-op —
// merging the entry establishes the baseline.
func checkAllocRatchet(hist history, rep report) error {
	fresh, ok := findBench(rep, "GPInferOBD")
	if !ok {
		return nil
	}
	for i := len(hist.Entries) - 1; i >= 0; i-- {
		old := hist.Entries[i]
		if old.Quick != rep.Quick {
			continue
		}
		base, ok := findBench(old, "GPInferOBD")
		if !ok || base.AllocsPerOp <= 0 {
			return nil
		}
		limit := int64(float64(base.AllocsPerOp) * allocRatchetSlack)
		if fresh.AllocsPerOp > limit {
			return fmt.Errorf("GPInferOBD allocs/op regressed: %d > %d (baseline %d from %s, +10%% slack)",
				fresh.AllocsPerOp, limit, base.AllocsPerOp, old.Date)
		}
		fmt.Fprintf(os.Stderr, "%-28s %d allocs/op within ratchet (baseline %d from %s)\n",
			"GPInferOBD ratchet", fresh.AllocsPerOp, base.AllocsPerOp, old.Date)
		return nil
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "BENCH_gp.json", "benchmark history file to merge into")
	quick := flag.Bool("quick", false, "reduced GP budget (CI smoke run)")
	date := flag.String("date", "", "entry date, YYYY-MM-DD (default: today)")
	allowRegress := flag.Bool("allow-regress", false,
		"record the entry even if GPInferOBD allocs/op regress past the ratchet")
	flag.Parse()

	if *date == "" {
		*date = time.Now().Format("2006-01-02") //dplint:allow determinism entry dates come from the wall clock
	}
	rep := report{Date: *date, Quick: *quick}

	tree := benchTree()
	d := benchDataset(256)
	batch := gp.NewBatch(d)

	record := func(name string, fn func(b *testing.B)) result {
		r := testing.Benchmark(fn)
		row := result{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %8d B/op %6d allocs/op\n",
			name, int64(row.NsPerOp), row.BytesPerOp, row.AllocsPerOp)
		return row
	}

	// Micro: interpreter vs compiled VM on the same 256-row workload.
	treeRow := record("GPTreeEval", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, row := range d.X {
				sink += tree.Eval(row)
			}
		}
		_ = sink
	})
	p := gp.Compile(tree)
	m := gp.NewMachine()
	compiledRow := record("GPCompiledEval", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			preds := p.Eval(batch, m)
			sink += preds[0]
		}
		_ = sink
	})
	// The with-compile row reuses one Compiler the way the engine does
	// (its Program aliases the compiler's scratch), so steady state is
	// 0 allocs/op; the package-level gp.Compile would add the owned-copy
	// cost its immutable/concurrency-safe contract requires.
	c := gp.NewCompiler()
	record("GPCompiledEvalWithCompile", func(b *testing.B) {
		sink := 0.0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := c.Compile(tree)
			preds := q.Eval(batch, m)
			sink += preds[0]
		}
		_ = sink
	})
	if compiledRow.NsPerOp > 0 {
		rep.SpeedupEvalVsTree = treeRow.NsPerOp / compiledRow.NsPerOp
	}

	// Macro: the Table 8 inference workloads at the benchmark budget.
	budget := func(cfg gp.Config) gp.Config {
		cfg.StopFitness = -1 // full budget, as Table 8 accounts it
		if *quick {
			cfg.PopulationSize = 100
			cfg.Generations = 5
		}
		return cfg
	}
	for _, w := range []struct {
		name string
		d    *gp.Dataset
	}{
		{"GPInferUDS", udsDataset()},
		{"GPInferKWP", kwpDataset()},
		{"GPInferOBD", obdDataset()},
	} {
		w := w
		record(w.name, func(b *testing.B) {
			cfg := budget(gp.DefaultConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				if _, err := gp.Run(w.d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Exact cache accounting from the engine's own counters.
	cfg := budget(gp.DefaultConfig())
	cfg.Seed = 1
	res, err := gp.Run(kwpDataset(), cfg)
	if err != nil {
		return err
	}
	rep.Cache = cacheStats{
		Evaluations: res.Evaluations,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,
	}
	if res.Evaluations > 0 {
		rep.Cache.HitRate = float64(res.CacheHits) / float64(res.Evaluations)
	}
	fmt.Fprintf(os.Stderr, "%-28s %d evals, %.1f%% cache hits\n",
		"GPFitnessCache", rep.Cache.Evaluations, 100*rep.Cache.HitRate)

	hist, err := loadHistory(*out)
	if err != nil {
		return err
	}
	if err := checkAllocRatchet(hist, rep); err != nil {
		if !*allowRegress {
			return err
		}
		fmt.Fprintln(os.Stderr, "benchjson: WARNING (recorded anyway):", err)
	}
	hist.Merge(rep, func(old report) bool { return old.Date == rep.Date && old.Quick == rep.Quick })
	if err := hist.Write(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries)\n", *out, len(hist.Entries))
	return nil
}

// benchTree mirrors internal/gp's benchmark formula: a representative
// mid-size evolved shape with a protected division and a foldable
// constant subtree — ((X0 * (2 * 1.5)) + sqrt(X1)) / (X1 - 3) + X0.
func benchTree() *gp.Node {
	return gp.NewBinary(gp.OpAdd,
		gp.NewBinary(gp.OpDiv,
			gp.NewBinary(gp.OpAdd,
				gp.NewBinary(gp.OpMul, gp.NewVar(0),
					gp.NewBinary(gp.OpMul, gp.NewConst(2), gp.NewConst(1.5))),
				gp.NewUnary(gp.OpSqrt, gp.NewVar(1))),
			gp.NewBinary(gp.OpSub, gp.NewVar(1), gp.NewConst(3))),
		gp.NewVar(0))
}

func benchDataset(rows int) *gp.Dataset {
	rng := rand.New(rand.NewSource(1))
	d := &gp.Dataset{}
	for i := 0; i < rows; i++ {
		d.X = append(d.X, []float64{rng.Float64() * 255, rng.Float64() * 255})
		d.Y = append(d.Y, rng.Float64()*100)
	}
	return d
}

// udsDataset / kwpDataset / obdDataset mirror the Table 8 benchmark
// inputs in bench_test.go.
func udsDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for x := 0.0; x <= 255; x += 4 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 0.75*x-48)
	}
	return d
}

func kwpDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for x0 := 200.0; x0 <= 250; x0 += 10 {
		for x1 := 0.0; x1 <= 255; x1 += 16 {
			d.X = append(d.X, []float64{x0, x1})
			d.Y = append(d.Y, x0*x1/5)
		}
	}
	return d
}

func obdDataset() *gp.Dataset {
	d := &gp.Dataset{}
	for hi := 0.0; hi <= 64; hi += 4 {
		for lo := 0.0; lo <= 255; lo += 32 {
			d.X = append(d.X, []float64{hi, lo})
			d.Y = append(d.Y, (256*hi+lo)/4)
		}
	}
	return d
}
