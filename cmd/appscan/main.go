// Command appscan runs the telematics-app formula analysis (paper §4.6,
// Algorithm 1) over the synthetic 160-app corpus, printing Table 12, the
// individual formulas of one app, per-app findings as JSON, or the
// precision/recall evaluation against the labeled corpus.
//
// Usage:
//
//	appscan                         # Table 12: formula counts per app
//	appscan -app "Carly for VAG"    # every extracted formula of one app
//	appscan -json                   # per-app formula findings as JSON
//	appscan -json -app "Easy OBD"   # one app's findings as JSON
//	appscan -eval                   # precision/recall on the labeled corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dpreverser/internal/appanalysis"
	"dpreverser/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "appscan:", err)
		os.Exit(1)
	}
}

// finding is the JSON shape of one extracted formula.
type finding struct {
	Method    string `json:"method"`
	Condition string `json:"condition,omitempty"`
	Kind      string `json:"kind"`
	Expr      string `json:"expr"`
}

// appReport is the JSON shape of one scanned app.
type appReport struct {
	App      string    `json:"app"`
	Formulas []finding `json:"formulas"`
}

func run() error {
	appName := flag.String("app", "", "restrict the scan to this app")
	asJSON := flag.Bool("json", false, "emit per-app formula findings as JSON")
	doEval := flag.Bool("eval", false, "score the analysis against the labeled corpus")
	telFlags := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	tel, telFlush, err := telFlags.Activate(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := telFlush(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
		}
	}()
	analyze := instrumentedAnalyze(tel)

	if *doEval {
		return runEval()
	}

	apps := appanalysis.Corpus()
	if *appName != "" {
		for _, app := range apps {
			if app.Name != *appName {
				continue
			}
			formulas := analyze(app)
			if *asJSON {
				return emitJSON([]appReport{report(app.Name, formulas)})
			}
			fmt.Printf("%s: %d formulas\n", app.Name, len(formulas))
			for _, f := range formulas {
				fmt.Printf("  if prefix %q: Y = %s  [%s]\n", f.Condition, f.Expr, f.Kind)
			}
			return nil
		}
		return fmt.Errorf("app %q not in the corpus", *appName)
	}

	if *asJSON {
		var reports []appReport
		for _, app := range apps {
			reports = append(reports, report(app.Name, analyze(app)))
		}
		return emitJSON(reports)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "APP NAME\tFORMULA TYPE\t# FORMULA")
	withFormulas := 0
	for _, app := range apps {
		counts := appanalysis.CountByKind(analyze(app))
		printed := false
		for _, kind := range []appanalysis.FormulaKind{
			appanalysis.KindUDS, appanalysis.KindKWP, appanalysis.KindOBD,
		} {
			if counts[kind] > 0 {
				fmt.Fprintf(w, "%s\t%s\t%d\n", app.Name, kind, counts[kind])
				printed = true
			}
		}
		if printed {
			withFormulas++
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d of %d apps embed decodable formulas.\n", withFormulas, len(apps))
	return nil
}

// instrumentedAnalyze wraps appanalysis.Analyze with telemetry: a span per
// scanned app and counters for apps scanned and formulas found by kind.
// With a nil provider every hook is a no-op.
func instrumentedAnalyze(tel *telemetry.Provider) func(*appanalysis.App) []appanalysis.Formula {
	reg := tel.RegistryOrNil()
	scanned := reg.Counter(telemetry.MetricAppsScanned,
		"Telematics apps run through the dataflow analysis.")
	found := reg.CounterVec(telemetry.MetricAppFormulas,
		"Formulas extracted from telematics apps, by protocol kind.", "kind")
	return func(app *appanalysis.App) []appanalysis.Formula {
		sp := tel.TracerOrNil().Start("app-scan", telemetry.String("app", app.Name))
		formulas := appanalysis.Analyze(app)
		sp.SetAttr(telemetry.Int("formulas", len(formulas)))
		sp.End()
		scanned.Inc()
		for _, f := range formulas {
			found.With(string(f.Kind)).Inc()
		}
		return formulas
	}
}

func report(name string, formulas []appanalysis.Formula) appReport {
	r := appReport{App: name, Formulas: []finding{}}
	for _, f := range formulas {
		r.Formulas = append(r.Formulas, finding{
			Method: f.Method, Condition: f.Condition,
			Kind: string(f.Kind), Expr: f.Expr,
		})
	}
	return r
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runEval scores Analyze against the ground-truth labels of the
// evaluation corpus and prints the per-style breakdown.
func runEval() error {
	eval := appanalysis.Evaluate(appanalysis.EvalCorpus())
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CORPUS STYLE\tAPPS\tTP\tFP\tFN")
	for _, s := range eval.PerStyle {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", s.Style, s.Apps, s.TP, s.FP, s.FN)
	}
	fmt.Fprintf(w, "total\t%d\t%d\t%d\t%d\n", eval.Apps, eval.TP, eval.FP, eval.FN)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nprecision %.3f  recall %.3f  F1 %.3f  (%d labeled formulas)\n",
		eval.Precision(), eval.Recall(), eval.F1(), eval.TP+eval.FN)
	return nil
}
