// Command appscan runs the telematics-app formula analysis (paper §4.6,
// Algorithm 1) over the synthetic 160-app corpus, printing Table 12 or the
// individual formulas of one app.
//
// Usage:
//
//	appscan                         # Table 12: formula counts per app
//	appscan -app "Carly for VAG"    # every extracted formula of one app
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"dpreverser/internal/appanalysis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "appscan:", err)
		os.Exit(1)
	}
}

func run() error {
	appName := flag.String("app", "", "print every formula of this app")
	flag.Parse()

	apps := appanalysis.Corpus()
	if *appName != "" {
		for _, app := range apps {
			if app.Name != *appName {
				continue
			}
			formulas := appanalysis.Analyze(app)
			fmt.Printf("%s: %d formulas\n", app.Name, len(formulas))
			for _, f := range formulas {
				fmt.Printf("  if prefix %q: Y = %s  [%s]\n", f.Condition, f.Expr, f.Kind)
			}
			return nil
		}
		return fmt.Errorf("app %q not in the corpus", *appName)
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "APP NAME\tFORMULA TYPE\t# FORMULA")
	withFormulas := 0
	for _, app := range apps {
		counts := appanalysis.CountByKind(appanalysis.Analyze(app))
		printed := false
		for _, kind := range []appanalysis.FormulaKind{
			appanalysis.KindUDS, appanalysis.KindKWP, appanalysis.KindOBD,
		} {
			if counts[kind] > 0 {
				fmt.Fprintf(w, "%s\t%s\t%d\n", app.Name, kind, counts[kind])
				printed = true
			}
		}
		if printed {
			withFormulas++
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d of %d apps embed decodable formulas.\n", withFormulas, len(apps))
	return nil
}
