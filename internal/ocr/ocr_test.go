package ocr

import (
	"math"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/ui"
)

func liveScreen(values []string) ui.Screen {
	s := ui.Screen{Name: "live-data", Title: "Data Stream", Width: 1024, Height: 768}
	labels := []string{"Engine speed", "Vehicle speed", "Coolant temperature"}
	for i, v := range values {
		y := 60 + 44*i
		s.Widgets = append(s.Widgets,
			ui.Widget{ID: sprintf("row.label.%d", i), Kind: ui.Label, Text: labels[i%len(labels)], X: 40, Y: y, W: 360, H: 40},
			ui.Widget{ID: sprintf("row.val.%d", i), Kind: ui.Value, Text: v, X: 420, Y: y, W: 160, H: 40},
			ui.Widget{ID: sprintf("row.unit.%d", i), Kind: ui.Label, Text: "rpm", X: 600, Y: y, W: 120, H: 40},
		)
	}
	return s
}

func sprintf(format string, args ...any) string {
	return strings.NewReplacer("%d", itoa(args[0].(int))).Replace(format)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestRecognizePerfectEngine(t *testing.T) {
	e := NewEngine(0, 1)
	f := e.Recognize(liveScreen([]string{"771.20", "33.00"}), 5*time.Second)
	if f.Corrupted {
		t.Fatal("zero-error engine corrupted a frame")
	}
	if f.At != 5*time.Second || f.ScreenName != "live-data" {
		t.Fatalf("frame meta = %+v", f)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	r := f.Rows[0]
	if r.Label != "Engine speed" || !r.ParseOK || r.Parsed != 771.2 || r.Unit != "rpm" {
		t.Fatalf("row = %+v", r)
	}
	if f.Rows[1].Index != 1 {
		t.Fatalf("row order: %+v", f.Rows)
	}
}

func TestRecognizeEmptyValueNotParsed(t *testing.T) {
	e := NewEngine(0, 1)
	f := e.Recognize(liveScreen([]string{""}), 0)
	if len(f.Rows) != 1 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if f.Rows[0].ParseOK {
		t.Fatal("empty value parsed")
	}
}

func TestRecognizeInjectsErrorsAtConfiguredRate(t *testing.T) {
	e := NewEngine(0.5, 7)
	for i := 0; i < 200; i++ {
		e.Recognize(liveScreen([]string{"25.00", "33.10"}), time.Duration(i)*time.Second)
	}
	frames, corrupted := e.Stats()
	if frames != 200 {
		t.Fatalf("frames = %d", frames)
	}
	// With 2 values at 50% each plus labels, nearly every frame should be
	// corrupted; certainly more than half.
	if corrupted < 100 {
		t.Fatalf("corrupted = %d/200, expected most frames", corrupted)
	}
}

func TestQualityPresetsProduceTable4Split(t *testing.T) {
	high := NewEngine(HighQualityValueErr, 11)
	low := NewEngine(LowQualityValueErr, 12)
	screen := liveScreen([]string{"771.20", "33.00", "88.50", "13.80", "42.00", "101.00", "64.00", "5.50", "97.00", "12.00"})
	for i := 0; i < 500; i++ {
		high.Recognize(screen, time.Duration(i)*time.Second)
		low.Recognize(screen, time.Duration(i)*time.Second)
	}
	_, hc := high.Stats()
	_, lc := low.Stats()
	highPrec := 1 - float64(hc)/500
	lowPrec := 1 - float64(lc)/500
	if highPrec < 0.94 || highPrec > 1.0 {
		t.Fatalf("high-quality precision = %v, want ≈0.976", highPrec)
	}
	if lowPrec < 0.70 || lowPrec > 0.95 {
		t.Fatalf("low-quality precision = %v, want ≈0.85", lowPrec)
	}
	if highPrec <= lowPrec {
		t.Fatalf("quality split inverted: %v vs %v", highPrec, lowPrec)
	}
}

func TestCorruptValueModes(t *testing.T) {
	e := NewEngine(1, 3)
	sawDecimalLoss := false
	for i := 0; i < 100; i++ {
		got := e.corruptValue("25.00")
		if got == "2500" {
			sawDecimalLoss = true
		}
		if got == "25.00" && i > 50 {
			continue // substitution may pick the same digit occasionally
		}
	}
	if !sawDecimalLoss {
		t.Fatal("decimal-point loss never produced")
	}
}

func TestRecognizeDeterministic(t *testing.T) {
	s := liveScreen([]string{"25.00", "33.10", "88.00"})
	a, b := NewEngine(0.3, 42), NewEngine(0.3, 42)
	for i := 0; i < 50; i++ {
		fa := a.Recognize(s, time.Duration(i))
		fb := b.Recognize(s, time.Duration(i))
		for j := range fa.Rows {
			if fa.Rows[j].Value != fb.Rows[j].Value {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestFilterRange(t *testing.T) {
	in := []Sample{{0, 50}, {1, 2500}, {2, 52}, {3, -10}, {4, 55}}
	out := FilterRange(in, 0, 255)
	if len(out) != 3 {
		t.Fatalf("kept %d samples: %+v", len(out), out)
	}
	for _, s := range out {
		if s.Value < 0 || s.Value > 255 {
			t.Fatalf("out-of-range survived: %v", s.Value)
		}
	}
}

func TestFilterOutliersRejectsDecimalLoss(t *testing.T) {
	// A plausible-in-range but locally impossible jump: 25.0 → 250 (one
	// lost decimal within an otherwise smooth series).
	var in []Sample
	for i := 0; i < 20; i++ {
		v := 25.0 + 0.2*float64(i)
		if i == 10 {
			v = 250
		}
		in = append(in, Sample{At: time.Duration(i) * time.Second, Value: v})
	}
	out := FilterOutliers(in)
	for _, s := range out {
		if s.Value == 250 {
			t.Fatal("decimal-loss outlier survived")
		}
	}
	if len(out) < 17 {
		t.Fatalf("filter too aggressive: kept %d/20", len(out))
	}
}

func TestFilterOutliersKeepsGenuineDrift(t *testing.T) {
	// Engine RPM ramping 800 → 3000 must survive intact.
	var in []Sample
	for i := 0; i < 40; i++ {
		in = append(in, Sample{At: time.Duration(i) * 500 * time.Millisecond, Value: 800 + 55*float64(i)})
	}
	out := FilterOutliers(in)
	if len(out) != len(in) {
		t.Fatalf("genuine drift filtered: kept %d/%d", len(out), len(in))
	}
}

func TestFilterOutliersSmallSeriesUntouched(t *testing.T) {
	in := []Sample{{0, 1}, {1, 9999}}
	out := FilterOutliers(in)
	if len(out) != 2 {
		t.Fatal("short series must pass through")
	}
}

func TestFilterChained(t *testing.T) {
	var in []Sample
	for i := 0; i < 30; i++ {
		in = append(in, Sample{At: time.Duration(i), Value: 30 + math.Sin(float64(i)/3)*2})
	}
	in[5].Value = 3000  // out of range
	in[15].Value = 90.0 // in range but locally impossible
	out := Filter(in, 0, 255)
	for _, s := range out {
		if s.Value == 3000 || s.Value == 90 {
			t.Fatalf("outlier survived: %v", s.Value)
		}
	}
	if len(out) < 25 {
		t.Fatalf("kept %d/30", len(out))
	}
}

func TestMedianHelpers(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil)")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even median")
	}
	if medianAbsDev([]float64{1, 2, 3}, 2) != 1 {
		t.Fatal("MAD")
	}
	if medianAbsDev(nil, 0) != 0 {
		t.Fatal("MAD(nil)")
	}
}

func TestRowIDParsing(t *testing.T) {
	cases := []struct {
		id   string
		idx  int
		part string
		ok   bool
	}{
		{"row.val.3", 3, "val", true},
		{"obd.label.0", 0, "label", true},
		{"sel.item.2", 0, "", false},
		{"title", 0, "", false},
		{"row.val.x", 0, "", false},
	}
	for _, c := range cases {
		idx, part, ok := rowID(c.id)
		if ok != c.ok || (ok && (idx != c.idx || part != c.part)) {
			t.Fatalf("rowID(%q) = %d %q %v", c.id, idx, part, ok)
		}
	}
}
