package ocr

import (
	"math/rand"
	"strings"
)

// This file isolates the paper's observed OCR failure modes as pure
// helpers, shared by the Engine's corruption model and by the fault
// injector (internal/faults), which replays the same noise onto recorded
// Y values. Each helper reports whether it changed the text; helpers that
// consume randomness take the caller's RNG so draw sequences stay under
// the caller's control.

// DropDecimal removes the first decimal point ("25.00" → "2500").
func DropDecimal(text string) (string, bool) {
	if !strings.Contains(text, ".") {
		return text, false
	}
	return strings.Replace(text, ".", "", 1), true
}

// SubstituteDigit replaces one random digit with a random digit ("3.7" →
// "8.7"). Texts with no digit are returned unchanged; the bounded retry
// keeps the RNG consumption finite on digit-poor texts.
func SubstituteDigit(rng *rand.Rand, text string) (string, bool) {
	if len(text) == 0 {
		return text, false
	}
	digits := []byte(text)
	for tries := 0; tries < 8; tries++ {
		i := rng.Intn(len(digits))
		if digits[i] >= '0' && digits[i] <= '9' {
			digits[i] = byte('0' + rng.Intn(10))
			return string(digits), true
		}
	}
	return text, false
}

// TruncateLeading drops the leading half of the text ("11.4" → "4"), the
// paper's partial-recognition failure.
func TruncateLeading(text string) (string, bool) {
	if len(text) <= 1 {
		return text, false
	}
	return text[len(text)/2:], true
}

// FlipSign misreads the sign: a leading minus is lost, or one is
// hallucinated in front of a bare number.
func FlipSign(text string) (string, bool) {
	if text == "" {
		return text, false
	}
	if strings.HasPrefix(text, "-") {
		return text[1:], true
	}
	return "-" + text, true
}
