package ocr

import (
	"math"
	"sort"
	"time"
)

// Sample is one timestamped recognised value of a single quantity.
type Sample struct {
	At    time.Duration
	Value float64
}

// FilterRange implements stage one of §3.3's filtering: drop samples
// outside the quantity's plausible physical range (the paper seeds these
// ranges from public PID tables; here they come from the tool database's
// min/max or, for fully unknown quantities, generous defaults).
func FilterRange(samples []Sample, min, max float64) []Sample {
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if s.Value >= min && s.Value <= max {
			out = append(out, s)
		}
	}
	return out
}

// FilterOutliers implements stage two: windowed median/MAD rejection.
// For each sample, the median of its temporal neighbourhood is computed;
// values far beyond both the local and the series-wide dispersion are
// rejected. This encodes the paper's observation that an ESV cannot change
// greatly within a short time, while tolerating both genuine drift and
// genuinely volatile quantities (whose series-wide MAD is large).
func FilterOutliers(samples []Sample) []Sample {
	if len(samples) < 5 {
		return append([]Sample(nil), samples...)
	}
	// Series-wide dispersion: jumps comparable to how much the quantity
	// moves anyway are not OCR errors.
	all := make([]float64, len(samples))
	for i, s := range samples {
		all[i] = s.Value
	}
	globalMed := median(all)
	globalMAD := medianAbsDev(all, globalMed)

	const window = 3 // neighbours on each side
	out := make([]Sample, 0, len(samples))
	for i, s := range samples {
		lo, hi := i-window, i+window+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(samples) {
			hi = len(samples)
		}
		var neigh []float64
		for j := lo; j < hi; j++ {
			if j == i {
				continue
			}
			neigh = append(neigh, samples[j].Value)
		}
		med := median(neigh)
		mad := medianAbsDev(neigh, med)
		tol := math.Max(5*mad, 0.15*math.Abs(med)+0.5)
		tol = math.Max(tol, 4*globalMAD)
		if math.Abs(s.Value-med) <= tol {
			out = append(out, s)
		}
	}
	return out
}

// Filter chains both stages.
func Filter(samples []Sample, min, max float64) []Sample {
	return FilterOutliers(FilterRange(samples, min, max))
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianAbsDev(vals []float64, med float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	devs := make([]float64, len(vals))
	for i, v := range vals {
		devs[i] = math.Abs(v - med)
	}
	return median(devs)
}
