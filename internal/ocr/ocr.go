// Package ocr models the camera + optical-character-recognition leg of the
// cyber-physical rig (§3.1, §3.3). A camera observes a tool screen and the
// OCR engine converts it into timestamped text — imperfectly: following the
// failure modes the paper reports, recognised values occasionally lose
// their decimal point ("25.00" → "2500"), swap a digit ("3.7" → "8.0"), or
// drop leading characters ("11.4" → "4"). Error probability depends on the
// screen class, reproducing Table 4's AUTEL-vs-LAUNCH precision split.
//
// The package also implements §3.3's two-stage incorrect-ESV filtering:
// a per-quantity plausible-range check, then windowed median/MAD outlier
// rejection ("during a short period of time, the measured ESVs cannot
// change greatly").
package ocr

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"dpreverser/internal/ui"
)

// Text is one OCR-recognised text region with its bounding box (the
// output shape of an EAST-style text detector).
type Text struct {
	Content    string
	X, Y, W, H int
}

// Center reports the midpoint of the region — where the clicker aims.
func (t Text) Center() (x, y int) { return t.X + t.W/2, t.Y + t.H/2 }

// Row is a recognised (label, value) pair from a live-data screen.
type Row struct {
	// Index is the on-screen row number (stable pairing key: row k on the
	// screen corresponds to the k-th identifier in the tool's request).
	Index int
	Label string
	Unit  string
	// Value is the raw recognised value text.
	Value string
	// Parsed is the numeric interpretation; ParseOK is false when the
	// text is not a number (or the value cell was empty).
	Parsed  float64
	ParseOK bool
	Y       int
}

// Frame is one OCR'd video frame.
type Frame struct {
	At         time.Duration
	ScreenName string
	Title      string
	Rows       []Row
	Texts      []Text
	// Corrupted reports whether the engine injected at least one
	// recognition error into this frame (ground truth for Table 4).
	Corrupted bool
}

// Engine is the OCR model.
type Engine struct {
	rng *rand.Rand
	// ValueErrProb is the per-value corruption probability.
	ValueErrProb float64
	// LabelErrProb is the per-label corruption probability (labels are
	// larger glyphs; they fail less).
	LabelErrProb float64

	frames    int
	corrupted int
}

// Engine presets reproducing Table 4's two screen classes. With ~10 values
// per frame, a 0.24% per-value error yields ≈97.6% clean frames (AUTEL
// 919) and 1.6% yields ≈85% (LAUNCH X431).
const (
	HighQualityValueErr = 0.0024
	LowQualityValueErr  = 0.016
)

// NewEngine builds an OCR engine with the given per-value error rate.
func NewEngine(valueErrProb float64, seed int64) *Engine {
	return &Engine{
		rng:          rand.New(rand.NewSource(seed)),
		ValueErrProb: valueErrProb,
		LabelErrProb: valueErrProb / 4,
	}
}

// Stats reports how many frames were processed and how many carried at
// least one injected error.
func (e *Engine) Stats() (frames, corrupted int) { return e.frames, e.corrupted }

// Recognize converts a rendered screen into an OCR frame.
func (e *Engine) Recognize(s ui.Screen, at time.Duration) Frame {
	f := Frame{At: at, ScreenName: s.Name, Title: s.Title}
	rows := map[int]*Row{}
	var order []int
	for _, w := range s.Widgets {
		if w.Text == "" {
			continue
		}
		text := w.Text
		switch w.Kind {
		case ui.Value:
			if e.rng.Float64() < e.ValueErrProb {
				text = e.corruptValue(text)
				f.Corrupted = true
			}
		default:
			if e.rng.Float64() < e.LabelErrProb {
				text = e.corruptLabel(text)
				f.Corrupted = true
			}
		}
		f.Texts = append(f.Texts, Text{Content: text, X: w.X, Y: w.Y, W: w.W, H: w.H})

		idx, part, ok := rowID(w.ID)
		if !ok {
			continue
		}
		r, exists := rows[idx]
		if !exists {
			r = &Row{Index: idx, Y: w.Y}
			rows[idx] = r
			order = append(order, idx)
		}
		switch part {
		case "label":
			r.Label = text
		case "unit":
			r.Unit = text
		case "val":
			r.Value = text
			if v, err := strconv.ParseFloat(strings.TrimSpace(text), 64); err == nil {
				r.Parsed = v
				r.ParseOK = true
			}
		}
	}
	sort.Ints(order)
	for _, idx := range order {
		f.Rows = append(f.Rows, *rows[idx])
	}
	e.frames++
	if f.Corrupted {
		e.corrupted++
	}
	return f
}

// rowID parses widget IDs of the form "row.val.3" / "obd.label.0".
func rowID(id string) (idx int, part string, ok bool) {
	parts := strings.Split(id, ".")
	if len(parts) != 3 {
		return 0, "", false
	}
	if parts[0] != "row" && parts[0] != "obd" {
		return 0, "", false
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil {
		return 0, "", false
	}
	return n, parts[1], true
}

// corruptValue applies one of the paper's observed OCR failure modes
// (the shared helpers in noise.go, drawn with this engine's RNG).
func (e *Engine) corruptValue(text string) string {
	mode := e.rng.Intn(3)
	switch mode {
	case 0:
		// Decimal point loss: "25.00" -> "2500".
		if out, ok := DropDecimal(text); ok {
			return out
		}
		fallthrough
	case 1:
		// Digit substitution: "3.7" -> "8.7".
		out, _ := SubstituteDigit(e.rng, text)
		return out
	default:
		// Leading truncation: "11.4" -> "4".
		out, _ := TruncateLeading(text)
		return out
	}
}

// corruptLabel swaps one character for a visually similar one.
func (e *Engine) corruptLabel(text string) string {
	if text == "" {
		return text
	}
	subs := map[byte]byte{'O': '0', '0': 'O', 'l': '1', '1': 'l', 'S': '5', '5': 'S', 'e': 'c'}
	b := []byte(text)
	i := e.rng.Intn(len(b))
	if s, ok := subs[b[i]]; ok {
		b[i] = s
	} else {
		b[i] = '#'
	}
	return string(b)
}
