package uds

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBuildParseRDBIRequest(t *testing.T) {
	req, err := BuildRDBIRequest(0xF40D, 0x1017)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x22, 0xF4, 0x0D, 0x10, 0x17}
	if !bytes.Equal(req, want) {
		t.Fatalf("request = % X, want % X", req, want)
	}
	dids, err := ParseRDBIRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(dids) != 2 || dids[0] != 0xF40D || dids[1] != 0x1017 {
		t.Fatalf("dids = %#v", dids)
	}
}

func TestBuildRDBIRequestEmpty(t *testing.T) {
	if _, err := BuildRDBIRequest(); !errors.Is(err, ErrNoDIDs) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRDBIRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		msg  []byte
		want error
	}{
		{"too short", []byte{0x22}, ErrTooShort},
		{"wrong sid", []byte{0x2F, 0x12, 0x34}, ErrNotService},
		{"odd bytes", []byte{0x22, 0x12, 0x34, 0x56}, ErrOddDIDBytes},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseRDBIRequest(c.msg); !errors.Is(err, c.want) {
				t.Fatalf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestRDBIResponseRoundTripSingle(t *testing.T) {
	// Paper §2.3.2 example: "22 F4 0D" → "62 F4 0D 21".
	resp := BuildRDBIResponse([]DataRecord{{DID: 0xF40D, Data: []byte{0x21}}})
	if !bytes.Equal(resp, []byte{0x62, 0xF4, 0x0D, 0x21}) {
		t.Fatalf("response = % X", resp)
	}
	records, err := ParseRDBIResponse(resp, []uint16{0xF40D})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].DID != 0xF40D || !bytes.Equal(records[0].Data, []byte{0x21}) {
		t.Fatalf("records = %#v", records)
	}
}

func TestRDBIResponseMultiDIDVariableWidth(t *testing.T) {
	// Variable-width records: the parser must use the request DID order to
	// find boundaries (paper §3.2 Step 3).
	records := []DataRecord{
		{DID: 0xF40D, Data: []byte{0x21}},
		{DID: 0xF41A, Data: []byte{0x01, 0x02, 0x03}},
		{DID: 0x1017, Data: []byte{0xAA, 0xBB}},
	}
	resp := BuildRDBIResponse(records)
	got, err := ParseRDBIResponse(resp, []uint16{0xF40D, 0xF41A, 0x1017})
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if got[i].DID != records[i].DID || !bytes.Equal(got[i].Data, records[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
}

func TestParseRDBIResponseMismatch(t *testing.T) {
	resp := BuildRDBIResponse([]DataRecord{{DID: 0x1234, Data: []byte{1}}})
	if _, err := ParseRDBIResponse(resp, []uint16{0x9999}); !errors.Is(err, ErrDataMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseRDBIResponse(resp, []uint16{0x1234, 0x5678}); !errors.Is(err, ErrDataMismatch) {
		t.Fatalf("missing second DID err = %v", err)
	}
}

func TestIOControlRoundTrip(t *testing.T) {
	// Paper example: "2F 09 50 03 05 01 00 00" — left fog light 5 seconds.
	req := IOControlRequest{DID: 0x0950, Param: IOShortTermAdjustment, State: []byte{0x05, 0x01, 0x00, 0x00}}
	raw := BuildIOControlRequest(req)
	if !bytes.Equal(raw, []byte{0x2F, 0x09, 0x50, 0x03, 0x05, 0x01, 0x00, 0x00}) {
		t.Fatalf("request = % X", raw)
	}
	got, err := ParseIOControlRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.DID != 0x0950 || got.Param != IOShortTermAdjustment || !bytes.Equal(got.State, req.State) {
		t.Fatalf("parsed = %+v", got)
	}
}

func TestIOControlNoState(t *testing.T) {
	// "2F 09 50 02" — freeze current state, no control-state bytes.
	got, err := ParseIOControlRequest([]byte{0x2F, 0x09, 0x50, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	if got.Param != IOFreezeCurrentState || got.State != nil {
		t.Fatalf("parsed = %+v", got)
	}
}

func TestNegativeResponse(t *testing.T) {
	raw := BuildNegativeResponse(SIDReadDataByIdentifier, NRCRequestOutOfRange)
	sid, nrc, ok := ParseNegativeResponse(raw)
	if !ok || sid != SIDReadDataByIdentifier || nrc != NRCRequestOutOfRange {
		t.Fatalf("parsed = %#x %#x %v", sid, nrc, ok)
	}
	if _, _, ok := ParseNegativeResponse([]byte{0x62, 0x01, 0x02}); ok {
		t.Fatal("positive response parsed as negative")
	}
}

func TestIsPositiveResponse(t *testing.T) {
	if !IsPositiveResponse([]byte{0x62, 0xF4, 0x0D, 0x21}, SIDReadDataByIdentifier) {
		t.Fatal("0x62 not recognised as positive RDBI response")
	}
	if IsPositiveResponse([]byte{0x7F, 0x22, 0x31}, SIDReadDataByIdentifier) {
		t.Fatal("negative response recognised as positive")
	}
}

func TestNRCAndIONames(t *testing.T) {
	if NRCName(NRCSecurityAccessDenied) != "securityAccessDenied" {
		t.Fatal("NRCName mismatch")
	}
	if NRCName(0xEE) != "nrc(0xee)" {
		t.Fatalf("unknown NRC = %q", NRCName(0xEE))
	}
	if IOParamName(IOShortTermAdjustment) != "shortTermAdjustment" {
		t.Fatal("IOParamName mismatch")
	}
	if IOParamName(0x77) != "ioParam(0x77)" {
		t.Fatalf("unknown IO param = %q", IOParamName(0x77))
	}
}

// Property: RDBI build/parse round-trips for arbitrary DID lists with
// distinct widths 1-4 derived from the DID (so boundaries are non-trivial).
func TestRDBIRoundTripProperty(t *testing.T) {
	f := func(seedDIDs []uint16) bool {
		if len(seedDIDs) == 0 {
			return true
		}
		if len(seedDIDs) > 6 {
			seedDIDs = seedDIDs[:6]
		}
		// Deduplicate: repeated DIDs make boundary scanning ambiguous by
		// construction (the heuristic is defined for distinct DIDs).
		seen := map[uint16]bool{}
		var dids []uint16
		for _, d := range seedDIDs {
			// Skip 0x0101: record data below is 0x01-filled, and a DID
			// equal to the fill pattern defeats the boundary heuristic by
			// construction.
			if !seen[d] && d != 0x0101 {
				seen[d] = true
				dids = append(dids, d)
			}
		}
		if len(dids) == 0 {
			return true
		}
		records := make([]DataRecord, len(dids))
		for i, d := range dids {
			width := int(d%4) + 1
			data := make([]byte, width)
			for j := range data {
				// Avoid embedding other DIDs' bytes: fill with a constant
				// that is not a DID high byte in this set.
				data[j] = 0x01
			}
			records[i] = DataRecord{DID: d, Data: data}
		}
		resp := BuildRDBIResponse(records)
		got, err := ParseRDBIResponse(resp, dids)
		if err != nil {
			return false
		}
		for i := range records {
			if got[i].DID != records[i].DID || !bytes.Equal(got[i].Data, records[i].Data) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
