// Package uds implements the Unified Diagnostic Services application layer
// (ISO 14229) as used by the paper: ReadDataByIdentifier (0x22) for reading
// ECU signal values and InputOutputControlByIdentifier (0x2F) for actuator
// control (paper §2.3.2, Figs. 4-5), plus the session-control, security-
// access and tester-present plumbing real tools exercise around them.
//
// The standard defines the *formats*; the DIDs, their semantics, and the
// formulas that decode response bytes are manufacturer-proprietary — those
// live in the per-vehicle tables (internal/vehicle) and are what
// DP-Reverser recovers.
package uds

import (
	"errors"
	"fmt"
)

// Service identifiers (ISO 14229-1).
const (
	SIDDiagnosticSessionControl byte = 0x10
	SIDECUReset                 byte = 0x11
	SIDClearDiagnosticInfo      byte = 0x14
	SIDReadDTCInformation       byte = 0x19
	SIDReadDataByIdentifier     byte = 0x22
	SIDSecurityAccess           byte = 0x27
	SIDWriteDataByIdentifier    byte = 0x2E
	SIDIOControlByIdentifier    byte = 0x2F
	SIDRoutineControl           byte = 0x31
	SIDTesterPresent            byte = 0x3E
)

// PositiveResponseSID converts a request SID to its positive-response SID.
func PositiveResponseSID(sid byte) byte { return sid + 0x40 }

// NegativeResponseSID is the first byte of every negative response.
const NegativeResponseSID byte = 0x7F

// Negative response codes (NRCs).
const (
	NRCGeneralReject             byte = 0x10
	NRCServiceNotSupported       byte = 0x11
	NRCSubFunctionNotSupported   byte = 0x12
	NRCIncorrectMessageLength    byte = 0x13
	NRCConditionsNotCorrect      byte = 0x22
	NRCRequestSequenceError      byte = 0x24
	NRCRequestOutOfRange         byte = 0x31
	NRCSecurityAccessDenied      byte = 0x33
	NRCInvalidKey                byte = 0x35
	NRCServiceNotInActiveSession byte = 0x7F
)

// nrcNames maps NRCs to the standard's short names for diagnostics output.
var nrcNames = map[byte]string{
	NRCGeneralReject:             "generalReject",
	NRCServiceNotSupported:       "serviceNotSupported",
	NRCSubFunctionNotSupported:   "subFunctionNotSupported",
	NRCIncorrectMessageLength:    "incorrectMessageLengthOrInvalidFormat",
	NRCConditionsNotCorrect:      "conditionsNotCorrect",
	NRCRequestSequenceError:      "requestSequenceError",
	NRCRequestOutOfRange:         "requestOutOfRange",
	NRCSecurityAccessDenied:      "securityAccessDenied",
	NRCInvalidKey:                "invalidKey",
	NRCServiceNotInActiveSession: "serviceNotSupportedInActiveSession",
}

// NRCName renders an NRC as its ISO short name.
func NRCName(nrc byte) string {
	if n, ok := nrcNames[nrc]; ok {
		return n
	}
	return fmt.Sprintf("nrc(%#02x)", nrc)
}

// Session types for DiagnosticSessionControl.
const (
	SessionDefault     byte = 0x01
	SessionProgramming byte = 0x02
	SessionExtended    byte = 0x03
)

// IO control parameters (first byte of the control option record, paper
// §4.5: the three-message control pattern).
const (
	IOReturnControlToECU  byte = 0x00
	IOResetToDefault      byte = 0x01
	IOFreezeCurrentState  byte = 0x02
	IOShortTermAdjustment byte = 0x03
)

// IOParamName names an IO control parameter for reports.
func IOParamName(p byte) string {
	switch p {
	case IOReturnControlToECU:
		return "returnControlToECU"
	case IOResetToDefault:
		return "resetToDefault"
	case IOFreezeCurrentState:
		return "freezeCurrentState"
	case IOShortTermAdjustment:
		return "shortTermAdjustment"
	default:
		return fmt.Sprintf("ioParam(%#02x)", p)
	}
}

// Codec errors.
var (
	ErrTooShort     = errors.New("uds: message too short")
	ErrNotService   = errors.New("uds: message is not the expected service")
	ErrOddDIDBytes  = errors.New("uds: identifier list length is not a multiple of 2")
	ErrNoDIDs       = errors.New("uds: request carries no identifiers")
	ErrDataMismatch = errors.New("uds: response data does not match requested identifiers")
)

// --- ReadDataByIdentifier (0x22) ---

// BuildRDBIRequest builds a ReadDataByIdentifier request for one or more
// DIDs (Fig. 5: "22 {DID} {DID} ...").
func BuildRDBIRequest(dids ...uint16) ([]byte, error) {
	if len(dids) == 0 {
		return nil, ErrNoDIDs
	}
	out := make([]byte, 1, 1+2*len(dids))
	out[0] = SIDReadDataByIdentifier
	for _, d := range dids {
		out = append(out, byte(d>>8), byte(d))
	}
	return out, nil
}

// ParseRDBIRequest extracts the DID list from a 0x22 request.
func ParseRDBIRequest(msg []byte) ([]uint16, error) {
	if len(msg) < 3 {
		return nil, ErrTooShort
	}
	if msg[0] != SIDReadDataByIdentifier {
		return nil, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	body := msg[1:]
	if len(body)%2 != 0 {
		return nil, ErrOddDIDBytes
	}
	dids := make([]uint16, 0, len(body)/2)
	for i := 0; i < len(body); i += 2 {
		dids = append(dids, uint16(body[i])<<8|uint16(body[i+1]))
	}
	return dids, nil
}

// DataRecord is one (DID, data) pair of a ReadDataByIdentifier response.
type DataRecord struct {
	DID  uint16
	Data []byte
}

// BuildRDBIResponse builds a positive 0x62 response carrying the records in
// order (Fig. 5: "62 {DID} {ESV} {DID} {ESV} ...").
func BuildRDBIResponse(records []DataRecord) []byte {
	out := []byte{PositiveResponseSID(SIDReadDataByIdentifier)}
	for _, r := range records {
		out = append(out, byte(r.DID>>8), byte(r.DID))
		out = append(out, r.Data...)
	}
	return out
}

// ParseRDBIResponse splits a positive 0x62 response into records, using the
// requested DID list as the reference — the technique the paper describes
// in §3.2 Step 3: "the list of DIDs in the request message also appear in
// the corresponding response message with the same order and the field
// value after each DID is just the corresponding ESV". Record boundaries
// are found by scanning for the next expected DID.
//
// The returned records' Data fields are zero-copy views into msg; callers
// that outlive msg (or mutate it) must copy.
func ParseRDBIResponse(msg []byte, requested []uint16) ([]DataRecord, error) {
	if len(msg) < 3 {
		return nil, ErrTooShort
	}
	if msg[0] != PositiveResponseSID(SIDReadDataByIdentifier) {
		return nil, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	body := msg[1:]
	var records []DataRecord
	pos := 0
	for i, did := range requested {
		if pos+2 > len(body) {
			return nil, fmt.Errorf("%w: response ends before DID %#04x", ErrDataMismatch, did)
		}
		got := uint16(body[pos])<<8 | uint16(body[pos+1])
		if got != did {
			return nil, fmt.Errorf("%w: expected DID %#04x at offset %d, found %#04x", ErrDataMismatch, did, pos, got)
		}
		pos += 2
		// The record runs until the next requested DID appears (or the
		// message ends, for the final record).
		end := len(body)
		if i+1 < len(requested) {
			next := requested[i+1]
			found := -1
			for j := pos; j+1 < len(body); j++ {
				if uint16(body[j])<<8|uint16(body[j+1]) == next {
					found = j
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("%w: DID %#04x not found after %#04x", ErrDataMismatch, next, did)
			}
			end = found
		}
		records = append(records, DataRecord{DID: did, Data: body[pos:end:end]})
		pos = end
	}
	return records, nil
}

// --- InputOutputControlByIdentifier (0x2F) ---

// IOControlRequest is a decoded 0x2F request (Fig. 4).
type IOControlRequest struct {
	DID uint16
	// Param is the IO control parameter (first byte of the control option
	// record): freeze, short-term adjustment, return control, ...
	Param byte
	// State is the control state that follows the parameter — the
	// manufacturer-proprietary part of the ECR.
	State []byte
}

// BuildIOControlRequest builds a 0x2F request.
func BuildIOControlRequest(req IOControlRequest) []byte {
	out := []byte{SIDIOControlByIdentifier, byte(req.DID >> 8), byte(req.DID), req.Param}
	return append(out, req.State...)
}

// ParseIOControlRequest decodes a 0x2F request.
func ParseIOControlRequest(msg []byte) (IOControlRequest, error) {
	if len(msg) < 4 {
		return IOControlRequest{}, ErrTooShort
	}
	if msg[0] != SIDIOControlByIdentifier {
		return IOControlRequest{}, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	req := IOControlRequest{
		DID:   uint16(msg[1])<<8 | uint16(msg[2]),
		Param: msg[3],
	}
	if len(msg) > 4 {
		req.State = append([]byte(nil), msg[4:]...)
	}
	return req, nil
}

// BuildIOControlResponse builds the positive 0x6F response echoing the DID,
// parameter, and current control status.
func BuildIOControlResponse(did uint16, param byte, status []byte) []byte {
	out := []byte{PositiveResponseSID(SIDIOControlByIdentifier), byte(did >> 8), byte(did), param}
	return append(out, status...)
}

// --- Negative responses ---

// BuildNegativeResponse builds "7F {sid} {nrc}".
func BuildNegativeResponse(sid, nrc byte) []byte {
	return []byte{NegativeResponseSID, sid, nrc}
}

// ParseNegativeResponse decodes a negative response, reporting the rejected
// SID and the NRC. ok is false if msg is not a negative response.
func ParseNegativeResponse(msg []byte) (sid, nrc byte, ok bool) {
	if len(msg) != 3 || msg[0] != NegativeResponseSID {
		return 0, 0, false
	}
	return msg[1], msg[2], true
}

// IsPositiveResponse reports whether msg is the positive response for sid.
func IsPositiveResponse(msg []byte, sid byte) bool {
	return len(msg) > 0 && msg[0] == PositiveResponseSID(sid)
}
