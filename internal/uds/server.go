package uds

import "fmt"

// Server is a UDS application-layer state machine: it tracks the active
// session and security state and dispatches the data-bearing services to
// pluggable handlers. The simulated ECUs (internal/ecu) embed one Server
// per ECU; the transport (ISO-TP or the BMW variant) delivers complete
// request payloads to Handle and sends back whatever it returns.
type Server struct {
	// ReadData resolves one DID to its current data record. Return
	// ok=false for unsupported DIDs (yields requestOutOfRange).
	ReadData func(did uint16) (data []byte, ok bool)
	// IOControl executes one IO control request and returns the control
	// status to echo. Return nrc != 0 to reject.
	IOControl func(req IOControlRequest) (status []byte, nrc byte)
	// Reset is invoked by ECUReset; the sub-function is passed through.
	Reset func(sub byte)
	// ReadDTCs reports the stored trouble codes matching a status mask.
	ReadDTCs func(statusMask byte) []DTC
	// ClearDTCs erases stored codes for a group (0xFFFFFF = all); return
	// false to reject.
	ClearDTCs func(group uint32) bool
	// Routine executes a RoutineControl request; return nrc != 0 to
	// reject.
	Routine func(req RoutineRequest) (status []byte, nrc byte)
	// SecuredServices lists services requiring an unlocked security state.
	SecuredServices map[byte]bool
	// SeedToKey computes the expected key for a seed; nil enables a
	// default XOR-with-0xA5 algorithm (a stand-in for the proprietary
	// seed-key transforms the paper mentions as future work).
	SeedToKey func(seed []byte) []byte

	session  byte
	unlocked bool
	lastSeed []byte
}

// NewServer returns a server in the default session.
func NewServer() *Server {
	return &Server{session: SessionDefault}
}

// Session reports the active diagnostic session.
func (s *Server) Session() byte {
	if s.session == 0 {
		return SessionDefault
	}
	return s.session
}

// Unlocked reports whether security access has been granted.
func (s *Server) Unlocked() bool { return s.unlocked }

// Handle processes one complete request payload and returns the complete
// response payload (positive or negative). It never returns nil for a
// non-empty request: UDS always answers (suppress-response bits are not
// modelled because the paper's tools always read responses).
func (s *Server) Handle(req []byte) []byte {
	if len(req) == 0 {
		return BuildNegativeResponse(0, NRCIncorrectMessageLength)
	}
	sid := req[0]
	if s.SecuredServices[sid] && !s.unlocked {
		return BuildNegativeResponse(sid, NRCSecurityAccessDenied)
	}
	switch sid {
	case SIDDiagnosticSessionControl:
		return s.handleSessionControl(req)
	case SIDECUReset:
		return s.handleECUReset(req)
	case SIDSecurityAccess:
		return s.handleSecurityAccess(req)
	case SIDTesterPresent:
		return s.handleTesterPresent(req)
	case SIDReadDataByIdentifier:
		return s.handleReadData(req)
	case SIDIOControlByIdentifier:
		return s.handleIOControl(req)
	case SIDReadDTCInformation:
		return s.handleReadDTC(req)
	case SIDClearDiagnosticInfo:
		return s.handleClearDTC(req)
	case SIDRoutineControl:
		return s.handleRoutine(req)
	default:
		return BuildNegativeResponse(sid, NRCServiceNotSupported)
	}
}

func (s *Server) handleSessionControl(req []byte) []byte {
	if len(req) != 2 {
		return BuildNegativeResponse(SIDDiagnosticSessionControl, NRCIncorrectMessageLength)
	}
	sub := req[1]
	switch sub {
	case SessionDefault, SessionProgramming, SessionExtended:
		s.session = sub
		if sub == SessionDefault {
			s.unlocked = false
		}
		// P2/P2* timing parameters per the standard's response format.
		return []byte{PositiveResponseSID(SIDDiagnosticSessionControl), sub, 0x00, 0x32, 0x01, 0xF4}
	default:
		return BuildNegativeResponse(SIDDiagnosticSessionControl, NRCSubFunctionNotSupported)
	}
}

func (s *Server) handleECUReset(req []byte) []byte {
	if len(req) != 2 {
		return BuildNegativeResponse(SIDECUReset, NRCIncorrectMessageLength)
	}
	if s.Reset != nil {
		s.Reset(req[1])
	}
	s.session = SessionDefault
	s.unlocked = false
	return []byte{PositiveResponseSID(SIDECUReset), req[1]}
}

func (s *Server) handleTesterPresent(req []byte) []byte {
	if len(req) != 2 {
		return BuildNegativeResponse(SIDTesterPresent, NRCIncorrectMessageLength)
	}
	return []byte{PositiveResponseSID(SIDTesterPresent), req[1]}
}

func (s *Server) handleSecurityAccess(req []byte) []byte {
	if len(req) < 2 {
		return BuildNegativeResponse(SIDSecurityAccess, NRCIncorrectMessageLength)
	}
	level := req[1]
	if level%2 == 1 { // requestSeed
		if len(req) != 2 {
			return BuildNegativeResponse(SIDSecurityAccess, NRCIncorrectMessageLength)
		}
		if s.unlocked {
			// Already unlocked: the standard returns an all-zero seed.
			return []byte{PositiveResponseSID(SIDSecurityAccess), level, 0, 0}
		}
		s.lastSeed = []byte{0x3A ^ level, 0x7C + level}
		out := []byte{PositiveResponseSID(SIDSecurityAccess), level}
		return append(out, s.lastSeed...)
	}
	// sendKey
	if s.lastSeed == nil {
		return BuildNegativeResponse(SIDSecurityAccess, NRCRequestSequenceError)
	}
	want := s.seedToKey(s.lastSeed)
	got := req[2:]
	if len(got) != len(want) {
		return BuildNegativeResponse(SIDSecurityAccess, NRCInvalidKey)
	}
	for i := range want {
		if got[i] != want[i] {
			return BuildNegativeResponse(SIDSecurityAccess, NRCInvalidKey)
		}
	}
	s.unlocked = true
	s.lastSeed = nil
	return []byte{PositiveResponseSID(SIDSecurityAccess), level}
}

func (s *Server) seedToKey(seed []byte) []byte {
	if s.SeedToKey != nil {
		return s.SeedToKey(seed)
	}
	return DefaultSeedToKey(seed)
}

// DefaultSeedToKey is the stand-in seed→key transform used when a vehicle
// profile does not define its own.
func DefaultSeedToKey(seed []byte) []byte {
	key := make([]byte, len(seed))
	for i, b := range seed {
		key[i] = b ^ 0xA5
	}
	return key
}

func (s *Server) handleReadData(req []byte) []byte {
	dids, err := ParseRDBIRequest(req)
	if err != nil {
		return BuildNegativeResponse(SIDReadDataByIdentifier, NRCIncorrectMessageLength)
	}
	if s.ReadData == nil {
		return BuildNegativeResponse(SIDReadDataByIdentifier, NRCConditionsNotCorrect)
	}
	records := make([]DataRecord, 0, len(dids))
	for _, did := range dids {
		data, ok := s.ReadData(did)
		if !ok {
			return BuildNegativeResponse(SIDReadDataByIdentifier, NRCRequestOutOfRange)
		}
		records = append(records, DataRecord{DID: did, Data: data})
	}
	return BuildRDBIResponse(records)
}

func (s *Server) handleIOControl(req []byte) []byte {
	parsed, err := ParseIOControlRequest(req)
	if err != nil {
		return BuildNegativeResponse(SIDIOControlByIdentifier, NRCIncorrectMessageLength)
	}
	if s.session == SessionDefault {
		// Real ECUs require an extended session for actuation; tools send
		// 10 03 first, and the reverser observes that prologue.
		return BuildNegativeResponse(SIDIOControlByIdentifier, NRCServiceNotInActiveSession)
	}
	if s.IOControl == nil {
		return BuildNegativeResponse(SIDIOControlByIdentifier, NRCConditionsNotCorrect)
	}
	status, nrc := s.IOControl(parsed)
	if nrc != 0 {
		return BuildNegativeResponse(SIDIOControlByIdentifier, nrc)
	}
	return BuildIOControlResponse(parsed.DID, parsed.Param, status)
}

func (s *Server) handleReadDTC(req []byte) []byte {
	if len(req) != 3 || req[1] != ReportDTCByStatusMask {
		return BuildNegativeResponse(SIDReadDTCInformation, NRCSubFunctionNotSupported)
	}
	if s.ReadDTCs == nil {
		return BuildReadDTCResponse(0xFF, nil)
	}
	return BuildReadDTCResponse(0xFF, s.ReadDTCs(req[2]))
}

func (s *Server) handleClearDTC(req []byte) []byte {
	if len(req) != 4 {
		return BuildNegativeResponse(SIDClearDiagnosticInfo, NRCIncorrectMessageLength)
	}
	group := uint32(req[1])<<16 | uint32(req[2])<<8 | uint32(req[3])
	if s.ClearDTCs != nil && !s.ClearDTCs(group) {
		return BuildNegativeResponse(SIDClearDiagnosticInfo, NRCConditionsNotCorrect)
	}
	return []byte{PositiveResponseSID(SIDClearDiagnosticInfo)}
}

func (s *Server) handleRoutine(req []byte) []byte {
	parsed, err := ParseRoutineRequest(req)
	if err != nil {
		return BuildNegativeResponse(SIDRoutineControl, NRCIncorrectMessageLength)
	}
	if s.session == SessionDefault {
		return BuildNegativeResponse(SIDRoutineControl, NRCServiceNotInActiveSession)
	}
	if s.Routine == nil {
		return BuildNegativeResponse(SIDRoutineControl, NRCServiceNotSupported)
	}
	status, nrc := s.Routine(parsed)
	if nrc != 0 {
		return BuildNegativeResponse(SIDRoutineControl, nrc)
	}
	return BuildRoutineResponse(parsed, status)
}

// RequestName renders a request's service mnemonically, for logs and the
// CLI ("22 F4 0D" → "ReadDataByIdentifier").
func RequestName(req []byte) string {
	if len(req) == 0 {
		return "empty"
	}
	switch req[0] {
	case SIDDiagnosticSessionControl:
		return "DiagnosticSessionControl"
	case SIDECUReset:
		return "ECUReset"
	case SIDClearDiagnosticInfo:
		return "ClearDiagnosticInformation"
	case SIDReadDTCInformation:
		return "ReadDTCInformation"
	case SIDReadDataByIdentifier:
		return "ReadDataByIdentifier"
	case SIDSecurityAccess:
		return "SecurityAccess"
	case SIDWriteDataByIdentifier:
		return "WriteDataByIdentifier"
	case SIDIOControlByIdentifier:
		return "InputOutputControlByIdentifier"
	case SIDRoutineControl:
		return "RoutineControl"
	case SIDTesterPresent:
		return "TesterPresent"
	default:
		return fmt.Sprintf("service(%#02x)", req[0])
	}
}
