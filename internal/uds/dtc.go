package uds

import (
	"errors"
	"fmt"
)

// DTC is one diagnostic trouble code with its ISO 14229 status byte.
// Real tools render the three-byte code in the familiar SAE form
// ("P0301"); the pipeline's screening step must recognise and discard this
// traffic (the paper's tools expose Read/Clear Trouble Codes right next to
// the data-stream functions, and the UI analyzer filters them out).
type DTC struct {
	// Code is the 3-byte DTC (high byte selects the P/C/B/U letter).
	Code uint32
	// Status is the ISO 14229 status mask byte.
	Status byte
}

// DTC status bits (ISO 14229-1 D.2).
const (
	DTCStatusTestFailed              byte = 0x01
	DTCStatusTestFailedThisCycle     byte = 0x02
	DTCStatusPending                 byte = 0x04
	DTCStatusConfirmed               byte = 0x08
	DTCStatusTestNotCompletedSince   byte = 0x10
	DTCStatusTestFailedSinceClear    byte = 0x20
	DTCStatusTestNotCompletedCycle   byte = 0x40
	DTCStatusWarningIndicatorRequest byte = 0x80
)

// ReportDTCByStatusMask is the 0x19 sub-function the fleet's tools use.
const ReportDTCByStatusMask byte = 0x02

// String renders the code in SAE J2012 form ("P0301").
func (d DTC) String() string {
	letters := [4]byte{'P', 'C', 'B', 'U'}
	letter := letters[(d.Code>>22)&0x3]
	digit1 := (d.Code >> 20) & 0x3
	return fmt.Sprintf("%c%d%03X", letter, digit1, (d.Code>>8)&0xFFF)
}

// Codec errors.
var ErrBadDTCBlock = errors.New("uds: DTC report block is not a multiple of 4 bytes")

// BuildReadDTCRequest builds "19 02 {statusMask}".
func BuildReadDTCRequest(statusMask byte) []byte {
	return []byte{SIDReadDTCInformation, ReportDTCByStatusMask, statusMask}
}

// BuildReadDTCResponse builds "59 02 {availabilityMask} {DTC+status}*".
func BuildReadDTCResponse(availabilityMask byte, dtcs []DTC) []byte {
	out := []byte{PositiveResponseSID(SIDReadDTCInformation), ReportDTCByStatusMask, availabilityMask}
	for _, d := range dtcs {
		out = append(out, byte(d.Code>>16), byte(d.Code>>8), byte(d.Code), d.Status)
	}
	return out
}

// ParseReadDTCResponse decodes a positive 0x59 0x02 response.
func ParseReadDTCResponse(msg []byte) (availabilityMask byte, dtcs []DTC, err error) {
	if len(msg) < 3 {
		return 0, nil, ErrTooShort
	}
	if msg[0] != PositiveResponseSID(SIDReadDTCInformation) || msg[1] != ReportDTCByStatusMask {
		return 0, nil, fmt.Errorf("%w: % X", ErrNotService, msg[:2])
	}
	body := msg[3:]
	if len(body)%4 != 0 {
		return 0, nil, ErrBadDTCBlock
	}
	for i := 0; i < len(body); i += 4 {
		dtcs = append(dtcs, DTC{
			Code:   uint32(body[i])<<16 | uint32(body[i+1])<<8 | uint32(body[i+2]),
			Status: body[i+3],
		})
	}
	return msg[2], dtcs, nil
}

// BuildClearDTCRequest builds "14 {group:3 bytes}". Group 0xFFFFFF clears
// everything — what the tools' Clear Trouble Codes button sends.
func BuildClearDTCRequest(group uint32) []byte {
	return []byte{SIDClearDiagnosticInfo, byte(group >> 16), byte(group >> 8), byte(group)}
}

// --- RoutineControl (0x31) ---

// Routine-control sub-functions.
const (
	RoutineStart          byte = 0x01
	RoutineStop           byte = 0x02
	RoutineRequestResults byte = 0x03
)

// RoutineRequest is a decoded 0x31 request. BMW tools drive several
// actuators through routines (the paper's Table 13 BMW rows are
// "31 01 ..." messages).
type RoutineRequest struct {
	Sub    byte
	ID     uint16
	Option []byte
}

// BuildRoutineRequest encodes "31 {sub} {routine id} {option}*".
func BuildRoutineRequest(req RoutineRequest) []byte {
	out := []byte{SIDRoutineControl, req.Sub, byte(req.ID >> 8), byte(req.ID)}
	return append(out, req.Option...)
}

// ParseRoutineRequest decodes a 0x31 request.
func ParseRoutineRequest(msg []byte) (RoutineRequest, error) {
	if len(msg) < 4 {
		return RoutineRequest{}, ErrTooShort
	}
	if msg[0] != SIDRoutineControl {
		return RoutineRequest{}, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	req := RoutineRequest{Sub: msg[1], ID: uint16(msg[2])<<8 | uint16(msg[3])}
	if len(msg) > 4 {
		req.Option = append([]byte(nil), msg[4:]...)
	}
	return req, nil
}

// BuildRoutineResponse builds the positive 0x71 response.
func BuildRoutineResponse(req RoutineRequest, status []byte) []byte {
	out := []byte{PositiveResponseSID(SIDRoutineControl), req.Sub, byte(req.ID >> 8), byte(req.ID)}
	return append(out, status...)
}
