package uds

import (
	"bytes"
	"errors"
	"testing"
)

func TestDTCString(t *testing.T) {
	cases := []struct {
		code uint32
		want string
	}{
		{0x030100, "P0301"}, // misfire cylinder 1
		{0x430100, "C0301"}, // chassis
		{0x830100, "B0301"}, // body
		{0xC30100, "U0301"}, // network
		{0x170200, "P1702"}, // manufacturer range
	}
	for _, c := range cases {
		if got := (DTC{Code: c.code}).String(); got != c.want {
			t.Errorf("DTC(%06X).String() = %q, want %q", c.code, got, c.want)
		}
	}
}

func TestReadDTCRoundTrip(t *testing.T) {
	dtcs := []DTC{
		{Code: 0x030100, Status: DTCStatusConfirmed | DTCStatusTestFailed},
		{Code: 0x171300, Status: DTCStatusPending},
	}
	resp := BuildReadDTCResponse(0xFF, dtcs)
	mask, got, err := ParseReadDTCResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if mask != 0xFF || len(got) != 2 {
		t.Fatalf("mask=%#x dtcs=%d", mask, len(got))
	}
	for i := range dtcs {
		if got[i] != dtcs[i] {
			t.Fatalf("dtc %d = %+v, want %+v", i, got[i], dtcs[i])
		}
	}
}

func TestParseReadDTCResponseErrors(t *testing.T) {
	if _, _, err := ParseReadDTCResponse([]byte{0x59}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := ParseReadDTCResponse([]byte{0x62, 0x02, 0xFF}); !errors.Is(err, ErrNotService) {
		t.Fatalf("wrong sid: %v", err)
	}
	if _, _, err := ParseReadDTCResponse([]byte{0x59, 0x02, 0xFF, 1, 2}); !errors.Is(err, ErrBadDTCBlock) {
		t.Fatalf("ragged: %v", err)
	}
}

func TestServerReadAndClearDTCs(t *testing.T) {
	stored := []DTC{
		{Code: 0x030100, Status: DTCStatusConfirmed},
		{Code: 0x171300, Status: DTCStatusPending},
	}
	s := NewServer()
	s.ReadDTCs = func(mask byte) []DTC {
		var out []DTC
		for _, d := range stored {
			if d.Status&mask != 0 {
				out = append(out, d)
			}
		}
		return out
	}
	cleared := uint32(0)
	s.ClearDTCs = func(group uint32) bool { cleared = group; stored = nil; return true }

	resp := s.Handle(BuildReadDTCRequest(DTCStatusConfirmed))
	_, dtcs, err := ParseReadDTCResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(dtcs) != 1 || dtcs[0].Code != 0x030100 {
		t.Fatalf("dtcs = %+v", dtcs)
	}

	resp = s.Handle(BuildClearDTCRequest(0xFFFFFF))
	if !IsPositiveResponse(resp, SIDClearDiagnosticInfo) {
		t.Fatalf("clear resp = % X", resp)
	}
	if cleared != 0xFFFFFF || stored != nil {
		t.Fatalf("cleared=%#x stored=%v", cleared, stored)
	}

	// Unknown sub-function rejected.
	resp = s.Handle([]byte{0x19, 0x0A, 0xFF})
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCSubFunctionNotSupported {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerReadDTCWithoutStore(t *testing.T) {
	s := NewServer()
	resp := s.Handle(BuildReadDTCRequest(0xFF))
	_, dtcs, err := ParseReadDTCResponse(resp)
	if err != nil || len(dtcs) != 0 {
		t.Fatalf("resp = % X (%v)", resp, err)
	}
}

func TestRoutineRoundTrip(t *testing.T) {
	req := RoutineRequest{Sub: RoutineStart, ID: 0x0103, Option: []byte{0x01}}
	raw := BuildRoutineRequest(req)
	if !bytes.Equal(raw, []byte{0x31, 0x01, 0x01, 0x03, 0x01}) {
		t.Fatalf("raw = % X", raw)
	}
	got, err := ParseRoutineRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sub != RoutineStart || got.ID != 0x0103 || !bytes.Equal(got.Option, []byte{0x01}) {
		t.Fatalf("parsed = %+v", got)
	}
	resp := BuildRoutineResponse(got, []byte{0x00})
	if !bytes.Equal(resp, []byte{0x71, 0x01, 0x01, 0x03, 0x00}) {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerRoutineControl(t *testing.T) {
	s := NewServer()
	var started []uint16
	s.Routine = func(req RoutineRequest) ([]byte, byte) {
		if req.Sub == RoutineStart {
			started = append(started, req.ID)
			return []byte{0x00}, 0
		}
		return nil, NRCSubFunctionNotSupported
	}
	// Routines need an extended session.
	resp := s.Handle(BuildRoutineRequest(RoutineRequest{Sub: RoutineStart, ID: 0x0203}))
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCServiceNotInActiveSession {
		t.Fatalf("default-session routine resp = % X", resp)
	}
	s.Handle([]byte{0x10, 0x03})
	resp = s.Handle(BuildRoutineRequest(RoutineRequest{Sub: RoutineStart, ID: 0x0203}))
	if !IsPositiveResponse(resp, SIDRoutineControl) {
		t.Fatalf("routine resp = % X", resp)
	}
	if len(started) != 1 || started[0] != 0x0203 {
		t.Fatalf("started = %v", started)
	}
	// No handler → serviceNotSupported.
	s2 := NewServer()
	s2.Handle([]byte{0x10, 0x03})
	resp = s2.Handle(BuildRoutineRequest(RoutineRequest{Sub: RoutineStart, ID: 1}))
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCServiceNotSupported {
		t.Fatalf("resp = % X", resp)
	}
}
