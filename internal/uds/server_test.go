package uds

import (
	"bytes"
	"testing"
)

func newTestServer() *Server {
	s := NewServer()
	s.ReadData = func(did uint16) ([]byte, bool) {
		switch did {
		case 0xF40D:
			return []byte{0x21}, true
		case 0xF41A:
			return []byte{0x01, 0x02}, true
		default:
			return nil, false
		}
	}
	s.IOControl = func(req IOControlRequest) ([]byte, byte) {
		if req.DID != 0x0950 {
			return nil, NRCRequestOutOfRange
		}
		return []byte{0x01}, 0
	}
	return s
}

func TestServerSessionControl(t *testing.T) {
	s := newTestServer()
	if s.Session() != SessionDefault {
		t.Fatalf("initial session = %#x", s.Session())
	}
	resp := s.Handle([]byte{0x10, 0x03})
	if !IsPositiveResponse(resp, SIDDiagnosticSessionControl) {
		t.Fatalf("resp = % X", resp)
	}
	if s.Session() != SessionExtended {
		t.Fatalf("session = %#x, want extended", s.Session())
	}
	// Unknown sub-function.
	resp = s.Handle([]byte{0x10, 0x55})
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCSubFunctionNotSupported {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerReadData(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x22, 0xF4, 0x0D})
	if !bytes.Equal(resp, []byte{0x62, 0xF4, 0x0D, 0x21}) {
		t.Fatalf("resp = % X", resp)
	}
	// Multi-DID.
	resp = s.Handle([]byte{0x22, 0xF4, 0x0D, 0xF4, 0x1A})
	if !bytes.Equal(resp, []byte{0x62, 0xF4, 0x0D, 0x21, 0xF4, 0x1A, 0x01, 0x02}) {
		t.Fatalf("multi resp = % X", resp)
	}
	// Unknown DID.
	resp = s.Handle([]byte{0x22, 0xAB, 0xCD})
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCRequestOutOfRange {
		t.Fatalf("unknown DID resp = % X", resp)
	}
}

func TestServerIOControlRequiresExtendedSession(t *testing.T) {
	s := newTestServer()
	req := BuildIOControlRequest(IOControlRequest{DID: 0x0950, Param: IOFreezeCurrentState})
	resp := s.Handle(req)
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCServiceNotInActiveSession {
		t.Fatalf("default-session IO control resp = % X", resp)
	}
	s.Handle([]byte{0x10, 0x03})
	resp = s.Handle(req)
	if !bytes.Equal(resp, []byte{0x6F, 0x09, 0x50, 0x02, 0x01}) {
		t.Fatalf("extended-session IO control resp = % X", resp)
	}
}

func TestServerSecurityAccessFlow(t *testing.T) {
	s := newTestServer()
	s.SecuredServices = map[byte]bool{SIDIOControlByIdentifier: true}
	s.Handle([]byte{0x10, 0x03})

	req := BuildIOControlRequest(IOControlRequest{DID: 0x0950, Param: IOFreezeCurrentState})
	resp := s.Handle(req)
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCSecurityAccessDenied {
		t.Fatalf("locked IO control resp = % X", resp)
	}

	// Request seed.
	resp = s.Handle([]byte{0x27, 0x01})
	if !IsPositiveResponse(resp, SIDSecurityAccess) || len(resp) != 4 {
		t.Fatalf("seed resp = % X", resp)
	}
	seed := resp[2:]

	// Wrong key first.
	resp = s.Handle(append([]byte{0x27, 0x02}, 0xDE, 0xAD))
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCInvalidKey {
		t.Fatalf("wrong key resp = % X", resp)
	}

	// The seed must be re-requested after a failed key.
	resp = s.Handle([]byte{0x27, 0x01})
	seed = resp[2:]
	key := DefaultSeedToKey(seed)
	resp = s.Handle(append([]byte{0x27, 0x02}, key...))
	if !IsPositiveResponse(resp, SIDSecurityAccess) {
		t.Fatalf("correct key resp = % X", resp)
	}
	if !s.Unlocked() {
		t.Fatal("server not unlocked after correct key")
	}
	resp = s.Handle(req)
	if !IsPositiveResponse(resp, SIDIOControlByIdentifier) {
		t.Fatalf("unlocked IO control resp = % X", resp)
	}
}

func TestServerSecurityKeyWithoutSeed(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x27, 0x02, 0x00, 0x00})
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCRequestSequenceError {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerSeedWhenAlreadyUnlocked(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x27, 0x01})
	key := DefaultSeedToKey(resp[2:])
	s.Handle(append([]byte{0x27, 0x02}, key...))
	resp = s.Handle([]byte{0x27, 0x01})
	if !bytes.Equal(resp[2:], []byte{0, 0}) {
		t.Fatalf("unlocked seed = % X, want zeros", resp[2:])
	}
}

func TestServerReturnToDefaultSessionLocks(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x27, 0x01})
	key := DefaultSeedToKey(resp[2:])
	s.Handle(append([]byte{0x27, 0x02}, key...))
	if !s.Unlocked() {
		t.Fatal("setup failed")
	}
	s.Handle([]byte{0x10, 0x01})
	if s.Unlocked() {
		t.Fatal("default session did not relock security")
	}
}

func TestServerECUReset(t *testing.T) {
	s := newTestServer()
	var gotSub byte
	s.Reset = func(sub byte) { gotSub = sub }
	s.Handle([]byte{0x10, 0x03})
	resp := s.Handle([]byte{0x11, 0x01})
	if !bytes.Equal(resp, []byte{0x51, 0x01}) {
		t.Fatalf("reset resp = % X", resp)
	}
	if gotSub != 0x01 {
		t.Fatalf("reset sub = %#x", gotSub)
	}
	if s.Session() != SessionDefault {
		t.Fatal("reset did not return to default session")
	}
}

func TestServerTesterPresent(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x3E, 0x00})
	if !bytes.Equal(resp, []byte{0x7E, 0x00}) {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerUnsupportedService(t *testing.T) {
	s := newTestServer()
	resp := s.Handle([]byte{0x85, 0x01})
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCServiceNotSupported {
		t.Fatalf("resp = % X", resp)
	}
}

func TestServerEmptyAndMalformed(t *testing.T) {
	s := newTestServer()
	if _, nrc, ok := ParseNegativeResponse(s.Handle(nil)); !ok || nrc != NRCIncorrectMessageLength {
		t.Fatal("empty request not rejected")
	}
	if _, nrc, ok := ParseNegativeResponse(s.Handle([]byte{0x22, 0xF4})); !ok || nrc != NRCIncorrectMessageLength {
		t.Fatal("odd RDBI request not rejected")
	}
	if _, nrc, ok := ParseNegativeResponse(s.Handle([]byte{0x10})); !ok || nrc != NRCIncorrectMessageLength {
		t.Fatal("short session control not rejected")
	}
}

func TestRequestName(t *testing.T) {
	if got := RequestName([]byte{0x22, 0xF4, 0x0D}); got != "ReadDataByIdentifier" {
		t.Fatalf("RequestName = %q", got)
	}
	if got := RequestName([]byte{0xBA}); got != "service(0xba)" {
		t.Fatalf("RequestName unknown = %q", got)
	}
	if got := RequestName(nil); got != "empty" {
		t.Fatalf("RequestName(nil) = %q", got)
	}
}

func TestRequestNameAllServices(t *testing.T) {
	cases := map[byte]string{
		SIDDiagnosticSessionControl: "DiagnosticSessionControl",
		SIDECUReset:                 "ECUReset",
		SIDClearDiagnosticInfo:      "ClearDiagnosticInformation",
		SIDReadDTCInformation:       "ReadDTCInformation",
		SIDReadDataByIdentifier:     "ReadDataByIdentifier",
		SIDSecurityAccess:           "SecurityAccess",
		SIDWriteDataByIdentifier:    "WriteDataByIdentifier",
		SIDIOControlByIdentifier:    "InputOutputControlByIdentifier",
		SIDRoutineControl:           "RoutineControl",
		SIDTesterPresent:            "TesterPresent",
	}
	for sid, want := range cases {
		if got := RequestName([]byte{sid}); got != want {
			t.Errorf("RequestName(%#02x) = %q, want %q", sid, got, want)
		}
	}
}

func TestIOParamNameAll(t *testing.T) {
	cases := map[byte]string{
		IOReturnControlToECU:  "returnControlToECU",
		IOResetToDefault:      "resetToDefault",
		IOFreezeCurrentState:  "freezeCurrentState",
		IOShortTermAdjustment: "shortTermAdjustment",
	}
	for p, want := range cases {
		if got := IOParamName(p); got != want {
			t.Errorf("IOParamName(%#02x) = %q, want %q", p, got, want)
		}
	}
}

func TestServerCustomSeedToKey(t *testing.T) {
	s := newTestServer()
	s.SeedToKey = func(seed []byte) []byte {
		key := make([]byte, len(seed))
		for i, b := range seed {
			key[i] = b + 1
		}
		return key
	}
	resp := s.Handle([]byte{0x27, 0x01})
	seed := resp[2:]
	key := make([]byte, len(seed))
	for i, b := range seed {
		key[i] = b + 1
	}
	resp = s.Handle(append([]byte{0x27, 0x02}, key...))
	if !IsPositiveResponse(resp, SIDSecurityAccess) {
		t.Fatalf("custom seed-key unlock failed: % X", resp)
	}
}

func TestServerClearDTCRejection(t *testing.T) {
	s := newTestServer()
	s.ClearDTCs = func(uint32) bool { return false }
	resp := s.Handle(BuildClearDTCRequest(0xFFFFFF))
	if _, nrc, ok := ParseNegativeResponse(resp); !ok || nrc != NRCConditionsNotCorrect {
		t.Fatalf("resp = % X", resp)
	}
	if _, nrc, ok := ParseNegativeResponse(s.Handle([]byte{0x14, 0xFF})); !ok || nrc != NRCIncorrectMessageLength {
		t.Fatal("short clear not rejected")
	}
}

func TestServerTesterPresentBadLength(t *testing.T) {
	s := newTestServer()
	if _, nrc, ok := ParseNegativeResponse(s.Handle([]byte{0x3E})); !ok || nrc != NRCIncorrectMessageLength {
		t.Fatal("short tester present not rejected")
	}
}

func TestServerSessionZeroValueDefaults(t *testing.T) {
	var s Server
	if s.Session() != SessionDefault {
		t.Fatalf("zero server session = %#x", s.Session())
	}
}
