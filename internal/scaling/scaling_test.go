package scaling

import (
	"math"
	"testing"
	"testing/quick"

	"dpreverser/internal/gp"
)

func col(vals ...float64) []float64 { return vals }

func TestFactorForBands(t *testing.T) {
	cases := []struct {
		name         string
		values       []float64
		allowEnlarge bool
		want         float64
	}{
		{"mid range untouched", col(2, 3, 5, 8), true, 1},
		{"tens reduced", col(20, 40, 80, 15), true, 0.1},
		{"hundreds reduced", col(200, 400, 800), true, 0.01},
		{"thousands reduced", col(2000, 4000, 8000), true, 0.001},
		{"ten-thousands reduced", col(20000, 40000, 99999), true, 1e-4},
		{"tenths enlarged", col(0.2, 0.4, 0.8), true, 10},
		{"hundredths enlarged", col(0.02, 0.04, 0.08), true, 100},
		{"thousandths enlarged", col(0.002, 0.004, 0.008), true, 1000},
		{"sub-thousandths enlarged", col(0.0002, 0.0004, 0.0008), true, 1e4},
		{"small X not enlarged", col(0.2, 0.4, 0.8), false, 1},
		{"majority rule: no scale", col(5, 5, 5, 200), true, 1},
		{"negatives use magnitude", col(-200, -400, -300), true, 0.01},
		{"all zero", col(0, 0, 0), true, 1},
		{"empty", nil, true, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := factorFor(c.values, c.allowEnlarge); got != c.want {
				t.Fatalf("factorFor(%v) = %v, want %v", c.values, got, c.want)
			}
		})
	}
}

func TestPlanForAndApply(t *testing.T) {
	d := &gp.Dataset{
		X: [][]float64{{200, 2}, {400, 3}, {800, 5}},
		Y: []float64{2000, 4000, 8000},
	}
	p := PlanFor(d)
	if p.YFactor != 0.001 {
		t.Fatalf("YFactor = %v, want 0.001", p.YFactor)
	}
	if p.XFactors[0] != 0.01 || p.XFactors[1] != 1 {
		t.Fatalf("XFactors = %v", p.XFactors)
	}
	scaled := p.Apply(d)
	if scaled.X[0][0] != 2 || scaled.X[0][1] != 2 || scaled.Y[0] != 2 {
		t.Fatalf("scaled = %+v", scaled)
	}
	// Input untouched.
	if d.X[0][0] != 200 || d.Y[0] != 2000 {
		t.Fatal("Apply mutated its input")
	}
}

func TestIdentity(t *testing.T) {
	if !(Plan{YFactor: 1, XFactors: []float64{1, 1}}).Identity() {
		t.Fatal("identity plan not recognised")
	}
	if (Plan{YFactor: 0.1, XFactors: []float64{1}}).Identity() {
		t.Fatal("scaling plan claimed identity")
	}
	if (Plan{YFactor: 1, XFactors: []float64{0.1}}).Identity() {
		t.Fatal("x-scaling plan claimed identity")
	}
}

func TestRestoreRewritesFormula(t *testing.T) {
	// Inferred on scaled data: Y' = X0'  (with X0' = 0.01*X0, Y' = 0.001*Y)
	// Restored: Y = 0.01*X0/0.001 = 10*X0.
	p := Plan{XFactors: []float64{0.01}, YFactor: 0.001}
	restored := p.Restore(gp.NewVar(0))
	for _, x := range []float64{0, 50, 200} {
		want := 10 * x
		if got := restored.Eval([]float64{x}); math.Abs(got-want) > 1e-9 {
			t.Fatalf("restored(%v) = %v, want %v (tree %q)", x, got, want, restored)
		}
	}
}

func TestRestoreIdentityPlanKeepsTree(t *testing.T) {
	p := Plan{XFactors: []float64{1, 1}, YFactor: 1}
	tree := gp.NewBinary(gp.OpMul, gp.NewVar(0), gp.NewVar(1))
	restored := p.Restore(tree)
	if restored.String() != tree.String() {
		t.Fatalf("identity restore changed %q to %q", tree, restored)
	}
}

// Property: for any plan factors from the Table 2 bands, Apply+Restore is
// semantics-preserving — a formula inferred perfectly on scaled data
// predicts the original data perfectly after Restore.
func TestApplyRestoreRoundTripProperty(t *testing.T) {
	f := func(xsRaw []uint16, yScaleIdx, xScaleIdx uint8) bool {
		if len(xsRaw) < 4 {
			return true
		}
		if len(xsRaw) > 40 {
			xsRaw = xsRaw[:40]
		}
		yFactors := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000, 1e4}
		yf := yFactors[int(yScaleIdx)%len(yFactors)]
		xf := yFactors[int(xScaleIdx)%5] // reductions and identity only
		// Original relation: Y = 3*X + 7.
		d := &gp.Dataset{}
		for _, r := range xsRaw {
			x := float64(r % 1000)
			d.X = append(d.X, []float64{x})
			d.Y = append(d.Y, 3*x+7)
		}
		p := Plan{XFactors: []float64{xf}, YFactor: yf}
		scaled := p.Apply(d)
		// The exact formula on scaled data: Y' = yf*(3*(X'/xf) + 7).
		inferred := gp.NewBinary(gp.OpMul, gp.NewConst(yf),
			gp.NewBinary(gp.OpAdd,
				gp.NewBinary(gp.OpMul, gp.NewConst(3/xf), gp.NewVar(0)),
				gp.NewConst(7)))
		// Sanity: inferred must fit the scaled data.
		for i, row := range scaled.X {
			if math.Abs(inferred.Eval(row)-scaled.Y[i]) > 1e-6*(1+math.Abs(scaled.Y[i])) {
				return false
			}
		}
		restored := p.Restore(inferred)
		for i, row := range d.X {
			if math.Abs(restored.Eval(row)-d.Y[i]) > 1e-6*(1+math.Abs(d.Y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInferEndToEndWithLargeMagnitudes(t *testing.T) {
	// Y = 4*X over X in the thousands — exactly the case Table 2 exists
	// for. Infer must return a formula in original units.
	d := &gp.Dataset{}
	for x := 1000.0; x <= 3000; x += 50 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 4*x)
	}
	cfg := gp.DefaultConfig()
	cfg.PopulationSize = 200
	cfg.Generations = 15
	cfg.Seed = 5
	res, err := Infer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := gp.NewBinary(gp.OpMul, gp.NewConst(4), gp.NewVar(0))
	if !gp.EquivalentRel(res.Best, truth, d.X, 1.0, 0.02) {
		t.Fatalf("Infer recovered %q (fitness %v)", res.Best, res.Fitness)
	}
}

func TestInferPropagatesErrors(t *testing.T) {
	if _, err := Infer(&gp.Dataset{}, gp.DefaultConfig()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
