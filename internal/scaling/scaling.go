// Package scaling implements the paper's Table 2 magnitude normalisation
// (§3.5 Step 3): before inference, X and Y samples are rescaled so most
// values land in the window where GP is best behaved, and after inference
// the scale factors are substituted back into the recovered formula
// (the table's "Replace(Y', Y/10³)" post-processing).
//
// The paper's rule: if more than half of the |Y| values are larger than 10
// they are reduced by the band's power of ten; if more than half are
// smaller than 1 they are enlarged. X values are integers ≥ 0 and are only
// ever reduced.
package scaling

import (
	"context"
	"math"

	"dpreverser/internal/gp"
)

// Plan records the factors chosen for one dataset: each variable and the
// target are multiplied by their factor before inference.
type Plan struct {
	// XFactors has one multiplier per input variable.
	XFactors []float64
	// YFactor multiplies the target.
	YFactor float64
}

// reductionFactor implements the Table 2 bands for values that are too
// large: the result is the multiplier (≤ 1) to apply.
func reductionFactor(mag float64) float64 {
	switch {
	case mag > 1e4:
		return 1e-4
	case mag > 1e3:
		return 1e-3
	case mag > 1e2:
		return 1e-2
	case mag > 10:
		return 1e-1
	default:
		return 1
	}
}

// enlargementFactor implements the Table 2 bands for values that are too
// small: the result is the multiplier (≥ 1) to apply.
func enlargementFactor(mag float64) float64 {
	switch {
	case mag < 1e-3:
		return 1e4
	case mag < 1e-2:
		return 1e3
	case mag < 1e-1:
		return 1e2
	case mag < 1.0:
		return 10
	default:
		return 1
	}
}

// factorFor picks the multiplier for a value population following the
// paper's majority rule, keyed on the median magnitude.
func factorFor(values []float64, allowEnlarge bool) float64 {
	if len(values) == 0 {
		return 1
	}
	over10, under1 := 0, 0
	for _, v := range values {
		a := math.Abs(v)
		if a > 10 {
			over10++
		}
		if a < 1 {
			under1++
		}
	}
	med := medianAbs(values)
	if over10*2 > len(values) {
		return reductionFactor(med)
	}
	if allowEnlarge && under1*2 > len(values) {
		if med == 0 {
			return 1 // all-zero target: no finite enlargement helps
		}
		return enlargementFactor(med)
	}
	return 1
}

func medianAbs(values []float64) float64 {
	abs := make([]float64, len(values))
	for i, v := range values {
		abs[i] = math.Abs(v)
	}
	// Insertion sort: populations are small (hundreds).
	for i := 1; i < len(abs); i++ {
		for j := i; j > 0 && abs[j-1] > abs[j]; j-- {
			abs[j-1], abs[j] = abs[j], abs[j-1]
		}
	}
	return abs[len(abs)/2]
}

// PlanFor inspects a dataset and picks the Table 2 factors: Y may be
// reduced or enlarged; X variables (integer byte values) are only reduced.
func PlanFor(d *gp.Dataset) Plan {
	p := Plan{YFactor: factorFor(d.Y, true)}
	n := d.NumVars()
	p.XFactors = make([]float64, n)
	for v := 0; v < n; v++ {
		col := make([]float64, len(d.X))
		for i, row := range d.X {
			col[i] = row[v]
		}
		p.XFactors[v] = factorFor(col, false)
	}
	return p
}

// Apply returns a new dataset with the plan's factors multiplied in. The
// input dataset is not modified.
func (p Plan) Apply(d *gp.Dataset) *gp.Dataset {
	out := &gp.Dataset{X: make([][]float64, len(d.X)), Y: make([]float64, len(d.Y))}
	for i, row := range d.X {
		r := make([]float64, len(row))
		for v := range row {
			f := 1.0
			if v < len(p.XFactors) {
				f = p.XFactors[v]
			}
			r[v] = row[v] * f
		}
		out.X[i] = r
	}
	for i, y := range d.Y {
		out.Y[i] = y * p.YFactor
	}
	return out
}

// Identity reports whether the plan changes nothing.
func (p Plan) Identity() bool {
	if p.YFactor != 1 {
		return false
	}
	for _, f := range p.XFactors {
		if f != 1 {
			return false
		}
	}
	return true
}

// Restore rewrites a formula inferred on the scaled dataset into one over
// the original variables predicting the original target — Table 2's
// post-processing. If g satisfies Y*yf = g(X0*f0, X1*f1, ...), then
// Y = g(f0*X0, f1*X1, ...) / yf.
func (p Plan) Restore(tree *gp.Node) *gp.Node {
	out := substituteVars(tree, p.XFactors)
	if p.YFactor != 1 {
		out = gp.NewBinary(gp.OpDiv, out, gp.NewConst(p.YFactor))
	}
	return gp.Simplify(out)
}

func substituteVars(n *gp.Node, factors []float64) *gp.Node {
	if n == nil {
		return nil
	}
	if n.Op == gp.OpVar {
		f := 1.0
		if n.Var < len(factors) {
			f = factors[n.Var]
		}
		if f == 1 {
			return gp.NewVar(n.Var)
		}
		return gp.NewBinary(gp.OpMul, gp.NewConst(f), gp.NewVar(n.Var))
	}
	out := &gp.Node{Op: n.Op, Const: n.Const, Var: n.Var}
	out.L = substituteVars(n.L, factors)
	out.R = substituteVars(n.R, factors)
	return out
}

// Infer is the pipeline entry point: plan, scale, run GP on the scaled
// data, and restore the formula to original units.
func Infer(d *gp.Dataset, cfg gp.Config) (gp.Result, error) {
	return InferContext(context.Background(), d, cfg)
}

// InferContext is Infer with cancellation: ctx is handed to the GP engine,
// which checks it between generations.
func InferContext(ctx context.Context, d *gp.Dataset, cfg gp.Config) (gp.Result, error) {
	plan := PlanFor(d)
	scaled := plan.Apply(d)
	res, err := gp.RunContext(ctx, scaled, cfg)
	if err != nil {
		return gp.Result{}, err
	}
	res.Best = plan.Restore(res.Best)
	// Report fitness in original units so callers can compare against
	// unscaled baselines.
	res.Fitness = gp.RobustMAE(res.Best, d)
	return res, nil
}
