package jobserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/jobserver"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

// collectCapture runs one Car M rig session and tears the simulation down
// before returning, so the goroutine baseline taken afterwards is clean.
func collectCapture(t *testing.T) rig.Capture {
	t.Helper()
	p, ok := vehicle.ProfileByCar("Car M")
	if !ok {
		t.Fatal("unknown car Car M")
	}
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	defer tool.Close()
	defer veh.Close()
	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 20 * time.Second
	cfg.AlignDuration = 6 * time.Second
	cfg.TestDuration = time.Second
	r := rig.New(tool, veh, cfg)
	defer r.Close()
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

// e2eGPConfig is the shared quick budget: the server's jobs and the direct
// parity run must use exactly the same configuration.
func e2eGPConfig() reverser.Config {
	cfg := reverser.DefaultConfig()
	cfg.GP.PopulationSize = 150
	cfg.GP.Generations = 10
	cfg.GP.Seed = 7
	return cfg
}

// apiSnapshot is the slice of the job document the e2e reads.
type apiSnapshot struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
}

// apiEvents mirrors the events endpoint document.
type apiEvents struct {
	Job    string `json:"job"`
	State  string `json:"state"`
	Events []struct {
		Seq  int    `json:"seq"`
		Kind string `json:"kind"`
	} `json:"events"`
}

// doJSON issues one request and decodes the response body into out.
func doJSON(t *testing.T, client *http.Client, method, url string, body io.Reader, wantCode int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, url, err, raw)
		}
	}
}

// TestServerEndToEnd drives the whole HTTP surface the way a fleet of
// tenants would: uploads across three tenants, quota rejections, ordered
// progress long-polls, a result byte-identical with a direct Reverser
// run, and a clean drain + shutdown with no goroutine leaks.
func TestServerEndToEnd(t *testing.T) {
	cap := collectCapture(t)
	var capBody bytes.Buffer
	if err := cap.Save(&capBody); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()

	srv := jobserver.New(jobserver.Config{
		Shards:          2,
		QueueDepth:      16,
		TenantMaxActive: 2,
		Reverser:        []reverser.Option{reverser.WithConfig(e2eGPConfig())},
	}, nil)
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	// Four captures across three tenants.
	tenants := []string{"apex", "blue", "apex", "caro"}
	var jobs []apiSnapshot
	for _, tenant := range tenants {
		var snap apiSnapshot
		doJSON(t, client, "POST", ts.URL+"/api/v1/jobs?tenant="+tenant,
			bytes.NewReader(capBody.Bytes()), http.StatusAccepted, &snap)
		if snap.Tenant != tenant || snap.ID == "" {
			t.Fatalf("submit returned %+v", snap)
		}
		jobs = append(jobs, snap)
	}

	// Quota rejections, deterministically: stream registrations occupy a
	// dedicated tenant's two slots without touching the worker fleet, so
	// the third submission must bounce with 429 + Retry-After.
	var regs []struct {
		Job   apiSnapshot `json:"job"`
		Token string      `json:"token"`
	}
	for i := 0; i < 2; i++ {
		var reg struct {
			Job   apiSnapshot `json:"job"`
			Token string      `json:"token"`
		}
		doJSON(t, client, "POST", ts.URL+"/api/v1/streams?tenant=quota&car=Car+M",
			nil, http.StatusCreated, &reg)
		if reg.Token == "" {
			t.Fatal("stream registration returned no token")
		}
		regs = append(regs, reg)
	}
	resp, err := client.Post(ts.URL+"/api/v1/streams?tenant=quota", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota registration = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	for _, reg := range regs {
		doJSON(t, client, "DELETE", ts.URL+"/api/v1/jobs/"+reg.Job.ID, nil, http.StatusOK, nil)
	}

	// Long-poll every job to completion, asserting the progress stream is
	// gapless and ordered across polls.
	for _, j := range jobs {
		after, state := 0, ""
		for deadline := 0; ; deadline++ {
			if deadline > 600 {
				t.Fatalf("job %s did not finish (state %s)", j.ID, state)
			}
			var ev apiEvents
			doJSON(t, client, "GET",
				fmt.Sprintf("%s/api/v1/jobs/%s/events?after=%d&wait=2s", ts.URL, j.ID, after),
				nil, http.StatusOK, &ev)
			for i, e := range ev.Events {
				if e.Seq != after+i+1 {
					t.Fatalf("job %s: event seq %d at position %d after %d — gap or reorder",
						j.ID, e.Seq, i, after)
				}
			}
			if len(ev.Events) > 0 && after == 0 && ev.Events[0].Kind != "stage-start" {
				t.Fatalf("job %s: first event is %s", j.ID, ev.Events[0].Kind)
			}
			after += len(ev.Events)
			state = ev.State
			if state == "done" || state == "failed" || state == "cancelled" {
				break
			}
		}
		if state != "done" {
			t.Fatalf("job %s finished %s", j.ID, state)
		}
		if after == 0 {
			t.Fatalf("job %s finished with no progress events", j.ID)
		}
	}

	// Result parity: the server's document must be byte-identical with a
	// direct Reverser run under the same configuration.
	req, err := http.NewRequest("GET", ts.URL+"/api/v1/jobs/"+jobs[0].ID+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(rr.Body)
	rr.Body.Close()
	if err != nil || rr.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %d %v", rr.StatusCode, err)
	}
	direct, err := reverser.New(reverser.WithConfig(e2eGPConfig())).
		Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served result differs from direct run (%d vs %d bytes)", len(served), want.Len())
	}
	if !strings.Contains(string(served), `"schema": 1`) {
		t.Fatal("served result carries no schema version")
	}

	// The formula store aggregates the tenant's recoveries.
	var formulas struct {
		Formulas []struct {
			Formula string `json:"formula"`
		} `json:"formulas"`
	}
	doJSON(t, client, "GET", ts.URL+"/api/v1/formulas?tenant=apex", nil, http.StatusOK, &formulas)
	if len(formulas.Formulas) == 0 {
		t.Fatal("no formulas listed for tenant apex")
	}

	// Drain: the server refuses new work with 503 + Retry-After but keeps
	// answering reads.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Post(ts.URL+"/api/v1/jobs?tenant=apex", "application/json",
		bytes.NewReader(capBody.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("submit while draining = %d (Retry-After %q), want 503 with a hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	var health struct {
		Status string `json:"status"`
	}
	doJSON(t, client, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health.Status != "draining" {
		t.Fatalf("healthz status = %q after drain", health.Status)
	}

	// Clean shutdown: close everything and verify the goroutine population
	// returns to the pre-server baseline.
	ts.Close()
	client.CloseIdleConnections()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	leaked := 0
	for i := 0; i < 500; i++ {
		leaked = runtime.NumGoroutine() - base
		if leaked <= 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("%d goroutines leaked after shutdown\n%s", leaked, buf[:runtime.Stack(buf, true)])
}
