// Package jobserver turns the batch reverse-engineering pipeline into a
// long-running, multi-tenant service: captures arrive over HTTP (upload)
// or the canbridge line protocol (live streams), land in a sharded
// in-memory job queue partitioned by (tenant, car, stream key), and a
// bounded worker fleet runs each job through reverser.New with per-job
// cancellation, progress history, quotas, backpressure and graceful
// drain. cmd/dpreversed is the daemon wrapping this package.
package jobserver

import (
	"context"
	"sync"
	"time"

	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// JobState is a job's lifecycle position.
type JobState int

const (
	// Streaming jobs are bound to a live canbridge ingest session; the
	// capture is still arriving.
	Streaming JobState = iota
	// Queued jobs sit in their shard's queue waiting for a worker.
	Queued
	// Running jobs occupy a worker.
	Running
	// Done jobs completed with a result.
	Done
	// Failed jobs ended with an error (pipeline failure or truncated
	// stream).
	Failed
	// Cancelled jobs were cancelled by the tenant or by shutdown.
	Cancelled
)

// String implements fmt.Stringer with the wire names the API and the
// jobs-by-state metric use.
func (s JobState) String() string {
	switch s {
	case Streaming:
		return "streaming"
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// ProgressRecord is one archived pipeline progress event, numbered so
// pollers can resume from where they left off.
type ProgressRecord struct {
	// Seq is the 1-based position of this event in the job's history.
	Seq int `json:"seq"`
	// Kind is the event kind name: stage-start, stage-done, stream-start,
	// stream-done.
	Kind string `json:"kind"`
	// Stage is the pipeline stage the event belongs to.
	Stage string `json:"stage"`
	// Stream and Label identify the stream for stream events.
	Stream string `json:"stream,omitempty"`
	Label  string `json:"label,omitempty"`
	// Generations/Evaluations report the GP counters (stream-done only).
	Generations int `json:"generations,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`
	// Done and Total count finished vs. scheduled streams (stream
	// events).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// ElapsedMS is the stage or stream wall time (done events only),
	// from the injected telemetry clock.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// progressKindName maps the reverser's event kinds onto wire names.
func progressKindName(k reverser.ProgressKind) string {
	switch k {
	case reverser.ProgressStageStart:
		return "stage-start"
	case reverser.ProgressStageDone:
		return "stage-done"
	case reverser.ProgressStreamStart:
		return "stream-start"
	case reverser.ProgressStreamDone:
		return "stream-done"
	default:
		return "unknown"
	}
}

// Job is one unit of reverse-engineering work. All mutable fields are
// guarded by mu; the identity fields are immutable after creation.
type Job struct {
	// ID is the server-assigned identifier ("j1", "j2", ...).
	ID string
	// Tenant is the submitting tenant.
	Tenant string
	// Car is the capture's vehicle name (from the upload, or declared at
	// stream registration).
	Car string
	// StreamName is the optional partition key component binding related
	// submissions to one shard.
	StreamName string
	// shard is the queue partition the job hashed to.
	shard int

	// ring is the job's flight recorder: the most recent correlated log
	// records, teed off the job logger. log carries the job's bound
	// correlation context; both are set at admission and never change.
	ring *telemetry.RingSink
	log  *telemetry.Logger

	mu sync.Mutex
	// updated is closed and replaced on every state/progress change — the
	// broadcast primitive long-polling watchers wait on.
	updated chan struct{}

	// runLog is log plus the run's root span ID, bound when a worker
	// claims the job.
	runLog *telemetry.Logger

	state   JobState
	capture rig.Capture
	result  *reverser.Result
	errMsg  string
	events  []ProgressRecord

	// submitted/started/finished are read from the server clock.
	submitted, started, finished time.Duration

	// cancelRun aborts the pipeline run once the job is running.
	cancelRun context.CancelFunc
	// cancelled is set by Cancel so a queued (or streaming) job is
	// skipped when it surfaces.
	cancelled bool
}

// newJob builds a job in its initial state.
func newJob(id, tenant, car, streamName string, state JobState, submitted time.Duration) *Job {
	return &Job{
		ID: id, Tenant: tenant, Car: car, StreamName: streamName,
		state: state, submitted: submitted,
		updated: make(chan struct{}),
	}
}

// notifyLocked wakes every watcher; callers hold mu.
func (j *Job) notifyLocked() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// setRunLogger binds the span-correlated run logger.
func (j *Job) setRunLogger(l *telemetry.Logger) {
	j.mu.Lock()
	j.runLog = l
	j.mu.Unlock()
}

// runLogger returns the span-correlated run logger, falling back to the
// admission logger for jobs that never reached a worker.
func (j *Job) runLogger() *telemetry.Logger {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.runLog != nil {
		return j.runLog
	}
	return j.log
}

// State reads the current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot is the API-facing view of a job.
type Snapshot struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Car    string `json:"car,omitempty"`
	Stream string `json:"stream,omitempty"`
	State  string `json:"state"`
	Shard  int    `json:"shard"`
	// Error is the failure detail for failed jobs.
	Error string `json:"error,omitempty"`
	// Events is the progress history length; fetch the events endpoint
	// for the records themselves.
	Events int `json:"events"`
	// QueueWaitMS and RunMS are the job's measured latencies (server
	// clock), present once the respective phase ended.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	RunMS       float64 `json:"run_ms,omitempty"`
	// Frames is the capture size (known once the capture is complete).
	Frames int `json:"frames,omitempty"`
	// ESVs/ECRs summarise the result for done jobs.
	ESVs int `json:"esvs,omitempty"`
	ECRs int `json:"ecrs,omitempty"`
}

// Snapshot captures the job's current API view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.ID, Tenant: j.Tenant, Car: j.Car, Stream: j.StreamName,
		State: j.state.String(), Shard: j.shard,
		Error: j.errMsg, Events: len(j.events),
		Frames: len(j.capture.Frames),
	}
	if j.started > 0 && j.started >= j.submitted {
		s.QueueWaitMS = float64((j.started - j.submitted).Microseconds()) / 1e3
	}
	if j.finished > 0 && j.finished >= j.started {
		s.RunMS = float64((j.finished - j.started).Microseconds()) / 1e3
	}
	if j.result != nil {
		s.ESVs = len(j.result.ESVs)
		s.ECRs = len(j.result.ECRs)
	}
	return s
}

// Result returns the completed result, or nil while the job is not Done.
func (j *Job) Result() *reverser.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil
	}
	return j.result
}

// record archives one pipeline progress event and wakes watchers. It is
// the job's reverser.ProgressFunc; the Reverser serialises calls, but
// watchers read concurrently, so it still locks.
func (j *Job) record(ev reverser.ProgressEvent) {
	rec := ProgressRecord{
		Kind:        progressKindName(ev.Kind),
		Stage:       ev.Stage,
		Label:       ev.Label,
		Generations: ev.Generations,
		Evaluations: ev.Evaluations,
		Done:        ev.Done,
		Total:       ev.Total,
		ElapsedMS:   float64(ev.Elapsed.Microseconds()) / 1e3,
	}
	if ev.Stream != (reverser.StreamKey{}) {
		rec.Stream = ev.Stream.String()
	}
	j.mu.Lock()
	rec.Seq = len(j.events) + 1
	j.events = append(j.events, rec)
	j.notifyLocked()
	j.mu.Unlock()
}

// EventsSince returns the progress records with Seq > after, plus a
// channel that is closed on the next job update — the long-poll
// primitive. When records are already available the channel is the
// current one (possibly already closed); callers only wait on it when the
// slice comes back empty.
func (j *Job) EventsSince(after int) ([]ProgressRecord, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := j.updated
	if after < 0 {
		after = 0
	}
	if after >= len(j.events) {
		return nil, ch
	}
	out := make([]ProgressRecord, len(j.events)-after)
	copy(out, j.events[after:])
	return out, ch
}
