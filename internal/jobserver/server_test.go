package jobserver

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dpreverser/internal/canbridge"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/telemetry"
	"dpreverser/internal/vehicle"
)

// carMCapture collects one Car M rig session, cached across the package's
// tests (collection costs seconds; the capture is immutable data).
var (
	capOnce sync.Once
	capM    rig.Capture
	capErr  error
)

func carMCapture(t *testing.T) rig.Capture {
	t.Helper()
	capOnce.Do(func() {
		p, ok := vehicle.ProfileByCar("Car M")
		if !ok {
			capErr = fmt.Errorf("unknown car %q", "Car M")
			return
		}
		clock := sim.NewClock(0)
		tool, veh, err := diagtool.ForProfile(p, clock)
		if err != nil {
			capErr = err
			return
		}
		defer tool.Close()
		defer veh.Close()
		cfg := rig.DefaultConfig()
		cfg.ReadDuration = 20 * time.Second
		cfg.AlignDuration = 6 * time.Second
		cfg.TestDuration = time.Second
		r := rig.New(tool, veh, cfg)
		defer r.Close()
		capM, capErr = r.RunFull()
	})
	if capErr != nil {
		t.Fatalf("collecting Car M capture: %v", capErr)
	}
	return capM
}

// quickOpts is a GP budget small enough for unit tests.
func quickOpts() []reverser.Option {
	cfg := reverser.DefaultConfig()
	cfg.GP.PopulationSize = 150
	cfg.GP.Generations = 10
	cfg.GP.Seed = 7
	return []reverser.Option{reverser.WithConfig(cfg)}
}

// waitState blocks on the job's update channel until want accepts the
// state, failing the test after a generous deadline.
func waitState(t *testing.T, j *Job, want func(JobState) bool) JobState {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for {
		j.mu.Lock()
		st := j.state
		ch := j.updated
		j.mu.Unlock()
		if want(st) {
			return st
		}
		select {
		case <-ch:
		case <-ctx.Done():
			t.Fatalf("timed out waiting for job %s (state %s)", j.ID, st)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	cap := carMCapture(t)
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Shards: 2, QueueDepth: 8, TenantMaxActive: 4, Reverser: quickOpts()}, prov)
	defer srv.Close()

	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobState.Terminal)
	if st := j.State(); st != Done {
		t.Fatalf("job finished %s, want done", st)
	}
	res := j.Result()
	if res == nil || len(res.ESVs) == 0 {
		t.Fatalf("done job has no result ESVs: %+v", res)
	}

	snap := j.Snapshot()
	if snap.State != "done" || snap.Frames != len(cap.Frames) || snap.ESVs != len(res.ESVs) {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}

	// Progress events arrive in seq order, opening with a stage start.
	events, _ := j.EventsSince(0)
	if len(events) == 0 {
		t.Fatal("no progress events recorded")
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if events[0].Kind != "stage-start" {
		t.Fatalf("first event kind = %s", events[0].Kind)
	}

	// The formula store serves the completed job's recoveries.
	formulas := srv.Formulas("acme", "")
	if len(formulas) == 0 {
		t.Fatal("no formulas listed for the done job")
	}
	if srv.Formulas("other-tenant", "") != nil {
		t.Fatal("formula store leaked across tenants")
	}

	// Metric families reflect the finished job.
	var buf bytes.Buffer
	if err := prov.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{
		telemetry.MetricJobsFinished + `{state="done"} 1`,
		telemetry.MetricJobsByState + `{state="done"} 1`,
		telemetry.MetricTenantAdmissions + `{tenant="acme"} 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestTenantQuota(t *testing.T) {
	srv := New(Config{TenantMaxActive: 1, Reverser: quickOpts()}, nil)
	defer srv.Close()

	// A streaming registration occupies the tenant's only slot without
	// needing a worker — deterministic quota pressure.
	reg, err := srv.RegisterStream("acme", "Car M", "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = srv.RegisterStream("acme", "Car M", "")
	rej, ok := err.(*RejectionError)
	if !ok || rej.Reason != "tenant-quota" {
		t.Fatalf("second registration error = %v, want tenant-quota rejection", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("rejection carries no Retry-After hint: %+v", rej)
	}

	// Other tenants are unaffected.
	if _, err := srv.RegisterStream("rival", "Car M", ""); err != nil {
		t.Fatalf("independent tenant rejected: %v", err)
	}

	// Cancelling the streaming job frees the slot.
	if err := srv.Cancel(reg.Job.ID); err != nil {
		t.Fatal(err)
	}
	if st := reg.Job.State(); st != Cancelled {
		t.Fatalf("cancelled streaming job is %s", st)
	}
	if _, err := srv.RegisterStream("acme", "Car M", ""); err != nil {
		t.Fatalf("slot not released after cancel: %v", err)
	}
}

func TestQueueBackpressure(t *testing.T) {
	srv := New(Config{Shards: 1, QueueDepth: 2, TenantMaxActive: 8, Reverser: quickOpts()}, nil)
	defer srv.Close()

	// Fill the single shard directly, without waking the worker (push
	// would Signal): the queue stays at depth 2 deterministically. The
	// stuffed jobs are already terminal so the worker skips them at drain.
	sh := srv.shards[0]
	sh.mu.Lock()
	for i := 0; i < 2; i++ {
		sh.queue = append(sh.queue, newJob("stuffed", "t", "", "", Cancelled, 0))
	}
	sh.mu.Unlock()

	_, err := srv.Submit("acme", rig.Capture{Car: "Car M"}, "")
	rej, ok := err.(*RejectionError)
	if !ok || rej.Reason != "queue-full" {
		t.Fatalf("submit into a full shard = %v, want queue-full rejection", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	cap := carMCapture(t)
	// A GP budget far beyond test patience: the job must be cancelled to
	// finish, proving the per-job context reaches the engine.
	cfg := reverser.DefaultConfig()
	cfg.GP.PopulationSize = 1000
	cfg.GP.Generations = 100000
	cfg.GP.StopFitness = -1 // never stop early: the run must outlive test patience
	srv := New(Config{Reverser: []reverser.Option{reverser.WithConfig(cfg)}}, nil)
	defer srv.Close()

	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, func(s JobState) bool { return s == Running })
	if err := srv.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j, JobState.Terminal); st != Cancelled {
		t.Fatalf("cancelled running job finished %s", st)
	}
	if j.Result() != nil {
		t.Fatal("cancelled job still exposes a result")
	}
	// Cancelling a terminal job is a no-op.
	if err := srv.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	srv := New(Config{Reverser: quickOpts()}, nil)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Fatal("server not draining after Drain")
	}
	_, err := srv.Submit("acme", rig.Capture{}, "")
	rej, ok := err.(*RejectionError)
	if !ok || rej.Reason != "draining" {
		t.Fatalf("submit after drain = %v, want draining rejection", err)
	}
	if _, err := srv.RegisterStream("acme", "", ""); err == nil {
		t.Fatal("stream registration accepted after drain")
	}
	// Close after Drain is a safe no-op.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestSessionFeedsJob(t *testing.T) {
	cap := carMCapture(t)
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Reverser: quickOpts()}, prov)
	defer srv.Close()

	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.RegisterStream("acme", cap.Car, "live")
	if err != nil {
		t.Fatal(err)
	}
	if reg.Job.State() != Streaming {
		t.Fatalf("registered job is %s, want streaming", reg.Job.State())
	}

	// Stream a slice of the real capture, reproducing its timeline with
	// ADVANCE deltas so the server-side stamps match the original.
	conn, err := canbridge.DialStream(addr, reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	var sent time.Duration
	for _, f := range cap.Frames[:n] {
		if d := f.Timestamp - sent; d > 0 {
			if err := conn.Advance(d); err != nil {
				t.Fatal(err)
			}
			sent += d
		}
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	waitState(t, reg.Job, JobState.Terminal)
	if st := reg.Job.State(); st != Done {
		t.Fatalf("streamed job finished %s: %s", st, reg.Job.Snapshot().Error)
	}
	reg.Job.mu.Lock()
	got := reg.Job.capture
	reg.Job.mu.Unlock()
	if len(got.Frames) != n || got.Car != cap.Car {
		t.Fatalf("ingested capture: %d frames, car %q", len(got.Frames), got.Car)
	}
	for i, f := range got.Frames {
		want := cap.Frames[i]
		if f.ID != want.ID || f.Timestamp != want.Timestamp || f.Data != want.Data {
			t.Fatalf("frame %d: got %v@%v, want %v@%v", i, f.ID, f.Timestamp, want.ID, want.Timestamp)
		}
	}

	// A second HELLO with the same token must be refused: tokens bind once.
	if _, err := canbridge.DialStream(addr, reg.Token); err == nil {
		t.Fatal("stream token bound twice")
	}

	var buf bytes.Buffer
	if err := prov.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), telemetry.MetricStreamSessions+`{outcome="complete"} 1`) {
		t.Error("complete stream session not counted")
	}
}

func TestCloseTruncatesLiveStream(t *testing.T) {
	srv := New(Config{Reverser: quickOpts()}, nil)
	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.RegisterStream("acme", "Car M", "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := canbridge.DialStream(addr, reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Close tears the session down server-side; the half-streamed job must
	// fail rather than run on a truncated capture.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := reg.Job.State(); st != Failed {
		t.Fatalf("truncated stream's job is %s, want failed", st)
	}
	if msg := reg.Job.Snapshot().Error; !strings.Contains(msg, "truncated") {
		t.Fatalf("job error = %q, want a truncation notice", msg)
	}
}

func TestUnknownStreamToken(t *testing.T) {
	srv := New(Config{Reverser: quickOpts()}, nil)
	defer srv.Close()
	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := canbridge.DialStream(addr, "no-such-token"); err == nil {
		t.Fatal("unknown token accepted")
	}
}

func TestShardAssignmentIsStable(t *testing.T) {
	srv := New(Config{Shards: 4}, nil)
	defer srv.Close()
	a := srv.shardFor("acme", "Car M", "s1")
	if b := srv.shardFor("acme", "Car M", "s1"); b != a {
		t.Fatalf("same key hashed to shards %d and %d", a, b)
	}
	// The tenant is part of the key: no cross-tenant ordering coupling by
	// construction (different keys may still collide on a shard).
	if srv.shardFor("acme", "Car M", "s1") != a {
		t.Fatal("shard assignment unstable")
	}
}
