package jobserver

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/canbridge"
	"dpreverser/internal/faults"
	"dpreverser/internal/isotp"
	"dpreverser/internal/reverser"
	"dpreverser/internal/telemetry"
)

func promDump(t *testing.T, prov *telemetry.Provider) string {
	t.Helper()
	var buf bytes.Buffer
	if err := prov.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// attackedStreamFrames builds two ISO-TP transfers on 0x7E8 and runs them
// through the adversarial injector with flow-control starvation saturated
// — hostile traffic with a stable detector signature.
func attackedStreamFrames(t *testing.T) []can.Frame {
	t.Helper()
	var in []can.Frame
	at := time.Duration(0)
	for rep := 0; rep < 2; rep++ {
		payload := make([]byte, 40)
		for i := range payload {
			payload[i] = byte(i + rep)
		}
		chunks, err := isotp.Segment(payload, 0xAA)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range chunks {
			f := can.MustFrame(0x7E8, d)
			f.Timestamp = at
			at += time.Millisecond
			in = append(in, f)
		}
	}
	return faults.New(faults.Spec{FCStarve: 1}, 7).Frames(in)
}

// TestIdleStreamExpiredWithoutStarvingTenants: a hostile peer that
// registers a stream and then goes silent is failed with the distinct
// idle-timeout reason — and while it holds its connection, another
// tenant's job runs to completion, so the idle session starves nobody.
func TestIdleStreamExpiredWithoutStarvingTenants(t *testing.T) {
	cap := carMCapture(t)
	mc := telemetry.NewManualClock(0)
	prov := telemetry.New(mc)
	srv := New(Config{Reverser: quickOpts(), IngestIdleTimeout: 100 * time.Millisecond}, prov)
	defer srv.Close()

	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.RegisterStream("mallory", "Car M", "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := canbridge.DialStream(addr, reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(can.MustFrame(0x7E0, []byte{0x01})); err != nil {
		t.Fatal(err)
	}

	// The hostile session now sits idle. An honest tenant's work proceeds.
	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j, JobState.Terminal); st != Done {
		t.Fatalf("honest job finished %s alongside an idle stream", st)
	}

	// Advance the injected clock past the timeout and sweep.
	mc.Advance(time.Second)
	if n := srv.ExpireIdleStreams(); n != 1 {
		t.Fatalf("ExpireIdleStreams = %d, want 1", n)
	}
	if st := waitState(t, reg.Job, JobState.Terminal); st != Failed {
		t.Fatalf("idle stream's job finished %s, want failed", st)
	}
	if msg := reg.Job.Snapshot().Error; !strings.Contains(msg, canbridge.ReasonIdleTimeout) {
		t.Fatalf("job error = %q, want the idle-timeout reason", msg)
	}
	if dump := promDump(t, prov); !strings.Contains(dump,
		telemetry.MetricStreamSessions+`{outcome="idle-timeout"} 1`) {
		t.Error("idle-timeout session outcome not counted")
	}
}

// TestStreamFrameBudgetFailsJob: a session exceeding its frame budget is
// refused mid-stream and the job fails with the budget's distinct reason.
func TestStreamFrameBudgetFailsJob(t *testing.T) {
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Reverser: quickOpts(), IngestMaxFrames: 4}, prov)
	defer srv.Close()

	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.RegisterStream("acme", "Car M", "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := canbridge.DialStream(addr, reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 4; i++ {
		if err := conn.Send(can.MustFrame(0x7E0, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Send(can.MustFrame(0x7E0, []byte{0xFF})); err == nil {
		t.Fatal("send past the frame budget succeeded")
	}
	if st := waitState(t, reg.Job, JobState.Terminal); st != Failed {
		t.Fatalf("over-budget stream's job finished %s, want failed", st)
	}
	if msg := reg.Job.Snapshot().Error; !strings.Contains(msg, canbridge.ReasonFrameBudget) {
		t.Fatalf("job error = %q, want the frame-budget reason", msg)
	}
	if dump := promDump(t, prov); !strings.Contains(dump,
		telemetry.MetricStreamSessions+`{outcome="frame-budget"} 1`) {
		t.Error("frame-budget session outcome not counted")
	}
}

// TestAttackedStreamRejectedAtAdmission: a session that ends cleanly but
// carries transport-layer attack signatures is rejected at admission —
// the job fails naming the class and target ID, and no worker runs it.
func TestAttackedStreamRejectedAtAdmission(t *testing.T) {
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Reverser: quickOpts(), ScreenStreams: true}, prov)
	defer srv.Close()

	addr, err := srv.ServeIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := srv.RegisterStream("acme", "Car M", "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := canbridge.DialStream(addr, reg.Token)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range attackedStreamFrames(t) {
		if err := conn.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := conn.Close(); err != nil { // clean EOF: the attacker plays nice
		t.Fatal(err)
	}
	if st := waitState(t, reg.Job, JobState.Terminal); st != Failed {
		t.Fatalf("attacked stream's job finished %s, want failed", st)
	}
	msg := reg.Job.Snapshot().Error
	if !strings.Contains(msg, "attack signatures") ||
		!strings.Contains(msg, reverser.AttackFCStarvation) ||
		!strings.Contains(msg, "7E8") {
		t.Fatalf("job error = %q, want attack attribution with class and ID", msg)
	}
	if dump := promDump(t, prov); !strings.Contains(dump,
		telemetry.MetricStreamSessions+`{outcome="attack-rejected"} 1`) {
		t.Error("attack-rejected session outcome not counted")
	}
}

// TestAttackAttributionReaches409Flight: under the strict policy an
// attacked capture fails the job, and the 409 result payload's embedded
// flight record carries the per-stream attack attribution.
func TestAttackAttributionReaches409Flight(t *testing.T) {
	cap := carMCapture(t)
	cap.Frames = faults.New(faults.Spec{FCStarve: 1}, 7).Frames(cap.Frames)
	prov := telemetry.New(telemetry.NewManualClock(0))
	opts := append(quickOpts(), reverser.WithFaultPolicy(reverser.Strict))
	srv := New(Config{Reverser: opts}, prov)
	defer srv.Close()

	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j, JobState.Terminal); st != Failed {
		t.Fatalf("attacked strict run finished %s, want failed", st)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed result = %d, want 409", resp.StatusCode)
	}
	var doc struct {
		State  string        `json:"state"`
		Flight *FlightRecord `json:"flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Flight == nil {
		t.Fatalf("409 payload carries no flight record")
	}
	attacked := 0
	for _, se := range doc.Flight.Degraded {
		if se.Stage == reverser.StageAttack {
			attacked++
			if se.Reason != reverser.AttackFCStarvation {
				t.Fatalf("attack entry reason = %q, want %q", se.Reason, reverser.AttackFCStarvation)
			}
		}
	}
	if attacked == 0 {
		t.Fatalf("no attack-stage entries in the 409 flight record: %+v", doc.Flight.Degraded)
	}
}
