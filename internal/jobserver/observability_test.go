package jobserver

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dpreverser/internal/gp"
	"dpreverser/internal/reverser"
	"dpreverser/internal/telemetry"
)

// crashObserver makes every GP generation panic, degrading every stream.
// The reverser chains (rather than replaces) user observers with its
// telemetry observer, so the injection survives a live provider.
type crashObserver struct{}

func (crashObserver) Generation(gp.GenerationStats) { panic("injected inference crash") }

// strictCrashOpts is a reverser setup whose every run fails under the
// strict fault policy while still producing a partial result.
func strictCrashOpts() []reverser.Option {
	cfg := reverser.DefaultConfig()
	cfg.GP.PopulationSize = 150
	cfg.GP.Generations = 10
	cfg.GP.Seed = 7
	cfg.GP.Observer = crashObserver{}
	return []reverser.Option{
		reverser.WithConfig(cfg),
		reverser.WithFaultPolicy(reverser.Strict),
	}
}

// eventMsgs extracts the msg set from flight events for containment checks.
func eventMsgs(recs []telemetry.Record) map[string]int {
	out := map[string]int{}
	for _, r := range recs {
		out[r.Msg]++
	}
	return out
}

// TestFailedJobFlightRecord drives a job through a strict-policy failure
// and asserts the flight recorder's full postmortem contract: correlated
// stage timings, degraded-stream reasons, and the ring tail — via the
// Flight API, the flight endpoint, and the failed result payload.
func TestFailedJobFlightRecord(t *testing.T) {
	cap := carMCapture(t)
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Reverser: strictCrashOpts()}, prov)
	defer srv.Close()

	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, j, JobState.Terminal); st != Failed {
		t.Fatalf("strict crash run finished %s, want failed", st)
	}

	fr := j.Flight()
	if fr.Job != j.ID || fr.Tenant != "acme" || fr.State != Failed.String() {
		t.Fatalf("flight identity = %+v", fr)
	}
	if fr.Error == "" {
		t.Fatal("failed flight lost its error")
	}
	if len(fr.Stages) == 0 {
		t.Fatal("failed flight has no stage timings")
	}
	var sawInfer bool
	for _, st := range fr.Stages {
		if st.Stage == "infer" && st.Stream == "" {
			sawInfer = true
		}
	}
	if !sawInfer {
		t.Fatalf("no infer stage timing in %+v", fr.Stages)
	}
	if len(fr.Degraded) == 0 {
		t.Fatal("failed flight carries no degraded-stream reasons")
	}
	for _, se := range fr.Degraded {
		if se.Reason != "panic" || !strings.Contains(se.Detail, "injected inference crash") {
			t.Fatalf("degraded entry lost its reason: %+v", se)
		}
	}
	msgs := eventMsgs(fr.Events)
	for _, want := range []string{"job-admitted", "job-start", "stream-degraded", "job-finished"} {
		if msgs[want] == 0 {
			t.Fatalf("flight events missing %q; have %v", want, msgs)
		}
	}
	// Every ring record carries the job's correlation context.
	for _, rec := range fr.Events {
		var doc map[string]any
		raw, _ := json.Marshal(rec)
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if doc["tenant"] != "acme" || doc["job"] != j.ID {
			t.Fatalf("record lost correlation context: %s", raw)
		}
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The flight endpoint serves the same record.
	resp, err := ts.Client().Get(ts.URL + "/api/v1/jobs/" + j.ID + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight endpoint = %d, want 200", resp.StatusCode)
	}
	var got FlightRecord
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Job != j.ID || got.State != Failed.String() || len(got.Events) == 0 || len(got.Degraded) == 0 {
		t.Fatalf("flight endpoint returned %+v", got)
	}

	// A failed job's 409 result payload embeds the flight record.
	resp, err = ts.Client().Get(ts.URL + "/api/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed result = %d, want 409", resp.StatusCode)
	}
	var doc struct {
		Error  string        `json:"error"`
		State  string        `json:"state"`
		Flight *FlightRecord `json:"flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.State != Failed.String() || doc.Flight == nil {
		t.Fatalf("409 payload carries no flight record: %+v", doc)
	}
	if len(doc.Flight.Degraded) == 0 || len(doc.Flight.Stages) == 0 || len(doc.Flight.Events) == 0 {
		t.Fatalf("embedded flight record is hollow: %+v", doc.Flight)
	}
}

// TestStatusPage asserts the operator dashboard renders with every stable
// section marker the CI smoke test greps for.
func TestStatusPage(t *testing.T) {
	cap := carMCapture(t)
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Shards: 2, Reverser: quickOpts()}, prov)
	defer srv.Close()

	j, err := srv.Submit("acme", cap, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobState.Terminal)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q, want text/html", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, marker := range []string{
		`id="jobs-by-state"`, `id="queue-depths"`, `id="tenants"`,
		`id="slo"`, `id="runtime"`, `id="flights"`, `id="jobs"`,
	} {
		if !strings.Contains(page, marker) {
			t.Fatalf("status page missing %s", marker)
		}
	}
	if !strings.Contains(page, j.ID) {
		t.Fatal("status page does not list the finished job")
	}
	if !strings.Contains(page, "acme") {
		t.Fatal("status page does not list the tenant")
	}
}

// TestRejectionCorrelation checks every admission refusal mints a
// correlation ID, books it in the tenant ledger, and surfaces it in the
// HTTP rejection body.
func TestRejectionCorrelation(t *testing.T) {
	cap := carMCapture(t)
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{TenantMaxActive: 1, Reverser: quickOpts()}, prov)
	defer srv.Close()

	// A streaming registration pins the tenant's single slot without
	// engaging the worker fleet.
	if _, err := srv.RegisterStream("acme", "Car M", ""); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Submit("acme", cap, "")
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("over-quota submit = %v, want rejection", err)
	}
	if rej.Reason != "tenant-quota" || rej.Correlation == "" {
		t.Fatalf("rejection = %+v, want tenant-quota with correlation", rej)
	}

	stats := srv.TenantStats()
	if len(stats) != 1 || stats[0].Tenant != "acme" {
		t.Fatalf("tenant stats = %+v", stats)
	}
	if stats[0].Admitted != 1 || stats[0].Rejected["tenant-quota"] != 1 {
		t.Fatalf("tenant ledger = %+v", stats[0])
	}

	// The HTTP body carries reason and correlation.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/api/v1/streams?tenant=acme", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota registration = %d, want 429", resp.StatusCode)
	}
	var body struct {
		Error       string `json:"error"`
		Reason      string `json:"reason"`
		Correlation string `json:"correlation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "tenant-quota" || body.Correlation == "" {
		t.Fatalf("rejection body = %+v", body)
	}
	if body.Correlation == rej.Correlation {
		t.Fatal("two rejections shared a correlation ID")
	}
}

// TestMetricsEndpointFilters exercises the ?family= and ?prefix= scrape
// filters and the explicit content types through the server mux.
func TestMetricsEndpointFilters(t *testing.T) {
	prov := telemetry.New(telemetry.NewManualClock(0))
	srv := New(Config{Reverser: quickOpts()}, prov)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Unfiltered scrape has both job-server and SLO families.
	full, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	for _, fam := range []string{
		telemetry.MetricSLOBurn, telemetry.MetricRuntimeGoroutines, telemetry.MetricJobsByState,
	} {
		if !strings.Contains(full, fam) {
			t.Fatalf("unfiltered scrape missing %s", fam)
		}
	}

	// ?family= narrows to exactly the named families.
	one, _ := get("/metrics?family=" + telemetry.MetricSLOBurn)
	if !strings.Contains(one, telemetry.MetricSLOBurn) {
		t.Fatal("family filter dropped the requested family")
	}
	if strings.Contains(one, telemetry.MetricJobsByState) {
		t.Fatal("family filter leaked an unrequested family")
	}

	// ?prefix= keeps a whole namespace.
	rt, ct := get("/metrics.json?prefix=dpreverser_runtime_")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json Content-Type = %q", ct)
	}
	var doc struct {
		Metrics []telemetry.JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(rt), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("prefix filter returned nothing")
	}
	for _, m := range doc.Metrics {
		if !strings.HasPrefix(m.Name, "dpreverser_runtime_") {
			t.Fatalf("prefix filter leaked %s", m.Name)
		}
	}

	_, ct = get("/trace")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
}
