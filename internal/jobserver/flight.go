package jobserver

import (
	"dpreverser/internal/reverser"
	"dpreverser/internal/telemetry"
)

// The flight recorder is the per-job postmortem bundle: the job's most
// recent correlated log records (the ring teed off its logger), its
// stage/stream timings from the progress history, and the degraded-
// stream reasons from the (possibly partial) result. It is served at
// GET /api/v1/jobs/{id}/flight and embedded in a failed job's result
// payload, so diagnosing a failure needs no re-run.

// FlightStage is one stage or stream timing in the flight record.
type FlightStage struct {
	Stage string `json:"stage"`
	// Stream and Label identify per-stream entries; empty for stages.
	Stream    string  `json:"stream,omitempty"`
	Label     string  `json:"label,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FlightRecord is the exported postmortem view of one job.
type FlightRecord struct {
	Job    string `json:"job"`
	Tenant string `json:"tenant"`
	Car    string `json:"car,omitempty"`
	Stream string `json:"stream,omitempty"`
	Shard  int    `json:"shard"`
	State  string `json:"state"`
	Error  string `json:"error,omitempty"`
	// QueueWaitMS and RunMS mirror the snapshot latencies.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	RunMS       float64 `json:"run_ms,omitempty"`
	// Stages are the completed stage/stream timings, in progress order.
	Stages []FlightStage `json:"stages,omitempty"`
	// Degraded lists the per-stream degradation reasons — present even
	// for failed jobs when the strict fault policy preserved the partial
	// result.
	Degraded []reverser.StreamError `json:"degraded,omitempty"`
	// Events is the flight-recorder ring tail, oldest first, each record
	// carrying the job's full correlation context. DroppedEvents counts
	// older records the bounded ring evicted.
	Events        []telemetry.Record `json:"events"`
	DroppedEvents uint64             `json:"dropped_events,omitempty"`
}

// Flight assembles the job's current flight record. Unlike Result it is
// available in every state — that is the point: failed and in-flight
// jobs are the ones worth diagnosing.
func (j *Job) Flight() FlightRecord {
	snap := j.Snapshot()
	fr := FlightRecord{
		Job: snap.ID, Tenant: snap.Tenant, Car: snap.Car, Stream: snap.Stream,
		Shard: snap.Shard, State: snap.State, Error: snap.Error,
		QueueWaitMS: snap.QueueWaitMS, RunMS: snap.RunMS,
	}

	j.mu.Lock()
	for _, ev := range j.events {
		if ev.Kind != "stage-done" && ev.Kind != "stream-done" {
			continue
		}
		fr.Stages = append(fr.Stages, FlightStage{
			Stage: ev.Stage, Stream: ev.Stream, Label: ev.Label, ElapsedMS: ev.ElapsedMS,
		})
	}
	// Read the result directly rather than via Result(): a failed job's
	// partial result still names its degraded streams.
	if j.result != nil {
		fr.Degraded = append(fr.Degraded, j.result.Degraded...)
	}
	j.mu.Unlock()

	recs, dropped := j.ring.Snapshot()
	if recs == nil {
		recs = []telemetry.Record{}
	}
	fr.Events = recs
	fr.DroppedEvents = dropped
	return fr
}
