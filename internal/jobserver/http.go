package jobserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// maxCaptureBytes bounds one uploaded capture body.
const maxCaptureBytes = 256 << 20

// maxEventWait caps the events endpoint's long-poll hold time.
const maxEventWait = 30 * time.Second

// Handler returns the server's HTTP API:
//
//	POST   /api/v1/jobs?tenant=T[&stream=S]   upload a capture, queue a job
//	GET    /api/v1/jobs?tenant=T              list jobs (all tenants when empty)
//	GET    /api/v1/jobs/{id}                  job snapshot
//	GET    /api/v1/jobs/{id}/events           progress history; ?after=N&wait=5s long-polls
//	GET    /api/v1/jobs/{id}/result           schema-v1 result document (done jobs)
//	DELETE /api/v1/jobs/{id}                  cancel
//	POST   /api/v1/streams?tenant=T&car=C     register a live canbridge stream
//	GET    /api/v1/formulas[?tenant=T&car=C]  recovered formulas across done jobs
//	GET    /healthz                           liveness + drain state + queue depths
//	GET    /debug/status                      live HTML operator dashboard
//	GET    /api/v1/jobs/{id}/flight           per-job flight record (any state)
//
// Telemetry (/metrics, /metrics.json, /trace, /debug/pprof/) is mounted
// from the server's provider; each scrape first refreshes the runtime
// and SLO-burn gauges. Rejected submissions return 429 (quota,
// backpressure) or 503 (draining), both with a Retry-After header and a
// correlation ID in the body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/flight", s.handleFlight)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /api/v1/streams", s.handleRegisterStream)
	mux.HandleFunc("GET /api/v1/formulas", s.handleFormulas)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /debug/status", s.handleStatus)

	tmux := telemetry.NewMux(s.tel.RegistryOrNil(), s.tel.TracerOrNil())
	sampled := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.SampleHealth()
		tmux.ServeHTTP(w, r)
	})
	for _, p := range []string{"/metrics", "/metrics.json", "/trace"} {
		mux.Handle(p, sampled)
	}
	mux.Handle("/debug/pprof/", tmux)
	return mux
}

// writeJSON emits one response document.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a dead client
}

// writeError emits the API's error shape.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeRejection maps an admission refusal onto 429/503 + Retry-After.
func writeRejection(w http.ResponseWriter, rej *RejectionError) {
	secs := int(rej.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	code := http.StatusTooManyRequests
	if rej.Reason == "draining" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{
		"error":       rej.Error(),
		"reason":      rej.Reason,
		"correlation": rej.Correlation,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant parameter")
		return
	}
	cap, err := rig.ReadCapture(http.MaxBytesReader(w, r.Body, maxCaptureBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading capture: %v", err))
		return
	}
	j, err := s.Submit(tenant, cap, r.URL.Query().Get("stream"))
	if err != nil {
		var rej *RejectionError
		if errors.As(err, &rej) {
			writeRejection(w, rej)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs(r.URL.Query().Get("tenant"))
	out := make([]Snapshot, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// lookupJob resolves {id}, writing the 404 itself on a miss.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return nil
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}
}

// eventsResponse is the events endpoint's document.
type eventsResponse struct {
	Job    string           `json:"job"`
	State  string           `json:"state"`
	Events []ProgressRecord `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "after must be a non-negative integer")
			return
		}
		after = n
	}
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "wait must be a duration like 5s")
			return
		}
		wait = min(d, maxEventWait)
	}
	ctx := r.Context()
	if wait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}
	for {
		recs, updated := j.EventsSince(after)
		state := j.State()
		// Answer as soon as there is something to say: new events, a
		// terminal job, or no long-poll budget (left).
		if len(recs) > 0 || state.Terminal() || wait == 0 {
			if recs == nil {
				recs = []ProgressRecord{}
			}
			writeJSON(w, http.StatusOK, eventsResponse{Job: j.ID, State: state.String(), Events: recs})
			return
		}
		select {
		case <-updated:
		case <-ctx.Done():
			writeJSON(w, http.StatusOK, eventsResponse{Job: j.ID, State: j.State().String(), Events: []ProgressRecord{}})
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	res := j.Result()
	if res == nil {
		snap := j.Snapshot()
		msg := fmt.Sprintf("job %s is %s", j.ID, snap.State)
		if snap.Error != "" {
			msg += ": " + snap.Error
		}
		doc := map[string]any{"error": msg, "state": snap.State}
		// A failed job's payload carries its flight record so the
		// postmortem (stage timings, degraded streams, correlated log
		// tail) needs no further round trips and no re-run.
		if snap.State == Failed.String() {
			doc["flight"] = j.Flight()
		}
		writeJSON(w, http.StatusConflict, doc)
		return
	}
	// Byte-identical with `dpreverse -json`: the schema-v1 document through
	// an indenting encoder.
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Flight())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	if err := s.Cancel(j.ID); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// streamResponse is the stream-registration document.
type streamResponse struct {
	Job   Snapshot `json:"job"`
	Token string   `json:"token"`
}

func (s *Server) handleRegisterStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant := q.Get("tenant")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant parameter")
		return
	}
	reg, err := s.RegisterStream(tenant, q.Get("car"), q.Get("stream"))
	if err != nil {
		var rej *RejectionError
		if errors.As(err, &rej) {
			writeRejection(w, rej)
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, streamResponse{Job: reg.Job.Snapshot(), Token: reg.Token})
}

func (s *Server) handleFormulas(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	recs := s.Formulas(q.Get("tenant"), q.Get("car"))
	if recs == nil {
		recs = []FormulaRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"formulas": recs})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"queue_depths": s.QueueDepths(),
	})
}
