package jobserver

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/canbridge"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// ingestListener is the Server's handle on the canbridge ingest layer,
// named so server.go stays free of the canbridge import.
type ingestListener = *canbridge.IngestServer

// StreamRegistration is what a tenant gets back from registering a live
// stream: the job (in Streaming state) and the one-shot session token to
// present in the canbridge HELLO.
type StreamRegistration struct {
	Job   *Job
	Token string
}

// RegisterStream admits a streaming job. The capture arrives afterwards
// over the canbridge ingest listener, bound by the returned token; a
// clean session end (client EOF) queues the job, a dropped or aborted
// session fails it. Registration counts against the tenant quota like any
// other live job.
func (s *Server) RegisterStream(tenant, car, streamName string) (StreamRegistration, error) {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return StreamRegistration{}, fmt.Errorf("jobserver: stream token: %w", err)
	}
	token := hex.EncodeToString(buf[:])

	s.mu.Lock()
	j, err := s.admitLocked(tenant, car, streamName, Streaming)
	if err != nil {
		s.mu.Unlock()
		s.logRejection(tenant, err)
		return StreamRegistration{}, err
	}
	ss := &streamSession{srv: s, job: j}
	s.streams[token] = ss
	s.mu.Unlock()
	j.log.Info("stream-registered")
	return StreamRegistration{Job: j, Token: token}, nil
}

// ServeIngest starts the canbridge ingest listener on addr ("127.0.0.1:0"
// for an ephemeral port) and returns the bound address. The listener is
// torn down with the server. Sessions run under the configured ingest
// guardrails: idle timeout, frame budget, byte budget.
func (s *Server) ServeIngest(addr string) (string, error) {
	lim := canbridge.IngestLimits{
		IdleTimeout: s.cfg.IngestIdleTimeout,
		MaxFrames:   s.cfg.IngestMaxFrames,
		MaxBytes:    s.cfg.IngestMaxBytes,
	}
	if mc, ok := s.clock.(*telemetry.ManualClock); ok {
		// Tests drive the server on a manual clock: idle expiry follows
		// it (via ExpireIdleStreams) instead of real read deadlines.
		lim.Clock = mc.Now
	} else if lim.IdleTimeout > 0 {
		lim.SweepInterval = lim.IdleTimeout / 4
	}
	ing := canbridge.NewIngestServerLimited(s.openStream, lim)
	bound, err := ing.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ing.Close()
		return "", fmt.Errorf("jobserver: server is draining")
	}
	s.ingest = ing
	s.mu.Unlock()
	return bound, nil
}

// ExpireIdleStreams sweeps the ingest listener's sessions for idle peers
// and fails them, returning how many were expired. The canbridge layer
// runs this sweep itself on a wall clock; servers on a manual clock
// (tests) call it after advancing time.
func (s *Server) ExpireIdleStreams() int {
	s.mu.Lock()
	ing := s.ingest
	s.mu.Unlock()
	if ing == nil {
		return 0
	}
	return ing.ExpireIdle()
}

// openStream resolves a HELLO token to its session sink. Each token binds
// exactly once.
func (s *Server) openStream(token string) (canbridge.IngestSink, error) {
	s.mu.Lock()
	ss, ok := s.streams[token]
	if ok {
		delete(s.streams, token)
	}
	draining := s.draining
	s.mu.Unlock()
	if !ok || draining {
		s.met.StreamSessions.With("rejected").Inc()
		return nil, fmt.Errorf("jobserver: unknown or already-bound stream token")
	}
	return ss, nil
}

// streamSession adapts one registered stream onto canbridge.IngestSink,
// accumulating frames into the job's capture until the session ends.
type streamSession struct {
	srv *Server
	job *Job

	mu         sync.Mutex
	frames     []can.Frame
	aborted    bool
	closed     bool
	failReason string
}

// Fail implements canbridge.FailableSink: record the distinct guardrail
// reason (idle-timeout, frame-budget, byte-budget) the ingest layer is
// about to fail this session with, so Close(false) can attribute it.
func (ss *streamSession) Fail(reason string) {
	ss.mu.Lock()
	if ss.failReason == "" {
		ss.failReason = reason
	}
	ss.mu.Unlock()
}

// Frame implements canbridge.IngestSink: buffer one stamped frame.
func (ss *streamSession) Frame(f can.Frame) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.aborted || ss.closed {
		return fmt.Errorf("jobserver: stream session closed")
	}
	if ss.job.State().Terminal() {
		return fmt.Errorf("jobserver: job %s is %s", ss.job.ID, ss.job.State())
	}
	ss.frames = append(ss.frames, f)
	return nil
}

// Advance implements canbridge.IngestSink. Frames arrive already stamped
// with the session clock, so there is nothing to do beyond refusing dead
// sessions.
func (ss *streamSession) Advance(time.Duration) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.aborted || ss.closed {
		return fmt.Errorf("jobserver: stream session closed")
	}
	return nil
}

// Close implements canbridge.IngestSink: finalise the stream. A complete
// session queues the job with the accumulated capture; anything else
// fails it.
func (ss *streamSession) Close(complete bool) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	if ss.aborted {
		complete = false
	}
	frames := ss.frames
	ss.frames = nil
	reason := ss.failReason
	ss.mu.Unlock()

	j, s := ss.job, ss.srv
	if j.State().Terminal() {
		// Cancelled while streaming; the books are already settled.
		s.met.StreamSessions.With("truncated").Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", "truncated"),
			telemetry.String("detail", "job already terminal"))
		return
	}
	if !complete {
		outcome := "truncated"
		errMsg := "stream truncated before completion"
		if reason != "" {
			// A guardrail kill carries its distinct reason through to the
			// session metric and the job's terminal error.
			outcome = reason
			errMsg = "stream session failed: " + reason
		}
		s.met.StreamSessions.With(outcome).Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", outcome),
			telemetry.Int("frames", len(frames)))
		s.finalize(j, Failed, nil, errMsg)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// The worker fleet may already be past the point of picking the
		// job up; refuse rather than strand it in the queue.
		s.met.StreamSessions.With("truncated").Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", "truncated"),
			telemetry.String("detail", "server draining"))
		s.finalize(j, Failed, nil, "stream completed during server drain")
		return
	}
	if s.cfg.ScreenStreams {
		if findings := reverser.ScreenFrames(frames); len(findings) > 0 {
			classes := make([]string, 0, len(findings))
			for _, f := range findings {
				classes = append(classes, fmt.Sprintf("%s on %03X", f.Class, f.ID))
			}
			s.met.StreamSessions.With("attack-rejected").Inc()
			j.log.Warn("stream-session-end", telemetry.String("outcome", "attack-rejected"),
				telemetry.Int("frames", len(frames)),
				telemetry.String("signatures", strings.Join(classes, "; ")))
			s.finalize(j, Failed, nil,
				"stream rejected at admission: attack signatures: "+strings.Join(classes, "; "))
			return
		}
	}
	s.met.StreamSessions.With("complete").Inc()
	j.log.Info("stream-session-end", telemetry.String("outcome", "complete"),
		telemetry.Int("frames", len(frames)))

	j.mu.Lock()
	j.capture = rig.Capture{Car: j.Car, Frames: frames}
	j.state = Queued
	j.notifyLocked()
	j.mu.Unlock()
	s.met.JobsByState.With(Streaming.String()).Add(-1)
	s.met.JobsByState.With(Queued.String()).Add(1)
	s.enqueue(j)
}

// abort kills a registered-but-unbound session at drain time: no
// connection exists to finalise it, so the job is settled here.
func (ss *streamSession) abort() {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	ss.aborted = true
	ss.mu.Unlock()
	ss.srv.finalize(ss.job, Cancelled, nil, "")
}
