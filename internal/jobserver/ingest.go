package jobserver

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/canbridge"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// ingestListener is the Server's handle on the canbridge ingest layer,
// named so server.go stays free of the canbridge import.
type ingestListener = *canbridge.IngestServer

// StreamRegistration is what a tenant gets back from registering a live
// stream: the job (in Streaming state) and the one-shot session token to
// present in the canbridge HELLO.
type StreamRegistration struct {
	Job   *Job
	Token string
}

// RegisterStream admits a streaming job. The capture arrives afterwards
// over the canbridge ingest listener, bound by the returned token; a
// clean session end (client EOF) queues the job, a dropped or aborted
// session fails it. Registration counts against the tenant quota like any
// other live job.
func (s *Server) RegisterStream(tenant, car, streamName string) (StreamRegistration, error) {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return StreamRegistration{}, fmt.Errorf("jobserver: stream token: %w", err)
	}
	token := hex.EncodeToString(buf[:])

	s.mu.Lock()
	j, err := s.admitLocked(tenant, car, streamName, Streaming)
	if err != nil {
		s.mu.Unlock()
		s.logRejection(tenant, err)
		return StreamRegistration{}, err
	}
	ss := &streamSession{srv: s, job: j}
	s.streams[token] = ss
	s.mu.Unlock()
	j.log.Info("stream-registered")
	return StreamRegistration{Job: j, Token: token}, nil
}

// ServeIngest starts the canbridge ingest listener on addr ("127.0.0.1:0"
// for an ephemeral port) and returns the bound address. The listener is
// torn down with the server.
func (s *Server) ServeIngest(addr string) (string, error) {
	ing := canbridge.NewIngestServer(s.openStream)
	bound, err := ing.Listen(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ing.Close()
		return "", fmt.Errorf("jobserver: server is draining")
	}
	s.ingest = ing
	s.mu.Unlock()
	return bound, nil
}

// openStream resolves a HELLO token to its session sink. Each token binds
// exactly once.
func (s *Server) openStream(token string) (canbridge.IngestSink, error) {
	s.mu.Lock()
	ss, ok := s.streams[token]
	if ok {
		delete(s.streams, token)
	}
	draining := s.draining
	s.mu.Unlock()
	if !ok || draining {
		s.met.StreamSessions.With("rejected").Inc()
		return nil, fmt.Errorf("jobserver: unknown or already-bound stream token")
	}
	return ss, nil
}

// streamSession adapts one registered stream onto canbridge.IngestSink,
// accumulating frames into the job's capture until the session ends.
type streamSession struct {
	srv *Server
	job *Job

	mu      sync.Mutex
	frames  []can.Frame
	aborted bool
	closed  bool
}

// Frame implements canbridge.IngestSink: buffer one stamped frame.
func (ss *streamSession) Frame(f can.Frame) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.aborted || ss.closed {
		return fmt.Errorf("jobserver: stream session closed")
	}
	if ss.job.State().Terminal() {
		return fmt.Errorf("jobserver: job %s is %s", ss.job.ID, ss.job.State())
	}
	ss.frames = append(ss.frames, f)
	return nil
}

// Advance implements canbridge.IngestSink. Frames arrive already stamped
// with the session clock, so there is nothing to do beyond refusing dead
// sessions.
func (ss *streamSession) Advance(time.Duration) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.aborted || ss.closed {
		return fmt.Errorf("jobserver: stream session closed")
	}
	return nil
}

// Close implements canbridge.IngestSink: finalise the stream. A complete
// session queues the job with the accumulated capture; anything else
// fails it.
func (ss *streamSession) Close(complete bool) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	if ss.aborted {
		complete = false
	}
	frames := ss.frames
	ss.frames = nil
	ss.mu.Unlock()

	j, s := ss.job, ss.srv
	if j.State().Terminal() {
		// Cancelled while streaming; the books are already settled.
		s.met.StreamSessions.With("truncated").Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", "truncated"),
			telemetry.String("detail", "job already terminal"))
		return
	}
	if !complete {
		s.met.StreamSessions.With("truncated").Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", "truncated"),
			telemetry.Int("frames", len(frames)))
		s.finalize(j, Failed, nil, "stream truncated before completion")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// The worker fleet may already be past the point of picking the
		// job up; refuse rather than strand it in the queue.
		s.met.StreamSessions.With("truncated").Inc()
		j.log.Warn("stream-session-end", telemetry.String("outcome", "truncated"),
			telemetry.String("detail", "server draining"))
		s.finalize(j, Failed, nil, "stream completed during server drain")
		return
	}
	s.met.StreamSessions.With("complete").Inc()
	j.log.Info("stream-session-end", telemetry.String("outcome", "complete"),
		telemetry.Int("frames", len(frames)))

	j.mu.Lock()
	j.capture = rig.Capture{Car: j.Car, Frames: frames}
	j.state = Queued
	j.notifyLocked()
	j.mu.Unlock()
	s.met.JobsByState.With(Streaming.String()).Add(-1)
	s.met.JobsByState.With(Queued.String()).Add(1)
	s.enqueue(j)
}

// abort kills a registered-but-unbound session at drain time: no
// connection exists to finalise it, so the job is settled here.
func (ss *streamSession) abort() {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	ss.aborted = true
	ss.mu.Unlock()
	ss.srv.finalize(ss.job, Cancelled, nil, "")
}
