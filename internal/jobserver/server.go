package jobserver

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// Config tunes the job server.
type Config struct {
	// Shards is the queue partition count. Work is assigned to a shard by
	// hashing (tenant, car, stream key), so submissions sharing that key
	// always land on the same shard — and with one worker per shard they
	// execute in submission order.
	Shards int
	// WorkersPerShard bounds the worker fleet: Shards × WorkersPerShard
	// pipeline runs happen concurrently at most.
	WorkersPerShard int
	// QueueDepth caps each shard's backlog; submissions beyond it are
	// rejected with a Retry-After hint (HTTP 429).
	QueueDepth int
	// TenantMaxActive caps one tenant's live jobs (streaming + queued +
	// running) across all shards.
	TenantMaxActive int
	// RetryAfter is the back-off hint returned with rejections.
	RetryAfter time.Duration
	// Reverser is the base option set every job's pipeline run starts
	// from; the server appends its own telemetry and progress wiring.
	Reverser []reverser.Option
	// QueueWaitSLO / RunSLO are the latency objectives: a job whose queue
	// wait (or run time) exceeds the bound counts against the error
	// budget. See telemetry.SLO for the burn-rate semantics.
	QueueWaitSLO time.Duration
	RunSLO       time.Duration
	// SLOTarget is the promised good fraction for both objectives
	// (e.g. 0.99).
	SLOTarget float64
	// FlightEvents sizes each job's flight-recorder ring (recent log
	// records retained per job).
	FlightEvents int
	// IngestIdleTimeout fails a canbridge ingest session whose peer sends
	// nothing for this long, so an idle connection cannot hold its
	// tenant-quota slot forever. 0 disables the timeout.
	IngestIdleTimeout time.Duration
	// IngestMaxFrames / IngestMaxBytes are per-session streaming budgets;
	// a session that exceeds either is failed with a distinct reason.
	// 0 means unlimited.
	IngestMaxFrames int
	IngestMaxBytes  int64
	// ScreenStreams runs transport-layer attack screening
	// (reverser.ScreenFrames) over every completed ingest stream at
	// admission: a capture carrying attack signatures is rejected before
	// it can occupy a worker.
	ScreenStreams bool
}

// DefaultConfig sizes the server for a small deployment.
func DefaultConfig() Config {
	return Config{
		Shards:          4,
		WorkersPerShard: 1,
		QueueDepth:      64,
		TenantMaxActive: 8,
		RetryAfter:      time.Second,
		QueueWaitSLO:    5 * time.Second,
		RunSLO:          2 * time.Minute,
		SLOTarget:       0.99,
		FlightEvents:    telemetry.DefaultRingCapacity,

		IngestIdleTimeout: 2 * time.Minute,
		IngestMaxFrames:   2_000_000,
		IngestMaxBytes:    64 << 20,
		ScreenStreams:     true,
	}
}

// RejectionError reports a refused submission: quota, backpressure or a
// draining server. RetryAfter is the client's back-off hint.
type RejectionError struct {
	// Reason is the stable label: "tenant-quota", "queue-full" or
	// "draining".
	Reason     string
	RetryAfter time.Duration
	// Correlation is the server-issued identifier for this refusal
	// ("r1", "r2", ...), returned in the response body and carried by the
	// rejection log record, so clients can quote it in support requests.
	Correlation string
}

// Error implements the error interface.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("jobserver: submission rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrUnknownJob reports a job ID the server has never issued.
var ErrUnknownJob = errors.New("jobserver: unknown job")

// shard is one queue partition.
type shard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Job
	// draining makes pop return nil once the queue is empty instead of
	// waiting.
	draining bool
}

func newShard() *shard {
	sh := &shard{}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// push appends a job and wakes one worker.
func (sh *shard) push(j *Job) {
	sh.mu.Lock()
	sh.queue = append(sh.queue, j)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// depth reads the backlog length.
func (sh *shard) depth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue)
}

// pop removes the oldest queued job, blocking until one arrives. It
// returns nil when the shard is draining and empty — the worker's exit
// signal.
func (sh *shard) pop() *Job {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.queue) == 0 {
		if sh.draining {
			return nil
		}
		sh.cond.Wait()
	}
	j := sh.queue[0]
	sh.queue = sh.queue[1:]
	return j
}

// drain flips the shard into drain mode and wakes all workers.
func (sh *shard) drain() {
	sh.mu.Lock()
	sh.draining = true
	sh.mu.Unlock()
	sh.cond.Broadcast()
}

// Server is the multi-tenant reverse-engineering job server core:
// admission, the sharded queue, the worker fleet and the job/result
// store. The HTTP layer (http.go) and the canbridge ingest layer
// (ingest.go) sit on top.
type Server struct {
	cfg   Config
	tel   *telemetry.Provider
	clock telemetry.Clock
	met   *telemetry.JobServerMetrics

	// baseLog is the logger every job logger derives from. It always
	// exists (falling back to a sinkless logger on the server clock) so
	// per-job flight-recorder rings record even when no stderr sink is
	// configured.
	baseLog  *telemetry.Logger
	sloQueue *telemetry.SLO
	sloRun   *telemetry.SLO
	runtime  *telemetry.RuntimeMetrics
	started  time.Duration // server clock at construction, for uptime

	shards []*shard
	wg     sync.WaitGroup

	mu       sync.Mutex
	seq      int
	rejSeq   int // rejection correlation counter
	jobs     map[string]*Job
	order    []string       // job IDs in submission order
	tenants  map[string]int // live (streaming+queued+running) jobs per tenant
	tstats   map[string]*tenantStat
	streams  map[string]*streamSession
	draining bool

	// ingest is the optional canbridge listener; see ingest.go.
	ingest ingestListener
}

// tenantStat is the per-tenant admission ledger behind the status
// surface's tenant table. Guarded by Server.mu.
type tenantStat struct {
	admitted int
	rejected map[string]int // reason → count
}

// TenantStatus is one tenant's row in the status surface.
type TenantStatus struct {
	Tenant   string         `json:"tenant"`
	Active   int            `json:"active"`
	Admitted int            `json:"admitted"`
	Rejected map[string]int `json:"rejected,omitempty"`
}

// TenantStats lists every tenant the server has seen, sorted by name.
func (s *Server) TenantStats() []TenantStatus {
	s.mu.Lock()
	out := make([]TenantStatus, 0, len(s.tstats))
	for name, st := range s.tstats {
		ts := TenantStatus{Tenant: name, Active: s.tenants[name], Admitted: st.admitted}
		if len(st.rejected) > 0 {
			ts.Rejected = make(map[string]int, len(st.rejected))
			for r, n := range st.rejected {
				ts.Rejected[r] = n
			}
		}
		out = append(out, ts)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// SLOs returns the two latency objectives' current status, refreshing
// the burn gauges as a side effect.
func (s *Server) SLOs() []telemetry.SLOStatus {
	return []telemetry.SLOStatus{s.sloQueue.Status(), s.sloRun.Status()}
}

// SampleHealth refreshes the runtime gauges and SLO burn gauges — called
// on every scrape and status render so the exported values are current
// without a background sampler goroutine.
func (s *Server) SampleHealth() telemetry.RuntimeSample {
	s.sloQueue.Sample()
	s.sloRun.Sample()
	return s.runtime.Sample()
}

// New builds and starts a job server: the worker fleet is running on
// return. A nil provider disables telemetry (spans and metrics become
// no-ops); the server then times jobs with a private wall clock.
func New(cfg Config, tel *telemetry.Provider) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.WorkersPerShard < 1 {
		cfg.WorkersPerShard = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.TenantMaxActive < 1 {
		cfg.TenantMaxActive = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.QueueWaitSLO <= 0 {
		cfg.QueueWaitSLO = 5 * time.Second
	}
	if cfg.RunSLO <= 0 {
		cfg.RunSLO = 2 * time.Minute
	}
	if cfg.SLOTarget <= 0 || cfg.SLOTarget >= 1 {
		cfg.SLOTarget = 0.99
	}
	if cfg.FlightEvents < 1 {
		cfg.FlightEvents = telemetry.DefaultRingCapacity
	}
	s := &Server{
		cfg:     cfg,
		tel:     tel,
		met:     telemetry.NewJobServerMetrics(tel.RegistryOrNil()),
		jobs:    map[string]*Job{},
		tenants: map[string]int{},
		tstats:  map[string]*tenantStat{},
		streams: map[string]*streamSession{},
	}
	if tel != nil && tel.Clock != nil {
		s.clock = tel.Clock
	} else {
		s.clock = telemetry.NewWallClock()
	}
	s.started = s.clock.Now()
	// The base logger always exists so each job's flight-recorder ring
	// records even when the daemon runs without a stderr sink.
	s.baseLog = tel.LoggerOrNil()
	if s.baseLog == nil {
		s.baseLog = telemetry.NewLogger(s.clock)
	}
	reg := tel.RegistryOrNil()
	s.sloQueue = telemetry.NewSLO(reg, s.clock, "queue-wait", cfg.QueueWaitSLO, cfg.SLOTarget)
	s.sloRun = telemetry.NewSLO(reg, s.clock, "run", cfg.RunSLO, cfg.SLOTarget)
	s.runtime = telemetry.NewRuntimeMetrics(reg)
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard())
	}
	for i := range s.shards {
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.wg.Add(1)
			go s.worker(i)
		}
	}
	return s
}

// Config returns the configuration in effect (after defaulting).
func (s *Server) Config() Config { return s.cfg }

// shardFor hashes the partition key. Everything that shares (tenant, car,
// stream) shares a shard, so one worker per shard serialises a tenant's
// related submissions in order.
func (s *Server) shardFor(tenant, car, stream string) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s", tenant, car, stream)
	return int(h.Sum64() % uint64(len(s.shards)))
}

// Submit admits one complete capture as a queued job. The returned error
// is a *RejectionError for quota/backpressure/draining refusals.
func (s *Server) Submit(tenant string, cap rig.Capture, streamName string) (*Job, error) {
	if tenant == "" {
		return nil, fmt.Errorf("jobserver: empty tenant")
	}
	s.mu.Lock()
	j, err := s.admitLocked(tenant, cap.Car, streamName, Queued)
	if err != nil {
		s.mu.Unlock()
		s.logRejection(tenant, err)
		return nil, err
	}
	j.capture = cap
	s.mu.Unlock()
	j.log.Info("job-admitted", telemetry.Int("frames", len(cap.Frames)))
	s.enqueue(j)
	return j, nil
}

// logRejection records a refused submission, quoting its correlation ID.
// Called after s.mu is released — sinks take their own locks.
func (s *Server) logRejection(tenant string, err error) {
	var rej *RejectionError
	if !errors.As(err, &rej) {
		return
	}
	s.baseLog.Warn("job-rejected",
		telemetry.String("tenant", tenant),
		telemetry.String("reason", rej.Reason),
		telemetry.String("correlation", rej.Correlation))
}

// admitLocked runs admission control and creates the job in its initial
// state. Callers hold s.mu.
func (s *Server) admitLocked(tenant, car, streamName string, initial JobState) (*Job, error) {
	reject := func(reason string) error {
		s.met.TenantRejections.With(tenant, reason).Inc()
		s.rejSeq++
		st := s.tstats[tenant]
		if st == nil {
			st = &tenantStat{}
			s.tstats[tenant] = st
		}
		if st.rejected == nil {
			st.rejected = map[string]int{}
		}
		st.rejected[reason]++
		return &RejectionError{
			Reason:      reason,
			RetryAfter:  s.cfg.RetryAfter,
			Correlation: fmt.Sprintf("r%d", s.rejSeq),
		}
	}
	if s.draining {
		return nil, reject("draining")
	}
	if s.tenants[tenant] >= s.cfg.TenantMaxActive {
		return nil, reject("tenant-quota")
	}
	shardIdx := s.shardFor(tenant, car, streamName)
	if initial == Queued && s.shards[shardIdx].depth() >= s.cfg.QueueDepth {
		return nil, reject("queue-full")
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%d", s.seq), tenant, car, streamName, initial, s.clock.Now())
	j.shard = shardIdx
	// The job's correlation context binds here and follows every record
	// the job emits, from ingest through reverser stages; the teed ring is
	// the job's flight recorder.
	j.ring = telemetry.NewRingSink(s.cfg.FlightEvents)
	attrs := []telemetry.Attr{
		telemetry.String("tenant", tenant),
		telemetry.String("job", j.ID),
		telemetry.Int("shard", shardIdx),
	}
	if car != "" {
		attrs = append(attrs, telemetry.String("car", car))
	}
	if streamName != "" {
		attrs = append(attrs, telemetry.String("stream", streamName))
	}
	j.log = s.baseLog.With(attrs...).Tee(j.ring)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.tenants[tenant]++
	st := s.tstats[tenant]
	if st == nil {
		st = &tenantStat{}
		s.tstats[tenant] = st
	}
	st.admitted++
	s.met.TenantAdmissions.With(tenant).Inc()
	s.met.JobsByState.With(initial.String()).Add(1)
	return j, nil
}

// enqueue hands a job to its shard and publishes the new depth.
func (s *Server) enqueue(j *Job) {
	sh := s.shards[j.shard]
	sh.push(j)
	s.met.QueueDepth.With(strconv.Itoa(j.shard)).Set(float64(sh.depth()))
}

// worker is one member of the bounded fleet, pinned to a shard.
func (s *Server) worker(shardIdx int) {
	defer s.wg.Done()
	sh := s.shards[shardIdx]
	for {
		j := sh.pop()
		if j == nil {
			return
		}
		s.met.QueueDepth.With(strconv.Itoa(shardIdx)).Set(float64(sh.depth()))
		s.runJob(j)
	}
}

// runJob executes one job through the pipeline and finalises it.
func (s *Server) runJob(j *Job) {
	// Claim the job: a cancelled-in-queue job is already terminal and is
	// simply skipped.
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if j.cancelled {
		cancel()
	}
	j.cancelRun = cancel
	prev := j.state
	j.state = Running
	j.started = s.clock.Now()
	queueWait := j.started - j.submitted
	j.notifyLocked()
	capture := j.capture
	j.mu.Unlock()
	defer cancel()

	s.met.JobsByState.With(prev.String()).Add(-1)
	s.met.JobsByState.With(Running.String()).Add(1)
	s.met.QueueWait.ObserveDuration(queueWait)
	s.met.TenantQueueWait.With(j.Tenant).ObserveDuration(queueWait)
	s.sloQueue.Observe(queueWait)

	span := s.tel.TracerOrNil().Start("job",
		telemetry.String("job", j.ID),
		telemetry.String("tenant", j.Tenant),
		telemetry.String("car", j.Car),
		telemetry.Int("shard", j.shard))
	defer span.End()

	// The root span's ID joins the correlation context for every record
	// the run emits, tying the log stream to the trace dump.
	runLog := j.log.With(telemetry.Int64("span", span.ID()))
	j.setRunLogger(runLog)
	runLog.Info("job-start", telemetry.Millis("queue_wait_ms", queueWait))

	opts := make([]reverser.Option, 0, len(s.cfg.Reverser)+2)
	opts = append(opts, s.cfg.Reverser...)
	opts = append(opts, reverser.WithTelemetry(s.tel.WithLogger(runLog)), reverser.WithProgress(j.record))
	res, err := reverser.New(opts...).Reverse(ctx, capture)

	final := Done
	errMsg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		final = Cancelled
	default:
		final = Failed
		errMsg = err.Error()
		// Under the strict fault policy the error still carries the
		// partial result; keep it so the flight record can name the
		// degraded streams in the postmortem.
		var deg *reverser.DegradedError
		if errors.As(err, &deg) && deg.Result != nil {
			res = deg.Result
		}
	}
	s.finalize(j, final, res, errMsg)
}

// finalize moves a job into a terminal state and settles the accounting.
func (s *Server) finalize(j *Job, final JobState, res *reverser.Result, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = final
	j.result = res
	j.errMsg = errMsg
	j.finished = s.clock.Now()
	var runTime time.Duration
	if j.started > 0 {
		runTime = j.finished - j.started
	}
	j.notifyLocked()
	j.mu.Unlock()

	s.met.JobsByState.With(prev.String()).Add(-1)
	s.met.JobsByState.With(final.String()).Add(1)
	s.met.JobsFinished.With(final.String()).Inc()
	if prev == Running {
		s.met.RunDuration.ObserveDuration(runTime)
		s.met.TenantRunDuration.With(j.Tenant).ObserveDuration(runTime)
		s.sloRun.Observe(runTime)
	}
	s.mu.Lock()
	s.tenants[j.Tenant]--
	if s.tenants[j.Tenant] <= 0 {
		delete(s.tenants, j.Tenant)
	}
	s.mu.Unlock()

	attrs := []telemetry.Attr{
		telemetry.String("state", final.String()),
		telemetry.Millis("run_ms", runTime),
	}
	if errMsg != "" {
		attrs = append(attrs, telemetry.String("error", errMsg))
	}
	if final == Failed {
		j.runLogger().Error("job-finished", attrs...)
	} else {
		j.runLogger().Info("job-finished", attrs...)
	}
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists jobs in submission order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, j)
	}
	return out
}

// Cancel aborts a job: queued and streaming jobs become Cancelled
// immediately, running jobs have their context cancelled and finalise
// through the worker. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return nil
	case j.state == Running:
		j.cancelled = true
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		// Streaming or queued: mark it so the worker (or the ingest
		// finaliser) skips it, and settle the books now.
		j.cancelled = true
		j.mu.Unlock()
		s.finalize(j, Cancelled, nil, "")
		return nil
	}
}

// FormulaRecord is one recovered formula in the queryable store.
type FormulaRecord struct {
	Job     string  `json:"job"`
	Tenant  string  `json:"tenant"`
	Car     string  `json:"car,omitempty"`
	ID      string  `json:"id"`
	Label   string  `json:"label,omitempty"`
	Unit    string  `json:"unit,omitempty"`
	Formula string  `json:"formula"`
	Fitness float64 `json:"fitness"`
	Pairs   int     `json:"pairs"`
}

// Formulas lists every recovered formula across completed jobs, filtered
// by tenant and/or car when non-empty, in (job, stream) order.
func (s *Server) Formulas(tenant, car string) []FormulaRecord {
	var out []FormulaRecord
	for _, j := range s.Jobs(tenant) {
		if car != "" && j.Car != car {
			continue
		}
		res := j.Result()
		if res == nil {
			continue
		}
		for _, e := range res.ESVs {
			if e.Formula == nil {
				continue
			}
			out = append(out, FormulaRecord{
				Job: j.ID, Tenant: j.Tenant, Car: j.Car,
				ID: e.Key.String(), Label: e.Label, Unit: e.Unit,
				Formula: e.FormulaString(), Fitness: e.Fitness, Pairs: e.Pairs,
			})
		}
	}
	return out
}

// QueueDepths reports each shard's backlog, for status endpoints.
func (s *Server) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.depth()
	}
	return out
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits for every queued and running job to
// finish — the graceful shutdown the daemon runs on SIGTERM. If ctx
// expires first, the remaining jobs are cancelled and Drain keeps waiting
// for the workers to observe the cancellation (which the GP engine does
// between generations). Live ingest sessions are cut.
func (s *Server) Drain(ctx context.Context) error {
	s.baseLog.Info("drain-begin")
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseLog.Info("drain-complete")
		return nil
	case <-ctx.Done():
		s.baseLog.Warn("drain-deadline-exceeded", telemetry.String("action", "cancelling remaining jobs"))
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: admission stops, all live jobs are
// cancelled, and Close returns once the workers exit.
func (s *Server) Close() error {
	s.beginDrain()
	s.cancelAll()
	s.wg.Wait()
	return nil
}

// beginDrain flips admission off, cuts ingest sessions and puts every
// shard into drain mode. Idempotent.
func (s *Server) beginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	sessions := make([]*streamSession, 0, len(s.streams))
	for _, ss := range s.streams {
		sessions = append(sessions, ss)
	}
	ing := s.ingest
	s.mu.Unlock()
	if already {
		return
	}
	// Registered-but-never-bound streams are settled here; bound sessions
	// live inside the ingest listener and are truncated by its Close.
	for _, ss := range sessions {
		ss.abort()
	}
	if ing != nil {
		ing.Close() //nolint:errcheck // Close never fails after Listen
	}
	for _, sh := range s.shards {
		sh.drain()
	}
}

// cancelAll cancels every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		s.Cancel(id) //nolint:errcheck // unknown IDs cannot occur here
	}
}
