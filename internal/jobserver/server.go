package jobserver

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"

	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// Config tunes the job server.
type Config struct {
	// Shards is the queue partition count. Work is assigned to a shard by
	// hashing (tenant, car, stream key), so submissions sharing that key
	// always land on the same shard — and with one worker per shard they
	// execute in submission order.
	Shards int
	// WorkersPerShard bounds the worker fleet: Shards × WorkersPerShard
	// pipeline runs happen concurrently at most.
	WorkersPerShard int
	// QueueDepth caps each shard's backlog; submissions beyond it are
	// rejected with a Retry-After hint (HTTP 429).
	QueueDepth int
	// TenantMaxActive caps one tenant's live jobs (streaming + queued +
	// running) across all shards.
	TenantMaxActive int
	// RetryAfter is the back-off hint returned with rejections.
	RetryAfter time.Duration
	// Reverser is the base option set every job's pipeline run starts
	// from; the server appends its own telemetry and progress wiring.
	Reverser []reverser.Option
}

// DefaultConfig sizes the server for a small deployment.
func DefaultConfig() Config {
	return Config{
		Shards:          4,
		WorkersPerShard: 1,
		QueueDepth:      64,
		TenantMaxActive: 8,
		RetryAfter:      time.Second,
	}
}

// RejectionError reports a refused submission: quota, backpressure or a
// draining server. RetryAfter is the client's back-off hint.
type RejectionError struct {
	// Reason is the stable label: "tenant-quota", "queue-full" or
	// "draining".
	Reason     string
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("jobserver: submission rejected (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrUnknownJob reports a job ID the server has never issued.
var ErrUnknownJob = errors.New("jobserver: unknown job")

// shard is one queue partition.
type shard struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Job
	// draining makes pop return nil once the queue is empty instead of
	// waiting.
	draining bool
}

func newShard() *shard {
	sh := &shard{}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// push appends a job and wakes one worker.
func (sh *shard) push(j *Job) {
	sh.mu.Lock()
	sh.queue = append(sh.queue, j)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// depth reads the backlog length.
func (sh *shard) depth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue)
}

// pop removes the oldest queued job, blocking until one arrives. It
// returns nil when the shard is draining and empty — the worker's exit
// signal.
func (sh *shard) pop() *Job {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.queue) == 0 {
		if sh.draining {
			return nil
		}
		sh.cond.Wait()
	}
	j := sh.queue[0]
	sh.queue = sh.queue[1:]
	return j
}

// drain flips the shard into drain mode and wakes all workers.
func (sh *shard) drain() {
	sh.mu.Lock()
	sh.draining = true
	sh.mu.Unlock()
	sh.cond.Broadcast()
}

// Server is the multi-tenant reverse-engineering job server core:
// admission, the sharded queue, the worker fleet and the job/result
// store. The HTTP layer (http.go) and the canbridge ingest layer
// (ingest.go) sit on top.
type Server struct {
	cfg   Config
	tel   *telemetry.Provider
	clock telemetry.Clock
	met   *telemetry.JobServerMetrics

	shards []*shard
	wg     sync.WaitGroup

	mu       sync.Mutex
	seq      int
	jobs     map[string]*Job
	order    []string       // job IDs in submission order
	tenants  map[string]int // live (streaming+queued+running) jobs per tenant
	streams  map[string]*streamSession
	draining bool

	// ingest is the optional canbridge listener; see ingest.go.
	ingest ingestListener
}

// New builds and starts a job server: the worker fleet is running on
// return. A nil provider disables telemetry (spans and metrics become
// no-ops); the server then times jobs with a private wall clock.
func New(cfg Config, tel *telemetry.Provider) *Server {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.WorkersPerShard < 1 {
		cfg.WorkersPerShard = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1
	}
	if cfg.TenantMaxActive < 1 {
		cfg.TenantMaxActive = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		cfg:     cfg,
		tel:     tel,
		met:     telemetry.NewJobServerMetrics(tel.RegistryOrNil()),
		jobs:    map[string]*Job{},
		tenants: map[string]int{},
		streams: map[string]*streamSession{},
	}
	if tel != nil && tel.Clock != nil {
		s.clock = tel.Clock
	} else {
		s.clock = telemetry.NewWallClock()
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard())
	}
	for i := range s.shards {
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.wg.Add(1)
			go s.worker(i)
		}
	}
	return s
}

// Config returns the configuration in effect (after defaulting).
func (s *Server) Config() Config { return s.cfg }

// shardFor hashes the partition key. Everything that shares (tenant, car,
// stream) shares a shard, so one worker per shard serialises a tenant's
// related submissions in order.
func (s *Server) shardFor(tenant, car, stream string) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%s", tenant, car, stream)
	return int(h.Sum64() % uint64(len(s.shards)))
}

// Submit admits one complete capture as a queued job. The returned error
// is a *RejectionError for quota/backpressure/draining refusals.
func (s *Server) Submit(tenant string, cap rig.Capture, streamName string) (*Job, error) {
	if tenant == "" {
		return nil, fmt.Errorf("jobserver: empty tenant")
	}
	s.mu.Lock()
	j, err := s.admitLocked(tenant, cap.Car, streamName, Queued)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	j.capture = cap
	s.mu.Unlock()
	s.enqueue(j)
	return j, nil
}

// admitLocked runs admission control and creates the job in its initial
// state. Callers hold s.mu.
func (s *Server) admitLocked(tenant, car, streamName string, initial JobState) (*Job, error) {
	reject := func(reason string) error {
		s.met.TenantRejections.With(tenant, reason).Inc()
		return &RejectionError{Reason: reason, RetryAfter: s.cfg.RetryAfter}
	}
	if s.draining {
		return nil, reject("draining")
	}
	if s.tenants[tenant] >= s.cfg.TenantMaxActive {
		return nil, reject("tenant-quota")
	}
	shardIdx := s.shardFor(tenant, car, streamName)
	if initial == Queued && s.shards[shardIdx].depth() >= s.cfg.QueueDepth {
		return nil, reject("queue-full")
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%d", s.seq), tenant, car, streamName, initial, s.clock.Now())
	j.shard = shardIdx
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.tenants[tenant]++
	s.met.TenantAdmissions.With(tenant).Inc()
	s.met.JobsByState.With(initial.String()).Add(1)
	return j, nil
}

// enqueue hands a job to its shard and publishes the new depth.
func (s *Server) enqueue(j *Job) {
	sh := s.shards[j.shard]
	sh.push(j)
	s.met.QueueDepth.With(strconv.Itoa(j.shard)).Set(float64(sh.depth()))
}

// worker is one member of the bounded fleet, pinned to a shard.
func (s *Server) worker(shardIdx int) {
	defer s.wg.Done()
	sh := s.shards[shardIdx]
	for {
		j := sh.pop()
		if j == nil {
			return
		}
		s.met.QueueDepth.With(strconv.Itoa(shardIdx)).Set(float64(sh.depth()))
		s.runJob(j)
	}
}

// runJob executes one job through the pipeline and finalises it.
func (s *Server) runJob(j *Job) {
	// Claim the job: a cancelled-in-queue job is already terminal and is
	// simply skipped.
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if j.cancelled {
		cancel()
	}
	j.cancelRun = cancel
	prev := j.state
	j.state = Running
	j.started = s.clock.Now()
	queueWait := j.started - j.submitted
	j.notifyLocked()
	capture := j.capture
	j.mu.Unlock()
	defer cancel()

	s.met.JobsByState.With(prev.String()).Add(-1)
	s.met.JobsByState.With(Running.String()).Add(1)
	s.met.QueueWait.ObserveDuration(queueWait)

	span := s.tel.TracerOrNil().Start("job",
		telemetry.String("job", j.ID),
		telemetry.String("tenant", j.Tenant),
		telemetry.String("car", j.Car),
		telemetry.Int("shard", j.shard))
	defer span.End()

	opts := make([]reverser.Option, 0, len(s.cfg.Reverser)+2)
	opts = append(opts, s.cfg.Reverser...)
	opts = append(opts, reverser.WithTelemetry(s.tel), reverser.WithProgress(j.record))
	res, err := reverser.New(opts...).Reverse(ctx, capture)

	final := Done
	errMsg := ""
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		final = Cancelled
	default:
		final = Failed
		errMsg = err.Error()
	}
	s.finalize(j, final, res, errMsg)
}

// finalize moves a job into a terminal state and settles the accounting.
func (s *Server) finalize(j *Job, final JobState, res *reverser.Result, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.state = final
	j.result = res
	j.errMsg = errMsg
	j.finished = s.clock.Now()
	var runTime time.Duration
	if j.started > 0 {
		runTime = j.finished - j.started
	}
	j.notifyLocked()
	j.mu.Unlock()

	s.met.JobsByState.With(prev.String()).Add(-1)
	s.met.JobsByState.With(final.String()).Add(1)
	s.met.JobsFinished.With(final.String()).Inc()
	if prev == Running {
		s.met.RunDuration.ObserveDuration(runTime)
	}
	s.mu.Lock()
	s.tenants[j.Tenant]--
	if s.tenants[j.Tenant] <= 0 {
		delete(s.tenants, j.Tenant)
	}
	s.mu.Unlock()
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists jobs in submission order, optionally filtered by tenant.
func (s *Server) Jobs(tenant string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		out = append(out, j)
	}
	return out
}

// Cancel aborts a job: queued and streaming jobs become Cancelled
// immediately, running jobs have their context cancelled and finalise
// through the worker. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	j, err := s.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return nil
	case j.state == Running:
		j.cancelled = true
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		// Streaming or queued: mark it so the worker (or the ingest
		// finaliser) skips it, and settle the books now.
		j.cancelled = true
		j.mu.Unlock()
		s.finalize(j, Cancelled, nil, "")
		return nil
	}
}

// FormulaRecord is one recovered formula in the queryable store.
type FormulaRecord struct {
	Job     string  `json:"job"`
	Tenant  string  `json:"tenant"`
	Car     string  `json:"car,omitempty"`
	ID      string  `json:"id"`
	Label   string  `json:"label,omitempty"`
	Unit    string  `json:"unit,omitempty"`
	Formula string  `json:"formula"`
	Fitness float64 `json:"fitness"`
	Pairs   int     `json:"pairs"`
}

// Formulas lists every recovered formula across completed jobs, filtered
// by tenant and/or car when non-empty, in (job, stream) order.
func (s *Server) Formulas(tenant, car string) []FormulaRecord {
	var out []FormulaRecord
	for _, j := range s.Jobs(tenant) {
		if car != "" && j.Car != car {
			continue
		}
		res := j.Result()
		if res == nil {
			continue
		}
		for _, e := range res.ESVs {
			if e.Formula == nil {
				continue
			}
			out = append(out, FormulaRecord{
				Job: j.ID, Tenant: j.Tenant, Car: j.Car,
				ID: e.Key.String(), Label: e.Label, Unit: e.Unit,
				Formula: e.FormulaString(), Fitness: e.Fitness, Pairs: e.Pairs,
			})
		}
	}
	return out
}

// QueueDepths reports each shard's backlog, for status endpoints.
func (s *Server) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.depth()
	}
	return out
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits for every queued and running job to
// finish — the graceful shutdown the daemon runs on SIGTERM. If ctx
// expires first, the remaining jobs are cancelled and Drain keeps waiting
// for the workers to observe the cancellation (which the GP engine does
// between generations). Live ingest sessions are cut.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: admission stops, all live jobs are
// cancelled, and Close returns once the workers exit.
func (s *Server) Close() error {
	s.beginDrain()
	s.cancelAll()
	s.wg.Wait()
	return nil
}

// beginDrain flips admission off, cuts ingest sessions and puts every
// shard into drain mode. Idempotent.
func (s *Server) beginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	sessions := make([]*streamSession, 0, len(s.streams))
	for _, ss := range s.streams {
		sessions = append(sessions, ss)
	}
	ing := s.ingest
	s.mu.Unlock()
	if already {
		return
	}
	// Registered-but-never-bound streams are settled here; bound sessions
	// live inside the ingest listener and are truncated by its Close.
	for _, ss := range sessions {
		ss.abort()
	}
	if ing != nil {
		ing.Close() //nolint:errcheck // Close never fails after Listen
	}
	for _, sh := range s.shards {
		sh.drain()
	}
}

// cancelAll cancels every non-terminal job.
func (s *Server) cancelAll() {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		s.Cancel(id) //nolint:errcheck // unknown IDs cannot occur here
	}
}
