package jobserver

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"dpreverser/internal/telemetry"
)

// The /debug/status page is the zero-dependency operator dashboard:
// one server-side-rendered HTML document summarising jobs by state,
// per-shard queue depth, the tenant ledger, SLO burn, runtime health and
// the most recent flight-recorder tails. The CI smoke test asserts on
// the stable id= markers, so treat them as API.

// statusFlightTail bounds how many recent jobs show a flight tail, and
// statusTailRecords how many ring records each shows.
const (
	statusFlightTail  = 5
	statusTailRecords = 6
	statusJobRows     = 25
)

var statusTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>dpreversed status</title>
<style>
body { font-family: ui-monospace, monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: 0.4em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: left; }
th { background: #eee; }
.num { text-align: right; }
.bad { color: #b00020; font-weight: bold; }
pre { background: #f0f0f0; padding: 0.6em; overflow-x: auto; }
.muted { color: #777; }
</style></head>
<body>
<h1>dpreversed status</h1>
<p class="muted">uptime {{.Uptime}}{{if .Draining}} · <span class="bad">DRAINING</span>{{end}} · {{.Shards}} shard(s)</p>

<h2>Jobs by state</h2>
<table id="jobs-by-state"><tr><th>state</th><th class="num">count</th></tr>
{{range .States}}<tr><td>{{.Name}}</td><td class="num">{{.Count}}</td></tr>
{{end}}</table>

<h2>Queue depth per shard</h2>
<table id="queue-depths"><tr><th>shard</th><th class="num">depth</th></tr>
{{range .Queues}}<tr><td>{{.Shard}}</td><td class="num">{{.Depth}}</td></tr>
{{end}}</table>

<h2>Tenants</h2>
<table id="tenants"><tr><th>tenant</th><th class="num">active</th><th class="num">admitted</th><th>rejected</th></tr>
{{range .Tenants}}<tr><td>{{.Tenant}}</td><td class="num">{{.Active}}</td><td class="num">{{.Admitted}}</td><td>{{range $r, $n := .Rejected}}{{$r}}={{$n}} {{end}}</td></tr>
{{end}}</table>

<h2>SLO burn</h2>
<table id="slo"><tr><th>objective</th><th class="num">bound (ms)</th><th class="num">target</th><th class="num">good</th><th class="num">bad</th>{{range $.Windows}}<th class="num">burn {{.}}</th>{{end}}</tr>
{{range .SLOs}}<tr><td>{{.Name}}</td><td class="num">{{printf "%.0f" .ObjectiveMS}}</td><td class="num">{{printf "%.2f" .Target}}</td><td class="num">{{.Good}}</td><td class="num">{{.Bad}}</td>{{range .BurnCols}}<td class="num{{if .Hot}} bad{{end}}">{{printf "%.3f" .Rate}}</td>{{end}}</tr>
{{end}}</table>

<h2>Runtime</h2>
<table id="runtime">
<tr><th>goroutines</th><td class="num">{{.Runtime.Goroutines}}</td></tr>
<tr><th>heap alloc (bytes)</th><td class="num">{{.Runtime.HeapAlloc}}</td></tr>
<tr><th>heap objects</th><td class="num">{{.Runtime.HeapObjects}}</td></tr>
<tr><th>GC pause total (s)</th><td class="num">{{printf "%.6f" .Runtime.GCPauseSec}}</td></tr>
<tr><th>GC cycles</th><td class="num">{{.Runtime.GCCycles}}</td></tr>
</table>

<h2>Recent flight tails</h2>
<div id="flights">
{{range .Flights}}<h3>{{.Job}} <span class="muted">({{.State}}{{if .Error}}: {{.Error}}{{end}})</span></h3>
<pre>{{range .Lines}}{{.}}
{{end}}{{if .More}}<span class="muted">… {{.More}} earlier record(s)</span>{{end}}</pre>
{{else}}<p class="muted">no jobs yet</p>{{end}}
</div>

<h2>Recent jobs</h2>
<table id="jobs"><tr><th>job</th><th>tenant</th><th>car</th><th>state</th><th class="num">shard</th><th class="num">queue wait (ms)</th><th class="num">run (ms)</th><th class="num">esvs</th><th>error</th></tr>
{{range .Jobs}}<tr><td><a href="/api/v1/jobs/{{.ID}}/flight">{{.ID}}</a></td><td>{{.Tenant}}</td><td>{{.Car}}</td><td{{if eq .State "failed"}} class="bad"{{end}}>{{.State}}</td><td class="num">{{.Shard}}</td><td class="num">{{printf "%.1f" .QueueWaitMS}}</td><td class="num">{{printf "%.1f" .RunMS}}</td><td class="num">{{.ESVs}}</td><td>{{.Error}}</td></tr>
{{end}}</table>
</body></html>
`))

// statusView is the template's data model.
type statusView struct {
	Uptime   string
	Draining bool
	Shards   int
	States   []statusCount
	Queues   []statusQueue
	Tenants  []TenantStatus
	SLOs     []statusSLO
	Windows  []string
	Runtime  telemetry.RuntimeSample
	Flights  []statusFlight
	Jobs     []Snapshot
}

type statusCount struct {
	Name  string
	Count int
}

type statusQueue struct {
	Shard, Depth int
}

// statusSLO is one SLO row: the status plus burn columns aligned with
// the view's Windows header order.
type statusSLO struct {
	telemetry.SLOStatus
	BurnCols []statusBurn
}

type statusBurn struct {
	Rate float64
	Hot  bool // burning faster than the budget sustains
}

type statusFlight struct {
	Job, State, Error string
	Lines             []string
	More              uint64
}

// handleStatus renders the dashboard.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	view := s.statusView()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, view); err != nil {
		// Header already sent; nothing more useful than noting it.
		fmt.Fprintf(w, "\n<!-- render error: %v -->", err)
	}
}

// statusView assembles the dashboard's data from live server state.
func (s *Server) statusView() statusView {
	rt := s.SampleHealth()
	jobs := s.Jobs("")

	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.State().String()]++
	}
	var states []statusCount
	for _, st := range []JobState{Streaming, Queued, Running, Done, Failed, Cancelled} {
		states = append(states, statusCount{Name: st.String(), Count: counts[st.String()]})
	}

	var queues []statusQueue
	for i, d := range s.QueueDepths() {
		queues = append(queues, statusQueue{Shard: i, Depth: d})
	}

	windows := telemetry.SortedBurnWindows()
	var slos []statusSLO
	for _, st := range s.SLOs() {
		row := statusSLO{SLOStatus: st}
		for _, w := range windows {
			row.BurnCols = append(row.BurnCols, statusBurn{Rate: st.Burn[w], Hot: st.Burn[w] > 1})
		}
		slos = append(slos, row)
	}

	// Flight tails: the most recent jobs, newest first.
	var flights []statusFlight
	for i := len(jobs) - 1; i >= 0 && len(flights) < statusFlightTail; i-- {
		j := jobs[i]
		recs, dropped := j.ring.Snapshot()
		more := dropped
		if len(recs) > statusTailRecords {
			more += uint64(len(recs) - statusTailRecords)
			recs = recs[len(recs)-statusTailRecords:]
		}
		lines := make([]string, 0, len(recs))
		for _, rec := range recs {
			lines = append(lines, rec.Text())
		}
		snap := j.Snapshot()
		flights = append(flights, statusFlight{
			Job: snap.ID, State: snap.State, Error: snap.Error, Lines: lines, More: more,
		})
	}

	// Recent jobs table, newest first.
	var rows []Snapshot
	for i := len(jobs) - 1; i >= 0 && len(rows) < statusJobRows; i-- {
		rows = append(rows, jobs[i].Snapshot())
	}

	uptime := s.clock.Now() - s.started
	return statusView{
		Uptime:   uptime.Round(time.Millisecond).String(),
		Draining: s.Draining(),
		Shards:   len(s.shards),
		States:   states,
		Queues:   queues,
		Tenants:  s.TenantStats(),
		SLOs:     slos,
		Windows:  windows,
		Runtime:  rt,
		Flights:  flights,
		Jobs:     rows,
	}
}
