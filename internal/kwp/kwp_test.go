package kwp

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestPaperRPMExample(t *testing.T) {
	// Paper §2.3.1: ESV "01 F1 10" decodes with X0*X1/5.
	// (The paper's prose computes 242*16/5 with a typo; 0xF1 is 241.)
	e := ESV{FType: 0x01, X0: 0xF1, X1: 0x10}
	v, ok := e.Decode()
	if !ok {
		t.Fatal("formula type 0x01 not found")
	}
	want := 241.0 * 16.0 / 5.0
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("decode = %v, want %v", v, want)
	}
}

func TestDecodeEnumAndUnknown(t *testing.T) {
	if _, ok := (ESV{FType: 0x10, X0: 1, X1: 2}).Decode(); ok {
		t.Fatal("bitfield type decoded as formula")
	}
	if _, ok := (ESV{FType: 0xEE}).Decode(); ok {
		t.Fatal("unknown formula type decoded")
	}
}

func TestFormulaTableEncodeDecodeRoundTrip(t *testing.T) {
	// For every non-enum formula type, encoding a physical value and
	// decoding it back must land within the type's quantisation error.
	cases := []struct {
		ftype byte
		scale byte
		y     float64
		tol   float64
	}{
		{0x01, 0xF1, 771.2, 50},  // rpm, coarse quantisation X0/5 per count
		{0x02, 100, 42.0, 0.5},   // %
		{0x03, 50, 12.4, 0.2},    // deg
		{0x04, 10, -3.5, 0.2},    // signed deg
		{0x04, 10, 3.5, 0.2},     // signed deg positive
		{0x05, 10, 88.0, 1.0},    // °C
		{0x05, 10, -20.0, 1.0},   // °C negative
		{0x06, 60, 13.8, 0.1},    // V
		{0x07, 100, 33.0, 1.0},   // km/h — paper's X0=0x64 speed shape
		{0x08, 10, 57.0, 1.0},    //
		{0x0F, 25, 14.2, 0.3},    // ms
		{0x12, 100, 990.0, 4.0},  // mbar (0.04*100 = 4 per count)
		{0x14, 100, -25.0, 1.0},  // signed %
		{0x17, 100, 44.0, 0.5},   // duty
		{0x19, 182, 7.3, 1.0},    // g/s
		{0x22, 80, -12.0, 1.0},   // kW signed
		{0x24, 0, -0.2, 0.01},    // torque assistance (sign in X1, range ±0.255)
		{0x24, 0, 0.2, 0.01},     // torque assistance positive
		{0x25, 0, 0.95, 0.01},    // lateral acceleration
		{0x25, 0, -0.95, 0.01},   // lateral acceleration negative
		{0x31, 40, 55.0, 1.5},    // g/s
		{0x35, 200, 0.04, 0.005}, // quadratic
	}
	for _, c := range cases {
		ft, ok := LookupFormula(c.ftype)
		if !ok {
			t.Fatalf("formula type %#02x missing", c.ftype)
		}
		x0, x1 := ft.Encode(c.scale, c.y)
		got := ft.Eval(float64(x0), float64(x1))
		if math.Abs(got-c.y) > c.tol {
			t.Errorf("type %#02x (%s): encode(%v) -> (%d,%d) -> %v, tol %v",
				c.ftype, ft.Name, c.y, x0, x1, got, c.tol)
		}
	}
}

func TestTorqueAssistanceSignSelector(t *testing.T) {
	// Paper §4.3: X1 takes 0x7F (negative) or 0x81 (positive).
	ft, _ := LookupFormula(0x24)
	_, x1 := ft.Encode(0, -2.0)
	if x1 != 0x7F {
		t.Fatalf("negative torque X1 = %#x, want 0x7F", x1)
	}
	_, x1 = ft.Encode(0, 2.0)
	if x1 != 0x81 {
		t.Fatalf("positive torque X1 = %#x, want 0x81", x1)
	}
}

func TestLateralAccelerationX0AlwaysZeroInRange(t *testing.T) {
	// Paper §4.3 "Cause of inconsistency": X0 is 0x00 in all captured
	// frames, so the inferred formula uses only X1.
	ft, _ := LookupFormula(0x25)
	for _, y := range []float64{-1.2, -0.5, 0, 0.5, 1.2} {
		x0, _ := ft.Encode(0, y)
		if x0 != 0 {
			t.Fatalf("lateral acceleration y=%v produced X0=%d, want 0", y, x0)
		}
	}
}

func TestFormulaTypeIDsSorted(t *testing.T) {
	ids := FormulaTypeIDs()
	if len(ids) < 15 {
		t.Fatalf("formula table has %d entries, want >= 15", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not strictly sorted: %v", ids)
		}
	}
}

func TestReadRequestRoundTrip(t *testing.T) {
	req := BuildReadRequest(0x07)
	if !bytes.Equal(req, []byte{0x21, 0x07}) {
		t.Fatalf("request = % X", req)
	}
	id, err := ParseReadRequest(req)
	if err != nil || id != 0x07 {
		t.Fatalf("parsed = %#x, %v", id, err)
	}
	if _, err := ParseReadRequest([]byte{0x22, 0x01}); !errors.Is(err, ErrNotService) {
		t.Fatalf("wrong sid err = %v", err)
	}
	if _, err := ParseReadRequest([]byte{0x21}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short err = %v", err)
	}
}

func TestReadResponseRoundTrip(t *testing.T) {
	esvs := []ESV{
		{FType: 0x01, X0: 0xF1, X1: 0x10},
		{FType: 0x05, X0: 0x0A, X1: 0xBE},
		{FType: 0x10, X0: 0x00, X1: 0x01},
	}
	resp := BuildReadResponse(0x07, esvs)
	if resp[0] != 0x61 || resp[1] != 0x07 || len(resp) != 2+9 {
		t.Fatalf("response = % X", resp)
	}
	id, got, err := ParseReadResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0x07 || len(got) != 3 {
		t.Fatalf("parsed id=%#x esvs=%d", id, len(got))
	}
	for i := range esvs {
		if got[i] != esvs[i] {
			t.Fatalf("esv %d = %+v, want %+v", i, got[i], esvs[i])
		}
	}
}

func TestParseReadResponseErrors(t *testing.T) {
	if _, _, err := ParseReadResponse([]byte{0x61}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := ParseReadResponse([]byte{0x62, 0x07, 1, 2, 3}); !errors.Is(err, ErrNotService) {
		t.Fatalf("wrong sid: %v", err)
	}
	if _, _, err := ParseReadResponse([]byte{0x61, 0x07, 1, 2}); !errors.Is(err, ErrBadESVBlock) {
		t.Fatalf("ragged block: %v", err)
	}
}

func TestIOControlLocalRoundTrip(t *testing.T) {
	// Paper example: "30 15 00 40 00" turns on the light.
	req := IOControlRequest{LocalID: 0x15, ECR: []byte{0x00, 0x40, 0x00}}
	raw := BuildIOControlRequest(req)
	if !bytes.Equal(raw, []byte{0x30, 0x15, 0x00, 0x40, 0x00}) {
		t.Fatalf("raw = % X", raw)
	}
	got, err := ParseIOControlRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.LocalID != 0x15 || got.Common || !bytes.Equal(got.ECR, req.ECR) {
		t.Fatalf("parsed = %+v", got)
	}
	resp := BuildIOControlResponse(got, []byte{0x40})
	if !bytes.Equal(resp, []byte{0x70, 0x15, 0x40}) {
		t.Fatalf("resp = % X", resp)
	}
}

func TestIOControlCommonRoundTrip(t *testing.T) {
	req := IOControlRequest{Common: true, CommonID: 0xB003, ECR: []byte{0x03}}
	raw := BuildIOControlRequest(req)
	if !bytes.Equal(raw, []byte{0x2F, 0xB0, 0x03, 0x03}) {
		t.Fatalf("raw = % X", raw)
	}
	got, err := ParseIOControlRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Common || got.CommonID != 0xB003 || !bytes.Equal(got.ECR, []byte{0x03}) {
		t.Fatalf("parsed = %+v", got)
	}
	resp := BuildIOControlResponse(got, nil)
	if !bytes.Equal(resp, []byte{0x6F, 0xB0, 0x03}) {
		t.Fatalf("resp = % X", resp)
	}
}

func TestParseIOControlErrors(t *testing.T) {
	if _, err := ParseIOControlRequest([]byte{0x30}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, err := ParseIOControlRequest([]byte{0x2F, 0xB0}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short common: %v", err)
	}
	if _, err := ParseIOControlRequest([]byte{0x21, 0x07}); !errors.Is(err, ErrNotService) {
		t.Fatalf("wrong sid: %v", err)
	}
}

func TestNegativeResponse(t *testing.T) {
	raw := BuildNegativeResponse(SIDReadDataByLocalIdentifier, RCRequestOutOfRange)
	sid, rc, ok := ParseNegativeResponse(raw)
	if !ok || sid != 0x21 || rc != RCRequestOutOfRange {
		t.Fatalf("parsed = %#x %#x %v", sid, rc, ok)
	}
}

func TestServerReadAndIOControl(t *testing.T) {
	s := NewServer()
	s.ReadLocal = func(localID byte) ([]ESV, bool) {
		if localID == 0x07 {
			return []ESV{{FType: 0x01, X0: 0xF1, X1: 0x10}}, true
		}
		return nil, false
	}
	s.IOControl = func(req IOControlRequest) ([]byte, byte) {
		if req.LocalID == 0x15 {
			return []byte{req.ECR[1]}, 0
		}
		return nil, RCRequestOutOfRange
	}
	resp := s.Handle([]byte{0x21, 0x07})
	if !bytes.Equal(resp, []byte{0x61, 0x07, 0x01, 0xF1, 0x10}) {
		t.Fatalf("read resp = % X", resp)
	}
	resp = s.Handle([]byte{0x21, 0x99})
	if _, rc, ok := ParseNegativeResponse(resp); !ok || rc != RCRequestOutOfRange {
		t.Fatalf("bad local id resp = % X", resp)
	}
	resp = s.Handle([]byte{0x30, 0x15, 0x00, 0x40, 0x00})
	if !bytes.Equal(resp, []byte{0x70, 0x15, 0x40}) {
		t.Fatalf("io resp = % X", resp)
	}
	resp = s.Handle([]byte{0x30, 0x77, 0x00})
	if _, rc, ok := ParseNegativeResponse(resp); !ok || rc != RCRequestOutOfRange {
		t.Fatalf("bad io resp = % X", resp)
	}
}

func TestServerSessionAndMisc(t *testing.T) {
	s := NewServer()
	if s.Session() != 0x81 {
		t.Fatalf("default session = %#x", s.Session())
	}
	resp := s.Handle([]byte{0x10, 0x89})
	if !bytes.Equal(resp, []byte{0x50, 0x89}) {
		t.Fatalf("session resp = % X", resp)
	}
	if s.Session() != 0x89 {
		t.Fatalf("session = %#x", s.Session())
	}
	if !bytes.Equal(s.Handle([]byte{0x3E}), []byte{0x7E}) {
		t.Fatal("tester present failed")
	}
	if !bytes.Equal(s.Handle([]byte{0x11}), []byte{0x51}) {
		t.Fatal("reset failed")
	}
	if s.Session() != 0x81 {
		t.Fatal("reset did not restore default session")
	}
	if _, rc, ok := ParseNegativeResponse(s.Handle([]byte{0x99})); !ok || rc != RCServiceNotSupported {
		t.Fatal("unknown service not rejected")
	}
	if _, rc, ok := ParseNegativeResponse(s.Handle(nil)); !ok || rc != RCIncorrectMessageLength {
		t.Fatal("empty request not rejected")
	}
}

func TestRequestName(t *testing.T) {
	if RequestName([]byte{0x21, 0x07}) != "readDataByLocalIdentifier" {
		t.Fatal("name mismatch")
	}
	if RequestName([]byte{0x30, 0x15}) != "inputOutputControlByLocalIdentifier" {
		t.Fatal("name mismatch")
	}
	if RequestName(nil) != "empty" {
		t.Fatal("nil name mismatch")
	}
}

func TestIdentificationService(t *testing.T) {
	s := NewServer()
	// Without a handler the service is unsupported.
	resp := s.Handle(BuildIdentRequest(IdentOptionECUIdent))
	if _, rc, ok := ParseNegativeResponse(resp); !ok || rc != RCServiceNotSupported {
		t.Fatalf("no-handler resp = % X", resp)
	}
	s.Identification = func(option byte) string {
		if option == IdentOptionECUIdent {
			return "1K0 907 115 AD  Engine  Coding 01234"
		}
		return ""
	}
	resp = s.Handle(BuildIdentRequest(IdentOptionECUIdent))
	opt, ident, err := ParseIdentResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if opt != IdentOptionECUIdent || ident != "1K0 907 115 AD  Engine  Coding 01234" {
		t.Fatalf("ident = %q (opt %#x)", ident, opt)
	}
	// Unsupported option.
	resp = s.Handle(BuildIdentRequest(0x77))
	if _, rc, ok := ParseNegativeResponse(resp); !ok || rc != RCRequestOutOfRange {
		t.Fatalf("bad option resp = % X", resp)
	}
	// Length error.
	resp = s.Handle([]byte{0x1A})
	if _, rc, ok := ParseNegativeResponse(resp); !ok || rc != RCIncorrectMessageLength {
		t.Fatalf("short resp = % X", resp)
	}
	if RequestName([]byte{0x1A, 0x9B}) != "readECUIdentification" {
		t.Fatal("name mismatch")
	}
}

func TestParseIdentResponseErrors(t *testing.T) {
	if _, _, err := ParseIdentResponse([]byte{0x5A}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short: %v", err)
	}
	if _, _, err := ParseIdentResponse([]byte{0x61, 0x9B, 'x'}); !errors.Is(err, ErrNotService) {
		t.Fatalf("wrong sid: %v", err)
	}
}
