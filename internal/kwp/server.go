package kwp

import "fmt"

// Server is a KWP 2000 application-layer dispatcher, the KWP analogue of
// uds.Server. The VAG vehicles in the fleet embed one per ECU behind a VW
// TP 2.0 channel.
type Server struct {
	// ReadLocal resolves a local identifier to its current ESV list.
	// Return ok=false for unsupported identifiers.
	ReadLocal func(localID byte) (esvs []ESV, ok bool)
	// IOControl executes an actuator-control request; return rc != 0 to
	// reject.
	IOControl func(req IOControlRequest) (status []byte, rc byte)
	// Identification returns the ECU identification string for an option
	// ("" = option unsupported).
	Identification func(option byte) string

	session byte
}

// NewServer returns a server in the default session.
func NewServer() *Server { return &Server{session: 0x81} }

// Session reports the active KWP session (0x81 default, 0x89 extended —
// the manufacturer-specific convention the fleet uses).
func (s *Server) Session() byte {
	if s.session == 0 {
		return 0x81
	}
	return s.session
}

// Handle processes one request payload and returns the response payload.
func (s *Server) Handle(req []byte) []byte {
	if len(req) == 0 {
		return BuildNegativeResponse(0, RCIncorrectMessageLength)
	}
	sid := req[0]
	switch sid {
	case SIDStartDiagnosticSession:
		if len(req) != 2 {
			return BuildNegativeResponse(sid, RCIncorrectMessageLength)
		}
		s.session = req[1]
		return []byte{PositiveResponseSID(sid), req[1]}
	case SIDTesterPresent:
		return []byte{PositiveResponseSID(sid)}
	case SIDECUReset:
		s.session = 0x81
		return []byte{PositiveResponseSID(sid)}
	case SIDReadECUIdentification:
		if len(req) != 2 {
			return BuildNegativeResponse(sid, RCIncorrectMessageLength)
		}
		if s.Identification == nil {
			return BuildNegativeResponse(sid, RCServiceNotSupported)
		}
		ident := s.Identification(req[1])
		if ident == "" {
			return BuildNegativeResponse(sid, RCRequestOutOfRange)
		}
		return BuildIdentResponse(req[1], ident)
	case SIDReadDataByLocalIdentifier:
		return s.handleRead(req)
	case SIDIOControlByLocalIdentifier, SIDIOControlByCommonIdentifier:
		return s.handleIOControl(req)
	default:
		return BuildNegativeResponse(sid, RCServiceNotSupported)
	}
}

func (s *Server) handleRead(req []byte) []byte {
	localID, err := ParseReadRequest(req)
	if err != nil {
		return BuildNegativeResponse(SIDReadDataByLocalIdentifier, RCIncorrectMessageLength)
	}
	if s.ReadLocal == nil {
		return BuildNegativeResponse(SIDReadDataByLocalIdentifier, RCConditionsNotCorrect)
	}
	esvs, ok := s.ReadLocal(localID)
	if !ok {
		return BuildNegativeResponse(SIDReadDataByLocalIdentifier, RCRequestOutOfRange)
	}
	return BuildReadResponse(localID, esvs)
}

func (s *Server) handleIOControl(req []byte) []byte {
	parsed, err := ParseIOControlRequest(req)
	if err != nil {
		return BuildNegativeResponse(req[0], RCIncorrectMessageLength)
	}
	if s.IOControl == nil {
		return BuildNegativeResponse(req[0], RCConditionsNotCorrect)
	}
	status, rc := s.IOControl(parsed)
	if rc != 0 {
		return BuildNegativeResponse(req[0], rc)
	}
	return BuildIOControlResponse(parsed, status)
}

// RequestName renders a KWP request mnemonically.
func RequestName(req []byte) string {
	if len(req) == 0 {
		return "empty"
	}
	switch req[0] {
	case SIDStartDiagnosticSession:
		return "startDiagnosticSession"
	case SIDReadECUIdentification:
		return "readECUIdentification"
	case SIDECUReset:
		return "ecuReset"
	case SIDReadDataByLocalIdentifier:
		return "readDataByLocalIdentifier"
	case SIDIOControlByCommonIdentifier:
		return "inputOutputControlByCommonIdentifier"
	case SIDIOControlByLocalIdentifier:
		return "inputOutputControlByLocalIdentifier"
	case SIDTesterPresent:
		return "testerPresent"
	default:
		return fmt.Sprintf("service(%#02x)", req[0])
	}
}
