// Package kwp implements the Keyword Protocol 2000 application layer as the
// paper uses it (§2.3.1, Figs. 2-3): readDataByLocalIdentifier (0x21),
// whose positive responses carry three-byte ECU signal values
// (formula-type byte + X0 + X1), and the two actuator-control services
// inputOutputControlByLocalIdentifier (0x30) and
// inputOutputControlByCommonIdentifier (0x2F).
//
// The formula-type table mirrors the VAG measuring-block convention the
// paper reverse engineers: the first byte of each ESV selects a proprietary
// two-variable formula, X0 usually carries a per-sensor scale constant and
// X1 the live measurement. The real table is distributed in a confidential
// document (the paper's ground truth came from "an experienced vehicle
// researcher"); the table here is a faithful reconstruction of the publicly
// known structure — same shape, same arithmetic families — which is the
// substitution DESIGN.md documents.
package kwp

import (
	"errors"
	"fmt"
	"math"
)

// Service identifiers.
const (
	SIDStartDiagnosticSession      byte = 0x10
	SIDECUReset                    byte = 0x11
	SIDReadECUIdentification       byte = 0x1A
	SIDReadDataByLocalIdentifier   byte = 0x21
	SIDIOControlByCommonIdentifier byte = 0x2F
	SIDIOControlByLocalIdentifier  byte = 0x30
	SIDTesterPresent               byte = 0x3E
)

// PositiveResponseSID converts a request SID to its positive-response SID.
func PositiveResponseSID(sid byte) byte { return sid + 0x40 }

// NegativeResponseSID begins every negative response.
const NegativeResponseSID byte = 0x7F

// Response codes used by the simulated ECUs.
const (
	RCGeneralReject            byte = 0x10
	RCServiceNotSupported      byte = 0x11
	RCSubFunctionNotSupported  byte = 0x12
	RCRequestOutOfRange        byte = 0x31
	RCSecurityAccessDenied     byte = 0x33
	RCConditionsNotCorrect     byte = 0x22
	RCRoutineNotComplete       byte = 0x23
	RCIncorrectMessageLength   byte = 0x13
	RCServiceNotInActiveSessio byte = 0x7F
)

// ESVSize is the wire size of one ECU signal value: formula type, X0, X1.
const ESVSize = 3

// Codec errors.
var (
	ErrTooShort    = errors.New("kwp: message too short")
	ErrNotService  = errors.New("kwp: message is not the expected service")
	ErrBadESVBlock = errors.New("kwp: response ESV block is not a multiple of 3 bytes")
)

// ESV is one wire-format ECU signal value from a 0x61 response.
type ESV struct {
	// FType selects the proprietary formula.
	FType byte
	// X0 and X1 are the two formula inputs.
	X0, X1 byte
}

// Decode applies the formula table to recover the physical value. ok is
// false for enum/no-formula types and unknown formula types.
func (e ESV) Decode() (value float64, ok bool) {
	ft, found := LookupFormula(e.FType)
	if !found || ft.Enum {
		return 0, false
	}
	return ft.Eval(float64(e.X0), float64(e.X1)), true
}

// FormulaType describes one entry of the proprietary formula table.
type FormulaType struct {
	ID   byte
	Name string
	// Unit is the engineering unit of the decoded value.
	Unit string
	// Expr is the human-readable formula over X0/X1, e.g. "X0*X1/5".
	Expr string
	// Eval computes the physical value from the two wire bytes.
	Eval func(x0, x1 float64) float64
	// Encode produces wire bytes (x0, x1) representing physical value y,
	// given the sensor's scale constant. Encoding is what the simulated
	// ECU does; decoding is what the diagnostic tool does; recovering Eval
	// from observed (x0, x1, y) triples is what DP-Reverser does.
	Encode func(scale byte, y float64) (x0, x1 byte)
	// Enum marks types whose bytes are states/bitfields with no formula
	// (Table 6's "#ESV (Enum)" column).
	Enum bool
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(math.Round(v))
}

// formulaTable is the reconstructed VAG-style formula-type registry.
var formulaTable = map[byte]FormulaType{
	0x01: {
		ID: 0x01, Name: "engine speed", Unit: "rpm", Expr: "X0*X1/5",
		Eval:   func(x0, x1 float64) float64 { return x0 * x1 / 5 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y * 5 / float64(scale)) },
	},
	0x02: {
		ID: 0x02, Name: "ratio", Unit: "%", Expr: "X0*0.002*X1",
		Eval:   func(x0, x1 float64) float64 { return x0 * 0.002 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.002 * float64(scale))) },
	},
	0x03: {
		ID: 0x03, Name: "angle", Unit: "deg", Expr: "0.002*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.002 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.002 * float64(scale))) },
	},
	0x04: {
		ID: 0x04, Name: "signed angle", Unit: "deg", Expr: "0.01*X0*(X1-127)",
		Eval:   func(x0, x1 float64) float64 { return 0.01 * x0 * (x1 - 127) },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y/(0.01*float64(scale)) + 127) },
	},
	0x05: {
		ID: 0x05, Name: "temperature", Unit: "°C", Expr: "0.1*X0*(X1-100)",
		Eval:   func(x0, x1 float64) float64 { return 0.1 * x0 * (x1 - 100) },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y/(0.1*float64(scale)) + 100) },
	},
	0x06: {
		ID: 0x06, Name: "voltage", Unit: "V", Expr: "0.001*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.001 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.001 * float64(scale))) },
	},
	0x07: {
		ID: 0x07, Name: "vehicle speed", Unit: "km/h", Expr: "0.01*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.01 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.01 * float64(scale))) },
	},
	0x08: {
		ID: 0x08, Name: "scaled value", Unit: "", Expr: "0.1*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.1 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.1 * float64(scale))) },
	},
	0x0F: {
		ID: 0x0F, Name: "duration", Unit: "ms", Expr: "0.01*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.01 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.01 * float64(scale))) },
	},
	0x12: {
		ID: 0x12, Name: "pressure", Unit: "mbar", Expr: "0.04*X0*X1",
		Eval:   func(x0, x1 float64) float64 { return 0.04 * x0 * x1 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y / (0.04 * float64(scale))) },
	},
	0x14: {
		ID: 0x14, Name: "signed ratio", Unit: "%", Expr: "X0*(X1-128)/128",
		Eval:   func(x0, x1 float64) float64 { return x0 * (x1 - 128) / 128 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y*128/float64(scale) + 128) },
	},
	0x17: {
		ID: 0x17, Name: "duty cycle", Unit: "%", Expr: "X0*X1/256",
		Eval:   func(x0, x1 float64) float64 { return x0 * x1 / 256 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y * 256 / float64(scale)) },
	},
	0x19: {
		ID: 0x19, Name: "gas concentration", Unit: "g/s", Expr: "X0*X1/182",
		Eval:   func(x0, x1 float64) float64 { return x0 * x1 / 182 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y * 182 / float64(scale)) },
	},
	0x22: {
		ID: 0x22, Name: "power", Unit: "kW", Expr: "0.01*X0*(X1-128)",
		Eval:   func(x0, x1 float64) float64 { return 0.01 * x0 * (x1 - 128) },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y/(0.01*float64(scale)) + 128) },
	},
	0x24: {
		// The paper's "Torque Assistance" shape: the measurement rides in
		// X0 and X1 selects sign around 128 (observed values 0x7F/0x81).
		ID: 0x24, Name: "torque assistance", Unit: "N·m", Expr: "0.001*X0*(X1-128)",
		Eval: func(x0, x1 float64) float64 { return 0.001 * x0 * (x1 - 128) },
		Encode: func(_ byte, y float64) (byte, byte) {
			x1 := byte(0x81)
			if y < 0 {
				x1 = 0x7F
				y = -y
			}
			return clampByte(y * 1000), x1
		},
	},
	0x25: {
		// The paper's "lateral acceleration" shape: the inferred formula
		// collapses to one variable because X0 is 0x00 in all frames.
		ID: 0x25, Name: "lateral acceleration", Unit: "m/s²", Expr: "0.01*(X0*256+X1-128)",
		Eval: func(x0, x1 float64) float64 { return 0.01 * (x0*256 + x1 - 128) },
		Encode: func(_ byte, y float64) (byte, byte) {
			raw := y/0.01 + 128
			if raw < 0 {
				raw = 0
			}
			if raw > 255 {
				// X0 stays zero for the lateral-acceleration range the
				// fleet drives; larger values spill into X0.
				return clampByte(raw / 256), clampByte(raw - 256*math.Floor(raw/256))
			}
			return 0, clampByte(raw)
		},
	},
	0x31: {
		ID: 0x31, Name: "mass flow", Unit: "g/s", Expr: "X0*X1/40",
		Eval:   func(x0, x1 float64) float64 { return x0 * x1 / 40 },
		Encode: func(scale byte, y float64) (byte, byte) { return scale, clampByte(y * 40 / float64(scale)) },
	},
	0x35: {
		ID: 0x35, Name: "quadratic pressure", Unit: "bar", Expr: "0.001*X0*X1*X1/255",
		Eval: func(x0, x1 float64) float64 { return 0.001 * x0 * x1 * x1 / 255 },
		Encode: func(scale byte, y float64) (byte, byte) {
			return scale, clampByte(math.Sqrt(y * 255 / (0.001 * float64(scale))))
		},
	},
	0x10: {
		ID: 0x10, Name: "bit field", Unit: "", Expr: "", Enum: true,
		Eval:   func(x0, x1 float64) float64 { return 0 },
		Encode: func(_ byte, y float64) (byte, byte) { return 0, byte(int(y) & 0xFF) },
	},
	0x11: {
		ID: 0x11, Name: "state", Unit: "", Expr: "", Enum: true,
		Eval:   func(x0, x1 float64) float64 { return 0 },
		Encode: func(_ byte, y float64) (byte, byte) { return 0, byte(int(y) & 0xFF) },
	},
}

// LookupFormula returns the formula-type entry for id.
func LookupFormula(id byte) (FormulaType, bool) {
	ft, ok := formulaTable[id]
	return ft, ok
}

// FormulaTypeIDs lists the registered formula-type IDs (sorted).
func FormulaTypeIDs() []byte {
	ids := make([]byte, 0, len(formulaTable))
	for id := range formulaTable {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// --- readDataByLocalIdentifier (0x21) ---

// BuildReadRequest builds "21 {localID}".
func BuildReadRequest(localID byte) []byte {
	return []byte{SIDReadDataByLocalIdentifier, localID}
}

// ParseReadRequest decodes a 0x21 request.
func ParseReadRequest(msg []byte) (localID byte, err error) {
	if len(msg) < 2 {
		return 0, ErrTooShort
	}
	if msg[0] != SIDReadDataByLocalIdentifier {
		return 0, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	return msg[1], nil
}

// BuildReadResponse builds "61 {localID} {ESV}*" (Fig. 3).
func BuildReadResponse(localID byte, esvs []ESV) []byte {
	out := make([]byte, 2, 2+ESVSize*len(esvs))
	out[0] = PositiveResponseSID(SIDReadDataByLocalIdentifier)
	out[1] = localID
	for _, e := range esvs {
		out = append(out, e.FType, e.X0, e.X1)
	}
	return out
}

// ParseReadResponse decodes a 0x61 response into its local identifier and
// ESV list.
func ParseReadResponse(msg []byte) (localID byte, esvs []ESV, err error) {
	if len(msg) < 2 {
		return 0, nil, ErrTooShort
	}
	if msg[0] != PositiveResponseSID(SIDReadDataByLocalIdentifier) {
		return 0, nil, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	body := msg[2:]
	if len(body)%ESVSize != 0 {
		return 0, nil, ErrBadESVBlock
	}
	esvs = make([]ESV, 0, len(body)/ESVSize)
	for i := 0; i < len(body); i += ESVSize {
		esvs = append(esvs, ESV{FType: body[i], X0: body[i+1], X1: body[i+2]})
	}
	return msg[1], esvs, nil
}

// --- inputOutputControlByLocalIdentifier (0x30) ---

// IOControlRequest is a decoded 0x30 (or 0x2F with a 2-byte common
// identifier) actuator-control request. The ECR — the paper's "ECU Control
// Record" — is the control option bytes.
type IOControlRequest struct {
	// LocalID identifies the actuator (one byte for 0x30; for the common-
	// identifier service the two bytes are carried in CommonID).
	LocalID byte
	// CommonID is set for the 0x2F service.
	CommonID uint16
	// Common selects between the two services.
	Common bool
	// ECR is the control option record.
	ECR []byte
}

// BuildIOControlRequest encodes the request (Fig. 2).
func BuildIOControlRequest(req IOControlRequest) []byte {
	if req.Common {
		out := []byte{SIDIOControlByCommonIdentifier, byte(req.CommonID >> 8), byte(req.CommonID)}
		return append(out, req.ECR...)
	}
	out := []byte{SIDIOControlByLocalIdentifier, req.LocalID}
	return append(out, req.ECR...)
}

// ParseIOControlRequest decodes either IO-control service.
func ParseIOControlRequest(msg []byte) (IOControlRequest, error) {
	if len(msg) < 2 {
		return IOControlRequest{}, ErrTooShort
	}
	switch msg[0] {
	case SIDIOControlByLocalIdentifier:
		req := IOControlRequest{LocalID: msg[1]}
		if len(msg) > 2 {
			req.ECR = append([]byte(nil), msg[2:]...)
		}
		return req, nil
	case SIDIOControlByCommonIdentifier:
		if len(msg) < 3 {
			return IOControlRequest{}, ErrTooShort
		}
		req := IOControlRequest{Common: true, CommonID: uint16(msg[1])<<8 | uint16(msg[2])}
		if len(msg) > 3 {
			req.ECR = append([]byte(nil), msg[3:]...)
		}
		return req, nil
	default:
		return IOControlRequest{}, fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
}

// BuildIOControlResponse builds the positive response echoing the
// identifier and control status.
func BuildIOControlResponse(req IOControlRequest, status []byte) []byte {
	if req.Common {
		out := []byte{PositiveResponseSID(SIDIOControlByCommonIdentifier), byte(req.CommonID >> 8), byte(req.CommonID)}
		return append(out, status...)
	}
	out := []byte{PositiveResponseSID(SIDIOControlByLocalIdentifier), req.LocalID}
	return append(out, status...)
}

// IdentOptionECUIdent is the identification option VCDS-style tools read
// at session start (part number, component name, coding).
const IdentOptionECUIdent byte = 0x9B

// BuildIdentRequest builds "1A {option}".
func BuildIdentRequest(option byte) []byte {
	return []byte{SIDReadECUIdentification, option}
}

// BuildIdentResponse builds "5A {option} {ascii identification}".
func BuildIdentResponse(option byte, ident string) []byte {
	out := []byte{PositiveResponseSID(SIDReadECUIdentification), option}
	return append(out, []byte(ident)...)
}

// ParseIdentResponse decodes a 0x5A response.
func ParseIdentResponse(msg []byte) (option byte, ident string, err error) {
	if len(msg) < 2 {
		return 0, "", ErrTooShort
	}
	if msg[0] != PositiveResponseSID(SIDReadECUIdentification) {
		return 0, "", fmt.Errorf("%w: sid %#02x", ErrNotService, msg[0])
	}
	return msg[1], string(msg[2:]), nil
}

// BuildNegativeResponse builds "7F {sid} {rc}".
func BuildNegativeResponse(sid, rc byte) []byte {
	return []byte{NegativeResponseSID, sid, rc}
}

// ParseNegativeResponse decodes a negative response.
func ParseNegativeResponse(msg []byte) (sid, rc byte, ok bool) {
	if len(msg) != 3 || msg[0] != NegativeResponseSID {
		return 0, 0, false
	}
	return msg[1], msg[2], true
}

// IsPositiveResponse reports whether msg answers sid positively.
func IsPositiveResponse(msg []byte, sid byte) bool {
	return len(msg) > 0 && msg[0] == PositiveResponseSID(sid)
}
