// Package align solves the paper's §9.4 problem: the UI video and the CAN
// capture are stamped by different clocks, and formula inference needs
// (X, Y) pairs matched in time. Two methods are provided, mirroring the
// paper:
//
//   - NTP-style synchronisation is modelled by simply starting the capture
//     with a (near-)zero camera offset — the rig's CameraOffset config;
//   - OBD-II anchoring (method 2): the OBD-II formulas are public, so the
//     responses captured during the alignment phase can be decoded to real
//     values, those values located on the OCR'd screen, and the clock
//     offset read off as the median timestamp difference.
package align

import (
	"errors"
	"math"
	"sort"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/colstore"
	"dpreverser/internal/isotp"
	"dpreverser/internal/obd"
	"dpreverser/internal/ocr"
)

// ErrNoAnchors reports that no OBD response value could be located on any
// UI frame.
var ErrNoAnchors = errors.New("align: no OBD anchor matches between traffic and video")

// obdObservation is one decoded OBD-II response from the capture.
type obdObservation struct {
	pid   byte
	value float64
	at    time.Duration
}

// decodeOBDTraffic extracts decoded OBD mode-01 responses from raw frames
// using only public knowledge (the response CAN ID and J1979 formulas).
// ParseResponse consumes the reassembled view before the next Feed, so no
// message is ever materialised.
func decodeOBDTraffic(frames []can.Frame) []obdObservation {
	var out []obdObservation
	var r isotp.Reassembler
	for _, f := range frames {
		if f.ID != obd.FirstResponseID {
			continue
		}
		out = decodeOBDFrame(&r, f.Payload(), f.Timestamp, out)
	}
	return out
}

// decodeOBDTrafficColumnar is decodeOBDTraffic over a columnar frame
// store, indexing payload views instead of per-frame slices.
func decodeOBDTrafficColumnar(frames *colstore.Frames) []obdObservation {
	var out []obdObservation
	var r isotp.Reassembler
	for i, n := 0, frames.Len(); i < n; i++ {
		if frames.ID(i) != obd.FirstResponseID {
			continue
		}
		out = decodeOBDFrame(&r, frames.Payload(i), frames.At(i), out)
	}
	return out
}

// decodeOBDFrame feeds one response-ID frame through the shared
// reassembler and appends the decoded observation, if any.
func decodeOBDFrame(r *isotp.Reassembler, data []byte, at time.Duration, out []obdObservation) []obdObservation {
	res, err := r.FeedView(data)
	if err != nil || res.Message == nil {
		return out
	}
	pid, v, err := obd.ParseResponse(res.Message)
	if err != nil {
		return out
	}
	return append(out, obdObservation{pid: pid, value: v, at: at})
}

// EstimateOffsetOBD estimates the camera-minus-CAN clock offset from an
// alignment-phase capture. For every decoded OBD response, the matching
// displayed value is searched on OBD UI frames (same PID name, value equal
// after display rounding); each match yields one offset sample, and the
// median is returned — robust to OCR corruption and to values that repeat
// over time.
func EstimateOffsetOBD(frames []can.Frame, uiFrames []ocr.Frame) (time.Duration, error) {
	return estimateOffset(decodeOBDTraffic(frames), uiFrames)
}

// EstimateOffsetOBDColumnar is EstimateOffsetOBD over a columnar frame
// store, so the pipeline aligns without materialising per-frame slices.
func EstimateOffsetOBDColumnar(frames *colstore.Frames, uiFrames []ocr.Frame) (time.Duration, error) {
	return estimateOffset(decodeOBDTrafficColumnar(frames), uiFrames)
}

// estimateOffset matches decoded observations against the OBD UI frames
// and returns the median offset sample.
func estimateOffset(obs []obdObservation, uiFrames []ocr.Frame) (time.Duration, error) {
	if len(obs) == 0 {
		return 0, ErrNoAnchors
	}
	var samples []time.Duration
	for _, o := range obs {
		spec, ok := obd.Lookup(o.pid)
		if !ok {
			continue
		}
		// Find the closest-in-display-time UI frame showing this value.
		bestGap := time.Duration(math.MaxInt64)
		found := false
		var bestOffset time.Duration
		for _, f := range uiFrames {
			if f.ScreenName != "obd-live" {
				continue
			}
			for _, row := range f.Rows {
				if !row.ParseOK || row.Label != spec.Name {
					continue
				}
				if math.Abs(row.Parsed-o.value) > displayTolerance(o.value) {
					continue
				}
				gap := f.At - o.at
				if gap < 0 {
					continue // the screen cannot show a value before it was measured
				}
				if gap < bestGap {
					bestGap, bestOffset, found = gap, f.At-o.at, true
				}
			}
		}
		if found {
			samples = append(samples, bestOffset)
		}
	}
	if len(samples) == 0 {
		return 0, ErrNoAnchors
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2], nil
}

// displayTolerance is the quantisation of the tool's value rendering (two
// decimals below 100, one below 1000, integers above).
func displayTolerance(v float64) float64 {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return 0.51
	case av >= 100:
		return 0.051
	default:
		return 0.0051
	}
}

// ApplyOffset rewrites UI frame timestamps into the CAN clock domain:
// corrected = recorded − offset.
func ApplyOffset(uiFrames []ocr.Frame, offset time.Duration) []ocr.Frame {
	out := make([]ocr.Frame, len(uiFrames))
	for i, f := range uiFrames {
		f.At -= offset
		out[i] = f
	}
	return out
}
