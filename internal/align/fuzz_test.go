package align

import (
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/isotp"
	"dpreverser/internal/obd"
	"dpreverser/internal/ocr"
)

// FuzzPairing throws arbitrary CAN payloads and OCR rows at the
// OBD-anchored clock aligner. The contract: never panic, and either
// return a usable offset or ErrNoAnchors — even when the traffic is
// damaged mid-transfer and the displayed value is garbage.
func FuzzPairing(f *testing.F) {
	// Seed with a genuine anchor pair: a single-frame OBD vehicle-speed
	// response and the matching displayed value…
	speedResp := []byte{0x04, 0x41, 0x0D, 0x2A, 0x00, 0x00, 0x00, 0x00}
	f.Add(speedResp, "Vehicle Speed", 42.0, uint16(250))
	// …plus the same response mangled by the fault injector.
	inj := faults.New(faults.HeavySpec(), 1)
	for _, fr := range inj.Frames([]can.Frame{can.MustFrame(obd.FirstResponseID, speedResp)}) {
		f.Add(fr.Payload(), "Vehicle Speed", 42.0, uint16(250))
	}
	// …and by the adversarial injector: a multi-frame transfer on the
	// anchor ID draws forged flow control, floods and replays, each of
	// whose frame shapes seeds the corpus.
	long := make([]byte, 24)
	copy(long, speedResp)
	chunks, err := isotp.Segment(long, 0x00)
	if err != nil {
		f.Fatal(err)
	}
	var transfer []can.Frame
	for _, d := range chunks {
		transfer = append(transfer, can.MustFrame(obd.FirstResponseID, d))
	}
	adv := faults.New(faults.AdversarialSpec(), 2)
	for _, fr := range adv.Frames(transfer) {
		f.Add(fr.Payload(), "Vehicle Speed", 42.0, uint16(250))
	}
	f.Add([]byte{0x10, 0xFF}, "", -1e18, uint16(0)) // truncated FF, absurd value

	f.Fuzz(func(t *testing.T, data []byte, label string, value float64, gapMS uint16) {
		var frames []can.Frame
		at := time.Duration(0)
		for off := 0; off < len(data); off += 8 {
			end := off + 8
			if end > len(data) {
				end = len(data)
			}
			frames = append(frames, can.Frame{
				ID: obd.FirstResponseID, Timestamp: at,
				Len: end - off, Data: [8]byte{},
			})
			copy(frames[len(frames)-1].Data[:], data[off:end])
			at += 100 * time.Millisecond
		}
		ui := []ocr.Frame{{
			At:         time.Duration(gapMS) * time.Millisecond,
			ScreenName: "obd-live",
			Rows: []ocr.Row{
				{Index: 0, Label: label, Parsed: value, ParseOK: true},
				{Index: 1, Label: label, Value: "not a number"},
			},
		}}
		off, err := EstimateOffsetOBD(frames, ui)
		if err != nil {
			if err != ErrNoAnchors {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		shifted := ApplyOffset(ui, off)
		if len(shifted) != len(ui) {
			t.Fatalf("ApplyOffset changed frame count: %d != %d", len(shifted), len(ui))
		}
	})
}
