package align

import (
	"errors"
	"testing"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/ocr"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

func collectAlignment(t *testing.T, cameraOffset time.Duration) rig.Capture {
	t.Helper()
	p, _ := vehicle.ProfileByCar("Car A")
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tool.Close(); veh.Close() })
	cfg := rig.DefaultConfig()
	cfg.AlignDuration = 10 * time.Second
	cfg.CameraOffset = cameraOffset
	r := rig.New(tool, veh, cfg)
	t.Cleanup(r.Close)
	if err := r.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	return r.Capture()
}

func TestEstimateOffsetOBDRecoversSkew(t *testing.T) {
	for _, skew := range []time.Duration{0, 120 * time.Millisecond, 2 * time.Second} {
		cap := collectAlignment(t, skew)
		got, err := EstimateOffsetOBD(cap.Frames, cap.UIFrames)
		if err != nil {
			t.Fatalf("skew %v: %v", skew, err)
		}
		// The estimate includes the display lag (≤ one poll interval) on
		// top of the configured skew.
		lag := got - skew
		if lag < 0 || lag > 600*time.Millisecond {
			t.Fatalf("skew %v: estimated %v (lag %v outside [0, 600ms])", skew, got, lag)
		}
	}
}

func TestEstimateOffsetOBDNoTraffic(t *testing.T) {
	if _, err := EstimateOffsetOBD(nil, nil); !errors.Is(err, ErrNoAnchors) {
		t.Fatalf("err = %v", err)
	}
}

func TestEstimateOffsetOBDNoUIMatches(t *testing.T) {
	cap := collectAlignment(t, 0)
	if _, err := EstimateOffsetOBD(cap.Frames, nil); !errors.Is(err, ErrNoAnchors) {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyOffset(t *testing.T) {
	in := []ocr.Frame{{At: 5 * time.Second}, {At: 6 * time.Second}}
	out := ApplyOffset(in, 2*time.Second)
	if out[0].At != 3*time.Second || out[1].At != 4*time.Second {
		t.Fatalf("out = %v, %v", out[0].At, out[1].At)
	}
	if in[0].At != 5*time.Second {
		t.Fatal("ApplyOffset mutated its input")
	}
}

func TestDisplayTolerance(t *testing.T) {
	if displayTolerance(50) >= 0.01 {
		t.Fatal("two-decimal tolerance too loose")
	}
	if displayTolerance(500) < 0.05 || displayTolerance(500) > 0.06 {
		t.Fatal("one-decimal tolerance wrong")
	}
	if displayTolerance(5000) < 0.5 {
		t.Fatal("integer tolerance wrong")
	}
}

// The end-to-end property the pipeline relies on: after applying the
// estimated offset, UI timestamps line up with traffic timestamps to
// within one poll interval.
func TestAlignmentEndToEnd(t *testing.T) {
	cap := collectAlignment(t, 1500*time.Millisecond)
	off, err := EstimateOffsetOBD(cap.Frames, cap.UIFrames)
	if err != nil {
		t.Fatal(err)
	}
	corrected := ApplyOffset(cap.UIFrames, off)
	// Every corrected OBD frame timestamp must be within a poll interval
	// of some OBD traffic timestamp.
	for _, f := range corrected {
		if f.ScreenName != "obd-live" || len(f.Rows) == 0 {
			continue
		}
		best := time.Duration(1 << 62)
		for _, cf := range cap.Frames {
			d := f.At - cf.Timestamp
			if d < 0 {
				d = -d
			}
			if d < best {
				best = d
			}
		}
		if best > 600*time.Millisecond {
			t.Fatalf("corrected UI frame at %v is %v from nearest traffic", f.At, best)
		}
	}
}
