// Package vwtp implements VW TP 2.0, Volkswagen's proprietary CAN
// transport/network layer used beneath KWP 2000 on VAG vehicles (paper
// Table 1, §3.2). Volkswagen Magotan, Lavida and Passat in the paper's
// fleet carry KWP 2000 over this transport.
//
// TP 2.0 differs from ISO 15765-2 in the ways the paper highlights:
//
//   - a dynamic channel is negotiated first (broadcast channel setup on ID
//     0x200 + ECU address, then channel-parameter exchange on the
//     negotiated IDs);
//   - data frames carry an opcode nibble + 4-bit sequence number instead of
//     a length-bearing PCI, so "the data transmission frames do not contain
//     the data length fields. We check their opcodes to determine if the
//     current frame is the last frame or not" (§3.2 Step 2);
//   - the receiver paces the sender with explicit ACK frames every
//     block-size packets.
//
// The package provides the frame codec (Classify, Segment, Reassembler)
// used by the reverse-engineering pipeline's screening/assembly steps, and
// a Channel implementation used by the simulated VAG vehicles and tools.
package vwtp

import (
	"errors"
	"fmt"

	"dpreverser/internal/colstore"
)

// Kind classifies a TP 2.0 frame by its first byte, for the screening step.
type Kind int

// Frame kinds. The paper's screening removes Broadcast, ChannelSetup and
// ChannelParams frames and keeps only Data frames.
const (
	KindInvalid Kind = iota
	// KindChannelSetup covers setup requests (0xC0) and responses
	// (0xD0-0xD8) exchanged on the broadcast IDs.
	KindChannelSetup
	// KindChannelParams covers parameter request/response/test (0xA0,
	// 0xA1, 0xA3).
	KindChannelParams
	// KindDisconnect is 0xA8.
	KindDisconnect
	// KindACK covers 0x9x (ready) and 0xBx (not ready).
	KindACK
	// KindData covers the four data opcodes 0x0x-0x3x.
	KindData
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindChannelSetup:
		return "channel-setup"
	case KindChannelParams:
		return "channel-params"
	case KindDisconnect:
		return "disconnect"
	case KindACK:
		return "ack"
	case KindData:
		return "data"
	default:
		return "invalid"
	}
}

// Data-frame opcodes (high nibble). Low nibble is the 4-bit sequence.
const (
	opMoreExpectACK = 0x0 // more packets follow, ACK expected now
	opLastExpectACK = 0x1 // last packet, ACK expected
	opMoreNoACK     = 0x2 // more packets follow, no ACK
	opLastNoACK     = 0x3 // last packet, no ACK
	opACKReady      = 0x9
	opACKNotReady   = 0xB
	opParamsReq     = 0xA0
	opParamsResp    = 0xA1
	opChannelTest   = 0xA3
	opBreak         = 0xA4
	opDisconnect    = 0xA8
	opSetupReq      = 0xC0
	opSetupPosResp  = 0xD0
)

// Errors reported by the codec.
var (
	ErrEmptyFrame     = errors.New("vwtp: empty frame")
	ErrEmptyPayload   = errors.New("vwtp: empty payload")
	ErrBadSequence    = errors.New("vwtp: data frame out of sequence")
	ErrDuplicateFrame = errors.New("vwtp: duplicate data frame")
	ErrNotData        = errors.New("vwtp: frame is not a data frame")
	ErrLengthMismatch = errors.New("vwtp: message length prefix mismatch")
	ErrPayloadTooLong = errors.New("vwtp: payload exceeds 65535 bytes")
)

// Classify reports the kind of a TP 2.0 frame from its data field.
func Classify(data []byte) Kind {
	if len(data) == 0 {
		return KindInvalid
	}
	op := data[0]
	switch {
	case op>>4 <= opLastNoACK:
		return KindData
	case op>>4 == opACKReady || op>>4 == opACKNotReady:
		return KindACK
	case op == opParamsReq || op == opParamsResp || op == opChannelTest || op == opBreak:
		return KindChannelParams
	case op == opDisconnect:
		return KindDisconnect
	case op == opSetupReq || (op >= opSetupPosResp && op <= 0xD8):
		return KindChannelSetup
	default:
		return KindInvalid
	}
}

// IsNotReady reports whether a frame is a receiver-not-ready ACK (0xBx):
// the TP 2.0 wait state, which a hostile peer floods to stall a sender
// indefinitely.
func IsNotReady(data []byte) bool {
	return len(data) > 0 && data[0]>>4 == opACKNotReady
}

// IsLastData reports whether a data frame's opcode marks the final packet
// of a message — the check the paper's assembly step performs.
func IsLastData(data []byte) bool {
	if Classify(data) != KindData {
		return false
	}
	op := data[0] >> 4
	return op == opLastExpectACK || op == opLastNoACK
}

// ExpectsACK reports whether a data frame requests an acknowledgement.
func ExpectsACK(data []byte) bool {
	if Classify(data) != KindData {
		return false
	}
	op := data[0] >> 4
	return op == opMoreExpectACK || op == opLastExpectACK
}

// Seq extracts the 4-bit sequence number of a data or ACK frame.
func Seq(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0] & 0x0F
}

// Segment splits an application payload into TP 2.0 data-frame fields.
// The first frame carries a 2-byte big-endian length prefix, then payload;
// each frame carries up to 7 bytes after the opcode byte. blockSize
// controls how often an ACK is requested: every blockSize-th packet uses an
// expect-ACK opcode (and the final packet always does). seq is the starting
// sequence number (channels carry sequence state across messages).
func Segment(payload []byte, blockSize int, seq byte) ([][]byte, error) {
	if len(payload) == 0 {
		return nil, ErrEmptyPayload
	}
	if len(payload) > 0xFFFF {
		return nil, fmt.Errorf("%w: %d", ErrPayloadTooLong, len(payload))
	}
	if blockSize <= 0 {
		blockSize = 15
	}
	body := make([]byte, 0, 2+len(payload))
	body = append(body, byte(len(payload)>>8), byte(len(payload)))
	body = append(body, payload...)

	var frames [][]byte
	for i := 0; len(body) > 0; i++ {
		n := len(body)
		if n > 7 {
			n = 7
		}
		last := n == len(body)
		var op byte
		switch {
		case last:
			op = opLastExpectACK
		case (i+1)%blockSize == 0:
			op = opMoreExpectACK
		default:
			op = opMoreNoACK
		}
		frame := make([]byte, 1+n)
		frame[0] = op<<4 | (seq & 0x0F)
		copy(frame[1:], body[:n])
		frames = append(frames, frame)
		body = body[n:]
		seq = (seq + 1) & 0x0F
	}
	return frames, nil
}

// EncodeACK builds an ACK frame acknowledging up to (but not including)
// sequence number next.
func EncodeACK(next byte, ready bool) []byte {
	op := byte(opACKReady)
	if !ready {
		op = opACKNotReady
	}
	return []byte{op<<4 | (next & 0x0F)}
}

// Reassembler rebuilds application payloads from a stream of TP 2.0 data
// frames on one channel direction.
type Reassembler struct {
	// buf is assembly scratch leased from the colstore buffer pool. It is
	// nil when no transfer is in flight and no completed message view is
	// pending; abort — the single release point — returns it on every
	// path that discards a transfer, and the first data frame after a
	// completed message releases the old lease before taking a new one.
	buf     []byte
	nextSeq byte
	started bool
	// viewLive marks that buf holds a completed message whose view was
	// handed to the caller; it expires on the next data frame.
	viewLive  bool
	completed int
	errors    int
}

// Result is the outcome of feeding a frame.
type Result struct {
	// Message is the completed payload (length prefix stripped), or nil.
	Message []byte
	// NeedACK reports that the peer requested an acknowledgement; NextSeq
	// is the sequence to acknowledge with.
	NeedACK bool
	// NextSeq is the sequence number expected next (valid when NeedACK).
	NextSeq byte
}

// Feed consumes one frame and returns completed messages as fresh heap
// copies the caller owns. It is FeedView plus a copy; hot consumers (the
// reverser's columnar assembler) use FeedView directly and copy the view
// into their own storage once.
func (r *Reassembler) Feed(data []byte) (Result, error) {
	res, err := r.FeedView(data)
	if res.Message != nil {
		res.Message = append([]byte(nil), res.Message...)
	}
	return res, err
}

// FeedView consumes one frame. Non-data frames are ignored. Sequence
// errors abort the in-progress message.
//
// The returned Result.Message is a zero-copy view into the reassembler's
// pooled scratch, valid only until the next call on this reassembler.
// Callers that retain messages must copy; Feed does exactly that.
//
//dplint:hotpath vwtp-feed
func (r *Reassembler) FeedView(data []byte) (Result, error) {
	if Classify(data) != KindData {
		return Result{}, nil
	}
	seq := Seq(data)
	if r.started && seq != r.nextSeq {
		// A retransmitted copy of the frame just consumed is skipped and
		// the message salvaged — sequence numbers run across messages on a
		// channel, so the previous sequence is always (nextSeq-1) mod 16.
		// Any other gap loses payload bytes: discard and resync on the
		// next frame (the length prefix will catch misassembly).
		if seq == (r.nextSeq+15)&0x0F {
			r.errors++
			return Result{}, fmt.Errorf("%w: sequence %d repeated", ErrDuplicateFrame, seq)
		}
		r.abort()
		r.errors++
		return Result{}, fmt.Errorf("%w: got %d want %d", ErrBadSequence, seq, r.nextSeq)
	}
	if !r.started {
		r.started = true
		r.nextSeq = seq
	}
	r.nextSeq = (r.nextSeq + 1) & 0x0F
	if r.viewLive {
		// The previous message's view expires with this call; release its
		// buffer before leasing scratch for the new message.
		colstore.PutBuf(r.buf)
		r.buf = nil
		r.viewLive = false
	}
	if r.buf == nil {
		// First bytes of a message. The first frame leads with the 2-byte
		// big-endian length prefix, so the scratch lease can usually be
		// sized for the whole message up front.
		size := 64
		if len(data) >= 3 {
			size = (int(data[1])<<8 | int(data[2])) + 2
		}
		r.buf = colstore.GetBuf(size)
	}
	r.buf = append(r.buf, data[1:]...)

	res := Result{NeedACK: ExpectsACK(data), NextSeq: r.nextSeq}
	if !IsLastData(data) {
		return res, nil
	}
	// Last frame: validate and strip the 2-byte length prefix.
	if len(r.buf) < 2 {
		r.abort()
		r.errors++
		return Result{}, fmt.Errorf("%w: message shorter than length prefix", ErrLengthMismatch)
	}
	want := int(r.buf[0])<<8 | int(r.buf[1])
	got := len(r.buf) - 2
	if got != want {
		r.abort()
		r.errors++
		return Result{}, fmt.Errorf("%w: prefix %d, assembled %d", ErrLengthMismatch, want, got)
	}
	// Completion keeps the buffer — the view must survive until the next
	// data frame, which releases it — and keeps sequence continuity:
	// TP 2.0 sequence numbers run across messages within a channel.
	r.viewLive = true
	r.completed++
	res.Message = r.buf[2 : 2+want : 2+want]
	return res, nil
}

// Completed reports how many messages have been produced.
func (r *Reassembler) Completed() int { return r.completed }

// Errors reports how many protocol errors were seen.
func (r *Reassembler) Errors() int { return r.errors }

// InFlight reports whether a message is partially assembled. A completed
// message whose view is still pending does not count as in flight.
func (r *Reassembler) InFlight() bool { return len(r.buf) > 0 && !r.viewLive }

// Reset discards any in-flight message and returns the reassembler to
// idle, releasing its pending buffer; completion and error counters are
// preserved. A message view obtained from FeedView is invalidated.
func (r *Reassembler) Reset() { r.abort() }

// abort discards the transfer — releasing the pooled scratch buffer —
// and resets sequence tracking so the next frame resynchronises.
func (r *Reassembler) abort() {
	if r.buf != nil {
		colstore.PutBuf(r.buf)
		r.buf = nil
	}
	r.started = false
	r.nextSeq = 0
	r.viewLive = false
}

// Reason maps a reassembly error to a short stable label for metrics
// (the telemetry transport-error counter's "reason" dimension). Unknown
// errors report "other"; nil reports "".
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadSequence):
		return "bad-sequence"
	case errors.Is(err, ErrDuplicateFrame):
		return "duplicate-frame"
	case errors.Is(err, ErrLengthMismatch):
		return "length-mismatch"
	case errors.Is(err, ErrNotData):
		return "not-data"
	case errors.Is(err, ErrEmptyFrame):
		return "empty-frame"
	case errors.Is(err, ErrEmptyPayload):
		return "empty-payload"
	case errors.Is(err, ErrPayloadTooLong):
		return "payload-too-long"
	default:
		return "other"
	}
}
