package vwtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want Kind
	}{
		{"empty", nil, KindInvalid},
		{"data more no-ack", []byte{0x21, 1, 2}, KindData},
		{"data more ack", []byte{0x05, 1}, KindData},
		{"data last ack", []byte{0x1F, 1}, KindData},
		{"data last no-ack", []byte{0x3A, 1}, KindData},
		{"ack ready", []byte{0x92}, KindACK},
		{"ack not ready", []byte{0xB2}, KindACK},
		{"params req", []byte{0xA0, 3, 0x8F, 0xFF, 0x32, 0xFF}, KindChannelParams},
		{"params resp", []byte{0xA1, 3, 0x8F, 0xFF, 0x32, 0xFF}, KindChannelParams},
		{"channel test", []byte{0xA3}, KindChannelParams},
		{"break", []byte{0xA4}, KindChannelParams},
		{"disconnect", []byte{0xA8}, KindDisconnect},
		{"setup req", []byte{0xC0}, KindChannelSetup},
		{"setup resp", []byte{0xD0}, KindChannelSetup},
		{"setup neg resp", []byte{0xD8}, KindChannelSetup},
		{"garbage", []byte{0xE5}, KindInvalid},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.data); got != c.want {
				t.Fatalf("Classify(% X) = %v, want %v", c.data, got, c.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindACK: "ack", KindChannelSetup: "channel-setup",
		KindChannelParams: "channel-params", KindDisconnect: "disconnect",
		KindInvalid: "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsLastDataAndExpectsACK(t *testing.T) {
	cases := []struct {
		data    []byte
		last    bool
		wantACK bool
	}{
		{[]byte{0x01, 0xFF}, false, true},
		{[]byte{0x11, 0xFF}, true, true},
		{[]byte{0x21, 0xFF}, false, false},
		{[]byte{0x31, 0xFF}, true, false},
		{[]byte{0x91}, false, false}, // ACK frame is not data
	}
	for _, c := range cases {
		if got := IsLastData(c.data); got != c.last {
			t.Errorf("IsLastData(% X) = %v, want %v", c.data, got, c.last)
		}
		if got := ExpectsACK(c.data); got != c.wantACK {
			t.Errorf("ExpectsACK(% X) = %v, want %v", c.data, got, c.wantACK)
		}
	}
}

func TestSegmentShortMessage(t *testing.T) {
	// 3-byte payload + 2-byte length prefix = 5 bytes -> one frame.
	frames, err := Segment([]byte{0x21, 0x07, 0x99}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	want := []byte{0x10, 0x00, 0x03, 0x21, 0x07, 0x99}
	if !bytes.Equal(frames[0], want) {
		t.Fatalf("frame = % X, want % X", frames[0], want)
	}
}

func TestSegmentMultiFrameOpcodesAndBlockSize(t *testing.T) {
	payload := make([]byte, 30) // +2 prefix = 32 bytes -> 5 frames of ≤7
	frames, err := Segment(payload, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	// blockSize 2: frames 2 and 4 (1-indexed) expect ACK; last always does.
	wantOps := []byte{0x2, 0x0, 0x2, 0x0, 0x1}
	for i, f := range frames {
		if f[0]>>4 != wantOps[i] {
			t.Fatalf("frame %d opcode = %#x, want %#x", i, f[0]>>4, wantOps[i])
		}
		if f[0]&0x0F != byte(i) {
			t.Fatalf("frame %d seq = %d, want %d", i, f[0]&0x0F, i)
		}
	}
}

func TestSegmentSequenceStartAndWrap(t *testing.T) {
	payload := make([]byte, 40)
	frames, err := Segment(payload, 100, 14)
	if err != nil {
		t.Fatal(err)
	}
	if Seq(frames[0]) != 14 || Seq(frames[1]) != 15 || Seq(frames[2]) != 0 {
		t.Fatalf("sequence numbers = %d,%d,%d; want 14,15,0",
			Seq(frames[0]), Seq(frames[1]), Seq(frames[2]))
	}
}

func TestSegmentErrors(t *testing.T) {
	if _, err := Segment(nil, 3, 0); !errors.Is(err, ErrEmptyPayload) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Segment(make([]byte, 0x10000), 3, 0); !errors.Is(err, ErrPayloadTooLong) {
		t.Fatalf("too long: %v", err)
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	payload := []byte{0x61, 0x07, 0x01, 0xF1, 0x10, 0x05, 0x64, 0x32}
	frames, _ := Segment(payload, 3, 5)
	var r Reassembler
	var got []byte
	for _, f := range frames {
		res, err := r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % X, want % X", got, payload)
	}
	if r.Completed() != 1 {
		t.Fatalf("Completed = %d", r.Completed())
	}
}

func TestReassembleNeedACK(t *testing.T) {
	payload := make([]byte, 20)
	frames, _ := Segment(payload, 2, 0)
	var r Reassembler
	ackCount := 0
	for _, f := range frames {
		res, err := r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.NeedACK {
			ackCount++
			if res.NextSeq != (Seq(f)+1)&0x0F {
				t.Fatalf("NextSeq = %d after frame seq %d", res.NextSeq, Seq(f))
			}
		}
	}
	if ackCount < 2 {
		t.Fatalf("NeedACK raised %d times, want >= 2", ackCount)
	}
}

func TestReassembleBadSequence(t *testing.T) {
	var r Reassembler
	if _, err := r.Feed([]byte{0x20, 0x00, 0x14, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Feed([]byte{0x25, 6, 7, 8}) // seq 5, want 1
	if !errors.Is(err, ErrBadSequence) {
		t.Fatalf("err = %v, want ErrBadSequence", err)
	}
	if r.Errors() != 1 {
		t.Fatalf("Errors = %d", r.Errors())
	}
}

func TestReassembleLengthMismatch(t *testing.T) {
	var r Reassembler
	// Last frame but prefix says 10 bytes while only 3 present.
	_, err := r.Feed([]byte{0x10, 0x00, 0x0A, 1, 2, 3})
	if !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestReassembleSequenceContinuityAcrossMessages(t *testing.T) {
	var r Reassembler
	first, _ := Segment([]byte{1, 2, 3}, 3, 0)
	if _, err := r.Feed(first[0]); err != nil {
		t.Fatal(err)
	}
	// Next message continues the sequence (seq 1), as a real channel does.
	second, _ := Segment([]byte{4, 5, 6}, 3, 1)
	res, err := r.Feed(second[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Message, []byte{4, 5, 6}) {
		t.Fatalf("second message = % X", res.Message)
	}
}

func TestReassembleIgnoresNonData(t *testing.T) {
	var r Reassembler
	for _, frame := range [][]byte{{0x91}, {0xA0, 1, 2, 3, 4, 5}, {0xA8}, {0xC0}} {
		res, err := r.Feed(frame)
		if err != nil || res.Message != nil || res.NeedACK {
			t.Fatalf("non-data frame % X not ignored: %+v, %v", frame, res, err)
		}
	}
}

// Property: Segment → Reassemble is the identity for all payloads and block
// sizes.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []byte, blockSize uint8, seq uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 2000 {
			raw = raw[:2000]
		}
		frames, err := Segment(raw, int(blockSize%10), seq)
		if err != nil {
			return false
		}
		var r Reassembler
		for _, fr := range frames {
			res, err := r.Feed(fr)
			if err != nil {
				return false
			}
			if res.Message != nil {
				return bytes.Equal(res.Message, raw)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
