package vwtp

import (
	"bytes"
	"testing"

	"dpreverser/internal/telemetry"
)

func fill(n int, v byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = v
	}
	return p
}

func message(t *testing.T, payload []byte, seq byte) [][]byte {
	t.Helper()
	frames, err := Segment(payload, 15, seq)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestReassemblerResync is the TP 2.0 fault-model table: damaged data-frame
// sequences on one channel direction must salvage what they can (duplicate
// retransmissions), discard what they cannot (lost frames, caught by the
// sequence check or the length prefix), and keep the channel usable for the
// next message.
func TestReassemblerResync(t *testing.T) {
	payloadA := fill(20, 0x0A)
	payloadB := fill(20, 0x0B)

	cases := []struct {
		name    string
		frames  func(t *testing.T) [][]byte
		want    [][]byte
		reasons map[string]int
	}{
		{
			name: "duplicate data frame is skipped and the message salvaged",
			frames: func(t *testing.T) [][]byte {
				fs := message(t, payloadA, 0) // 22 body bytes: seqs 0..3
				return [][]byte{fs[0], fs[1], fs[1], fs[2], fs[3]}
			},
			want:    [][]byte{payloadA},
			reasons: map[string]int{"duplicate-frame": 1},
		},
		{
			name: "retransmitted final frame after completion is skipped; sequence continuity survives",
			frames: func(t *testing.T) [][]byte {
				a := message(t, payloadA, 0) // seqs 0..3
				b := message(t, payloadB, 4) // continues at 4
				fs := append(append([][]byte{}, a...), a[len(a)-1])
				return append(fs, b...)
			},
			want:    [][]byte{payloadA, payloadB},
			reasons: map[string]int{"duplicate-frame": 1},
		},
		{
			name: "lost frame aborts via sequence check; length prefix rejects the stray tail; next message resyncs",
			frames: func(t *testing.T) [][]byte {
				a := message(t, payloadA, 0)
				b := message(t, payloadB, 4)
				// a[1] is lost: a[2] is out of sequence (abort); a[3] is
				// taken for a fresh message start whose length prefix
				// cannot match; b then assembles from scratch.
				return append([][]byte{a[0], a[2], a[3]}, b...)
			},
			want:    [][]byte{payloadB},
			reasons: map[string]int{"bad-sequence": 1, "length-mismatch": 1},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			errs := reg.CounterVec(telemetry.MetricTransportErrors, "", "transport", "reason")
			var r Reassembler
			var got [][]byte
			for _, f := range c.frames(t) {
				res, err := r.Feed(f)
				if err != nil {
					errs.With("vwtp", Reason(err)).Inc()
				}
				if res.Message != nil {
					got = append(got, res.Message)
				}
			}
			if len(got) != len(c.want) {
				t.Fatalf("assembled %d messages, want %d", len(got), len(c.want))
			}
			for i := range got {
				if !bytes.Equal(got[i], c.want[i]) {
					t.Fatalf("message %d = % X, want % X", i, got[i], c.want[i])
				}
			}
			for reason, n := range c.reasons {
				if v := errs.With("vwtp", reason).Value(); v != float64(n) {
					t.Errorf("reason %q counter = %v, want %d", reason, v, n)
				}
			}
		})
	}
}

// TestReassemblerDuplicateDoesNotAbort pins the salvage contract on the
// channel state: a duplicate is reported but assembly continues.
func TestReassemblerDuplicateDoesNotAbort(t *testing.T) {
	fs := message(t, fill(20, 0x5A), 0)
	var r Reassembler
	for _, f := range fs[:2] {
		if _, err := r.Feed(f); err != nil {
			t.Fatal(err)
		}
	}
	_, err := r.Feed(fs[1])
	if Reason(err) != "duplicate-frame" {
		t.Fatalf("err = %v, want duplicate-frame", err)
	}
	if !r.InFlight() {
		t.Fatal("duplicate aborted the message")
	}
	var msg []byte
	for _, f := range fs[2:] {
		res, err := r.Feed(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil {
			msg = res.Message
		}
	}
	if !bytes.Equal(msg, fill(20, 0x5A)) {
		t.Fatalf("message = % X", msg)
	}
}
