package vwtp

import (
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
)

// FuzzAssemble feeds arbitrary 8-byte frame sequences to the VW TP 2.0
// reassembler: no input may panic it, every error must carry a stable
// Reason, and no message may exceed its 16-bit length prefix.
func FuzzAssemble(f *testing.F) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	clean, err := Segment(payload, 0, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(flatten(clean))
	for seed := int64(1); seed <= 3; seed++ {
		var frames []can.Frame
		for _, d := range clean {
			frames = append(frames, can.MustFrame(0x740, d))
		}
		inj := faults.New(faults.HeavySpec(), seed)
		var mangled [][]byte
		for _, fr := range inj.Frames(frames) {
			mangled = append(mangled, fr.Payload())
		}
		f.Add(flatten(mangled))
	}
	f.Add([]byte{0x10})       // length prefix cut off
	f.Add([]byte{0xA0, 0x0F}) // channel-setup opcode

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Reassembler
		for off := 0; off < len(data); off += 8 {
			end := off + 8
			if end > len(data) {
				end = len(data)
			}
			res, err := r.Feed(data[off:end])
			if err != nil {
				if Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				continue
			}
			if len(res.Message) > 0xFFFF {
				t.Fatalf("message longer than the length prefix allows: %d", len(res.Message))
			}
		}
	})
}

func flatten(frames [][]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, fr...)
	}
	return out
}
