package vwtp_test

import (
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/vwtp"
)

// FuzzAssemble feeds arbitrary 8-byte frame sequences to the VW TP 2.0
// reassembler: no input may panic it, every error must carry a stable
// Reason, and no message may exceed its 16-bit length prefix.
func FuzzAssemble(f *testing.F) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	clean, err := vwtp.Segment(payload, 0, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(flatten(clean))
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(flatten(mangle(clean, faults.HeavySpec(), seed)))
	}
	// Attack-shaped seeds: the adversarial injector needs to see the VW TP
	// channel setup to learn 0x740 as a data ID, so prepend the broadcast
	// 0xD0 response teaching rx/tx 0x740 before mangling.
	setup := can.MustFrame(vwtp.BroadcastID+0x01, []byte{0x00, 0xD0, 0x40, 0x07, 0x40, 0x07, 0x01})
	for seed := int64(1); seed <= 3; seed++ {
		spec := faults.AdversarialSpec()
		spec.FCStarve = 1
		inj := faults.New(spec, seed)
		var mangled [][]byte
		for _, fr := range inj.Frames(append([]can.Frame{setup}, toFrames(clean)...)) {
			mangled = append(mangled, fr.Payload())
		}
		f.Add(flatten(mangled))
	}
	f.Add([]byte{0x10})       // length prefix cut off
	f.Add([]byte{0xA0, 0x0F}) // channel-setup opcode

	f.Fuzz(func(t *testing.T, data []byte) {
		var r vwtp.Reassembler
		for off := 0; off < len(data); off += 8 {
			end := off + 8
			if end > len(data) {
				end = len(data)
			}
			res, err := r.Feed(data[off:end])
			if err != nil {
				if vwtp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				continue
			}
			if len(res.Message) > 0xFFFF {
				t.Fatalf("message longer than the length prefix allows: %d", len(res.Message))
			}
		}
	})
}

func toFrames(chunks [][]byte) []can.Frame {
	var frames []can.Frame
	for _, d := range chunks {
		frames = append(frames, can.MustFrame(0x740, d))
	}
	return frames
}

func mangle(chunks [][]byte, spec faults.Spec, seed int64) [][]byte {
	inj := faults.New(spec, seed)
	var mangled [][]byte
	for _, fr := range inj.Frames(toFrames(chunks)) {
		mangled = append(mangled, fr.Payload())
	}
	return mangled
}

func flatten(frames [][]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, fr...)
	}
	return out
}
