package vwtp

import (
	"bytes"
	"testing"

	"dpreverser/internal/can"
)

func TestDialWithoutListenerFails(t *testing.T) {
	bus := can.NewBus(nil)
	if _, err := Dial(bus, 0x01); err == nil {
		t.Fatal("Dial with no listener succeeded")
	}
}

func TestDialListenerHandshake(t *testing.T) {
	bus := can.NewBus(nil)
	var serverCh *Channel
	l := NewListener(bus, 0x01, func(ch *Channel) { serverCh = ch })
	defer l.Close()

	toolCh, err := Dial(bus, 0x01)
	if err != nil {
		t.Fatal(err)
	}
	defer toolCh.Close()
	if serverCh == nil {
		t.Fatal("listener did not accept a channel")
	}
	if l.Active() != serverCh {
		t.Fatal("Active() does not return the accepted channel")
	}
}

func TestChannelRequestResponse(t *testing.T) {
	bus := can.NewBus(nil)
	l := NewListener(bus, 0x01, func(ch *Channel) {
		ch.OnMessage = func(p []byte) {
			// KWP echo ECU: positive response mirrors request.
			resp := append([]byte{p[0] + 0x40}, p[1:]...)
			if err := ch.Send(resp); err != nil {
				t.Errorf("server send: %v", err)
			}
		}
	})
	defer l.Close()

	toolCh, err := Dial(bus, 0x01)
	if err != nil {
		t.Fatal(err)
	}
	defer toolCh.Close()

	var got []byte
	toolCh.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := toolCh.Send([]byte{0x21, 0x07}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x61, 0x07}) {
		t.Fatalf("tool got % X, want 61 07", got)
	}
}

func TestChannelLongMessagesWithACKPacing(t *testing.T) {
	bus := can.NewBus(nil)
	long := make([]byte, 120)
	for i := range long {
		long[i] = byte(i * 5)
	}
	l := NewListener(bus, 0x02, func(ch *Channel) {
		ch.OnMessage = func(p []byte) {
			if err := ch.Send(append([]byte{0x61}, p...)); err != nil {
				t.Errorf("server send: %v", err)
			}
		}
	})
	defer l.Close()
	toolCh, err := Dial(bus, 0x02)
	if err != nil {
		t.Fatal(err)
	}
	defer toolCh.Close()

	snif := can.NewSniffer(bus, nil)
	var got []byte
	toolCh.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := toolCh.Send(long); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append([]byte{0x61}, long...)) {
		t.Fatalf("round trip failed: got %d bytes", len(got))
	}
	// ACK frames must appear on the wire (pacing actually happened).
	acks := 0
	for _, f := range snif.Frames() {
		if Classify(f.Payload()) == KindACK {
			acks++
		}
	}
	if acks < 4 {
		t.Fatalf("saw %d ACK frames, want >= 4", acks)
	}
}

func TestChannelSequenceContinuityAcrossMessages(t *testing.T) {
	bus := can.NewBus(nil)
	var serverGot [][]byte
	l := NewListener(bus, 0x03, func(ch *Channel) {
		ch.OnMessage = func(p []byte) { serverGot = append(serverGot, append([]byte(nil), p...)) }
	})
	defer l.Close()
	toolCh, err := Dial(bus, 0x03)
	if err != nil {
		t.Fatal(err)
	}
	defer toolCh.Close()

	for i := 0; i < 20; i++ {
		if err := toolCh.Send([]byte{0x21, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(serverGot) != 20 {
		t.Fatalf("server received %d messages, want 20", len(serverGot))
	}
	for i, m := range serverGot {
		if !bytes.Equal(m, []byte{0x21, byte(i)}) {
			t.Fatalf("message %d = % X", i, m)
		}
	}
}

func TestChannelCloseSendsDisconnect(t *testing.T) {
	bus := can.NewBus(nil)
	ch := NewChannel(bus, ChannelConfig{TxID: 0x740, RxID: 0x300})
	snif := can.NewSniffer(bus, nil)
	ch.Close()
	frames := snif.Frames()
	if len(frames) != 1 || Classify(frames[0].Payload()) != KindDisconnect {
		t.Fatalf("Close emitted %v", frames)
	}
	ch.Close() // idempotent
	if snif.Len() != 1 {
		t.Fatal("second Close emitted another frame")
	}
}

func TestListenerIgnoresForeignAddress(t *testing.T) {
	bus := can.NewBus(nil)
	accepted := false
	l := NewListener(bus, 0x05, func(*Channel) { accepted = true })
	defer l.Close()
	if _, err := Dial(bus, 0x06); err == nil {
		t.Fatal("Dial to absent address succeeded")
	}
	if accepted {
		t.Fatal("listener accepted a setup for a foreign address")
	}
}

func TestRedialReplacesChannel(t *testing.T) {
	bus := can.NewBus(nil)
	accepts := 0
	l := NewListener(bus, 0x07, func(ch *Channel) {
		accepts++
		ch.OnMessage = func(p []byte) {
			if err := ch.Send([]byte{0x7F}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	defer l.Close()

	first, err := Dial(bus, 0x07)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Dial(bus, 0x07)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	_ = first
	if accepts != 2 {
		t.Fatalf("accepts = %d, want 2", accepts)
	}
	var got []byte
	second.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := second.Send([]byte{0x3E}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0x7F}) {
		t.Fatalf("second channel exchange failed: got % X", got)
	}
}

func TestChannelAnswersChannelTest(t *testing.T) {
	bus := can.NewBus(nil)
	ch := NewChannel(bus, ChannelConfig{TxID: 0x740, RxID: 0x300})
	defer ch.Close()
	snif := can.NewSniffer(bus, nil)
	bus.Send(can.MustFrame(0x300, []byte{0xA3}))
	found := false
	for _, f := range snif.Frames() {
		if f.ID == 0x740 && f.Len > 0 && f.Payload()[0] == 0xA1 {
			found = true
		}
	}
	if !found {
		t.Fatal("channel test not answered with params response")
	}
}
