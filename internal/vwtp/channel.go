package vwtp

import (
	"fmt"
	"sync"

	"dpreverser/internal/can"
)

// BroadcastID is the CAN ID channel-setup requests are sent on. Responses
// arrive on BroadcastID + ECU address, as on real VAG buses.
const BroadcastID uint32 = 0x200

// DefaultBlockSize is the ACK pacing negotiated when the peer does not
// override it.
const DefaultBlockSize = 3

// Channel is one direction-pair of an established TP 2.0 connection. Both
// the simulated diagnostic tool and the simulated ECU hold one.
type Channel struct {
	bus  *can.Bus
	txID uint32
	rxID uint32

	// OnMessage receives each completed inbound application payload.
	OnMessage func(payload []byte)

	mu        sync.Mutex
	rx        Reassembler
	txSeq     byte
	txQueue   [][]byte
	waitACK   bool
	blockSize int

	unsubscribe func()
}

// ChannelConfig configures an established channel.
type ChannelConfig struct {
	TxID      uint32
	RxID      uint32
	BlockSize int
}

// NewChannel binds a channel to the bus. Production code reaches this via
// Dial/Listener, which perform the setup handshake; tests may construct
// channels directly.
func NewChannel(bus *can.Bus, cfg ChannelConfig) *Channel {
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	c := &Channel{bus: bus, txID: cfg.TxID, rxID: cfg.RxID, blockSize: bs}
	c.unsubscribe = bus.Subscribe(c.handleFrame)
	return c
}

// Close detaches the channel and emits a disconnect frame.
func (c *Channel) Close() {
	if c.unsubscribe == nil {
		return
	}
	c.transmit([]byte{opDisconnect})
	c.unsubscribe()
	c.unsubscribe = nil
}

// Send transmits one application payload over the channel, pausing at every
// expect-ACK packet until the peer acknowledges.
func (c *Channel) Send(payload []byte) error {
	c.mu.Lock()
	frames, err := Segment(payload, c.blockSize, c.txSeq)
	if err != nil {
		c.mu.Unlock()
		return fmt.Errorf("vwtp channel send: %w", err)
	}
	c.txSeq = (c.txSeq + byte(len(frames))) & 0x0F
	c.txQueue = append(c.txQueue, frames...)
	c.mu.Unlock()
	c.pump()
	return nil
}

// pump transmits queued frames until the next expect-ACK boundary.
func (c *Channel) pump() {
	for {
		c.mu.Lock()
		if c.waitACK || len(c.txQueue) == 0 {
			c.mu.Unlock()
			return
		}
		next := c.txQueue[0]
		c.txQueue = c.txQueue[1:]
		if ExpectsACK(next) {
			c.waitACK = true
		}
		c.mu.Unlock()
		c.transmit(next)
	}
}

func (c *Channel) transmit(data []byte) {
	f, err := can.NewFrame(c.txID, data)
	if err != nil {
		panic(fmt.Sprintf("vwtp: internal frame build failed: %v", err))
	}
	c.bus.Send(f)
}

func (c *Channel) handleFrame(f can.Frame) {
	if f.ID != c.rxID {
		return
	}
	data := f.Payload()
	switch Classify(data) {
	case KindACK:
		c.mu.Lock()
		c.waitACK = false
		c.mu.Unlock()
		c.pump()
	case KindData:
		c.mu.Lock()
		res, err := c.rx.Feed(data)
		c.mu.Unlock()
		if err != nil {
			return
		}
		if res.NeedACK {
			c.transmit(EncodeACK(res.NextSeq, true))
		}
		if res.Message != nil && c.OnMessage != nil {
			c.OnMessage(res.Message)
		}
	case KindChannelParams:
		// Answer parameter requests and keep-alive channel tests with our
		// own parameters (block size first, as the peer reads it).
		if len(data) > 0 && (data[0] == opParamsReq || data[0] == opChannelTest) {
			c.mu.Lock()
			bs := byte(c.blockSize)
			c.mu.Unlock()
			c.transmit(paramsResponse(bs))
		}
	}
}

func paramsRequest(blockSize byte) []byte {
	// opcode, block size, T1, T2, T3, T4 timing parameters. The timing
	// bytes use VAG's scaled encoding; the simulation carries them opaque.
	return []byte{opParamsReq, blockSize, 0x8F, 0xFF, 0x32, 0xFF}
}

func paramsResponse(blockSize byte) []byte {
	return []byte{opParamsResp, blockSize, 0x8F, 0xFF, 0x32, 0xFF}
}

// Dial performs the TP 2.0 channel-setup and parameter handshake with the
// ECU at addr and returns the tool-side channel. The negotiated CAN IDs
// follow the convention the Listener announces.
func Dial(bus *can.Bus, addr byte) (*Channel, error) {
	var (
		granted   bool
		toolTxID  uint32
		toolRxID  uint32
		respID    = BroadcastID + uint32(addr)
		gotParams bool
	)
	unsub := bus.Subscribe(func(f can.Frame) {
		if f.ID != respID || f.Len < 7 {
			return
		}
		d := f.Payload()
		if d[1] != opSetupPosResp {
			return
		}
		// Response layout: [0x00, 0xD0, rxLo, rxHi, txLo, txHi, app].
		// rx/tx are from the ECU's perspective.
		ecuRx := uint32(d[2]) | uint32(d[3])<<8
		ecuTx := uint32(d[4]) | uint32(d[5])<<8
		toolTxID, toolRxID = ecuRx, ecuTx
		granted = true
	})
	setup, err := can.NewFrame(BroadcastID, []byte{addr, opSetupReq, 0x00, 0x10, 0x00, 0x03, 0x01})
	if err != nil {
		return nil, err
	}
	bus.Send(setup)
	unsub()
	if !granted {
		return nil, fmt.Errorf("vwtp: ECU %#x did not answer channel setup", addr)
	}

	ch := NewChannel(bus, ChannelConfig{TxID: toolTxID, RxID: toolRxID})
	unsubParams := bus.Subscribe(func(f can.Frame) {
		if f.ID == toolRxID && f.Len > 0 && f.Payload()[0] == opParamsResp {
			gotParams = true
			if f.Len >= 2 {
				bs := int(f.Payload()[1])
				if bs > 0 {
					ch.mu.Lock()
					ch.blockSize = bs
					ch.mu.Unlock()
				}
			}
		}
	})
	ch.transmit(paramsRequest(DefaultBlockSize))
	unsubParams()
	if !gotParams {
		ch.Close()
		return nil, fmt.Errorf("vwtp: ECU %#x did not answer channel parameters", addr)
	}
	return ch, nil
}

// Listener answers channel-setup requests for one ECU address and hands
// each established channel to the accept callback. The simulated VAG ECUs
// run one Listener each.
type Listener struct {
	bus  *can.Bus
	addr byte
	// accept receives the server-side channel once params are exchanged.
	accept func(*Channel)

	mu          sync.Mutex
	current     *Channel
	nextTxID    uint32
	unsubscribe func()
}

// NewListener starts answering setup requests for addr. Channels are
// created with deterministic negotiated IDs derived from the address.
func NewListener(bus *can.Bus, addr byte, accept func(*Channel)) *Listener {
	l := &Listener{bus: bus, addr: addr, accept: accept, nextTxID: 0x300 + uint32(addr)}
	l.unsubscribe = bus.Subscribe(l.handleFrame)
	return l
}

// Close stops accepting and closes the active channel.
func (l *Listener) Close() {
	if l.unsubscribe != nil {
		l.unsubscribe()
		l.unsubscribe = nil
	}
	l.mu.Lock()
	ch := l.current
	l.current = nil
	l.mu.Unlock()
	if ch != nil {
		ch.Close()
	}
}

func (l *Listener) handleFrame(f can.Frame) {
	if f.ID != BroadcastID || f.Len < 7 {
		return
	}
	d := f.Payload()
	if d[0] != l.addr || d[1] != opSetupReq {
		return
	}
	l.mu.Lock()
	if l.current != nil {
		l.current.Close()
	}
	ecuTx := l.nextTxID
	ecuRx := uint32(0x740) + uint32(l.addr)
	ch := NewChannel(l.bus, ChannelConfig{TxID: ecuTx, RxID: ecuRx})
	l.current = ch
	l.mu.Unlock()

	if l.accept != nil {
		l.accept(ch)
	}
	resp, err := can.NewFrame(BroadcastID+uint32(l.addr), []byte{
		0x00, opSetupPosResp,
		byte(ecuRx), byte(ecuRx >> 8),
		byte(ecuTx), byte(ecuTx >> 8),
		0x01,
	})
	if err != nil {
		panic(fmt.Sprintf("vwtp: listener frame build failed: %v", err))
	}
	l.bus.Send(resp)
}

// Active returns the currently established server-side channel, if any.
func (l *Listener) Active() *Channel {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.current
}
