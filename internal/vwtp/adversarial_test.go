package vwtp_test

import (
	"bytes"
	"testing"

	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/vwtp"
)

// TestAdversarialNotReadyBurstNoStall: a hostile peer's receiver-not-ready
// ACK burst is sender-directed traffic — the reassembler ignores it and
// the attacked message still assembles, as does the one after it.
func TestAdversarialNotReadyBurstNoStall(t *testing.T) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	clean, err := vwtp.Segment(payload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	setup := can.MustFrame(vwtp.BroadcastID+0x01, []byte{0x00, 0xD0, 0x40, 0x07, 0x40, 0x07, 0x01})
	in := append([]can.Frame{setup}, toFrames(clean)...)
	inj := faults.New(faults.Spec{FCStarve: 1}, 9)
	out := inj.Frames(in)
	if inj.Stats().FCStarveBursts != 1 {
		t.Fatalf("stats = %+v, want one not-ready burst", inj.Stats())
	}
	var r vwtp.Reassembler
	var got []byte
	for _, f := range out {
		if f.ID != 0x740 {
			continue // broadcast channel setup never reaches a data reassembler
		}
		res, err := r.Feed(f.Payload())
		if err != nil {
			t.Fatalf("not-ready burst caused a reassembly error: %v", err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("attacked message assembled %d bytes, want %d", len(got), len(payload))
	}
}

// TestResetEvictsPendingState: Reset mid-message returns the reassembler
// to idle so the next message assembles from a clean start.
func TestResetEvictsPendingState(t *testing.T) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks, err := vwtp.Segment(payload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatal("need a multi-frame message")
	}
	var r vwtp.Reassembler
	if _, err := r.Feed(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if !r.InFlight() {
		t.Fatal("first data frame did not open a message")
	}
	r.Reset()
	if r.InFlight() {
		t.Fatal("Reset left a message in flight")
	}
	// Sequence numbering restarts from idle, so the same chunks replay.
	var got []byte
	for _, d := range chunks {
		res, err := r.Feed(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-Reset message assembled %d bytes, want %d", len(got), len(payload))
	}
}
