// Package bmwtp implements the BMW/Mini transport framing the paper calls
// out in §3.2 Step 2: "some vehicles like BMW and Mini Copper do not
// directly adopt the ISO 15765-2 protocol. Instead, the first byte of each
// CAN frame stores the ID of the target ECU. The remaining bytes are the
// payload of the diagnostic message."
//
// Technically this is ISO 15765-2 *extended addressing*: byte 0 carries the
// target ECU address and the normal ISO-TP PCI starts at byte 1, leaving 7
// bytes of frame budget instead of 8. The package reuses the isotp
// reassembly engine on the address-stripped remainder — exactly the
// "ignore the first byte and put the remaining bytes together" recovery
// rule the paper applies.
package bmwtp

import (
	"errors"
	"fmt"

	"dpreverser/internal/isotp"
)

// Limits under extended addressing (one byte of each frame is the address).
const (
	// MaxSingleFrame is the largest payload one extended-addressed single
	// frame carries.
	MaxSingleFrame = 6
	firstFrameData = 5
	consecData     = 6
)

// ErrShortFrame reports a frame too short to carry an address byte plus a
// PCI byte.
var ErrShortFrame = errors.New("bmwtp: frame shorter than address + PCI")

// Address extracts the target-ECU address byte of a frame.
func Address(data []byte) (byte, error) {
	if len(data) < 2 {
		return 0, ErrShortFrame
	}
	return data[0], nil
}

// Classify reports the ISO-TP frame type of the address-stripped remainder.
func Classify(data []byte) isotp.FrameType {
	if len(data) < 2 {
		return isotp.Invalid
	}
	return isotp.Classify(data[1:])
}

// Segment splits payload into extended-addressed frames for the ECU at
// addr. Frames are padded to 8 bytes total with pad.
func Segment(addr byte, payload []byte, pad byte) ([][]byte, error) {
	if len(payload) == 0 {
		return nil, isotp.ErrEmptyPayload
	}
	if len(payload) > isotp.MaxPayload {
		return nil, fmt.Errorf("%w: %d", isotp.ErrPayloadTooLong, len(payload))
	}
	var frames [][]byte
	if len(payload) <= MaxSingleFrame {
		f := make([]byte, 8)
		f[0] = addr
		f[1] = byte(len(payload)) // SF PCI: high nibble 0
		copy(f[2:], payload)
		for i := 2 + len(payload); i < 8; i++ {
			f[i] = pad
		}
		return [][]byte{f}, nil
	}
	ff := make([]byte, 8)
	ff[0] = addr
	ff[1] = 0x10 | byte(len(payload)>>8)
	ff[2] = byte(len(payload))
	copy(ff[3:], payload[:firstFrameData])
	frames = append(frames, ff)

	rest := payload[firstFrameData:]
	seq := byte(1)
	for len(rest) > 0 {
		n := len(rest)
		if n > consecData {
			n = consecData
		}
		cf := make([]byte, 8)
		cf[0] = addr
		cf[1] = 0x20 | seq
		copy(cf[2:], rest[:n])
		for i := 2 + n; i < 8; i++ {
			cf[i] = pad
		}
		frames = append(frames, cf)
		rest = rest[n:]
		seq = (seq + 1) & 0x0F
	}
	return frames, nil
}

// EncodeFlowControl builds an extended-addressed flow-control frame.
func EncodeFlowControl(addr byte, status isotp.FlowStatus, blockSize, stMin byte) []byte {
	inner := isotp.EncodeFlowControl(status, blockSize, stMin)
	out := make([]byte, 8)
	out[0] = addr
	copy(out[1:], inner)
	return out
}

// Reassembler rebuilds payloads from extended-addressed frames for one ECU
// address, delegating PCI handling to the isotp engine.
type Reassembler struct {
	// Addr filters frames; only frames whose address byte matches are
	// consumed. Set FilterByAddr false to accept any address (the
	// reverse-engineering pipeline does this, since it learns addresses
	// from traffic rather than configuring them).
	Addr         byte
	FilterByAddr bool

	inner isotp.Reassembler
}

// Feed consumes one raw CAN frame data field and returns completed
// messages as fresh heap copies the caller owns.
func (r *Reassembler) Feed(data []byte) (isotp.Result, error) {
	res, err := r.FeedView(data)
	if res.Message != nil {
		res.Message = append([]byte(nil), res.Message...)
	}
	return res, err
}

// FeedView consumes one raw CAN frame data field. Completed messages are
// zero-copy views with the isotp.Reassembler.FeedView lifetime: valid
// only until the next call on this reassembler.
//
//dplint:hotpath bmwtp-feed
func (r *Reassembler) FeedView(data []byte) (isotp.Result, error) {
	if len(data) < 2 {
		return isotp.Result{}, ErrShortFrame
	}
	if r.FilterByAddr && data[0] != r.Addr {
		return isotp.Result{}, nil
	}
	// Extended addressing shrinks single frames to 6 bytes, so first
	// frames of length 7 are legal here.
	r.inner.MinMultiFrameLen = MaxSingleFrame + 1
	return r.inner.FeedView(data[1:])
}

// Completed reports the number of assembled messages.
func (r *Reassembler) Completed() int { return r.inner.Completed() }

// Errors reports protocol errors seen.
func (r *Reassembler) Errors() int { return r.inner.Errors() }

// InFlight reports whether a reassembly is in progress.
func (r *Reassembler) InFlight() bool { return r.inner.InFlight() }

// Reset discards any in-flight transfer and returns the reassembler to
// idle; counters are preserved.
func (r *Reassembler) Reset() { r.inner.Reset() }

// Reason maps a reassembly error to a short stable label for metrics.
// BMW extended addressing reuses the ISO-TP state machine under a
// one-byte address prefix, so most reasons delegate to isotp.Reason; the
// address-prefix failure is the one BMW-specific case.
func Reason(err error) string {
	if errors.Is(err, ErrShortFrame) {
		return "short-frame"
	}
	return isotp.Reason(err)
}
