package bmwtp_test

import (
	"bytes"
	"testing"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/faults"
)

// TestAdversarialResync runs each attack class against one extended-
// addressing transfer on 0x612, then feeds a clean probe transfer: the
// reassembler must resynchronise — the probe assembles, every error has
// a stable Reason, and nothing panics on the address-prefixed forgeries.
func TestAdversarialResync(t *testing.T) {
	cases := []struct {
		name string
		spec faults.Spec
	}{
		{"fc-starve", faults.Spec{FCStarve: 1}},
		{"ff-flood", faults.Spec{FFFlood: 1}},
		{"interleave", faults.Spec{Interleave: 1}},
		{"session-replay", faults.Spec{SessionReplay: 1}},
		{"slow-drip", faults.Spec{SlowDrip: 1}},
	}
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	victim, err := bmwtp.Segment(0x12, payload, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]byte, 24)
	for i := range probe {
		probe[i] = byte(0x80 + i)
	}
	probeChunks, err := bmwtp.Segment(0x12, probe, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var in []can.Frame
			for _, d := range victim {
				in = append(in, can.MustFrame(0x612, d))
			}
			out := faults.New(tc.spec, 7).Frames(in)
			var r bmwtp.Reassembler
			for _, f := range out {
				if _, err := r.Feed(f.Payload()); err != nil && bmwtp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
			}
			var got []byte
			for _, d := range probeChunks {
				res, err := r.Feed(d)
				if err != nil && bmwtp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				if res.Message != nil {
					got = append([]byte(nil), res.Message...)
				}
			}
			if !bytes.Equal(got, probe) {
				t.Fatalf("probe transfer after %s assembled %d bytes, want %d", tc.name, len(got), len(probe))
			}
		})
	}
}

// TestResetEvictsPendingState: Reset drops the inner reassembler's
// in-flight transfer so the next one assembles from idle.
func TestResetEvictsPendingState(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := bmwtp.Segment(0x12, payload, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	var r bmwtp.Reassembler
	if _, err := r.Feed(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if !r.InFlight() {
		t.Fatal("first frame did not open a transfer")
	}
	r.Reset()
	if r.InFlight() {
		t.Fatal("Reset left a transfer in flight")
	}
	var got []byte
	for _, d := range chunks {
		res, err := r.Feed(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Message != nil {
			got = res.Message
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-Reset transfer assembled %d bytes, want %d", len(got), len(payload))
	}
}
