package bmwtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
)

func TestAddress(t *testing.T) {
	addr, err := Address([]byte{0x12, 0x03, 0x22, 0xDE, 0x9C})
	if err != nil || addr != 0x12 {
		t.Fatalf("Address = %#x, %v", addr, err)
	}
	if _, err := Address([]byte{0x12}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame err = %v", err)
	}
}

func TestClassify(t *testing.T) {
	if got := Classify([]byte{0x29, 0x03, 0x22, 0xDB, 0xE5}); got != isotp.SingleFrame {
		t.Fatalf("Classify = %v, want SF", got)
	}
	if got := Classify([]byte{0x29, 0x10, 0x14, 1, 2, 3, 4, 5}); got != isotp.FirstFrame {
		t.Fatalf("Classify = %v, want FF", got)
	}
	if got := Classify([]byte{0x29}); got != isotp.Invalid {
		t.Fatalf("Classify(short) = %v, want Invalid", got)
	}
}

func TestSegmentSingleFrame(t *testing.T) {
	frames, err := Segment(0x29, []byte{0x22, 0xDB, 0xE5}, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x29, 0x03, 0x22, 0xDB, 0xE5, 0xFF, 0xFF, 0xFF}
	if len(frames) != 1 || !bytes.Equal(frames[0], want) {
		t.Fatalf("frames = % X, want % X", frames[0], want)
	}
}

func TestSegmentMultiFrameAddressOnEveryFrame(t *testing.T) {
	payload := make([]byte, 25)
	frames, err := Segment(0x60, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	// FF carries 5, CFs carry 6: 25 = 5 + 6 + 6 + 6 + 2 → 5 frames.
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if f[0] != 0x60 {
			t.Fatalf("frame %d address = %#x, want 0x60", i, f[0])
		}
	}
	if frames[0][1] != 0x10 || frames[0][2] != 25 {
		t.Fatalf("FF PCI = % X", frames[0][1:3])
	}
	if frames[1][1] != 0x21 {
		t.Fatalf("first CF PCI = %#x", frames[1][1])
	}
}

func TestReassemblerAddressFilter(t *testing.T) {
	r := Reassembler{Addr: 0x29, FilterByAddr: true}
	// Frame for another ECU must be ignored.
	res, err := r.Feed([]byte{0x60, 0x02, 0x10, 0x03})
	if err != nil || res.Message != nil {
		t.Fatalf("foreign frame consumed: %+v, %v", res, err)
	}
	res, err = r.Feed([]byte{0x29, 0x02, 0x10, 0x03})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Message, []byte{0x10, 0x03}) {
		t.Fatalf("message = % X", res.Message)
	}
}

func TestReassemblerNoFilterAcceptsAll(t *testing.T) {
	var r Reassembler
	res, err := r.Feed([]byte{0xAB, 0x01, 0x3E})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Message, []byte{0x3E}) {
		t.Fatalf("message = % X", res.Message)
	}
}

func TestReassemblerShortFrame(t *testing.T) {
	var r Reassembler
	if _, err := r.Feed([]byte{0x29}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addr byte, raw []byte) bool {
		if len(raw) == 0 || len(raw) > isotp.MaxPayload {
			return true
		}
		frames, err := Segment(addr, raw, 0x55)
		if err != nil {
			return false
		}
		r := Reassembler{Addr: addr, FilterByAddr: true}
		for _, fr := range frames {
			res, err := r.Feed(fr)
			if err != nil {
				return false
			}
			if res.Message != nil {
				return bytes.Equal(res.Message, raw)
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointExchange(t *testing.T) {
	bus := can.NewBus(nil)
	// BMW convention: tool transmits on 0x6F1 stamping the target ECU
	// address; ECU answers on 0x600+addr stamping 0xF1 (the tool address).
	tool := NewEndpoint(bus, EndpointConfig{TxID: 0x6F1, RxID: 0x629, TxAddr: 0x29, RxAddr: 0xF1})
	ecu := NewEndpoint(bus, EndpointConfig{TxID: 0x629, RxID: 0x6F1, TxAddr: 0xF1, RxAddr: 0x29})
	defer tool.Close()
	defer ecu.Close()

	long := make([]byte, 60)
	for i := range long {
		long[i] = byte(i + 1)
	}
	ecu.OnMessage = func(p []byte) {
		if p[0] == 0x22 {
			if err := ecu.Send(long); err != nil {
				t.Errorf("ecu send: %v", err)
			}
		}
	}
	var got []byte
	tool.OnMessage = func(p []byte) { got = append([]byte(nil), p...) }
	if err := tool.Send([]byte{0x22, 0xDB, 0xE5}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, long) {
		t.Fatalf("tool got %d bytes, want %d", len(got), len(long))
	}
}

func TestEndpointIgnoresForeignAddress(t *testing.T) {
	bus := can.NewBus(nil)
	ecu := NewEndpoint(bus, EndpointConfig{TxID: 0x629, RxID: 0x6F1, TxAddr: 0xF1, RxAddr: 0x29})
	defer ecu.Close()
	called := false
	ecu.OnMessage = func([]byte) { called = true }
	// Same CAN ID but addressed to ECU 0x60.
	bus.Send(can.MustFrame(0x6F1, []byte{0x60, 0x02, 0x10, 0x03, 0, 0, 0, 0}))
	if called {
		t.Fatal("endpoint consumed a frame addressed to another ECU")
	}
}
