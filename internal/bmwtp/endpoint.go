package bmwtp

import (
	"fmt"
	"sync"

	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
)

// Endpoint binds extended-addressed ISO-TP to a CAN bus for one
// (canID, ecuAddr) pair in each direction. BMW and Mini vehicles in the
// simulated fleet use one endpoint per ECU.
type Endpoint struct {
	bus    *can.Bus
	txID   uint32
	rxID   uint32
	txAddr byte // address byte we stamp on outbound frames
	rxAddr byte // address byte we accept on inbound frames
	pad    byte

	// OnMessage receives each reassembled inbound payload.
	OnMessage func(payload []byte)

	mu      sync.Mutex
	rx      Reassembler
	txQueue [][]byte

	unsubscribe func()
}

// EndpointConfig configures a BMW-variant endpoint.
type EndpointConfig struct {
	TxID   uint32
	RxID   uint32
	TxAddr byte
	RxAddr byte
	Pad    byte
}

// NewEndpoint attaches the endpoint to the bus.
func NewEndpoint(bus *can.Bus, cfg EndpointConfig) *Endpoint {
	e := &Endpoint{
		bus: bus, txID: cfg.TxID, rxID: cfg.RxID,
		txAddr: cfg.TxAddr, rxAddr: cfg.RxAddr, pad: cfg.Pad,
	}
	e.rx.Addr = cfg.RxAddr
	e.rx.FilterByAddr = true
	e.unsubscribe = bus.Subscribe(e.handleFrame)
	return e
}

// Close detaches the endpoint.
func (e *Endpoint) Close() {
	if e.unsubscribe != nil {
		e.unsubscribe()
		e.unsubscribe = nil
	}
}

// Send transmits one payload, pausing after the first frame until the
// peer's flow control arrives.
func (e *Endpoint) Send(payload []byte) error {
	frames, err := Segment(e.txAddr, payload, e.pad)
	if err != nil {
		return fmt.Errorf("bmwtp endpoint send: %w", err)
	}
	e.mu.Lock()
	if len(frames) == 1 {
		e.mu.Unlock()
		e.transmit(frames[0])
		return nil
	}
	e.txQueue = append([][]byte{}, frames[1:]...)
	e.mu.Unlock()
	e.transmit(frames[0])
	return nil
}

func (e *Endpoint) transmit(data []byte) {
	f, err := can.NewFrame(e.txID, data)
	if err != nil {
		panic(fmt.Sprintf("bmwtp: internal frame build failed: %v", err))
	}
	e.bus.Send(f)
}

func (e *Endpoint) handleFrame(f can.Frame) {
	if f.ID != e.rxID || f.Len < 2 {
		return
	}
	data := f.Payload()
	if data[0] != e.rxAddr {
		return
	}
	if isotp.Classify(data[1:]) == isotp.FlowControlFrame {
		fc, err := isotp.DecodeFlowControl(data[1:])
		if err != nil || fc.Status != isotp.ContinueToSend {
			return
		}
		for {
			e.mu.Lock()
			if len(e.txQueue) == 0 {
				e.mu.Unlock()
				return
			}
			next := e.txQueue[0]
			e.txQueue = e.txQueue[1:]
			e.mu.Unlock()
			e.transmit(next)
		}
	}
	e.mu.Lock()
	res, err := e.rx.Feed(data)
	e.mu.Unlock()
	if err != nil {
		return
	}
	if res.NeedFlowControl {
		e.transmit(EncodeFlowControl(e.txAddr, isotp.ContinueToSend, 0, 0))
	}
	if res.Message != nil && e.OnMessage != nil {
		e.OnMessage(res.Message)
	}
}
