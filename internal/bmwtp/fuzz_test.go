package bmwtp_test

import (
	"testing"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/faults"
)

// FuzzAssemble feeds arbitrary 8-byte frame sequences to the BMW
// extended-addressing reassembler: no input may panic it and every error
// must carry a stable Reason — including the address-byte-only frames the
// plain ISO-TP reassembler never sees.
func FuzzAssemble(f *testing.F) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	clean, err := bmwtp.Segment(0x12, payload, 0xFF)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(flatten(clean))
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(flatten(mangle(clean, faults.HeavySpec(), seed)))
	}
	// Attack-shaped seeds: forged flow-control bursts, first-frame floods,
	// replays and drips under extended addressing (ID 0x612 is in the BMW
	// range, so the injector address-prefixes its forgeries).
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(flatten(mangle(clean, faults.AdversarialSpec(), seed)))
	}
	f.Add([]byte{0x12})       // address byte only
	f.Add([]byte{0x12, 0x10}) // truncated first frame after address

	f.Fuzz(func(t *testing.T, data []byte) {
		var r bmwtp.Reassembler
		for off := 0; off < len(data); off += 8 {
			end := off + 8
			if end > len(data) {
				end = len(data)
			}
			res, err := r.Feed(data[off:end])
			if err != nil {
				if bmwtp.Reason(err) == "" {
					t.Fatalf("unclassified error: %v", err)
				}
				continue
			}
			if len(res.Message) > 0xFFF {
				t.Fatalf("message longer than a first frame can announce: %d", len(res.Message))
			}
		}
	})
}

func mangle(chunks [][]byte, spec faults.Spec, seed int64) [][]byte {
	inj := faults.New(spec, seed)
	var frames []can.Frame
	for _, d := range chunks {
		frames = append(frames, can.MustFrame(0x612, d))
	}
	var mangled [][]byte
	for _, fr := range inj.Frames(frames) {
		mangled = append(mangled, fr.Payload())
	}
	return mangled
}

func flatten(frames [][]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, fr...)
	}
	return out
}
