package bmwtp

import (
	"bytes"
	"testing"
)

// TestReassemblerResync checks that the extended-addressing wrapper
// inherits the ISO-TP salvage rules: duplicates are skipped without
// discarding the transfer, and a new first frame resynchronizes after
// damage — with the address byte stripped before every check.
func TestReassemblerResync(t *testing.T) {
	payloadA := make([]byte, 17)
	payloadB := make([]byte, 17)
	for i := range payloadA {
		payloadA[i], payloadB[i] = 0x0A, 0x0B
	}
	a, err := Segment(0x12, payloadA, 0xFF) // FF + 2 CFs under extended addressing
	if err != nil {
		t.Fatal(err)
	}
	b, err := Segment(0x12, payloadB, 0xFF)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		frames  [][]byte
		want    [][]byte
		reasons map[string]int
	}{
		{
			name:    "duplicate consecutive frame salvaged",
			frames:  [][]byte{a[0], a[1], a[1], a[2]},
			want:    [][]byte{payloadA},
			reasons: map[string]int{"duplicate-frame": 1},
		},
		{
			name:    "interleaved transfers resync on the new first frame",
			frames:  [][]byte{a[0], a[1], b[0], b[1], b[2], a[2]},
			want:    [][]byte{payloadB},
			reasons: map[string]int{"unexpected-frame": 1},
		},
		{
			name:    "address-only frame is rejected as short",
			frames:  [][]byte{{0x12}, a[0], a[1], a[2]},
			want:    [][]byte{payloadA},
			reasons: map[string]int{"short-frame": 1},
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var r Reassembler
			var got [][]byte
			reasons := map[string]int{}
			for _, f := range c.frames {
				res, err := r.Feed(f)
				if err != nil {
					reasons[Reason(err)]++
				}
				if res.Message != nil {
					got = append(got, res.Message)
				}
			}
			if len(got) != len(c.want) {
				t.Fatalf("assembled %d messages, want %d", len(got), len(c.want))
			}
			for i := range got {
				if !bytes.Equal(got[i], c.want[i]) {
					t.Fatalf("message %d = % X, want % X", i, got[i], c.want[i])
				}
			}
			for reason, n := range c.reasons {
				if reasons[reason] != n {
					t.Errorf("reason %q = %d, want %d (all: %v)", reason, reasons[reason], n, reasons)
				}
			}
		})
	}
}
