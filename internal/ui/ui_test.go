package ui

import (
	"strings"
	"testing"
	"testing/quick"
)

func sample() Screen {
	return Screen{
		Name: "func-menu", Title: "Engine — Functions", Width: 1024, Height: 768,
		Widgets: []Widget{
			{ID: "title", Kind: Label, Text: "Engine — Functions", X: 40, Y: 16, W: 360, H: 40},
			{ID: "func.stream", Kind: Button, Text: "Read Data Stream", X: 40, Y: 60, W: 360, H: 40},
			{ID: "row.val.0", Kind: Value, Text: "771.20", X: 420, Y: 60, W: 160, H: 40},
			{ID: "nav.back", Kind: IconButton, Icon: "back-arrow", X: 954, Y: 718, W: 60, H: 40},
		},
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Label: "label", Button: "button", Value: "value", IconButton: "icon",
		Kind(42): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestWidgetCenterAndContains(t *testing.T) {
	w := Widget{X: 10, Y: 20, W: 100, H: 40}
	cx, cy := w.Center()
	if cx != 60 || cy != 40 {
		t.Fatalf("Center = (%d, %d)", cx, cy)
	}
	if !w.Contains(10, 20) || !w.Contains(109, 59) {
		t.Fatal("corner points not contained")
	}
	if w.Contains(110, 20) || w.Contains(10, 60) || w.Contains(9, 20) {
		t.Fatal("outside points contained")
	}
}

func TestScreenWidgetAt(t *testing.T) {
	s := sample()
	w, ok := s.WidgetAt(220, 80)
	if !ok || w.ID != "func.stream" {
		t.Fatalf("WidgetAt = %+v, %v", w, ok)
	}
	if _, ok := s.WidgetAt(5, 5); ok {
		t.Fatal("empty space hit")
	}
}

func TestScreenFindByTextAndID(t *testing.T) {
	s := sample()
	if w, ok := s.FindByText("Read Data Stream"); !ok || w.ID != "func.stream" {
		t.Fatalf("FindByText = %+v, %v", w, ok)
	}
	if _, ok := s.FindByText("absent"); ok {
		t.Fatal("absent text found")
	}
	if w, ok := s.FindByID("nav.back"); !ok || w.Kind != IconButton {
		t.Fatalf("FindByID = %+v, %v", w, ok)
	}
	if _, ok := s.FindByID("nope"); ok {
		t.Fatal("absent id found")
	}
}

func TestScreenString(t *testing.T) {
	s := sample()
	if got := s.String(); !strings.Contains(got, "func-menu") || !strings.Contains(got, "4 widgets") {
		t.Fatalf("String = %q", got)
	}
}

// Property: a widget always contains its own center (for positive sizes).
func TestCenterContainedProperty(t *testing.T) {
	f := func(x, y int16, w, h uint8) bool {
		if w == 0 || h == 0 {
			return true
		}
		wd := Widget{X: int(x), Y: int(y), W: int(w), H: int(h)}
		cx, cy := wd.Center()
		return wd.Contains(cx, cy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
