// Package ui models the screen surface of a diagnostic tool: widgets with
// text and bounding boxes. It is the shared vocabulary between the tool
// simulator (which renders screens), the camera/OCR models (which observe
// them), and the robotic rig (which clicks them) — the pixel boundary the
// paper's cyber-physical system works across.
package ui

import "fmt"

// Kind classifies widgets.
type Kind int

// Widget kinds.
const (
	// Label is static text (headings, row names).
	Label Kind = iota
	// Button reacts to clicks.
	Button
	// Value is a live-updating numeric/text cell.
	Value
	// IconButton is a clickable widget with no text (recognised by shape
	// similarity, §3.1's Canny-edge path).
	IconButton
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Label:
		return "label"
	case Button:
		return "button"
	case Value:
		return "value"
	case IconButton:
		return "icon"
	default:
		return "unknown"
	}
}

// Widget is one rectangle of screen real estate.
type Widget struct {
	// ID is stable across redraws of the same logical widget.
	ID string
	// Kind classifies behaviour.
	Kind Kind
	// Text is the rendered text (empty for IconButton).
	Text string
	// Icon names the glyph of an IconButton ("back-arrow", "gear"); the
	// rig recognises icons by template similarity.
	Icon string
	// X, Y, W, H is the bounding box in screen pixels.
	X, Y, W, H int
}

// Center reports the click point of the widget.
func (w Widget) Center() (x, y int) { return w.X + w.W/2, w.Y + w.H/2 }

// Contains reports whether the point lies inside the widget.
func (w Widget) Contains(x, y int) bool {
	return x >= w.X && x < w.X+w.W && y >= w.Y && y < w.Y+w.H
}

// Screen is one rendered UI state.
type Screen struct {
	// Name identifies the logical screen ("ecu-list", "live-data").
	Name string
	// Title is the heading text.
	Title string
	// Widgets in z-order (no overlaps in this simulation).
	Widgets []Widget
	// Width, Height are the physical screen dimensions in pixels; smaller
	// screens render smaller glyphs, which degrades OCR (Table 4's AUTEL
	// vs LAUNCH split).
	Width, Height int
}

// WidgetAt hit-tests a click point.
func (s *Screen) WidgetAt(x, y int) (Widget, bool) {
	for _, w := range s.Widgets {
		if w.Contains(x, y) {
			return w, true
		}
	}
	return Widget{}, false
}

// FindByText returns the first widget whose text equals t.
func (s *Screen) FindByText(t string) (Widget, bool) {
	for _, w := range s.Widgets {
		if w.Text == t {
			return w, true
		}
	}
	return Widget{}, false
}

// FindByID returns the widget with the given ID.
func (s *Screen) FindByID(id string) (Widget, bool) {
	for _, w := range s.Widgets {
		if w.ID == id {
			return w, true
		}
	}
	return Widget{}, false
}

// String renders a debug summary.
func (s *Screen) String() string {
	return fmt.Sprintf("screen %q (%d widgets)", s.Name, len(s.Widgets))
}
