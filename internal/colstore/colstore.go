// Package colstore provides the pipeline's columnar capture storage: CAN
// frames and assembled transport messages held column-major (IDs,
// timestamps, payload offsets) with every payload byte packed into one
// contiguous slab. Consumers read zero-copy views into the slab instead
// of materialising a []byte per frame or message, which removes the
// dominant allocation source of the assembly and extraction stages and
// keeps the hot scans cache-dense: a frame costs 8 slab bytes plus 17
// bytes of columns, where the array-of-structs capture layout spent 40.
//
// The package also owns the size-classed buffer pool the transport
// reassemblers (isotp, vwtp, bmwtp) draw their per-stream scratch from;
// see bufpool.go.
package colstore

import (
	"sort"
	"time"
)

// Frames is a columnar CAN frame store: one append-only column per frame
// field, payload bytes packed into a shared slab. Views returned by
// Payload alias the slab and stay valid until Reset.
type Frames struct {
	ids []uint32
	at  []time.Duration
	// off[i] is the payload's start in slab; its end is off[i+1] (the
	// column keeps a trailing sentinel equal to len(slab)). Frames are
	// appended in capture order and payloads are never edited in place,
	// so start offsets alone reconstruct every span.
	off  []uint32
	slab []byte
}

// NewFrames returns a store pre-sized for the given frame count and total
// payload bytes (both may be 0; the store grows as needed).
func NewFrames(frames, payloadBytes int) *Frames {
	f := &Frames{
		ids:  make([]uint32, 0, frames),
		at:   make([]time.Duration, 0, frames),
		off:  make([]uint32, 1, frames+1),
		slab: make([]byte, 0, payloadBytes),
	}
	return f
}

// Append records one frame. The payload bytes are copied into the slab —
// the one copy the columnar pipeline performs per frame.
//
//dplint:hotpath colstore-append
func (f *Frames) Append(id uint32, at time.Duration, payload []byte) {
	f.ids = append(f.ids, id)
	f.at = append(f.at, at)
	f.slab = append(f.slab, payload...)
	f.off = append(f.off, uint32(len(f.slab)))
}

// Len reports the stored frame count.
func (f *Frames) Len() int { return len(f.ids) }

// ID returns frame i's CAN identifier.
func (f *Frames) ID(i int) uint32 { return f.ids[i] }

// At returns frame i's capture timestamp.
func (f *Frames) At(i int) time.Duration { return f.at[i] }

// Payload returns a zero-copy view of frame i's data field, valid until
// Reset.
//
//dplint:hotpath colstore-append
func (f *Frames) Payload(i int) []byte {
	return f.slab[f.off[i]:f.off[i+1]:f.off[i+1]]
}

// PayloadBytes reports the slab size — the total payload bytes stored.
func (f *Frames) PayloadBytes() int { return len(f.slab) }

// Reset truncates the store for reuse, keeping every column's capacity.
// All previously returned views become invalid.
func (f *Frames) Reset() {
	f.ids = f.ids[:0]
	f.at = f.at[:0]
	f.off = f.off[:1]
	f.slab = f.slab[:0]
}

// Messages is a columnar store of assembled transport messages. Unlike
// Frames it records explicit (offset, length) spans per row, so the
// column order can be permuted (SortStableByTime) without moving slab
// bytes.
type Messages struct {
	at        []time.Duration
	ids       []uint32
	addr      []byte
	transport []uint8
	off       []uint32
	plen      []uint32
	slab      []byte
}

// NewMessages returns a store pre-sized for the given message count and
// total payload bytes.
func NewMessages(messages, payloadBytes int) *Messages {
	return &Messages{
		at:        make([]time.Duration, 0, messages),
		ids:       make([]uint32, 0, messages),
		addr:      make([]byte, 0, messages),
		transport: make([]uint8, 0, messages),
		off:       make([]uint32, 0, messages),
		plen:      make([]uint32, 0, messages),
		slab:      make([]byte, 0, payloadBytes),
	}
}

// Append records one assembled message, copying payload into the slab.
// This is the single copy an assembled payload costs: the reassemblers
// hand in views of their pooled scratch and every downstream consumer
// sub-slices the slab.
//
//dplint:hotpath colstore-append
func (m *Messages) Append(at time.Duration, id uint32, addr byte, transport uint8, payload []byte) {
	m.at = append(m.at, at)
	m.ids = append(m.ids, id)
	m.addr = append(m.addr, addr)
	m.transport = append(m.transport, transport)
	m.off = append(m.off, uint32(len(m.slab)))
	m.plen = append(m.plen, uint32(len(payload)))
	m.slab = append(m.slab, payload...)
}

// Len reports the stored message count.
func (m *Messages) Len() int { return len(m.at) }

// At returns message i's completion timestamp.
func (m *Messages) At(i int) time.Duration { return m.at[i] }

// ID returns the CAN ID message i arrived on.
func (m *Messages) ID(i int) uint32 { return m.ids[i] }

// Addr returns message i's extended (BMW) address byte.
func (m *Messages) Addr(i int) byte { return m.addr[i] }

// Transport returns the transport tag the assembler recorded for message
// i (the reverser package's TransportKind).
func (m *Messages) Transport(i int) uint8 { return m.transport[i] }

// Payload returns a zero-copy view of message i's application payload,
// valid until Reset.
//
//dplint:hotpath colstore-append
func (m *Messages) Payload(i int) []byte {
	return m.slab[m.off[i] : m.off[i]+m.plen[i] : m.off[i]+m.plen[i]]
}

// PayloadBytes reports the slab size.
func (m *Messages) PayloadBytes() int { return len(m.slab) }

// Reset truncates the store for reuse, keeping capacity. All previously
// returned views become invalid.
func (m *Messages) Reset() {
	m.at = m.at[:0]
	m.ids = m.ids[:0]
	m.addr = m.addr[:0]
	m.transport = m.transport[:0]
	m.off = m.off[:0]
	m.plen = m.plen[:0]
	m.slab = m.slab[:0]
}

// SortStableByTime orders the rows by timestamp, preserving the append
// order of equal timestamps. Only the columns are permuted; the slab and
// the spans into it stay put, so existing Payload views remain valid.
func (m *Messages) SortStableByTime() {
	sort.Stable(byTime{m})
}

// byTime adapts Messages to sort.Interface with a whole-row Swap.
type byTime struct{ m *Messages }

func (s byTime) Len() int           { return len(s.m.at) }
func (s byTime) Less(i, j int) bool { return s.m.at[i] < s.m.at[j] }
func (s byTime) Swap(i, j int) {
	m := s.m
	m.at[i], m.at[j] = m.at[j], m.at[i]
	m.ids[i], m.ids[j] = m.ids[j], m.ids[i]
	m.addr[i], m.addr[j] = m.addr[j], m.addr[i]
	m.transport[i], m.transport[j] = m.transport[j], m.transport[i]
	m.off[i], m.off[j] = m.off[j], m.off[i]
	m.plen[i], m.plen[j] = m.plen[j], m.plen[i]
}
