package colstore

import "sync"

// This file is the transport layer's scratch allocator: size-classed
// sync.Pool buffers the isotp/vwtp/bmwtp reassemblers use for in-flight
// payload assembly. A capture holds one reassembler per active CAN ID
// (and per BMW address), most of which assemble only occasionally; with
// pooled scratch an idle reassembler pins no buffer at all, and the
// multi-tenant job server's thousands of concurrent reassemblers share a
// handful of warm buffers per size class instead of each growing its own.
//
// Discipline: GetBuf on transfer start, PutBuf exactly once when the
// transfer ends — including every resynchronisation/abort error path.
// The reassemblers keep a completed message in its buffer until the next
// frame arrives (their FeedView contract), so release always happens on
// the *next* state transition, never at completion itself.

// Size classes cover the transports' payload limits: ISO-TP first frames
// announce up to 4095 bytes, VW TP 2.0 length prefixes up to 65535+2.
// Class 64 serves the short diagnostic replies that dominate traffic.
var bufClasses = [...]int{64, 512, 4096, 65540}

var bufPools = func() []*sync.Pool {
	pools := make([]*sync.Pool, len(bufClasses))
	for i, size := range bufClasses {
		size := size
		pools[i] = &sync.Pool{New: func() any {
			b := make([]byte, 0, size)
			return &b
		}}
	}
	return pools
}()

// GetBuf returns an empty buffer with capacity at least n from the
// smallest size class that fits. Requests beyond the largest class are
// heap-allocated and dropped again on PutBuf.
//
//dplint:hotpath colstore-bufpool
func GetBuf(n int) []byte {
	for i, size := range bufClasses {
		if n <= size {
			return (*bufPools[i].Get().(*[]byte))[:0]
		}
	}
	return make([]byte, 0, n)
}

// PutBuf returns a buffer obtained from GetBuf to its size class. The
// caller must not retain any view of b afterwards. Buffers whose
// capacity matches no class (grown by the caller, or oversize) are
// dropped for the GC.
//
//dplint:hotpath colstore-bufpool
func PutBuf(b []byte) {
	c := cap(b)
	for i, size := range bufClasses {
		if c == size {
			b = b[:0]
			bufPools[i].Put(&b)
			return
		}
	}
}
