package colstore

import (
	"bytes"
	"testing"
	"time"
)

func TestFramesRoundTrip(t *testing.T) {
	f := NewFrames(2, 8)
	f.Append(0x7E0, 10*time.Millisecond, []byte{0x02, 0x01, 0x0C})
	f.Append(0x7E8, 12*time.Millisecond, []byte{0x04, 0x41, 0x0C, 0x1A, 0xF8})
	f.Append(0x123, 13*time.Millisecond, nil)
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	if f.ID(1) != 0x7E8 || f.At(1) != 12*time.Millisecond {
		t.Fatalf("columns wrong: id=%#x at=%v", f.ID(1), f.At(1))
	}
	if !bytes.Equal(f.Payload(0), []byte{0x02, 0x01, 0x0C}) {
		t.Fatalf("payload 0 = %x", f.Payload(0))
	}
	if !bytes.Equal(f.Payload(1), []byte{0x04, 0x41, 0x0C, 0x1A, 0xF8}) {
		t.Fatalf("payload 1 = %x", f.Payload(1))
	}
	if len(f.Payload(2)) != 0 {
		t.Fatalf("payload 2 = %x, want empty", f.Payload(2))
	}
	if f.PayloadBytes() != 8 {
		t.Fatalf("slab = %d bytes", f.PayloadBytes())
	}
}

// Payload views are full slices (capacity capped at the span), so an
// append through a view cannot silently overwrite the next payload.
func TestFramesViewsAreCapped(t *testing.T) {
	f := NewFrames(2, 16)
	f.Append(1, 0, []byte{0xAA, 0xBB})
	f.Append(2, 0, []byte{0xCC})
	v := f.Payload(0)
	if cap(v) != 2 {
		t.Fatalf("cap = %d, want 2", cap(v))
	}
	v = append(v, 0xEE) // must reallocate, not clobber payload 1
	if f.Payload(1)[0] != 0xCC {
		t.Fatal("append through view clobbered the slab")
	}
}

func TestFramesReset(t *testing.T) {
	f := NewFrames(0, 0)
	f.Append(1, 0, []byte{1, 2, 3})
	f.Reset()
	if f.Len() != 0 || f.PayloadBytes() != 0 {
		t.Fatalf("reset left len=%d slab=%d", f.Len(), f.PayloadBytes())
	}
	f.Append(2, time.Second, []byte{9})
	if f.ID(0) != 2 || !bytes.Equal(f.Payload(0), []byte{9}) {
		t.Fatal("append after reset broken")
	}
}

func TestMessagesRoundTripAndSort(t *testing.T) {
	m := NewMessages(0, 0)
	m.Append(30*time.Millisecond, 0x7E8, 0, 0, []byte{0x62, 0xF4, 0x0C})
	m.Append(10*time.Millisecond, 0x300, 0x12, 2, []byte{0x61, 0x01})
	m.Append(10*time.Millisecond, 0x301, 0, 1, []byte{0x7F, 0x22})
	pre := m.Payload(0)
	m.SortStableByTime()
	if m.At(0) != 10*time.Millisecond || m.ID(0) != 0x300 || m.Addr(0) != 0x12 || m.Transport(0) != 2 {
		t.Fatalf("sort misplaced columns: at=%v id=%#x addr=%#x tr=%d", m.At(0), m.ID(0), m.Addr(0), m.Transport(0))
	}
	// Stable: the two t=10ms rows keep append order.
	if m.ID(1) != 0x301 {
		t.Fatalf("sort not stable: second row id=%#x", m.ID(1))
	}
	if !bytes.Equal(m.Payload(2), []byte{0x62, 0xF4, 0x0C}) {
		t.Fatalf("payload did not follow its row: %x", m.Payload(2))
	}
	// Sorting permutes columns only; pre-sort views stay valid.
	if !bytes.Equal(pre, []byte{0x62, 0xF4, 0x0C}) {
		t.Fatalf("sort moved slab bytes: %x", pre)
	}
}

func TestMessagesReset(t *testing.T) {
	m := NewMessages(4, 64)
	m.Append(0, 1, 0, 0, []byte{1, 2})
	m.Reset()
	if m.Len() != 0 || m.PayloadBytes() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBufPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 512, 4095, 4096, 65540} {
		b := GetBuf(n)
		if len(b) != 0 || cap(b) < n {
			t.Fatalf("GetBuf(%d): len=%d cap=%d", n, len(b), cap(b))
		}
		PutBuf(b)
	}
	// Oversize requests still work; they just bypass the pool.
	big := GetBuf(1 << 20)
	if cap(big) < 1<<20 {
		t.Fatal("oversize GetBuf too small")
	}
	PutBuf(big)
}

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf(100)
	b = append(b, bytes.Repeat([]byte{0xAB}, 100)...)
	PutBuf(b)
	// The recycled buffer must come back empty.
	b2 := GetBuf(100)
	if len(b2) != 0 || cap(b2) < 100 {
		t.Fatalf("recycled buffer: len=%d cap=%d", len(b2), cap(b2))
	}
}
