package reverser_test

import (
	"context"
	"fmt"

	"dpreverser/internal/gp"
	"dpreverser/internal/reverser"
	"dpreverser/internal/rig"
)

// ExampleOption shows the functional-option style every Reverser knob
// uses: start from New, stack WithX options (later options win), then run
// captures through the immutable Reverser.
func ExampleOption() {
	gpCfg := gp.DefaultConfig()
	gpCfg.Seed = 7

	rv := reverser.New(
		reverser.WithGPConfig(gpCfg),                  // engine budget and capture seed
		reverser.WithParallelism(4),                   // four inference workers
		reverser.WithMinPairs(8),                      // drop under-sampled streams
		reverser.WithFaultPolicy(reverser.BestEffort), // salvage damaged captures
		reverser.WithProgress(func(ev reverser.ProgressEvent) {
			if ev.Kind == reverser.ProgressStreamDone {
				fmt.Printf("reversed %s\n", ev.Stream)
			}
		}),
	)

	// An empty capture runs the whole pipeline and recovers nothing —
	// enough to show the call shape.
	res, err := rv.Reverse(context.Background(), rig.Capture{Car: "Demo"})
	if err != nil {
		fmt.Println("reverse failed:", err)
		return
	}
	fmt.Printf("%d streams reversed from %d messages\n", len(res.ESVs), res.Messages)
	// Output:
	// 0 streams reversed from 0 messages
}
