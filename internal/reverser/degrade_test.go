package reverser

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"dpreverser/internal/gp"
	"dpreverser/internal/telemetry"
)

func TestParseFaultPolicy(t *testing.T) {
	for name, want := range map[string]FaultPolicy{
		"": BestEffort, "best-effort": BestEffort, "strict": Strict,
	} {
		got, err := ParseFaultPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseFaultPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFaultPolicy("yolo"); err == nil {
		t.Error("ParseFaultPolicy accepted an unknown policy")
	}
	if BestEffort.String() != "best-effort" || Strict.String() != "strict" {
		t.Error("FaultPolicy.String mismatch")
	}
}

func TestAssembleContextCancelled(t *testing.T) {
	cap, _ := collect(t, "Car M")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := AssembleContext(ctx, cap.Frames, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Reverse surfaces the same cancellation from its assembly stage.
	if _, err := New(WithConfig(testConfig())).Reverse(ctx, cap); !errors.Is(err, context.Canceled) {
		t.Fatalf("Reverse err = %v, want context.Canceled", err)
	}
}

func TestScreenPairsRejectsInconsistentY(t *testing.T) {
	// Ten observations of X=[16]: nine agree, one lost its decimal point.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 9; i++ {
		xs = append(xs, []float64{16})
		ys = append(ys, 12.5)
	}
	xs = append(xs, []float64{16})
	ys = append(ys, 1250) // "12.50" read as "1250"
	keptX, keptY, rejected := screenPairs(xs, ys)
	if rejected != 1 || len(keptY) != 9 || len(keptX) != 9 {
		t.Fatalf("rejected %d, kept %d", rejected, len(keptY))
	}
	for _, y := range keptY {
		if y != 12.5 {
			t.Fatalf("outlier survived: %v", keptY)
		}
	}
}

func TestScreenPairsKeepsCleanData(t *testing.T) {
	// Distinct X values with distinct Y values: residuals are all zero and
	// nothing is rejected, no matter how wide the Y range is.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		xs = append(xs, []float64{float64(i)}, []float64{float64(i)})
		ys = append(ys, float64(i*400), float64(i*400))
	}
	_, keptY, rejected := screenPairs(xs, ys)
	if rejected != 0 || len(keptY) != len(ys) {
		t.Fatalf("clean data screened: rejected %d", rejected)
	}
}

func TestScreenPairsBacksOffWhenEverythingLooksWrong(t *testing.T) {
	// Two observations per X that never agree: over half the pairs exceed
	// any tolerance, so the screen must keep all of them.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 10; i++ {
		xs = append(xs, []float64{float64(i)}, []float64{float64(i)})
		ys = append(ys, 0, float64(1000+i*1000))
	}
	_, keptY, rejected := screenPairs(xs, ys)
	if rejected != 0 || len(keptY) != len(ys) {
		t.Fatalf("screen did not back off: rejected %d of %d", rejected, len(ys))
	}
}

func TestAssembleDegradedAttribution(t *testing.T) {
	stats := TrafficStats{ErrorsByID: map[uint32]int{0x7E8: 3, 0x700: 1}}
	streams := []StreamData{
		{Key: StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 0xF40D}, Label: "Vehicle speed"},
		{Key: StreamKey{Proto: "UDS", RespID: 0x7E9, DID: 0xF405}, Label: "Clean stream"},
	}
	got := assembleDegraded(stats, streams)
	if len(got) != 2 {
		t.Fatalf("entries = %+v, want 2", got)
	}
	if got[0].Key != streams[0].Key || got[0].Stage != "assemble" || got[0].Reason != "transport-errors" {
		t.Fatalf("attributed entry = %+v", got[0])
	}
	if got[1].Key != (StreamKey{}) || !strings.Contains(got[1].Detail, "700") {
		t.Fatalf("unattributed entry = %+v", got[1])
	}
}

func TestStreamErrorRendering(t *testing.T) {
	se := StreamError{
		Key:    StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 0xF40D},
		Label:  "Vehicle speed",
		Stage:  "infer",
		Reason: "panic",
		Detail: "inference panicked: boom",
	}
	if msg := se.Error(); !strings.Contains(msg, "infer degraded (panic)") {
		t.Fatalf("Error() = %q", msg)
	}
	raw, err := json.Marshal(se)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["id"] != "UDS DID F40D @7E8" || m["stage"] != "infer" || m["reason"] != "panic" {
		t.Fatalf("json = %s", raw)
	}
	// The zero key omits the id field entirely.
	raw, _ = json.Marshal(StreamError{Stage: "assemble", Reason: "transport-errors"})
	if strings.Contains(string(raw), `"id"`) {
		t.Fatalf("zero key rendered an id: %s", raw)
	}
}

// panicObserver makes every GP generation panic, simulating a crash inside
// one stream's inference.
type panicObserver struct{}

func (panicObserver) Generation(gp.GenerationStats) { panic("injected inference crash") }

func TestReverseContainsInferencePanics(t *testing.T) {
	cap, _ := collect(t, "Car M")
	cfg := testConfig()
	cfg.GP.Observer = panicObserver{}
	rv := New(WithConfig(cfg), WithParallelism(4))
	res, err := rv.Reverse(context.Background(), cap)
	if err != nil {
		t.Fatalf("best-effort run failed outright: %v", err)
	}
	var panics int
	for _, se := range res.Degraded {
		if se.Stage == "infer" && se.Reason == "panic" {
			panics++
			if !strings.Contains(se.Detail, "injected inference crash") {
				t.Fatalf("panic detail lost: %+v", se)
			}
		}
	}
	if panics == 0 {
		t.Fatalf("no infer panics reported; degraded = %+v", res.Degraded)
	}
	// Every stream still has its slot; panicked ones are formula-less but
	// keep their identity.
	if len(res.ESVs) != len(res.Streams) {
		t.Fatalf("ESVs %d != streams %d", len(res.ESVs), len(res.Streams))
	}
	for _, e := range res.ESVs {
		if e.Key == (StreamKey{}) {
			t.Fatal("a panicked stream lost its key")
		}
		if e.Formula != nil {
			t.Fatal("a formula survived a panicking observer")
		}
	}
}

func TestReverseStrictPolicyFailsOnDegraded(t *testing.T) {
	cap, _ := collect(t, "Car M")
	cfg := testConfig()
	cfg.GP.Observer = panicObserver{}
	rv := New(WithConfig(cfg), WithFaultPolicy(Strict))
	if rv.Policy() != Strict {
		t.Fatal("policy not applied")
	}
	res, err := rv.Reverse(context.Background(), cap)
	if res != nil {
		t.Fatal("strict run returned a result alongside the error")
	}
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if de.Result == nil || len(de.Result.Degraded) == 0 {
		t.Fatal("DegradedError lost the partial result")
	}
	if !strings.Contains(de.Error(), "degraded") {
		t.Fatalf("Error() = %q", de.Error())
	}
}

func TestDegradedStreamsMetric(t *testing.T) {
	cap, _ := collect(t, "Car M")
	tel := telemetry.New(telemetry.NewManualClock(0))
	// Damage the capture's transport layer: duplicate every 10th frame so
	// the reassemblers see (and salvage) duplicate consecutive frames.
	frames := cap.Frames
	cap.Frames = nil
	for i, f := range frames {
		cap.Frames = append(cap.Frames, f)
		if i%10 == 9 {
			cap.Frames = append(cap.Frames, f)
		}
	}
	rv := New(WithConfig(testConfig()), WithTelemetry(tel))
	res, err := rv.Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("duplicated frames produced no degradation report")
	}
	byStage := map[string]int{}
	for _, se := range res.Degraded {
		byStage[se.Stage]++
	}
	cv := tel.Metrics.CounterVec(telemetry.MetricDegradedStreams, "", "stage")
	for stage, n := range byStage {
		if got := cv.With(stage).Value(); got != float64(n) {
			t.Errorf("metric stage %q = %v, want %d", stage, got, n)
		}
	}
}
