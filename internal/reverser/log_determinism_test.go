package reverser

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dpreverser/internal/telemetry"
)

// logRun executes the full pipeline at the given parallelism under a
// frozen manual clock, capturing every record (Debug included) in a ring
// large enough to never evict.
func logRun(t *testing.T, parallelism int) *telemetry.RingSink {
	t.Helper()
	cap, _ := collect(t, "Car M")
	clock := telemetry.NewManualClock(0)
	ring := telemetry.NewRingSink(4096)
	prov := telemetry.New(clock).WithLogger(
		telemetry.NewLogger(clock, ring).WithLevel(telemetry.LevelDebug))
	rv := New(WithConfig(testConfig()), WithParallelism(parallelism), WithTelemetry(prov))
	if _, err := rv.Reverse(context.Background(), cap); err != nil {
		t.Fatal(err)
	}
	if _, dropped := ring.Snapshot(); dropped != 0 {
		t.Fatalf("ring evicted %d records; grow the test capacity", dropped)
	}
	return ring
}

// TestLogDeterminismAcrossParallelism is the observability contract the
// reverser's logging must keep: the emitted record multiset — and hence
// the canonical DumpJSON bytes — is identical whether the inference pool
// runs one worker or eight. Stream-scoped records bind only
// scheduling-independent attributes, so only arrival order may differ.
func TestLogDeterminismAcrossParallelism(t *testing.T) {
	r1 := logRun(t, 1)
	r8 := logRun(t, 8)

	recs1, _ := r1.Snapshot()
	recs8, _ := r8.Snapshot()
	if len(recs1) == 0 {
		t.Fatal("pipeline emitted no log records")
	}
	if len(recs1) != len(recs8) {
		t.Fatalf("record counts differ: P1=%d P8=%d", len(recs1), len(recs8))
	}

	// Multiset equality, exactly: count rendered records on one side,
	// drain on the other.
	render := func(r telemetry.Record) string {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	counts := make(map[string]int, len(recs1))
	for _, r := range recs1 {
		counts[render(r)]++
	}
	for _, r := range recs8 {
		k := render(r)
		if counts[k] == 0 {
			t.Fatalf("P8 emitted a record P1 did not: %s", k)
		}
		counts[k]--
	}

	// And the canonical dump is byte-identical.
	var d1, d8 bytes.Buffer
	if err := r1.DumpJSON(&d1); err != nil {
		t.Fatal(err)
	}
	if err := r8.DumpJSON(&d8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1.Bytes(), d8.Bytes()) {
		t.Fatalf("canonical dumps differ:\nP1:\n%s\nP8:\n%s", d1.Bytes(), d8.Bytes())
	}

	// The run actually logged the interesting events.
	var streamDones, stageDones, gpGens int
	for _, r := range recs1 {
		switch r.Msg {
		case "stream-done":
			streamDones++
		case "stage-done":
			stageDones++
		case "gp-generation":
			gpGens++
		}
	}
	if streamDones == 0 || stageDones == 0 || gpGens == 0 {
		t.Fatalf("missing event kinds: stream-done=%d stage-done=%d gp-generation=%d",
			streamDones, stageDones, gpGens)
	}
}
