package reverser

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

// dropFrames removes a fraction of frames at deterministic positions —
// a lossy sniffer, the classic capture-hardware failure.
func dropFrames(frames []can.Frame, every int) []can.Frame {
	var out []can.Frame
	for i, f := range frames {
		if every > 0 && i%every == 0 {
			continue
		}
		out = append(out, f)
	}
	return out
}

func TestReverseSurvivesFrameLoss(t *testing.T) {
	cap, veh := collect(t, "Car M")
	lossy := cap
	lossy.Frames = dropFrames(cap.Frames, 23) // ~4.3% loss
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), lossy)
	if err != nil {
		t.Fatal(err)
	}
	// Assembly errors are expected (broken multi-frame transfers), but the
	// pipeline must not collapse: most streams still recover.
	udsStreams := 0
	withInfo := 0
	for _, e := range res.ESVs {
		if e.Key.Proto != "UDS" {
			continue
		}
		udsStreams++
		if e.Enum || e.Formula != nil {
			withInfo++
		}
	}
	want := veh.Profile.NumFormulaESVs + veh.Profile.NumEnumESVs
	if udsStreams < want*3/4 {
		t.Fatalf("recovered %d/%d streams under 4%% frame loss", udsStreams, want)
	}
	if withInfo < udsStreams/2 {
		t.Fatalf("only %d/%d streams carry information", withInfo, udsStreams)
	}
}

func TestReverseSurvivesVideoLoss(t *testing.T) {
	cap, _ := collect(t, "Car M")
	lossy := cap
	// Drop half the video frames (camera hiccups).
	var kept = lossy.UIFrames[:0:0]
	for i, f := range lossy.UIFrames {
		if i%2 == 0 {
			kept = append(kept, f)
		}
	}
	lossy.UIFrames = kept
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), lossy)
	if err != nil {
		t.Fatal(err)
	}
	formulas := 0
	for _, e := range res.ESVs {
		if e.Formula != nil {
			formulas++
		}
	}
	if formulas == 0 {
		t.Fatal("no formulas recovered with half the video missing")
	}
}

func TestReverseHandlesEmptyCapture(t *testing.T) {
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), rig.Capture{Car: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ESVs) != 0 || len(res.ECRs) != 0 || res.Messages != 0 {
		t.Fatalf("empty capture produced %+v", res)
	}
}

func TestReverseHandlesTrafficOnlyCapture(t *testing.T) {
	// Traffic without video: fields extract, but no semantics and no
	// formulas — the paper's limitation (1): both sides are required.
	cap, _ := collect(t, "Car M")
	cap.UIFrames = nil
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.ESVs {
		if e.Formula != nil {
			t.Fatalf("formula recovered without video: %v", e.Key)
		}
	}
	if res.Messages == 0 {
		t.Fatal("assembly should still work without video")
	}
}

func TestReverseWithGarbageTrafficInjected(t *testing.T) {
	cap, _ := collect(t, "Car M")
	rng := rand.New(rand.NewSource(31))
	// Interleave random noise frames (a chatty body-CAN segment leaking
	// through the gateway).
	var noisy []can.Frame
	for _, f := range cap.Frames {
		noisy = append(noisy, f)
		if rng.Intn(3) == 0 {
			data := make([]byte, 8)
			rng.Read(data)
			nf := can.MustFrame(uint32(0x100+rng.Intn(0x80)), data)
			nf.Timestamp = f.Timestamp
			noisy = append(noisy, nf)
		}
	}
	cap.Frames = noisy
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	formulas := 0
	for _, e := range res.ESVs {
		if e.Formula != nil {
			formulas++
		}
	}
	if formulas < 8 {
		t.Fatalf("noise frames broke recovery: %d formulas", formulas)
	}
}

func TestReverseWithHeavyOCRNoise(t *testing.T) {
	// Ten-fold the low-quality error rate: the pipeline must degrade, not
	// produce confidently wrong output — streams either recover a correct
	// formula or none.
	p, _ := vehicle.ProfileByCar("Car M")
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	defer tool.Close()
	defer veh.Close()
	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 15 * time.Second
	cfg.AlignDuration = 6 * time.Second
	cfg.ValueErrProb = 0.15
	r := rig.New(tool, veh, cfg)
	defer r.Close()
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	// Labels survive via majority vote; at least some formulas survive the
	// filtering.
	named := 0
	for _, e := range res.ESVs {
		if e.Label != "" {
			named++
		}
	}
	if named < len(res.ESVs)/2 {
		t.Fatalf("labels lost under heavy noise: %d/%d", named, len(res.ESVs))
	}
}

func TestReverseWithLargeCameraSkew(t *testing.T) {
	p, _ := vehicle.ProfileByCar("Car M")
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	defer tool.Close()
	defer veh.Close()
	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 15 * time.Second
	cfg.AlignDuration = 8 * time.Second
	cfg.CameraOffset = 3 * time.Second // badly unsynchronised camera
	r := rig.New(tool, veh, cfg)
	defer r.Close()
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	// The OBD anchoring must absorb the skew.
	if res.Offset < 3*time.Second || res.Offset > 4*time.Second {
		t.Fatalf("estimated offset %v for a 3s skew", res.Offset)
	}
	formulas := 0
	for _, e := range res.ESVs {
		if e.Formula != nil {
			formulas++
		}
	}
	if formulas < 8 {
		t.Fatalf("3s camera skew broke recovery: %d formulas", formulas)
	}
}
