package reverser

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fingerprint flattens the fields the determinism guarantee covers:
// identity, ordering, formulas, fitness and generation counts.
type fingerprint struct {
	key     string
	formula string
	fitness float64
	gens    int
	pairs   int
}

func fingerprints(res *Result) []fingerprint {
	out := make([]fingerprint, 0, len(res.ESVs))
	for _, e := range res.ESVs {
		out = append(out, fingerprint{
			key: e.Key.String(), formula: e.FormulaString(),
			fitness: e.Fitness, gens: e.Generations, pairs: e.Pairs,
		})
	}
	return out
}

// The headline guarantee of the parallel engine: a capture reverses
// byte-identically at every worker count, because each stream derives its
// own RNG from the capture seed and the stream key.
func TestReverseDeterministicAcrossParallelism(t *testing.T) {
	cap, _ := collect(t, "Car M")
	cfg := testConfig()

	var want []fingerprint
	var wantOffset time.Duration
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rv := New(WithConfig(cfg), WithParallelism(workers))
		res, err := rv.Reverse(context.Background(), cap)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		got := fingerprints(res)
		if i == 0 {
			want, wantOffset = got, res.Offset
			continue
		}
		if res.Offset != wantOffset {
			t.Fatalf("parallelism %d: offset %v, want %v", workers, res.Offset, wantOffset)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d ESVs, want %d", workers, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("parallelism %d: ESV %d = %+v, want %+v", workers, j, got[j], want[j])
			}
		}
	}
}

// Two fresh Reversers with the same configuration must produce identical
// results — the constructor holds no hidden per-instance state.
func TestRepeatedConstructionIsDeterministic(t *testing.T) {
	cap, _ := collect(t, "Car M")
	cfg := testConfig()
	first, err := New(WithConfig(cfg)).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	second, err := New(WithConfig(cfg)).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	firstFP, secondFP := fingerprints(first), fingerprints(second)
	if len(firstFP) != len(secondFP) {
		t.Fatalf("first %d ESVs, second %d", len(firstFP), len(secondFP))
	}
	for i := range firstFP {
		if firstFP[i] != secondFP[i] {
			t.Fatalf("ESV %d: first %+v, second %+v", i, firstFP[i], secondFP[i])
		}
	}
}

func TestReverseCancelledBeforeStart(t *testing.T) {
	cap, _ := collect(t, "Car M")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(WithConfig(testConfig())).Reverse(ctx, cap)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancelling mid-inference must abort promptly with ctx.Err(): the test
// cancels from the progress callback as soon as the first stream starts,
// while plenty of streams are still queued.
func TestReverseCancelledMidInference(t *testing.T) {
	cap, _ := collect(t, "Car M")
	cfg := testConfig()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := 0
	rv := New(WithConfig(cfg), WithParallelism(2), WithProgress(func(ev ProgressEvent) {
		if ev.Kind == ProgressStreamStart {
			started++
			cancel()
		}
	}))
	begin := time.Now()
	_, err := rv.Reverse(ctx, cap)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started == 0 {
		t.Fatal("cancelled before any stream started")
	}
	// "Promptly": the in-flight GP runs may finish their generation, but
	// the pool must not drain the whole queue (a full run takes seconds).
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// Progress events must arrive serialised, bracket every stage, and count
// every stream exactly once.
func TestReverseProgressEvents(t *testing.T) {
	cap, _ := collect(t, "Car M")
	var mu sync.Mutex
	stageStarts := map[string]int{}
	stageDones := map[string]int{}
	streamStarts, streamDones := 0, 0
	var total int
	rv := New(WithConfig(testConfig()), WithParallelism(4), WithProgress(func(ev ProgressEvent) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case ProgressStageStart:
			stageStarts[ev.Stage]++
		case ProgressStageDone:
			stageDones[ev.Stage]++
		case ProgressStreamStart:
			streamStarts++
			total = ev.Total
		case ProgressStreamDone:
			streamDones++
			if ev.Generations < 0 {
				t.Errorf("stream %v: negative generations", ev.Stream)
			}
		}
	}))
	res, err := rv.Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"assemble", "extract", "align", "streams", "infer", "controls"} {
		if stageStarts[stage] != 1 || stageDones[stage] != 1 {
			t.Errorf("stage %q: %d starts, %d dones", stage, stageStarts[stage], stageDones[stage])
		}
	}
	if streamStarts != len(res.Streams) || streamDones != len(res.Streams) {
		t.Errorf("stream events: %d starts, %d dones, want %d each", streamStarts, streamDones, len(res.Streams))
	}
	if total != len(res.Streams) {
		t.Errorf("event Total = %d, want %d", total, len(res.Streams))
	}
}

func TestOptionsApply(t *testing.T) {
	gpCfg := DefaultConfig().GP
	gpCfg.Seed = 99
	rv := New(
		WithGPConfig(gpCfg),
		WithPairMaxGap(250*time.Millisecond),
		WithMinPairs(17),
		WithParallelism(3),
	)
	cfg := rv.Config()
	if cfg.GP.Seed != 99 || cfg.PairMaxGap != 250*time.Millisecond || cfg.MinPairs != 17 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if rv.Parallelism() != 3 {
		t.Fatalf("parallelism = %d", rv.Parallelism())
	}
	if def := New(); def.Parallelism() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default parallelism = %d", def.Parallelism())
	}
}

// Reverse must publish the inference inputs on Result.Streams so the
// experiment harness stops re-walking the capture.
func TestReversePublishesStreams(t *testing.T) {
	cap, _ := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != len(res.ESVs) {
		t.Fatalf("%d streams, %d ESVs", len(res.Streams), len(res.ESVs))
	}
	datasets := 0
	for _, sd := range res.Streams {
		if sd.Dataset != nil {
			datasets++
		}
	}
	if datasets == 0 {
		t.Fatal("no stream carries a dataset")
	}
}

func TestResultMarshalJSON(t *testing.T) {
	cap, _ := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Car      string `json:"car"`
		Messages int    `json:"messages"`
		ESVs     []struct {
			ID      string `json:"id"`
			Kind    string `json:"kind"`
			Formula string `json:"formula"`
			Key     struct {
				Proto string `json:"proto"`
			} `json:"key"`
		} `json:"esvs"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("round trip: %v\n%s", err, raw)
	}
	if decoded.Car != res.Car || decoded.Messages != res.Messages {
		t.Fatalf("header fields: %+v", decoded)
	}
	if len(decoded.ESVs) != len(res.ESVs) {
		t.Fatalf("%d JSON ESVs, want %d", len(decoded.ESVs), len(res.ESVs))
	}
	formulas := 0
	for i, e := range decoded.ESVs {
		if e.ID == "" || e.Key.Proto == "" {
			t.Fatalf("ESV %d missing identity: %+v", i, e)
		}
		if e.Kind == "formula" {
			formulas++
			if e.Formula != res.ESVs[i].FormulaString() {
				t.Fatalf("ESV %d formula = %q, want %q", i, e.Formula, res.ESVs[i].FormulaString())
			}
		}
	}
	if formulas == 0 {
		t.Fatal("no formula ESVs in JSON output")
	}
}
