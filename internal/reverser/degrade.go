package reverser

import (
	"fmt"
	"sort"
)

// FaultPolicy selects how (*Reverser).Reverse treats damaged streams.
type FaultPolicy int

const (
	// BestEffort (the default) contains damage per stream: every damaged
	// stream is reported on Result.Degraded, the rest of the capture is
	// recovered, and Reverse returns a result.
	BestEffort FaultPolicy = iota
	// Strict fails the run when any stream degrades. The returned error is
	// a *DegradedError that still carries the partial result, so callers
	// can inspect what survived.
	Strict
)

// String implements fmt.Stringer.
func (p FaultPolicy) String() string {
	if p == Strict {
		return "strict"
	}
	return "best-effort"
}

// ParseFaultPolicy reads a policy name ("best-effort" or "strict").
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch s {
	case "best-effort", "":
		return BestEffort, nil
	case "strict":
		return Strict, nil
	default:
		return BestEffort, fmt.Errorf("reverser: unknown fault policy %q (want best-effort or strict)", s)
	}
}

// WithFaultPolicy sets the degradation policy: BestEffort (the default)
// contains damage per stream and reports it on Result.Degraded; Strict
// fails the run with a *DegradedError when any stream degrades.
func WithFaultPolicy(p FaultPolicy) Option {
	return func(rv *Reverser) { rv.policy = p }
}

// StreamError describes damage contained to one stream (or, when Key is
// zero, to traffic that produced no recoverable stream). The pipeline
// collects these on Result.Degraded instead of failing the run.
type StreamError struct {
	// Key identifies the damaged stream; the zero key marks capture-level
	// damage with no recovered stream to attach to.
	Key StreamKey
	// Label is the stream's recovered semantic name, when one exists.
	Label string
	// Stage is the pipeline stage that observed the damage:
	// "assemble", "pairing" or "infer".
	Stage string
	// Reason is a stable machine-readable cause: a transport Reason label
	// aggregate ("transport-errors"), "outlier-pairs" or "panic".
	Reason string
	// Detail is the human-readable specifics.
	Detail string
}

// Error implements the error interface, so a StreamError can travel as a
// plain error where callers want one.
func (e StreamError) Error() string {
	id := e.Detail
	if e.Key != (StreamKey{}) {
		id = fmt.Sprintf("%s: %s", e.Key.String(), e.Detail)
	}
	return fmt.Sprintf("reverser: %s degraded (%s): %s", e.Stage, e.Reason, id)
}

// DegradedError is returned by Reverse under the Strict policy when any
// stream degraded. Result carries the partial output.
type DegradedError struct {
	Result *Result
}

// Error implements the error interface.
func (e *DegradedError) Error() string {
	n := 0
	if e.Result != nil {
		n = len(e.Result.Degraded)
	}
	return fmt.Sprintf("reverser: strict fault policy: %d stream(s) degraded", n)
}

// assembleDegraded attributes reassembly failures to the streams that ride
// the damaged CAN IDs. Damage on IDs that yielded no stream at all (request
// IDs, or streams lost entirely) is reported once per ID with a zero key,
// in ID order, so nothing disappears silently.
func assembleDegraded(stats TrafficStats, streams []StreamData) []StreamError {
	if len(stats.ErrorsByID) == 0 {
		return nil
	}
	var out []StreamError
	attributed := map[uint32]bool{}
	for _, sd := range streams {
		n := stats.ErrorsByID[sd.Key.RespID]
		if n == 0 {
			continue
		}
		attributed[sd.Key.RespID] = true
		out = append(out, StreamError{
			Key: sd.Key, Label: sd.Label, Stage: "assemble", Reason: "transport-errors",
			Detail: fmt.Sprintf("%d reassembly errors on ID %03X", n, sd.Key.RespID),
		})
	}
	ids := make([]uint32, 0, len(stats.ErrorsByID))
	for id := range stats.ErrorsByID {
		if !attributed[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, StreamError{
			Stage: "assemble", Reason: "transport-errors",
			Detail: fmt.Sprintf("%d reassembly errors on ID %03X (no recovered stream)", stats.ErrorsByID[id], id),
		})
	}
	return out
}

// pairingDegraded reports streams whose (X, Y) pairing rejected outliers.
func pairingDegraded(streams []StreamData) []StreamError {
	var out []StreamError
	for _, sd := range streams {
		if sd.RejectedPairs == 0 {
			continue
		}
		out = append(out, StreamError{
			Key: sd.Key, Label: sd.Label, Stage: "pairing", Reason: "outlier-pairs",
			Detail: fmt.Sprintf("rejected %d of %d paired samples as outliers",
				sd.RejectedPairs, sd.RejectedPairs+sd.RawPairs),
		})
	}
	return out
}
