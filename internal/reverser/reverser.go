package reverser

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpreverser/internal/colstore"
	"dpreverser/internal/gp"
	"dpreverser/internal/rig"
	"dpreverser/internal/telemetry"
)

// ProgressKind labels a progress event.
type ProgressKind int

// Progress event kinds, in the order a run emits them.
const (
	// ProgressStageStart / ProgressStageDone bracket one pipeline stage
	// ("assemble", "extract", "align", "streams", "infer", "controls").
	ProgressStageStart ProgressKind = iota
	ProgressStageDone
	// ProgressStreamStart / ProgressStreamDone bracket one stream's
	// formula inference inside the "infer" stage.
	ProgressStreamStart
	ProgressStreamDone
)

// ProgressEvent is one observation of the pipeline's advance. Stage events
// carry Stage and (on done) Elapsed; stream events additionally carry the
// stream identity, the Done/Total counters and (on done) the generation
// count the GP actually ran.
type ProgressEvent struct {
	Kind  ProgressKind
	Stage string
	// Stream and Label identify the stream for stream events.
	Stream StreamKey
	Label  string
	// Generations is the GP generation count (ProgressStreamDone only).
	Generations int
	// Evaluations and CacheHits report the GP engine's scoring counters
	// for the stream (ProgressStreamDone only): of Evaluations requested
	// scores, CacheHits came from the cross-generation fitness cache
	// instead of the compiled VM. The metrics registry (see
	// WithTelemetry) aggregates the same counters across streams and
	// runs; these per-event fields remain for rendering convenience.
	Evaluations int
	CacheHits   int
	// Elapsed is the stage or stream wall time (done events only), read
	// from the injected telemetry clock.
	Elapsed time.Duration
	// Done and Total count finished vs. scheduled streams (stream events).
	Done, Total int
}

// ProgressFunc receives progress events. The Reverser serialises calls, so
// implementations need no locking of their own, but they run on the
// pipeline's goroutines and should return quickly. A panic in the callback
// does not kill the pipeline: the run is cancelled and the panic is
// returned as an error from Reverse.
type ProgressFunc func(ProgressEvent)

// Reverser runs the DP-Reverser analysis pipeline. Construct one with New
// and run captures through (*Reverser).Reverse; a Reverser is immutable
// after construction and safe for concurrent use.
type Reverser struct {
	cfg         Config
	parallelism int
	policy      FaultPolicy
	progress    ProgressFunc
	tel         *telemetry.Provider
	clock       telemetry.Clock
	met         *telemetry.PipelineMetrics
	// log is the provider's structured logger (usually carrying the job
	// server's correlation context); nil disables logging. Stream-scoped
	// records bind only deterministic attributes (stream key, label, GP
	// counters) — never scheduling-dependent values like completion
	// counts or per-stream span IDs — so the emitted record multiset is
	// identical at any parallelism.
	log *telemetry.Logger

	// mu serialises progress callbacks from the inference workers.
	mu sync.Mutex
}

// Option configures a Reverser. All options follow the WithX naming
// convention and compose left to right: later options override earlier
// ones. The full set is WithConfig, WithGPConfig, WithParallelism,
// WithProgress, WithTelemetry, WithFaultPolicy, WithPairMaxGap and
// WithMinPairs.
type Option func(*Reverser)

// WithConfig replaces the whole pipeline configuration at once. It
// composes with the finer-grained options below: later options win.
func WithConfig(cfg Config) Option {
	return func(rv *Reverser) { rv.cfg = cfg }
}

// WithGPConfig sets the symbolic-regression engine configuration. The
// configured Seed acts as the capture seed: every stream derives its own
// RNG from it and the stream key, so results are byte-identical at any
// parallelism.
func WithGPConfig(cfg gp.Config) Option {
	return func(rv *Reverser) { rv.cfg.GP = cfg }
}

// WithParallelism caps the concurrent per-stream inference workers.
// Values < 1 mean runtime.GOMAXPROCS(0), the default.
func WithParallelism(n int) Option {
	return func(rv *Reverser) { rv.parallelism = n }
}

// WithProgress installs a progress callback. The Reverser serialises
// calls (see ProgressFunc); a nil fn (the default) disables progress
// reporting. Stage events bracket each pipeline stage, stream events each
// stream's formula inference.
func WithProgress(fn ProgressFunc) Option {
	return func(rv *Reverser) { rv.progress = fn }
}

// WithTelemetry attaches a telemetry provider: the pipeline then records
// hierarchical spans (run → stage → stream → GP generation), increments
// the PipelineMetrics set on the provider's registry, and reads all
// elapsed times from the provider's clock. A nil provider (the default)
// disables instrumentation; timing then comes from a private wall clock.
func WithTelemetry(p *telemetry.Provider) Option {
	return func(rv *Reverser) { rv.tel = p }
}

// WithPairMaxGap sets the largest traffic-to-video timestamp distance that
// still pairs an X observation with a Y sample.
func WithPairMaxGap(d time.Duration) Option {
	return func(rv *Reverser) { rv.cfg.PairMaxGap = d }
}

// WithMinPairs sets the smallest usable (X, Y) dataset; streams with fewer
// pairs are reported without a formula.
func WithMinPairs(n int) Option {
	return func(rv *Reverser) { rv.cfg.MinPairs = n }
}

// New builds a Reverser from DefaultConfig plus the given options.
func New(opts ...Option) *Reverser {
	rv := &Reverser{cfg: DefaultConfig()}
	for _, o := range opts {
		o(rv)
	}
	if rv.tel != nil && rv.tel.Clock != nil {
		rv.clock = rv.tel.Clock
	}
	if rv.clock == nil {
		rv.clock = telemetry.NewWallClock()
	}
	rv.met = telemetry.NewPipelineMetrics(rv.tel.RegistryOrNil())
	rv.log = rv.tel.LoggerOrNil()
	return rv
}

// Policy reports the degradation policy in effect.
func (rv *Reverser) Policy() FaultPolicy { return rv.policy }

// Parallelism reports the effective inference worker count.
func (rv *Reverser) Parallelism() int {
	if rv.parallelism < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return rv.parallelism
}

// Config returns a copy of the pipeline configuration in effect.
func (rv *Reverser) Config() Config { return rv.cfg }

// tracer resolves the span recorder (nil when telemetry is disabled; all
// span operations are nil-safe).
func (rv *Reverser) tracer() *telemetry.Tracer { return rv.tel.TracerOrNil() }

// run is the per-Reverse state: the cancel handle the panic guard pulls,
// the root span, and the first recovered callback panic.
type run struct {
	rv     *Reverser
	cancel context.CancelFunc
	span   *telemetry.Span

	// cbErr holds the first progress-callback panic, converted to an
	// error. It is written and read under rv.mu (emit already holds it).
	cbErr error
}

// emit serialises one progress callback. A panicking callback is
// recovered: the first panic is recorded and cancels the run, so workers
// stop claiming streams and Reverse reports the panic instead of letting
// it kill a pipeline goroutine.
func (r *run) emit(ev ProgressEvent) {
	rv := r.rv
	if rv.progress == nil {
		return
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			if r.cbErr == nil {
				r.cbErr = fmt.Errorf("reverser: progress callback panicked: %v", p)
				r.cancel()
			}
		}
	}()
	// rv.mu exists to serialise exactly this call — the documented
	// ProgressFunc contract is "called from one goroutine at a time" — and
	// guards only cbErr, which nothing else touches while a callback runs.
	rv.progress(ev) //dplint:allow lockhold rv.mu's documented job is serialising the ProgressFunc; it guards no pipeline state
}

// callbackErr reads the recorded callback panic, if any.
func (r *run) callbackErr() error {
	r.rv.mu.Lock()
	defer r.rv.mu.Unlock()
	return r.cbErr
}

// stage runs one pipeline stage, bracketing it with progress events, a
// child span, and a per-stage latency observation.
func (r *run) stage(name string, fn func()) {
	sp := r.span.Child("stage:"+name, telemetry.String("stage", name))
	r.emit(ProgressEvent{Kind: ProgressStageStart, Stage: name})
	start := r.rv.clock.Now()
	fn()
	elapsed := r.rv.clock.Now() - start
	sp.End()
	r.rv.met.StageDuration.With(name).ObserveDuration(elapsed)
	r.rv.log.Info("stage-done",
		telemetry.String("stage", name), telemetry.Millis("elapsed_ms", elapsed))
	r.emit(ProgressEvent{Kind: ProgressStageDone, Stage: name, Elapsed: elapsed})
}

// Reverse runs the complete pipeline on a capture. Cancelling ctx aborts
// promptly — the GP engine checks it between generations and the worker
// pool stops claiming streams — and returns ctx.Err(). A panic in the
// progress callback likewise cancels the run and is returned as an error.
func (rv *Reverser) Reverse(ctx context.Context, cap rig.Capture) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &run{rv: rv, cancel: cancel}
	r.span = rv.tracer().Start("reverse",
		telemetry.String("car", cap.Car), telemetry.String("model", cap.Model))
	defer r.span.End()
	runStart := rv.clock.Now()
	rv.log.Info("run-start",
		telemetry.String("car", cap.Car), telemetry.Int("frames", len(cap.Frames)))

	res := &Result{Car: cap.Car, Model: cap.Model, ToolName: cap.ToolName}

	// §3.2 Steps 1-2: screening and payload assembly — one pass over the
	// raw frames, shared by field extraction, alignment and the message
	// count. The capture is transposed once into a columnar frame store
	// and assembled into a columnar message store; the later stages read
	// zero-copy slab views of both. The frame loop polls ctx, so captures
	// of any size cancel promptly.
	var fr *colstore.Frames
	var ms *colstore.Messages
	var aerr error
	r.stage("assemble", func() {
		fr = FramesColumnar(cap.Frames)
		ms, res.Stats, aerr = AssembleColumnar(ctx, fr, rv.assemblyObserver())
		if ms != nil {
			res.Messages = ms.Len()
		}
	})
	if aerr != nil {
		// A panicking progress callback cancels the run; report the panic,
		// not the cancellation it caused.
		if cbErr := r.callbackErr(); cbErr != nil {
			return nil, cbErr
		}
		return nil, aerr
	}
	rv.met.FramesTotal.Add(float64(res.Stats.Total))
	rv.met.MessagesAssembled.Add(float64(res.Messages))

	// §3.2 Step 3: request/response pairing and field extraction, indexing
	// into the columnar message store.
	var ext *Extraction
	r.stage("extract", func() { ext = ExtractFieldsColumnar(ms) })
	rv.met.ESVObservations.Add(float64(len(ext.ESVs)))
	rv.met.ECRObservations.Add(float64(len(ext.ECRs)))

	// §3.3: camera-to-CAN clock alignment.
	var uiFrames = cap.UIFrames
	r.stage("align", func() { res.Offset, uiFrames = alignUI(fr, cap.UIFrames) })

	// §3.3-§3.5 Step 1: session splitting, semantics, pairing, filtering,
	// aggregation.
	r.stage("streams", func() {
		res.Streams = streamsFromExtraction(ext, uiFrames, rv.cfg)
	})
	for _, sd := range res.Streams {
		rv.met.StreamsExtracted.With(streamKind(sd)).Inc()
	}

	// Damage observed so far, attributed to streams in deterministic
	// (stream, then ID) order.
	res.Degraded = append(res.Degraded, assembleDegraded(res.Stats, res.Streams)...)
	res.Degraded = append(res.Degraded, pairingDegraded(res.Streams)...)

	// Attack detection over the assembly-layer profiles: each classified
	// finding becomes a degraded-stream entry (Reason = attack class), a
	// point on the attack-signature counter, and a flight-recorder event.
	attacks := DetectAttacks(res.Stats)
	res.Degraded = append(res.Degraded, attackDegraded(attacks, res.Streams)...)
	for _, f := range attacks {
		rv.met.AttackSignatures.With(f.Class).Inc()
		rv.log.Warn("attack-detected",
			telemetry.String("id", fmt.Sprintf("%03X", f.ID)),
			telemetry.String("class", f.Class),
			telemetry.String("detail", f.Detail))
	}

	// §3.5 Steps 2-3: per-stream formula inference, fanned out across the
	// worker pool. A panicking stream is contained: its slot keeps the
	// formula-less ESV and the panic joins the degradation report.
	var esvs []ReversedESV
	var inferErrs []*StreamError
	var err error
	r.stage("infer", func() { esvs, inferErrs, err = r.inferStreams(ctx, res.Streams) })
	if cbErr := r.callbackErr(); cbErr != nil {
		return nil, cbErr
	}
	if err != nil {
		return nil, err
	}
	for _, se := range inferErrs {
		if se != nil {
			res.Degraded = append(res.Degraded, *se)
		}
	}
	res.ESVs = esvs
	sort.Slice(res.ESVs, func(i, j int) bool {
		return res.ESVs[i].Key.String() < res.ESVs[j].Key.String()
	})

	// §4.5: control-record extraction with active-test screen semantics.
	r.stage("controls", func() {
		res.ECRs = reverseECRs(ext.ECRs, uiFrames)
	})
	rv.met.ECRsRecovered.Add(float64(len(res.ECRs)))

	// Aggregate the per-stream GP counters onto the result and the
	// registry; the two agree exactly by construction.
	for _, e := range res.ESVs {
		res.Evaluations += e.Evaluations
		res.CacheHits += e.CacheHits
		res.CacheMisses += e.CacheMisses
		rv.met.ESVsReversed.With(e.Kind()).Inc()
	}
	rv.met.GPEvaluations.Add(float64(res.Evaluations))
	rv.met.GPCacheHits.Add(float64(res.CacheHits))
	rv.met.GPCacheMisses.Add(float64(res.CacheMisses))
	rv.met.RunsTotal.Inc()

	for _, se := range res.Degraded {
		rv.met.DegradedStreams.With(se.Stage).Inc()
		// Degraded entries are already in deterministic (stream, ID) order,
		// so these warnings are too.
		rv.log.Warn("stream-degraded",
			telemetry.String("stream", se.Key.String()),
			telemetry.String("label", se.Label),
			telemetry.String("stage", se.Stage),
			telemetry.String("reason", se.Reason),
			telemetry.String("detail", se.Detail))
	}
	rv.log.Info("run-done",
		telemetry.Int("esvs", len(res.ESVs)),
		telemetry.Int("ecrs", len(res.ECRs)),
		telemetry.Int("evaluations", res.Evaluations),
		telemetry.Int("degraded", len(res.Degraded)),
		telemetry.Millis("elapsed_ms", rv.clock.Now()-runStart))

	if cbErr := r.callbackErr(); cbErr != nil {
		return nil, cbErr
	}
	if rv.policy == Strict && len(res.Degraded) > 0 {
		return nil, &DegradedError{Result: res}
	}
	return res, nil
}

// streamKind classifies a prepared stream for the extraction metric.
func streamKind(sd StreamData) string {
	switch {
	case sd.Enum:
		return "enum"
	case sd.Dataset != nil:
		return "formula-candidate"
	default:
		return "under-sampled"
	}
}

// assemblyObserver routes per-frame reassembly failures into the labeled
// transport-error counter.
func (rv *Reverser) assemblyObserver() AssemblyObserver {
	if rv.tel == nil {
		return nil
	}
	return func(transport, reason string) {
		rv.met.TransportErrors.With(transport, reason).Inc()
	}
}

// gpGenSpanSample thins per-generation spans: every Nth generation (plus
// generation 0) gets a span so a full-budget fleet trace stays tractable,
// while the generation *counter* still advances on every generation.
const gpGenSpanSample = 4

// genObserver adapts the GP engine's per-generation callback to telemetry:
// a generation counter tick per call and a sampled child span under the
// stream's span. It runs inside the engine's sequential loop, so the
// unsynchronised mark field is safe.
type genObserver struct {
	span  *telemetry.Span
	met   *telemetry.PipelineMetrics
	clock telemetry.Clock
	log   *telemetry.Logger // stream-scoped; Debug-level generation marks
	next  gp.Observer       // user-configured observer, preserved, not replaced
	mark  time.Duration
}

func (o *genObserver) Generation(gs gp.GenerationStats) {
	if o.next != nil {
		o.next.Generation(gs)
	}
	o.met.GPGenerations.Inc()
	now := o.clock.Now()
	if gs.Generation%gpGenSpanSample == 0 {
		sp := o.span.ChildFrom("gp-generation", o.mark,
			telemetry.Int("gen", gs.Generation),
			telemetry.Int("evals", gs.Evaluations),
			telemetry.Int("cache_hits", gs.CacheHits))
		sp.End()
		o.log.Debug("gp-generation",
			telemetry.Int("gen", gs.Generation),
			telemetry.Int("evals", gs.Evaluations),
			telemetry.Int("cache_hits", gs.CacheHits))
	}
	o.mark = now
}

// inferStreams fans InferStream out across the worker pool. Workers claim
// streams from a shared atomic cursor and write results by index, so the
// output order — and, thanks to per-stream seeds, every formula — is
// independent of scheduling. A panic inside one stream's inference is
// recovered in place: the stream keeps a formula-less result, the panic is
// reported by index (so the degradation report is deterministic at any
// parallelism), and the other workers keep going.
func (r *run) inferStreams(ctx context.Context, streams []StreamData) ([]ReversedESV, []*StreamError, error) {
	rv := r.rv
	inferSpan := r.span.Child("infer-pool", telemetry.Int("streams", len(streams)))
	defer inferSpan.End()
	out := make([]ReversedESV, len(streams))
	degraded := make([]*StreamError, len(streams))
	workers := rv.Parallelism()
	if workers > len(streams) {
		workers = len(streams)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		cursor int64 = -1
		done   int64
		wg     sync.WaitGroup
	)
	total := len(streams)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= total || ctx.Err() != nil {
					return
				}
				sd := streams[i]
				cfg := rv.cfg
				cfg.GP.Seed = streamSeed(rv.cfg.GP.Seed, sd.Key)
				sp := inferSpan.ChildLane("stream",
					telemetry.String("stream", sd.Key.String()),
					telemetry.String("label", sd.Label))
				// Stream-scoped logger: key and label only. Binding the
				// span ID here would leak scheduling order into the log
				// multiset and break parallelism-independence.
				slog := rv.log.With(
					telemetry.String("stream", sd.Key.String()),
					telemetry.String("label", sd.Label))
				if rv.tel != nil {
					cfg.GP.Observer = &genObserver{
						span: sp, met: rv.met, clock: rv.clock, log: slog,
						next: cfg.GP.Observer, mark: rv.clock.Now(),
					}
				}
				r.emit(ProgressEvent{
					Kind: ProgressStreamStart, Stage: "infer",
					Stream: sd.Key, Label: sd.Label,
					Done: int(atomic.LoadInt64(&done)), Total: total,
				})
				start := rv.clock.Now()
				esv, err, panicked := safeInferStream(ctx, sd, cfg)
				if panicked != nil {
					degraded[i] = &StreamError{
						Key: sd.Key, Label: sd.Label, Stage: "infer",
						Reason: "panic", Detail: fmt.Sprintf("inference panicked: %v", panicked),
					}
				} else if err != nil {
					sp.End()
					return // ctx cancelled; the post-wait check reports it
				}
				elapsed := rv.clock.Now() - start
				out[i] = esv
				sp.SetAttr(telemetry.Int("generations", esv.Generations),
					telemetry.Int("evals", esv.Evaluations))
				sp.End()
				rv.met.StreamDuration.ObserveDuration(elapsed)
				slog.Info("stream-done",
					telemetry.Int("generations", esv.Generations),
					telemetry.Int("evaluations", esv.Evaluations),
					telemetry.Millis("elapsed_ms", elapsed))
				r.emit(ProgressEvent{
					Kind: ProgressStreamDone, Stage: "infer",
					Stream: sd.Key, Label: sd.Label,
					Generations: esv.Generations, Elapsed: elapsed,
					Evaluations: esv.Evaluations, CacheHits: esv.CacheHits,
					Done: int(atomic.AddInt64(&done, 1)), Total: total,
				})
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return out, degraded, nil
}

// safeInferStream runs InferStream under a panic guard. A recovered panic
// yields the formula-less ESV the stream would report for a degenerate
// dataset, plus the panic value for the degradation report.
func safeInferStream(ctx context.Context, sd StreamData, cfg Config) (esv ReversedESV, err error, panicked any) {
	defer func() {
		if p := recover(); p != nil {
			panicked = p
			err = nil
			esv = ReversedESV{Key: sd.Key, Label: sd.Label, Unit: sd.Unit, Enum: sd.Enum, Pairs: sd.RawPairs}
		}
	}()
	esv, err = InferStream(ctx, sd, cfg)
	return esv, err, nil
}

// streamSeed derives the per-stream GP seed from the capture seed and the
// stream identity (§3.5 determinism): every stream owns an RNG that does
// not depend on which worker runs it or in what order, so a capture
// reverses byte-identically at any parallelism — and two streams never
// share one random sequence, as they did when the engine was sequential.
func streamSeed(base int64, key StreamKey) int64 {
	h := fnv.New64a()
	io.WriteString(h, key.String())
	return base ^ int64(h.Sum64()&0x7FFFFFFFFFFFFFFF)
}
