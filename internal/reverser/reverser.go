package reverser

import (
	"context"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dpreverser/internal/gp"
	"dpreverser/internal/rig"
)

// ProgressKind labels a progress event.
type ProgressKind int

// Progress event kinds, in the order a run emits them.
const (
	// ProgressStageStart / ProgressStageDone bracket one pipeline stage
	// ("assemble", "extract", "align", "streams", "infer", "controls").
	ProgressStageStart ProgressKind = iota
	ProgressStageDone
	// ProgressStreamStart / ProgressStreamDone bracket one stream's
	// formula inference inside the "infer" stage.
	ProgressStreamStart
	ProgressStreamDone
)

// ProgressEvent is one observation of the pipeline's advance. Stage events
// carry Stage and (on done) Elapsed; stream events additionally carry the
// stream identity, the Done/Total counters and (on done) the generation
// count the GP actually ran.
type ProgressEvent struct {
	Kind  ProgressKind
	Stage string
	// Stream and Label identify the stream for stream events.
	Stream StreamKey
	Label  string
	// Generations is the GP generation count (ProgressStreamDone only).
	Generations int
	// Evaluations and CacheHits report the GP engine's scoring counters
	// for the stream (ProgressStreamDone only): of Evaluations requested
	// scores, CacheHits came from the cross-generation fitness cache
	// instead of the compiled VM.
	Evaluations int
	CacheHits   int
	// Elapsed is the stage or stream wall time (done events only).
	Elapsed time.Duration
	// Done and Total count finished vs. scheduled streams (stream events).
	Done, Total int
}

// ProgressFunc receives progress events. The Reverser serialises calls, so
// implementations need no locking of their own, but they run on the
// pipeline's goroutines and should return quickly.
type ProgressFunc func(ProgressEvent)

// Reverser runs the DP-Reverser analysis pipeline. Construct one with New
// and run captures through (*Reverser).Reverse; a Reverser is immutable
// after construction and safe for concurrent use.
type Reverser struct {
	cfg         Config
	parallelism int
	progress    ProgressFunc

	// mu serialises progress callbacks from the inference workers.
	mu sync.Mutex
}

// Option configures a Reverser.
type Option func(*Reverser)

// WithConfig replaces the whole pipeline configuration at once. It
// composes with the finer-grained options below: later options win.
func WithConfig(cfg Config) Option {
	return func(rv *Reverser) { rv.cfg = cfg }
}

// WithGPConfig sets the symbolic-regression engine configuration. The
// configured Seed acts as the capture seed: every stream derives its own
// RNG from it and the stream key, so results are byte-identical at any
// parallelism.
func WithGPConfig(cfg gp.Config) Option {
	return func(rv *Reverser) { rv.cfg.GP = cfg }
}

// WithParallelism caps the concurrent per-stream inference workers.
// Values < 1 mean runtime.GOMAXPROCS(0), the default.
func WithParallelism(n int) Option {
	return func(rv *Reverser) { rv.parallelism = n }
}

// WithProgress installs a progress callback.
func WithProgress(fn ProgressFunc) Option {
	return func(rv *Reverser) { rv.progress = fn }
}

// WithPairMaxGap sets the largest traffic-to-video timestamp distance that
// still pairs an X observation with a Y sample.
func WithPairMaxGap(d time.Duration) Option {
	return func(rv *Reverser) { rv.cfg.PairMaxGap = d }
}

// WithMinPairs sets the smallest usable (X, Y) dataset; streams with fewer
// pairs are reported without a formula.
func WithMinPairs(n int) Option {
	return func(rv *Reverser) { rv.cfg.MinPairs = n }
}

// New builds a Reverser from DefaultConfig plus the given options.
func New(opts ...Option) *Reverser {
	rv := &Reverser{cfg: DefaultConfig()}
	for _, o := range opts {
		o(rv)
	}
	return rv
}

// Parallelism reports the effective inference worker count.
func (rv *Reverser) Parallelism() int {
	if rv.parallelism < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return rv.parallelism
}

// Config returns a copy of the pipeline configuration in effect.
func (rv *Reverser) Config() Config { return rv.cfg }

func (rv *Reverser) emit(ev ProgressEvent) {
	if rv.progress == nil {
		return
	}
	rv.mu.Lock()
	rv.progress(ev)
	rv.mu.Unlock()
}

// stage runs one pipeline stage, bracketing it with progress events.
func (rv *Reverser) stage(name string, fn func()) {
	rv.emit(ProgressEvent{Kind: ProgressStageStart, Stage: name})
	start := time.Now() //dplint:allow progress events carry wall-clock stage times
	fn()
	rv.emit(ProgressEvent{Kind: ProgressStageDone, Stage: name, Elapsed: time.Since(start)}) //dplint:allow progress events
}

// Reverse runs the complete pipeline on a capture. Cancelling ctx aborts
// promptly — the GP engine checks it between generations and the worker
// pool stops claiming streams — and returns ctx.Err().
func (rv *Reverser) Reverse(ctx context.Context, cap rig.Capture) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Car: cap.Car, Model: cap.Model, ToolName: cap.ToolName}

	// §3.2 Steps 1-2: screening and payload assembly — one pass over the
	// raw frames, shared by field extraction and the message count.
	var messages []Message
	rv.stage("assemble", func() {
		messages, res.Stats = Assemble(cap.Frames)
		res.Messages = len(messages)
	})

	// §3.2 Step 3: request/response pairing and field extraction.
	var ext *Extraction
	rv.stage("extract", func() { ext = ExtractFields(messages) })

	// §3.3: camera-to-CAN clock alignment.
	var uiFrames = cap.UIFrames
	rv.stage("align", func() { res.Offset, uiFrames = alignUI(cap) })

	// §3.3-§3.5 Step 1: session splitting, semantics, pairing, filtering,
	// aggregation.
	rv.stage("streams", func() {
		res.Streams = streamsFromExtraction(ext, uiFrames, rv.cfg)
	})

	// §3.5 Steps 2-3: per-stream formula inference, fanned out across the
	// worker pool.
	var esvs []ReversedESV
	var err error
	rv.stage("infer", func() { esvs, err = rv.inferStreams(ctx, res.Streams) })
	if err != nil {
		return nil, err
	}
	res.ESVs = esvs
	sort.Slice(res.ESVs, func(i, j int) bool {
		return res.ESVs[i].Key.String() < res.ESVs[j].Key.String()
	})

	// §4.5: control-record extraction with active-test screen semantics.
	rv.stage("controls", func() {
		res.ECRs = reverseECRs(ext.ECRs, uiFrames)
	})
	return res, nil
}

// inferStreams fans InferStream out across the worker pool. Workers claim
// streams from a shared atomic cursor and write results by index, so the
// output order — and, thanks to per-stream seeds, every formula — is
// independent of scheduling.
func (rv *Reverser) inferStreams(ctx context.Context, streams []StreamData) ([]ReversedESV, error) {
	out := make([]ReversedESV, len(streams))
	workers := rv.Parallelism()
	if workers > len(streams) {
		workers = len(streams)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		cursor int64 = -1
		done   int64
		wg     sync.WaitGroup
	)
	total := len(streams)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1))
				if i >= total || ctx.Err() != nil {
					return
				}
				sd := streams[i]
				cfg := rv.cfg
				cfg.GP.Seed = streamSeed(rv.cfg.GP.Seed, sd.Key)
				rv.emit(ProgressEvent{
					Kind: ProgressStreamStart, Stage: "infer",
					Stream: sd.Key, Label: sd.Label,
					Done: int(atomic.LoadInt64(&done)), Total: total,
				})
				start := time.Now() //dplint:allow progress events carry wall-clock stream times
				esv, err := InferStream(ctx, sd, cfg)
				if err != nil {
					return // ctx cancelled; the post-wait check reports it
				}
				out[i] = esv
				rv.emit(ProgressEvent{
					Kind: ProgressStreamDone, Stage: "infer",
					Stream: sd.Key, Label: sd.Label,
					Generations: esv.Generations, Elapsed: time.Since(start), //dplint:allow progress events
					Evaluations: esv.Evaluations, CacheHits: esv.CacheHits,
					Done: int(atomic.AddInt64(&done, 1)), Total: total,
				})
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// streamSeed derives the per-stream GP seed from the capture seed and the
// stream identity (§3.5 determinism): every stream owns an RNG that does
// not depend on which worker runs it or in what order, so a capture
// reverses byte-identically at any parallelism — and two streams never
// share one random sequence, as they did when the engine was sequential.
func streamSeed(base int64, key StreamKey) int64 {
	h := fnv.New64a()
	io.WriteString(h, key.String())
	return base ^ int64(h.Sum64()&0x7FFFFFFFFFFFFFFF)
}
