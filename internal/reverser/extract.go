package reverser

import (
	"fmt"
	"time"

	"dpreverser/internal/kwp"
	"dpreverser/internal/obd"
	"dpreverser/internal/uds"
)

// requestSIDs are the application-layer request service IDs the standards
// define; anything in 0x40..0x7F is a response. This classification needs
// no knowledge of which CAN IDs belong to which side.
var requestSIDs = map[byte]bool{
	0x01:                              true, // OBD mode 01
	uds.SIDDiagnosticSessionControl:   true,
	uds.SIDECUReset:                   true,
	uds.SIDClearDiagnosticInfo:        true,
	uds.SIDReadDTCInformation:         true,
	kwp.SIDReadECUIdentification:      true,
	kwp.SIDReadDataByLocalIdentifier:  true,
	uds.SIDReadDataByIdentifier:       true,
	uds.SIDSecurityAccess:             true,
	uds.SIDWriteDataByIdentifier:      true,
	uds.SIDIOControlByIdentifier:      true, // also KWP IOCbCID
	kwp.SIDIOControlByLocalIdentifier: true,
	uds.SIDRoutineControl:             true,
	uds.SIDTesterPresent:              true,
}

// IsRequest classifies an assembled payload.
func IsRequest(payload []byte) bool {
	return len(payload) > 0 && requestSIDs[payload[0]]
}

// ESVObservation is one extracted ECU-signal-value reading: the raw bytes
// of one identifier's field in one response, with its timestamp.
type ESVObservation struct {
	At time.Duration
	// Key identifies the stream (one reversible quantity).
	Key StreamKey
	// Bytes is the raw field value (UDS: the DID's data; KWP: FType, X0,
	// X1).
	Bytes []byte
}

// StreamKey identifies one readable quantity on the wire.
type StreamKey struct {
	// Proto is "UDS", "KWP" or "OBD".
	Proto string
	// RespID is the CAN ID the responses arrive on (plus BMW address).
	RespID uint32
	Addr   byte
	// DID is set for UDS; PID for OBD.
	DID uint16
	// LocalID, Index and FType locate a KWP ESV within its block.
	LocalID byte
	Index   int
	FType   byte
}

// String renders the key the way the result tables print identifiers.
func (k StreamKey) String() string {
	switch k.Proto {
	case "UDS":
		return fmt.Sprintf("UDS DID %04X @%03X", k.DID, k.RespID)
	case "KWP":
		return fmt.Sprintf("KWP local %02X[%d] ftype %02X @%03X", k.LocalID, k.Index, k.FType, k.RespID)
	default:
		return fmt.Sprintf("OBD PID %02X", k.DID)
	}
}

// ECRObservation is one captured IO-control request (§4.5's raw material).
type ECRObservation struct {
	At time.Duration
	// Service is 0x2F or 0x30.
	Service byte
	// ID is the 2-byte identifier for 0x2F, or the 1-byte local
	// identifier (zero-extended) for 0x30.
	ID uint16
	// Param is the IO control parameter (first control byte).
	Param byte
	// State is the remaining control-state bytes.
	State []byte
	// Positive reports whether the ECU answered positively.
	Positive bool
	// ReqID is the CAN ID the request was sent on.
	ReqID uint32
}

// Extraction is the output of field extraction over a whole capture.
type Extraction struct {
	ESVs []ESVObservation
	ECRs []ECRObservation
	// Requests counts request messages by service ID.
	Requests map[byte]int
	// NegativeResponses counts 0x7F responses by rejected service.
	NegativeResponses map[byte]int
}

// ExtractFields implements §3.2 Step 3 over an assembled message stream:
// it pairs responses with the most recent matching request and splits the
// payloads into manufacturer-defined fields.
func ExtractFields(messages []Message) *Extraction {
	out := &Extraction{
		Requests:          map[byte]int{},
		NegativeResponses: map[byte]int{},
	}
	// pending tracks, per conversation stream, the latest request awaiting
	// its response. Streams are keyed by transport identity so interleaved
	// polls to different ECUs do not cross-pair.
	type pendingReq struct {
		msg Message
	}
	pending := map[string]pendingReq{}
	// pendingECR holds IO-control requests awaiting the positive/negative
	// verdict.
	type pendingIO struct {
		obs ECRObservation
	}
	pendingIOs := map[string]pendingIO{}

	streamKeyOf := func(m Message) string {
		// Requests and responses travel on different CAN IDs (and, for
		// BMW, carry each other's addresses), but a capture's conversation
		// is serialised per transport kind — tools wait for each response
		// before the next request — which suffices for pairing.
		return fmt.Sprintf("%d", m.Transport)
	}

	for _, m := range messages {
		if len(m.Payload) == 0 {
			continue
		}
		sid := m.Payload[0]
		if IsRequest(m.Payload) {
			out.Requests[sid]++
			key := streamKeyOf(m)
			pending[key] = pendingReq{msg: m}
			switch sid {
			case uds.SIDIOControlByIdentifier:
				if len(m.Payload) >= 4 {
					obs := ECRObservation{
						At: m.At, Service: sid, ReqID: m.ID,
						ID:    uint16(m.Payload[1])<<8 | uint16(m.Payload[2]),
						Param: m.Payload[3],
					}
					if len(m.Payload) > 4 {
						obs.State = append([]byte(nil), m.Payload[4:]...)
					}
					pendingIOs[key] = pendingIO{obs: obs}
				}
			case kwp.SIDIOControlByLocalIdentifier:
				if len(m.Payload) >= 3 {
					obs := ECRObservation{
						At: m.At, Service: sid, ReqID: m.ID,
						ID:    uint16(m.Payload[1]),
						Param: m.Payload[2],
					}
					if len(m.Payload) > 3 {
						obs.State = append([]byte(nil), m.Payload[3:]...)
					}
					pendingIOs[key] = pendingIO{obs: obs}
				}
			}
			continue
		}

		// Response path.
		key := streamKeyOf(m)
		if sid == uds.NegativeResponseSID {
			if len(m.Payload) >= 2 {
				out.NegativeResponses[m.Payload[1]]++
				if io, ok := pendingIOs[key]; ok &&
					(m.Payload[1] == uds.SIDIOControlByIdentifier || m.Payload[1] == kwp.SIDIOControlByLocalIdentifier) {
					io.obs.Positive = false
					out.ECRs = append(out.ECRs, io.obs)
					delete(pendingIOs, key)
				}
			}
			continue
		}
		req, ok := pending[key]
		if !ok || req.msg.Payload[0]+0x40 != sid {
			continue // orphan response
		}
		delete(pending, key)

		switch sid {
		case obd.ResponseSID:
			if pid, _, err := obd.ParseResponse(m.Payload); err == nil {
				out.ESVs = append(out.ESVs, ESVObservation{
					At:    m.At,
					Key:   StreamKey{Proto: "OBD", RespID: m.ID, DID: uint16(pid)},
					Bytes: append([]byte(nil), m.Payload[2:]...),
				})
			}

		case uds.PositiveResponseSID(uds.SIDReadDataByIdentifier):
			dids, err := uds.ParseRDBIRequest(req.msg.Payload)
			if err != nil {
				continue
			}
			records, err := uds.ParseRDBIResponse(m.Payload, dids)
			if err != nil {
				continue
			}
			for _, rec := range records {
				out.ESVs = append(out.ESVs, ESVObservation{
					At:    m.At,
					Key:   StreamKey{Proto: "UDS", RespID: m.ID, Addr: m.Addr, DID: rec.DID},
					Bytes: rec.Data,
				})
			}

		case kwp.PositiveResponseSID(kwp.SIDReadDataByLocalIdentifier):
			localID, esvs, err := kwp.ParseReadResponse(m.Payload)
			if err != nil {
				continue
			}
			for i, e := range esvs {
				out.ESVs = append(out.ESVs, ESVObservation{
					At: m.At,
					Key: StreamKey{Proto: "KWP", RespID: m.ID, Addr: m.Addr,
						LocalID: localID, Index: i, FType: e.FType},
					Bytes: []byte{e.FType, e.X0, e.X1},
				})
			}

		case uds.PositiveResponseSID(uds.SIDIOControlByIdentifier),
			kwp.PositiveResponseSID(kwp.SIDIOControlByLocalIdentifier):
			if io, ok := pendingIOs[key]; ok {
				io.obs.Positive = true
				out.ECRs = append(out.ECRs, io.obs)
				delete(pendingIOs, key)
			}
		}
	}
	return out
}

// Variables converts an observation's raw bytes into the formula-inference
// variable vector, following §3.5 Step 1: "each ESV X is an integer value
// for UDS and each ESV contains two integer values for KWP 2000". UDS
// fields collapse to one big-endian integer; KWP ESVs expose X0 and X1
// (the formula-type byte is structural — it selects, not feeds, the
// formula); OBD data keeps one variable per byte, matching Table 5's
// two-variable ground-truth formulas.
func (o ESVObservation) Variables() []float64 {
	switch o.Key.Proto {
	case "KWP":
		if len(o.Bytes) != kwp.ESVSize {
			return nil
		}
		return []float64{float64(o.Bytes[1]), float64(o.Bytes[2])}
	case "UDS":
		if len(o.Bytes) == 0 || len(o.Bytes) > 4 {
			return nil
		}
		raw := 0.0
		for _, b := range o.Bytes {
			raw = raw*256 + float64(b)
		}
		return []float64{raw}
	default:
		vars := make([]float64, len(o.Bytes))
		for i, b := range o.Bytes {
			vars[i] = float64(b)
		}
		return vars
	}
}
