package reverser

import (
	"fmt"
	"time"

	"dpreverser/internal/colstore"
	"dpreverser/internal/kwp"
	"dpreverser/internal/obd"
	"dpreverser/internal/uds"
)

// requestSIDs are the application-layer request service IDs the standards
// define; anything in 0x40..0x7F is a response. This classification needs
// no knowledge of which CAN IDs belong to which side.
var requestSIDs = map[byte]bool{
	0x01:                              true, // OBD mode 01
	uds.SIDDiagnosticSessionControl:   true,
	uds.SIDECUReset:                   true,
	uds.SIDClearDiagnosticInfo:        true,
	uds.SIDReadDTCInformation:         true,
	kwp.SIDReadECUIdentification:      true,
	kwp.SIDReadDataByLocalIdentifier:  true,
	uds.SIDReadDataByIdentifier:       true,
	uds.SIDSecurityAccess:             true,
	uds.SIDWriteDataByIdentifier:      true,
	uds.SIDIOControlByIdentifier:      true, // also KWP IOCbCID
	kwp.SIDIOControlByLocalIdentifier: true,
	uds.SIDRoutineControl:             true,
	uds.SIDTesterPresent:              true,
}

// IsRequest classifies an assembled payload.
func IsRequest(payload []byte) bool {
	return len(payload) > 0 && requestSIDs[payload[0]]
}

// ESVObservation is one extracted ECU-signal-value reading: the raw bytes
// of one identifier's field in one response, with its timestamp.
type ESVObservation struct {
	At time.Duration
	// Key identifies the stream (one reversible quantity).
	Key StreamKey
	// Bytes is the raw field value (UDS: the DID's data; KWP: FType, X0,
	// X1).
	Bytes []byte
}

// StreamKey identifies one readable quantity on the wire.
type StreamKey struct {
	// Proto is "UDS", "KWP" or "OBD".
	Proto string
	// RespID is the CAN ID the responses arrive on (plus BMW address).
	RespID uint32
	Addr   byte
	// DID is set for UDS; PID for OBD.
	DID uint16
	// LocalID, Index and FType locate a KWP ESV within its block.
	LocalID byte
	Index   int
	FType   byte
}

// String renders the key the way the result tables print identifiers.
func (k StreamKey) String() string {
	switch k.Proto {
	case "UDS":
		return fmt.Sprintf("UDS DID %04X @%03X", k.DID, k.RespID)
	case "KWP":
		return fmt.Sprintf("KWP local %02X[%d] ftype %02X @%03X", k.LocalID, k.Index, k.FType, k.RespID)
	default:
		return fmt.Sprintf("OBD PID %02X", k.DID)
	}
}

// ECRObservation is one captured IO-control request (§4.5's raw material).
type ECRObservation struct {
	At time.Duration
	// Service is 0x2F or 0x30.
	Service byte
	// ID is the 2-byte identifier for 0x2F, or the 1-byte local
	// identifier (zero-extended) for 0x30.
	ID uint16
	// Param is the IO control parameter (first control byte).
	Param byte
	// State is the remaining control-state bytes.
	State []byte
	// Positive reports whether the ECU answered positively.
	Positive bool
	// ReqID is the CAN ID the request was sent on.
	ReqID uint32
}

// Extraction is the output of field extraction over a whole capture.
type Extraction struct {
	ESVs []ESVObservation
	ECRs []ECRObservation
	// Requests counts request messages by service ID.
	Requests map[byte]int
	// NegativeResponses counts 0x7F responses by rejected service.
	NegativeResponses map[byte]int

	// kwpSlab backs the KWP observations' 3-byte ESV triples; see
	// appendKWP.
	kwpSlab []byte
}

// ExtractFields implements §3.2 Step 3 over an assembled message stream:
// it pairs responses with the most recent matching request and splits the
// payloads into manufacturer-defined fields. It is a compatibility
// wrapper: the messages are transposed into a columnar store and handed
// to ExtractFieldsColumnar, which the pipeline calls directly.
func ExtractFields(messages []Message) *Extraction {
	ms := colstore.NewMessages(len(messages), 0)
	for _, m := range messages {
		ms.Append(m.At, m.ID, m.Addr, uint8(m.Transport), m.Payload)
	}
	return ExtractFieldsColumnar(ms)
}

// transportKinds bounds the pairing state arrays below.
const transportKinds = 3

// ExtractFieldsColumnar runs field extraction by indexing into the
// columnar message store. Pairing state lives in transport-indexed
// arrays — requests and responses travel on different CAN IDs (and, for
// BMW, carry each other's addresses), but a capture's conversation is
// serialised per transport kind, since tools wait for each response
// before the next request — so claiming a pending slot costs no map
// lookup and no key formatting. Extracted ESV bytes are views into the
// store's slab (or, for KWP's decoded triples, into an extraction-owned
// slab); the Extraction keeps the store alive through those views.
//
//dplint:hotpath extract-fields
func ExtractFieldsColumnar(ms *colstore.Messages) *Extraction {
	out := &Extraction{
		Requests:          map[byte]int{},
		NegativeResponses: map[byte]int{},
	}
	// pending tracks, per transport conversation, the latest request
	// payload awaiting its response; pendingIOs the IO-control requests
	// awaiting the positive/negative verdict.
	var pending [transportKinds]struct {
		payload []byte
		ok      bool
	}
	var pendingIOs [transportKinds]struct {
		obs ECRObservation
		ok  bool
	}

	for i, n := 0, ms.Len(); i < n; i++ {
		payload := ms.Payload(i)
		if len(payload) == 0 {
			continue
		}
		at, id, addr := ms.At(i), ms.ID(i), ms.Addr(i)
		tr := int(ms.Transport(i)) % transportKinds
		sid := payload[0]
		if IsRequest(payload) {
			out.Requests[sid]++
			pending[tr].payload = payload
			pending[tr].ok = true
			switch sid {
			case uds.SIDIOControlByIdentifier:
				if len(payload) >= 4 {
					obs := ECRObservation{
						At: at, Service: sid, ReqID: id,
						ID:    uint16(payload[1])<<8 | uint16(payload[2]),
						Param: payload[3],
					}
					if len(payload) > 4 {
						obs.State = payload[4:]
					}
					pendingIOs[tr].obs = obs
					pendingIOs[tr].ok = true
				}
			case kwp.SIDIOControlByLocalIdentifier:
				if len(payload) >= 3 {
					obs := ECRObservation{
						At: at, Service: sid, ReqID: id,
						ID:    uint16(payload[1]),
						Param: payload[2],
					}
					if len(payload) > 3 {
						obs.State = payload[3:]
					}
					pendingIOs[tr].obs = obs
					pendingIOs[tr].ok = true
				}
			}
			continue
		}

		// Response path.
		if sid == uds.NegativeResponseSID {
			if len(payload) >= 2 {
				out.NegativeResponses[payload[1]]++
				if pendingIOs[tr].ok &&
					(payload[1] == uds.SIDIOControlByIdentifier || payload[1] == kwp.SIDIOControlByLocalIdentifier) {
					pendingIOs[tr].obs.Positive = false
					out.ECRs = append(out.ECRs, pendingIOs[tr].obs)
					pendingIOs[tr].ok = false
				}
			}
			continue
		}
		if !pending[tr].ok || pending[tr].payload[0]+0x40 != sid {
			continue // orphan response
		}
		reqPayload := pending[tr].payload
		pending[tr].ok = false

		switch sid {
		case obd.ResponseSID:
			if pid, _, err := obd.ParseResponse(payload); err == nil {
				out.ESVs = append(out.ESVs, ESVObservation{
					At:    at,
					Key:   StreamKey{Proto: "OBD", RespID: id, DID: uint16(pid)},
					Bytes: payload[2:],
				})
			}

		case uds.PositiveResponseSID(uds.SIDReadDataByIdentifier):
			dids, err := uds.ParseRDBIRequest(reqPayload)
			if err != nil {
				continue
			}
			records, err := uds.ParseRDBIResponse(payload, dids)
			if err != nil {
				continue
			}
			for _, rec := range records {
				out.ESVs = append(out.ESVs, ESVObservation{
					At:    at,
					Key:   StreamKey{Proto: "UDS", RespID: id, Addr: addr, DID: rec.DID},
					Bytes: rec.Data,
				})
			}

		case kwp.PositiveResponseSID(kwp.SIDReadDataByLocalIdentifier):
			localID, esvs, err := kwp.ParseReadResponse(payload)
			if err != nil {
				continue
			}
			for j, e := range esvs {
				out.ESVs = append(out.ESVs, ESVObservation{
					At: at,
					Key: StreamKey{Proto: "KWP", RespID: id, Addr: addr,
						LocalID: localID, Index: j, FType: e.FType},
					Bytes: out.appendKWP(e.FType, e.X0, e.X1),
				})
			}

		case uds.PositiveResponseSID(uds.SIDIOControlByIdentifier),
			kwp.PositiveResponseSID(kwp.SIDIOControlByLocalIdentifier):
			if pendingIOs[tr].ok {
				pendingIOs[tr].obs.Positive = true
				out.ECRs = append(out.ECRs, pendingIOs[tr].obs)
				pendingIOs[tr].ok = false
			}
		}
	}
	return out
}

// appendKWP packs one decoded KWP (FType, X0, X1) triple onto the
// extraction's own slab and returns the capped 3-byte view. KWP ESVs are
// re-encoded rather than sliced from the message payload, so they need
// somewhere contiguous to live; one shared slab replaces a 3-byte heap
// allocation per observation. Views survive slab growth: append may move
// the backing array, but the old array stays reachable through them.
func (x *Extraction) appendKWP(ftype, x0, x1 byte) []byte {
	x.kwpSlab = append(x.kwpSlab, ftype, x0, x1)
	n := len(x.kwpSlab)
	return x.kwpSlab[n-3 : n : n]
}

// Variables converts an observation's raw bytes into the formula-inference
// variable vector, following §3.5 Step 1: "each ESV X is an integer value
// for UDS and each ESV contains two integer values for KWP 2000". UDS
// fields collapse to one big-endian integer; KWP ESVs expose X0 and X1
// (the formula-type byte is structural — it selects, not feeds, the
// formula); OBD data keeps one variable per byte, matching Table 5's
// two-variable ground-truth formulas.
func (o ESVObservation) Variables() []float64 {
	switch o.Key.Proto {
	case "KWP":
		if len(o.Bytes) != kwp.ESVSize {
			return nil
		}
		return []float64{float64(o.Bytes[1]), float64(o.Bytes[2])}
	case "UDS":
		if len(o.Bytes) == 0 || len(o.Bytes) > 4 {
			return nil
		}
		raw := 0.0
		for _, b := range o.Bytes {
			raw = raw*256 + float64(b)
		}
		return []float64{raw}
	default:
		vars := make([]float64, len(o.Bytes))
		for i, b := range o.Bytes {
			vars[i] = float64(b)
		}
		return vars
	}
}
