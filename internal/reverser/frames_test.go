package reverser

import (
	"bytes"
	"testing"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
	"dpreverser/internal/vwtp"
)

// framesFromData wraps raw data fields into frames on one ID.
func framesFromData(id uint32, fields [][]byte) []can.Frame {
	var out []can.Frame
	for _, d := range fields {
		out = append(out, can.MustFrame(id, d))
	}
	return out
}

func TestAssembleISOTPSingleAndMulti(t *testing.T) {
	long := make([]byte, 30)
	for i := range long {
		long[i] = byte(i + 0x60)
	}
	fields, err := isotp.Segment(long, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	var frames []can.Frame
	frames = append(frames, can.MustFrame(0x7E0, []byte{0x02, 0x3E, 0x00, 0xAA, 0xAA, 0xAA, 0xAA, 0xAA}))
	frames = append(frames, framesFromData(0x7E8, fields)...)
	// A flow-control frame interleaves on the request ID.
	frames = append(frames, can.MustFrame(0x7E0, isotp.EncodeFlowControl(isotp.ContinueToSend, 0, 0)))

	msgs, stats := Assemble(frames)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want 2", len(msgs))
	}
	if !bytes.Equal(msgs[0].Payload, []byte{0x3E, 0x00}) {
		t.Fatalf("first message = % X", msgs[0].Payload)
	}
	if !bytes.Equal(msgs[1].Payload, long) {
		t.Fatalf("second message = % X", msgs[1].Payload)
	}
	if stats.ISOTPSingle != 1 || stats.ISOTPFirst != 1 || stats.ISOTPFlowControl != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.ISOTPMulti() != stats.ISOTPFirst+stats.ISOTPConsecutive {
		t.Fatal("ISOTPMulti mismatch")
	}
}

func TestAssembleVWTPLearnsChannelFromSetup(t *testing.T) {
	// Channel setup response on 0x201 announces data IDs 0x741 / 0x301.
	setup := can.MustFrame(0x201, []byte{0x00, 0xD0, 0x41, 0x07, 0x01, 0x03, 0x01})
	payload := []byte{0x61, 0x01, 0x01, 0xF1, 0x10}
	fields, err := vwtp.Segment(payload, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := []can.Frame{setup}
	frames = append(frames, framesFromData(0x301, fields)...)
	// An ACK frame must be screened out.
	frames = append(frames, can.MustFrame(0x741, vwtp.EncodeACK(1, true)))

	msgs, stats := Assemble(frames)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d, want 1 (stats %+v)", len(msgs), stats)
	}
	if !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("payload = % X", msgs[0].Payload)
	}
	if msgs[0].Transport != TransportVWTP {
		t.Fatalf("transport = %v", msgs[0].Transport)
	}
	if stats.VWTPControl < 2 { // setup + ACK
		t.Fatalf("stats = %+v", stats)
	}
	if stats.VWTPLast != 1 {
		t.Fatalf("VWTPLast = %d", stats.VWTPLast)
	}
}

func TestAssembleBMWExtendedAddressing(t *testing.T) {
	payload := []byte{0x62, 0xDB, 0xE5, 0x21, 0x07, 0x99, 0x01, 0x02}
	fields, err := bmwtp.Segment(0xF1, payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	frames := framesFromData(0x629, fields)
	msgs, stats := Assemble(frames)
	if len(msgs) != 1 {
		t.Fatalf("messages = %d (stats %+v)", len(msgs), stats)
	}
	if msgs[0].Transport != TransportBMW || msgs[0].Addr != 0xF1 {
		t.Fatalf("message = %+v", msgs[0])
	}
	if !bytes.Equal(msgs[0].Payload, payload) {
		t.Fatalf("payload = % X", msgs[0].Payload)
	}
	if stats.ISOTPFirst != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAssembleInterleavedIDs(t *testing.T) {
	// Two multi-frame responses interleaved on different IDs must both
	// reassemble (per-ID state).
	longA := make([]byte, 20)
	longB := make([]byte, 25)
	for i := range longA {
		longA[i] = byte(i)
	}
	for i := range longB {
		longB[i] = byte(0x80 + i)
	}
	fa, _ := isotp.Segment(longA, 0)
	fb, _ := isotp.Segment(longB, 0)
	var frames []can.Frame
	for i := 0; i < len(fa) || i < len(fb); i++ {
		if i < len(fa) {
			frames = append(frames, can.MustFrame(0x701, fa[i]))
		}
		if i < len(fb) {
			frames = append(frames, can.MustFrame(0x703, fb[i]))
		}
	}
	msgs, _ := Assemble(frames)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d, want 2", len(msgs))
	}
	got := map[uint32][]byte{}
	for _, m := range msgs {
		got[m.ID] = m.Payload
	}
	if !bytes.Equal(got[0x701], longA) || !bytes.Equal(got[0x703], longB) {
		t.Fatal("interleaved reassembly corrupted")
	}
}

func TestAssembleCountsErrors(t *testing.T) {
	frames := []can.Frame{
		can.MustFrame(0x700, []byte{0x22, 1, 2, 3, 4, 5, 6, 7}), // CF without FF
	}
	_, stats := Assemble(frames)
	if stats.AssemblyErrors != 1 {
		t.Fatalf("AssemblyErrors = %d", stats.AssemblyErrors)
	}
}

func TestTransportKindString(t *testing.T) {
	if TransportISOTP.String() != "ISO 15765-2" ||
		TransportVWTP.String() != "VW TP 2.0" ||
		TransportBMW.String() != "BMW extended" {
		t.Fatal("transport names")
	}
}

func TestIsRequestClassification(t *testing.T) {
	cases := []struct {
		payload []byte
		want    bool
	}{
		{[]byte{0x22, 0xF4, 0x0D}, true},
		{[]byte{0x62, 0xF4, 0x0D, 0x21}, false},
		{[]byte{0x21, 0x07}, true},
		{[]byte{0x61, 0x07, 0x01, 0xF1, 0x10}, false},
		{[]byte{0x2F, 0x09, 0x50, 0x02}, true},
		{[]byte{0x30, 0x15, 0x03}, true},
		{[]byte{0x7F, 0x22, 0x31}, false},
		{[]byte{0x01, 0x0C}, true},
		{[]byte{0x41, 0x0C, 0x1A, 0xF8}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsRequest(c.payload); got != c.want {
			t.Fatalf("IsRequest(% X) = %v", c.payload, got)
		}
	}
}
