package reverser

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dpreverser/internal/gp"
	"dpreverser/internal/ocr"
)

// Config tunes the pipeline.
type Config struct {
	// GP configures the symbolic-regression engine.
	GP gp.Config
	// PairMaxGap is the largest traffic-to-video timestamp distance that
	// still pairs an X observation with a Y sample.
	PairMaxGap time.Duration
	// MinPairs is the smallest usable (X, Y) dataset; streams with fewer
	// pairs are reported without a formula.
	MinPairs int
}

// DefaultConfig mirrors the paper's settings (1000 programs, 30
// generations) with pairing windows matched to the rig's poll cadence.
func DefaultConfig() Config {
	return Config{
		GP:         gp.DefaultConfig(),
		PairMaxGap: time.Second,
		MinPairs:   8,
	}
}

// ReversedESV is one recovered readable quantity.
type ReversedESV struct {
	Key StreamKey
	// Label is the semantic information recovered from the UI (§3.4).
	Label string
	// Unit is the displayed unit text, when one was recognised.
	Unit string
	// Enum marks state quantities for which no formula exists.
	Enum bool
	// Formula is the recovered decode formula over the stream's byte
	// variables (nil for enums and under-sampled streams).
	Formula *gp.Node
	// Fitness is the formula's trimmed MAE on the paired data.
	Fitness float64
	// Pairs is the (X, Y) dataset size the inference ran on.
	Pairs int
	// Generations the GP ran (0 when no inference happened).
	Generations int
	// Evaluations counts the GP fitness evaluations requested for this
	// stream; CacheHits of them were served by the engine's
	// cross-generation fitness cache and CacheMisses ran the compiled VM
	// (Evaluations = CacheHits + CacheMisses).
	Evaluations int
	CacheHits   int
	CacheMisses int
}

// FormulaString renders the recovered formula.
func (r ReversedESV) FormulaString() string {
	if r.Formula == nil {
		return ""
	}
	return r.Formula.String()
}

// ReversedECR is one recovered actuator-control record (§4.5).
type ReversedECR struct {
	// Service is 0x2F or 0x30.
	Service byte
	// ID is the DID (0x2F) or local identifier (0x30).
	ID uint16
	// State is the proprietary control-state bytes of the short-term
	// adjustment.
	State []byte
	// Label is the component name recovered from the active-test screen.
	Label string
	// SawFreeze / SawAdjust / SawReturn record which of the three-message
	// pattern's steps were observed answered positively.
	SawFreeze, SawAdjust, SawReturn bool
}

// PatternComplete reports whether the §4.5 control procedure was fully
// observed: the adjustment plus return-control always, and the freeze
// prologue for the UDS IO-control service.
func (r ReversedECR) PatternComplete() bool {
	if !r.SawAdjust || !r.SawReturn {
		return false
	}
	if r.Service == 0x2F {
		return r.SawFreeze
	}
	return true
}

// Result is the full output of reverse engineering one capture.
type Result struct {
	Car      string
	Model    string
	ToolName string

	// Offset is the estimated camera-to-CAN clock offset.
	Offset time.Duration
	// Stats is the Table 9 frame mix.
	Stats TrafficStats
	// ESVs are the recovered readable quantities (sorted by key).
	ESVs []ReversedESV
	// ECRs are the recovered control records.
	ECRs []ReversedECR
	// Messages is the assembled application-message count.
	Messages int
	// Evaluations, CacheHits and CacheMisses aggregate the per-stream GP
	// scoring counters over the whole run (Evaluations = CacheHits +
	// CacheMisses). They match the telemetry registry's
	// dpreverser_gp_* counters for a single-run registry exactly.
	Evaluations int
	CacheHits   int
	CacheMisses int
	// Streams holds the prepared per-stream inference inputs the ESVs were
	// recovered from, in extraction order. The experiment harness scores
	// alternative algorithms on exactly these datasets (§4.4) without
	// re-walking the capture.
	Streams []StreamData
	// Degraded reports every stream the pipeline salvaged around rather
	// than recovered cleanly: transport damage attributed by CAN ID,
	// pairing outliers rejected, and contained inference panics — in
	// deterministic order (assemble, pairing, then infer by stream index).
	// Empty on a clean capture. Under WithFaultPolicy(Strict), a non-empty
	// report fails the run with a *DegradedError instead.
	Degraded []StreamError
}

// session is one contiguous live-data recording (one ECU's data-stream
// screen, or the OBD screen).
type session struct {
	screenName string
	start, end time.Duration
	frames     []ocr.Frame
}

// splitSessions groups UI frames into contiguous recordings: a new session
// starts when the screen changes or the video gaps for more than two
// seconds (menu navigation between recordings).
func splitSessions(frames []ocr.Frame) []session {
	const gap = 2 * time.Second
	var out []session
	var cur *session
	for _, f := range frames {
		if f.ScreenName != "live-data" && f.ScreenName != "obd-live" {
			cur = nil
			continue
		}
		if cur == nil || f.ScreenName != cur.screenName || f.At-cur.end > gap {
			out = append(out, session{screenName: f.ScreenName, start: f.At, end: f.At})
			cur = &out[len(out)-1]
		}
		cur.frames = append(cur.frames, f)
		cur.end = f.At
	}
	return out
}

// aggregateByX collapses repeated observations of the same X vector to one
// (X, median Y) point.
func aggregateByX(xs [][]float64, ys []float64) *gp.Dataset {
	groups := map[string][]float64{}
	reprs := map[string][]float64{}
	var order []string
	for i, x := range xs {
		key := fmt.Sprintf("%v", x)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
			reprs[key] = x
		}
		groups[key] = append(groups[key], ys[i])
	}
	d := &gp.Dataset{}
	for _, key := range order {
		vals := groups[key]
		sort.Float64s(vals)
		med := vals[len(vals)/2]
		if len(vals)%2 == 0 {
			med = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
		}
		d.X = append(d.X, reprs[key])
		d.Y = append(d.Y, med)
	}
	return d
}

// typicalSpacing estimates the video sampling period as the median gap
// between successive samples.
func typicalSpacing(samples []ocr.Sample) time.Duration {
	if len(samples) < 3 {
		return 0
	}
	gaps := make([]time.Duration, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		if g := samples[i].At - samples[i-1].At; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}

// nearestSample finds the Y value displayed closest to t.
func nearestSample(samples []ocr.Sample, t time.Duration, maxGap time.Duration) (float64, bool) {
	best := maxGap + 1
	var y float64
	found := false
	for _, s := range samples {
		gap := s.At - t
		if gap < 0 {
			gap = -gap
		}
		if gap <= maxGap && gap < best {
			best, y, found = gap, s.Value, true
		}
	}
	return y, found
}

func majority(votes map[string]int) string {
	best, n := "", 0
	for s, c := range votes {
		if c > n || (c == n && s < best) {
			best, n = s, c
		}
	}
	return best
}

// rangeForLabel supplies the stage-one plausibility range from public
// knowledge about the recovered quantity name. Unknown quantities get a
// generous default and rely on the outlier stage.
func rangeForLabel(label string) (min, max float64) {
	l := strings.ToLower(label)
	type entry struct {
		substr   string
		min, max float64
	}
	table := []entry{
		{"engine speed", 0, 12000},
		{"engine load", 0, 110},
		{"fuel tank", 0, 110},
		{"vehicle speed", 0, 400},
		{"coolant", -60, 250},
		{"temperature", -60, 300},
		{"voltage", 0, 50},
		{"throttle", 0, 120},
		{"fuel level", 0, 110},
		{"pressure", 0, 10000},
		{"accelerator", 0, 120},
		{"duty", 0, 110},
		{"lambda", -150, 150},
		{"torque", -50, 50},
		{"acceleration", -30, 30},
		{"mass flow", 0, 1000},
		{"injection", 0, 1000},
		{"power", -500, 500},
		{"angle", -800, 800},
	}
	for _, e := range table {
		if strings.Contains(l, e.substr) {
			return e.min, e.max
		}
	}
	return -1e6, 1e6
}

// reverseECRs groups IO-control observations into per-actuator records and
// recovers their semantics from the active-test screens.
func reverseECRs(obs []ECRObservation, uiFrames []ocr.Frame) []ReversedECR {
	type ecrKey struct {
		service byte
		id      uint16
	}
	recs := map[ecrKey]*ReversedECR{}
	var order []ecrKey
	adjustAt := map[ecrKey]time.Duration{}
	for _, o := range obs {
		if !o.Positive {
			continue
		}
		k := ecrKey{service: o.Service, id: o.ID}
		r, ok := recs[k]
		if !ok {
			r = &ReversedECR{Service: o.Service, ID: o.ID}
			recs[k] = r
			order = append(order, k)
		}
		switch o.Param {
		case 0x02:
			r.SawFreeze = true
		case 0x03:
			r.SawAdjust = true
			r.State = append([]byte(nil), o.State...)
			adjustAt[k] = o.At
		case 0x00:
			r.SawReturn = true
		default:
			// Direct one-shot controls count as adjustments.
			r.SawAdjust = true
			r.State = append([]byte{o.Param}, o.State...)
			adjustAt[k] = o.At
		}
	}

	// Semantic labels: the active-run screen shows "Testing <name>"; the
	// record whose adjustment is nearest in time gets the name.
	type testingFrame struct {
		at   time.Duration
		name string
	}
	var testing []testingFrame
	for _, f := range uiFrames {
		if f.ScreenName != "active-run" {
			continue
		}
		for _, t := range f.Texts {
			if strings.HasPrefix(t.Content, "Testing ") {
				testing = append(testing, testingFrame{at: f.At, name: strings.TrimPrefix(t.Content, "Testing ")})
			}
		}
	}
	var out []ReversedECR
	for _, k := range order {
		r := recs[k]
		if at, ok := adjustAt[k]; ok {
			best := time.Duration(1 << 62)
			for _, tf := range testing {
				gap := tf.at - at
				if gap < 0 {
					gap = -gap
				}
				if gap < best {
					best = gap
					r.Label = tf.name
				}
			}
		}
		out = append(out, *r)
	}
	return out
}

// Summary renders a human-readable digest of the result.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s) via %s\n", r.Car, r.Model, r.ToolName)
	fmt.Fprintf(&b, "  %d messages assembled, clock offset %v\n", r.Messages, r.Offset)
	formulas, enums := 0, 0
	for _, e := range r.ESVs {
		if e.Enum {
			enums++
		} else if e.Formula != nil {
			formulas++
		}
	}
	fmt.Fprintf(&b, "  %d streams reversed (%d formulas, %d enums), %d control records\n",
		len(r.ESVs), formulas, enums, len(r.ECRs))
	return b.String()
}
