package reverser

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/faults"
	"dpreverser/internal/isotp"
	"dpreverser/internal/telemetry"
	"dpreverser/internal/vwtp"
)

// attackedTransfer runs two clean 40-byte ISO-TP transfers on id through
// the adversarial injector with the given class spec saturated. Two
// transfers, because real attack traffic recurs: the interleave signature
// deliberately requires more than one competing session.
func attackedTransfer(t *testing.T, id uint32, spec faults.Spec) []can.Frame {
	t.Helper()
	var in []can.Frame
	at := time.Duration(0)
	for rep := 0; rep < 2; rep++ {
		payload := make([]byte, 40)
		for i := range payload {
			payload[i] = byte(i + rep)
		}
		chunks, err := isotp.Segment(payload, 0xAA)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range chunks {
			f := can.MustFrame(id, d)
			f.Timestamp = at
			at += time.Millisecond
			in = append(in, f)
		}
	}
	return faults.New(spec, 7).Frames(in)
}

// TestScreenFramesPerClass: every attack class, saturated on a single
// transfer, yields exactly one finding with its canonical class label.
func TestScreenFramesPerClass(t *testing.T) {
	cases := []struct {
		class string
		spec  faults.Spec
	}{
		{AttackFCStarvation, faults.Spec{FCStarve: 1}},
		{AttackFirstFrameFlood, faults.Spec{FFFlood: 1}},
		{AttackInterleave, faults.Spec{Interleave: 1}},
		{AttackSessionStarvation, faults.Spec{SessionReplay: 1}},
		{AttackSlowDrip, faults.Spec{SlowDrip: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.class, func(t *testing.T) {
			findings := ScreenFrames(attackedTransfer(t, 0x7E8, tc.spec))
			if len(findings) != 1 {
				t.Fatalf("findings = %+v, want exactly one", findings)
			}
			f := findings[0]
			if f.ID != 0x7E8 || f.Class != tc.class || f.Detail == "" {
				t.Fatalf("finding = %+v, want class %s on 7E8 with detail", f, tc.class)
			}
		})
	}
}

// TestScreenFramesBMWFlood: the detector sees through extended
// addressing — address-prefixed forgeries classify the same way.
func TestScreenFramesBMWFlood(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := bmwtp.Segment(0x12, payload, 0xFF)
	if err != nil {
		t.Fatal(err)
	}
	var in []can.Frame
	for _, d := range chunks {
		in = append(in, can.MustFrame(0x612, d))
	}
	out := faults.New(faults.Spec{FFFlood: 1}, 7).Frames(in)
	findings := ScreenFrames(out)
	if len(findings) != 1 || findings[0].ID != 0x612 || findings[0].Class != AttackFirstFrameFlood {
		t.Fatalf("findings = %+v, want first-frame-flood on 612", findings)
	}
}

// TestScreenFramesVWTPStarvation: receiver-not-ready ACK bursts on a
// negotiated VW TP channel classify as flow-control starvation.
func TestScreenFramesVWTPStarvation(t *testing.T) {
	payload := make([]byte, 40)
	chunks, err := vwtp.Segment(payload, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	setup := can.MustFrame(vwtp.BroadcastID+0x01, []byte{0x00, 0xD0, 0x40, 0x07, 0x40, 0x07, 0x01})
	in := []can.Frame{setup}
	for _, d := range chunks {
		in = append(in, can.MustFrame(0x740, d))
	}
	out := faults.New(faults.Spec{FCStarve: 1}, 9).Frames(in)
	findings := ScreenFrames(out)
	if len(findings) != 1 || findings[0].ID != 0x740 || findings[0].Class != AttackFCStarvation {
		t.Fatalf("findings = %+v, want flow-control-starvation on 740", findings)
	}
}

// TestScreenFramesCleanTraffic: undamaged captures — single frames,
// completed multi-frame transfers, genuine flow control — never fire.
func TestScreenFramesCleanTraffic(t *testing.T) {
	var in []can.Frame
	payload := make([]byte, 40)
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		in = append(in, can.MustFrame(0x7E0, []byte{0x02, 0x10, byte(rep), 0xAA, 0xAA, 0xAA, 0xAA, 0xAA}))
		for i, d := range chunks {
			in = append(in, can.MustFrame(0x7E8, d))
			if i == 0 {
				// The tester's genuine continue-to-send flow control.
				in = append(in, can.MustFrame(0x7E0, isotp.EncodeFlowControl(isotp.ContinueToSend, 8, 10)))
			}
		}
	}
	if findings := ScreenFrames(in); findings != nil {
		t.Fatalf("clean capture flagged: %+v", findings)
	}
}

// TestDetectAttacksDefaultFaultsCalibration is the false-positive gate:
// the default random-fault preset (drops, bit flips) over repeated
// multi-frame traffic must never classify as an attack, across seeds.
func TestDetectAttacksDefaultFaultsCalibration(t *testing.T) {
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	var in []can.Frame
	at := time.Duration(0)
	for rep := 0; rep < 50; rep++ {
		in = append(in, can.MustFrame(0x7E0, []byte{0x02, 0x10, byte(rep), 0xAA, 0xAA, 0xAA, 0xAA, 0xAA}))
		for _, d := range chunks {
			f := can.MustFrame(0x7E8, d)
			f.Timestamp = at
			at += time.Millisecond
			in = append(in, f)
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		out := faults.New(faults.DefaultSpec(), seed).Frames(in)
		if findings := ScreenFrames(out); findings != nil {
			t.Errorf("seed %d: default faults misclassified as attack: %+v", seed, findings)
		}
	}
}

// TestPendingTransferCapEvicts: opening more simultaneous transfers than
// maxPendingTransfers evicts the oldest with a pending-overflow error,
// keeps pending state bounded, and still assembles later transfers.
func TestPendingTransferCapEvicts(t *testing.T) {
	a := newAssembler()
	var reasons []string
	a.onError = func(transport, reason string) {
		reasons = append(reasons, transport+"/"+reason)
	}
	// One first frame each on 100 distinct IDs: a cross-ID flood.
	n := maxPendingTransfers + 36
	for i := 0; i < n; i++ {
		a.feed(0, uint32(0x700+i), []byte{0x10, 40, 0, 1, 2, 3, 4, 5})
	}
	if got := len(a.pendingSet); got > maxPendingTransfers {
		t.Fatalf("pending transfers = %d, cap is %d", got, maxPendingTransfers)
	}
	evicted := n - maxPendingTransfers
	if a.stats.AssemblyErrors != evicted || a.stats.ISOTPErrors != evicted {
		t.Fatalf("stats = %+v, want %d eviction errors", a.stats, evicted)
	}
	if len(reasons) != evicted {
		t.Fatalf("observer saw %d errors, want %d", len(reasons), evicted)
	}
	for _, r := range reasons {
		if r != "isotp/pending-overflow" {
			t.Fatalf("unexpected error report %q", r)
		}
	}
	// The newest transfers survived the cap: finish one of them.
	last := uint32(0x700 + n - 1)
	payload := make([]byte, 40)
	for i := range payload {
		payload[i] = byte(i)
	}
	chunks, err := isotp.Segment(payload, 0xAA)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range chunks[1:] {
		a.feed(0, last, d)
	}
	assembled := func(id uint32) bool {
		for i := 0; i < a.ms.Len(); i++ {
			if a.ms.ID(i) == id && len(a.ms.Payload(i)) == 40 {
				return true
			}
		}
		return false
	}
	if !assembled(last) {
		t.Fatal("transfer under the cap no longer assembles")
	}
	// Evicted IDs resynchronise: a fresh transfer on the first (evicted)
	// ID assembles from idle.
	for _, d := range chunks {
		a.feed(0, 0x700, d)
	}
	if !assembled(0x700) {
		t.Fatal("evicted ID did not resynchronise")
	}
}

// TestStrictPolicyPreservesAttackAttribution: a strict-policy run over an
// attacked capture fails with *DegradedError whose partial result carries
// the per-stream attack attribution (Stage "attack", the class as Reason,
// the attacked ID in the detail), and the attack-signature metric family
// records the classification. Flow-control starvation leaves the victim
// payloads assembling, so the findings must attribute to real streams.
func TestStrictPolicyPreservesAttackAttribution(t *testing.T) {
	cap, _ := collect(t, "Car M")
	inj := faults.New(faults.Spec{FCStarve: 1}, 5)
	cap.Frames = inj.Frames(cap.Frames)
	attacked := inj.AttackedIDs()
	if len(attacked) == 0 {
		t.Fatal("saturated fc-starve attacked nothing; capture has no multi-frame transfers")
	}
	tel := telemetry.New(telemetry.NewManualClock(0))
	rv := New(WithConfig(testConfig()), WithFaultPolicy(Strict), WithTelemetry(tel))
	res, err := rv.Reverse(context.Background(), cap)
	if res != nil {
		t.Fatal("strict run returned a result alongside the error")
	}
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DegradedError", err)
	}
	if de.Result == nil {
		t.Fatal("DegradedError lost the partial result")
	}
	var attackEntries []StreamError
	for _, se := range de.Result.Degraded {
		if se.Stage == StageAttack {
			attackEntries = append(attackEntries, se)
		}
	}
	if len(attackEntries) == 0 {
		t.Fatal("no attack-stage entries on the strict partial result")
	}
	for id := range attacked {
		covered := false
		for _, se := range attackEntries {
			if se.Reason != AttackFCStarvation {
				t.Fatalf("attack entry with reason %q, want %q", se.Reason, AttackFCStarvation)
			}
			if se.Key.RespID == id || strings.Contains(se.Detail, fmt.Sprintf("%03X", id)) {
				covered = true
			}
		}
		if !covered {
			t.Errorf("attacked ID %03X missing from the attack attribution", id)
		}
	}
	// At least one finding must have attributed to a recovered stream —
	// hostile flow control does not cost the victim its payloads.
	onStream := false
	for _, se := range attackEntries {
		if se.Key != (StreamKey{}) {
			onStream = true
		}
	}
	if !onStream {
		t.Error("no attack entry attributed to a recovered stream")
	}
	cv := tel.Metrics.CounterVec(telemetry.MetricAttackSignatures, "", "class")
	if got := cv.With(AttackFCStarvation).Value(); got < 1 {
		t.Errorf("attack-signature metric = %v, want >= 1", got)
	}
}

// TestAttackDegradedAttribution: findings map onto the streams riding
// the attacked IDs; orphan findings surface with a zero key.
func TestAttackDegradedAttribution(t *testing.T) {
	findings := []AttackFinding{
		{ID: 0x7E8, Class: AttackSlowDrip, Detail: "1 transfer opened, 0 completed"},
		{ID: 0x7F1, Class: AttackFirstFrameFlood, Detail: "3 first frames"},
	}
	streams := []StreamData{
		{Key: StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 1}, Label: "esv-1"},
		{Key: StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 2}, Label: "esv-2"},
	}
	out := attackDegraded(findings, streams)
	if len(out) != 3 {
		t.Fatalf("degraded = %+v, want 3 entries", out)
	}
	for _, se := range out[:2] {
		if se.Stage != StageAttack || se.Reason != AttackSlowDrip || se.Key.RespID != 0x7E8 {
			t.Fatalf("attributed entry = %+v", se)
		}
	}
	orphan := out[2]
	if orphan.Key != (StreamKey{}) || orphan.Reason != AttackFirstFrameFlood {
		t.Fatalf("orphan entry = %+v", orphan)
	}
	if want := fmt.Sprintf("ID %03X", 0x7F1); !strings.Contains(orphan.Detail, want) {
		t.Fatalf("orphan detail %q missing %q", orphan.Detail, want)
	}
}
