// Package reverser implements DP-Reverser's analysis pipeline (§3.2-§3.5):
// diagnostic-frames analysis (screening, payload assembly, field
// extraction), screenshot analysis, request-message semantics recovery, and
// response-message formula inference. Its only inputs are the artifacts the
// cyber-physical rig captures — CAN frames, OCR'd UI video, and the click
// log. It never touches the simulated tools' or ECUs' proprietary tables;
// those exist solely as ground truth for the experiment harness.
package reverser

import (
	"bytes"
	"context"
	"time"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/colstore"
	"dpreverser/internal/isotp"
	"dpreverser/internal/vwtp"
)

// TransportKind classifies the transport carrying a CAN ID's traffic.
type TransportKind int

// Transport kinds discovered from traffic.
const (
	TransportISOTP TransportKind = iota
	TransportVWTP
	TransportBMW
)

// String implements fmt.Stringer.
func (t TransportKind) String() string {
	switch t {
	case TransportVWTP:
		return "VW TP 2.0"
	case TransportBMW:
		return "BMW extended"
	default:
		return "ISO 15765-2"
	}
}

// Message is one assembled application-layer payload.
type Message struct {
	At time.Duration
	// ID is the CAN identifier the message arrived on.
	ID uint32
	// Addr is the BMW extended address when Transport == TransportBMW.
	Addr      byte
	Transport TransportKind
	Payload   []byte
}

// TrafficStats reproduces Table 9's frame-mix measurements.
type TrafficStats struct {
	// ISO-TP frame counts (single, first, consecutive, flow control).
	ISOTPSingle, ISOTPFirst, ISOTPConsecutive, ISOTPFlowControl int
	// VW TP 2.0 data-frame counts: frames that must wait for more frames
	// vs. final frames of a message (the paper's 75.2% / 24.8% split), and
	// the non-data frames the screening step removes.
	VWTPWaiting, VWTPLast, VWTPControl int
	// Total frames seen.
	Total int
	// AssemblyErrors counts malformed or out-of-order transport frames
	// across all transports; the three fields below break it down
	// (AssemblyErrors = ISOTPErrors + VWTPErrors + BMWErrors).
	AssemblyErrors int
	ISOTPErrors    int
	VWTPErrors     int
	BMWErrors      int
	// ErrorsByID maps each CAN ID to its reassembly failure count, so the
	// degradation report can attribute damage to the streams riding that
	// ID. Nil until the first error; excluded from the JSON report (the
	// attribution lands on Result.Degraded instead).
	ErrorsByID map[uint32]int `json:"-"`
	// AttackProfiles accumulates per-ID attack-signature features for
	// DetectAttacks. Nil until the first multi-frame or flow-control
	// event; excluded from the JSON report (classified findings land on
	// Result.Degraded instead).
	AttackProfiles map[uint32]*AttackProfile `json:"-"`
}

// bumpID records one reassembly failure against a CAN ID.
func (s *TrafficStats) bumpID(id uint32) {
	if s.ErrorsByID == nil {
		s.ErrorsByID = map[uint32]int{}
	}
	s.ErrorsByID[id]++
}

// ISOTPMulti reports first+consecutive frames (Table 9's "Multi Frames").
func (s TrafficStats) ISOTPMulti() int { return s.ISOTPFirst + s.ISOTPConsecutive }

// AssemblyObserver receives one call per reassembly failure with the
// transport name ("isotp", "vwtp", "bmwtp") and the stable reason label
// from that transport's Reason classifier. The telemetry wiring feeds
// these into the dpreverser_transport_errors_total counter.
type AssemblyObserver func(transport, reason string)

// assembler reconstructs application messages from a raw capture. It
// appends completed messages straight into a columnar store: the
// reassemblers hand back zero-copy views of their pooled scratch, and the
// store's Append is the single copy each payload costs.
type assembler struct {
	stats   TrafficStats
	onError AssemblyObserver
	// vwtpIDs marks CAN IDs negotiated through observed channel setup.
	vwtpIDs map[uint32]bool
	// reassembly state per (transport-specific) stream key.
	isotp map[uint32]*isotp.Reassembler
	vw    map[uint32]*vwtp.Reassembler
	bmw   map[uint32]map[byte]*isotp.Reassembler

	// pending bounds in-flight multi-frame state: pendingSet is
	// authoritative, pending remembers insertion order (it may hold
	// stale entries, skipped at eviction time).
	pending    []pendingKey
	pendingSet map[pendingKey]bool

	ms *colstore.Messages
}

// pendingKey names one in-flight transfer for the pending-state cap.
type pendingKey struct {
	id   uint32
	addr byte
	kind uint8 // a TransportKind
}

func newAssembler() *assembler {
	return &assembler{
		vwtpIDs:    map[uint32]bool{},
		isotp:      map[uint32]*isotp.Reassembler{},
		vw:         map[uint32]*vwtp.Reassembler{},
		bmw:        map[uint32]map[byte]*isotp.Reassembler{},
		pendingSet: map[pendingKey]bool{},
		ms:         colstore.NewMessages(0, 0),
	}
}

// prof returns the attack profile for id, creating it lazily.
//
//dplint:hotpath assemble-feed
func (a *assembler) prof(id uint32) *AttackProfile {
	p := a.stats.AttackProfiles[id]
	if p == nil {
		if a.stats.AttackProfiles == nil {
			a.stats.AttackProfiles = map[uint32]*AttackProfile{}
		}
		p = &AttackProfile{}
		a.stats.AttackProfiles[id] = p
	}
	return p
}

// isBMWID recognises the BMW extended-addressing convention: the tool
// transmits on 0x6F1 and ECUs answer on 0x600+address.
func isBMWID(id uint32) bool {
	return id == 0x6F1 || (id >= 0x600 && id <= 0x6EF)
}

// FramesColumnar transposes a raw capture into a columnar frame store —
// the one array-of-structs → column-major copy the pipeline performs,
// after which every stage reads slab views.
func FramesColumnar(frames []can.Frame) *colstore.Frames {
	total := 0
	for i := range frames {
		total += frames[i].Len
	}
	fr := colstore.NewFrames(len(frames), total)
	for i := range frames {
		fr.Append(frames[i].ID, frames[i].Timestamp, frames[i].Payload())
	}
	return fr
}

// Assemble processes a capture in order and returns the application
// messages. Channel-setup frames teach it which IDs carry VW TP 2.0.
func Assemble(frames []can.Frame) ([]Message, TrafficStats) {
	return AssembleObserved(frames, nil)
}

// AssembleObserved is Assemble with a per-error observer (nil is allowed
// and equivalent to Assemble).
func AssembleObserved(frames []can.Frame, obs AssemblyObserver) ([]Message, TrafficStats) {
	messages, stats, _ := AssembleContext(context.Background(), frames, obs)
	return messages, stats
}

// assembleCheckEvery is how often the assembly loop polls ctx: captures run
// to millions of frames, so the loop must notice cancellation without
// paying a ctx.Err() per frame.
const assembleCheckEvery = 1024

// AssembleContext is AssembleObserved with cooperative cancellation: the
// frame loop checks ctx periodically and returns ctx's error (plus the
// stats gathered so far) when the caller gives up mid-capture.
//
// It materialises one owned Message (with a fresh payload copy) per
// assembled message; the pipeline itself runs on AssembleColumnar, which
// keeps everything in the columnar store.
func AssembleContext(ctx context.Context, frames []can.Frame, obs AssemblyObserver) ([]Message, TrafficStats, error) {
	a := newAssembler()
	a.onError = obs
	for i, f := range frames {
		if i%assembleCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, a.stats, err
			}
		}
		a.feed(f.Timestamp, f.ID, f.Payload())
	}
	a.finish()
	a.ms.SortStableByTime()
	messages := make([]Message, a.ms.Len())
	for i := range messages {
		messages[i] = Message{
			At: a.ms.At(i), ID: a.ms.ID(i), Addr: a.ms.Addr(i),
			Transport: TransportKind(a.ms.Transport(i)),
			Payload:   append([]byte(nil), a.ms.Payload(i)...),
		}
	}
	return messages, a.stats, nil
}

// AssembleColumnar is the pipeline's assembly entry: it screens and
// reassembles a columnar frame store into a columnar message store,
// sorted stably by completion time. No per-message []byte is
// materialised — payload bytes move straight from the reassemblers'
// pooled scratch into the message slab, and every downstream consumer
// reads zero-copy views.
func AssembleColumnar(ctx context.Context, frames *colstore.Frames, obs AssemblyObserver) (*colstore.Messages, TrafficStats, error) {
	a := newAssembler()
	a.onError = obs
	for i, n := 0, frames.Len(); i < n; i++ {
		if i%assembleCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, a.stats, err
			}
		}
		a.feed(frames.At(i), frames.ID(i), frames.Payload(i))
	}
	a.finish()
	a.ms.SortStableByTime()
	return a.ms, a.stats, nil
}

//dplint:hotpath assemble-feed
func (a *assembler) feed(at time.Duration, id uint32, data []byte) {
	a.stats.Total++
	if len(data) == 0 {
		return
	}
	// VW TP 2.0 channel setup on the broadcast range teaches us the
	// negotiated data IDs (§3.2: screening removes these control frames).
	if id >= vwtp.BroadcastID && id < vwtp.BroadcastID+0x100 {
		a.stats.VWTPControl++
		if len(data) >= 7 && data[1] == 0xD0 {
			ecuRx := uint32(data[2]) | uint32(data[3])<<8
			ecuTx := uint32(data[4]) | uint32(data[5])<<8
			a.vwtpIDs[ecuRx] = true
			a.vwtpIDs[ecuTx] = true
		}
		return
	}
	switch {
	case a.vwtpIDs[id]:
		a.feedVWTP(at, id, data)
	case isBMWID(id):
		a.feedBMW(at, id, data)
	default:
		a.feedISOTP(at, id, data)
	}
}

//dplint:hotpath assemble-feed
func (a *assembler) feedISOTP(at time.Duration, id uint32, data []byte) {
	kind := isotp.Classify(data)
	switch kind {
	case isotp.SingleFrame:
		a.stats.ISOTPSingle++
	case isotp.FirstFrame:
		a.stats.ISOTPFirst++
	case isotp.ConsecutiveFrame:
		a.stats.ISOTPConsecutive++
	case isotp.FlowControlFrame:
		a.stats.ISOTPFlowControl++
		a.observeFC(id, data) // screened out: carries no payload
		return
	default:
		return
	}
	r := a.isotp[id]
	if r == nil {
		r = &isotp.Reassembler{}
		a.isotp[id] = r
	}
	a.feedISOTPInner(at, id, 0, uint8(TransportISOTP), kind, r, data)
}

// feedISOTPInner drives one ISO-TP state machine (plain or under a BMW
// address prefix) and maintains the ID's attack profile around it.
//
//dplint:hotpath assemble-feed
func (a *assembler) feedISOTPInner(at time.Duration, id uint32, addr byte, transport uint8, kind isotp.FrameType, r *isotp.Reassembler, data []byte) {
	if kind == isotp.FirstFrame {
		p := a.prof(id)
		if ffLength(data) >= floodLengthFloor {
			p.MaxLenFF++
		}
		if r.InFlight() {
			p.observeRestart(data)
		}
	}
	res, err := r.FeedView(data)
	switch {
	case err != nil:
		a.stats.AssemblyErrors++
		a.stats.bumpID(id)
		if transport == uint8(TransportBMW) {
			a.stats.BMWErrors++
			a.reportError("bmwtp", bmwtp.Reason(err))
		} else {
			a.stats.ISOTPErrors++
			a.reportError("isotp", isotp.Reason(err))
		}
		if kind == isotp.ConsecutiveFrame {
			a.prof(id).SeqErrors++
		}
	case res.Message != nil:
		a.ms.Append(at, id, addr, transport, res.Message)
		if kind == isotp.ConsecutiveFrame {
			p := a.prof(id)
			p.MFCompleted++
			p.cfSince = 0
		}
	default:
		if kind == isotp.ConsecutiveFrame {
			a.prof(id).cfSince++
		}
	}
	if kind == isotp.FirstFrame && err == nil {
		p := a.prof(id)
		p.MFStarted++
		p.cfSince = 0
		p.lastFF = append(p.lastFF[:0], data...)
	}
	a.syncPending(pendingKey{id: id, addr: addr, kind: transport}, r.InFlight())
}

// observeRestart classifies one first frame that arrived while a
// transfer was already in flight on the ID.
//
//dplint:hotpath assemble-feed
func (p *AttackProfile) observeRestart(ff []byte) {
	if len(p.lastFF) > 0 && bytes.Equal(p.lastFF, ff) {
		p.RestartsIdentical++
		if p.cfSince > 0 {
			p.RestartsIdenticalFed++
		} else {
			p.RestartsIdenticalBarren++
		}
	} else if ffLength(ff) != ffLength(p.lastFF) {
		p.RestartsNewLength++
	}
	if p.cfSince == 0 {
		p.RestartsBarren++
	}
}

// observeFC screens one ISO-TP flow-control frame for hostile shapes:
// wait states, overflow aborts, and maximum/reserved-STmin throttles —
// the frames a flow-control starvation attack floods.
//
//dplint:hotpath assemble-feed
func (a *assembler) observeFC(id uint32, data []byte) {
	fc, err := isotp.DecodeFlowControl(data)
	if err != nil {
		return
	}
	if fc.Status == isotp.Wait || fc.Status == isotp.Overflow || fc.STmin >= 127*time.Millisecond {
		a.prof(id).HostileFC++
	}
}

//dplint:hotpath assemble-feed
func (a *assembler) feedVWTP(at time.Duration, id uint32, data []byte) {
	switch vwtp.Classify(data) {
	case vwtp.KindData:
		if vwtp.IsLastData(data) {
			a.stats.VWTPLast++
		} else {
			a.stats.VWTPWaiting++
		}
	case vwtp.KindACK:
		a.stats.VWTPControl++
		if vwtp.IsNotReady(data) {
			// Receiver-not-ready is TP 2.0's wait state: a hostile peer
			// floods it to stall the sender (flow-control starvation).
			a.prof(id).HostileFC++
		}
		return
	case vwtp.KindChannelParams, vwtp.KindDisconnect, vwtp.KindChannelSetup:
		a.stats.VWTPControl++
		return
	default:
		return
	}
	r := a.vw[id]
	if r == nil {
		r = &vwtp.Reassembler{}
		a.vw[id] = r
	}
	if !r.InFlight() {
		a.prof(id).MFStarted++
	}
	res, err := r.FeedView(data)
	switch {
	case err != nil:
		a.stats.AssemblyErrors++
		a.stats.VWTPErrors++
		a.stats.bumpID(id)
		a.reportError("vwtp", vwtp.Reason(err))
		a.prof(id).SeqErrors++
	case res.Message != nil:
		a.ms.Append(at, id, 0, uint8(TransportVWTP), res.Message)
		a.prof(id).MFCompleted++
	}
	a.syncPending(pendingKey{id: id, kind: uint8(TransportVWTP)}, r.InFlight())
}

//dplint:hotpath assemble-feed
func (a *assembler) feedBMW(at time.Duration, id uint32, data []byte) {
	if len(data) < 2 {
		return
	}
	addr := data[0]
	kind := isotp.Classify(data[1:])
	switch kind {
	case isotp.SingleFrame:
		a.stats.ISOTPSingle++
	case isotp.FirstFrame:
		a.stats.ISOTPFirst++
	case isotp.ConsecutiveFrame:
		a.stats.ISOTPConsecutive++
	case isotp.FlowControlFrame:
		a.stats.ISOTPFlowControl++
		a.observeFC(id, data[1:])
		return
	default:
		return
	}
	byAddr := a.bmw[id]
	if byAddr == nil {
		byAddr = map[byte]*isotp.Reassembler{}
		a.bmw[id] = byAddr
	}
	r := byAddr[addr]
	if r == nil {
		// Extended addressing shrinks single frames to 6 bytes.
		r = &isotp.Reassembler{MinMultiFrameLen: 7}
		byAddr[addr] = r
	}
	a.feedISOTPInner(at, id, addr, uint8(TransportBMW), kind, r, data[1:])
}

// syncPending keeps the in-flight transfer set consistent with one
// reassembler's state after a feed, evicting the oldest pending
// transfer when hostile traffic pushes the set past the cap.
//
//dplint:hotpath assemble-feed
func (a *assembler) syncPending(key pendingKey, inFlight bool) {
	if !inFlight {
		if a.pendingSet[key] {
			delete(a.pendingSet, key)
		}
		return
	}
	if a.pendingSet[key] {
		return
	}
	a.pendingSet[key] = true
	a.pending = append(a.pending, key)
	for len(a.pendingSet) > maxPendingTransfers {
		a.evictOldestPending()
	}
}

// evictOldestPending resets the longest-pending in-flight transfer and
// records the eviction as an assembly error with the stable reason
// "pending-overflow", attributed to the evicted ID.
func (a *assembler) evictOldestPending() {
	for len(a.pending) > 0 {
		key := a.pending[0]
		a.pending = a.pending[1:]
		if !a.pendingSet[key] {
			continue // stale: the transfer completed or aborted earlier
		}
		delete(a.pendingSet, key)
		transport := "isotp"
		switch TransportKind(key.kind) {
		case TransportVWTP:
			transport = "vwtp"
			if r := a.vw[key.id]; r != nil {
				r.Reset()
			}
			a.stats.VWTPErrors++
		case TransportBMW:
			transport = "bmwtp"
			if r := a.bmw[key.id][key.addr]; r != nil {
				r.Reset()
			}
			a.stats.BMWErrors++
		default:
			if r := a.isotp[key.id]; r != nil {
				r.Reset()
			}
			a.stats.ISOTPErrors++
		}
		a.stats.AssemblyErrors++
		a.stats.bumpID(key.id)
		a.prof(key.id).Evicted++
		a.reportError(transport, "pending-overflow")
		return
	}
}

// finish marks transfers still pending when the capture ended — the
// no-completion tail a slow-drip attack leaves behind.
func (a *assembler) finish() {
	for id, r := range a.isotp {
		if r.InFlight() {
			a.prof(id).InFlightAtEnd = true
		}
	}
	for id, r := range a.vw {
		if r.InFlight() {
			a.prof(id).InFlightAtEnd = true
		}
	}
	for id, byAddr := range a.bmw {
		for _, r := range byAddr {
			if r.InFlight() {
				a.prof(id).InFlightAtEnd = true
			}
		}
	}
}

// reportError forwards one reassembly failure to the observer, if any.
func (a *assembler) reportError(transport, reason string) {
	if a.onError != nil {
		a.onError(transport, reason)
	}
}
