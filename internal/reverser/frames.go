// Package reverser implements DP-Reverser's analysis pipeline (§3.2-§3.5):
// diagnostic-frames analysis (screening, payload assembly, field
// extraction), screenshot analysis, request-message semantics recovery, and
// response-message formula inference. Its only inputs are the artifacts the
// cyber-physical rig captures — CAN frames, OCR'd UI video, and the click
// log. It never touches the simulated tools' or ECUs' proprietary tables;
// those exist solely as ground truth for the experiment harness.
package reverser

import (
	"context"
	"sort"
	"time"

	"dpreverser/internal/bmwtp"
	"dpreverser/internal/can"
	"dpreverser/internal/isotp"
	"dpreverser/internal/vwtp"
)

// TransportKind classifies the transport carrying a CAN ID's traffic.
type TransportKind int

// Transport kinds discovered from traffic.
const (
	TransportISOTP TransportKind = iota
	TransportVWTP
	TransportBMW
)

// String implements fmt.Stringer.
func (t TransportKind) String() string {
	switch t {
	case TransportVWTP:
		return "VW TP 2.0"
	case TransportBMW:
		return "BMW extended"
	default:
		return "ISO 15765-2"
	}
}

// Message is one assembled application-layer payload.
type Message struct {
	At time.Duration
	// ID is the CAN identifier the message arrived on.
	ID uint32
	// Addr is the BMW extended address when Transport == TransportBMW.
	Addr      byte
	Transport TransportKind
	Payload   []byte
}

// TrafficStats reproduces Table 9's frame-mix measurements.
type TrafficStats struct {
	// ISO-TP frame counts (single, first, consecutive, flow control).
	ISOTPSingle, ISOTPFirst, ISOTPConsecutive, ISOTPFlowControl int
	// VW TP 2.0 data-frame counts: frames that must wait for more frames
	// vs. final frames of a message (the paper's 75.2% / 24.8% split), and
	// the non-data frames the screening step removes.
	VWTPWaiting, VWTPLast, VWTPControl int
	// Total frames seen.
	Total int
	// AssemblyErrors counts malformed or out-of-order transport frames
	// across all transports; the three fields below break it down
	// (AssemblyErrors = ISOTPErrors + VWTPErrors + BMWErrors).
	AssemblyErrors int
	ISOTPErrors    int
	VWTPErrors     int
	BMWErrors      int
	// ErrorsByID maps each CAN ID to its reassembly failure count, so the
	// degradation report can attribute damage to the streams riding that
	// ID. Nil until the first error; excluded from the JSON report (the
	// attribution lands on Result.Degraded instead).
	ErrorsByID map[uint32]int `json:"-"`
}

// bumpID records one reassembly failure against a CAN ID.
func (s *TrafficStats) bumpID(id uint32) {
	if s.ErrorsByID == nil {
		s.ErrorsByID = map[uint32]int{}
	}
	s.ErrorsByID[id]++
}

// ISOTPMulti reports first+consecutive frames (Table 9's "Multi Frames").
func (s TrafficStats) ISOTPMulti() int { return s.ISOTPFirst + s.ISOTPConsecutive }

// AssemblyObserver receives one call per reassembly failure with the
// transport name ("isotp", "vwtp", "bmwtp") and the stable reason label
// from that transport's Reason classifier. The telemetry wiring feeds
// these into the dpreverser_transport_errors_total counter.
type AssemblyObserver func(transport, reason string)

// assembler reconstructs application messages from a raw capture.
type assembler struct {
	stats   TrafficStats
	onError AssemblyObserver
	// vwtpIDs marks CAN IDs negotiated through observed channel setup.
	vwtpIDs map[uint32]bool
	// reassembly state per (transport-specific) stream key.
	isotp map[uint32]*isotp.Reassembler
	vw    map[uint32]*vwtp.Reassembler
	bmw   map[uint32]map[byte]*isotp.Reassembler

	messages []Message
}

func newAssembler() *assembler {
	return &assembler{
		vwtpIDs: map[uint32]bool{},
		isotp:   map[uint32]*isotp.Reassembler{},
		vw:      map[uint32]*vwtp.Reassembler{},
		bmw:     map[uint32]map[byte]*isotp.Reassembler{},
	}
}

// isBMWID recognises the BMW extended-addressing convention: the tool
// transmits on 0x6F1 and ECUs answer on 0x600+address.
func isBMWID(id uint32) bool {
	return id == 0x6F1 || (id >= 0x600 && id <= 0x6EF)
}

// Assemble processes a capture in order and returns the application
// messages. Channel-setup frames teach it which IDs carry VW TP 2.0.
func Assemble(frames []can.Frame) ([]Message, TrafficStats) {
	return AssembleObserved(frames, nil)
}

// AssembleObserved is Assemble with a per-error observer (nil is allowed
// and equivalent to Assemble).
func AssembleObserved(frames []can.Frame, obs AssemblyObserver) ([]Message, TrafficStats) {
	messages, stats, _ := AssembleContext(context.Background(), frames, obs)
	return messages, stats
}

// assembleCheckEvery is how often the assembly loop polls ctx: captures run
// to millions of frames, so the loop must notice cancellation without
// paying a ctx.Err() per frame.
const assembleCheckEvery = 1024

// AssembleContext is AssembleObserved with cooperative cancellation: the
// frame loop checks ctx periodically and returns ctx's error (plus the
// stats gathered so far) when the caller gives up mid-capture.
func AssembleContext(ctx context.Context, frames []can.Frame, obs AssemblyObserver) ([]Message, TrafficStats, error) {
	a := newAssembler()
	a.onError = obs
	for i, f := range frames {
		if i%assembleCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, a.stats, err
			}
		}
		a.feed(f)
	}
	sort.SliceStable(a.messages, func(i, j int) bool { return a.messages[i].At < a.messages[j].At })
	return a.messages, a.stats, nil
}

func (a *assembler) feed(f can.Frame) {
	a.stats.Total++
	data := f.Payload()
	if len(data) == 0 {
		return
	}
	// VW TP 2.0 channel setup on the broadcast range teaches us the
	// negotiated data IDs (§3.2: screening removes these control frames).
	if f.ID >= vwtp.BroadcastID && f.ID < vwtp.BroadcastID+0x100 {
		a.stats.VWTPControl++
		if len(data) >= 7 && data[1] == 0xD0 {
			ecuRx := uint32(data[2]) | uint32(data[3])<<8
			ecuTx := uint32(data[4]) | uint32(data[5])<<8
			a.vwtpIDs[ecuRx] = true
			a.vwtpIDs[ecuTx] = true
		}
		return
	}
	switch {
	case a.vwtpIDs[f.ID]:
		a.feedVWTP(f, data)
	case isBMWID(f.ID):
		a.feedBMW(f, data)
	default:
		a.feedISOTP(f, data)
	}
}

func (a *assembler) feedISOTP(f can.Frame, data []byte) {
	switch isotp.Classify(data) {
	case isotp.SingleFrame:
		a.stats.ISOTPSingle++
	case isotp.FirstFrame:
		a.stats.ISOTPFirst++
	case isotp.ConsecutiveFrame:
		a.stats.ISOTPConsecutive++
	case isotp.FlowControlFrame:
		a.stats.ISOTPFlowControl++
		return // screened out: carries no payload
	default:
		return
	}
	r := a.isotp[f.ID]
	if r == nil {
		r = &isotp.Reassembler{}
		a.isotp[f.ID] = r
	}
	res, err := r.Feed(data)
	if err != nil {
		a.stats.AssemblyErrors++
		a.stats.ISOTPErrors++
		a.stats.bumpID(f.ID)
		a.reportError("isotp", isotp.Reason(err))
		return
	}
	if res.Message != nil {
		a.messages = append(a.messages, Message{
			At: f.Timestamp, ID: f.ID, Transport: TransportISOTP, Payload: res.Message,
		})
	}
}

func (a *assembler) feedVWTP(f can.Frame, data []byte) {
	switch vwtp.Classify(data) {
	case vwtp.KindData:
		if vwtp.IsLastData(data) {
			a.stats.VWTPLast++
		} else {
			a.stats.VWTPWaiting++
		}
	case vwtp.KindACK, vwtp.KindChannelParams, vwtp.KindDisconnect, vwtp.KindChannelSetup:
		a.stats.VWTPControl++
		return
	default:
		return
	}
	r := a.vw[f.ID]
	if r == nil {
		r = &vwtp.Reassembler{}
		a.vw[f.ID] = r
	}
	res, err := r.Feed(data)
	if err != nil {
		a.stats.AssemblyErrors++
		a.stats.VWTPErrors++
		a.stats.bumpID(f.ID)
		a.reportError("vwtp", vwtp.Reason(err))
		return
	}
	if res.Message != nil {
		a.messages = append(a.messages, Message{
			At: f.Timestamp, ID: f.ID, Transport: TransportVWTP, Payload: res.Message,
		})
	}
}

func (a *assembler) feedBMW(f can.Frame, data []byte) {
	if len(data) < 2 {
		return
	}
	addr := data[0]
	switch isotp.Classify(data[1:]) {
	case isotp.SingleFrame:
		a.stats.ISOTPSingle++
	case isotp.FirstFrame:
		a.stats.ISOTPFirst++
	case isotp.ConsecutiveFrame:
		a.stats.ISOTPConsecutive++
	case isotp.FlowControlFrame:
		a.stats.ISOTPFlowControl++
		return
	default:
		return
	}
	byAddr := a.bmw[f.ID]
	if byAddr == nil {
		byAddr = map[byte]*isotp.Reassembler{}
		a.bmw[f.ID] = byAddr
	}
	r := byAddr[addr]
	if r == nil {
		// Extended addressing shrinks single frames to 6 bytes.
		r = &isotp.Reassembler{MinMultiFrameLen: 7}
		byAddr[addr] = r
	}
	res, err := r.Feed(data[1:])
	if err != nil {
		a.stats.AssemblyErrors++
		a.stats.BMWErrors++
		a.stats.bumpID(f.ID)
		a.reportError("bmwtp", bmwtp.Reason(err))
		return
	}
	if res.Message != nil {
		a.messages = append(a.messages, Message{
			At: f.Timestamp, ID: f.ID, Addr: addr, Transport: TransportBMW, Payload: res.Message,
		})
	}
}

// reportError forwards one reassembly failure to the observer, if any.
func (a *assembler) reportError(transport, reason string) {
	if a.onError != nil {
		a.onError(transport, reason)
	}
}
