package reverser

import (
	"fmt"
	"sort"

	"dpreverser/internal/can"
)

// Attack-class labels, shared with the adversarial injector in
// internal/faults. They are stable API: each doubles as the Reason of
// the StreamError attributing an attacked stream and as the "class"
// label of the dpreverser_attack_signatures_total metric family.
const (
	AttackFCStarvation      = "flow-control-starvation"
	AttackFirstFrameFlood   = "first-frame-flood"
	AttackInterleave        = "interleaved-transfer"
	AttackSessionStarvation = "session-starvation"
	AttackSlowDrip          = "slow-drip"
)

// StageAttack is the StreamError stage the detector reports under.
const StageAttack = "attack"

// floodLengthFloor is the announced first-frame length at which a
// transfer counts as memory-exhaustion-sized: no diagnostic response in
// this pipeline approaches half the 12-bit ISO-TP maximum.
const floodLengthFloor = 0x800

// maxPendingTransfers bounds how many multi-frame transfers the
// assembler will hold in flight at once. Beyond it the oldest pending
// transfer is evicted (reported as a "pending-overflow" assembly
// error), so a first-frame flood across many IDs cannot grow
// reassembly state without limit.
const maxPendingTransfers = 64

// AttackProfile accumulates per-CAN-ID transport behaviour that only
// hostile traffic exhibits. The assembler fills one per ID alongside
// TrafficStats; DetectAttacks turns them into classified findings.
type AttackProfile struct {
	// HostileFC counts hostile flow-control frames: ISO-TP wait states,
	// overflow aborts, maximum-STmin lockups, and VW TP 2.0
	// receiver-not-ready ACKs.
	HostileFC int
	// MaxLenFF counts first frames announcing >= floodLengthFloor bytes.
	MaxLenFF int
	// RestartsIdentical counts first frames that arrived mid-transfer and
	// were byte-identical to the in-flight transfer's first frame.
	// RestartsIdenticalFed is the subset where at least one consecutive
	// frame had already been consumed (a session genuinely restarted);
	// RestartsIdenticalBarren the subset where none had — back-to-back
	// identical first frames, the shape only a replay injector produces
	// (a benign re-poll of a constant value after a dropped final
	// consecutive frame always restarts fed).
	RestartsIdentical, RestartsIdenticalFed, RestartsIdenticalBarren int
	// RestartsNewLength counts mid-transfer first frames announcing a
	// different payload length than the transfer they displaced — the
	// shape of a competing interleaved session.
	RestartsNewLength int
	// RestartsBarren counts mid-transfer first frames that arrived before
	// any consecutive frame was consumed: the displaced transfer opened
	// and then delivered nothing.
	RestartsBarren int
	// SeqErrors counts consecutive-frame reassembly errors on the ID.
	SeqErrors int
	// MFStarted / MFCompleted bracket multi-frame transfers on the ID.
	MFStarted, MFCompleted int
	// InFlightAtEnd marks a transfer still pending when the capture ended.
	InFlightAtEnd bool
	// Evicted counts transfers evicted by the pending-transfer cap.
	Evicted int

	// tracker state, maintained by the assembler while feeding.
	lastFF  []byte
	cfSince int
}

// ffLength reads the announced length of a stored first frame (plain
// ISO-TP shape; BMW profiles store the address-stripped frame).
func ffLength(ff []byte) int {
	if len(ff) < 2 {
		return -1
	}
	return int(ff[0]&0x0F)<<8 | int(ff[1])
}

// AttackFinding is one classified attack signature on one CAN ID.
type AttackFinding struct {
	// ID is the attacked arbitration ID.
	ID uint32
	// Class is one of the Attack* labels.
	Class string
	// Detail summarises the evidence behind the classification.
	Detail string
}

// classify applies the signature rules to one profile, most specific
// first, and returns the matched class ("" when the profile is benign).
// Thresholds are calibrated so that the "default" random-fault preset
// never fires while a saturating adversarial injector always does: each
// rule requires a conjunction of behaviours random damage does not
// produce together.
func (p *AttackProfile) classify() (class, detail string) {
	restarts := p.RestartsIdentical + p.RestartsNewLength
	switch {
	case p.HostileFC >= 3:
		return AttackFCStarvation,
			fmt.Sprintf("%d hostile flow-control frames (wait states, overflow aborts or lockup STmin)", p.HostileFC)
	case p.MaxLenFF >= 2:
		return AttackFirstFrameFlood,
			fmt.Sprintf("%d first frames announcing >=%d bytes (%d restarts, %d evicted)",
				p.MaxLenFF, floodLengthFloor, restarts, p.Evicted)
	case p.RestartsIdenticalBarren >= 4:
		return AttackSessionStarvation,
			fmt.Sprintf("%d byte-identical first-frame replays before any data flowed (%d identical restarts total, %d sequence errors)",
				p.RestartsIdenticalBarren, p.RestartsIdentical, p.SeqErrors)
	case p.RestartsNewLength >= 2 && p.SeqErrors >= 2:
		return AttackInterleave,
			fmt.Sprintf("%d competing first frames with foreign lengths mid-transfer, %d sequence errors",
				p.RestartsNewLength, p.SeqErrors)
	case p.RestartsBarren >= 2 || (p.MFStarted >= 4 && p.MFCompleted == 0) ||
		(p.InFlightAtEnd && p.MFStarted >= 1 && p.MFCompleted == 0):
		return AttackSlowDrip,
			fmt.Sprintf("%d transfers opened, %d completed, %d restarted before any data (in flight at capture end: %v)",
				p.MFStarted, p.MFCompleted, p.RestartsBarren, p.InFlightAtEnd)
	}
	return "", ""
}

// DetectAttacks scores the assembly-layer attack profiles gathered in
// stats and returns one classified finding per attacked ID, in ID
// order. It is pure: same stats, same findings, at any Parallelism.
func DetectAttacks(stats TrafficStats) []AttackFinding {
	if len(stats.AttackProfiles) == 0 {
		return nil
	}
	ids := make([]uint32, 0, len(stats.AttackProfiles))
	for id := range stats.AttackProfiles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []AttackFinding
	for _, id := range ids {
		if class, detail := stats.AttackProfiles[id].classify(); class != "" {
			out = append(out, AttackFinding{ID: id, Class: class, Detail: detail})
		}
	}
	return out
}

// ScreenFrames runs assembly-layer attack detection over a raw frame
// slice without running the rest of the pipeline. The jobserver uses it
// at stream admission: a flagged capture is rejected before it can
// occupy a worker.
func ScreenFrames(frames []can.Frame) []AttackFinding {
	a := newAssembler()
	for i := range frames {
		a.feed(frames[i].Timestamp, frames[i].ID, frames[i].Payload())
	}
	a.finish()
	return DetectAttacks(a.stats)
}

// attackDegraded attributes attack findings to the streams riding the
// attacked IDs, mirroring assembleDegraded: findings on IDs that
// yielded no stream are reported with a zero key so nothing disappears
// silently. The finding's class is the StreamError Reason.
func attackDegraded(findings []AttackFinding, streams []StreamData) []StreamError {
	var out []StreamError
	for _, f := range findings {
		attributed := false
		for _, sd := range streams {
			if sd.Key.RespID != f.ID {
				continue
			}
			attributed = true
			out = append(out, StreamError{
				Key: sd.Key, Label: sd.Label, Stage: StageAttack, Reason: f.Class,
				Detail: fmt.Sprintf("ID %03X: %s", f.ID, f.Detail),
			})
		}
		if !attributed {
			out = append(out, StreamError{
				Stage: StageAttack, Reason: f.Class,
				Detail: fmt.Sprintf("ID %03X: %s (no recovered stream)", f.ID, f.Detail),
			})
		}
	}
	return out
}
