package reverser

import (
	"context"
	"time"

	"dpreverser/internal/align"
	"dpreverser/internal/gp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/rig"
	"dpreverser/internal/scaling"
)

// StreamData is the fully prepared per-stream material the inference step
// consumes: the recovered semantics and the paired, filtered, aggregated
// (X, Y) dataset. Exposing it lets the experiment harness run alternative
// inference algorithms (linear regression, polynomial fitting) on exactly
// the data GP sees — the §4.4 comparison.
type StreamData struct {
	Key   StreamKey
	Label string
	Unit  string
	// Enum marks state streams (no dataset).
	Enum bool
	// RawPairs counts pairs before aggregation.
	RawPairs int
	// Dataset is the cleaned, aggregated inference input (nil for enums
	// and under-sampled streams) — what DP-Reverser's GP consumes.
	Dataset *gp.Dataset
	// RawDataset holds the unfiltered, unaggregated pairs: X observations
	// matched to raw OCR samples with no outlier rejection. The §4.4
	// baseline comparison runs linear regression and polynomial fitting on
	// this, since the two-stage filtering is part of DP-Reverser, not of
	// the LibreCAN-style baselines.
	RawDataset *gp.Dataset
}

// ExtractStreams runs the pipeline's front half — assembly, extraction,
// alignment, session splitting, semantics, pairing, filtering, aggregation
// — and returns one StreamData per observed stream plus the traffic stats
// and the estimated clock offset.
//
// (*Reverser).Reverse performs the same work but shares one assembly pass
// with the rest of the pipeline and publishes the streams on
// Result.Streams; this entry point remains for callers that only need the
// front half.
func ExtractStreams(cap rig.Capture, cfg Config) ([]StreamData, TrafficStats, time.Duration) {
	messages, stats := Assemble(cap.Frames)
	ext := ExtractFields(messages)
	offset, uiFrames := alignUI(cap)
	return streamsFromExtraction(ext, uiFrames, cfg), stats, offset
}

// alignUI estimates the camera-to-CAN clock offset (§3.3) and returns the
// UI frames shifted onto the traffic clock. Captures with no usable OBD
// anchors keep their raw timestamps and a zero offset.
func alignUI(cap rig.Capture) (time.Duration, []ocr.Frame) {
	if off, err := align.EstimateOffsetOBD(cap.Frames, cap.UIFrames); err == nil {
		return off, align.ApplyOffset(cap.UIFrames, off)
	}
	return 0, cap.UIFrames
}

// streamsFromExtraction builds the per-stream datasets from an already
// extracted capture — the back half of ExtractStreams, reused by the
// pipeline so the capture is assembled exactly once.
func streamsFromExtraction(ext *Extraction, uiFrames []ocr.Frame, cfg Config) []StreamData {
	var out []StreamData
	for _, sess := range splitSessions(uiFrames) {
		keys, inSession := sessionStreams(ext.ESVs, sess)
		for rowIdx, key := range keys {
			out = append(out, buildStreamData(key, rowIdx, inSession[key], sess, cfg))
		}
	}
	return out
}

// sessionStreams lists the streams active in a session in first-seen
// (= display-row) order.
func sessionStreams(obs []ESVObservation, sess session) ([]StreamKey, map[StreamKey][]ESVObservation) {
	var keys []StreamKey
	seen := map[StreamKey]bool{}
	inSession := map[StreamKey][]ESVObservation{}
	for _, o := range obs {
		if o.At < sess.start-time.Second || o.At > sess.end+time.Second {
			continue
		}
		if (o.Key.Proto == "OBD") != (sess.screenName == "obd-live") {
			continue
		}
		if !seen[o.Key] {
			seen[o.Key] = true
			keys = append(keys, o.Key)
		}
		inSession[o.Key] = append(inSession[o.Key], o)
	}
	return keys, inSession
}

// buildStreamData performs §3.3/§3.4 and §3.5 Step 1 for one stream.
func buildStreamData(key StreamKey, rowIdx int, obs []ESVObservation, sess session, cfg Config) StreamData {
	sd := StreamData{Key: key}

	labelVotes := map[string]int{}
	unitVotes := map[string]int{}
	var ySamples []ocr.Sample
	numericRows, textRows := 0, 0
	for _, f := range sess.frames {
		for _, row := range f.Rows {
			if row.Index != rowIdx {
				continue
			}
			if row.Label != "" {
				labelVotes[row.Label]++
			}
			if row.Unit != "" {
				unitVotes[row.Unit]++
			}
			if row.ParseOK {
				numericRows++
				ySamples = append(ySamples, ocr.Sample{At: f.At, Value: row.Parsed})
			} else if row.Value != "" {
				textRows++
			}
		}
	}
	sd.Label = majority(labelVotes)
	sd.Unit = majority(unitVotes)

	if textRows > numericRows {
		sd.Enum = true
		return sd
	}

	rawSamples := ySamples
	min, max := rangeForLabel(sd.Label)
	ySamples = ocr.Filter(ySamples, min, max)

	pair := func(samples []ocr.Sample) ([][]float64, []float64) {
		maxGap := cfg.PairMaxGap
		if spacing := typicalSpacing(samples); spacing > 0 && spacing*3/5 < maxGap {
			maxGap = spacing * 3 / 5
		}
		var xs [][]float64
		var ys []float64
		for _, o := range obs {
			vars := o.Variables()
			if vars == nil {
				continue
			}
			y, ok := nearestSample(samples, o.At, maxGap)
			if !ok {
				continue
			}
			xs = append(xs, vars)
			ys = append(ys, y)
		}
		return xs, ys
	}

	pairsX, pairsY := pair(ySamples)
	sd.RawPairs = len(pairsY)
	if sd.RawPairs < cfg.MinPairs {
		return sd
	}
	// Even a single distinct X is inferable: the constant formula is
	// exactly right over the observed domain (the paper's collapsed-
	// variable cases are the same phenomenon).
	sd.Dataset = aggregateByX(pairsX, pairsY)

	rawX, rawY := pair(rawSamples)
	if len(rawY) > 0 {
		sd.RawDataset = &gp.Dataset{X: rawX, Y: rawY}
	}
	return sd
}

// InferStream runs §3.5 Steps 2-3 (scaling + GP) on prepared stream data.
// The returned error is non-nil only when ctx was cancelled; inference
// failures on a single stream yield a formula-less ReversedESV instead, so
// one degenerate dataset cannot abort a whole capture.
func InferStream(ctx context.Context, sd StreamData, cfg Config) (ReversedESV, error) {
	rev := ReversedESV{Key: sd.Key, Label: sd.Label, Unit: sd.Unit, Enum: sd.Enum, Pairs: sd.RawPairs}
	if sd.Enum || sd.Dataset == nil {
		return rev, ctx.Err()
	}
	res, err := scaling.InferContext(ctx, sd.Dataset, cfg.GP)
	if err != nil {
		return rev, ctx.Err()
	}
	rev.Formula = res.Best
	rev.Fitness = res.Fitness
	rev.Generations = res.Generations
	rev.Evaluations = res.Evaluations
	rev.CacheHits = res.CacheHits
	rev.CacheMisses = res.CacheMisses
	return rev, nil
}
