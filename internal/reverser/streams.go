package reverser

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dpreverser/internal/align"
	"dpreverser/internal/colstore"
	"dpreverser/internal/gp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/rig"
	"dpreverser/internal/scaling"
)

// StreamData is the fully prepared per-stream material the inference step
// consumes: the recovered semantics and the paired, filtered, aggregated
// (X, Y) dataset. Exposing it lets the experiment harness run alternative
// inference algorithms (linear regression, polynomial fitting) on exactly
// the data GP sees — the §4.4 comparison.
type StreamData struct {
	Key   StreamKey
	Label string
	Unit  string
	// Enum marks state streams (no dataset).
	Enum bool
	// RawPairs counts pairs before aggregation (after outlier screening).
	RawPairs int
	// RejectedPairs counts paired samples the robust median-residual
	// screen rejected before aggregation; non-zero values surface on
	// Result.Degraded as pairing-stage damage.
	RejectedPairs int
	// Dataset is the cleaned, aggregated inference input (nil for enums
	// and under-sampled streams) — what DP-Reverser's GP consumes.
	Dataset *gp.Dataset
	// RawDataset holds the unfiltered, unaggregated pairs: X observations
	// matched to raw OCR samples with no outlier rejection. The §4.4
	// baseline comparison runs linear regression and polynomial fitting on
	// this, since the two-stage filtering is part of DP-Reverser, not of
	// the LibreCAN-style baselines.
	RawDataset *gp.Dataset
}

// ExtractStreams runs the pipeline's front half — assembly, extraction,
// alignment, session splitting, semantics, pairing, filtering, aggregation
// — and returns one StreamData per observed stream plus the traffic stats
// and the estimated clock offset.
//
// (*Reverser).Reverse performs the same work but shares one assembly pass
// with the rest of the pipeline and publishes the streams on
// Result.Streams; this entry point remains for callers that only need the
// front half.
func ExtractStreams(cap rig.Capture, cfg Config) ([]StreamData, TrafficStats, time.Duration) {
	fr := FramesColumnar(cap.Frames)
	ms, stats, _ := AssembleColumnar(context.Background(), fr, nil)
	ext := ExtractFieldsColumnar(ms)
	offset, uiFrames := alignUI(fr, cap.UIFrames)
	return streamsFromExtraction(ext, uiFrames, cfg), stats, offset
}

// alignUI estimates the camera-to-CAN clock offset (§3.3) and returns the
// UI frames shifted onto the traffic clock. Captures with no usable OBD
// anchors keep their raw timestamps and a zero offset.
func alignUI(fr *colstore.Frames, uiFrames []ocr.Frame) (time.Duration, []ocr.Frame) {
	if off, err := align.EstimateOffsetOBDColumnar(fr, uiFrames); err == nil {
		return off, align.ApplyOffset(uiFrames, off)
	}
	return 0, uiFrames
}

// streamsFromExtraction builds the per-stream datasets from an already
// extracted capture — the back half of ExtractStreams, reused by the
// pipeline so the capture is assembled exactly once.
func streamsFromExtraction(ext *Extraction, uiFrames []ocr.Frame, cfg Config) []StreamData {
	var out []StreamData
	for _, sess := range splitSessions(uiFrames) {
		keys, inSession := sessionStreams(ext.ESVs, sess)
		for rowIdx, key := range keys {
			out = append(out, buildStreamData(key, rowIdx, inSession[key], sess, cfg))
		}
	}
	return out
}

// sessionStreams lists the streams active in a session in display-row
// order, recovered robustly from damaged traffic in two steps:
//
//  1. Streams with far fewer observations than the session's typical
//     stream are dropped as phantoms — a bit-flipped identifier field
//     yields a "stream" that was never on screen, and keeping it would
//     shift the row pairing of every stream after it.
//  2. Row order is majority-voted across poll cycles rather than taken
//     from first-seen order alone: the tool polls its identifiers
//     round-robin, so each cycle restates the on-screen order, and a
//     response lost at the session head (which rotates first-seen order)
//     is outvoted by the intact cycles that follow.
//
// On a clean capture every cycle agrees with first-seen order and both
// steps are no-ops.
func sessionStreams(obs []ESVObservation, sess session) ([]StreamKey, map[StreamKey][]ESVObservation) {
	var keys []StreamKey
	var sessObs []ESVObservation
	seen := map[StreamKey]bool{}
	inSession := map[StreamKey][]ESVObservation{}
	for _, o := range obs {
		if o.At < sess.start-time.Second || o.At > sess.end+time.Second {
			continue
		}
		if (o.Key.Proto == "OBD") != (sess.screenName == "obd-live") {
			continue
		}
		if !seen[o.Key] {
			seen[o.Key] = true
			keys = append(keys, o.Key)
		}
		sessObs = append(sessObs, o)
		inSession[o.Key] = append(inSession[o.Key], o)
	}
	if len(keys) > 1 {
		counts := make([]float64, len(keys))
		for i, k := range keys {
			counts[i] = float64(len(inSession[k]))
		}
		med := medianOf(counts)
		kept := keys[:0]
		for _, k := range keys {
			if float64(len(inSession[k]))*5 < med {
				delete(inSession, k)
				continue
			}
			kept = append(kept, k)
		}
		keys = kept
		keys = voteRowOrder(keys, sessObs, inSession)
	}
	return keys, inSession
}

// voteRowOrder reorders keys into the display-row order the poll cycles
// agree on. Cycle boundaries are temporal: the tool answers a whole
// screenful back-to-back, then idles until its next refresh, so a gap
// well above the typical inter-observation spacing separates cycles. (A
// key repeating within a cycle also cuts, as a fallback for degenerate
// spacing.) Each cycle votes for the position of every key it contains,
// and keys are ranked by their modal position, first-seen order breaking
// ties. Cutting on time rather than on first-seen repetition matters:
// responses missing from the capture at the session head would rotate
// every repeat-cut cycle in unison, and the vote would ratify the
// rotation instead of repairing it.
func voteRowOrder(keys []StreamKey, sessObs []ESVObservation, inSession map[StreamKey][]ESVObservation) []StreamKey {
	firstSeen := make(map[StreamKey]int, len(keys))
	for i, k := range keys {
		firstSeen[k] = i
	}
	var kept []ESVObservation
	for _, o := range sessObs {
		if _, ok := inSession[o.Key]; ok { // drop phantoms
			kept = append(kept, o)
		}
	}
	var gaps []float64
	for i := 1; i < len(kept); i++ {
		gaps = append(gaps, float64(kept[i].At-kept[i-1].At))
	}
	// A whole screenful shares (nearly) one poll-tick timestamp, so the
	// median gap is (close to) zero and any clearly larger gap is a
	// refresh boundary. When spacing is uniform instead (one identifier
	// per tick), no gap qualifies and the repeat-cut below decides.
	cycleGap := time.Duration(3 * medianOf(gaps))
	votes := make(map[StreamKey]map[int]int, len(keys))
	pos := 0
	cycleSeen := map[StreamKey]bool{}
	for i, o := range kept {
		tempCut := i > 0 && o.At-kept[i-1].At > cycleGap
		if tempCut || cycleSeen[o.Key] {
			pos = 0
			cycleSeen = map[StreamKey]bool{}
		}
		cycleSeen[o.Key] = true
		if votes[o.Key] == nil {
			votes[o.Key] = map[int]int{}
		}
		votes[o.Key][pos]++
		pos++
	}
	rank := make(map[StreamKey]int, len(keys))
	for _, k := range keys {
		best, bestN := firstSeen[k], 0
		for p, n := range votes[k] {
			if n > bestN || (n == bestN && p < best) {
				best, bestN = p, n
			}
		}
		rank[k] = best
	}
	ordered := append([]StreamKey(nil), keys...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if rank[ordered[i]] != rank[ordered[j]] {
			return rank[ordered[i]] < rank[ordered[j]]
		}
		return firstSeen[ordered[i]] < firstSeen[ordered[j]]
	})
	return ordered
}

// buildStreamData performs §3.3/§3.4 and §3.5 Step 1 for one stream.
func buildStreamData(key StreamKey, rowIdx int, obs []ESVObservation, sess session, cfg Config) StreamData {
	sd := StreamData{Key: key}

	labelVotes := map[string]int{}
	unitVotes := map[string]int{}
	var ySamples []ocr.Sample
	numericRows, textRows := 0, 0
	for _, f := range sess.frames {
		for _, row := range f.Rows {
			if row.Index != rowIdx {
				continue
			}
			if row.Label != "" {
				labelVotes[row.Label]++
			}
			if row.Unit != "" {
				unitVotes[row.Unit]++
			}
			if row.ParseOK {
				numericRows++
				ySamples = append(ySamples, ocr.Sample{At: f.At, Value: row.Parsed})
			} else if row.Value != "" {
				textRows++
			}
		}
	}
	sd.Label = majority(labelVotes)
	sd.Unit = majority(unitVotes)

	if textRows > numericRows {
		sd.Enum = true
		return sd
	}

	rawSamples := ySamples
	min, max := rangeForLabel(sd.Label)
	ySamples = ocr.Filter(ySamples, min, max)

	pair := func(samples []ocr.Sample) ([][]float64, []float64) {
		maxGap := cfg.PairMaxGap
		if spacing := typicalSpacing(samples); spacing > 0 && spacing*3/5 < maxGap {
			maxGap = spacing * 3 / 5
		}
		var xs [][]float64
		var ys []float64
		for _, o := range obs {
			vars := o.Variables()
			if vars == nil {
				continue
			}
			y, ok := nearestSample(samples, o.At, maxGap)
			if !ok {
				continue
			}
			xs = append(xs, vars)
			ys = append(ys, y)
		}
		return xs, ys
	}

	pairsX, pairsY := pair(ySamples)
	pairsX, pairsY, sd.RejectedPairs = screenPairs(pairsX, pairsY)
	sd.RawPairs = len(pairsY)
	if sd.RawPairs < cfg.MinPairs {
		return sd
	}
	// Even a single distinct X is inferable: the constant formula is
	// exactly right over the observed domain (the paper's collapsed-
	// variable cases are the same phenomenon).
	sd.Dataset = aggregateByX(pairsX, pairsY)

	rawX, rawY := pair(rawSamples)
	if len(rawY) > 0 {
		sd.RawDataset = &gp.Dataset{X: rawX, Y: rawY}
	}
	return sd
}

// screenPairs rejects paired samples whose Y is wildly inconsistent with
// other observations of the same X vector — the signature of OCR damage
// (a dropped decimal point multiplies by 100, a flipped sign doubles the
// distance) surviving the per-sample range filter. The residual of each
// pair against its X-group's median Y should be near zero, since identical
// raw bytes decode to identical displayed values; pairs whose residual
// exceeds a robust tolerance (scaled MAD with a floor proportional to the
// stream's magnitude) are dropped before aggregation. The screen is
// order-preserving and deterministic, and backs off entirely when it would
// reject more than half the data — at that point the residuals, not the
// pairs, are untrustworthy.
func screenPairs(xs [][]float64, ys []float64) ([][]float64, []float64, int) {
	if len(ys) < 4 {
		return xs, ys, 0
	}
	groupMed := map[string]float64{}
	keys := make([]string, len(xs))
	{
		groups := map[string][]float64{}
		for i, x := range xs {
			keys[i] = fmt.Sprintf("%v", x)
			groups[keys[i]] = append(groups[keys[i]], ys[i])
		}
		for k, vals := range groups {
			groupMed[k] = medianOf(vals)
		}
	}
	residuals := make([]float64, len(ys))
	absRes := make([]float64, len(ys))
	var absYs []float64
	for i, y := range ys {
		residuals[i] = y - groupMed[keys[i]]
		absRes[i] = abs(residuals[i])
		absYs = append(absYs, abs(y))
	}
	mad := medianOf(absRes)
	scale := medianOf(absYs)
	tol := 8 * mad
	if floor := 0.05*scale + 1; tol < floor {
		tol = floor
	}
	rejected := 0
	for i := range ys {
		if absRes[i] > tol {
			rejected++
		}
	}
	if rejected == 0 {
		return xs, ys, 0
	}
	if rejected*2 > len(residuals) {
		// Residuals this wide mean the groups themselves are noise; let
		// aggregation's per-group medians do what they can instead.
		return xs, ys, 0
	}
	keptX := make([][]float64, 0, len(xs)-rejected)
	keptY := make([]float64, 0, len(ys)-rejected)
	for i := range ys {
		if absRes[i] > tol {
			continue
		}
		keptX = append(keptX, xs[i])
		keptY = append(keptY, ys[i])
	}
	return keptX, keptY, rejected
}

// medianOf returns the median of vals without modifying the input.
func medianOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// InferStream runs §3.5 Steps 2-3 (scaling + GP) on prepared stream data.
// The returned error is non-nil only when ctx was cancelled; inference
// failures on a single stream yield a formula-less ReversedESV instead, so
// one degenerate dataset cannot abort a whole capture.
func InferStream(ctx context.Context, sd StreamData, cfg Config) (ReversedESV, error) {
	rev := ReversedESV{Key: sd.Key, Label: sd.Label, Unit: sd.Unit, Enum: sd.Enum, Pairs: sd.RawPairs}
	if sd.Enum || sd.Dataset == nil {
		return rev, ctx.Err()
	}
	res, err := scaling.InferContext(ctx, sd.Dataset, cfg.GP)
	if err != nil {
		return rev, ctx.Err()
	}
	rev.Formula = res.Best
	rev.Fitness = res.Fitness
	rev.Generations = res.Generations
	rev.Evaluations = res.Evaluations
	rev.CacheHits = res.CacheHits
	rev.CacheMisses = res.CacheMisses
	return rev, nil
}
