package reverser

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dpreverser/internal/gp"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the schema golden files")

// goldenResult is a hand-built result exercising every branch of the
// schema: a formula ESV, an enum, an under-sampled stream, a control
// record, and degradation entries with and without a stream key.
func goldenResult() *Result {
	formula := gp.NewBinary(gp.OpAdd,
		gp.NewBinary(gp.OpMul, gp.NewVar(0), gp.NewConst(0.75)),
		gp.NewConst(-48))
	return &Result{
		Car:      "Car G",
		Model:    "Golden GT",
		ToolName: "GoldScan",
		Offset:   123456 * time.Microsecond,
		Messages: 42,
		Stats: TrafficStats{
			ISOTPSingle: 30, ISOTPFirst: 4, ISOTPConsecutive: 6, ISOTPFlowControl: 4,
			Total: 44, AssemblyErrors: 2, ISOTPErrors: 2,
		},
		Evaluations: 1000,
		CacheHits:   600,
		CacheMisses: 400,
		ESVs: []ReversedESV{
			{
				Key:         StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 0xF405},
				Label:       "Engine coolant temperature",
				Unit:        "°C",
				Formula:     formula,
				Fitness:     0.25,
				Pairs:       55,
				Generations: 30,
				Evaluations: 900,
				CacheHits:   540,
				CacheMisses: 360,
			},
			{
				Key:   StreamKey{Proto: "KWP", RespID: 0x300, LocalID: 0x22, Index: 1, FType: 0x05},
				Label: "Cruise control",
				Enum:  true,
				Pairs: 12,
			},
			{
				Key:   StreamKey{Proto: "OBD", RespID: 0x7E8, DID: 0x0D},
				Label: "Vehicle speed",
				Unit:  "km/h",
				Pairs: 3,
			},
		},
		ECRs: []ReversedECR{
			{
				Service: 0x2F, ID: 0x0115, State: []byte{0x01, 0xFF},
				Label: "Fuel pump relay", SawFreeze: true, SawAdjust: true, SawReturn: true,
			},
		},
		Degraded: []StreamError{
			{
				Key:   StreamKey{Proto: "UDS", RespID: 0x7E8, DID: 0xF405},
				Label: "Engine coolant temperature", Stage: "assemble",
				Reason: "transport-errors", Detail: "2 reassembly errors on ID 7E8",
			},
			{
				Stage: "assemble", Reason: "transport-errors",
				Detail: "1 reassembly errors on ID 7F1 (no recovered stream)",
			},
		},
	}
}

// TestResultSchemaGolden pins the versioned result document byte for byte.
// `dpreverse -json`, the experiment harness and the job server's result
// endpoint all emit this exact shape; a diff here means the schema changed
// and ResultSchemaVersion must be bumped (with a new golden alongside the
// old one).
func TestResultSchemaGolden(t *testing.T) {
	got, err := json.MarshalIndent(goldenResult(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "result_schema_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("result document drifted from %s:\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, bump ResultSchemaVersion and regenerate with -update-golden.",
			path, got, want)
	}
}

// TestResultSchemaVersionField guards the contract consumers dispatch on.
func TestResultSchemaVersionField(t *testing.T) {
	raw, err := json.Marshal(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ResultSchemaVersion {
		t.Fatalf("schema field = %d, want %d", doc.Schema, ResultSchemaVersion)
	}
}
