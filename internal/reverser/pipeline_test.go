package reverser

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"dpreverser/internal/diagtool"
	"dpreverser/internal/ecu"
	"dpreverser/internal/gp"
	"dpreverser/internal/ocr"
	"dpreverser/internal/rig"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

// collect runs a full rig session on a car and returns the capture plus the
// vehicle (the vehicle is the experiment's ground-truth oracle, never an
// input to the pipeline).
func collect(t *testing.T, car string) (rig.Capture, *vehicle.Vehicle) {
	t.Helper()
	p, ok := vehicle.ProfileByCar(car)
	if !ok {
		t.Fatalf("unknown car %q", car)
	}
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tool.Close(); veh.Close() })
	cfg := rig.DefaultConfig()
	cfg.ReadDuration = 20 * time.Second
	cfg.AlignDuration = 6 * time.Second
	cfg.TestDuration = time.Second
	r := rig.New(tool, veh, cfg)
	t.Cleanup(r.Close)
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	return cap, veh
}

// testConfig shrinks GP for unit-test speed; the experiments use the
// paper's full budget.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GP.PopulationSize = 250
	cfg.GP.Generations = 20
	cfg.GP.Seed = 7
	return cfg
}

// truthFor resolves the ground-truth spec behind a reversed UDS stream.
func truthFor(veh *vehicle.Vehicle, key StreamKey) (ecu.DIDSpec, bool) {
	for _, b := range veh.Bindings() {
		if b.RespID != key.RespID {
			continue
		}
		return b.ECU.DIDSpecFor(key.DID)
	}
	return ecu.DIDSpec{}, false
}

func TestReverseCarMEndToEnd(t *testing.T) {
	// Car M (Peugeot 308): 4 formula + 14 enum ESVs — a small full run.
	cap, veh := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	p := veh.Profile

	var udsESVs []ReversedESV
	for _, e := range res.ESVs {
		if e.Key.Proto == "UDS" {
			udsESVs = append(udsESVs, e)
		}
	}
	if len(udsESVs) != p.NumFormulaESVs+p.NumEnumESVs {
		t.Fatalf("reversed %d UDS streams, want %d", len(udsESVs), p.NumFormulaESVs+p.NumEnumESVs)
	}

	formulas, enums := 0, 0
	for _, e := range udsESVs {
		spec, ok := truthFor(veh, e.Key)
		if !ok {
			t.Fatalf("stream %v has no ground truth", e.Key)
		}
		// §3.4 semantics: the recovered label must match the tool's
		// display name (modulo rare OCR noise on the majority vote).
		if e.Label != spec.Name {
			t.Errorf("stream %v label = %q, want %q", e.Key, e.Label, spec.Name)
		}
		if e.Enum != spec.Enum {
			t.Errorf("stream %v enum = %v, want %v (label %q)", e.Key, e.Enum, spec.Enum, e.Label)
			continue
		}
		if spec.Enum {
			enums++
			continue
		}
		if e.Formula == nil {
			t.Errorf("stream %v (%s): no formula (pairs %d)", e.Key, e.Label, e.Pairs)
			continue
		}
		formulas++
		// The inferred formula must agree with the proprietary decode over
		// the byte values actually observed in traffic — the paper's
		// functional-equivalence criterion.
		if !formulaMatchesDecode(cap, e.Key, e.Formula, spec.Codec) {
			t.Errorf("stream %v (%s): formula %q diverges from truth %q over observed domain",
				e.Key, e.Label, e.Formula, spec.Codec.Expr)
		}
	}
	if formulas != p.NumFormulaESVs || enums != p.NumEnumESVs {
		t.Fatalf("recovered %d formulas / %d enums, want %d / %d",
			formulas, enums, p.NumFormulaESVs, p.NumEnumESVs)
	}
}

// formulaMatchesDecode re-extracts the capture's observations for one
// stream and checks the inferred formula against the proprietary decode on
// every observed value — the domain over which the paper scores formula
// equivalence.
func formulaMatchesDecode(cap rig.Capture, key StreamKey, f *gp.Node, codec ecu.Codec) bool {
	messages, _ := Assemble(cap.Frames)
	ext := ExtractFields(messages)
	checked := 0
	for _, o := range ext.ESVs {
		if o.Key != key {
			continue
		}
		vars := o.Variables()
		if vars == nil {
			continue
		}
		raw := uint64(0)
		for _, b := range o.Bytes {
			raw = raw<<8 | uint64(b)
		}
		want := codec.Decode(raw)
		got := f.Eval(vars)
		if math.Abs(got-want) > 1.0+0.03*math.Abs(want) {
			return false
		}
		checked++
	}
	return checked > 0
}

func TestReverseRecoversECRsWithSemantics(t *testing.T) {
	cap, veh := collect(t, "Car E") // Mini R56: 3 ECRs via service 0x30
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ECRs) != veh.Profile.NumECRs {
		t.Fatalf("reversed %d ECRs, want %d", len(res.ECRs), veh.Profile.NumECRs)
	}
	truthNames := map[string]bool{}
	for _, b := range veh.Bindings() {
		for _, a := range b.ECU.Actuators() {
			truthNames[a.Name] = true
		}
	}
	for _, e := range res.ECRs {
		if e.Service != 0x30 {
			t.Errorf("ECR service = %#x, want 0x30", e.Service)
		}
		if !e.PatternComplete() {
			t.Errorf("ECR %04X pattern incomplete: %+v", e.ID, e)
		}
		if !truthNames[e.Label] {
			t.Errorf("ECR %04X label %q not an actuator name", e.ID, e.Label)
		}
		if len(e.State) == 0 {
			t.Errorf("ECR %04X has no control state", e.ID)
		}
	}
}

func TestReverseUDSECRsIncludeFreeze(t *testing.T) {
	cap, veh := collect(t, "Car H") // MARVEL X: 6 ECRs via 0x2F
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ECRs) != veh.Profile.NumECRs {
		t.Fatalf("reversed %d ECRs, want %d", len(res.ECRs), veh.Profile.NumECRs)
	}
	for _, e := range res.ECRs {
		if e.Service != 0x2F {
			t.Errorf("service = %#x", e.Service)
		}
		if !e.SawFreeze || !e.SawAdjust || !e.SawReturn {
			t.Errorf("ECR %04X missing pattern steps: %+v", e.ID, e)
		}
	}
}

func TestReverseKWPCar(t *testing.T) {
	cap, veh := collect(t, "Car C") // Lavida: 5 KWP formula ESVs
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	kwpStreams := 0
	withFormula := 0
	for _, e := range res.ESVs {
		if e.Key.Proto != "KWP" {
			continue
		}
		kwpStreams++
		if e.Formula != nil {
			withFormula++
		}
	}
	if kwpStreams != veh.Profile.NumFormulaESVs {
		t.Fatalf("KWP streams = %d, want %d", kwpStreams, veh.Profile.NumFormulaESVs)
	}
	if withFormula < kwpStreams-1 {
		t.Fatalf("formulas inferred for %d/%d KWP streams", withFormula, kwpStreams)
	}
	// Table 9 shape: KWP traffic is mostly multi-frame ("waiting") because
	// TP 2.0 prefixes a length and splits early.
	if res.Stats.VWTPWaiting == 0 || res.Stats.VWTPLast == 0 {
		t.Fatalf("VWTP stats empty: %+v", res.Stats)
	}
}

func TestReverseOBDStreamsAgainstStandard(t *testing.T) {
	cap, _ := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	obdStreams := 0
	for _, e := range res.ESVs {
		if e.Key.Proto == "OBD" {
			obdStreams++
			if e.Enum {
				t.Errorf("OBD PID %02X classified enum", e.Key.DID)
			}
		}
	}
	if obdStreams != 7 {
		t.Fatalf("OBD streams = %d, want 7", obdStreams)
	}
}

func TestReverseOffsetEstimated(t *testing.T) {
	cap, _ := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	// The rig default camera offset is 120ms; the estimate includes
	// display lag of up to one poll interval.
	if res.Offset < 100*time.Millisecond || res.Offset > 800*time.Millisecond {
		t.Fatalf("offset = %v", res.Offset)
	}
}

func TestSummaryRenders(t *testing.T) {
	cap, _ := collect(t, "Car M")
	res, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if s == "" || res.Messages == 0 {
		t.Fatal("empty summary")
	}
}

func TestSplitSessions(t *testing.T) {
	mk := func(name string, at time.Duration) ocr.Frame {
		return ocr.Frame{ScreenName: name, At: at}
	}
	frames := []ocr.Frame{
		mk("obd-live", 0), mk("obd-live", 500*time.Millisecond),
		mk("live-data", 10*time.Second), mk("live-data", 10500*time.Millisecond),
		// Gap > 2s: new session on the same screen type.
		mk("live-data", 20*time.Second),
		// Non-recording screens break sessions.
		mk("active-run", 30*time.Second),
		mk("live-data", 31*time.Second),
	}
	sessions := splitSessions(frames)
	if len(sessions) != 4 {
		t.Fatalf("sessions = %d, want 4", len(sessions))
	}
	if sessions[0].screenName != "obd-live" || len(sessions[0].frames) != 2 {
		t.Fatalf("session 0 = %+v", sessions[0])
	}
	if sessions[2].start != 20*time.Second {
		t.Fatalf("session 2 start = %v", sessions[2].start)
	}
}

func TestRangeForLabel(t *testing.T) {
	if min, max := rangeForLabel("Engine speed #2"); min != 0 || max != 12000 {
		t.Fatalf("engine speed range = %v..%v", min, max)
	}
	if min, max := rangeForLabel("Mystery quantity"); min != -1e6 || max != 1e6 {
		t.Fatalf("default range = %v..%v", min, max)
	}
	if min, _ := rangeForLabel("Coolant temperature"); min != -60 {
		t.Fatalf("coolant min = %v", min)
	}
}

// A persisted-and-reloaded capture must reverse engineer identically to the
// live one (the collect-then-analyse workflow).
func TestReverseFromPersistedCapture(t *testing.T) {
	cap, _ := collect(t, "Car M")
	var buf bytes.Buffer
	if err := cap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := rig.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	live, err := New(WithConfig(cfg)).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := New(WithConfig(cfg)).Reverse(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.ESVs) != len(replayed.ESVs) || live.Offset != replayed.Offset {
		t.Fatalf("live %d ESVs offset %v; replayed %d ESVs offset %v",
			len(live.ESVs), live.Offset, len(replayed.ESVs), replayed.Offset)
	}
	for i := range live.ESVs {
		if live.ESVs[i].FormulaString() != replayed.ESVs[i].FormulaString() {
			t.Fatalf("ESV %d formula differs after persistence", i)
		}
	}
}

// KWP captures include readECUIdentification prologues; the extraction
// must classify them as requests and not let them disturb ESV streams.
func TestKWPIdentificationTrafficScreened(t *testing.T) {
	cap, _ := collect(t, "Car B")
	messages, _ := Assemble(cap.Frames)
	ext := ExtractFields(messages)
	if ext.Requests[0x1A] == 0 {
		t.Fatal("no readECUIdentification requests in the capture")
	}
	for _, o := range ext.ESVs {
		if o.Key.Proto == "KWP" && len(o.Bytes) != 3 {
			t.Fatalf("malformed KWP ESV observation: % X", o.Bytes)
		}
	}
}
