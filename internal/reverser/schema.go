package reverser

import (
	"encoding/json"
	"fmt"
	"math"
)

// This file is the versioned result schema: the one JSON shape of a
// reverse-engineering result, emitted identically by `dpreverse -json`,
// the experiment harness and the job server's result endpoint. Every
// document carries a top-level "schema" field; consumers reject versions
// they do not understand instead of misreading silently renamed fields.
// Bump ResultSchemaVersion on any incompatible change and record the old
// shape in the golden files under testdata/.

// ResultSchemaVersion is the current result-document schema version.
const ResultSchemaVersion = 1

// Kind classifies a reversed stream the way the result tables do.
func (r ReversedESV) Kind() string {
	switch {
	case r.Enum:
		return "enum"
	case r.Formula != nil:
		return "formula"
	default:
		return "under-sampled"
	}
}

// MarshalJSON renders the recovered quantity for downstream tooling: the
// key both structured and pre-rendered, the formula as its FormulaString,
// and the fitness only when a formula exists (MAE is meaningless - and
// possibly infinite - without one).
func (r ReversedESV) MarshalJSON() ([]byte, error) {
	out := struct {
		ID          string         `json:"id"`
		Key         ReversedESVKey `json:"key"`
		Label       string         `json:"label,omitempty"`
		Unit        string         `json:"unit,omitempty"`
		Kind        string         `json:"kind"`
		Formula     string         `json:"formula,omitempty"`
		Fitness     *float64       `json:"fitness,omitempty"`
		Pairs       int            `json:"pairs"`
		Generations int            `json:"generations,omitempty"`
		Evaluations int            `json:"evaluations,omitempty"`
		CacheHits   int            `json:"cache_hits,omitempty"`
	}{
		ID:          r.Key.String(),
		Key:         ReversedESVKey(r.Key),
		Label:       r.Label,
		Unit:        r.Unit,
		Kind:        r.Kind(),
		Formula:     r.FormulaString(),
		Pairs:       r.Pairs,
		Generations: r.Generations,
		Evaluations: r.Evaluations,
		CacheHits:   r.CacheHits,
	}
	if r.Formula != nil && !math.IsNaN(r.Fitness) && !math.IsInf(r.Fitness, 0) {
		f := r.Fitness
		out.Fitness = &f
	}
	return json.Marshal(out)
}

// ReversedESVKey is StreamKey's JSON shape: hex identifiers rendered as
// strings, zero-valued locator fields omitted.
type ReversedESVKey StreamKey

// MarshalJSON implements json.Marshaler.
func (k ReversedESVKey) MarshalJSON() ([]byte, error) {
	out := struct {
		Proto   string `json:"proto"`
		RespID  string `json:"resp_id,omitempty"`
		Addr    string `json:"addr,omitempty"`
		DID     string `json:"did,omitempty"`
		LocalID string `json:"local_id,omitempty"`
		Index   int    `json:"index,omitempty"`
		FType   string `json:"ftype,omitempty"`
	}{Proto: k.Proto, Index: k.Index}
	if k.RespID != 0 {
		out.RespID = fmt.Sprintf("%03X", k.RespID)
	}
	if k.Addr != 0 {
		out.Addr = fmt.Sprintf("%02X", k.Addr)
	}
	switch k.Proto {
	case "KWP":
		out.LocalID = fmt.Sprintf("%02X", k.LocalID)
		out.FType = fmt.Sprintf("%02X", k.FType)
	case "UDS":
		out.DID = fmt.Sprintf("%04X", k.DID)
	default:
		out.DID = fmt.Sprintf("%02X", k.DID)
	}
	return json.Marshal(out)
}

// MarshalJSON renders the control record with hex identifiers and the
// observed three-message pattern steps.
func (r ReversedECR) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Service         string `json:"service"`
		ID              string `json:"id"`
		Label           string `json:"label,omitempty"`
		State           string `json:"state,omitempty"`
		SawFreeze       bool   `json:"saw_freeze"`
		SawAdjust       bool   `json:"saw_adjust"`
		SawReturn       bool   `json:"saw_return"`
		PatternComplete bool   `json:"pattern_complete"`
	}{
		Service:         fmt.Sprintf("%02X", r.Service),
		ID:              fmt.Sprintf("%04X", r.ID),
		Label:           r.Label,
		State:           fmt.Sprintf("% X", r.State),
		SawFreeze:       r.SawFreeze,
		SawAdjust:       r.SawAdjust,
		SawReturn:       r.SawReturn,
		PatternComplete: r.PatternComplete(),
	})
}

// MarshalJSON renders the degradation entry for the result report.
func (e StreamError) MarshalJSON() ([]byte, error) {
	out := struct {
		ID     string `json:"id,omitempty"`
		Label  string `json:"label,omitempty"`
		Stage  string `json:"stage"`
		Reason string `json:"reason"`
		Detail string `json:"detail,omitempty"`
	}{Label: e.Label, Stage: e.Stage, Reason: e.Reason, Detail: e.Detail}
	if e.Key != (StreamKey{}) {
		out.ID = e.Key.String()
	}
	return json.Marshal(out)
}

// MarshalJSON renders the full result document. Streams (the raw
// inference inputs) are deliberately omitted: they are working state for
// the experiment harness, not part of the reversed protocol description.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Schema      int           `json:"schema"`
		Car         string        `json:"car"`
		Model       string        `json:"model,omitempty"`
		Tool        string        `json:"tool,omitempty"`
		OffsetMS    float64       `json:"offset_ms"`
		Messages    int           `json:"messages"`
		Evaluations int           `json:"evaluations"`
		CacheHits   int           `json:"cache_hits"`
		CacheMisses int           `json:"cache_misses"`
		Stats       TrafficStats  `json:"stats"`
		ESVs        []ReversedESV `json:"esvs"`
		ECRs        []ReversedECR `json:"ecrs,omitempty"`
		Degraded    []StreamError `json:"degraded,omitempty"`
	}{
		Schema:      ResultSchemaVersion,
		Car:         r.Car,
		Model:       r.Model,
		Tool:        r.ToolName,
		OffsetMS:    float64(r.Offset.Microseconds()) / 1e3,
		Messages:    r.Messages,
		Evaluations: r.Evaluations,
		CacheHits:   r.CacheHits,
		CacheMisses: r.CacheMisses,
		Stats:       r.Stats,
		ESVs:        r.ESVs,
		ECRs:        r.ECRs,
		Degraded:    r.Degraded,
	})
}
