package reverser

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"dpreverser/internal/telemetry"
)

// recordedEvents captures a run's progress stream in arrival order.
func recordedEvents(t *testing.T, parallelism int) ([]ProgressEvent, *Result) {
	t.Helper()
	cap, _ := collect(t, "Car M")
	var mu sync.Mutex
	var events []ProgressEvent
	rv := New(WithConfig(testConfig()), WithParallelism(parallelism),
		WithProgress(func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}))
	res, err := rv.Reverse(context.Background(), cap)
	if err != nil {
		t.Fatalf("parallelism %d: %v", parallelism, err)
	}
	return events, res
}

// checkEventNesting asserts the ordering guarantees the progress API
// documents: stages are bracketed, run in pipeline order and never
// overlap; every stream event falls inside the "infer" stage; and every
// stream's start precedes its done.
func checkEventNesting(t *testing.T, events []ProgressEvent) {
	t.Helper()
	stageOrder := []string{"assemble", "extract", "align", "streams", "infer", "controls"}
	stageIdx := map[string]int{}
	for i, s := range stageOrder {
		stageIdx[s] = i
	}
	openStage := ""
	doneStages := 0
	streamOpen := map[string]int{}
	for i, ev := range events {
		switch ev.Kind {
		case ProgressStageStart:
			if openStage != "" {
				t.Fatalf("event %d: stage %q starts inside open stage %q", i, ev.Stage, openStage)
			}
			if stageIdx[ev.Stage] != doneStages {
				t.Fatalf("event %d: stage %q out of order (want %q)", i, ev.Stage, stageOrder[doneStages])
			}
			openStage = ev.Stage
		case ProgressStageDone:
			if openStage != ev.Stage {
				t.Fatalf("event %d: stage %q done while %q open", i, ev.Stage, openStage)
			}
			for key, n := range streamOpen {
				if n != 0 {
					t.Fatalf("event %d: stage %q done with stream %s still open", i, ev.Stage, key)
				}
			}
			openStage = ""
			doneStages++
		case ProgressStreamStart:
			if openStage != "infer" {
				t.Fatalf("event %d: stream start outside the infer stage (in %q)", i, openStage)
			}
			streamOpen[ev.Stream.String()+"\x00"+ev.Label]++
		case ProgressStreamDone:
			if openStage != "infer" {
				t.Fatalf("event %d: stream done outside the infer stage (in %q)", i, openStage)
			}
			key := ev.Stream.String() + "\x00" + ev.Label
			if streamOpen[key] <= 0 {
				t.Fatalf("event %d: stream %s done before start", i, key)
			}
			streamOpen[key]--
		}
	}
	if openStage != "" || doneStages != len(stageOrder) {
		t.Fatalf("run ended with stage %q open after %d completed stages", openStage, doneStages)
	}
}

// normalizeEvent strips the scheduling-dependent fields (wall time and the
// completion counter) so event multisets can be compared across
// parallelism settings.
func normalizeEvent(ev ProgressEvent) ProgressEvent {
	ev.Elapsed = 0
	ev.Done = 0
	return ev
}

// eventMultiset counts normalized events.
func eventMultiset(events []ProgressEvent) map[ProgressEvent]int {
	m := map[ProgressEvent]int{}
	for _, ev := range events {
		m[normalizeEvent(ev)]++
	}
	return m
}

// The ordering guarantees must hold at every worker count, and — once the
// scheduling-dependent fields are stripped — a serial and a highly
// parallel run must emit exactly the same events.
func TestProgressEventNestingAcrossParallelism(t *testing.T) {
	serial, _ := recordedEvents(t, 1)
	parallel, _ := recordedEvents(t, 8)
	checkEventNesting(t, serial)
	checkEventNesting(t, parallel)

	ms, mp := eventMultiset(serial), eventMultiset(parallel)
	if len(ms) != len(mp) {
		t.Fatalf("distinct events: serial %d, parallel %d", len(ms), len(mp))
	}
	for ev, n := range ms {
		if mp[ev] != n {
			t.Fatalf("event %+v: serial count %d, parallel count %d", ev, n, mp[ev])
		}
	}
}

// A panicking progress callback must not kill the pipeline: the run is
// cancelled and Reverse returns the panic as an error.
func TestProgressCallbackPanicIsRecovered(t *testing.T) {
	cap, _ := collect(t, "Car M")
	rv := New(WithConfig(testConfig()), WithParallelism(4),
		WithProgress(func(ev ProgressEvent) {
			if ev.Kind == ProgressStreamStart {
				panic("boom in callback")
			}
		}))
	res, err := rv.Reverse(context.Background(), cap)
	if err == nil {
		t.Fatal("Reverse returned nil error after a panicking callback")
	}
	if res != nil {
		t.Fatalf("Reverse returned a result (%v) alongside the panic error", res)
	}
	if !strings.Contains(err.Error(), "progress callback panicked") ||
		!strings.Contains(err.Error(), "boom in callback") {
		t.Fatalf("err = %v, want the recovered panic", err)
	}
}

// A panic in the very first event (a stage start, emitted from the main
// goroutine) must be recovered the same way.
func TestProgressCallbackPanicInStageEvent(t *testing.T) {
	cap, _ := collect(t, "Car M")
	rv := New(WithConfig(testConfig()),
		WithProgress(func(ev ProgressEvent) { panic(42) }))
	_, err := rv.Reverse(context.Background(), cap)
	if err == nil || !strings.Contains(err.Error(), "panicked: 42") {
		t.Fatalf("err = %v, want recovered panic 42", err)
	}
}

// The acceptance bar for the metrics registry: with a frozen manual clock,
// runs at different parallelism dump byte-identical metrics (all counters
// deterministic, all durations zero), and the GP counters reconcile
// exactly with the Result totals.
func TestTelemetryMetricsDeterministicAcrossParallelism(t *testing.T) {
	cap, _ := collect(t, "Car M")
	run := func(parallelism int) (*telemetry.Provider, *Result) {
		tel := telemetry.New(telemetry.NewManualClock(0))
		rv := New(WithConfig(testConfig()), WithParallelism(parallelism), WithTelemetry(tel))
		res, err := rv.Reverse(context.Background(), cap)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return tel, res
	}
	tel1, res1 := run(1)
	tel8, res8 := run(8)

	if res1.Evaluations != res8.Evaluations || res1.CacheHits != res8.CacheHits {
		t.Fatalf("result totals differ: %d/%d vs %d/%d",
			res1.Evaluations, res1.CacheHits, res8.Evaluations, res8.CacheHits)
	}
	if res1.Evaluations == 0 {
		t.Fatal("no GP evaluations recorded")
	}
	if res1.Evaluations != res1.CacheHits+res1.CacheMisses {
		t.Fatalf("totals do not add up: %d != %d + %d",
			res1.Evaluations, res1.CacheHits, res1.CacheMisses)
	}

	var j1, j8, p1, p8 bytes.Buffer
	if err := tel1.Metrics.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := tel8.Metrics.WriteJSON(&j8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
		t.Errorf("JSON metric dumps differ across parallelism:\n%s\nvs\n%s", j1.String(), j8.String())
	}
	if err := tel1.Metrics.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := tel8.Metrics.WritePrometheus(&p8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p8.Bytes()) {
		t.Errorf("Prometheus dumps differ across parallelism")
	}

	// The registry's GP counters must reconcile exactly with the Result.
	counter := func(tel *telemetry.Provider, name string) float64 {
		for _, fam := range tel.Metrics.Snapshot() {
			if fam.Name == name {
				return *fam.Series[0].Value
			}
		}
		t.Fatalf("metric %s missing from dump", name)
		return 0
	}
	if got := counter(tel1, telemetry.MetricGPEvaluations); got != float64(res1.Evaluations) {
		t.Errorf("%s = %v, want %d", telemetry.MetricGPEvaluations, got, res1.Evaluations)
	}
	if got := counter(tel1, telemetry.MetricGPCacheHits); got != float64(res1.CacheHits) {
		t.Errorf("%s = %v, want %d", telemetry.MetricGPCacheHits, got, res1.CacheHits)
	}
	if got := counter(tel1, telemetry.MetricGPCacheMisses); got != float64(res1.CacheMisses) {
		t.Errorf("%s = %v, want %d", telemetry.MetricGPCacheMisses, got, res1.CacheMisses)
	}
	if got := counter(tel1, telemetry.MetricRuns); got != 1 {
		t.Errorf("%s = %v, want 1", telemetry.MetricRuns, got)
	}
	if got := counter(tel1, telemetry.MetricFrames); got != float64(res1.Stats.Total) {
		t.Errorf("%s = %v, want %d", telemetry.MetricFrames, got, res1.Stats.Total)
	}
	if got := counter(tel1, telemetry.MetricMessagesAssembled); got != float64(res1.Messages) {
		t.Errorf("%s = %v, want %d", telemetry.MetricMessagesAssembled, got, res1.Messages)
	}
}

// The tracer must record the documented hierarchy: stage and infer-pool
// spans under the run root, stream spans under the pool, and sampled GP
// generation spans under their stream.
func TestTelemetrySpanHierarchy(t *testing.T) {
	cap, _ := collect(t, "Car M")
	tel := telemetry.New(telemetry.NewManualClock(0))
	rv := New(WithConfig(testConfig()), WithParallelism(4), WithTelemetry(tel))
	res, err := rv.Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	spans := tel.Tracer.Spans()
	byID := map[int64]telemetry.SpanData{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var rootID, poolID int64
	counts := map[string]int{}
	for _, s := range spans {
		name := s.Name
		if strings.HasPrefix(name, "stage:") {
			name = "stage"
		}
		counts[name]++
		switch name {
		case "reverse":
			rootID = s.ID
		case "infer-pool":
			poolID = s.ID
		}
	}
	if counts["reverse"] != 1 || counts["infer-pool"] != 1 {
		t.Fatalf("span counts = %v", counts)
	}
	if counts["stage"] != 6 {
		t.Fatalf("%d stage spans, want 6", counts["stage"])
	}
	if counts["stream"] != len(res.Streams) {
		t.Fatalf("%d stream spans, want %d", counts["stream"], len(res.Streams))
	}
	if counts["gp-generation"] == 0 {
		t.Fatal("no sampled GP generation spans")
	}
	for _, s := range spans {
		switch {
		case strings.HasPrefix(s.Name, "stage:") || s.Name == "infer-pool":
			if s.Parent != rootID {
				t.Fatalf("span %q parent = %d, want run root %d", s.Name, s.Parent, rootID)
			}
		case s.Name == "stream":
			if s.Parent != poolID {
				t.Fatalf("stream span parent = %d, want infer-pool %d", s.Parent, poolID)
			}
		case s.Name == "gp-generation":
			if byID[s.Parent].Name != "stream" {
				t.Fatalf("gp-generation parent is %q, want a stream span", byID[s.Parent].Name)
			}
		}
	}
}

// Telemetry must not perturb the result: the same capture reversed with
// and without a provider yields identical fingerprints.
func TestTelemetryDoesNotAffectResults(t *testing.T) {
	cap, _ := collect(t, "Car M")
	plain, err := New(WithConfig(testConfig())).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.NewManualClock(0))
	instr, err := New(WithConfig(testConfig()), WithTelemetry(tel)).Reverse(context.Background(), cap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fingerprints(plain), fingerprints(instr)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d ESVs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ESV %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
