package appanalysis

// StyleScore is the per-style breakdown of an evaluation: how many apps
// of that corpus style were analysed and how the extracted formulas
// scored against the ground truth.
type StyleScore struct {
	Style string
	Apps  int
	TP    int
	FP    int
	FN    int
}

// Evaluation scores Analyze against the labeled corpus's ground truth.
type Evaluation struct {
	Apps     int
	TP       int
	FP       int
	FN       int
	PerStyle []StyleScore
}

// Precision is TP / (TP + FP); 1.0 when nothing was extracted.
func (e *Evaluation) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 1
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall is TP / (TP + FN); 1.0 when nothing was labeled.
func (e *Evaluation) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 1
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// F1 is the harmonic mean of precision and recall.
func (e *Evaluation) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate runs Analyze over every labeled app and matches the extracted
// formulas against the ground truth. A truth label matches an extracted
// formula when condition, protocol kind and expression agree; empty
// Condition/Expr and KindUnknown act as wildcards in the label. Each
// extracted formula can satisfy at most one label: matched pairs are
// true positives, unmatched labels false negatives, unmatched extractions
// false positives.
func Evaluate(corpus []*LabeledApp) *Evaluation {
	eval := &Evaluation{}
	styleIdx := map[string]int{}
	for _, la := range corpus {
		idx, ok := styleIdx[la.Style]
		if !ok {
			idx = len(eval.PerStyle)
			styleIdx[la.Style] = idx
			eval.PerStyle = append(eval.PerStyle, StyleScore{Style: la.Style})
		}
		score := &eval.PerStyle[idx]
		score.Apps++
		eval.Apps++

		found := Analyze(la.App)
		used := make([]bool, len(found))
		for _, truth := range la.Truth {
			matched := false
			for fi := range found {
				if used[fi] || !truth.matches(&found[fi]) {
					continue
				}
				used[fi] = true
				matched = true
				break
			}
			if matched {
				score.TP++
			} else {
				score.FN++
			}
		}
		for fi := range found {
			if !used[fi] {
				score.FP++
			}
		}
	}
	for i := range eval.PerStyle {
		eval.TP += eval.PerStyle[i].TP
		eval.FP += eval.PerStyle[i].FP
		eval.FN += eval.PerStyle[i].FN
	}
	return eval
}

func (t *TruthFormula) matches(f *Formula) bool {
	if t.Condition != "" && t.Condition != f.Condition {
		return false
	}
	if t.Kind != KindUnknown && t.Kind != f.Kind {
		return false
	}
	if t.Expr != "" && t.Expr != f.Expr {
		return false
	}
	return true
}
