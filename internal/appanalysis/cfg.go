package appanalysis

import (
	"fmt"
	"sort"
)

// Block is one basic block of a method's control-flow graph: a maximal run
// of statements entered only at the first and left only after the last.
type Block struct {
	ID int
	// Stmts are statement IDs, in program order.
	Stmts []int
	// Succs and Preds are block IDs. The virtual exit block appears as a
	// successor of every block that leaves the method.
	Succs, Preds []int
}

// CFG is a method's control-flow graph plus the dominance structures the
// analyses derive from it. The exit block is virtual (no statements) so
// post-dominance is well defined even for methods with several returns.
type CFG struct {
	Method *Method
	// Blocks holds the real blocks; ExitID == len(Blocks) names the
	// virtual exit.
	Blocks []*Block
	ExitID int

	stmtBlock []int
	// idom and ipdom are immediate (post-)dominators per block, indexed by
	// block ID with the exit included; -1 marks the root or unreachable.
	idom, ipdom []int
	// ctrlDeps[b] lists the branch blocks b is control dependent on,
	// innermost (largest block ID) first.
	ctrlDeps [][]int
}

// Normalize rewrites a legacy structured method — branches carrying no
// Else target, nesting encoded by CtrlDep annotations — into the explicit
// jump form the CFG builder consumes. Methods that are already explicit
// are returned unchanged; normalised copies never alias the input.
func Normalize(m *Method) *Method {
	legacy := false
	for i := range m.Stmts {
		if m.Stmts[i].Kind == StmtIf && m.Stmts[i].Else == 0 {
			legacy = true
			break
		}
	}
	if !legacy {
		return m
	}
	out := &Method{Name: m.Name, Params: append([]string(nil), m.Params...)}
	out.Stmts = append(out.Stmts, m.Stmts...)
	for i := range out.Stmts {
		s := &out.Stmts[i]
		if s.Kind != StmtIf || s.Else != 0 {
			continue
		}
		// The guarded region is the contiguous run of statements after the
		// branch whose CtrlDep chain passes through it; the false edge
		// jumps just past it.
		end := i + 1
		for end < len(out.Stmts) && dependsOn(out.Stmts, end, i) {
			end++
		}
		s.Else = end
	}
	return out
}

// dependsOn reports whether statement id's CtrlDep chain includes branch.
func dependsOn(stmts []Stmt, id, branch int) bool {
	for hops := 0; id >= 0 && id < len(stmts) && hops <= len(stmts); hops++ {
		if id == branch {
			return true
		}
		id = stmts[id].CtrlDep
	}
	return false
}

// BuildCFG normalises a method and constructs its control-flow graph,
// dominator and post-dominator trees, and control-dependence relation.
func BuildCFG(m *Method) *CFG {
	m = Normalize(m)
	n := len(m.Stmts)

	// Block leaders: the entry, every jump target, and every statement
	// following a branch, goto or return.
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	mark := func(id int) {
		if id >= 0 && id < n {
			leader[id] = true
		}
	}
	for i := range m.Stmts {
		switch m.Stmts[i].Kind {
		case StmtIf:
			mark(m.Stmts[i].Else)
			mark(i + 1)
		case StmtGoto:
			mark(m.Stmts[i].Target)
			mark(i + 1)
		case StmtReturn:
			mark(i + 1)
		}
	}

	cfg := &CFG{Method: m, stmtBlock: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			cfg.Blocks = append(cfg.Blocks, &Block{ID: len(cfg.Blocks)})
		}
		b := cfg.Blocks[len(cfg.Blocks)-1]
		b.Stmts = append(b.Stmts, i)
		cfg.stmtBlock[i] = b.ID
	}
	cfg.ExitID = len(cfg.Blocks)

	blockAt := func(stmtID int) int {
		if stmtID < 0 || stmtID >= n {
			return cfg.ExitID
		}
		return cfg.stmtBlock[stmtID]
	}
	addEdge := func(from, to int) {
		b := cfg.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
		if to < cfg.ExitID {
			cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, from)
		}
	}
	exitPreds := []int{}
	for _, b := range cfg.Blocks {
		last := &m.Stmts[b.Stmts[len(b.Stmts)-1]]
		switch last.Kind {
		case StmtIf:
			addEdge(b.ID, blockAt(last.ID+1))
			addEdge(b.ID, blockAt(last.Else))
		case StmtGoto:
			addEdge(b.ID, blockAt(last.Target))
		case StmtReturn:
			addEdge(b.ID, cfg.ExitID)
		default:
			addEdge(b.ID, blockAt(last.ID+1))
		}
		for _, s := range b.Succs {
			if s == cfg.ExitID {
				exitPreds = append(exitPreds, b.ID)
			}
		}
	}

	total := cfg.ExitID + 1
	preds := make([][]int, total)
	succs := make([][]int, total)
	for _, b := range cfg.Blocks {
		preds[b.ID] = b.Preds
		succs[b.ID] = b.Succs
	}
	preds[cfg.ExitID] = exitPreds

	if n > 0 {
		cfg.idom = immediateDominators(total, 0, preds)
		cfg.ipdom = immediateDominators(total, cfg.ExitID, succs)
	}
	cfg.buildControlDeps()
	return cfg
}

// immediateDominators computes the immediate-dominator array of a graph by
// iterating full dominator sets to a fixed point — quadratic, but the
// method CFGs here are a handful of blocks. preds gives each node's edges
// towards the root (CFG predecessors for dominators, successors for
// post-dominators). Unreachable nodes get -1.
func immediateDominators(n, root int, preds [][]int) []int {
	dom := make([][]bool, n)
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	for i := range dom {
		if i == root {
			dom[i] = make([]bool, n)
			dom[i][i] = true
		} else {
			dom[i] = append([]bool(nil), full...)
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if b == root {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range preds[b] {
				if first {
					copy(next, dom[p])
					first = false
					continue
				}
				for i := range next {
					next[i] = next[i] && dom[p][i]
				}
			}
			if first {
				// No edges towards the root: unreachable.
				continue
			}
			next[b] = true
			if !equalBools(next, dom[b]) {
				dom[b] = next
				changed = true
			}
		}
	}
	idom := make([]int, n)
	for b := 0; b < n; b++ {
		idom[b] = -1
		if b == root {
			continue
		}
		size := 0
		for _, in := range dom[b] {
			if in {
				size++
			}
		}
		if size == n {
			continue // unreachable: kept at the initial full set
		}
		// The immediate dominator is the strict dominator dominated by
		// every other strict dominator, i.e. the one with the largest set.
		best, bestSize := -1, -1
		for d := 0; d < n; d++ {
			if d == b || !dom[b][d] {
				continue
			}
			ds := 0
			for _, in := range dom[d] {
				if in {
					ds++
				}
			}
			if ds > bestSize {
				best, bestSize = d, ds
			}
		}
		idom[b] = best
	}
	return idom
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildControlDeps derives control dependence from the post-dominator tree
// (Ferrante-Ottenstein-Warren): for each branch edge A→B where B does not
// post-dominate A, every block on the post-dominator-tree path from B up
// to (but excluding) ipdom(A) is control dependent on A.
func (c *CFG) buildControlDeps() {
	c.ctrlDeps = make([][]int, c.ExitID+1)
	for _, a := range c.Blocks {
		if len(a.Succs) < 2 {
			continue
		}
		lca := c.ipdom[a.ID]
		for _, b := range a.Succs {
			for t := b; t != lca && t >= 0 && t != c.ExitID; t = c.ipdom[t] {
				c.ctrlDeps[t] = appendUnique(c.ctrlDeps[t], a.ID)
				if t == a.ID {
					break // loop header depends on itself; stop the walk
				}
			}
		}
	}
	for i := range c.ctrlDeps {
		sort.Sort(sort.Reverse(sort.IntSlice(c.ctrlDeps[i])))
	}
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// BlockOf reports the block containing a statement.
func (c *CFG) BlockOf(stmtID int) int { return c.stmtBlock[stmtID] }

// ControlDeps lists the branch blocks a block is control dependent on,
// innermost first.
func (c *CFG) ControlDeps(blockID int) []int { return c.ctrlDeps[blockID] }

// ImmediateDominator reports a block's immediate dominator (-1 for the
// entry block or unreachable blocks).
func (c *CFG) ImmediateDominator(blockID int) int { return c.idom[blockID] }

// ImmediatePostDominator reports a block's immediate post-dominator (-1
// for the exit).
func (c *CFG) ImmediatePostDominator(blockID int) int { return c.ipdom[blockID] }

// String renders the CFG for debugging.
func (c *CFG) String() string {
	out := fmt.Sprintf("cfg %s:", c.Method.Name)
	for _, b := range c.Blocks {
		out += fmt.Sprintf(" B%d%v->%v", b.ID, b.Stmts, b.Succs)
	}
	return out
}
