package appanalysis

import (
	"reflect"
	"testing"
)

// build constructs an explicit-form method, assigning sequential IDs.
func build(name string, params []string, stmts ...Stmt) Method {
	return explicit(name, params, stmts...)
}

func TestNormalizeDerivesElseTargetsFromCtrlDep(t *testing.T) {
	// Legacy nested guards: outer if at 2 covers 3..7, inner if at 4
	// covers 5..7.
	m := Method{Name: "legacy"}
	add := func(s Stmt) int {
		s.ID = len(m.Stmts)
		m.Stmts = append(m.Stmts, s)
		return s.ID
	}
	add(Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read", CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0C", CtrlDep: -1})
	outer := add(Stmt{Kind: StmtIf, Uses: []string{"c"}, CtrlDep: -1})
	add(Stmt{Kind: StmtAssign, Def: "g", Uses: []string{"flag"}, CtrlDep: outer})
	inner := add(Stmt{Kind: StmtIf, Uses: []string{"g"}, CtrlDep: outer})
	add(Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}, CtrlDep: inner})
	add(Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true, CtrlDep: inner})
	add(Stmt{Kind: StmtDisplay, Uses: []string{"y"}, CtrlDep: inner})

	n := Normalize(&m)
	if n == &m {
		t.Fatal("legacy method was not copied")
	}
	if got := n.Stmts[outer].Else; got != 8 {
		t.Errorf("outer Else = %d, want 8", got)
	}
	if got := n.Stmts[inner].Else; got != 8 {
		t.Errorf("inner Else = %d, want 8", got)
	}
	// An already-explicit method passes through unchanged.
	if again := Normalize(n); again != n {
		t.Error("explicit method was re-normalised")
	}
}

func TestCFGIfElseDiamond(t *testing.T) {
	// if c { y = p*2 } else { y = p*4 }; display y
	m := build("diamond", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0C"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtGoto, Target: 7},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 4, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	cfg := BuildCFG(&m)
	if len(cfg.Blocks) != 4 {
		t.Fatalf("blocks = %d (%v), want 4", len(cfg.Blocks), cfg)
	}
	// B0=[0..3] branches to B1=[4,5] and B2=[6]; both join at B3=[7].
	if got := cfg.Blocks[0].Succs; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("B0 succs = %v", got)
	}
	if got := cfg.Blocks[1].Succs; !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("B1 succs = %v", got)
	}
	if got := cfg.Blocks[2].Succs; !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("B2 succs = %v", got)
	}
	// Dominance: the join is dominated by the branch block but
	// post-dominates it; the arms are control dependent on the branch.
	if got := cfg.ImmediateDominator(3); got != 0 {
		t.Errorf("idom(join) = %d, want 0", got)
	}
	if got := cfg.ImmediatePostDominator(0); got != 3 {
		t.Errorf("ipdom(branch) = %d, want 3", got)
	}
	if got := cfg.ControlDeps(1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("ctrl deps of then-arm = %v", got)
	}
	if got := cfg.ControlDeps(2); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("ctrl deps of else-arm = %v", got)
	}
	if got := cfg.ControlDeps(3); len(got) != 0 {
		t.Errorf("join unexpectedly control dependent: %v", got)
	}
}

func TestCFGLoopControlDependence(t *testing.T) {
	// A bounded counter loop with a guarded formula inside:
	// while (i < n) { if startsWith { y = p*0.25; display } ; i++ }
	m := boundedLoopMethod("41 0C")
	cfg := BuildCFG(&m)
	// The loop header must have a back edge into it.
	header := cfg.BlockOf(2)
	hasBack := false
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s == header && b.ID > header {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("no back edge to loop header: %v", cfg)
	}
	// The loop header is control dependent on itself (it decides whether
	// the loop re-enters), and the formula block on the inner branch.
	deps := cfg.ControlDeps(header)
	selfDep := false
	for _, d := range deps {
		if d == header {
			selfDep = true
		}
	}
	if !selfDep {
		t.Errorf("loop header ctrl deps = %v, want self-dependence", deps)
	}
	formulaBlock := cfg.BlockOf(10) // y = p * 0.25
	innerBranch := cfg.BlockOf(6)
	deps = cfg.ControlDeps(formulaBlock)
	if len(deps) == 0 || deps[0] != innerBranch {
		t.Errorf("formula block ctrl deps = %v, want innermost %d", deps, innerBranch)
	}
}

// boundedLoopMethod builds the counter-loop style shared by CFG, dataflow
// and corpus tests: for (i = 0; i < 3; i++) { r = read; if
// startsWith(r, prefix) { p = parse(index(split(r))); display p*0.25 } }.
func boundedLoopMethod(prefix string) Method {
	return build("loop", nil,
		Stmt{Kind: StmtConst, Def: "n", ConstVal: 3},                                                         // 0
		Stmt{Kind: StmtConst, Def: "i", ConstVal: 0},                                                         // 1
		Stmt{Kind: StmtBinOp, Def: "t", Uses: []string{"i", "n"}, Op: "<"},                                   // 2
		Stmt{Kind: StmtIf, Uses: []string{"t"}, Else: 14},                                                    // 3
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},                                         // 4
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix}, // 5
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 12},                                                    // 6
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},                        // 7
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},                         // 8
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},                    // 9
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},        // 10
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},                                                         // 11
		Stmt{Kind: StmtBinOp, Def: "i", Uses: []string{"i"}, Op: "+", ConstVal: 1, HasConst: true},           // 12
		Stmt{Kind: StmtGoto, Target: 2},                                                                      // 13
	)
}
