package appanalysis

import "fmt"

// TruthFormula is one ground-truth label for an evaluation app: the
// formula a human reading the (synthetic) source would write down. An
// empty Condition or Expr, or KindUnknown, acts as a wildcard when the
// evaluator matches extracted formulas against the label.
type TruthFormula struct {
	Condition string
	Kind      FormulaKind
	Expr      string
}

// LabeledApp pairs an app with its ground truth and the corpus style it
// was generated from, so precision/recall can be broken down per style.
type LabeledApp struct {
	App   *App
	Style string
	Truth []TruthFormula
}

// EvalCorpus generates the deterministic labeled corpus used to score the
// analysis. Unlike Corpus (which mirrors Table 12's counts), every app
// here carries ground truth, and the styles deliberately include shapes
// the engine is known to miss — field-mediated splits, unmodelled native
// helpers, recursion, unit-ambiguous joins — so recall is honest rather
// than 1.0 by construction.
func EvalCorpus() []*LabeledApp {
	var corpus []*LabeledApp
	add := func(l *LabeledApp) { corpus = append(corpus, l) }

	add(straightLineApp("41 0C"))
	add(straightLineApp("62 F4 0D"))
	add(straightLineApp("61 8A"))
	add(branchingApp("41 0C", "41 05"))
	add(branchingApp("62 F4 0D", "62 F4 10"))
	add(loopApp("41 0C"))
	add(loopApp("61 92"))
	add(helperSplitEvalApp("62 0D 12"))
	add(helperSplitEvalApp("41 0D"))
	add(helperChainApp("41 05"))
	add(helperChainApp("62 F1 90"))
	add(condInHelperApp("61 8A"))
	add(condInHelperApp("41 10"))
	add(sanitisedApp("41 0C"))
	add(sanitisedApp("62 F4 0D"))
	add(untaintedApp(0))
	add(untaintedApp(1))
	add(fieldSplitApp("41 0C"))
	add(nativeHelperApp("41 11"))
	add(recursiveAccumApp("41 0F"))
	add(joinAmbiguousApp("41 0C"))
	return corpus
}

// explicit constructs a method in the explicit-CFG form (If carries its
// Else target; no legacy CtrlDep annotations), assigning sequential IDs.
func explicit(name string, params []string, stmts ...Stmt) Method {
	m := Method{Name: name, Params: params}
	for _, s := range stmts {
		s.ID = len(m.Stmts)
		s.CtrlDep = -1
		m.Stmts = append(m.Stmts, s)
	}
	return m
}

// straightLineApp is the Fig. 9 baseline: guarded read → split → parse →
// one arithmetic step → display, all in one method.
func straightLineApp(prefix string) *LabeledApp {
	m := explicit("onResponse", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 8},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	return &LabeledApp{
		App:   &App{Name: "straight-" + prefix, Methods: []Method{m}},
		Style: "straight-line",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), "(v(p) * 0.25)"}},
	}
}

// branchingApp dispatches on two response prefixes, each arm with its own
// formula — the if/else shape the control-dependence recovery must split.
func branchingApp(p1, p2 string) *LabeledApp {
	m := explicit("onResponse", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c1", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: p1},
		Stmt{Kind: StmtIf, Uses: []string{"c1"}, Else: 9},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "pa", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"pa"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
		Stmt{Kind: StmtGoto, Target: 16},
		Stmt{Kind: StmtInvoke, Def: "c2", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: p2},
		Stmt{Kind: StmtIf, Uses: []string{"c2"}, Else: 16},
		Stmt{Kind: StmtInvoke, Def: "s2", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f2", Callee: "Array.index", Uses: []string{"s2"}},
		Stmt{Kind: StmtInvoke, Def: "pb", Callee: "Integer.parseInt", Uses: []string{"f2"}},
		Stmt{Kind: StmtBinOp, Def: "z", Uses: []string{"pb"}, Op: "/", ConstVal: 2.55, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"z"}},
	)
	return &LabeledApp{
		App:   &App{Name: "branch-" + p1, Methods: []Method{m}},
		Style: "if-else dispatch",
		Truth: []TruthFormula{
			{p1, KindForPrefix(p1), "(v(pa) * 0.25)"},
			{p2, KindForPrefix(p2), "(v(pb) / 2.55)"},
		},
	}
}

// loopApp polls inside a bounded counter loop; the worklist must reach a
// fixed point across the back edge and keep the guard condition.
func loopApp(prefix string) *LabeledApp {
	m := explicit("pollLoop", nil,
		Stmt{Kind: StmtConst, Def: "n", ConstVal: 3},
		Stmt{Kind: StmtConst, Def: "i", ConstVal: 0},
		Stmt{Kind: StmtBinOp, Def: "t", Uses: []string{"i", "n"}, Op: "<"},
		Stmt{Kind: StmtIf, Uses: []string{"t"}, Else: 14},
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 12},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
		Stmt{Kind: StmtBinOp, Def: "i", Uses: []string{"i"}, Op: "+", ConstVal: 1, HasConst: true},
		Stmt{Kind: StmtGoto, Target: 2},
	)
	return &LabeledApp{
		App:   &App{Name: "loop-" + prefix, Methods: []Method{m}},
		Style: "bounded loop",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), "(v(p) * 0.25)"}},
	}
}

// helperSplitEvalApp reads in the caller and computes in a helper — the
// split the interprocedural summaries exist to reconstruct.
func helperSplitEvalApp(prefix string) *LabeledApp {
	main := explicit("onResponse", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "parseAndScale", Uses: []string{"f"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	helper := explicit("parseAndScale", []string{"frag"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"frag"}},
		Stmt{Kind: StmtBinOp, Def: "t", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtBinOp, Def: "out", Uses: []string{"t"}, Op: "-", ConstVal: 40, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"out"}},
	)
	return &LabeledApp{
		App:   &App{Name: "helper-split-" + prefix, Methods: []Method{main, helper}},
		Style: "helper split",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), "((v(p) * 0.25) - 40)"}},
	}
}

// helperChainApp routes the value through two helper levels; argument
// expressions must substitute through both summaries.
func helperChainApp(prefix string) *LabeledApp {
	main := explicit("show", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 7},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "toPhysical", Uses: []string{"p"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	outer := explicit("toPhysical", []string{"x"},
		Stmt{Kind: StmtInvoke, Def: "h", Callee: "applyOffset", Uses: []string{"x"}},
		Stmt{Kind: StmtReturn, Uses: []string{"h"}},
	)
	inner := explicit("applyOffset", []string{"v"},
		Stmt{Kind: StmtBinOp, Def: "o", Uses: []string{"v"}, Op: "-", ConstVal: 40, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"o"}},
	)
	return &LabeledApp{
		App:   &App{Name: "helper-chain-" + prefix, Methods: []Method{main, outer, inner}},
		Style: "helper chain",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), "(v(p) - 40)"}},
	}
}

// condInHelperApp checks the response prefix inside the helper; the
// caller inherits the condition from the callee's summary.
func condInHelperApp(prefix string) *LabeledApp {
	main := explicit("update", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "decode", Uses: []string{"r"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	helper := explicit("decode", []string{"resp"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"resp"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 7},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"resp"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "/", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"y"}},
		Stmt{Kind: StmtConst, Def: "z", ConstVal: 0},
		Stmt{Kind: StmtReturn, Uses: []string{"z"}},
	)
	return &LabeledApp{
		App:   &App{Name: "cond-helper-" + prefix, Methods: []Method{main, helper}},
		Style: "condition in helper",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), "(v(p) / 2)"}},
	}
}

// sanitisedApp overwrites the parsed value with a constant before the
// arithmetic: a true negative the strong-update kill must respect.
func sanitisedApp(prefix string) *LabeledApp {
	m := explicit("sanitise", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 9},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtConst, Def: "p", ConstVal: 0},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	return &LabeledApp{
		App:   &App{Name: "sanitised-" + prefix, Methods: []Method{m}},
		Style: "sanitised negative",
	}
}

// untaintedApp is layout arithmetic with no response data: a true
// negative for source tracking.
func untaintedApp(i int) *LabeledApp {
	m := explicit("layout", nil,
		Stmt{Kind: StmtAssign, Def: "w", Uses: []string{"screenWidth"}},
		Stmt{Kind: StmtBinOp, Def: "half", Uses: []string{"w"}, Op: "/", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"half"}},
	)
	return &LabeledApp{
		App:   &App{Name: fmt.Sprintf("untainted-%d", i), Methods: []Method{m}},
		Style: "untainted negative",
	}
}

// fieldSplitApp passes the response through an object field between a
// subclass reader and a parent parser — heap flow the engine does not
// model (§4.6's first unextractable style). Labeled positive, so it
// counts as a known miss.
func fieldSplitApp(prefix string) *LabeledApp {
	reader := explicit("SubClass.read", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 4},
		Stmt{Kind: StmtAssign, Def: "fieldStore", Uses: []string{"r"}},
	)
	parser := explicit("Parent.parse", nil,
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"field"}},
		Stmt{Kind: StmtBinOp, Def: "out", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"out"}},
	)
	return &LabeledApp{
		App:   &App{Name: "field-split-" + prefix, Methods: []Method{reader, parser}},
		Style: "field split (known miss)",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), ""}},
	}
}

// nativeHelperApp decodes through an unmodelled native call, which kills
// the taint (§4.6's second unextractable style). Labeled positive.
func nativeHelperApp(prefix string) *LabeledApp {
	m := explicit("parseViaHelper", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtInvoke, Def: "d", Callee: "NativeCodec.decode", Uses: []string{"r"}},
		Stmt{Kind: StmtBinOp, Def: "out", Uses: []string{"d"}, Op: "*", ConstVal: 0.5, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"out"}},
	)
	return &LabeledApp{
		App:   &App{Name: "native-helper-" + prefix, Methods: []Method{m}},
		Style: "native helper (known miss)",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), ""}},
	}
}

// recursiveAccumApp folds the value through a self-recursive retry helper
// whose arithmetic sits on the recursive result; the conservative
// recursion handling loses it. Labeled positive.
func recursiveAccumApp(prefix string) *LabeledApp {
	main := explicit("poll", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 7},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "retry", Uses: []string{"p"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	rec := explicit("retry", []string{"x"},
		Stmt{Kind: StmtAssign, Def: "g", Uses: []string{"shouldRetry"}},
		Stmt{Kind: StmtIf, Uses: []string{"g"}, Else: 5},
		Stmt{Kind: StmtInvoke, Def: "t", Callee: "retry", Uses: []string{"x"}},
		Stmt{Kind: StmtBinOp, Def: "z", Uses: []string{"t"}, Op: "+", ConstVal: 1, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"z"}},
		Stmt{Kind: StmtReturn, Uses: []string{"x"}},
	)
	return &LabeledApp{
		App:   &App{Name: "recursive-" + prefix, Methods: []Method{main, rec}},
		Style: "recursive helper (known miss)",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), ""}},
	}
}

// joinAmbiguousApp computes different scalings in the two arms of a
// branch the engine cannot resolve; reconstruction conservatively
// refuses. Labeled positive (a human would report a unit-dependent
// formula).
func joinAmbiguousApp(prefix string) *LabeledApp {
	m := explicit("ambiguous", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "pa", Callee: "Integer.parseInt", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: prefix},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"pa"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtGoto, Target: 7},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"pa"}, Op: "*", ConstVal: 4, HasConst: true},
		Stmt{Kind: StmtBinOp, Def: "z", Uses: []string{"y"}, Op: "+", ConstVal: 1, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"z"}},
	)
	return &LabeledApp{
		App:   &App{Name: "ambiguous-" + prefix, Methods: []Method{m}},
		Style: "ambiguous join (known miss)",
		Truth: []TruthFormula{{prefix, KindForPrefix(prefix), ""}},
	}
}
