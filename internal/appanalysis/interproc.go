package appanalysis

// Interprocedural layer: a call graph over an app's own methods and a
// bottom-up traversal that analyses callees before callers, so each
// caller's dataflow can map argument taint through the callee's summary
// and each caller's reconstruction can inline the callee's return
// expression. Recursive edges are left unresolved — a call into an
// unfinished summary kills taint, the paper's conservative treatment of
// apps its tool cannot analyse.

// analyzer holds the per-app analysis state.
type analyzer struct {
	app     *App
	methods map[string]*Method
	// order lists method names callees-first (DFS postorder over the call
	// graph, roots in declaration order).
	order     []string
	cfgs      map[string]*CFG
	flows     map[string]*dataflowResult
	summaries map[string]*Summary
}

func newAnalyzer(app *App) *analyzer {
	a := &analyzer{
		app:       app,
		methods:   map[string]*Method{},
		cfgs:      map[string]*CFG{},
		flows:     map[string]*dataflowResult{},
		summaries: map[string]*Summary{},
	}
	for mi := range app.Methods {
		m := &app.Methods[mi]
		if _, dup := a.methods[m.Name]; dup {
			continue // first declaration wins; corpus names are unique
		}
		a.methods[m.Name] = m
	}

	const (
		unvisited = iota
		onStack
		done
	)
	state := map[string]int{}
	var visit func(name string)
	visit = func(name string) {
		if state[name] != unvisited {
			return // done, or a back edge closing a recursion cycle
		}
		state[name] = onStack
		m := a.methods[name]
		for i := range m.Stmts {
			s := &m.Stmts[i]
			if s.Kind != StmtInvoke {
				continue
			}
			if _, ok := a.methods[s.Callee]; ok {
				visit(s.Callee)
			}
		}
		state[name] = done
		a.order = append(a.order, name)
	}
	for mi := range app.Methods {
		visit(app.Methods[mi].Name)
	}
	return a
}

// CallGraph returns the app-level call edges caller → callees (framework
// APIs excluded), with callees in first-call order. Exposed for tests and
// tooling.
func CallGraph(app *App) map[string][]string {
	methods := map[string]bool{}
	for mi := range app.Methods {
		methods[app.Methods[mi].Name] = true
	}
	out := map[string][]string{}
	for mi := range app.Methods {
		m := &app.Methods[mi]
		for i := range m.Stmts {
			s := &m.Stmts[i]
			if s.Kind == StmtInvoke && methods[s.Callee] {
				out[m.Name] = appendUniqueString(out[m.Name], s.Callee)
			}
		}
	}
	return out
}

func appendUniqueString(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// run analyses every method bottom-up: CFG construction, the worklist
// dataflow (with interprocedural taint transfer through already-computed
// summaries), then the method's own summary.
func (a *analyzer) run() {
	for _, name := range a.order {
		m := a.methods[name]
		cfg := BuildCFG(m)
		flow := runDataflow(cfg, a.callMask)
		a.cfgs[name] = cfg
		a.flows[name] = flow
		a.summaries[name] = a.buildSummary(name, cfg, flow)
	}
}

// callMask implements callMaskFunc over the summaries computed so far.
// Callees without a summary — framework APIs, or recursive calls whose
// summary is still being computed — report ok=false, killing taint.
func (a *analyzer) callMask(callee string, argMasks []uint64) (uint64, bool) {
	sum, ok := a.summaries[callee]
	if !ok || sum == nil {
		return 0, false
	}
	mask := sum.ReturnMask & respLabel
	for i := range argMasks {
		if sum.ReturnMask&paramLabel(i) != 0 {
			mask |= argMasks[i]
		}
	}
	return mask, true
}
