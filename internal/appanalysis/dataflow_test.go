package appanalysis

import (
	"strings"
	"testing"
	"time"
)

func TestWorklistReachesFixedPointOnLoopingCFG(t *testing.T) {
	// The termination guarantee of the acceptance criteria: a CFG with a
	// back edge must reach a fixed point, and the guarded formula inside
	// the loop must come out with its condition intact.
	m := boundedLoopMethod("41 0C")
	app := &App{Name: "loop-app", Methods: []Method{m}}

	done := make(chan []Formula, 1)
	go func() { done <- Analyze(app) }()
	select {
	case formulas := <-done:
		if len(formulas) != 1 {
			t.Fatalf("formulas = %v, want 1", formulas)
		}
		f := formulas[0]
		if f.Condition != "41 0C" || f.Kind != KindOBD {
			t.Errorf("condition = %q kind = %v", f.Condition, f.Kind)
		}
		if !strings.Contains(f.Expr, "* 0.25") {
			t.Errorf("expr = %q", f.Expr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worklist analysis did not terminate on a looping CFG")
	}
}

func TestReachingDefsUnionAtJoin(t *testing.T) {
	// y is defined in both arms of a diamond; at the join its use must see
	// both definitions, and — because they disagree — reconstruction must
	// conservatively refuse the formula anchored on the consumer.
	m := build("join", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0C"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtGoto, Target: 7},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 4, HasConst: true},
		Stmt{Kind: StmtBinOp, Def: "z", Uses: []string{"y"}, Op: "+", ConstVal: 1, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"z"}},
	)
	cfg := BuildCFG(&m)
	flow := runDataflow(cfg, nil)
	defs := flow.defsOf("y", 7)
	if len(defs) != 2 || defs[0] != 4 || defs[1] != 6 {
		t.Fatalf("reaching defs of y at join = %v, want [4 6]", defs)
	}

	app := &App{Name: "join-app", Methods: []Method{m}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("ambiguous join reconstructed anyway: %v", got)
	}
}

func TestIdenticalDefsAtJoinStillReconstruct(t *testing.T) {
	// Both arms compute the same expression: the union-merge sees two
	// definitions that agree, so the formula survives.
	m := build("agree", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0C"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtGoto, Target: 7},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtBinOp, Def: "z", Uses: []string{"y"}, Op: "+", ConstVal: 1, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"z"}},
	)
	app := &App{Name: "agree-app", Methods: []Method{m}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want 1", got)
	}
	if want := "((v(p) * 2) + 1)"; got[0].Expr != want {
		t.Errorf("expr = %q, want %q", got[0].Expr, want)
	}
}

func TestTaintThroughSplitAndIndex(t *testing.T) {
	// Taint must survive String.split → Array.index element access.
	m := build("split", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "/", ConstVal: 2.55, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	cfg := BuildCFG(&m)
	flow := runDataflow(cfg, nil)
	for _, v := range []string{"s", "f", "p"} {
		if flow.stmtIn[5].taint[v]&respLabel == 0 {
			t.Errorf("%s lost response taint through split/index", v)
		}
	}
	app := &App{Name: "split-app", Methods: []Method{m}}
	if got := Analyze(app); len(got) != 1 {
		t.Fatalf("formulas = %v, want 1", got)
	}
}

func TestSanitisingConstOverwriteKillsTaint(t *testing.T) {
	// The negative case of the satellite checklist: overwriting the
	// extracted value with a constant before the arithmetic must kill the
	// taint and suppress the formula.
	m := build("sanitise", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtConst, Def: "p", ConstVal: 0}, // sanitising overwrite
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	cfg := BuildCFG(&m)
	flow := runDataflow(cfg, nil)
	if flow.stmtIn[5].taint["p"] != 0 {
		t.Error("constant overwrite did not kill p's taint")
	}
	app := &App{Name: "sanitise-app", Methods: []Method{m}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("sanitised value extracted anyway: %v", got)
	}
}

func TestRedefinitionAfterUseDoesNotCorruptSlice(t *testing.T) {
	// Regression for the last-def-wins defsite map of the linear
	// analyzer: p is redefined from an untainted field *after* the formula
	// uses it. The old map resolved p to the later definition and the
	// backward slice failed; reaching definitions resolve the use to the
	// definition that actually flows into it.
	m := Method{Name: "redef"}
	add := func(s Stmt) int {
		s.ID = len(m.Stmts)
		m.Stmts = append(m.Stmts, s)
		return s.ID
	}
	add(Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read", CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0D", CtrlDep: -1})
	ifID := add(Stmt{Kind: StmtIf, Uses: []string{"c"}, CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"r"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true, CtrlDep: ifID})
	add(Stmt{Kind: StmtDisplay, Uses: []string{"y"}, CtrlDep: ifID})
	// After the guarded region: reuse the temp for unrelated plumbing.
	add(Stmt{Kind: StmtAssign, Def: "p", Uses: []string{"screenWidth"}, CtrlDep: -1})

	app := &App{Name: "redef-app", Methods: []Method{m}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want 1 (reassigned temp corrupted the slice)", got)
	}
	if got[0].Condition != "41 0D" || got[0].Expr != "(v(p) * 2)" {
		t.Errorf("formula = %+v", got[0])
	}
}

func TestConditionUnderNestedExplicitBranches(t *testing.T) {
	// Satellite coverage: condition extraction under nested ifs in the
	// explicit-CFG form, where the inner branch has no startsWith and the
	// walk must climb the control-dependence chain to the outer one.
	m := build("nested-explicit", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "62 F4 0D"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 9},
		Stmt{Kind: StmtAssign, Def: "g", Uses: []string{"someFlag"}},
		Stmt{Kind: StmtIf, Uses: []string{"g"}, Else: 9},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "-", ConstVal: 40, HasConst: true},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	app := &App{Name: "nested-x", Methods: []Method{m}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want 1", got)
	}
	if got[0].Condition != "62 F4 0D" || got[0].Kind != KindUDS {
		t.Errorf("formula = %+v", got[0])
	}
}
