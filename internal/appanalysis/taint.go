package appanalysis

import (
	"fmt"
	"strings"
)

// ResponseAPIs are the framework calls whose results carry diagnostic
// response bytes — the taint sources of Algorithm 1 line 5.
var ResponseAPIs = map[string]bool{
	"InputStream.read":        true,
	"BluetoothSocket.read":    true,
	"Socket.read":             true,
	"SerialPort.read":         true,
	"Characteristic.getValue": true,
}

// propagatingAPIs pass taint from their receiver/arguments to their result
// (string manipulation on the response, parsing to integers).
var propagatingAPIs = map[string]bool{
	"String.replace":     true,
	"String.trim":        true,
	"String.split":       true,
	"String.substring":   true,
	"Integer.parseInt":   true,
	"Long.parseLong":     true,
	"Double.parseDouble": true,
	"Array.index":        true,
	"String.startsWith":  true, // boolean over tainted data: condition taint
}

// Analyze runs Algorithm 1 over one app: forward taint analysis from the
// response-reading APIs, arithmetic detection, data-dependency formula
// reconstruction, and control-dependency condition extraction.
func Analyze(app *App) []Formula {
	var out []Formula
	for mi := range app.Methods {
		out = append(out, analyzeMethod(app.Name, &app.Methods[mi])...)
	}
	return out
}

func analyzeMethod(appName string, m *Method) []Formula {
	// defsite[v] is the statement defining v (SSA-style: last def wins,
	// which matches the generated corpus).
	defsite := map[string]*Stmt{}
	tainted := map[string]bool{}

	for i := range m.Stmts {
		s := &m.Stmts[i]
		if s.Def != "" {
			defsite[s.Def] = s
		}
		switch s.Kind {
		case StmtInvoke:
			if ResponseAPIs[s.Callee] {
				tainted[s.Def] = true
				continue
			}
			if propagatingAPIs[s.Callee] && anyTainted(tainted, s.Uses) {
				tainted[s.Def] = true
			}
		case StmtBinOp, StmtAssign:
			if anyTainted(tainted, s.Uses) && s.Def != "" {
				tainted[s.Def] = true
			}
		}
	}

	// Find the final arithmetic statements: tainted BinOps whose result is
	// not consumed by further arithmetic (Algorithm 1 focuses on the
	// statement computing the final result).
	consumedByMath := map[string]bool{}
	for i := range m.Stmts {
		s := &m.Stmts[i]
		if s.Kind == StmtBinOp {
			for _, u := range s.Uses {
				consumedByMath[u] = true
			}
		}
	}
	var out []Formula
	for i := range m.Stmts {
		s := &m.Stmts[i]
		if s.Kind != StmtBinOp || !tainted[s.Def] || consumedByMath[s.Def] {
			continue
		}
		expr, ok := reconstruct(s, defsite, map[string]bool{}, 0)
		if !ok {
			continue
		}
		cond := condition(s, m, defsite)
		out = append(out, Formula{
			App: appName, Method: m.Name,
			Condition: cond, Kind: KindForPrefix(cond), Expr: expr,
		})
	}
	return out
}

func anyTainted(tainted map[string]bool, uses []string) bool {
	for _, u := range uses {
		if tainted[u] {
			return true
		}
	}
	return false
}

// reconstruct follows data dependencies backwards from a statement and
// renders the arithmetic expression. Extraction points (parseInt of a
// response fragment) terminate the walk as numbered terminals v0, v1, ...
// in first-visit order (Algorithm 1 lines 9-10: "the data dependency
// relation analysis stops at [the statements that] extract int values from
// the response message").
func reconstruct(s *Stmt, defsite map[string]*Stmt, visiting map[string]bool, depth int) (string, bool) {
	if depth > 64 {
		return "", false // runaway chain: the paper's "complex apps" limitation
	}
	switch s.Kind {
	case StmtInvoke:
		if s.Callee == "Integer.parseInt" || s.Callee == "Long.parseLong" || s.Callee == "Double.parseDouble" {
			return "", true // terminal; caller assigns the v-number
		}
		return "", false
	case StmtAssign:
		if len(s.Uses) != 1 {
			return "", false
		}
		return reconstructVar(s.Uses[0], defsite, visiting, depth+1)
	case StmtBinOp:
		var left, right string
		switch {
		case s.HasConst && s.ConstLeft:
			left = formatNum(s.ConstVal)
			r, ok := reconstructVar(s.Uses[0], defsite, visiting, depth+1)
			if !ok {
				return "", false
			}
			right = r
		case s.HasConst:
			l, ok := reconstructVar(s.Uses[0], defsite, visiting, depth+1)
			if !ok {
				return "", false
			}
			left = l
			right = formatNum(s.ConstVal)
		default:
			if len(s.Uses) != 2 {
				return "", false
			}
			l, ok := reconstructVar(s.Uses[0], defsite, visiting, depth+1)
			if !ok {
				return "", false
			}
			r, ok := reconstructVar(s.Uses[1], defsite, visiting, depth+1)
			if !ok {
				return "", false
			}
			left, right = l, r
		}
		return "(" + left + " " + s.Op + " " + right + ")", true
	default:
		return "", false
	}
}

// reconstructVar resolves a variable to its defining expression.
func reconstructVar(v string, defsite map[string]*Stmt, visiting map[string]bool, depth int) (string, bool) {
	if visiting[v] {
		return "", false // cyclic dependency: not a pure formula
	}
	def, ok := defsite[v]
	if !ok {
		return "", false // parameter or field: outside the slice
	}
	if def.Kind == StmtInvoke &&
		(def.Callee == "Integer.parseInt" || def.Callee == "Long.parseLong" || def.Callee == "Double.parseDouble") {
		// Terminal: name the extracted value by its variable, normalised
		// to vN by the corpus's naming convention (variables are "vN").
		return normaliseTerminal(v), true
	}
	visiting[v] = true
	defer delete(visiting, v)
	return reconstruct(def, defsite, visiting, depth)
}

// normaliseTerminal renders extraction-point variables uniformly.
func normaliseTerminal(v string) string {
	if strings.HasPrefix(v, "v") {
		return v
	}
	return "v(" + v + ")"
}

// condition recovers the branch condition guarding a statement via control
// dependencies (Algorithm 1 lines 12-13): the dependent StmtIf whose
// condition variable is defined by String.startsWith("prefix").
func condition(s *Stmt, m *Method, defsite map[string]*Stmt) string {
	id := s.CtrlDep
	for id >= 0 && id < len(m.Stmts) {
		branch := &m.Stmts[id]
		if branch.Kind != StmtIf {
			break
		}
		if len(branch.Uses) == 1 {
			if def, ok := defsite[branch.Uses[0]]; ok &&
				def.Kind == StmtInvoke && def.Callee == "String.startsWith" {
				return def.StrConst
			}
		}
		id = branch.CtrlDep
	}
	return ""
}

func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
