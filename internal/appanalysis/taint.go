package appanalysis

import (
	"fmt"
	"strings"
)

// ResponseAPIs are the framework calls whose results carry diagnostic
// response bytes — the taint sources of Algorithm 1 line 5.
var ResponseAPIs = map[string]bool{
	"InputStream.read":        true,
	"BluetoothSocket.read":    true,
	"Socket.read":             true,
	"SerialPort.read":         true,
	"Characteristic.getValue": true,
}

// propagatingAPIs pass taint from their receiver/arguments to their result
// (string manipulation on the response, parsing to integers).
var propagatingAPIs = map[string]bool{
	"String.replace":     true,
	"String.trim":        true,
	"String.split":       true,
	"String.substring":   true,
	"Integer.parseInt":   true,
	"Long.parseLong":     true,
	"Double.parseDouble": true,
	"Array.index":        true,
	"String.startsWith":  true, // boolean over tainted data: condition taint
}

// extractionAPIs are Algorithm 1's terminals: the calls that turn response
// fragments into numeric values, where the backward slice stops.
var extractionAPIs = map[string]bool{
	"Integer.parseInt":   true,
	"Long.parseLong":     true,
	"Double.parseDouble": true,
}

// Analyze runs Algorithm 1 over one app. Each method is normalised into a
// CFG, taint and reaching definitions are computed by a worklist analysis
// with set-union merge at joins, control dependence comes from the
// post-dominator tree, and per-method summaries (computed callees-first
// over the call graph) let formulas factored into helper methods be
// reconstructed end to end.
func Analyze(app *App) []Formula {
	a := newAnalyzer(app)
	a.run()
	var out []Formula
	seen := map[string]bool{}
	for mi := range app.Methods {
		name := app.Methods[mi].Name
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, a.formulasFor(name)...)
	}
	return out
}

// Summaries exposes the interprocedural digests computed for an app,
// keyed by method name. Exposed for tests and tooling.
func Summaries(app *App) map[string]*Summary {
	a := newAnalyzer(app)
	a.run()
	return a.summaries
}

// formulasFor scans one analysed method for formula anchors and emits the
// reconstructed (condition, expression) pairs.
//
// An anchor is a statement defining a response-tainted value by arithmetic
// — a StmtBinOp, or a call into an app method whose summary expression
// contains arithmetic — whose result is not consumed by further arithmetic
// in this method, not returned (then it is the caller's formula, counted
// there), and not passed into a callee that folds it into its own return
// value.
func (a *analyzer) formulasFor(name string) []Formula {
	cfg := a.cfgs[name]
	flow := a.flows[name]
	m := cfg.Method

	consumed := map[string]bool{}
	for i := range m.Stmts {
		s := &m.Stmts[i]
		switch s.Kind {
		case StmtBinOp, StmtReturn:
			for _, u := range s.Uses {
				consumed[u] = true
			}
		case StmtInvoke:
			if sum, ok := a.summaries[s.Callee]; ok && sum != nil {
				for ai, u := range s.Uses {
					if sum.ReturnMask&paramLabel(ai) != 0 {
						consumed[u] = true
					}
				}
			}
		}
	}

	var out []Formula
	for i := range m.Stmts {
		s := &m.Stmts[i]
		if s.Def == "" || consumed[s.Def] {
			continue
		}
		var callSummary *Summary
		switch s.Kind {
		case StmtBinOp:
			// arithmetic anchor
		case StmtInvoke:
			sum, ok := a.summaries[s.Callee]
			if !ok || sum == nil || !sum.HasExpr || !sum.Arith {
				continue
			}
			callSummary = sum
		default:
			continue
		}
		if flow.maskOf(s)&respLabel == 0 {
			continue
		}
		expr, _, ok := a.reconstructStmt(name, s, false, map[int]bool{}, 0)
		if !ok || strings.Contains(expr, "⟨p") {
			continue
		}
		cond := a.condition(name, s)
		if cond == "" && callSummary != nil && len(callSummary.Conditions) == 1 {
			// The helper checks the prefix itself: inherit its condition.
			cond = callSummary.Conditions[0]
		}
		out = append(out, Formula{
			App: a.app.Name, Method: m.Name,
			Condition: cond, Kind: KindForPrefix(cond), Expr: expr,
		})
	}
	return out
}

// reconstructStmt renders the expression a statement computes, following
// data dependencies backwards through reaching definitions. Extraction
// points terminate the walk as named terminals (Algorithm 1 lines 9-10);
// in summary mode, parameters terminate it as ⟨pN⟩ placeholders. The
// second result reports whether the expression contains arithmetic.
func (a *analyzer) reconstructStmt(name string, s *Stmt, summaryMode bool, visiting map[int]bool, depth int) (string, bool, bool) {
	if depth > 64 {
		return "", false, false // runaway chain: the paper's "complex apps" limitation
	}
	switch s.Kind {
	case StmtInvoke:
		if extractionAPIs[s.Callee] {
			return normaliseTerminal(s.Def), false, true
		}
		if sum, ok := a.summaries[s.Callee]; ok && sum != nil && sum.HasExpr {
			return a.inlineCall(name, s, sum, summaryMode, visiting, depth)
		}
		return "", false, false
	case StmtConst:
		return formatNum(s.ConstVal), false, true
	case StmtAssign:
		if len(s.Uses) != 1 {
			return "", false, false
		}
		return a.reconstructVar(name, s.Uses[0], s.ID, summaryMode, visiting, depth+1)
	case StmtBinOp:
		var left, right string
		switch {
		case s.HasConst && s.ConstLeft:
			left = formatNum(s.ConstVal)
			r, _, ok := a.reconstructVar(name, s.Uses[0], s.ID, summaryMode, visiting, depth+1)
			if !ok {
				return "", false, false
			}
			right = r
		case s.HasConst:
			l, _, ok := a.reconstructVar(name, s.Uses[0], s.ID, summaryMode, visiting, depth+1)
			if !ok {
				return "", false, false
			}
			left = l
			right = formatNum(s.ConstVal)
		default:
			if len(s.Uses) != 2 {
				return "", false, false
			}
			l, _, ok := a.reconstructVar(name, s.Uses[0], s.ID, summaryMode, visiting, depth+1)
			if !ok {
				return "", false, false
			}
			r, _, ok := a.reconstructVar(name, s.Uses[1], s.ID, summaryMode, visiting, depth+1)
			if !ok {
				return "", false, false
			}
			left, right = l, r
		}
		return "(" + left + " " + s.Op + " " + right + ")", true, true
	default:
		return "", false, false
	}
}

// reconstructVar resolves a variable at a use site to its defining
// expression via the reaching definitions at that point. A use reached by
// several definitions (a join) reconstructs only if every definition
// renders the same expression — the conservative reading of a merge.
func (a *analyzer) reconstructVar(name, v string, atStmt int, summaryMode bool, visiting map[int]bool, depth int) (string, bool, bool) {
	if depth > 64 {
		return "", false, false
	}
	flow := a.flows[name]
	m := a.cfgs[name].Method
	defs := flow.defsOf(v, atStmt)
	if len(defs) == 0 {
		return "", false, false // field or undefined: outside the slice
	}
	var expr string
	var arith, first bool = false, true
	for _, d := range defs {
		var e string
		var ar, ok bool
		if d < 0 {
			// Parameter pseudo-definition.
			if !summaryMode {
				return "", false, false
			}
			e, ar, ok = placeholder(-d-1), false, true
		} else {
			if visiting[d] {
				return "", false, false // cyclic dependency: not a pure formula
			}
			def := &m.Stmts[d]
			if def.Kind == StmtInvoke && extractionAPIs[def.Callee] {
				// Terminal: name the extracted value by its variable.
				e, ar, ok = normaliseTerminal(v), false, true
			} else {
				visiting[d] = true
				e, ar, ok = a.reconstructStmt(name, def, summaryMode, visiting, depth)
				delete(visiting, d)
			}
		}
		if !ok {
			return "", false, false
		}
		if first {
			expr, arith, first = e, ar, false
		} else if e != expr {
			return "", false, false // diverging definitions at a join
		}
	}
	return expr, arith, true
}

// condition recovers the response-prefix condition guarding a statement:
// walk the control-dependence relation outwards from the statement's
// block (innermost branch first) and return the prefix of the first
// branch whose condition variable is defined by String.startsWith.
func (a *analyzer) condition(name string, s *Stmt) string {
	cfg := a.cfgs[name]
	flow := a.flows[name]
	m := cfg.Method
	seen := map[int]bool{}
	var walk func(block int) string
	walk = func(block int) string {
		for _, br := range cfg.ControlDeps(block) {
			if seen[br] {
				continue
			}
			seen[br] = true
			bb := cfg.Blocks[br]
			branch := &m.Stmts[bb.Stmts[len(bb.Stmts)-1]]
			if branch.Kind == StmtIf && len(branch.Uses) == 1 {
				if defs := flow.defsOf(branch.Uses[0], branch.ID); len(defs) == 1 && defs[0] >= 0 {
					def := &m.Stmts[defs[0]]
					if def.Kind == StmtInvoke && def.Callee == "String.startsWith" {
						return def.StrConst
					}
				}
			}
			if p := walk(br); p != "" {
				return p
			}
		}
		return ""
	}
	return walk(cfg.BlockOf(s.ID))
}

// normaliseTerminal renders extraction-point variables uniformly.
func normaliseTerminal(v string) string {
	if strings.HasPrefix(v, "v") {
		return v
	}
	return "v(" + v + ")"
}

func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
