package appanalysis

// Forward worklist dataflow over a method CFG. Two fact families are
// computed in one fixed-point pass:
//
//   - taint, as a label mask per variable: bit 0 marks data derived from a
//     response-reading API, bit i+1 marks data derived from the method's
//     i-th parameter. Tracking parameter labels separately is what makes
//     per-method summaries parametric — a caller maps its argument masks
//     through the callee's return mask instead of re-analysing the callee.
//   - reaching definitions, as a set of defining statement IDs per
//     variable. Joins merge by set union; a use reached by more than one
//     definition is reconstructed only if every definition agrees.
//
// Both transfer functions are monotone over finite lattices (kills depend
// on the statement, not the incoming facts), so the worklist terminates on
// any CFG, including looping ones.

const respLabel uint64 = 1

// paramLabel is the taint-label bit for parameter i.
func paramLabel(i int) uint64 { return 1 << uint(i+1) }

// paramDef is the pseudo definition-site ID for parameter i (real
// statement IDs are non-negative).
func paramDef(i int) int { return -(i + 1) }

// defset is a set of definition-site statement IDs.
type defset map[int]struct{}

// flowFacts is the dataflow state at one program point.
type flowFacts struct {
	taint map[string]uint64
	reach map[string]defset
}

func newFacts() flowFacts {
	return flowFacts{taint: map[string]uint64{}, reach: map[string]defset{}}
}

func (f flowFacts) clone() flowFacts {
	out := newFacts()
	for v, m := range f.taint {
		out.taint[v] = m
	}
	for v, ds := range f.reach {
		c := make(defset, len(ds))
		for d := range ds {
			c[d] = struct{}{}
		}
		out.reach[v] = c
	}
	return out
}

// merge unions other into f, reporting whether f changed.
func (f flowFacts) merge(other flowFacts) bool {
	changed := false
	for v, m := range other.taint {
		if f.taint[v]|m != f.taint[v] {
			f.taint[v] |= m
			changed = true
		}
	}
	for v, ds := range other.reach {
		dst, ok := f.reach[v]
		if !ok {
			dst = defset{}
			f.reach[v] = dst
		}
		for d := range ds {
			if _, ok := dst[d]; !ok {
				dst[d] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// callMaskFunc maps a call to an app-level method through the callee's
// summary: given the label masks of the actual arguments, the mask of the
// returned value. ok is false when the callee is unknown or unanalysable
// (recursion), which kills taint conservatively.
type callMaskFunc func(callee string, argMasks []uint64) (mask uint64, ok bool)

// dataflowResult carries the per-statement input facts of one method.
type dataflowResult struct {
	cfg *CFG
	// stmtIn[i] is the dataflow state immediately before statement i.
	stmtIn []flowFacts
	// callMask is retained so expression reconstruction can re-apply the
	// same interprocedural transfer.
	callMask callMaskFunc
}

// transfer applies one statement to facts in place.
func transfer(s *Stmt, f flowFacts, callMask callMaskFunc) {
	useMask := uint64(0)
	for _, u := range s.Uses {
		useMask |= f.taint[u]
	}
	if s.Def == "" {
		return
	}
	var mask uint64
	switch s.Kind {
	case StmtInvoke:
		switch {
		case ResponseAPIs[s.Callee]:
			mask = respLabel
		case propagatingAPIs[s.Callee]:
			mask = useMask
		default:
			if callMask != nil {
				argMasks := make([]uint64, len(s.Uses))
				for i, u := range s.Uses {
					argMasks[i] = f.taint[u]
				}
				if m, ok := callMask(s.Callee, argMasks); ok {
					mask = m
				}
			}
			// Unknown APIs (the paper's unmodelled native helpers) break
			// propagation: mask stays 0.
		}
	case StmtBinOp, StmtAssign:
		mask = useMask
	case StmtConst:
		mask = 0 // a constant overwrite sanitises the variable
	}
	// Strong update: the definition replaces whatever reached here.
	if mask == 0 {
		delete(f.taint, s.Def)
	} else {
		f.taint[s.Def] = mask
	}
	f.reach[s.Def] = defset{s.ID: {}}
}

// runDataflow runs the forward worklist analysis to a fixed point and
// materialises per-statement input facts.
func runDataflow(cfg *CFG, callMask callMaskFunc) *dataflowResult {
	m := cfg.Method
	entry := newFacts()
	for i, p := range m.Params {
		entry.taint[p] = paramLabel(i)
		entry.reach[p] = defset{paramDef(i): {}}
	}

	n := len(cfg.Blocks)
	in := make([]flowFacts, n)
	out := make([]flowFacts, n)
	for i := 0; i < n; i++ {
		in[i] = newFacts()
		out[i] = newFacts()
	}
	if n > 0 {
		in[0].merge(entry)
	}

	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true
	}
	for anyDirty(dirty) {
		for b := 0; b < n; b++ {
			if !dirty[b] {
				continue
			}
			dirty[b] = false
			cur := in[b].clone()
			for _, id := range cfg.Blocks[b].Stmts {
				transfer(&m.Stmts[id], cur, callMask)
			}
			if !out[b].merge(cur) {
				continue
			}
			for _, s := range cfg.Blocks[b].Succs {
				if s == cfg.ExitID {
					continue
				}
				if in[s].merge(out[b]) {
					dirty[s] = true
				}
			}
		}
	}

	res := &dataflowResult{cfg: cfg, stmtIn: make([]flowFacts, len(m.Stmts)), callMask: callMask}
	for b := 0; b < n; b++ {
		cur := in[b].clone()
		for _, id := range cfg.Blocks[b].Stmts {
			res.stmtIn[id] = cur.clone()
			transfer(&m.Stmts[id], cur, callMask)
		}
	}
	return res
}

func anyDirty(d []bool) bool {
	for _, v := range d {
		if v {
			return true
		}
	}
	return false
}

// maskOf evaluates the taint mask a statement's definition receives — the
// transfer function's output for Def, given the statement's input facts.
func (r *dataflowResult) maskOf(s *Stmt) uint64 {
	f := r.stmtIn[s.ID].clone()
	transfer(s, f, r.callMask)
	return f.taint[s.Def]
}

// defsOf lists the definition sites of v reaching statement id, sorted.
func (r *dataflowResult) defsOf(v string, id int) []int {
	ds := r.stmtIn[id].reach[v]
	out := make([]int, 0, len(ds))
	for d := range ds {
		out = append(out, d)
	}
	// Insertion sort keeps this allocation-light; the sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
