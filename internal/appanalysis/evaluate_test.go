package appanalysis

import "testing"

func TestEvaluateLabeledCorpus(t *testing.T) {
	eval := Evaluate(EvalCorpus())
	if eval.Apps != 21 {
		t.Errorf("apps = %d, want 21", eval.Apps)
	}
	// Every extraction the engine makes is correct: no false positives,
	// from the sanitised/untainted negatives or anywhere else.
	if eval.FP != 0 {
		t.Errorf("false positives = %d, want 0 (precision %.3f)", eval.FP, eval.Precision())
	}
	// The four "known miss" styles (field split, native helper, recursion,
	// ambiguous join) are labeled positive and stay unmatched.
	if eval.FN != 4 {
		t.Errorf("false negatives = %d, want 4", eval.FN)
	}
	if eval.TP != 15 {
		t.Errorf("true positives = %d, want 15", eval.TP)
	}
	if p := eval.Precision(); p != 1.0 {
		t.Errorf("precision = %.3f, want 1.0", p)
	}
	if r := eval.Recall(); r <= 0.75 || r >= 0.85 {
		t.Errorf("recall = %.3f, want ~0.79", r)
	}
	// The per-style breakdown localises every miss to a known-miss style.
	for _, s := range eval.PerStyle {
		miss := s.Style == "field split (known miss)" ||
			s.Style == "native helper (known miss)" ||
			s.Style == "recursive helper (known miss)" ||
			s.Style == "ambiguous join (known miss)"
		if miss && s.FN == 0 {
			t.Errorf("style %q unexpectedly recovered", s.Style)
		}
		if !miss && s.FN != 0 {
			t.Errorf("style %q has %d false negatives", s.Style, s.FN)
		}
	}
}

func TestTruthWildcards(t *testing.T) {
	f := Formula{Condition: "41 0C", Kind: KindOBD, Expr: "(v(p) * 0.25)"}
	cases := []struct {
		truth TruthFormula
		want  bool
	}{
		{TruthFormula{"41 0C", KindOBD, "(v(p) * 0.25)"}, true},
		{TruthFormula{"", KindUnknown, ""}, true},
		{TruthFormula{"41 0C", KindUnknown, ""}, true},
		{TruthFormula{"41 0D", KindOBD, ""}, false},
		{TruthFormula{"41 0C", KindUDS, ""}, false},
		{TruthFormula{"41 0C", KindOBD, "(v(p) * 2)"}, false},
	}
	for i, c := range cases {
		if got := c.truth.matches(&f); got != c.want {
			t.Errorf("case %d: matches = %v, want %v", i, got, c.want)
		}
	}
}
