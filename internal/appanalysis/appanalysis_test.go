package appanalysis

import (
	"math/rand"
	"strings"
	"testing"
)

// fig9App reproduces the paper's Fig. 9 example: the "41 0C" engine-speed
// parser whose formula is v1*0.25 + 64*v2.
func fig9App() *App {
	m := Method{Name: "processResponse"}
	add := func(s Stmt) int {
		s.ID = len(m.Stmts)
		m.Stmts = append(m.Stmts, s)
		return s.ID
	}
	add(Stmt{Kind: StmtInvoke, Def: "r7", Callee: "InputStream.read", CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "z0", Callee: "String.startsWith",
		Uses: []string{"r7"}, StrConst: "41 0C", CtrlDep: -1})
	ifID := add(Stmt{Kind: StmtIf, Uses: []string{"z0"}, CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "r7b", Callee: "String.replace", Uses: []string{"r7"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "r7c", Callee: "String.trim", Uses: []string{"r7b"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "r9", Callee: "String.split", Uses: []string{"r7c"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "r7_21", Callee: "Array.index", Uses: []string{"r9"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "i2", Callee: "Integer.parseInt", Uses: []string{"r7_21"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "r7_22", Callee: "Array.index", Uses: []string{"r9"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtInvoke, Def: "i7", Callee: "Integer.parseInt", Uses: []string{"r7_22"}, CtrlDep: ifID})
	add(Stmt{Kind: StmtBinOp, Def: "d0_1", Uses: []string{"i2"}, Op: "*",
		ConstVal: 64, HasConst: true, ConstLeft: true, CtrlDep: ifID})
	add(Stmt{Kind: StmtBinOp, Def: "d1_1", Uses: []string{"i7"}, Op: "*",
		ConstVal: 0.25, HasConst: true, CtrlDep: ifID})
	add(Stmt{Kind: StmtBinOp, Def: "d0_2", Uses: []string{"d1_1", "d0_1"}, Op: "+", CtrlDep: ifID})
	add(Stmt{Kind: StmtDisplay, Uses: []string{"d0_2"}, CtrlDep: ifID})
	return &App{Name: "Fig9", Methods: []Method{m}}
}

func TestAnalyzeFig9Example(t *testing.T) {
	formulas := Analyze(fig9App())
	if len(formulas) != 1 {
		t.Fatalf("formulas = %d, want 1: %v", len(formulas), formulas)
	}
	f := formulas[0]
	if f.Condition != "41 0C" {
		t.Fatalf("condition = %q", f.Condition)
	}
	if f.Kind != KindOBD {
		t.Fatalf("kind = %v", f.Kind)
	}
	// "v1 * 0.25 + 64 * v2" modulo variable naming.
	if !strings.Contains(f.Expr, "* 0.25") || !strings.Contains(f.Expr, "64 *") {
		t.Fatalf("expr = %q", f.Expr)
	}
}

func TestAnalyzeIgnoresUntaintedMath(t *testing.T) {
	m := uiMethod()
	app := &App{Name: "pure-ui", Methods: []Method{m}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("untainted arithmetic extracted: %v", got)
	}
}

func TestAnalyzeIgnoresDTCOnly(t *testing.T) {
	app := &App{Name: "dtc", Methods: []Method{dtcMethod()}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("DTC-only app produced formulas: %v", got)
	}
}

func TestAnalyzeUnextractableStyles(t *testing.T) {
	for i := 0; i < 2; i++ {
		app := unextractableApp(i)
		if got := Analyze(app); len(got) != 0 {
			t.Fatalf("style %d extracted %v", i, got)
		}
	}
}

func TestKindForPrefix(t *testing.T) {
	cases := map[string]FormulaKind{
		"41 0C":    KindOBD,
		"62 F4 0D": KindUDS,
		"61 07":    KindKWP,
		"70 15":    KindKWP,
		"6F 09":    KindUDS,
		"99":       KindUnknown,
		"":         KindUnknown,
	}
	for prefix, want := range cases {
		if got := KindForPrefix(prefix); got != want {
			t.Errorf("KindForPrefix(%q) = %v, want %v", prefix, got, want)
		}
	}
}

func TestCorpusComposition(t *testing.T) {
	apps := Corpus()
	if len(apps) != CorpusSize {
		t.Fatalf("corpus size = %d, want %d", len(apps), CorpusSize)
	}
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Fatalf("duplicate app name %q", a.Name)
		}
		names[a.Name] = true
	}
}

func TestCorpusReproducesTable12(t *testing.T) {
	apps := Corpus()
	byName := map[string]*App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	for _, e := range Table12Expected() {
		app, ok := byName[e.Name]
		if !ok {
			t.Fatalf("app %q missing from corpus", e.Name)
		}
		counts := CountByKind(Analyze(app))
		if counts[e.Kind] != e.Count {
			t.Errorf("%s: %s formulas = %d, want %d", e.Name, e.Kind, counts[e.Kind], e.Count)
		}
	}
}

func TestCorpusOnlyThreeUDSKWPApps(t *testing.T) {
	apps := Corpus()
	udsKwpApps := 0
	for _, a := range apps {
		counts := CountByKind(Analyze(a))
		if counts[KindUDS] > 0 || counts[KindKWP] > 0 {
			udsKwpApps++
		}
	}
	if udsKwpApps != 3 {
		t.Fatalf("UDS/KWP-formula apps = %d, want 3 (§4.6)", udsKwpApps)
	}
}

func TestCorpusNoFormulasOutsideTable(t *testing.T) {
	apps := Corpus()
	expected := map[string]bool{}
	for _, e := range Table12Expected() {
		expected[e.Name] = true
	}
	for _, a := range apps {
		if expected[a.Name] {
			continue
		}
		if got := Analyze(a); len(got) != 0 {
			t.Fatalf("app %q unexpectedly has %d formulas", a.Name, len(got))
		}
	}
}

func TestReconstructDepthBound(t *testing.T) {
	// A pathological chain deeper than the bound must be skipped, not hang.
	m := Method{Name: "deep"}
	m.Stmts = append(m.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: "v0", Callee: "InputStream.read", CtrlDep: -1})
	m.Stmts = append(m.Stmts, Stmt{ID: 1, Kind: StmtInvoke, Def: "p0", Callee: "Integer.parseInt", Uses: []string{"v0"}, CtrlDep: -1})
	prev := "p0"
	for i := 0; i < 100; i++ {
		def := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: def,
			Uses: []string{prev}, Op: "+", ConstVal: 1, HasConst: true, CtrlDep: -1})
		prev = def
	}
	app := &App{Name: "deep", Methods: []Method{m}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("over-deep chain extracted: %d", len(got))
	}
}

func TestConditionWalksNestedBranches(t *testing.T) {
	// Formula nested under two ifs: the inner has no startsWith condition,
	// the outer does — the walk must find the outer one.
	m := Method{Name: "nested"}
	add := func(s Stmt) int {
		s.ID = len(m.Stmts)
		m.Stmts = append(m.Stmts, s)
		return s.ID
	}
	add(Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read", CtrlDep: -1})
	add(Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith",
		Uses: []string{"r"}, StrConst: "61 01", CtrlDep: -1})
	outer := add(Stmt{Kind: StmtIf, Uses: []string{"c"}, CtrlDep: -1})
	add(Stmt{Kind: StmtAssign, Def: "flag", Uses: []string{"someField"}, CtrlDep: outer})
	inner := add(Stmt{Kind: StmtIf, Uses: []string{"flag"}, CtrlDep: outer})
	add(Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}, CtrlDep: inner})
	add(Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*",
		ConstVal: 0.5, HasConst: true, CtrlDep: inner})
	add(Stmt{Kind: StmtDisplay, Uses: []string{"y"}, CtrlDep: inner})
	app := &App{Name: "nested", Methods: []Method{m}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v", got)
	}
	if got[0].Condition != "61 01" || got[0].Kind != KindKWP {
		t.Fatalf("formula = %+v", got[0])
	}
}

func TestFormulaString(t *testing.T) {
	f := Formula{App: "X", Condition: "41 0C", Kind: KindOBD, Expr: "(v1 * 0.25)"}
	s := f.String()
	if !strings.Contains(s, "41 0C") || !strings.Contains(s, "OBD-II") {
		t.Fatalf("String = %q", s)
	}
}

func TestFormulaMethodDeterministic(t *testing.T) {
	a := formulaMethod(KindOBD, 3, rand.New(rand.NewSource(9)))
	b := formulaMethod(KindOBD, 3, rand.New(rand.NewSource(9)))
	if len(a.Stmts) != len(b.Stmts) {
		t.Fatal("same seed produced different methods")
	}
}
