package appanalysis

import (
	"reflect"
	"strings"
	"testing"
)

// helperSplitApp reads the response in one method and delegates parsing
// and arithmetic to a helper — the style §4.6 reports the paper's linear,
// single-method analysis cannot extract.
func helperSplitApp() *App {
	main := build("onResponse", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "62 0D 12"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 6},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "parseAndScale", Uses: []string{"f"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	helper := build("parseAndScale", []string{"frag"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"frag"}},
		Stmt{Kind: StmtBinOp, Def: "t", Uses: []string{"p"}, Op: "*", ConstVal: 0.25, HasConst: true},
		Stmt{Kind: StmtBinOp, Def: "out", Uses: []string{"t"}, Op: "-", ConstVal: 40, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"out"}},
	)
	return &App{Name: "helper-split", Methods: []Method{main, helper}}
}

func TestCallGraph(t *testing.T) {
	app := helperSplitApp()
	got := CallGraph(app)
	want := map[string][]string{"onResponse": {"parseAndScale"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("call graph = %v, want %v", got, want)
	}
}

func TestHelperSummary(t *testing.T) {
	sums := Summaries(helperSplitApp())
	sum := sums["parseAndScale"]
	if sum == nil {
		t.Fatal("no summary for parseAndScale")
	}
	if sum.ReturnMask&paramLabel(0) == 0 {
		t.Error("summary misses the param0 → return flow")
	}
	if sum.ReadsResponse() {
		t.Error("helper does not read the response itself")
	}
	if !sum.HasExpr || !sum.Arith {
		t.Fatalf("summary = %+v, want reconstructed arithmetic expression", sum)
	}
	if want := "((v(p) * 0.25) - 40)"; sum.Expr != want {
		t.Errorf("summary expr = %q, want %q", sum.Expr, want)
	}
}

// TestMultiMethodFormulaRecovered is the acceptance-criteria demonstration:
// the pre-PR analyzer walked each method linearly and in isolation, so a
// formula whose read happens in the caller and whose arithmetic lives in a
// helper produced *zero* formulas (the helper's parameter was untainted,
// the caller had no arithmetic). The interprocedural engine reconstructs
// it end to end; this test fails against the old behaviour.
func TestMultiMethodFormulaRecovered(t *testing.T) {
	got := Analyze(helperSplitApp())
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want exactly 1 (the linear analyzer found 0)", got)
	}
	f := got[0]
	if f.Condition != "62 0D 12" || f.Kind != KindUDS {
		t.Errorf("condition = %q kind = %v", f.Condition, f.Kind)
	}
	if want := "((v(p) * 0.25) - 40)"; f.Expr != want {
		t.Errorf("expr = %q, want %q", f.Expr, want)
	}
	if f.Method != "onResponse" {
		t.Errorf("formula attributed to %q, want the caller", f.Method)
	}
}

func TestHelperChainSubstitutesArguments(t *testing.T) {
	// The caller parses, a helper scales via a second-level helper: the
	// summary expression must substitute actual arguments through both
	// levels.
	main := build("show", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 05"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 7},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "String.substring", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "toCelsius", Uses: []string{"p"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	outer := build("toCelsius", []string{"x"},
		Stmt{Kind: StmtInvoke, Def: "h", Callee: "offset", Uses: []string{"x"}},
		Stmt{Kind: StmtReturn, Uses: []string{"h"}},
	)
	inner := build("offset", []string{"v"},
		Stmt{Kind: StmtBinOp, Def: "o", Uses: []string{"v"}, Op: "-", ConstVal: 40, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"o"}},
	)
	app := &App{Name: "chain", Methods: []Method{main, outer, inner}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want 1", got)
	}
	if want := "(v(p) - 40)"; got[0].Expr != want {
		t.Errorf("expr = %q, want %q", got[0].Expr, want)
	}
	if got[0].Condition != "41 05" {
		t.Errorf("condition = %q", got[0].Condition)
	}
}

func TestConditionInsideHelperInherited(t *testing.T) {
	// The helper checks the response prefix itself; the caller has no
	// branch. The formula's condition comes from the callee's summary.
	main := build("update", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "decode", Uses: []string{"r"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	helper := build("decode", []string{"resp"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"resp"}, StrConst: "61 8A"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 7},
		Stmt{Kind: StmtInvoke, Def: "s", Callee: "String.split", Uses: []string{"resp"}},
		Stmt{Kind: StmtInvoke, Def: "f", Callee: "Array.index", Uses: []string{"s"}},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"f"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "/", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"y"}},
		Stmt{Kind: StmtConst, Def: "z", ConstVal: 0},
		Stmt{Kind: StmtReturn, Uses: []string{"z"}},
	)
	app := &App{Name: "cond-helper", Methods: []Method{main, helper}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %v, want 1", got)
	}
	if got[0].Condition != "61 8A" || got[0].Kind != KindKWP {
		t.Errorf("formula = %+v, want inherited KWP condition", got[0])
	}
	if !strings.Contains(got[0].Expr, "/ 2") {
		t.Errorf("expr = %q", got[0].Expr)
	}
}

func TestRecursiveHelperIsConservative(t *testing.T) {
	// Recursion has no summary: taint is killed at the cycle and no
	// formula is claimed (no spurious output, no non-termination).
	main := build("poll", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"r"}},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "spin", Uses: []string{"p"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	rec := build("spin", []string{"x"},
		Stmt{Kind: StmtInvoke, Def: "t", Callee: "spin", Uses: []string{"x"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"t"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"y"}},
	)
	app := &App{Name: "recursive", Methods: []Method{main, rec}}
	if got := Analyze(app); len(got) != 0 {
		t.Fatalf("recursive helper produced formulas: %v", got)
	}
}

func TestReturnedFormulaNotDoubleCounted(t *testing.T) {
	// A helper whose formula value is returned must not count the formula
	// once in the helper and again at the call site.
	helper := build("compute", []string{"resp"},
		Stmt{Kind: StmtInvoke, Def: "p", Callee: "Integer.parseInt", Uses: []string{"resp"}},
		Stmt{Kind: StmtBinOp, Def: "y", Uses: []string{"p"}, Op: "*", ConstVal: 2, HasConst: true},
		Stmt{Kind: StmtReturn, Uses: []string{"y"}},
	)
	main := build("onData", nil,
		Stmt{Kind: StmtInvoke, Def: "r", Callee: "InputStream.read"},
		Stmt{Kind: StmtInvoke, Def: "c", Callee: "String.startsWith", Uses: []string{"r"}, StrConst: "41 0C"},
		Stmt{Kind: StmtIf, Uses: []string{"c"}, Else: 5},
		Stmt{Kind: StmtInvoke, Def: "y", Callee: "compute", Uses: []string{"r"}},
		Stmt{Kind: StmtDisplay, Uses: []string{"y"}},
	)
	app := &App{Name: "no-double", Methods: []Method{main, helper}}
	got := Analyze(app)
	if len(got) != 1 {
		t.Fatalf("formulas = %d (%v), want exactly 1", len(got), got)
	}
	if got[0].Method != "onData" {
		t.Errorf("formula attributed to %q, want the caller", got[0].Method)
	}
}
