package appanalysis

import (
	"fmt"
	"strings"
)

// Summary is a method's interprocedural digest: how taint flows from its
// parameters and response reads to its return value, the reconstructed
// return expression (with placeholders where parameters feed it), and the
// response-prefix conditions guarding the tainted returns. Callers consume
// summaries instead of re-analysing callees, which is what lets a formula
// split across helper methods be reconstructed end to end.
type Summary struct {
	Name string
	// ReturnMask is the taint-label mask of the returned value: bit 0 for
	// data read from the response inside the callee, bit i+1 for data
	// flowing in through parameter i.
	ReturnMask uint64
	// Expr is the return expression with ⟨pN⟩ placeholders for parameter
	// N; valid only when HasExpr. Arith reports whether it contains
	// arithmetic, which is what makes a call site a formula anchor.
	Expr    string
	HasExpr bool
	Arith   bool
	// Conditions are the startsWith prefixes guarding tainted returns
	// inside the callee, first-seen order, deduplicated.
	Conditions []string
}

// ReadsResponse reports whether the method's return value carries data it
// read from the diagnostic response itself.
func (s *Summary) ReadsResponse() bool { return s.ReturnMask&respLabel != 0 }

// placeholder renders the summary-expression stand-in for parameter i.
func placeholder(i int) string { return fmt.Sprintf("⟨p%d⟩", i) }

// buildSummary digests one analysed method. Returns carrying no taint at
// all (constant error/sentinel returns) contribute neither expression nor
// condition; among tainted returns the expression is kept only if they all
// agree.
func (a *analyzer) buildSummary(name string, cfg *CFG, flow *dataflowResult) *Summary {
	m := cfg.Method
	sum := &Summary{Name: name}
	exprSeen := map[string]bool{}
	condSeen := map[string]bool{}
	failed := false
	for i := range m.Stmts {
		s := &m.Stmts[i]
		if s.Kind != StmtReturn || len(s.Uses) != 1 {
			continue
		}
		mask := flow.stmtIn[s.ID].taint[s.Uses[0]]
		sum.ReturnMask |= mask
		if mask == 0 {
			continue
		}
		expr, arith, ok := a.reconstructVar(name, s.Uses[0], s.ID, true, map[int]bool{}, 0)
		if !ok {
			failed = true
			continue
		}
		if !exprSeen[expr] {
			exprSeen[expr] = true
			sum.Expr, sum.Arith, sum.HasExpr = expr, arith, true
		}
		if cond := a.condition(name, s); cond != "" && !condSeen[cond] {
			condSeen[cond] = true
			sum.Conditions = append(sum.Conditions, cond)
		}
	}
	if failed || len(exprSeen) > 1 {
		// Some tainted return either failed reconstruction or disagreed
		// with the others: no single return expression exists.
		sum.Expr, sum.Arith, sum.HasExpr = "", false, false
	}
	return sum
}

// inlineCall reconstructs a call to an app-level method by substituting
// the actual-argument expressions into the callee's summary expression.
func (a *analyzer) inlineCall(name string, s *Stmt, sum *Summary, summaryMode bool, visiting map[int]bool, depth int) (string, bool, bool) {
	// Two passes: mark the callee's placeholders first, then splice in the
	// actual-argument expressions. An argument expression may itself be a
	// placeholder (the caller's own parameter, in summary mode), so the
	// arity check — no callee placeholder beyond the call's arguments —
	// must happen between the passes, not after substitution.
	expr := sum.Expr
	arith := sum.Arith
	marked := make([]bool, len(s.Uses))
	for i := range s.Uses {
		ph := placeholder(i)
		if strings.Contains(expr, ph) {
			marked[i] = true
			expr = strings.ReplaceAll(expr, ph, marker(i))
		}
	}
	if strings.Contains(expr, "⟨p") {
		// A callee parameter beyond the call's arguments: malformed call.
		return "", false, false
	}
	for i, arg := range s.Uses {
		if !marked[i] {
			continue
		}
		argExpr, argArith, ok := a.reconstructVar(name, arg, s.ID, summaryMode, visiting, depth+1)
		if !ok {
			return "", false, false
		}
		expr = strings.ReplaceAll(expr, marker(i), argExpr)
		arith = arith || argArith
	}
	return expr, arith, true
}

// marker is the collision-free intermediate token for argument i during
// inlineCall's two-pass substitution.
func marker(i int) string { return fmt.Sprintf("\x00a%d\x00", i) }
