package appanalysis

import (
	"fmt"
	"math/rand"
)

// TableEntry is one expected Table 12 row.
type TableEntry struct {
	Name  string
	Kind  FormulaKind
	Count int
}

// Table12Expected lists the paper's Table 12: which apps embed formulas of
// which protocol, and how many.
func Table12Expected() []TableEntry {
	return []TableEntry{
		{"Carly for VAG", KindUDS, 90},
		{"Carly for VAG", KindKWP, 137},
		{"Carly for Mercedes", KindUDS, 1624},
		{"Carly for Mercedes", KindKWP, 468},
		{"Carly for Toyota", KindKWP, 7},
		{"inCarDoc", KindOBD, 82},
		{"Car Computer - Olivia Drive", KindOBD, 74},
		{"CarSys Scan", KindOBD, 64},
		{"Easy OBD", KindOBD, 55},
		{"inCarDoc Pro", KindOBD, 49},
		{"OBD Boy(OBD2-ELM327)", KindOBD, 45},
		{"FordSys Scan Free", KindOBD, 42},
		{"ChevroSys Scan Free", KindOBD, 40},
		{"ToyoSys Scan Free", KindOBD, 40},
		{"Obd Mary", KindOBD, 34},
		{"OBD2 Boost", KindOBD, 34},
		{"Obd Harry Scan", KindOBD, 28},
		{"Obd Arny", KindOBD, 27},
		{"MOSX", KindOBD, 24},
		{"Dr Prius Dr Hybrid", KindOBD, 22},
		{"Dacar Pro OBD2", KindOBD, 21},
		{"OBD2 Scanner Fault Codes Desc", KindOBD, 16},
		{"Dacar Pro OBD2 (2)", KindOBD, 14},
		{"Engie Easy Car Repair", KindOBD, 8},
		{"PHEV Watchdog", KindOBD, 8},
		{"Torque Lite(OBD2&Car)", KindOBD, 5},
		{"Kiwi OBD", KindOBD, 3},
		{"OBDclick", KindOBD, 2},
		{"Dr Prius Dr Hybrid (2)", KindOBD, 1},
		{"Fuel Economy for Torque Pro", KindOBD, 1},
	}
}

// CorpusSize is the number of apps analysed in §4.6.
const CorpusSize = 160

// UnextractableApps is the number of apps whose formulas the analysis
// cannot extract (paper: 13, due to subclass/parent splits and partial
// byte checks).
const UnextractableApps = 13

// Corpus generates the deterministic 160-app corpus mirroring Table 12's
// composition: the formula-bearing apps above, 13 extraction-defeating
// apps, and DTC-only apps for the remainder.
func Corpus() []*App {
	rng := rand.New(rand.NewSource(412))
	var apps []*App

	// Formula-bearing apps, grouped per app name.
	perApp := map[string][]TableEntry{}
	var names []string
	for _, e := range Table12Expected() {
		if len(perApp[e.Name]) == 0 {
			names = append(names, e.Name)
		}
		perApp[e.Name] = append(perApp[e.Name], e)
	}
	for _, name := range names {
		app := &App{Name: name}
		for _, e := range perApp[name] {
			for i := 0; i < e.Count; i++ {
				app.Methods = append(app.Methods, formulaMethod(e.Kind, i, rng))
			}
		}
		// Every real app also has plumbing code with no formulas.
		app.Methods = append(app.Methods, dtcMethod(), uiMethod())
		apps = append(apps, app)
	}

	// Extraction-defeating apps (§4.6: subclass/parent splits, partial
	// byte checks, unmodelled decoding helpers).
	for i := 0; i < UnextractableApps; i++ {
		apps = append(apps, unextractableApp(i))
	}

	// The remainder only read/clear DTCs or send requests without parsing
	// formulas.
	for i := len(apps); i < CorpusSize; i++ {
		app := &App{Name: fmt.Sprintf("DTC Reader %03d", i)}
		app.Methods = append(app.Methods, dtcMethod(), uiMethod())
		apps = append(apps, app)
	}
	return apps
}

// formulaShapes are the arithmetic templates formulas are drawn from,
// modelled on the decompiled shapes the paper shows (Fig. 9's
// "v1 * 0.25 + 64 * v2", Carly's "0.1X - 40", plain scalings).
var formulaShapes = []func(m *Method, vIn []string, ctrl int) string{
	// Y = v0 * a
	func(m *Method, vIn []string, ctrl int) string {
		out := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: out,
			Uses: vIn[:1], Op: "*", ConstVal: 0.25, HasConst: true, CtrlDep: ctrl})
		return out
	},
	// Y = v0 * a - b
	func(m *Method, vIn []string, ctrl int) string {
		t := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: t,
			Uses: vIn[:1], Op: "*", ConstVal: 0.1, HasConst: true, CtrlDep: ctrl})
		out := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: out,
			Uses: []string{t}, Op: "-", ConstVal: 40, HasConst: true, CtrlDep: ctrl})
		return out
	},
	// Y = v0 / a
	func(m *Method, vIn []string, ctrl int) string {
		out := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: out,
			Uses: vIn[:1], Op: "/", ConstVal: 2.55, HasConst: true, CtrlDep: ctrl})
		return out
	},
	// Y = 64*v0 + 0.25*v1 (Fig. 9's engine-speed shape; needs two values)
	func(m *Method, vIn []string, ctrl int) string {
		if len(vIn) < 2 {
			out := fresh(m)
			m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: out,
				Uses: vIn[:1], Op: "*", ConstVal: 64, HasConst: true, ConstLeft: true, CtrlDep: ctrl})
			return out
		}
		a := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: a,
			Uses: vIn[:1], Op: "*", ConstVal: 64, HasConst: true, ConstLeft: true, CtrlDep: ctrl})
		b := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: b,
			Uses: vIn[1:2], Op: "*", ConstVal: 0.25, HasConst: true, CtrlDep: ctrl})
		out := fresh(m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtBinOp, Def: out,
			Uses: []string{a, b}, Op: "+", CtrlDep: ctrl})
		return out
	},
}

// prefixFor builds a realistic response prefix for a protocol.
func prefixFor(kind FormulaKind, i int, rng *rand.Rand) string {
	switch kind {
	case KindOBD:
		return fmt.Sprintf("41 %02X", 0x04+i%0x40)
	case KindUDS:
		return fmt.Sprintf("62 %02X %02X", 0xF4&0xFF, (0x0D+i)&0xFF)
	default:
		// Local identifiers in the 0x80+ range: the apps target other
		// model years than the simulated fleet (the paper's finding that
		// app formulas do not cover the cars' identifiers).
		return fmt.Sprintf("61 %02X", 0x80+(i%0x7F))
	}
}

func fresh(m *Method) string { return fmt.Sprintf("v%d", len(m.Stmts)) }

// formulaMethod generates the Fig. 9 pattern: read → startsWith(prefix) →
// parse fragments → arithmetic → display.
func formulaMethod(kind FormulaKind, i int, rng *rand.Rand) Method {
	m := Method{Name: fmt.Sprintf("parse_%s_%03d", kind, i)}
	read := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: read, Callee: "InputStream.read", CtrlDep: -1})

	cond := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 1, Kind: StmtInvoke, Def: cond, Callee: "String.startsWith",
		Uses: []string{read}, StrConst: prefixFor(kind, i, rng), CtrlDep: -1})
	ifID := len(m.Stmts)
	m.Stmts = append(m.Stmts, Stmt{ID: ifID, Kind: StmtIf, Uses: []string{cond}, CtrlDep: -1})

	// String processing chain under the branch.
	replaced := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtInvoke, Def: replaced,
		Callee: "String.replace", Uses: []string{read}, CtrlDep: ifID})
	trimmed := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtInvoke, Def: trimmed,
		Callee: "String.trim", Uses: []string{replaced}, CtrlDep: ifID})
	split := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtInvoke, Def: split,
		Callee: "String.split", Uses: []string{trimmed}, CtrlDep: ifID})

	// Extract one or two integer values.
	nVals := 1 + rng.Intn(2)
	var vals []string
	for k := 0; k < nVals; k++ {
		frag := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtInvoke, Def: frag,
			Callee: "Array.index", Uses: []string{split}, CtrlDep: ifID})
		parsed := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtInvoke, Def: parsed,
			Callee: "Integer.parseInt", Uses: []string{frag}, CtrlDep: ifID})
		vals = append(vals, parsed)
	}
	shape := formulaShapes[rng.Intn(len(formulaShapes))]
	result := shape(&m, vals, ifID)
	m.Stmts = append(m.Stmts, Stmt{ID: len(m.Stmts), Kind: StmtDisplay, Uses: []string{result}, CtrlDep: ifID})
	return m
}

// dtcMethod reads and clears trouble codes: tainted data, no arithmetic.
func dtcMethod() Method {
	m := Method{Name: "readDTC"}
	read := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: read, Callee: "InputStream.read", CtrlDep: -1})
	code := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 1, Kind: StmtInvoke, Def: code, Callee: "String.substring",
		Uses: []string{read}, CtrlDep: -1})
	m.Stmts = append(m.Stmts, Stmt{ID: 2, Kind: StmtDisplay, Uses: []string{code}, CtrlDep: -1})
	return m
}

// uiMethod is untainted arithmetic (layout code): must not be extracted.
func uiMethod() Method {
	m := Method{Name: "layout"}
	w := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 0, Kind: StmtAssign, Def: w, Uses: []string{"screenWidth"}, CtrlDep: -1})
	half := fresh(&m)
	m.Stmts = append(m.Stmts, Stmt{ID: 1, Kind: StmtBinOp, Def: half, Uses: []string{w},
		Op: "/", ConstVal: 2, HasConst: true, CtrlDep: -1})
	m.Stmts = append(m.Stmts, Stmt{ID: 2, Kind: StmtDisplay, Uses: []string{half}, CtrlDep: -1})
	return m
}

// unextractableApp generates the failure styles §4.6 reports: the response
// is read in one method and processed in another (no inter-procedural
// taint), or decoding goes through an unmodelled helper.
func unextractableApp(i int) *App {
	app := &App{Name: fmt.Sprintf("Complex OBD Tool %02d", i)}
	if i%2 == 0 {
		// Subclass reads; parent parses — split across methods.
		reader := Method{Name: "SubClass.read"}
		buf := fresh(&reader)
		reader.Stmts = append(reader.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: buf,
			Callee: "InputStream.read", CtrlDep: -1})
		parser := Method{Name: "Parent.parse"}
		// "field" was written by the subclass; the intraprocedural taint
		// cannot see that.
		v := fresh(&parser)
		parser.Stmts = append(parser.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: v,
			Callee: "Integer.parseInt", Uses: []string{"field"}, CtrlDep: -1})
		out := fresh(&parser)
		parser.Stmts = append(parser.Stmts, Stmt{ID: 1, Kind: StmtBinOp, Def: out,
			Uses: []string{v}, Op: "*", ConstVal: 0.25, HasConst: true, CtrlDep: -1})
		parser.Stmts = append(parser.Stmts, Stmt{ID: 2, Kind: StmtDisplay, Uses: []string{out}, CtrlDep: -1})
		app.Methods = append(app.Methods, reader, parser)
	} else {
		// Decoding through an unmodelled native helper breaks propagation.
		m := Method{Name: "parseViaHelper"}
		read := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: 0, Kind: StmtInvoke, Def: read,
			Callee: "InputStream.read", CtrlDep: -1})
		decoded := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: 1, Kind: StmtInvoke, Def: decoded,
			Callee: "NativeCodec.decode", Uses: []string{read}, CtrlDep: -1})
		out := fresh(&m)
		m.Stmts = append(m.Stmts, Stmt{ID: 2, Kind: StmtBinOp, Def: out,
			Uses: []string{decoded}, Op: "*", ConstVal: 0.5, HasConst: true, CtrlDep: -1})
		m.Stmts = append(m.Stmts, Stmt{ID: 3, Kind: StmtDisplay, Uses: []string{out}, CtrlDep: -1})
		app.Methods = append(app.Methods, m)
	}
	return app
}

// CountByKind tallies extracted formulas per protocol for one app.
func CountByKind(formulas []Formula) map[FormulaKind]int {
	out := map[FormulaKind]int{}
	for _, f := range formulas {
		out[f.Kind]++
	}
	return out
}
