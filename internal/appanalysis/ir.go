// Package appanalysis reimplements the paper's telematics-app study
// (§4.6, §9.2, Algorithm 1): a static analysis that finds the formulas an
// app uses to turn diagnostic response messages into displayed values. The
// analysis is defined over a small three-address statement IR (the role
// Jimple plays for the paper's Soot-based tool).
//
// The engine is a real dataflow framework rather than a linear walk: each
// method is normalised into an explicit control-flow graph (branches carry
// else-targets, loops are gotos), a worklist-based forward analysis
// computes taint and reaching definitions with set-union merge at join
// points, control dependence is derived from the post-dominator tree, and
// an interprocedural layer (call graph + per-method summaries) stitches
// formulas back together when an app factors them across helper methods.
//
// A synthetic 160-app corpus mirroring Table 12's composition ships with
// the package, plus a smaller ground-truth-labelled corpus (EvalCorpus)
// whose apps exercise branching, looping, helper-split and sanitising
// styles so the analysis can be scored for precision and recall.
package appanalysis

import "fmt"

// StmtKind discriminates IR statements.
type StmtKind int

// Statement kinds.
const (
	// StmtInvoke calls an API and assigns its result to Def.
	StmtInvoke StmtKind = iota
	// StmtBinOp computes Def = A op B where A/B are variables or
	// constants.
	StmtBinOp
	// StmtAssign copies Def = A.
	StmtAssign
	// StmtIf branches on a condition variable: execution falls through to
	// the next statement when the condition holds and jumps to Else when it
	// does not. Else == 0 marks the legacy structured form, where the
	// guarded region is encoded by CtrlDep annotations instead (Normalize
	// rewrites it into the explicit form).
	StmtIf
	// StmtDisplay sinks a value into the UI.
	StmtDisplay
	// StmtConst loads the literal ConstVal into Def. Overwriting a
	// variable with a constant kills its taint (a sanitising write).
	StmtConst
	// StmtGoto jumps unconditionally to Target (backwards for loops).
	StmtGoto
	// StmtReturn leaves the method, returning Uses[0] when present.
	StmtReturn
)

// Stmt is one IR statement. Variables are plain strings; each statement
// defines at most one variable (SSA-style naming is the generator's job).
type Stmt struct {
	// ID is the statement's index within its method.
	ID   int
	Kind StmtKind
	// Def is the variable this statement defines ("" for if/display).
	Def string
	// Uses are the variables read.
	Uses []string

	// Callee names the invoked API for StmtInvoke/StmtIf conditions
	// (e.g. "InputStream.read", "String.startsWith", "Integer.parseInt").
	// When it instead matches the name of another method of the same App,
	// the statement is an application-level call: Uses are the actual
	// arguments bound to the callee's Params and Def receives its return
	// value (the interprocedural layer resolves these edges).
	Callee string
	// StrConst carries a string literal argument (the startsWith prefix).
	StrConst string

	// Op is the arithmetic operator of a StmtBinOp ("+", "-", "*", "/").
	Op string
	// ConstVal is the constant operand when HasConst (v op const or
	// const op v depending on ConstLeft).
	ConstVal  float64
	HasConst  bool
	ConstLeft bool

	// Else is a StmtIf's jump target when the condition is false — the ID
	// of the first statement after the guarded region (len(Stmts) jumps to
	// the method exit). 0 means "legacy structured form": the region is
	// given by CtrlDep annotations and Normalize derives the target.
	Else int
	// Target is a StmtGoto's jump destination.
	Target int

	// CtrlDep is the legacy structured-control annotation: the ID of the
	// StmtIf this statement is nested under (-1 when unconditioned). It is
	// an *input* convenience for straight-line builders only; the analysis
	// ignores it and recomputes control dependence from the CFG's
	// post-dominator tree.
	CtrlDep int
}

// Method is one app method.
type Method struct {
	Name string
	// Params are the method's formal parameters, bound to call-site
	// arguments by the interprocedural layer.
	Params []string
	Stmts  []Stmt
}

// App is one analysed application.
type App struct {
	Name    string
	Methods []Method
}

// FormulaKind classifies an extracted formula by the protocol of the
// response it processes, recovered from the branch condition's prefix.
type FormulaKind string

// Formula kinds (Table 12's "Formula Type" column).
const (
	KindOBD     FormulaKind = "OBD-II"
	KindUDS     FormulaKind = "UDS"
	KindKWP     FormulaKind = "KWP 2000"
	KindUnknown FormulaKind = "unknown"
)

// KindForPrefix classifies a response-prefix condition: "41 ..." is an
// OBD-II mode-01 response, "62 ..." a UDS ReadDataByIdentifier response,
// "61 ..." a KWP readDataByLocalIdentifier response.
func KindForPrefix(prefix string) FormulaKind {
	if len(prefix) < 2 {
		return KindUnknown
	}
	switch prefix[:2] {
	case "41":
		return KindOBD
	case "62", "6F":
		return KindUDS
	case "61", "70":
		return KindKWP
	default:
		return KindUnknown
	}
}

// Formula is one extracted (condition, expression) pair — Algorithm 1's
// output row.
type Formula struct {
	App    string
	Method string
	// Condition is the response-prefix condition guarding the formula.
	Condition string
	// Kind classifies the protocol.
	Kind FormulaKind
	// Expr is the reconstructed arithmetic over extracted values v0, v1...
	Expr string
}

// String implements fmt.Stringer.
func (f Formula) String() string {
	return fmt.Sprintf("%s: if prefix %q then Y = %s [%s]", f.App, f.Condition, f.Expr, f.Kind)
}
