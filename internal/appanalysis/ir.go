// Package appanalysis reimplements the paper's telematics-app study
// (§4.6, §9.2, Algorithm 1): a static analysis that finds the formulas an
// app uses to turn diagnostic response messages into displayed values. The
// analysis is defined over a small three-address statement IR (the role
// Jimple plays for the paper's Soot-based tool): forward taint analysis
// from response-reading APIs, a data-dependency backward slice over the
// arithmetic that processes tainted values, and control-dependency
// analysis to recover the condition (response prefix) under which each
// formula applies.
//
// A synthetic 160-app corpus mirroring Table 12's composition ships with
// the package: three apps with UDS/KWP 2000 formulas, the OBD-II-formula
// apps, apps written in the styles the paper's tool cannot analyse, and
// DTC-only apps with no formulas at all.
package appanalysis

import "fmt"

// StmtKind discriminates IR statements.
type StmtKind int

// Statement kinds.
const (
	// StmtInvoke calls an API and assigns its result to Def.
	StmtInvoke StmtKind = iota
	// StmtBinOp computes Def = A op B where A/B are variables or
	// constants.
	StmtBinOp
	// StmtAssign copies Def = A.
	StmtAssign
	// StmtIf branches on a condition variable.
	StmtIf
	// StmtDisplay sinks a value into the UI.
	StmtDisplay
)

// Stmt is one IR statement. Variables are plain strings; each statement
// defines at most one variable (SSA-style naming is the generator's job).
type Stmt struct {
	// ID is the statement's index within its method.
	ID   int
	Kind StmtKind
	// Def is the variable this statement defines ("" for if/display).
	Def string
	// Uses are the variables read.
	Uses []string

	// Callee names the invoked API for StmtInvoke/StmtIf conditions
	// (e.g. "InputStream.read", "String.startsWith", "Integer.parseInt").
	Callee string
	// StrConst carries a string literal argument (the startsWith prefix).
	StrConst string

	// Op is the arithmetic operator of a StmtBinOp ("+", "-", "*", "/").
	Op string
	// ConstVal is the constant operand when HasConst (v op const or
	// const op v depending on ConstLeft).
	ConstVal  float64
	HasConst  bool
	ConstLeft bool

	// CtrlDep is the ID of the StmtIf this statement is control-dependent
	// on (-1 when unconditioned).
	CtrlDep int
}

// Method is one app method.
type Method struct {
	Name  string
	Stmts []Stmt
}

// App is one analysed application.
type App struct {
	Name    string
	Methods []Method
}

// FormulaKind classifies an extracted formula by the protocol of the
// response it processes, recovered from the branch condition's prefix.
type FormulaKind string

// Formula kinds (Table 12's "Formula Type" column).
const (
	KindOBD     FormulaKind = "OBD-II"
	KindUDS     FormulaKind = "UDS"
	KindKWP     FormulaKind = "KWP 2000"
	KindUnknown FormulaKind = "unknown"
)

// KindForPrefix classifies a response-prefix condition: "41 ..." is an
// OBD-II mode-01 response, "62 ..." a UDS ReadDataByIdentifier response,
// "61 ..." a KWP readDataByLocalIdentifier response.
func KindForPrefix(prefix string) FormulaKind {
	if len(prefix) < 2 {
		return KindUnknown
	}
	switch prefix[:2] {
	case "41":
		return KindOBD
	case "62", "6F":
		return KindUDS
	case "61", "70":
		return KindKWP
	default:
		return KindUnknown
	}
}

// Formula is one extracted (condition, expression) pair — Algorithm 1's
// output row.
type Formula struct {
	App    string
	Method string
	// Condition is the response-prefix condition guarding the formula.
	Condition string
	// Kind classifies the protocol.
	Kind FormulaKind
	// Expr is the reconstructed arithmetic over extracted values v0, v1...
	Expr string
}

// String implements fmt.Stringer.
func (f Formula) String() string {
	return fmt.Sprintf("%s: if prefix %q then Y = %s [%s]", f.App, f.Condition, f.Expr, f.Kind)
}
