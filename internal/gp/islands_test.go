package gp

import (
	"encoding/json"
	"math"
	"testing"
)

func islandTestDataset() *Dataset {
	// Y = (256*hi + lo) / 4 — the OBD engine-RPM codec shape, small enough
	// to keep the island runs cheap.
	d := &Dataset{}
	for hi := 0.0; hi <= 32; hi += 8 {
		for lo := 0.0; lo <= 255; lo += 64 {
			d.X = append(d.X, []float64{hi, lo})
			d.Y = append(d.Y, (256*hi+lo)/4)
		}
	}
	return d
}

func islandConfig(islands, parallelism int) Config {
	cfg := DefaultConfig()
	cfg.PopulationSize = 120
	cfg.Generations = 8
	cfg.StopFitness = -1 // never stop early: every generation and migration runs
	cfg.Islands = islands
	cfg.MigrationInterval = 2
	cfg.Parallelism = parallelism
	cfg.Seed = 7
	return cfg
}

// resultJSON renders the parts of a Result that must be byte-identical
// across Parallelism settings.
func resultJSON(t *testing.T, res Result) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		Best        string
		Fitness     float64
		Generations int
		Evaluations int
		CacheHits   int
		CacheMisses int
	}{res.Best.String(), res.Fitness, res.Generations, res.Evaluations, res.CacheHits, res.CacheMisses})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestIslandsDeterministicAcrossParallelism pins the engine's core
// invariant for the island model: for any island count, the serialized
// Result is byte-identical whether misses are scored serially or by 8
// workers, and whether islands step inline or on their own goroutines.
func TestIslandsDeterministicAcrossParallelism(t *testing.T) {
	d := islandTestDataset()
	for _, islands := range []int{1, 2, 4} {
		var want string
		for _, par := range []int{1, 8} {
			res, err := Run(d, islandConfig(islands, par))
			if err != nil {
				t.Fatalf("islands=%d parallelism=%d: %v", islands, par, err)
			}
			got := resultJSON(t, res)
			if par == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("islands=%d: result diverged across parallelism:\n p=1: %s\n p=%d: %s",
					islands, want, par, got)
			}
		}
	}
}

// TestIslandMigrationBoundaryDeterministic stresses the migration
// boundary: migrating every generation with 4 islands stepping
// concurrently, repeated runs must agree exactly — goroutine scheduling
// during a step must not leak into the migrant exchange. Run under
// -race this also proves the barrier synchronises all island state.
func TestIslandMigrationBoundaryDeterministic(t *testing.T) {
	d := islandTestDataset()
	cfg := islandConfig(4, 8)
	cfg.MigrationInterval = 1
	var want string
	for trial := 0; trial < 3; trial++ {
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := resultJSON(t, res)
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("trial %d diverged:\n first: %s\n now:   %s", trial, want, got)
		}
	}
}

// TestIslandsDiffer confirms islands actually change the search: the
// island model is a different (decorrelated-seed) trajectory, not a
// cosmetic wrapper around the panmictic engine.
func TestIslandsDiffer(t *testing.T) {
	d := islandTestDataset()
	r1, err := Run(d, islandConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(d, islandConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheMisses == r4.CacheMisses && r1.Best.String() == r4.Best.String() {
		t.Fatalf("islands=4 produced the identical run as islands=1: %s", r1.Best)
	}
}

// TestIslandsRecover verifies search quality survives the population
// split: four islands of 100 still recover a linear two-byte codec.
func TestIslandsRecover(t *testing.T) {
	d := islandTestDataset()
	cfg := islandConfig(4, 2)
	cfg.PopulationSize = 400
	cfg.Generations = 25
	cfg.StopFitness = 0.01
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Y spans 0..2111, so MAE < 2 is a sub-0.1% fit of the codec.
	if res.Fitness > 2.0 {
		t.Fatalf("fitness = %v (best %q)", res.Fitness, res.Best)
	}
}

// TestIslandsPopulationTooSmall pins the validation error.
func TestIslandsPopulationTooSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopulationSize = 7
	cfg.Islands = 4
	if _, err := Run(islandTestDataset(), cfg); err == nil {
		t.Fatal("expected error for 7 individuals across 4 islands")
	}
}

// TestIslandsObserverCounters checks the combined per-generation
// telemetry: counters are cumulative sums over islands and stay
// consistent (Evaluations == CacheHits + CacheMisses, monotone), and the
// final snapshot matches the Result exactly.
func TestIslandsObserverCounters(t *testing.T) {
	d := islandTestDataset()
	cfg := islandConfig(3, 4)
	obs := &statsObserver{}
	cfg.Observer = obs
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snaps := obs.stats
	if len(snaps) != cfg.Generations+1 {
		t.Fatalf("got %d snapshots, want %d", len(snaps), cfg.Generations+1)
	}
	prev := GenerationStats{BestFitness: math.Inf(1)}
	for i, gs := range snaps {
		if gs.Generation != i {
			t.Fatalf("snapshot %d has generation %d", i, gs.Generation)
		}
		if gs.Evaluations != gs.CacheHits+gs.CacheMisses {
			t.Fatalf("gen %d: evals %d != hits %d + misses %d", i, gs.Evaluations, gs.CacheHits, gs.CacheMisses)
		}
		if gs.Evaluations < prev.Evaluations || gs.BestFitness > prev.BestFitness {
			t.Fatalf("gen %d: counters regressed: %+v after %+v", i, gs, prev)
		}
		prev = gs
	}
	last := snaps[len(snaps)-1]
	if last.Evaluations != res.Evaluations || last.CacheHits != res.CacheHits || last.CacheMisses != res.CacheMisses {
		t.Fatalf("final snapshot %+v does not match result %+v", last, res)
	}
}
