package gp

import "math/rand"

// generator builds random trees for initialisation and mutation. When
// arena is set, every node is bump-allocated from it (the engine points
// arena at the generation under construction); a nil arena heap-allocates,
// which keeps the generator usable standalone.
type generator struct {
	rng      *rand.Rand
	numVars  int
	funcs    []Op
	constMin float64
	constMax float64
	arena    *nodeArena
}

// node materialises n in the generator's arena (or on the heap).
func (g *generator) node(n Node) *Node {
	var nn *Node
	if g.arena != nil {
		nn = g.arena.alloc()
	} else {
		nn = new(Node)
	}
	*nn = n
	return nn
}

// randTerminal returns a variable or ephemeral constant leaf.
func (g *generator) randTerminal() *Node {
	// Bias toward variables: constants alone cannot explain varying data.
	if g.numVars > 0 && g.rng.Float64() < 0.7 {
		return g.node(Node{Op: OpVar, Var: g.rng.Intn(g.numVars)})
	}
	c := g.constMin + g.rng.Float64()*(g.constMax-g.constMin)
	return g.node(Node{Op: OpConst, Const: c})
}

func (g *generator) randFunction() Op {
	return g.funcs[g.rng.Intn(len(g.funcs))]
}

// grow builds a tree where any node may become a terminal early, yielding
// irregular shapes.
func (g *generator) grow(depth int) *Node {
	if depth <= 1 || g.rng.Float64() < 0.3 {
		return g.randTerminal()
	}
	op := g.randFunction()
	if op.Arity() == 1 {
		return g.node(Node{Op: op, L: g.grow(depth - 1)})
	}
	return g.node(Node{Op: op, L: g.grow(depth - 1), R: g.grow(depth - 1)})
}

// full builds a tree where every branch reaches the target depth.
func (g *generator) full(depth int) *Node {
	if depth <= 1 {
		return g.randTerminal()
	}
	op := g.randFunction()
	if op.Arity() == 1 {
		return g.node(Node{Op: op, L: g.full(depth - 1)})
	}
	return g.node(Node{Op: op, L: g.full(depth - 1), R: g.full(depth - 1)})
}

// rampedHalfAndHalf builds the initial population: tree depths ramp from 2
// to maxDepth, half grown and half full — the standard Koza initialisation
// gplearn uses.
func (g *generator) rampedHalfAndHalf(n, maxDepth int) []*Node {
	out := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		depth := 2 + i%(maxDepth-1)
		if i%2 == 0 {
			out = append(out, g.grow(depth))
		} else {
			out = append(out, g.full(depth))
		}
	}
	return out
}
