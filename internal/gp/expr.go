// Package gp implements genetic-programming symbolic regression, the
// paper's core formula-inference algorithm (§3.5 Step 2). Given (X, Y)
// samples — raw response-message bytes paired with the values a diagnostic
// tool displayed — it searches the space of arithmetic expressions for a
// formula f with f(X) ≈ Y.
//
// The design follows the paper's description of its gplearn-based
// implementation: syntax trees whose interior nodes are functions and whose
// leaves are variables/constants; a 14-function set (the four arithmetic
// operators plus square root, log, absolute value, negation, min, max,
// inverse and the three trigonometric functions, all protected against
// invalid inputs); tournament selection; subtree crossover; subtree, point
// and hoist mutation; mean-absolute-error fitness; and the paper's two
// stopping criteria — generation budget exhausted, or a program's fitness
// crossing the threshold.
package gp

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Op enumerates node operations. OpConst and OpVar are terminals; the rest
// are the 14-entry function set.
type Op int

// Operations.
const (
	OpConst Op = iota
	OpVar
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpSqrt
	OpLog
	OpAbs
	OpNeg
	OpMax
	OpMin
	OpInv
	OpSin
	OpCos
	OpTan
)

// FunctionSet lists the 14 function ops available to evolution.
var FunctionSet = []Op{
	OpAdd, OpSub, OpMul, OpDiv, OpSqrt, OpLog, OpAbs,
	OpNeg, OpMax, OpMin, OpInv, OpSin, OpCos, OpTan,
}

// Arity reports how many children an op takes (0 for terminals).
func (o Op) Arity() int {
	switch o {
	case OpConst, OpVar:
		return 0
	case OpAdd, OpSub, OpMul, OpDiv, OpMax, OpMin:
		return 2
	default:
		return 1
	}
}

// Name renders the op.
func (o Op) Name() string {
	switch o {
	case OpConst:
		return "const"
	case OpVar:
		return "var"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpSqrt:
		return "sqrt"
	case OpLog:
		return "log"
	case OpAbs:
		return "abs"
	case OpNeg:
		return "neg"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpInv:
		return "inv"
	case OpSin:
		return "sin"
	case OpCos:
		return "cos"
	case OpTan:
		return "tan"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Node is one expression-tree node. The zero value is the constant 0.
type Node struct {
	Op    Op
	Const float64
	Var   int
	L, R  *Node // R is nil for unary ops; both nil for terminals
}

// NewConst returns a constant leaf.
func NewConst(v float64) *Node { return &Node{Op: OpConst, Const: v} }

// NewVar returns a variable leaf referencing input index i.
func NewVar(i int) *Node { return &Node{Op: OpVar, Var: i} }

// NewUnary builds a one-argument function node.
func NewUnary(op Op, child *Node) *Node {
	if op.Arity() != 1 {
		panic(fmt.Sprintf("gp: %s is not unary", op.Name()))
	}
	return &Node{Op: op, L: child}
}

// NewBinary builds a two-argument function node.
func NewBinary(op Op, l, r *Node) *Node {
	if op.Arity() != 2 {
		panic(fmt.Sprintf("gp: %s is not binary", op.Name()))
	}
	return &Node{Op: op, L: l, R: r}
}

// protectedEps guards the protected division/log/inverse against blowing up
// near zero, following the gplearn convention.
const protectedEps = 1e-6

// Eval computes the node's value on the given variable assignment. Missing
// variables read as 0. All functions are protected: they return finite
// values for every finite input, so evolution never propagates NaN/Inf.
//
// Eval is the reference interpreter; the fitness hot path runs the
// compiled form instead (see Compile and Program), which shares the same
// scalar kernels and is therefore bit-identical.
func (n *Node) Eval(vars []float64) float64 {
	switch n.Op {
	case OpConst:
		return n.Const
	case OpVar:
		if n.Var < 0 || n.Var >= len(vars) {
			return 0
		}
		return vars[n.Var]
	case OpAdd, OpSub, OpMul, OpDiv, OpMax, OpMin:
		return apply2(n.Op, n.L.Eval(vars), n.R.Eval(vars))
	case OpSqrt, OpLog, OpAbs, OpNeg, OpInv, OpSin, OpCos, OpTan:
		return apply1(n.Op, n.L.Eval(vars))
	default:
		return 0
	}
}

// Size counts the nodes of the tree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	return 1 + n.L.Size() + n.R.Size()
}

// Depth reports the tree height (a single node has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	l, r := n.L.Depth(), n.R.Depth()
	if r > l {
		l = r
	}
	return 1 + l
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	return &Node{Op: n.Op, Const: n.Const, Var: n.Var, L: n.L.Clone(), R: n.R.Clone()}
}

// Vars reports which variable indices the tree references.
func (n *Node) Vars() map[int]bool {
	out := map[int]bool{}
	n.collectVars(out)
	return out
}

func (n *Node) collectVars(out map[int]bool) {
	if n == nil {
		return
	}
	if n.Op == OpVar {
		out[n.Var] = true
	}
	n.L.collectVars(out)
	n.R.collectVars(out)
}

// String renders the expression in infix form with variables named X0,
// X1, ... — the notation the paper's tables use.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Op {
	case OpConst:
		b.WriteString(formatConst(n.Const))
	case OpVar:
		fmt.Fprintf(b, "X%d", n.Var)
	case OpAdd, OpSub, OpMul, OpDiv, OpMax, OpMin:
		if n.Op == OpMax || n.Op == OpMin {
			b.WriteString(n.Op.Name())
			b.WriteByte('(')
			n.L.write(b)
			b.WriteString(", ")
			n.R.write(b)
			b.WriteByte(')')
			return
		}
		b.WriteByte('(')
		n.L.write(b)
		b.WriteByte(' ')
		b.WriteString(n.Op.Name())
		b.WriteByte(' ')
		n.R.write(b)
		b.WriteByte(')')
	default:
		b.WriteString(n.Op.Name())
		b.WriteByte('(')
		n.L.write(b)
		b.WriteByte(')')
	}
}

func formatConst(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// walk visits every node with its parent and which-side link, enabling
// in-place subtree surgery during crossover/mutation. fn returns false to
// stop the walk early.
func walk(n *Node, fn func(node *Node) bool) bool {
	if n == nil {
		return true
	}
	if !fn(n) {
		return false
	}
	if !walk(n.L, fn) {
		return false
	}
	return walk(n.R, fn)
}

// nodeAt returns the i-th node in preorder (0-based), or nil if out of
// range.
func nodeAt(root *Node, i int) *Node {
	var found *Node
	idx := 0
	walk(root, func(n *Node) bool {
		if idx == i {
			found = n
			return false
		}
		idx++
		return true
	})
	return found
}

// replaceNodeAt swaps the subtree at preorder index i with repl, returning
// the (possibly new) root. Out-of-range indices leave the tree unchanged.
func replaceNodeAt(root *Node, i int, repl *Node) *Node {
	if i == 0 {
		return repl
	}
	idx := 0
	var parent *Node
	var left bool
	var visit func(n, p *Node, isLeft bool) bool
	visit = func(n, p *Node, isLeft bool) bool {
		if n == nil {
			return true
		}
		if idx == i {
			parent, left = p, isLeft
			return false
		}
		idx++
		if !visit(n.L, n, true) {
			return false
		}
		return visit(n.R, n, false)
	}
	visit(root, nil, false)
	if parent == nil {
		return root
	}
	if left {
		parent.L = repl
	} else {
		parent.R = repl
	}
	return root
}
