package gp

import (
	"context"
	"errors"
	"testing"
)

func parallelTestDataset() *Dataset {
	d := &Dataset{}
	for x0 := 0.0; x0 <= 255; x0 += 8 {
		for x1 := 0.0; x1 <= 64; x1 += 16 {
			d.X = append(d.X, []float64{x0, x1})
			d.Y = append(d.Y, 0.75*x0+4*x1-48)
		}
	}
	return d
}

// The Parallelism knob must not change a single bit of the outcome: the
// RNG is consumed only by the sequential breeding step, and evaluation is
// a pure function of each tree.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	d := parallelTestDataset()
	cfg := DefaultConfig()
	cfg.PopulationSize = 200
	cfg.Generations = 8
	cfg.StopFitness = -1 // run every generation so all paths are exercised
	cfg.Seed = 42

	type outcome struct {
		formula string
		fitness float64
		gens    int
		evals   int
	}
	var want outcome
	for i, workers := range []int{1, 4, -1, 3} {
		cfg.Parallelism = workers
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		got := outcome{res.Best.String(), res.Fitness, res.Generations, res.Evaluations}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallelism %d diverged: got %+v, want %+v", workers, got, want)
		}
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, parallelTestDataset(), DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancellation mid-evolution must abort between generations and surface
// ctx.Err() rather than a partial result.
func TestRunContextCancelledMidEvolution(t *testing.T) {
	d := parallelTestDataset()
	cfg := DefaultConfig()
	cfg.PopulationSize = 100
	cfg.Generations = 1000
	cfg.StopFitness = -1
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after a few generations' worth of work: use a dataset-sized
	// budget by cancelling from another goroutine as soon as Run starts.
	done := make(chan struct{})
	go func() { cancel(); close(done) }()
	<-done
	_, err := RunContext(ctx, d, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
