package gp

import (
	"math"
	"testing"
)

func TestSimplifyConstantFolding(t *testing.T) {
	// (2 + 3) * X0 → 5 * X0
	tree := NewBinary(OpMul, NewBinary(OpAdd, NewConst(2), NewConst(3)), NewVar(0))
	s := Simplify(tree)
	if s.String() != "(5 * X0)" {
		t.Fatalf("Simplify = %q", s)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	x := NewVar(0)
	cases := []struct {
		name string
		tree *Node
		want string
	}{
		{"x+0", NewBinary(OpAdd, x.Clone(), NewConst(0)), "X0"},
		{"0+x", NewBinary(OpAdd, NewConst(0), x.Clone()), "X0"},
		{"x-0", NewBinary(OpSub, x.Clone(), NewConst(0)), "X0"},
		{"x-x", NewBinary(OpSub, x.Clone(), x.Clone()), "0"},
		{"x*1", NewBinary(OpMul, x.Clone(), NewConst(1)), "X0"},
		{"1*x", NewBinary(OpMul, NewConst(1), x.Clone()), "X0"},
		{"x*0", NewBinary(OpMul, x.Clone(), NewConst(0)), "0"},
		{"x/1", NewBinary(OpDiv, x.Clone(), NewConst(1)), "X0"},
		{"x/x", NewBinary(OpDiv, x.Clone(), x.Clone()), "1"},
		{"neg(neg(x))", NewUnary(OpNeg, NewUnary(OpNeg, x.Clone())), "X0"},
		{"abs(abs(x))", NewUnary(OpAbs, NewUnary(OpAbs, x.Clone())), "abs(X0)"},
		{"max(x,x)", NewBinary(OpMax, x.Clone(), x.Clone()), "X0"},
		{"min(x,x)", NewBinary(OpMin, x.Clone(), x.Clone()), "X0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Simplify(c.tree).String(); got != c.want {
				t.Fatalf("Simplify = %q, want %q", got, c.want)
			}
		})
	}
}

func TestSimplifyNested(t *testing.T) {
	// ((X0 * 1) + (2 - 2)) → X0
	tree := NewBinary(OpAdd,
		NewBinary(OpMul, NewVar(0), NewConst(1)),
		NewBinary(OpSub, NewConst(2), NewConst(2)))
	if got := Simplify(tree).String(); got != "X0" {
		t.Fatalf("Simplify = %q", got)
	}
}

func TestSimplifyDoesNotModifyInput(t *testing.T) {
	tree := NewBinary(OpAdd, NewVar(0), NewConst(0))
	before := tree.String()
	Simplify(tree)
	if tree.String() != before {
		t.Fatal("Simplify mutated its input")
	}
}

func TestSimplifyNil(t *testing.T) {
	if Simplify(nil) != nil {
		t.Fatal("Simplify(nil) != nil")
	}
}

// Property: simplification preserves semantics on random trees across a
// sample domain.
func TestSimplifyPreservesSemantics(t *testing.T) {
	gen := &generator{rng: newTestRNG(31), numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	domain := [][]float64{{0, 0}, {1, 2}, {-3, 4}, {100, -7}, {0.5, 0.25}}
	for i := 0; i < 300; i++ {
		tree := gen.grow(5)
		s := Simplify(tree)
		for _, row := range domain {
			a, b := tree.Eval(row), s.Eval(row)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("tree %q simplified to %q: %v vs %v on %v", tree, s, a, b, row)
			}
		}
		if s.Size() > tree.Size() {
			t.Fatalf("simplification grew tree: %d -> %d", tree.Size(), s.Size())
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := NewBinary(OpMul, NewVar(0), NewConst(2))
	b := NewBinary(OpAdd, NewVar(0), NewVar(0))
	domain := [][]float64{{0}, {1}, {5}, {-3}}
	if !Equivalent(a, b, domain, 1e-9) {
		t.Fatal("2*x and x+x not equivalent")
	}
	c := NewBinary(OpMul, NewVar(0), NewConst(2.1))
	if Equivalent(a, c, domain, 1e-9) {
		t.Fatal("2*x and 2.1*x reported equivalent")
	}
	if Equivalent(a, b, nil, 1e-9) {
		t.Fatal("empty domain reported equivalent")
	}
}

func TestEquivalentRel(t *testing.T) {
	// 1.7x-22 vs 1.8x-40 over x ∈ [160,192]: the paper's §4.2 coolant
	// example — outputs 250-304 vs 248-305 are "almost the same".
	inferred := NewBinary(OpSub, NewBinary(OpMul, NewConst(1.7), NewVar(0)), NewConst(22))
	truth := NewBinary(OpSub, NewBinary(OpMul, NewConst(1.8), NewVar(0)), NewConst(40))
	var domain [][]float64
	for x := 160.0; x <= 192; x++ {
		domain = append(domain, []float64{x})
	}
	if !EquivalentRel(inferred, truth, domain, 1.0, 0.02) {
		t.Fatal("paper's coolant-temperature equivalence not accepted")
	}
	// But over a wide domain they must differ.
	var wide [][]float64
	for x := 0.0; x <= 255; x += 5 {
		wide = append(wide, []float64{x})
	}
	if EquivalentRel(inferred, truth, wide, 1.0, 0.02) {
		t.Fatal("formulas equivalent over full domain, should differ")
	}
}
