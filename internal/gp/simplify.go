package gp

import "math"

// Simplify returns a semantically equivalent, usually smaller tree:
// constant subexpressions fold, constant factors and offsets merge across
// nested multiplications/divisions/additions, and the common algebraic
// identities (x+0, x*1, x*0, x-x, x/1, neg(neg(x)), abs(abs(x))) collapse.
// The result is a new tree; the input is not modified.
//
// Folding uses the same protected semantics as Eval, so a folded constant
// equals what evaluation would have produced.
func Simplify(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := simplifyOnce(n)
	for i := 0; i < 6; i++ {
		next := simplifyOnce(out)
		if equalTrees(next, out) {
			break
		}
		out = next
	}
	return out
}

func simplifyOnce(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{Op: n.Op, Const: n.Const, Var: n.Var}
	out.L = simplifyOnce(n.L)
	out.R = simplifyOnce(n.R)

	// Fold fully constant subtrees.
	if out.Op != OpConst && out.Op != OpVar && isConst(out.L) && (out.R == nil || isConst(out.R)) {
		v := out.Eval(nil)
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			return NewConst(v)
		}
	}

	switch out.Op {
	case OpAdd:
		if constVal(out.L, 0) {
			return out.R
		}
		if constVal(out.R, 0) {
			return out.L
		}
		// Canonical form: constant offset on the right.
		if isConst(out.L) && !isConst(out.R) {
			out.L, out.R = out.R, out.L
		}
		// Merge nested constant offsets: (e+a)+b → e+(a+b).
		if isConst(out.R) && out.L.Op == OpAdd && isConst(out.L.R) {
			return NewBinary(OpAdd, out.L.L, NewConst(out.L.R.Const+out.R.Const))
		}
	case OpSub:
		if constVal(out.R, 0) {
			return out.L
		}
		if equalTrees(out.L, out.R) {
			return NewConst(0)
		}
	case OpMul:
		if constVal(out.L, 1) {
			return out.R
		}
		if constVal(out.R, 1) {
			return out.L
		}
		if constVal(out.L, 0) || constVal(out.R, 0) {
			return NewConst(0)
		}
		// Canonical form: constant factor on the left.
		if isConst(out.R) && !isConst(out.L) {
			out.L, out.R = out.R, out.L
		}
		// Merge nested constant factors: a*(b*e) → (a*b)*e.
		if isConst(out.L) && out.R.Op == OpMul {
			if isConst(out.R.L) {
				return NewBinary(OpMul, NewConst(out.L.Const*out.R.L.Const), out.R.R)
			}
			if isConst(out.R.R) {
				return NewBinary(OpMul, NewConst(out.L.Const*out.R.R.Const), out.R.L)
			}
		}
		// Distribute a constant factor over a constant offset (size-neutral,
		// enables further factor merging): a*(e+b) → a*e + a*b.
		if isConst(out.L) && out.R.Op == OpAdd && isConst(out.R.R) {
			return NewBinary(OpAdd,
				NewBinary(OpMul, NewConst(out.L.Const), out.R.L),
				NewConst(out.L.Const*out.R.R.Const))
		}
		if isConst(out.L) && out.R.Op == OpSub && isConst(out.R.R) {
			return NewBinary(OpAdd,
				NewBinary(OpMul, NewConst(out.L.Const), out.R.L),
				NewConst(-out.L.Const*out.R.R.Const))
		}
	case OpDiv:
		if constVal(out.R, 1) {
			return out.L
		}
		if equalTrees(out.L, out.R) && !isConst(out.L) {
			// x/x is 1 except near x=0 where protection yields 1 anyway.
			return NewConst(1)
		}
		// Division by a (non-tiny) constant becomes a constant factor so
		// the multiplication folding can merge it.
		if isConst(out.R) && math.Abs(out.R.Const) >= protectedEps {
			return NewBinary(OpMul, NewConst(1/out.R.Const), out.L)
		}
	case OpNeg:
		if out.L.Op == OpNeg {
			return out.L.L
		}
	case OpAbs:
		if out.L.Op == OpAbs {
			return out.L
		}
	case OpMax, OpMin:
		if equalTrees(out.L, out.R) {
			return out.L
		}
	}
	return out
}

func isConst(n *Node) bool { return n != nil && n.Op == OpConst }

func constVal(n *Node, v float64) bool {
	return isConst(n) && n.Const == v
}

// equalTrees reports structural equality.
func equalTrees(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Op != b.Op || a.Const != b.Const || a.Var != b.Var {
		return false
	}
	return equalTrees(a.L, b.L) && equalTrees(a.R, b.R)
}

// Equivalent reports whether two programs agree (within tol, absolute) on
// every row of the sample domain. The experiments use this to score an
// inferred formula against ground truth over the byte ranges actually
// observed in traffic — the paper's own acceptance criterion ("if the
// coefficient ... is very close ... we regard the inferred formula as a
// correct one", and the Engine Coolant Temperature argument in §4.2).
func Equivalent(a, b *Node, domain [][]float64, tol float64) bool {
	if len(domain) == 0 {
		return false
	}
	for _, row := range domain {
		va, vb := a.Eval(row), b.Eval(row)
		if math.IsNaN(va) || math.IsNaN(vb) {
			return false
		}
		if math.Abs(va-vb) > tol {
			return false
		}
	}
	return true
}

// EquivalentRel is Equivalent with a mixed absolute/relative tolerance:
// |a-b| <= absTol + relTol*|b|, which matches how the paper compares
// formulas whose outputs span different magnitudes.
func EquivalentRel(a, b *Node, domain [][]float64, absTol, relTol float64) bool {
	if len(domain) == 0 {
		return false
	}
	for _, row := range domain {
		va, vb := a.Eval(row), b.Eval(row)
		if math.IsNaN(va) || math.IsNaN(vb) {
			return false
		}
		if math.Abs(va-vb) > absTol+relTol*math.Abs(vb) {
			return false
		}
	}
	return true
}
