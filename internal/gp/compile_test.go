package gp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// edgeValues are the inputs that exercise every protected-op branch:
// exact zeros and near-eps values (protected div/log/inv), negatives
// (sqrt/log of negative arguments), magnitudes that overflow to ±Inf
// under multiplication, and NaN/±Inf themselves.
var edgeValues = []float64{
	0, -0.0, protectedEps / 2, -protectedEps / 2, protectedEps, -protectedEps,
	1e-7, -1e-7, 1, -1, 0.5, -2.5, 255, -255, 1e6, -1e6, 1e155, -1e155,
	math.Pi / 2, -math.Pi / 2, math.Inf(1), math.Inf(-1), math.NaN(),
}

// randomTree grows a random tree whose constants are biased toward the
// protected-op edge values and whose variable indices may fall outside
// the dataset width (Eval defines those to read 0).
func randomTree(rng *rand.Rand, depth, numVars int) *Node {
	if depth <= 1 || rng.Float64() < 0.3 {
		switch rng.Intn(3) {
		case 0:
			return NewConst(edgeValues[rng.Intn(len(edgeValues))])
		case 1:
			return NewConst(rng.NormFloat64() * 100)
		default:
			// Occasionally out of range (numVars..numVars+1) or negative.
			return NewVar(rng.Intn(numVars+2) - rng.Intn(2)*(numVars+2))
		}
	}
	op := FunctionSet[rng.Intn(len(FunctionSet))]
	if op.Arity() == 1 {
		return NewUnary(op, randomTree(rng, depth-1, numVars))
	}
	return NewBinary(op, randomTree(rng, depth-1, numVars), randomTree(rng, depth-1, numVars))
}

// randomEdgeDataset builds rows drawn from the edge values and random
// magnitudes.
func randomEdgeDataset(rng *rand.Rand, rows, numVars int) *Dataset {
	d := &Dataset{}
	for i := 0; i < rows; i++ {
		row := make([]float64, numVars)
		for v := range row {
			if rng.Float64() < 0.5 {
				row[v] = edgeValues[rng.Intn(len(edgeValues))]
			} else {
				row[v] = rng.NormFloat64() * 1000
			}
		}
		d.X = append(d.X, row)
		if rng.Float64() < 0.1 {
			d.Y = append(d.Y, edgeValues[rng.Intn(len(edgeValues))])
		} else {
			d.Y = append(d.Y, rng.NormFloat64()*100)
		}
	}
	return d
}

// sameBits reports float64 identity at the bit level, except that all
// NaN payloads are considered equal (the interpreter and the VM may
// legitimately produce differently-signed NaNs from the same operation
// on some architectures; "is NaN" is the semantic contract).
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestCompiledParityFuzz is the differential test the engine's
// determinism contract rests on: across a fuzzed corpus of random trees
// (edge constants, protected-op edge inputs, out-of-range variables) the
// VM must return bit-identical float64 results to Node.Eval on every
// sample. Run under -race in CI.
func TestCompiledParityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		numVars := 1 + rng.Intn(3)
		tree := randomTree(rng, 2+rng.Intn(5), numVars)
		d := randomEdgeDataset(rng, 1+rng.Intn(40), numVars)
		p := Compile(tree)
		b := NewBatch(d)
		m := NewMachine()
		preds := p.Eval(b, m)
		if len(preds) != len(d.X) {
			t.Fatalf("trial %d: %d predictions for %d rows", trial, len(preds), len(d.X))
		}
		for i, row := range d.X {
			want := tree.Eval(row)
			if !sameBits(preds[i], want) {
				t.Fatalf("trial %d, row %d: tree %s\nVM=%x (%v) interpreter=%x (%v)",
					trial, i, tree, math.Float64bits(preds[i]), preds[i],
					math.Float64bits(want), want)
			}
		}
	}
}

// TestCompiledParityConcurrent runs the parity check from several
// goroutines sharing one Batch (as the evaluator's workers do), each
// with its own Machine — the -race configuration of the engine.
func TestCompiledParityConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const numVars = 2
	d := randomEdgeDataset(rng, 64, numVars)
	b := NewBatch(d)
	trees := make([]*Node, 32)
	for i := range trees {
		trees[i] = randomTree(rng, 5, numVars)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := NewMachine()
			for i := w; i < len(trees); i += 4 {
				p := Compile(trees[i])
				preds := p.Eval(b, m)
				for r, row := range d.X {
					if want := trees[i].Eval(row); !sameBits(preds[r], want) {
						t.Errorf("tree %d row %d: VM %v != interpreter %v", i, r, preds[r], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// referenceMAE/MSE/RobustMAE are the pre-engine interpreter loops, kept
// verbatim as the behavioral reference for the deduplicated helpers.
func referenceMAE(n *Node, d *Dataset) float64 {
	if len(d.Y) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i, row := range d.X {
		diff := n.Eval(row) - d.Y[i]
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return math.Inf(1)
		}
		sum += math.Abs(diff)
	}
	return sum / float64(len(d.Y))
}

func referenceMSE(n *Node, d *Dataset) float64 {
	if len(d.Y) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i, row := range d.X {
		diff := n.Eval(row) - d.Y[i]
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return math.Inf(1)
		}
		sum += diff * diff
	}
	return sum / float64(len(d.Y))
}

func referenceRobustMAE(n *Node, d *Dataset) float64 {
	resids := make([]float64, 0, len(d.Y))
	for i, row := range d.X {
		v := n.Eval(row)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.Inf(1)
		}
		resids = append(resids, math.Abs(v-d.Y[i]))
	}
	return trimmedMean(resids)
}

// TestMetricParityFuzz pins MAE/MSE/RobustMAE to their pre-engine
// interpreter semantics bit for bit, including the Inf short-circuits.
func TestMetricParityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		numVars := 1 + rng.Intn(3)
		tree := randomTree(rng, 2+rng.Intn(4), numVars)
		d := randomEdgeDataset(rng, 1+rng.Intn(30), numVars)
		if got, want := MAE(tree, d), referenceMAE(tree, d); !sameBits(got, want) {
			t.Fatalf("trial %d: MAE=%v want %v for %s", trial, got, want, tree)
		}
		if got, want := MSE(tree, d), referenceMSE(tree, d); !sameBits(got, want) {
			t.Fatalf("trial %d: MSE=%v want %v for %s", trial, got, want, tree)
		}
		if got, want := RobustMAE(tree, d), referenceRobustMAE(tree, d); !sameBits(got, want) {
			t.Fatalf("trial %d: RobustMAE=%v want %v for %s", trial, got, want, tree)
		}
	}
}

// TestRobustMAEBoundedExact verifies the early-abort scorer's contract:
// exceeded is true exactly when the true trimmed MAE exceeds the bound,
// and an early abort never under-reports (the returned value is a lower
// bound on the exact score).
func TestRobustMAEBoundedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		numVars := 1 + rng.Intn(2)
		tree := randomTree(rng, 2+rng.Intn(4), numVars)
		d := randomEdgeDataset(rng, 1+rng.Intn(200), numVars)
		exact := referenceRobustMAE(tree, d)
		var bound float64
		switch trial % 4 {
		case 0:
			bound = 0
		case 1:
			bound = math.Inf(1)
		case 2:
			bound = exact // exactly at the threshold: not exceeded
		default:
			bound = math.Abs(rng.NormFloat64()) * 100
		}
		got, exceeded := RobustMAEBounded(tree, d, bound)
		if want := exact > bound; exceeded != want {
			t.Fatalf("trial %d: exceeded=%v, want %v (exact=%v bound=%v, tree %s)",
				trial, exceeded, want, exact, bound, tree)
		}
		if exceeded {
			if !(got > bound) && !math.IsNaN(exact) {
				t.Fatalf("trial %d: aborted with value %v not above bound %v", trial, got, bound)
			}
			if got > exact && !math.IsNaN(exact) {
				t.Fatalf("trial %d: lower bound %v exceeds exact %v", trial, got, exact)
			}
		} else if !sameBits(got, exact) {
			t.Fatalf("trial %d: non-aborted value %v != exact %v", trial, got, exact)
		}
	}
}

// TestRobustMAEBoundedAborts pins the abort path itself: a long dataset
// with uniformly huge residuals must trip the streaming check well
// before the end, and still satisfy the lower-bound contract.
func TestRobustMAEBoundedAborts(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 10000; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 1e6)
	}
	tree := NewConst(0) // residual is 1e6 everywhere
	got, exceeded := RobustMAEBounded(tree, d, 1)
	if !exceeded {
		t.Fatal("bound 1 not reported exceeded for residuals of 1e6")
	}
	if got <= 1 {
		t.Fatalf("returned bound estimate %v not above the bound", got)
	}
	if exact := referenceRobustMAE(tree, d); got > exact {
		t.Fatalf("lower bound %v exceeds exact %v", got, exact)
	}
}

// TestConstantFolding checks the compiler collapses const-only subtrees
// (with interpreter-identical values) and canonicalises negative
// variable indices.
func TestConstantFolding(t *testing.T) {
	// sqrt(abs(-4)) + (2 * 3) is all constants: one instruction.
	tree := NewBinary(OpAdd,
		NewUnary(OpSqrt, NewUnary(OpAbs, NewConst(-4))),
		NewBinary(OpMul, NewConst(2), NewConst(3)))
	p := Compile(tree)
	if p.Len() != 1 {
		t.Fatalf("constant tree compiled to %d instructions, want 1", p.Len())
	}
	if got, want := p.Eval(NewBatch(&Dataset{X: [][]float64{{0}}, Y: []float64{0}}), NewMachine())[0], tree.Eval([]float64{0}); !sameBits(got, want) {
		t.Fatalf("folded value %v, want %v", got, want)
	}
	// A negative variable index always reads 0: folds to const.
	if p := Compile(NewVar(-3)); p.Len() != 1 || p.code[0].op != OpConst {
		t.Fatalf("negative var compiled to %+v", p.code)
	}
	// Folding is semantic, so a folded tree and its literal constant
	// share one cache key; an unfoldable tree does not.
	k1 := Compile(NewBinary(OpMul, NewConst(2), NewConst(3))).Key()
	k2 := Compile(NewConst(6)).Key()
	if k1 != k2 {
		t.Fatal("folded 2*3 and literal 6 have different keys")
	}
	if Compile(NewVar(0)).Key() == k2 {
		t.Fatal("X0 shares a key with the constant 6")
	}
}

// TestCacheCountersDeterministic verifies the cache behaves identically
// at every parallelism — counters included — and that the accounting
// invariant holds.
func TestCacheCountersDeterministic(t *testing.T) {
	d := parallelTestDataset()
	cfg := DefaultConfig()
	cfg.PopulationSize = 150
	cfg.Generations = 6
	cfg.StopFitness = -1
	cfg.Seed = 11
	var want Result
	for i, workers := range []int{1, 3, -1} {
		cfg.Parallelism = workers
		res, err := Run(d, cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		if res.CacheHits+res.CacheMisses != res.Evaluations {
			t.Fatalf("hits %d + misses %d != evaluations %d",
				res.CacheHits, res.CacheMisses, res.Evaluations)
		}
		if res.CacheHits == 0 {
			t.Fatal("no cache hits across 6 generations of elitism and crossover")
		}
		if i == 0 {
			want = res
			continue
		}
		if res.CacheHits != want.CacheHits || res.CacheMisses != want.CacheMisses ||
			res.Best.String() != want.Best.String() || res.Fitness != want.Fitness {
			t.Fatalf("parallelism %d diverged: %+v vs %+v", workers, res, want)
		}
	}
}
