package gp

import (
	"bytes"
	"math"
	"sync"
)

// This file implements the compiled evaluation engine that replaces the
// tree-walk interpreter on the fitness hot path. A tree is flattened once
// into postfix bytecode (Compile), then a small stack VM executes each
// instruction over the *whole dataset* at a time: structure-of-arrays
// batch loops over the dataset's columns instead of one recursive
// interpretation per (tree, sample) pair. The VM's scratch (stack slots
// and one flat float slab) lives in a Machine that workers reuse across
// evaluations, so steady-state scoring performs zero allocations.
//
// Determinism: the compiler's constant folder and the VM's batch loops
// call exactly the scalar kernels Node.Eval uses (ops.go), and every
// sample is computed independently in ascending index order, so the VM's
// output is bit-identical to the interpreter's — including NaN/Inf
// propagation through the protected operators.

// instr is one postfix bytecode instruction. OpConst pushes c, OpVar
// pushes the variable's column (missing variables read as 0), and
// function ops pop their arity and push one result.
type instr struct {
	op Op
	c  float64
	v  int
}

// Program is a compiled expression tree: postfix bytecode plus the
// compile-time facts the VM and the fitness cache need. Programs built by
// the package-level Compile are immutable and safe for concurrent use;
// programs returned by (*Compiler).Compile alias their compiler's scratch
// and are valid only until that compiler's next compilation.
type Program struct {
	code  []instr
	depth int // maximum stack depth at any point of the execution
	keyb  []byte
	key   string // interned copy of keyb; empty for compiler-owned programs
	hash  uint64
}

// Compiler holds reusable compilation scratch: the postfix emit buffer
// (which doubles as the constant folder's stack — folding rewrites the
// buffer tail in place) and the canonical-key buffer. A Compiler's
// buffers grow to the largest tree it has compiled and then stop
// allocating, so steady-state compilation is allocation-free. Not safe
// for concurrent use; pool one per worker.
type Compiler struct {
	code []instr
	key  []byte
	swap []byte
	prog Program
	// nodes counts the source tree's nodes during emit — the same value
	// Node.Size() walks the tree for, picked up for free so the engine's
	// parsimony penalty needs no extra traversal.
	nodes int
}

// NewCompiler returns an empty compiler; buffers grow on first use.
func NewCompiler() *Compiler { return &Compiler{} }

// compilerPool serves compile scratch to the one-shot entry points
// (package-level Compile, the score helpers). The evolution engine does
// not use it: each evaluator owns a compiler outright.
var compilerPool = sync.Pool{New: func() any { return NewCompiler() }}

// Compile flattens the tree to postfix bytecode with compile-time
// constant folding: any subtree whose leaves are all constants collapses
// to a single OpConst instruction, computed with the same protected
// kernels the interpreter uses so the folded value is bit-identical to
// what Eval would have produced. Variables with negative indices (which
// Eval defines to read 0) fold to the constant 0.
//
// The returned Program is immutable and safe for concurrent use. Callers
// compiling in a loop should prefer a Compiler, which reuses its buffers
// instead of allocating per call.
func Compile(root *Node) *Program {
	c := compilerPool.Get().(*Compiler)
	depth, hash := c.compile(root)
	p := &Program{
		code:  append([]instr(nil), c.code...),
		depth: depth,
		key:   string(c.key),
		hash:  hash,
	}
	compilerPool.Put(c)
	return p
}

// Compile compiles root into the compiler's scratch buffers. The returned
// Program aliases those buffers: it is valid until the next Compile call
// on the same Compiler, and it is 100% allocation-free once the buffers
// have grown to the working tree size.
func (c *Compiler) Compile(root *Node) *Program {
	depth, hash := c.compile(root)
	c.prog = Program{code: c.code, depth: depth, keyb: c.key, hash: hash}
	return &c.prog
}

// compile emits root into c.code/c.key and returns the stack depth and
// key hash.
func (c *Compiler) compile(root *Node) (depth int, hash uint64) {
	c.code = c.code[:0]
	c.key = c.key[:0]
	c.nodes = 0
	c.emit(root)
	return c.finish()
}

// keyConst appends one folded-constant entry to the canonical key.
func (c *Compiler) keyConst(v float64) {
	bits := math.Float64bits(v)
	c.key = append(c.key, byte(OpConst),
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// commutative reports whether the protected kernel for op is bitwise
// symmetric in its operands — the property that lets the canonical key
// order the operand encodings without changing any score.
func commutative(op Op) bool {
	switch op {
	case OpAdd, OpMul, OpMax, OpMin:
		return true
	}
	return false
}

// swapKey exchanges the adjacent key segments [ls:ms) and [ms:len).
func (c *Compiler) swapKey(ls, ms int) {
	if cap(c.swap) < ms-ls {
		c.swap = make([]byte, 0, ms-ls)
	}
	c.swap = append(c.swap[:0], c.key[ls:ms]...)
	n := copy(c.key[ls:], c.key[ms:])
	copy(c.key[ls+n:], c.swap)
}

// emit appends root's postfix code and canonical key, reporting whether
// the emitted tail is a single folded constant. The key is built
// alongside the code so commutative operands can be ordered
// canonically: a postfix subtree's encoding is one contiguous segment,
// and for Add/Mul/Max/Min — whose kernels are bitwise symmetric — the
// two operand segments are swapped into lexicographic order. Mirrored
// offspring (which crossover mass-produces) then share one cache entry,
// and because the underlying scores are bitwise identical either way,
// serving one from the other changes no result.
func (c *Compiler) emit(n *Node) bool {
	c.nodes++
	switch n.Op {
	case OpConst:
		c.code = append(c.code, instr{op: OpConst, c: n.Const})
		c.keyConst(n.Const)
		return true
	case OpVar:
		if n.Var < 0 {
			c.code = append(c.code, instr{op: OpConst, c: 0})
			c.keyConst(0)
			return true
		}
		c.code = append(c.code, instr{op: OpVar, v: n.Var})
		c.key = append(c.key, byte(OpVar),
			byte(n.Var), byte(n.Var>>8), byte(n.Var>>16), byte(n.Var>>24))
		return false
	case OpAdd, OpSub, OpMul, OpDiv, OpMax, OpMin:
		ls := len(c.key)
		cl := c.emit(n.L)
		ms := len(c.key)
		cr := c.emit(n.R)
		if cl && cr {
			v := apply2(n.Op, c.code[len(c.code)-2].c, c.code[len(c.code)-1].c)
			c.code = c.code[:len(c.code)-1]
			c.code[len(c.code)-1] = instr{op: OpConst, c: v}
			c.key = c.key[:ls]
			c.keyConst(v)
			return true
		}
		c.code = append(c.code, instr{op: n.Op})
		if commutative(n.Op) && bytes.Compare(c.key[ls:ms], c.key[ms:]) > 0 {
			c.swapKey(ls, ms)
		}
		c.key = append(c.key, byte(n.Op))
		return false
	case OpSqrt, OpLog, OpAbs, OpNeg, OpInv, OpSin, OpCos, OpTan:
		ls := len(c.key)
		if c.emit(n.L) {
			v := apply1(n.Op, c.code[len(c.code)-1].c)
			c.code[len(c.code)-1] = instr{op: OpConst, c: v}
			c.key = c.key[:ls]
			c.keyConst(v)
			return true
		}
		c.code = append(c.code, instr{op: n.Op})
		c.key = append(c.key, byte(n.Op))
		return false
	default:
		// Unknown ops evaluate to 0 without touching their children,
		// exactly as Eval's default case does. The node count still has to
		// include the unvisited children to match Node.Size().
		c.nodes += n.Size() - 1
		c.code = append(c.code, instr{op: OpConst, c: 0})
		c.keyConst(0)
		return true
	}
}

// finish derives the stack depth from the emitted code and hashes the
// canonical key emit built.
func (c *Compiler) finish() (depth int, hash uint64) {
	cur := 0
	for _, ins := range c.code {
		switch ins.op {
		case OpConst, OpVar:
			cur++
		default:
			if ins.op.Arity() == 2 {
				cur--
			}
		}
		if cur > depth {
			depth = cur
		}
	}
	h := uint64(14695981039346656037) // FNV-1a 64
	for _, b := range c.key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return depth, h
}

// Key is the canonical structural encoding of the compiled program. Two
// trees share a key exactly when they fold to identical bytecode up to
// commutative operand order (Add/Mul/Max/Min operands are encoded in a
// canonical order, and their kernels are bitwise symmetric, so key-equal
// programs score bitwise identically). That makes it a collision-free
// fitness-cache key: crossover and elitism re-create structurally
// identical and mirrored offspring constantly, and every copy maps to
// the same key. For compiler-owned programs the string is materialised
// on demand.
func (p *Program) Key() string {
	if p.key == "" && len(p.keyb) > 0 {
		return string(p.keyb)
	}
	return p.key
}

// Hash is the 64-bit FNV-1a digest of Key, for callers that want a fixed
// size summary of the structure.
func (p *Program) Hash() uint64 { return p.hash }

// Len reports the instruction count (≤ the source tree's node count,
// thanks to folding).
func (p *Program) Len() int { return len(p.code) }

// StackDepth reports the VM stack slots the program needs.
func (p *Program) StackDepth() int { return p.depth }

// Batch is the structure-of-arrays view of a Dataset: one contiguous
// column per variable, so the VM streams each instruction over memory
// linearly. Rows narrower than the widest row read 0 for their missing
// variables, matching Eval's out-of-range rule. A Batch is immutable
// after construction and shared by all workers.
type Batch struct {
	n    int
	cols [][]float64
	y    []float64
}

// NewBatch builds the column view of d. The Y slice is referenced, not
// copied.
func NewBatch(d *Dataset) *Batch {
	n := len(d.X)
	width := 0
	for _, row := range d.X {
		if len(row) > width {
			width = len(row)
		}
	}
	cols := make([][]float64, width)
	flat := make([]float64, n*width)
	for v := range cols {
		col := flat[v*n : (v+1)*n]
		for i, row := range d.X {
			if v < len(row) {
				col[i] = row[v]
			}
		}
		cols[v] = col
	}
	return &Batch{n: n, cols: cols, y: d.Y}
}

// N reports the sample count.
func (b *Batch) N() int { return b.n }

// slot is one VM stack entry: either a scalar (constants, and results of
// const-only subexpressions the folder could not see, e.g. out-of-width
// variables) or a vector of one value per sample.
type slot struct {
	vec      []float64
	scalar   float64
	isScalar bool
}

// Machine holds the VM's reusable scratch: the stack slots, one flat
// float64 slab backing every owned stack vector, and the residual buffer
// the scoring helpers use. A Machine grows to the largest (program,
// batch) it has run and then stops allocating; it is not safe for
// concurrent use — pool one per worker.
type Machine struct {
	slab  []float64
	slots []slot
	rbuf  []float64
	sbuf  []float64
	ibuf  []int
}

// NewMachine returns an empty machine; buffers grow on first use.
func NewMachine() *Machine { return &Machine{} }

// resids returns the machine-owned residual buffer resized to n.
//
//dplint:hotpath gp-eval
func (m *Machine) resids(n int) []float64 {
	if cap(m.rbuf) < n {
		m.rbuf = make([]float64, n)
	}
	return m.rbuf[:n]
}

// selbuf returns the machine-owned percentile-selection scratch resized
// to n (permuted freely by the trimmed-fit helpers).
//
//dplint:hotpath gp-eval
func (m *Machine) selbuf(n int) []float64 {
	if cap(m.sbuf) < n {
		m.sbuf = make([]float64, n)
	}
	return m.sbuf[:n]
}

// selidx returns the machine-owned index scratch paired with selbuf by
// the trimmed-fit heap.
//
//dplint:hotpath gp-eval
func (m *Machine) selidx(n int) []int {
	if cap(m.ibuf) < n {
		m.ibuf = make([]int, n)
	}
	return m.ibuf[:n]
}

// Eval executes the program over every sample of the batch and returns
// one prediction per sample, bit-identical to calling Eval on the source
// tree row by row. The returned slice is owned by the machine (or
// aliases a batch column) and is valid, read-only, until the machine's
// next Eval.
//
//dplint:hotpath gp-eval
func (p *Program) Eval(b *Batch, m *Machine) []float64 {
	n := b.n
	if need := p.depth * n; cap(m.slab) < need {
		m.slab = make([]float64, need)
	}
	if cap(m.slots) < p.depth {
		m.slots = make([]slot, p.depth)
	}
	slots := m.slots[:cap(m.slots)]
	region := func(i int) []float64 { return m.slab[i*n : (i+1)*n] }
	sp := 0
	for _, ins := range p.code {
		switch {
		case ins.op == OpConst:
			slots[sp] = slot{scalar: ins.c, isScalar: true}
			sp++
		case ins.op == OpVar:
			if ins.v < len(b.cols) {
				slots[sp] = slot{vec: b.cols[ins.v]}
			} else {
				slots[sp] = slot{isScalar: true} // missing variable reads 0
			}
			sp++
		case ins.op.Arity() == 1:
			s := &slots[sp-1]
			if s.isScalar {
				s.scalar = apply1(ins.op, s.scalar)
			} else {
				dst := region(sp - 1)
				runUnary(ins.op, dst, s.vec)
				s.vec = dst
			}
		default: // binary
			bs := slots[sp-1]
			sp--
			as := &slots[sp-1]
			if as.isScalar && bs.isScalar {
				as.scalar = apply2(ins.op, as.scalar, bs.scalar)
				continue
			}
			// Broadcast a scalar operand into its own slot's region; the
			// two regions are disjoint, and dst == av aliasing is safe
			// because every loop reads index i before writing it.
			av := as.vec
			if as.isScalar {
				av = region(sp - 1)
				fill(av, as.scalar)
			}
			bv := bs.vec
			if bs.isScalar {
				bv = region(sp)
				fill(bv, bs.scalar)
			}
			dst := region(sp - 1)
			runBinary(ins.op, dst, av, bv)
			*as = slot{vec: dst}
		}
	}
	res := slots[0]
	if res.isScalar {
		dst := region(0)
		fill(dst, res.scalar)
		return dst
	}
	return res.vec
}

//dplint:hotpath gp-eval
func fill(v []float64, s float64) {
	for i := range v {
		v[i] = s
	}
}

// runUnary applies a unary kernel over a whole column.
//
//dplint:hotpath gp-eval
func runUnary(op Op, dst, src []float64) {
	src = src[:len(dst)]
	switch op {
	case OpSqrt:
		for i, x := range src {
			dst[i] = pSqrt(x)
		}
	case OpLog:
		for i, x := range src {
			dst[i] = pLog(x)
		}
	case OpAbs:
		for i, x := range src {
			dst[i] = pAbs(x)
		}
	case OpNeg:
		for i, x := range src {
			dst[i] = pNeg(x)
		}
	case OpInv:
		for i, x := range src {
			dst[i] = pInv(x)
		}
	case OpSin:
		for i, x := range src {
			dst[i] = pSin(x)
		}
	case OpCos:
		for i, x := range src {
			dst[i] = pCos(x)
		}
	case OpTan:
		for i, x := range src {
			dst[i] = pTan(x)
		}
	default:
		fill(dst, 0)
	}
}

// runBinary applies a binary kernel over two whole columns.
//
//dplint:hotpath gp-eval
func runBinary(op Op, dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	switch op {
	case OpAdd:
		for i := range dst {
			dst[i] = pAdd(a[i], b[i])
		}
	case OpSub:
		for i := range dst {
			dst[i] = pSub(a[i], b[i])
		}
	case OpMul:
		for i := range dst {
			dst[i] = pMul(a[i], b[i])
		}
	case OpDiv:
		for i := range dst {
			dst[i] = pDiv(a[i], b[i])
		}
	case OpMax:
		for i := range dst {
			dst[i] = pMax(a[i], b[i])
		}
	case OpMin:
		for i := range dst {
			dst[i] = pMin(a[i], b[i])
		}
	default:
		fill(dst, 0)
	}
}
