package gp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpArityAndNames(t *testing.T) {
	if len(FunctionSet) != 14 {
		t.Fatalf("function set has %d entries, want 14 (paper §6)", len(FunctionSet))
	}
	for _, op := range FunctionSet {
		if a := op.Arity(); a != 1 && a != 2 {
			t.Fatalf("%s arity = %d", op.Name(), a)
		}
		if op.Name() == "" {
			t.Fatalf("op %d has empty name", op)
		}
	}
	if OpConst.Arity() != 0 || OpVar.Arity() != 0 {
		t.Fatal("terminals must have arity 0")
	}
}

func TestEvalBasics(t *testing.T) {
	x0, x1 := NewVar(0), NewVar(1)
	cases := []struct {
		name string
		tree *Node
		vars []float64
		want float64
	}{
		{"const", NewConst(4.5), nil, 4.5},
		{"var", x0, []float64{7}, 7},
		{"var out of range", NewVar(3), []float64{7}, 0},
		{"add", NewBinary(OpAdd, x0, x1), []float64{2, 3}, 5},
		{"sub", NewBinary(OpSub, x0, x1), []float64{2, 3}, -1},
		{"mul", NewBinary(OpMul, x0, x1), []float64{2, 3}, 6},
		{"div", NewBinary(OpDiv, x0, x1), []float64{6, 3}, 2},
		{"div by zero protected", NewBinary(OpDiv, x0, x1), []float64{6, 0}, 1},
		{"sqrt", NewUnary(OpSqrt, x0), []float64{9}, 3},
		{"sqrt negative protected", NewUnary(OpSqrt, x0), []float64{-9}, 3},
		{"log", NewUnary(OpLog, x0), []float64{math.E}, 1},
		{"log zero protected", NewUnary(OpLog, x0), []float64{0}, 0},
		{"abs", NewUnary(OpAbs, x0), []float64{-4}, 4},
		{"neg", NewUnary(OpNeg, x0), []float64{4}, -4},
		{"max", NewBinary(OpMax, x0, x1), []float64{2, 3}, 3},
		{"min", NewBinary(OpMin, x0, x1), []float64{2, 3}, 2},
		{"inv", NewUnary(OpInv, x0), []float64{4}, 0.25},
		{"inv zero protected", NewUnary(OpInv, x0), []float64{0}, 1},
		{"sin", NewUnary(OpSin, x0), []float64{0}, 0},
		{"cos", NewUnary(OpCos, x0), []float64{0}, 1},
		{"tan", NewUnary(OpTan, x0), []float64{0}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.tree.Eval(c.vars); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("Eval = %v, want %v", got, c.want)
			}
		})
	}
}

func TestTanPoleClamped(t *testing.T) {
	tree := NewUnary(OpTan, NewVar(0))
	v := tree.Eval([]float64{math.Pi / 2})
	if math.IsInf(v, 0) || math.IsNaN(v) || math.Abs(v) > 1e6 {
		t.Fatalf("tan near pole = %v, want clamped finite", v)
	}
}

func TestSizeDepthVars(t *testing.T) {
	// (X0 * X1) / 5
	tree := NewBinary(OpDiv, NewBinary(OpMul, NewVar(0), NewVar(1)), NewConst(5))
	if tree.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tree.Size())
	}
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tree.Depth())
	}
	vars := tree.Vars()
	if !vars[0] || !vars[1] || len(vars) != 2 {
		t.Fatalf("Vars = %v", vars)
	}
}

func TestCloneIndependence(t *testing.T) {
	tree := NewBinary(OpAdd, NewVar(0), NewConst(2))
	c := tree.Clone()
	c.R.Const = 99
	if tree.R.Const != 2 {
		t.Fatal("Clone shares nodes with original")
	}
}

func TestStringRendering(t *testing.T) {
	tree := NewBinary(OpDiv, NewBinary(OpMul, NewVar(0), NewVar(1)), NewConst(5))
	if got := tree.String(); got != "((X0 * X1) / 5)" {
		t.Fatalf("String = %q", got)
	}
	u := NewUnary(OpSqrt, NewVar(0))
	if got := u.String(); got != "sqrt(X0)" {
		t.Fatalf("String = %q", got)
	}
	m := NewBinary(OpMax, NewVar(0), NewConst(1.5))
	if got := m.String(); got != "max(X0, 1.5)" {
		t.Fatalf("String = %q", got)
	}
}

func TestNodeAtPreorder(t *testing.T) {
	// Preorder: div, mul, X0, X1, 5
	tree := NewBinary(OpDiv, NewBinary(OpMul, NewVar(0), NewVar(1)), NewConst(5))
	wantOps := []Op{OpDiv, OpMul, OpVar, OpVar, OpConst}
	for i, want := range wantOps {
		n := nodeAt(tree, i)
		if n == nil || n.Op != want {
			t.Fatalf("nodeAt(%d) = %v, want op %v", i, n, want)
		}
	}
	if nodeAt(tree, 5) != nil {
		t.Fatal("nodeAt out of range returned node")
	}
}

func TestReplaceNodeAt(t *testing.T) {
	tree := NewBinary(OpDiv, NewBinary(OpMul, NewVar(0), NewVar(1)), NewConst(5))
	// Replace index 3 (X1) with constant 7 → (X0*7)/5.
	got := replaceNodeAt(tree, 3, NewConst(7))
	if v := got.Eval([]float64{10, 0}); math.Abs(v-14) > 1e-12 {
		t.Fatalf("after replace Eval = %v, want 14", v)
	}
	// Replace root.
	got = replaceNodeAt(tree, 0, NewConst(3))
	if got.Op != OpConst || got.Const != 3 {
		t.Fatal("root replace failed")
	}
}

// Property: Eval is total (finite) for every tree built from protected ops
// over finite inputs.
func TestEvalTotalProperty(t *testing.T) {
	gen := &generator{rng: newTestRNG(5), numVars: 2, funcs: FunctionSet, constMin: -10, constMax: 10}
	f := func(x0, x1 float64) bool {
		if math.IsNaN(x0) || math.IsInf(x0, 0) || math.IsNaN(x1) || math.IsInf(x1, 0) {
			return true
		}
		// Bound magnitudes: astronomically large inputs legitimately
		// overflow float64 under repeated multiplication.
		if math.Abs(x0) > 1e6 || math.Abs(x1) > 1e6 {
			return true
		}
		tree := gen.grow(4)
		v := tree.Eval([]float64{x0, x1})
		return !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces trees that evaluate identically.
func TestClonePreservesSemanticsProperty(t *testing.T) {
	gen := &generator{rng: newTestRNG(6), numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 100; i++ {
		tree := gen.grow(5)
		c := tree.Clone()
		for j := 0; j < 10; j++ {
			vars := []float64{float64(j) - 5, float64(j) * 2}
			a, b := tree.Eval(vars), c.Eval(vars)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("clone diverges: %v vs %v", a, b)
			}
		}
	}
}
