package gp

import "math"

// Protected scalar kernels. These are the single source of truth for the
// function set's float semantics: Node.Eval (the reference interpreter),
// Compile's constant folder and the bytecode VM's batch loops all call the
// same functions, so the three paths are bit-identical by construction —
// the determinism argument DESIGN.md spells out.

func pAdd(a, b float64) float64 { return a + b }
func pSub(a, b float64) float64 { return a - b }
func pMul(a, b float64) float64 { return a * b }

// pDiv is protected division: near-zero denominators yield 1 (the gplearn
// convention), so finite inputs never produce a division blow-up.
func pDiv(a, b float64) float64 {
	if math.Abs(b) < protectedEps {
		return 1
	}
	return a / b
}

func pSqrt(a float64) float64 { return math.Sqrt(math.Abs(a)) }

// pLog is protected log: |a| below the guard yields 0.
func pLog(a float64) float64 {
	v := math.Abs(a)
	if v < protectedEps {
		return 0
	}
	return math.Log(v)
}

func pAbs(a float64) float64    { return math.Abs(a) }
func pNeg(a float64) float64    { return -a }
func pMax(a, b float64) float64 { return math.Max(a, b) }
func pMin(a, b float64) float64 { return math.Min(a, b) }

// pInv is protected inverse: near-zero inputs yield 1.
func pInv(a float64) float64 {
	if math.Abs(a) < protectedEps {
		return 1
	}
	return 1 / a
}

func pSin(a float64) float64 { return math.Sin(a) }
func pCos(a float64) float64 { return math.Cos(a) }

// pTan is protected tangent: NaN becomes 0 and the poles are clamped to a
// large finite magnitude.
func pTan(a float64) float64 {
	v := math.Tan(a)
	if math.IsNaN(v) {
		return 0
	}
	return math.Max(-1e6, math.Min(1e6, v))
}

// apply1 dispatches a unary op to its kernel.
func apply1(op Op, a float64) float64 {
	switch op {
	case OpSqrt:
		return pSqrt(a)
	case OpLog:
		return pLog(a)
	case OpAbs:
		return pAbs(a)
	case OpNeg:
		return pNeg(a)
	case OpInv:
		return pInv(a)
	case OpSin:
		return pSin(a)
	case OpCos:
		return pCos(a)
	case OpTan:
		return pTan(a)
	default:
		return 0
	}
}

// apply2 dispatches a binary op to its kernel.
func apply2(op Op, a, b float64) float64 {
	switch op {
	case OpAdd:
		return pAdd(a, b)
	case OpSub:
		return pSub(a, b)
	case OpMul:
		return pMul(a, b)
	case OpDiv:
		return pDiv(a, b)
	case OpMax:
		return pMax(a, b)
	case OpMin:
		return pMin(a, b)
	default:
		return 0
	}
}
