package gp

// This file implements the per-generation node arena the evolution engine
// breeds into. Variation (clone, crossover grafts, mutation regrowth)
// dominated the engine's allocation profile: every child tree used to be
// built from individually heap-allocated Nodes that died one generation
// later. Trees bred for generation g+1 only ever reference (a) fresh nodes
// and (b) copies of subtrees from generation g's population, so their
// lifetime is exactly one generation — the textbook arena case. The engine
// keeps two arenas and ping-pongs: children are bump-allocated into the
// idle arena, the previous generation's arena is reset wholesale, and the
// only tree that outlives a generation — the run's champion — is
// heap-cloned out when it improves.
//
// Allocation discipline: every alloc site fully assigns the node
// (*n = Node{...}), so reset() can recycle blocks without zeroing them.

// arenaBlockNodes is the node count per arena block. Blocks are recycled
// across generations, so the size only bounds slack, not churn.
const arenaBlockNodes = 4096

// nodeArena bump-allocates Nodes from recycled fixed-size blocks. Not
// safe for concurrent use; each breeding loop owns its arenas.
type nodeArena struct {
	blocks [][]Node
	bi     int // index of the block currently allocated from
	used   int // nodes handed out from blocks[bi]
}

func newNodeArena() *nodeArena { return &nodeArena{} }

// alloc returns a node whose previous contents are undefined; callers
// must assign every field.
func (a *nodeArena) alloc() *Node {
	for {
		if a.bi < len(a.blocks) {
			if blk := a.blocks[a.bi]; a.used < len(blk) {
				n := &blk[a.used]
				a.used++
				return n
			}
			a.bi++
			a.used = 0
			continue
		}
		a.blocks = append(a.blocks, make([]Node, arenaBlockNodes))
	}
}

// reset recycles every block. Trees previously allocated from the arena
// become invalid; the engine resets only after the generation that
// referenced them has been scored and replaced.
func (a *nodeArena) reset() {
	a.bi, a.used = 0, 0
}

// cloneInto deep-copies tree n into arena a. A nil arena falls back to
// heap cloning, which keeps the variation operators usable standalone
// (tests construct them without an engine around).
func cloneInto(a *nodeArena, n *Node) *Node {
	if n == nil {
		return nil
	}
	if a == nil {
		return n.Clone()
	}
	nn := a.alloc()
	if n.L == nil && n.R == nil { // leaf fast-path: skip two nil-recursions
		*nn = Node{Op: n.Op, Const: n.Const, Var: n.Var}
		return nn
	}
	*nn = Node{Op: n.Op, Const: n.Const, Var: n.Var, L: cloneInto(a, n.L), R: cloneInto(a, n.R)}
	return nn
}
