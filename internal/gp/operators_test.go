package gp

import (
	"math"
	"testing"
)

// validTree checks structural invariants: arity matches children, no nil
// children where required.
func validTree(n *Node) bool {
	if n == nil {
		return false
	}
	switch n.Op.Arity() {
	case 0:
		return n.L == nil && n.R == nil
	case 1:
		return n.L != nil && n.R == nil && validTree(n.L)
	case 2:
		return n.L != nil && n.R != nil && validTree(n.L) && validTree(n.R)
	}
	return false
}

func TestCrossoverProducesValidTrees(t *testing.T) {
	rng := newTestRNG(41)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 200; i++ {
		a, b := gen.grow(5), gen.grow(5)
		child := crossover(a.Clone(), b, a.Size(), b.Size(), rng, nil)
		if !validTree(child) {
			t.Fatalf("crossover produced invalid tree: %v", child)
		}
	}
}

func TestSubtreeMutateProducesValidTrees(t *testing.T) {
	rng := newTestRNG(43)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 200; i++ {
		tree := gen.grow(5)
		child := subtreeMutate(tree, tree.Size(), gen, rng)
		if !validTree(child) {
			t.Fatal("subtree mutation produced invalid tree")
		}
	}
}

func TestPointMutatePreservesShape(t *testing.T) {
	rng := newTestRNG(47)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 200; i++ {
		tree := gen.grow(5)
		size, depth := tree.Size(), tree.Depth()
		pointMutate(tree, size, gen, rng)
		if !validTree(tree) {
			t.Fatal("point mutation produced invalid tree")
		}
		if tree.Size() != size || tree.Depth() != depth {
			t.Fatalf("point mutation changed shape: %d/%d -> %d/%d",
				size, depth, tree.Size(), tree.Depth())
		}
	}
}

func TestHoistMutateShrinksOrKeeps(t *testing.T) {
	rng := newTestRNG(53)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 200; i++ {
		tree := gen.full(5)
		hoisted := hoistMutate(tree, tree.Size(), rng, nil)
		if !validTree(hoisted) {
			t.Fatal("hoist produced invalid tree")
		}
		if hoisted.Size() > tree.Size() {
			t.Fatal("hoist grew the tree")
		}
	}
}

func TestHoistToDepthTerminates(t *testing.T) {
	rng := newTestRNG(59)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for i := 0; i < 50; i++ {
		tree := gen.full(9)
		bounded := hoistToDepth(tree, 4, rng, nil)
		if bounded.Depth() > 4 {
			t.Fatalf("depth %d after hoistToDepth(4)", bounded.Depth())
		}
	}
}

func TestGrowRespectsDepthBudget(t *testing.T) {
	rng := newTestRNG(61)
	gen := &generator{rng: rng, numVars: 2, funcs: FunctionSet, constMin: -5, constMax: 5}
	for d := 1; d <= 7; d++ {
		for i := 0; i < 50; i++ {
			if got := gen.grow(d).Depth(); got > d {
				t.Fatalf("grow(%d) produced depth %d", d, got)
			}
			if got := gen.full(d).Depth(); got != d && d >= 1 {
				// full may terminate early only at depth 1 (terminal).
				if d != 1 || got != 1 {
					t.Fatalf("full(%d) produced depth %d", d, got)
				}
			}
		}
	}
}

// Recovery of the nonlinear codecs the fleet embeds, at a realistic budget.
func TestRunRecoversQuadratic(t *testing.T) {
	// Y = 0.0017*X² (the "Boost pressure" codec).
	d := &Dataset{}
	for x := 40.0; x <= 250; x += 5 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 0.0017*x*x)
	}
	cfg := smallConfig(71)
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewBinary(OpMul, NewConst(0.0017), NewBinary(OpMul, NewVar(0), NewVar(0)))
	if !EquivalentRel(res.Best, truth, d.X, 0.5, 0.03) {
		t.Fatalf("recovered %q (fitness %v)", res.Best, res.Fitness)
	}
}

func TestRunRecoversSqrt(t *testing.T) {
	// Y = 0.75*sqrt(X) (the "Air mass flow" codec).
	d := &Dataset{}
	for x := 0.0; x <= 60000; x += 1500 {
		d.X = append(d.X, []float64{x})
		d.Y = append(d.Y, 0.75*math.Sqrt(x))
	}
	cfg := smallConfig(73)
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewBinary(OpMul, NewConst(0.75), NewUnary(OpSqrt, NewVar(0)))
	if !EquivalentRel(res.Best, truth, d.X, 1.0, 0.03) {
		t.Fatalf("recovered %q (fitness %v)", res.Best, res.Fitness)
	}
}

func TestLinearScaleFitsExactly(t *testing.T) {
	g := []float64{1, 2, 3, 4, 5}
	y := []float64{12, 14, 16, 18, 20} // y = 2g + 10
	a, b := linearScale(g, y, make([]float64, len(g)), make([]int, len(g)))
	if math.Abs(a-2) > 1e-9 || math.Abs(b-10) > 1e-9 {
		t.Fatalf("fit = %v, %v", a, b)
	}
}

func TestLinearScaleConstantG(t *testing.T) {
	g := []float64{3, 3, 3, 3}
	y := []float64{5, 7, 9, 11}
	a, b := linearScale(g, y, make([]float64, len(g)), make([]int, len(g)))
	if a != 0 || math.Abs(b-8) > 1e-9 {
		t.Fatalf("degenerate fit = %v, %v (want 0, mean)", a, b)
	}
}

func TestLinearScaleTrimsOutliers(t *testing.T) {
	var g, y []float64
	for i := 0; i < 50; i++ {
		g = append(g, float64(i))
		y = append(y, 2*float64(i))
	}
	y[10] = 5000 // decimal-loss style outlier
	y[30] = 4000
	a, b := linearScale(g, y, make([]float64, len(g)), make([]int, len(g)))
	if math.Abs(a-2) > 0.05 || math.Abs(b) > 2 {
		t.Fatalf("trimmed fit = %v, %v (outliers dragged it)", a, b)
	}
}

func TestTrimmedMeanBehaviour(t *testing.T) {
	if v := trimmedMean(nil); !math.IsInf(v, 1) {
		t.Fatalf("empty = %v", v)
	}
	small := []float64{1, 2, 3}
	if v := trimmedMean(append([]float64(nil), small...)); math.Abs(v-2) > 1e-9 {
		t.Fatalf("small = %v", v)
	}
	// 10 values, two huge: trimming drops the worst 20%.
	big := []float64{1, 1, 1, 1, 1, 1, 1, 1, 100, 100}
	if v := trimmedMean(append([]float64(nil), big...)); v != 1 {
		t.Fatalf("trimmed = %v, want 1", v)
	}
}
