package gp

import (
	"math/rand"
	"testing"
)

// benchTree is a representative mid-size evolved formula shape: mixed
// arithmetic with a protected division and a foldable constant subtree.
func benchTree() *Node {
	// ((X0 * (2 * 1.5)) + sqrt(X1)) / (X1 - 3) + X0
	return NewBinary(OpAdd,
		NewBinary(OpDiv,
			NewBinary(OpAdd,
				NewBinary(OpMul, NewVar(0), NewBinary(OpMul, NewConst(2), NewConst(1.5))),
				NewUnary(OpSqrt, NewVar(1))),
			NewBinary(OpSub, NewVar(1), NewConst(3))),
		NewVar(0))
}

func benchDataset(rows int) *Dataset {
	rng := rand.New(rand.NewSource(1))
	d := &Dataset{}
	for i := 0; i < rows; i++ {
		d.X = append(d.X, []float64{rng.Float64() * 255, rng.Float64() * 255})
		d.Y = append(d.Y, rng.Float64()*100)
	}
	return d
}

// BenchmarkGPTreeEval measures the reference interpreter: one recursive
// Node.Eval per (tree, sample) pair — the pre-engine fitness inner loop.
func BenchmarkGPTreeEval(b *testing.B) {
	tree := benchTree()
	d := benchDataset(256)
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range d.X {
			sink += tree.Eval(row)
		}
	}
	_ = sink
}

// BenchmarkGPCompiledEval measures the compiled engine on the same
// workload: whole-dataset batch execution on a reused machine. Steady
// state must report ~0 allocs/op.
func BenchmarkGPCompiledEval(b *testing.B) {
	tree := benchTree()
	d := benchDataset(256)
	p := Compile(tree)
	batch := NewBatch(d)
	m := NewMachine()
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := p.Eval(batch, m)
		sink += preds[0]
	}
	_ = sink
}

// BenchmarkGPCompiledEvalWithCompile includes the per-tree Compile cost —
// the true per-candidate cost paid on a fitness-cache miss. It compiles
// into sync.Pool-backed scratch the way the engine and the one-shot score
// helpers do (the evaluator owns a Compiler; scoreCompiled leases one),
// so steady state must report 0 allocs/op. The package-level Compile is
// deliberately not measured here: its Program is immutable and
// concurrency-safe, which costs owned copies by contract.
func BenchmarkGPCompiledEvalWithCompile(b *testing.B) {
	tree := benchTree()
	d := benchDataset(256)
	batch := NewBatch(d)
	m := NewMachine()
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := compilerPool.Get().(*Compiler)
		p := c.Compile(tree)
		preds := p.Eval(batch, m)
		sink += preds[0]
		compilerPool.Put(c)
	}
	_ = sink
}

// BenchmarkGPFitnessCache measures a full small evolution and reports
// the cross-generation cache hit rate alongside the timing.
func BenchmarkGPFitnessCache(b *testing.B) {
	d := benchDataset(128)
	cfg := DefaultConfig()
	cfg.PopulationSize = 300
	cfg.Generations = 10
	cfg.StopFitness = -1
	b.ReportAllocs()
	hits, total := 0, 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := Run(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		hits += res.CacheHits
		total += res.Evaluations
	}
	if total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "hit-rate")
	}
}
