package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// makeDataset samples f over a grid of (x0, x1) values.
func makeDataset(f func(x0, x1 float64) float64, x0s, x1s []float64) *Dataset {
	d := &Dataset{}
	for _, a := range x0s {
		for _, b := range x1s {
			d.X = append(d.X, []float64{a, b})
			d.Y = append(d.Y, f(a, b))
		}
	}
	return d
}

func seq(from, to, step float64) []float64 {
	var out []float64
	for v := from; v <= to; v += step {
		out = append(out, v)
	}
	return out
}

// smallConfig keeps unit tests fast; the benchmarks use DefaultConfig.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.PopulationSize = 300
	cfg.Generations = 25
	cfg.Seed = seed
	return cfg
}

func TestDatasetValidate(t *testing.T) {
	var empty Dataset
	if err := empty.Validate(); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty: %v", err)
	}
	bad := Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1}}
	if err := bad.Validate(); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("length: %v", err)
	}
	ragged := Dataset{X: [][]float64{{1}, {2, 3}}, Y: []float64{1, 2}}
	if err := ragged.Validate(); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("ragged: %v", err)
	}
	ok := Dataset{X: [][]float64{{1, 2}}, Y: []float64{3}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	if ok.NumVars() != 2 {
		t.Fatalf("NumVars = %d", ok.NumVars())
	}
}

func TestMAEAndMSE(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []float64{2, 4, 6}}
	perfect := NewBinary(OpMul, NewVar(0), NewConst(2))
	if got := MAE(perfect, d); got != 0 {
		t.Fatalf("MAE of exact program = %v", got)
	}
	if got := MSE(perfect, d); got != 0 {
		t.Fatalf("MSE of exact program = %v", got)
	}
	off := NewBinary(OpAdd, NewBinary(OpMul, NewVar(0), NewConst(2)), NewConst(1))
	if got := MAE(off, d); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE of +1 program = %v", got)
	}
	if got := MSE(off, d); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MSE of +1 program = %v", got)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(&Dataset{}, DefaultConfig()); err == nil {
		t.Fatal("empty dataset accepted")
	}
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	cfg := DefaultConfig()
	cfg.PopulationSize = 1
	if _, err := Run(d, cfg); err == nil {
		t.Fatal("population 1 accepted")
	}
	cfg = DefaultConfig()
	cfg.Generations = 0
	if _, err := Run(d, cfg); err == nil {
		t.Fatal("0 generations accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	d := makeDataset(func(a, b float64) float64 { return a + b }, seq(0, 5, 1), seq(0, 5, 1))
	cfg := smallConfig(7)
	cfg.Generations = 5
	r1, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best.String() != r2.Best.String() || r1.Fitness != r2.Fitness {
		t.Fatalf("same seed produced different results: %q vs %q", r1.Best, r2.Best)
	}
}

func TestRunRecoversLinearOneVar(t *testing.T) {
	// Y = 0.5*X — the Car L coolant-temperature shape from Table 7.
	d := makeDataset(func(a, _ float64) float64 { return 0.5 * a }, seq(100, 200, 2), []float64{0})
	res, err := Run(d, smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness > 0.5 {
		t.Fatalf("fitness = %v (best %q), want near-exact", res.Fitness, res.Best)
	}
}

func TestRunRecoversProductFormula(t *testing.T) {
	// Y = X0*X1/5 — the paper's KWP engine-speed formula, the shape linear
	// regression cannot express (§4.4).
	d := makeDataset(func(a, b float64) float64 { return a * b / 5 },
		seq(180, 250, 10), seq(5, 50, 3))
	res, err := Run(d, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	// Accept near-equivalence over the sampled domain.
	truth := NewBinary(OpDiv, NewBinary(OpMul, NewVar(0), NewVar(1)), NewConst(5))
	if !EquivalentRel(res.Best, truth, d.X, 1.0, 0.02) {
		t.Fatalf("recovered %q with fitness %v, not equivalent to X0*X1/5", res.Best, res.Fitness)
	}
}

func TestRunEarlyStopOnExactFit(t *testing.T) {
	// Constant target: evolution should stop well before the budget.
	d := &Dataset{X: [][]float64{{1}, {2}, {3}, {4}}, Y: []float64{7, 7, 7, 7}}
	cfg := smallConfig(5)
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations >= cfg.Generations {
		t.Fatalf("no early stop: ran %d generations, fitness %v", res.Generations, res.Fitness)
	}
	if res.Fitness > cfg.StopFitness {
		t.Fatalf("fitness = %v above stop threshold", res.Fitness)
	}
}

func TestRunCollapsesConstantVariable(t *testing.T) {
	// Paper §4.3 "Cause of inconsistency": when X0 never varies, the
	// inferred formula uses only X1. Y = X0*X1 with X0 pinned at 100 is
	// indistinguishable from Y = 100*X1 on the data.
	d := makeDataset(func(a, b float64) float64 { return 0.01 * a * b },
		[]float64{100}, seq(0, 120, 2))
	res, err := Run(d, smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness > 1.0 {
		t.Fatalf("fitness = %v (best %q)", res.Fitness, res.Best)
	}
	// The recovered program must match Y = X1 on the observed domain.
	truth := NewVar(1)
	if !EquivalentRel(res.Best, truth, d.X, 0.75, 0.02) {
		t.Fatalf("recovered %q, want something equivalent to X1", res.Best)
	}
}

func TestRunRobustToOutliers(t *testing.T) {
	// The paper's Table 10 rationale: GP tolerates OCR-corrupted samples
	// better than least squares. Plant 5% wild outliers and require the
	// recovered program to still match the clean truth.
	d := makeDataset(func(a, _ float64) float64 { return 2 * a }, seq(1, 100, 1), []float64{0})
	rng := newTestRNG(17)
	for i := 0; i < len(d.Y); i += 20 {
		d.Y[i] = rng.Float64() * 1000 // decimal-point-loss style corruption
	}
	res, err := Run(d, smallConfig(19))
	if err != nil {
		t.Fatal(err)
	}
	truth := NewBinary(OpMul, NewConst(2), NewVar(0))
	clean := makeDataset(func(a, _ float64) float64 { return 2 * a }, seq(1, 100, 7), []float64{0})
	if !EquivalentRel(res.Best, truth, clean.X, 2.0, 0.08) {
		t.Fatalf("outliers broke recovery: %q (fitness %v)", res.Best, res.Fitness)
	}
}

func TestRunEvaluationAccounting(t *testing.T) {
	d := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	cfg := smallConfig(23)
	cfg.Generations = 3
	cfg.StopFitness = -1 // never stop early
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Initial population + (gens × (pop-1 offspring)) evaluations; the
	// elite is carried without re-scoring.
	want := cfg.PopulationSize + cfg.Generations*(cfg.PopulationSize-1)
	if res.Evaluations != want {
		t.Fatalf("Evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestRunDepthBounded(t *testing.T) {
	d := makeDataset(func(a, b float64) float64 { return a*b + math.Sqrt(a) }, seq(1, 20, 1), seq(1, 5, 1))
	cfg := smallConfig(29)
	cfg.MaxDepth = 5
	cfg.Generations = 10
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The materialised linear scaling (a*g+b) may wrap the evolved tree in
	// up to two extra levels.
	if res.Best.Depth() > cfg.MaxDepth+2 {
		t.Fatalf("best depth %d exceeds bound %d (+2 scaling wrap)", res.Best.Depth(), cfg.MaxDepth)
	}
}

func TestTournamentPicksFitter(t *testing.T) {
	fits := []float64{10, 1, 5}
	rng := newTestRNG(1)
	wins := 0
	for i := 0; i < 200; i++ {
		if fits[tournament(fits, 3, rng)] == 1 {
			wins++
		}
	}
	// With k=3 over 3 individuals the best is picked unless never sampled;
	// expect a strong majority.
	if wins < 120 {
		t.Fatalf("fittest won only %d/200 tournaments", wins)
	}
}

func TestRampedHalfAndHalfShapes(t *testing.T) {
	gen := &generator{rng: newTestRNG(2), numVars: 2, funcs: FunctionSet, constMin: -1, constMax: 1}
	pop := gen.rampedHalfAndHalf(100, 6)
	if len(pop) != 100 {
		t.Fatalf("population size = %d", len(pop))
	}
	maxDepth := 0
	for _, tr := range pop {
		if d := tr.Depth(); d > maxDepth {
			maxDepth = d
		}
		if tr.Depth() > 6 {
			t.Fatalf("initial tree depth %d exceeds ramp bound", tr.Depth())
		}
	}
	if maxDepth < 3 {
		t.Fatalf("ramp produced only shallow trees (max %d)", maxDepth)
	}
}

// statsObserver records every generation callback.
type statsObserver struct {
	stats []GenerationStats
}

func (o *statsObserver) Generation(gs GenerationStats) { o.stats = append(o.stats, gs) }

// The Observer contract: one callback per scored generation (the initial
// population counts as generation 0), cumulative monotone counters, a
// non-increasing best fitness, and a final snapshot that matches the
// Result counters exactly.
func TestRunObserverStats(t *testing.T) {
	d := makeDataset(func(x0, _ float64) float64 { return 3*x0 + 7 }, seq(0, 255, 8), []float64{0})
	cfg := smallConfig(9)
	cfg.Generations = 5
	cfg.StopFitness = -1 // never stop early: exactly Generations+1 callbacks
	obs := &statsObserver{}
	cfg.Observer = obs
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.stats) != cfg.Generations+1 {
		t.Fatalf("%d callbacks, want %d", len(obs.stats), cfg.Generations+1)
	}
	for i, gs := range obs.stats {
		if gs.Generation != i {
			t.Fatalf("callback %d reports generation %d", i, gs.Generation)
		}
		if gs.Evaluations != gs.CacheHits+gs.CacheMisses {
			t.Fatalf("gen %d: %d evals != %d hits + %d misses",
				i, gs.Evaluations, gs.CacheHits, gs.CacheMisses)
		}
		if i == 0 {
			continue
		}
		prev := obs.stats[i-1]
		if gs.Evaluations < prev.Evaluations || gs.CacheHits < prev.CacheHits ||
			gs.CacheMisses < prev.CacheMisses {
			t.Fatalf("gen %d: counters went backwards (%+v after %+v)", i, gs, prev)
		}
		if gs.BestFitness > prev.BestFitness {
			t.Fatalf("gen %d: best fitness worsened: %v after %v",
				i, gs.BestFitness, prev.BestFitness)
		}
	}
	final := obs.stats[len(obs.stats)-1]
	if final.Evaluations != res.Evaluations || final.CacheHits != res.CacheHits ||
		final.CacheMisses != res.CacheMisses {
		t.Fatalf("final snapshot %+v does not match result counters %d/%d/%d",
			final, res.Evaluations, res.CacheHits, res.CacheMisses)
	}
}

// An observer must not perturb evolution: with and without one, the same
// seed yields the same formula and counters.
func TestRunObserverDoesNotAffectEvolution(t *testing.T) {
	d := makeDataset(func(x0, x1 float64) float64 { return x0/4 + x1 }, seq(0, 255, 16), seq(0, 64, 8))
	cfg := smallConfig(31)
	plain, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = &statsObserver{}
	observed, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.String() != observed.Best.String() ||
		plain.Fitness != observed.Fitness ||
		plain.Evaluations != observed.Evaluations ||
		plain.CacheHits != observed.CacheHits {
		t.Fatalf("observer changed the run: %v/%v vs %v/%v",
			plain.Best, plain.Evaluations, observed.Best, observed.Evaluations)
	}
}
