package gp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
)

// Dataset is the (X, Y) sample set the paper's Step 1 constructs: each row
// pairs the variables extracted from one response message with the value
// the diagnostic tool displayed.
type Dataset struct {
	// X holds one row per sample; all rows must share a width (the number
	// of variables).
	X [][]float64
	// Y holds the target value per sample.
	Y []float64
}

// NumVars reports the variable count (0 for an empty dataset).
func (d *Dataset) NumVars() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmptyDataset
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d X rows, %d Y values", ErrShapeMismatch, len(d.X), len(d.Y))
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("%w: row %d has width %d, want %d", ErrShapeMismatch, i, len(row), w)
		}
	}
	return nil
}

// Package errors.
var (
	ErrEmptyDataset  = errors.New("gp: empty dataset")
	ErrShapeMismatch = errors.New("gp: dataset shape mismatch")
)

// Config tunes the evolution. The zero value is unusable; call
// DefaultConfig for the paper's settings.
type Config struct {
	// PopulationSize is the number of programs per generation (paper: 1000).
	PopulationSize int
	// Generations is the evolution budget (paper: 30).
	Generations int
	// StopFitness halts evolution early once the best program's raw MAE
	// falls below it — the paper's second stopping criterion.
	StopFitness float64
	// TournamentSize controls selection pressure.
	TournamentSize int
	// MaxDepth bounds trees after crossover/mutation (bloat control).
	MaxDepth int
	// ParsimonyCoeff penalises fitness by size*coeff, discouraging bloat
	// without distorting the MAE scale much.
	ParsimonyCoeff float64
	// CrossoverProb, SubtreeMutProb, PointMutProb, HoistMutProb select the
	// variation operator; remaining probability reproduces unchanged.
	CrossoverProb  float64
	SubtreeMutProb float64
	PointMutProb   float64
	HoistMutProb   float64
	// ConstMin/ConstMax bound ephemeral random constants.
	ConstMin, ConstMax float64
	// Functions overrides the function set (nil = the full 14-entry set).
	Functions []Op
	// Parallelism caps the worker goroutines used for population fitness
	// evaluation. Variation (selection, crossover, mutation) always draws
	// from the RNG sequentially and evaluation is a pure function of the
	// tree, so results are byte-identical at every setting. 0 and 1 both
	// evaluate serially; negative values mean runtime.GOMAXPROCS(0).
	Parallelism int
	// DisableLinearScaling turns off the Keijzer-style linear scaling of
	// candidate programs. By default every candidate g is evaluated as
	// a*g(x)+b with (a, b) fitted by trimmed least squares, so evolution
	// searches for the *shape* of the formula while scale and offset are
	// solved analytically — which is also what makes the engine robust to
	// the magnitude issues the paper's Table 2 pre-scaling addresses.
	DisableLinearScaling bool
	// Observer, when non-nil, receives one GenerationStats per scored
	// generation (including the initial population as generation 0). It is
	// called from the engine's sequential loop between parallel scoring
	// phases, never concurrently, and it cannot influence evolution: the
	// call sites touch no RNG and results are byte-identical with or
	// without an observer, at any Parallelism.
	Observer Observer
	// Seed drives the deterministic RNG.
	Seed int64
}

// Observer receives per-generation progress from a running evolution —
// the telemetry layer's window into the engine.
type Observer interface {
	Generation(GenerationStats)
}

// GenerationStats is one generation's snapshot. The counters are
// cumulative for the run, so the final snapshot matches the Result
// counters exactly.
type GenerationStats struct {
	// Generation is the scored generation index; 0 is the initial random
	// population.
	Generation int
	// BestFitness is the best raw (trimmed, post-scaling) MAE so far.
	BestFitness float64
	// Evaluations/CacheHits/CacheMisses are the run's cumulative scoring
	// counters after this generation (Evaluations = CacheHits + CacheMisses).
	Evaluations, CacheHits, CacheMisses int
}

// DefaultConfig returns the paper's published settings: 1000 programs, 30
// generations, MAE fitness with a small stop threshold.
func DefaultConfig() Config {
	return Config{
		PopulationSize: 1000,
		Generations:    30,
		StopFitness:    0.01,
		TournamentSize: 20,
		MaxDepth:       8,
		ParsimonyCoeff: 0.001,
		CrossoverProb:  0.65,
		SubtreeMutProb: 0.15,
		PointMutProb:   0.1,
		HoistMutProb:   0.05,
		ConstMin:       -10,
		ConstMax:       10,
		Seed:           1,
	}
}

// Result reports the outcome of a Run.
type Result struct {
	// Best is the fittest program found (simplified).
	Best *Node
	// Fitness is Best's raw mean absolute error on the dataset.
	Fitness float64
	// Generations is how many generations actually ran (early stop shows
	// here).
	Generations int
	// Evaluations counts fitness evaluations requested; it always equals
	// CacheHits + CacheMisses.
	Evaluations int
	// CacheHits counts evaluations served by the cross-generation fitness
	// cache: structurally identical trees (which crossover and elitism
	// re-create constantly) share one compiled program and one score.
	CacheHits int
	// CacheMisses counts evaluations that actually ran the compiled VM.
	CacheMisses int
}

type individual struct {
	tree *Node
	// raw is the MAE (after linear scaling); fit adds the parsimony
	// penalty.
	raw float64
	fit float64
	// a, b are the fitted linear-scaling coefficients (a=1, b=0 when
	// scaling is disabled).
	a, b float64
}

// linearScale fits y ≈ a*g + b by least squares, then refits after
// trimming the 20% largest residuals so OCR-style outliers in y do not
// drag the fit (the robustness §4.4 attributes to GP). Degenerate g
// (constant) yields a=0, b=mean(y).
func linearScale(g, y []float64) (a, b float64) {
	fit := func(idx []int) (float64, float64, bool) {
		n := float64(len(idx))
		var sg, sy, sgg, sgy float64
		for _, i := range idx {
			sg += g[i]
			sy += y[i]
			sgg += g[i] * g[i]
			sgy += g[i] * y[i]
		}
		det := n*sgg - sg*sg
		if math.Abs(det) < 1e-12 {
			return 0, sy / n, false
		}
		return (n*sgy - sg*sy) / det, (sy*sgg - sg*sgy) / det, true
	}
	all := make([]int, len(g))
	for i := range all {
		all[i] = i
	}
	a, b, ok := fit(all)
	if !ok || len(g) < 10 {
		return a, b
	}
	// Trim the worst 20% of residuals and refit.
	type res struct {
		i int
		r float64
	}
	rs := make([]res, len(g))
	for i := range g {
		rs[i] = res{i, math.Abs(a*g[i] + b - y[i])}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r < rs[j].r })
	keep := make([]int, 0, len(g)*4/5)
	for _, r := range rs[:len(rs)*4/5] {
		keep = append(keep, r.i)
	}
	if a2, b2, ok := fit(keep); ok {
		return a2, b2
	}
	return a, b
}

// trimmedMean averages residuals after dropping the worst 20% — the same
// trimming linearScale applies, so structure selection cannot profit from
// spiking through OCR-corrupted samples. Small samples (< 10) are averaged
// untrimmed.
func trimmedMean(resids []float64) float64 {
	if len(resids) == 0 {
		return math.Inf(1)
	}
	n := len(resids)
	if n >= 10 {
		sort.Float64s(resids)
		n = n * 4 / 5
	}
	sum := 0.0
	for _, r := range resids[:n] {
		sum += r
	}
	return sum / float64(n)
}

// evaluator scores program trees on one dataset through the compiled
// engine. Each tree is compiled to postfix bytecode; the fitness cache —
// keyed on the program's canonical structural encoding — serves repeat
// structures across generations, and only cache misses run the VM.
// Scoring a program is a pure function of (program, dataset), so misses
// can be split into chunks and scored by concurrent workers without
// changing any result: compilation, cache lookups and cache insertion
// all happen sequentially, and workers touch disjoint output indices
// with worker-owned scratch machines.
type evaluator struct {
	d     *Dataset
	batch *Batch
	cfg   Config
	// workers caps the miss-scoring goroutines; machines holds one VM
	// scratch per worker, reused across generations.
	workers  int
	machines []*Machine
	// cache maps Program.Key to scored fitness across generations. The
	// cached raw/a/b are pure functions of the program, so entries never
	// invalidate; fit is recomputed per tree because the parsimony
	// penalty depends on the (unfolded) tree size.
	cache map[string]cacheEntry
	// evals/hits/misses count scoring requests (mutated only between
	// parallel phases; evals == hits+misses).
	evals, hits, misses int
}

// cacheEntry is one cached score: the raw (post-scaling, trimmed) MAE
// and the fitted linear-scaling coefficients.
type cacheEntry struct {
	raw, a, b float64
}

func newEvaluator(d *Dataset, cfg Config, workers int) *evaluator {
	if workers < 1 {
		workers = 1
	}
	e := &evaluator{
		d: d, batch: NewBatch(d), cfg: cfg,
		workers:  workers,
		machines: make([]*Machine, workers),
		cache:    make(map[string]cacheEntry),
	}
	for i := range e.machines {
		e.machines[i] = NewMachine()
	}
	return e
}

// fromCache rebuilds an individual for tree t from a cached score. Only
// the parsimony term depends on the tree itself.
func (e *evaluator) fromCache(t *Node, ent cacheEntry) individual {
	ind := individual{tree: t, raw: ent.raw, a: ent.a, b: ent.b}
	ind.fit = ent.raw + e.cfg.ParsimonyCoeff*float64(t.Size())
	return ind
}

// scoreOne evaluates one compiled program on the worker's machine.
func (e *evaluator) scoreOne(p *Program, t *Node, m *Machine) individual {
	d, cfg := e.d, e.cfg
	ind := individual{tree: t, a: 1, b: 0}
	preds := p.Eval(e.batch, m)
	for _, v := range preds {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			ind.raw, ind.fit = math.Inf(1), math.Inf(1)
			return ind
		}
	}
	if !cfg.DisableLinearScaling {
		ind.a, ind.b = linearScale(preds, d.Y)
		if math.IsNaN(ind.a) || math.IsInf(ind.a, 0) || math.IsNaN(ind.b) || math.IsInf(ind.b, 0) {
			ind.a, ind.b = 1, 0
		}
	}
	resids := m.resids(len(preds))
	for i, v := range preds {
		resids[i] = math.Abs(ind.a*v + ind.b - d.Y[i])
	}
	ind.raw = trimmedMean(resids)
	ind.fit = ind.raw + cfg.ParsimonyCoeff*float64(t.Size())
	if math.IsNaN(ind.raw) {
		ind.raw, ind.fit = math.Inf(1), math.Inf(1)
	}
	return ind
}

// scoreAll evaluates a batch of trees into out[off:]. Trees whose
// structure was scored before — in this batch or any earlier generation —
// are served from the cache; the rest are compiled once and chunked
// across the workers. out is written by index, so the resulting
// population order is independent of scheduling.
func (e *evaluator) scoreAll(trees []*Node, out []individual, off int) {
	e.evals += len(trees)
	// Sequential phase: compile, consult the cache, and dedupe repeat
	// structures within the batch (dups wait for the first occurrence).
	type missRef struct {
		i int // index into trees
		p *Program
	}
	type dupRef struct {
		i   int
		key string
	}
	var misses []missRef
	var dups []dupRef
	pending := make(map[string]bool)
	for i, t := range trees {
		p := Compile(t)
		if ent, ok := e.cache[p.key]; ok {
			e.hits++
			out[off+i] = e.fromCache(t, ent)
			continue
		}
		if pending[p.key] {
			e.hits++
			dups = append(dups, dupRef{i: i, key: p.key})
			continue
		}
		pending[p.key] = true
		misses = append(misses, missRef{i: i, p: p})
	}
	e.misses += len(misses)

	// Parallel phase: score the misses on worker-owned machines.
	if e.workers <= 1 || len(misses) < 2*e.workers {
		m := e.machines[0]
		for _, ms := range misses {
			out[off+ms.i] = e.scoreOne(ms.p, trees[ms.i], m)
		}
	} else {
		chunk := (len(misses) + e.workers - 1) / e.workers
		var wg sync.WaitGroup
		for w := 0; w*chunk < len(misses); w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(misses) {
				hi = len(misses)
			}
			wg.Add(1)
			go func(lo, hi int, m *Machine) {
				defer wg.Done()
				for _, ms := range misses[lo:hi] {
					out[off+ms.i] = e.scoreOne(ms.p, trees[ms.i], m)
				}
			}(lo, hi, e.machines[w])
		}
		wg.Wait()
	}

	// Sequential phase: publish the new scores and resolve the dups.
	for _, ms := range misses {
		ind := out[off+ms.i]
		e.cache[ms.p.key] = cacheEntry{raw: ind.raw, a: ind.a, b: ind.b}
	}
	for _, d := range dups {
		out[off+d.i] = e.fromCache(trees[d.i], e.cache[d.key])
	}
}

// Run evolves a formula for the dataset.
func Run(d *Dataset, cfg Config) (Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext evolves a formula for the dataset, checking ctx between
// generations: cancellation aborts the evolution and returns ctx.Err().
func RunContext(ctx context.Context, d *Dataset, cfg Config) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.PopulationSize < 2 {
		return Result{}, fmt.Errorf("gp: population size %d too small", cfg.PopulationSize)
	}
	if cfg.Generations < 1 {
		return Result{}, fmt.Errorf("gp: generations %d too small", cfg.Generations)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	funcs := cfg.Functions
	if len(funcs) == 0 {
		funcs = FunctionSet
	}
	gen := &generator{
		rng: rng, numVars: d.NumVars(), funcs: funcs,
		constMin: cfg.ConstMin, constMax: cfg.ConstMax,
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ev := newEvaluator(d, cfg, workers)

	pop := make([]individual, cfg.PopulationSize)
	ev.scoreAll(gen.rampedHalfAndHalf(cfg.PopulationSize, max(cfg.MaxDepth/2, 3)), pop, 0)
	best := bestOf(pop)
	observe(cfg.Observer, 0, best, ev)

	gens := 0
	children := make([]*Node, cfg.PopulationSize-1)
	for g := 0; g < cfg.Generations; g++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		gens = g + 1
		if best.raw <= cfg.StopFitness {
			break
		}
		// Breed the whole next generation first — every RNG draw happens
		// here, in one goroutine, in a fixed order — then score the
		// children in parallel chunks.
		for i := range children {
			parent := tournament(pop, cfg.TournamentSize, rng)
			child := vary(parent.tree, pop, cfg, gen, rng)
			if child.Depth() > cfg.MaxDepth {
				child = hoistToDepth(child, cfg.MaxDepth, rng)
			}
			children[i] = child
		}
		next := make([]individual, cfg.PopulationSize)
		// Elitism: carry the champion over unchanged.
		next[0] = individual{tree: best.tree.Clone(), raw: best.raw, fit: best.fit}
		ev.scoreAll(children, next, 1)
		pop = next
		if b := bestOf(pop); b.fit < best.fit {
			best = b
		}
		observe(cfg.Observer, gens, best, ev)
	}
	evals := ev.evals

	// Materialise the fitted linear scaling into the returned program:
	// best = a*g + b, with near-identity coefficients snapped so they
	// simplify away.
	final := best.tree
	a, b := best.a, best.b
	if math.Abs(a-1) < 1e-9 {
		a = 1
	}
	if math.Abs(b) < 1e-9 {
		b = 0
	}
	if a != 1 {
		final = NewBinary(OpMul, NewConst(a), final)
	}
	if b != 0 {
		final = NewBinary(OpAdd, final, NewConst(b))
	}
	simplified := Simplify(final)
	// Simplification must never change semantics; keep the simplified form
	// only if its error did not regress (guards protected-op edge cases).
	// Only the threshold matters here, so the bounded scorer may abort
	// the accumulation early without changing the decision.
	if _, exceeded := RobustMAEBounded(simplified, d, best.raw+1e-9); !exceeded {
		final = simplified
	}
	return Result{
		Best: final, Fitness: best.raw, Generations: gens, Evaluations: evals,
		CacheHits: ev.hits, CacheMisses: ev.misses,
	}, nil
}

// observe reports one scored generation to a configured observer.
func observe(o Observer, gen int, best individual, ev *evaluator) {
	if o == nil {
		return
	}
	o.Generation(GenerationStats{
		Generation: gen, BestFitness: best.raw,
		Evaluations: ev.evals, CacheHits: ev.hits, CacheMisses: ev.misses,
	})
}

func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fit < best.fit {
			best = ind
		}
	}
	return best
}

func tournament(pop []individual, k int, rng *rand.Rand) individual {
	if k < 1 {
		k = 1
	}
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.fit < best.fit {
			best = c
		}
	}
	return best
}

// vary applies one variation operator to a cloned parent.
func vary(parent *Node, pop []individual, cfg Config, gen *generator, rng *rand.Rand) *Node {
	child := parent.Clone()
	p := rng.Float64()
	switch {
	case p < cfg.CrossoverProb:
		donor := tournament(pop, cfg.TournamentSize, rng).tree
		return crossover(child, donor, rng)
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb:
		return subtreeMutate(child, gen, rng)
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb+cfg.PointMutProb:
		pointMutate(child, gen, rng)
		return child
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb+cfg.PointMutProb+cfg.HoistMutProb:
		return hoistMutate(child, rng)
	default:
		return child
	}
}

// crossover replaces a random subtree of child with a random subtree of
// donor.
func crossover(child, donor *Node, rng *rand.Rand) *Node {
	ci := rng.Intn(child.Size())
	di := rng.Intn(donor.Size())
	graft := nodeAt(donor, di).Clone()
	return replaceNodeAt(child, ci, graft)
}

// subtreeMutate replaces a random subtree with a freshly grown one.
func subtreeMutate(child *Node, gen *generator, rng *rand.Rand) *Node {
	i := rng.Intn(child.Size())
	return replaceNodeAt(child, i, gen.grow(3))
}

// pointMutate perturbs one node in place: constants jitter, variables
// reselect, functions swap within the same arity.
func pointMutate(child *Node, gen *generator, rng *rand.Rand) {
	i := rng.Intn(child.Size())
	n := nodeAt(child, i)
	switch n.Op {
	case OpConst:
		n.Const += rng.NormFloat64() * math.Max(math.Abs(n.Const)*0.1, 0.1)
	case OpVar:
		if gen.numVars > 0 {
			n.Var = rng.Intn(gen.numVars)
		}
	default:
		want := n.Op.Arity()
		for tries := 0; tries < 8; tries++ {
			op := gen.randFunction()
			if op.Arity() == want {
				n.Op = op
				break
			}
		}
	}
}

// hoistMutate lifts a random subtree to the root — gplearn's anti-bloat
// operator.
func hoistMutate(child *Node, rng *rand.Rand) *Node {
	i := rng.Intn(child.Size())
	return nodeAt(child, i).Clone()
}

// hoistToDepth repeatedly hoists until the tree fits the depth budget.
func hoistToDepth(t *Node, maxDepth int, rng *rand.Rand) *Node {
	for t.Depth() > maxDepth {
		t = hoistMutate(t, rng)
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
