package gp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
)

// Dataset is the (X, Y) sample set the paper's Step 1 constructs: each row
// pairs the variables extracted from one response message with the value
// the diagnostic tool displayed.
type Dataset struct {
	// X holds one row per sample; all rows must share a width (the number
	// of variables).
	X [][]float64
	// Y holds the target value per sample.
	Y []float64
}

// NumVars reports the variable count (0 for an empty dataset).
func (d *Dataset) NumVars() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks shape invariants.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return ErrEmptyDataset
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d X rows, %d Y values", ErrShapeMismatch, len(d.X), len(d.Y))
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("%w: row %d has width %d, want %d", ErrShapeMismatch, i, len(row), w)
		}
	}
	return nil
}

// Package errors.
var (
	ErrEmptyDataset  = errors.New("gp: empty dataset")
	ErrShapeMismatch = errors.New("gp: dataset shape mismatch")
)

// Config tunes the evolution. The zero value is unusable; call
// DefaultConfig for the paper's settings.
type Config struct {
	// PopulationSize is the number of programs per generation (paper: 1000).
	PopulationSize int
	// Generations is the evolution budget (paper: 30).
	Generations int
	// StopFitness halts evolution early once the best program's raw MAE
	// falls below it — the paper's second stopping criterion.
	StopFitness float64
	// TournamentSize controls selection pressure.
	TournamentSize int
	// MaxDepth bounds trees after crossover/mutation (bloat control).
	MaxDepth int
	// ParsimonyCoeff penalises fitness by size*coeff, discouraging bloat
	// without distorting the MAE scale much.
	ParsimonyCoeff float64
	// CrossoverProb, SubtreeMutProb, PointMutProb, HoistMutProb select the
	// variation operator; remaining probability reproduces unchanged.
	CrossoverProb  float64
	SubtreeMutProb float64
	PointMutProb   float64
	HoistMutProb   float64
	// ConstMin/ConstMax bound ephemeral random constants.
	ConstMin, ConstMax float64
	// Functions overrides the function set (nil = the full 14-entry set).
	Functions []Op
	// Parallelism caps the worker goroutines used for population fitness
	// evaluation. Variation (selection, crossover, mutation) always draws
	// from the RNG sequentially and evaluation is a pure function of the
	// tree, so results are byte-identical at every setting. 0 and 1 both
	// evaluate serially; negative values mean runtime.GOMAXPROCS(0).
	Parallelism int
	// Islands splits the population into this many independently breeding
	// sub-populations (near-equal split, each seeded from Seed and the
	// island index). Islands breed and score in parallel and exchange
	// migrants on a ring — island i's champion replaces island (i+1)%k's
	// worst individual — every MigrationInterval generations. Migration is
	// applied sequentially in island order at a generation barrier, so
	// results are byte-identical at any Parallelism. 0 and 1 both run the
	// classic single panmictic population.
	Islands int
	// MigrationInterval is the number of generations between migrations
	// when Islands > 1 (0 means the default of 5).
	MigrationInterval int
	// DisableLinearScaling turns off the Keijzer-style linear scaling of
	// candidate programs. By default every candidate g is evaluated as
	// a*g(x)+b with (a, b) fitted by trimmed least squares, so evolution
	// searches for the *shape* of the formula while scale and offset are
	// solved analytically — which is also what makes the engine robust to
	// the magnitude issues the paper's Table 2 pre-scaling addresses.
	DisableLinearScaling bool
	// Observer, when non-nil, receives one GenerationStats per scored
	// generation (including the initial population as generation 0). It is
	// called from the engine's sequential loop between parallel scoring
	// phases, never concurrently, and it cannot influence evolution: the
	// call sites touch no RNG and results are byte-identical with or
	// without an observer, at any Parallelism.
	Observer Observer
	// Seed drives the deterministic RNG.
	Seed int64
}

// Observer receives per-generation progress from a running evolution —
// the telemetry layer's window into the engine.
type Observer interface {
	Generation(GenerationStats)
}

// GenerationStats is one generation's snapshot. The counters are
// cumulative for the run, so the final snapshot matches the Result
// counters exactly.
type GenerationStats struct {
	// Generation is the scored generation index; 0 is the initial random
	// population.
	Generation int
	// BestFitness is the best raw (trimmed, post-scaling) MAE so far.
	BestFitness float64
	// Evaluations/CacheHits/CacheMisses are the run's cumulative scoring
	// counters after this generation (Evaluations = CacheHits + CacheMisses).
	Evaluations, CacheHits, CacheMisses int
}

// DefaultConfig returns the paper's published settings: 1000 programs, 30
// generations, MAE fitness with a small stop threshold.
func DefaultConfig() Config {
	return Config{
		PopulationSize: 1000,
		Generations:    30,
		StopFitness:    0.01,
		TournamentSize: 20,
		MaxDepth:       8,
		ParsimonyCoeff: 0.001,
		CrossoverProb:  0.65,
		SubtreeMutProb: 0.15,
		PointMutProb:   0.1,
		HoistMutProb:   0.05,
		ConstMin:       -10,
		ConstMax:       10,
		Seed:           1,
	}
}

// Result reports the outcome of a Run.
type Result struct {
	// Best is the fittest program found (simplified).
	Best *Node
	// Fitness is Best's raw mean absolute error on the dataset.
	Fitness float64
	// Generations is how many generations actually ran (early stop shows
	// here).
	Generations int
	// Evaluations counts fitness evaluations requested; it always equals
	// CacheHits + CacheMisses.
	Evaluations int
	// CacheHits counts evaluations served by the cross-generation fitness
	// cache: structurally identical trees (which crossover and elitism
	// re-create constantly) share one compiled program and one score.
	CacheHits int
	// CacheMisses counts evaluations that actually ran the compiled VM.
	CacheMisses int
}

type individual struct {
	tree *Node
	// size caches tree.Size(): the compiler counts nodes during emit, and
	// the variation operators draw subtree indices from the stored size,
	// so the engine never walks a tree just to count it.
	size int
	// raw is the MAE (after linear scaling); fit adds the parsimony
	// penalty.
	raw float64
	fit float64
	// a, b are the fitted linear-scaling coefficients (a=1, b=0 when
	// scaling is disabled).
	a, b float64
}

// siftDownMin restores the min-heap property of h below index i.
//
//dplint:hotpath gp-score
func siftDownMin(h []float64, i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && h[r] < h[c] {
			c = r
		}
		if h[c] >= h[i] {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// siftDownPair is siftDownMin over parallel value/index arrays.
//
//dplint:hotpath gp-score
func siftDownPair(h []float64, idx []int, i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && h[r] < h[c] {
			c = r
		}
		if h[c] >= h[i] {
			return
		}
		h[i], h[c] = h[c], h[i]
		idx[i], idx[c] = idx[c], idx[i]
		i = c
	}
}

// strideFor returns a step size coprime with n, used to visit indices
// 0, s, 2s, ... (mod n) -- a fixed pseudo-shuffle of the sample order.
// The trim helpers keep a min-heap of the largest residuals seen so far;
// visiting samples in index order degrades that into an eviction per
// element whenever residuals trend with the target, which is the common
// profile for poorly fitted candidates since datasets arrive sorted. The
// shuffled order restores the expected ~k*ln(n/k) evictions, and being a
// pure function of n it is fully deterministic.
func strideFor(n int) int {
	if n < 4 {
		return 1
	}
	s := n*2/3 | 1
	for s < n && gcd(s, n) > 1 {
		s += 2
	}
	if s >= n {
		return 1
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// linearScale fits y = a*g + b by least squares, then refits after
// trimming the 20% largest residuals so OCR-style outliers in y do not
// drag the fit (the robustness the paper's 4.4 attributes to GP).
// Degenerate g (constant) yields a=0, b=mean(y).
//
// hv and hi must each have room for len(g)/5 entries (the hot path hands
// in machine-owned scratch so candidate scoring stays allocation-free);
// they hold the value/index min-heap of the dropped residuals. The
// trimmed refit subtracts exactly the dropped samples from the
// full-sample sums, so the whole fit is two passes: one accumulation,
// one streaming selection. The dropped set is fully deterministic: heap
// eviction over the strideFor pseudo-shuffle is a pure function of the
// residual values.
//
//dplint:hotpath gp-score
func linearScale(g, y []float64, hv []float64, hi []int) (a, b float64) {
	n := len(g)
	var sg, sy, sgg, sgy float64
	for i := range g {
		sg += g[i]
		sy += y[i]
		sgg += g[i] * g[i]
		sgy += g[i] * y[i]
	}
	nf := float64(n)
	det := nf*sgg - sg*sg
	if math.Abs(det) < 1e-12 {
		return 0, sy / nf
	}
	a = (nf*sgy - sg*sy) / det
	b = (sy*sgg - sg*sgy) / det
	if n < 10 {
		return a, b
	}
	keep := n * 4 / 5
	drop := n - keep
	hv, hi = hv[:drop], hi[:drop]
	s := strideFor(n)
	idx, j := 0, 0
	for t := 0; t < n; t++ {
		r := math.Abs(a*g[idx] + b - y[idx])
		if j < drop {
			hv[j], hi[j] = r, idx
			j++
			if j == drop {
				for k := drop/2 - 1; k >= 0; k-- {
					siftDownPair(hv, hi, k)
				}
			}
		} else if r > hv[0] {
			hv[0], hi[0] = r, idx
			siftDownPair(hv, hi, 0)
		}
		idx += s
		if idx >= n {
			idx -= n
		}
	}
	for k := 0; k < drop; k++ {
		i := hi[k]
		sg -= g[i]
		sy -= y[i]
		sgg -= g[i] * g[i]
		sgy -= g[i] * y[i]
	}
	kf := float64(keep)
	det = kf*sgg - sg*sg
	if math.Abs(det) < 1e-12 {
		return a, b
	}
	return (kf*sgy - sg*sy) / det, (sy*sgg - sg*sgy) / det
}

// trimmedMean averages residuals after dropping the worst 20% -- the same
// trimming linearScale applies, so structure selection cannot profit from
// spiking through OCR-corrupted samples. Small samples (< 10) are averaged
// untrimmed. The prefix resids[:n/5] is clobbered in place: it becomes a
// min-heap of the largest residuals seen so far, every element the heap
// evicts is kept, and whatever remains in the heap at the end is the
// dropped 20%. The kept multiset (and hence the mean) is exactly the keep
// smallest residuals, fully deterministically, in a single pass.
//
//dplint:hotpath gp-score
func trimmedMean(resids []float64) float64 {
	if len(resids) == 0 {
		return math.Inf(1)
	}
	n := len(resids)
	if n < 10 {
		sum := 0.0
		for _, r := range resids {
			sum += r
		}
		return sum / float64(n)
	}
	keep := n * 4 / 5
	h := resids[:n-keep]
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownMin(h, i)
	}
	sum := 0.0
	for _, x := range resids[len(h):] {
		if x > h[0] {
			sum += h[0]
			h[0] = x
			siftDownMin(h, 0)
		} else {
			sum += x
		}
	}
	return sum / float64(keep)
}

// trimmedMeanScaled computes trimmedMean over |a*preds[i]+b - y[i]|
// without materialising the residual array: residuals are computed on
// the fly and stream through the dropped-20% heap in strideFor order
// (see linearScale -- index order would evict on almost every element
// for trend-shaped residuals). The kept multiset is identical to
// trimmedMean's; only the floating-point summation order differs, and it
// is a pure function of the input, so scoring stays deterministic at any
// parallelism. h must have room for len(preds)/5 values.
//
//dplint:hotpath gp-score
func trimmedMeanScaled(preds, y []float64, a, b float64, h []float64) float64 {
	n := len(preds)
	if n == 0 {
		return math.Inf(1)
	}
	if n < 10 {
		sum := 0.0
		for i, v := range preds {
			sum += math.Abs(a*v + b - y[i])
		}
		return sum / float64(n)
	}
	keep := n * 4 / 5
	drop := n - keep
	h = h[:drop]
	s := strideFor(n)
	sum := 0.0
	idx, j := 0, 0
	for t := 0; t < n; t++ {
		x := math.Abs(a*preds[idx] + b - y[idx])
		if j < drop {
			h[j] = x
			j++
			if j == drop {
				for k := drop/2 - 1; k >= 0; k-- {
					siftDownMin(h, k)
				}
			}
		} else if x > h[0] {
			sum += h[0]
			h[0] = x
			siftDownMin(h, 0)
		} else {
			sum += x
		}
		idx += s
		if idx >= n {
			idx -= n
		}
	}
	return sum / float64(keep)
}

// evaluator scores program trees on one dataset through the compiled
// engine. Each tree is compiled to postfix bytecode; the fitness cache —
// keyed on the program's canonical structural encoding — serves repeat
// structures across generations, and only cache misses run the VM.
// Scoring a program is a pure function of (program, dataset), so misses
// can be split into chunks and scored by concurrent workers without
// changing any result: compilation, cache lookups and cache insertion
// all happen sequentially, and workers touch disjoint output indices
// with worker-owned scratch machines.
type evaluator struct {
	d     *Dataset
	batch *Batch
	cfg   Config
	// workers caps the miss-scoring goroutines; machines holds one VM
	// scratch per worker, reused across generations.
	workers  int
	machines []*Machine
	// comp is the sequential phase's compile scratch: trees compile into
	// reusable buffers and only cache misses materialise a persistent
	// Program, so cache hits cost zero allocations.
	comp *Compiler
	// cache maps Program.Key to scored fitness across generations. The
	// cached raw/a/b are pure functions of the program, so entries never
	// invalidate; fit is recomputed per tree because the parsimony
	// penalty depends on the (unfolded) tree size.
	cache map[string]cacheEntry
	// pending/missq/dupq are scoreAll's batch scratch, reused across
	// generations: pending maps a key to its index in missq, and dupq
	// records in-batch structural duplicates to resolve after scoring.
	pending map[string]int
	missq   []missRef
	dupq    []dupRef
	// progs/codeSlab are the per-batch program arena: compiled miss
	// programs and their bytecode live only until the batch's scores are
	// published, so both buffers are truncated and reused every call —
	// steady-state compilation of a miss allocates nothing but the
	// interned key.
	progs    []Program
	codeSlab []instr
	// evals/hits/misses count scoring requests (mutated only between
	// parallel phases; evals == hits+misses).
	evals, hits, misses int
}

// missRef is one cache miss awaiting scoring: trees[i], of size nodes,
// compiled to p.
type missRef struct {
	i, size int
	p       *Program
}

// dupRef marks trees[i] (of size nodes) as structurally identical to
// missq[m]'s program. Sizes are per tree, not per program: two trees can
// fold to the same bytecode yet differ in node count, and the parsimony
// penalty is charged on the unfolded tree.
type dupRef struct {
	i, m, size int
}

// cacheEntry is one cached score: the raw (post-scaling, trimmed) MAE
// and the fitted linear-scaling coefficients.
type cacheEntry struct {
	raw, a, b float64
}

func newEvaluator(d *Dataset, cfg Config, workers int) *evaluator {
	if workers < 1 {
		workers = 1
	}
	e := &evaluator{
		d: d, batch: NewBatch(d), cfg: cfg,
		workers:  workers,
		machines: make([]*Machine, workers),
		comp:     NewCompiler(),
		cache:    make(map[string]cacheEntry),
		pending:  make(map[string]int),
	}
	for i := range e.machines {
		e.machines[i] = NewMachine()
	}
	return e
}

// fromCache rebuilds an individual for tree t (of the given node count)
// from a cached score. Only the parsimony term depends on the tree itself.
func (e *evaluator) fromCache(t *Node, ent cacheEntry, size int) individual {
	ind := individual{tree: t, size: size, raw: ent.raw, a: ent.a, b: ent.b}
	ind.fit = ent.raw + e.cfg.ParsimonyCoeff*float64(size)
	return ind
}

// scoreOne evaluates one compiled program on the worker's machine.
func (e *evaluator) scoreOne(p *Program, t *Node, m *Machine, size int) individual {
	d, cfg := e.d, e.cfg
	ind := individual{tree: t, size: size, a: 1, b: 0}
	preds := p.Eval(e.batch, m)
	for _, v := range preds {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			ind.raw, ind.fit = math.Inf(1), math.Inf(1)
			return ind
		}
	}
	if !cfg.DisableLinearScaling {
		ind.a, ind.b = linearScale(preds, d.Y, m.selbuf(len(preds)), m.selidx(len(preds)))
		if math.IsNaN(ind.a) || math.IsInf(ind.a, 0) || math.IsNaN(ind.b) || math.IsInf(ind.b, 0) {
			ind.a, ind.b = 1, 0
		}
	}
	ind.raw = trimmedMeanScaled(preds, d.Y, ind.a, ind.b, m.resids(len(preds)))
	ind.fit = ind.raw + cfg.ParsimonyCoeff*float64(size)
	if math.IsNaN(ind.raw) {
		ind.raw, ind.fit = math.Inf(1), math.Inf(1)
	}
	return ind
}

// scoreAll evaluates a batch of trees into out[off:]. Trees whose
// structure was scored before — in this batch or any earlier generation —
// are served from the cache; the rest are compiled once and chunked
// across the workers. out is written by index, so the resulting
// population order is independent of scheduling.
func (e *evaluator) scoreAll(trees []*Node, out []individual, off int) {
	e.evals += len(trees)
	// Sequential phase: compile into the evaluator's scratch, consult the
	// cache, and dedupe repeat structures within the batch (dups wait for
	// the first occurrence). The map lookups convert the scratch key
	// without allocating; only a genuine miss interns the key and
	// materialises a persistent Program.
	e.missq = e.missq[:0]
	e.dupq = e.dupq[:0]
	e.progs = e.progs[:0]
	e.codeSlab = e.codeSlab[:0]
	clear(e.pending)
	for i, t := range trees {
		depth, hash := e.comp.compile(t)
		size := e.comp.nodes
		if ent, ok := e.cache[string(e.comp.key)]; ok {
			e.hits++
			out[off+i] = e.fromCache(t, ent, size)
			continue
		}
		if mi, ok := e.pending[string(e.comp.key)]; ok {
			e.hits++
			e.dupq = append(e.dupq, dupRef{i: i, m: mi, size: size})
			continue
		}
		key := string(e.comp.key)
		// The program lives in the batch arena; growth mid-batch leaves
		// earlier programs pointing at the old (immutable) backing array.
		co := len(e.codeSlab)
		e.codeSlab = append(e.codeSlab, e.comp.code...)
		e.progs = append(e.progs, Program{
			code:  e.codeSlab[co:len(e.codeSlab):len(e.codeSlab)],
			depth: depth, key: key, hash: hash,
		})
		e.pending[key] = len(e.missq)
		e.missq = append(e.missq, missRef{i: i, size: size, p: &e.progs[len(e.progs)-1]})
	}
	e.misses += len(e.missq)
	misses := e.missq

	// Parallel phase: score the misses on worker-owned machines.
	if e.workers <= 1 || len(misses) < 2*e.workers {
		m := e.machines[0]
		for _, ms := range misses {
			out[off+ms.i] = e.scoreOne(ms.p, trees[ms.i], m, ms.size)
		}
	} else {
		chunk := (len(misses) + e.workers - 1) / e.workers
		var wg sync.WaitGroup
		for w := 0; w*chunk < len(misses); w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(misses) {
				hi = len(misses)
			}
			wg.Add(1)
			go func(lo, hi int, m *Machine) {
				defer wg.Done()
				for _, ms := range misses[lo:hi] {
					out[off+ms.i] = e.scoreOne(ms.p, trees[ms.i], m, ms.size)
				}
			}(lo, hi, e.machines[w])
		}
		wg.Wait()
	}

	// Sequential phase: publish the new scores and resolve the dups.
	for _, ms := range misses {
		ind := out[off+ms.i]
		e.cache[ms.p.key] = cacheEntry{raw: ind.raw, a: ind.a, b: ind.b}
	}
	for _, d := range e.dupq {
		out[off+d.i] = e.fromCache(trees[d.i], e.cache[misses[d.m].p.key], d.size)
	}
}

// Run evolves a formula for the dataset.
func Run(d *Dataset, cfg Config) (Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext evolves a formula for the dataset, checking ctx between
// generations: cancellation aborts the evolution and returns ctx.Err().
func RunContext(ctx context.Context, d *Dataset, cfg Config) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.PopulationSize < 2 {
		return Result{}, fmt.Errorf("gp: population size %d too small", cfg.PopulationSize)
	}
	if cfg.Generations < 1 {
		return Result{}, fmt.Errorf("gp: generations %d too small", cfg.Generations)
	}
	k := cfg.Islands
	if k < 1 {
		k = 1
	}
	if k > 1 && cfg.PopulationSize < 2*k {
		return Result{}, fmt.Errorf("gp: population size %d too small for %d islands", cfg.PopulationSize, k)
	}
	interval := cfg.MigrationInterval
	if interval < 1 {
		interval = 5
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	funcs := cfg.Functions
	if len(funcs) == 0 {
		funcs = FunctionSet
	}
	workers := cfg.Parallelism
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Near-equal population split: the first rem islands take one extra.
	islands := make([]*island, k)
	base, rem := cfg.PopulationSize/k, cfg.PopulationSize%k
	for i := range islands {
		size := base
		if i < rem {
			size++
		}
		seed := cfg.Seed
		if k > 1 {
			seed = islandSeed(cfg.Seed, i)
		}
		islands[i] = newIsland(d, cfg, funcs, size, seed, workers)
	}
	stepAll(islands, (*island).init)
	best := globalBest(islands)
	observe(cfg.Observer, 0, best, islands)

	gens := 0
	for g := 0; g < cfg.Generations; g++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		gens = g + 1
		if best.raw <= cfg.StopFitness {
			break
		}
		stepAll(islands, (*island).step)
		if k > 1 && gens%interval == 0 {
			migrate(islands)
		}
		best = globalBest(islands)
		observe(cfg.Observer, gens, best, islands)
	}
	var evals, hits, misses int
	for _, isl := range islands {
		evals += isl.ev.evals
		hits += isl.ev.hits
		misses += isl.ev.misses
	}

	// Materialise the fitted linear scaling into the returned program:
	// best = a*g + b, with near-identity coefficients snapped so they
	// simplify away.
	final := best.tree
	a, b := best.a, best.b
	if math.Abs(a-1) < 1e-9 {
		a = 1
	}
	if math.Abs(b) < 1e-9 {
		b = 0
	}
	if a != 1 {
		final = NewBinary(OpMul, NewConst(a), final)
	}
	if b != 0 {
		final = NewBinary(OpAdd, final, NewConst(b))
	}
	simplified := Simplify(final)
	// Simplification must never change semantics; keep the simplified form
	// only if its error did not regress (guards protected-op edge cases).
	// Only the threshold matters here, so the bounded scorer may abort
	// the accumulation early without changing the decision.
	if _, exceeded := RobustMAEBounded(simplified, d, best.raw+1e-9); !exceeded {
		final = simplified
	}
	return Result{
		Best: final, Fitness: best.raw, Generations: gens, Evaluations: evals,
		CacheHits: hits, CacheMisses: misses,
	}, nil
}

// island is one independently breeding sub-population with its own RNG,
// generator, evaluator (and fitness cache), ping-ponging arenas and
// population buffers. A single island is exactly the classic panmictic
// engine; the only cross-island interaction is migrate, which runs
// sequentially at a generation barrier.
type island struct {
	cfg      Config
	rng      *rand.Rand
	gen      *generator
	ev       *evaluator
	arenas   [2]*nodeArena
	cur      int
	pops     [2][]individual
	pop      []individual
	fits     []float64
	children []*Node
	// best is the island's champion; its tree is heap-cloned out of the
	// arenas whenever it improves, so it stays valid across resets (and
	// across islands during migration).
	best individual
}

// islandSeed derives island i's RNG seed: the configured seed XOR a
// 63-bit FNV-1a hash of the island index's decimal form. Distinct
// islands explore from decorrelated streams while the whole run stays a
// pure function of (Seed, Islands).
func islandSeed(seed int64, i int) int64 {
	var buf [20]byte
	s := strconv.AppendInt(buf[:0], int64(i), 10)
	h := uint64(14695981039346656037)
	for _, b := range s {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return seed ^ int64(h&0x7FFFFFFFFFFFFFFF)
}

func newIsland(d *Dataset, cfg Config, funcs []Op, popSize int, seed int64, workers int) *island {
	rng := rand.New(rand.NewSource(seed))
	return &island{
		cfg: cfg,
		rng: rng,
		gen: &generator{
			rng: rng, numVars: d.NumVars(), funcs: funcs,
			constMin: cfg.ConstMin, constMax: cfg.ConstMax,
		},
		ev: newEvaluator(d, cfg, workers),
		// Trees live one generation: children of generation g+1 reference
		// only fresh nodes and copies of generation-g subtrees, so breeding
		// bump-allocates into one of two ping-ponging arenas and the
		// previous generation's arena is recycled wholesale.
		arenas: [2]*nodeArena{newNodeArena(), newNodeArena()},
		// Populations ping-pong alongside the arenas: generation g+1 is
		// scored into the slice generation g-1 occupied, so the steady-state
		// loop allocates no per-generation slices either.
		pops: [2][]individual{
			make([]individual, popSize),
			make([]individual, popSize),
		},
		// fits mirrors pop's fitness column densely for the tournament loop.
		fits:     make([]float64, popSize),
		children: make([]*Node, popSize-1),
	}
}

// init scores the initial random population and seeds the champion.
func (isl *island) init() {
	isl.gen.arena = isl.arenas[isl.cur]
	pop := isl.pops[isl.cur]
	isl.ev.scoreAll(isl.gen.rampedHalfAndHalf(len(pop), max(isl.cfg.MaxDepth/2, 3)), pop, 0)
	isl.pop = pop
	for i := range pop {
		isl.fits[i] = pop[i].fit
	}
	isl.best = bestOf(pop)
	isl.best.tree = isl.best.tree.Clone()
}

// step breeds and scores one generation. All of the island's RNG draws
// happen here, in one goroutine, in a fixed order; only miss scoring
// fans out (and it is a pure function of the tree).
func (isl *island) step() {
	cfg := isl.cfg
	build := isl.arenas[1-isl.cur]
	build.reset()
	isl.gen.arena = build
	pop, fits, rng := isl.pop, isl.fits, isl.rng
	for i := range isl.children {
		parent := pop[tournament(fits, cfg.TournamentSize, rng)]
		child := vary(parent, pop, fits, cfg, isl.gen, rng)
		if child.Depth() > cfg.MaxDepth {
			child = hoistToDepth(child, cfg.MaxDepth, rng, build)
		}
		isl.children[i] = child
	}
	next := isl.pops[1-isl.cur]
	// Elitism: carry the champion over unchanged.
	next[0] = individual{tree: cloneInto(build, isl.best.tree), size: isl.best.size, raw: isl.best.raw, fit: isl.best.fit}
	isl.ev.scoreAll(isl.children, next, 1)
	isl.pop = next
	isl.cur = 1 - isl.cur
	for i := range next {
		fits[i] = next[i].fit
	}
	if b := bestOf(next); b.fit < isl.best.fit {
		isl.best = b
		isl.best.tree = isl.best.tree.Clone()
	}
}

// stepAll runs f on every island. A single island runs inline; multiple
// islands run concurrently and barrier here — islands share no state
// while stepping, so scheduling cannot affect any result.
func stepAll(islands []*island, f func(*island)) {
	if len(islands) == 1 {
		f(islands[0])
		return
	}
	var wg sync.WaitGroup
	for _, isl := range islands {
		wg.Add(1)
		go func(isl *island) {
			defer wg.Done()
			f(isl)
		}(isl)
	}
	wg.Wait()
}

// migrate exchanges champions on the ring: island i's champion (captured
// before any replacement) overwrites the worst individual of island
// (i+1)%k. All islands are quiescent at the call and replacements apply
// sequentially in island order with no RNG draws, so migration is a pure
// function of the islands' states — goroutine scheduling during the
// preceding step cannot influence it.
func migrate(islands []*island) {
	k := len(islands)
	migrants := make([]individual, k)
	for i, isl := range islands {
		migrants[i] = isl.best
	}
	for i, m := range migrants {
		dst := islands[(i+1)%k]
		// Worst slot: highest fitness, first such index on ties.
		w := 0
		for j, f := range dst.fits {
			if f > dst.fits[w] {
				w = j
			}
		}
		// The copy lives in dst's current arena: that arena survives until
		// the generation bred from it has been scored, which is exactly the
		// migrant's useful lifetime (the champion itself stays heap-cloned
		// on the source island).
		m.tree = cloneInto(dst.arenas[dst.cur], m.tree)
		dst.pop[w] = m
		dst.fits[w] = m.fit
	}
}

// globalBest returns the best champion across islands; ties keep the
// lowest island index.
func globalBest(islands []*island) individual {
	best := islands[0].best
	for _, isl := range islands[1:] {
		if isl.best.fit < best.fit {
			best = isl.best
		}
	}
	return best
}

// observe reports one scored generation to a configured observer, with
// counters summed across islands in island order.
func observe(o Observer, gen int, best individual, islands []*island) {
	if o == nil {
		return
	}
	var evals, hits, misses int
	for _, isl := range islands {
		evals += isl.ev.evals
		hits += isl.ev.hits
		misses += isl.ev.misses
	}
	o.Generation(GenerationStats{
		Generation: gen, BestFitness: best.raw,
		Evaluations: evals, CacheHits: hits, CacheMisses: misses,
	})
}

func bestOf(pop []individual) individual {
	best := pop[0]
	for _, ind := range pop[1:] {
		if ind.fit < best.fit {
			best = ind
		}
	}
	return best
}

// tournament draws k population indices and returns the fittest (ties
// keep the first drawn). It scans the dense fitness slice, not the
// population itself: k random accesses into an 8-byte-per-entry array
// stay in cache where the 64-byte individual structs would not.
func tournament(fits []float64, k int, rng *rand.Rand) int {
	if k < 1 {
		k = 1
	}
	best := rng.Intn(len(fits))
	for i := 1; i < k; i++ {
		if c := rng.Intn(len(fits)); fits[c] < fits[best] {
			best = c
		}
	}
	return best
}

// vary applies one variation operator to a copy of parent built in the
// generator's arena. Subtree indices are drawn against the parent's
// cached size — identical draws to walking the clone, without the walk.
func vary(parent individual, pop []individual, fits []float64, cfg Config, gen *generator, rng *rand.Rand) *Node {
	child := cloneInto(gen.arena, parent.tree)
	p := rng.Float64()
	switch {
	case p < cfg.CrossoverProb:
		donor := pop[tournament(fits, cfg.TournamentSize, rng)]
		return crossover(child, donor.tree, parent.size, donor.size, rng, gen.arena)
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb:
		return subtreeMutate(child, parent.size, gen, rng)
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb+cfg.PointMutProb:
		pointMutate(child, parent.size, gen, rng)
		return child
	case p < cfg.CrossoverProb+cfg.SubtreeMutProb+cfg.PointMutProb+cfg.HoistMutProb:
		return hoistMutate(child, parent.size, rng, gen.arena)
	default:
		return child
	}
}

// crossover replaces a random subtree of child with a random subtree of
// donor, copying the graft into ar (donor may belong to the previous
// generation's arena). childSize/donorSize must equal the trees' node
// counts.
func crossover(child, donor *Node, childSize, donorSize int, rng *rand.Rand, ar *nodeArena) *Node {
	ci := rng.Intn(childSize)
	di := rng.Intn(donorSize)
	graft := cloneInto(ar, nodeAt(donor, di))
	return replaceNodeAt(child, ci, graft)
}

// subtreeMutate replaces a random subtree with a freshly grown one.
func subtreeMutate(child *Node, size int, gen *generator, rng *rand.Rand) *Node {
	i := rng.Intn(size)
	return replaceNodeAt(child, i, gen.grow(3))
}

// pointMutate perturbs one node in place: constants jitter, variables
// reselect, functions swap within the same arity.
func pointMutate(child *Node, size int, gen *generator, rng *rand.Rand) {
	i := rng.Intn(size)
	n := nodeAt(child, i)
	switch n.Op {
	case OpConst:
		n.Const += rng.NormFloat64() * math.Max(math.Abs(n.Const)*0.1, 0.1)
	case OpVar:
		if gen.numVars > 0 {
			n.Var = rng.Intn(gen.numVars)
		}
	default:
		want := n.Op.Arity()
		for tries := 0; tries < 8; tries++ {
			op := gen.randFunction()
			if op.Arity() == want {
				n.Op = op
				break
			}
		}
	}
}

// hoistMutate lifts a random subtree to the root — gplearn's anti-bloat
// operator. size must equal child's node count.
func hoistMutate(child *Node, size int, rng *rand.Rand, ar *nodeArena) *Node {
	i := rng.Intn(size)
	return cloneInto(ar, nodeAt(child, i))
}

// hoistToDepth repeatedly hoists until the tree fits the depth budget.
func hoistToDepth(t *Node, maxDepth int, rng *rand.Rand, ar *nodeArena) *Node {
	for t.Depth() > maxDepth {
		t = hoistMutate(t, t.Size(), rng, ar)
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
