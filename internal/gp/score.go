package gp

import (
	"math"
	"sync"
)

// machinePool serves VM scratch to the one-shot scoring entry points
// (MAE, MSE, RobustMAE and friends). The evolution engine does not use
// it: each evaluator worker owns a machine outright.
var machinePool = sync.Pool{New: func() any { return NewMachine() }}

// MAE computes the mean absolute error of program n on the dataset.
func MAE(n *Node, d *Dataset) float64 {
	if len(d.Y) == 0 {
		return math.Inf(1)
	}
	return scoreCompiled(n, d, func(preds []float64) float64 {
		return meanDiff(preds, d.Y, false)
	})
}

// MSE computes the mean squared error of program n on the dataset.
func MSE(n *Node, d *Dataset) float64 {
	if len(d.Y) == 0 {
		return math.Inf(1)
	}
	return scoreCompiled(n, d, func(preds []float64) float64 {
		return meanDiff(preds, d.Y, true)
	})
}

// RobustMAE scores program t on d with the same trimmed-mean criterion the
// evolution uses (exported for the experiment harness and ablations).
func RobustMAE(t *Node, d *Dataset) float64 {
	mae, _ := RobustMAEBounded(t, d, math.Inf(1))
	return mae
}

// RobustMAEBounded is RobustMAE with early abort: accumulation stops as
// soon as the residuals seen so far prove the final trimmed mean exceeds
// bound. The guarantee is exact in both directions — exceeded is true if
// and only if RobustMAE(t, d) > bound — so threshold call sites (the
// post-run simplification guard, accept/reject sweeps) can use it without
// changing any decision. When it aborts early the returned value is a
// lower bound on the true trimmed MAE, not the exact score.
//
// Soundness of the abort: with n residuals of which drop are trimmed, at
// least k-drop of the first k residuals survive trimming, and their sum
// is at least sum(first k) - drop·max(first k). Residuals are
// non-negative, so once that quantity exceeds bound·keep the final
// trimmed mean provably exceeds bound.
func RobustMAEBounded(t *Node, d *Dataset, bound float64) (mae float64, exceeded bool) {
	c := compilerPool.Get().(*Compiler)
	defer compilerPool.Put(c)
	m := machinePool.Get().(*Machine)
	defer machinePool.Put(m)
	return c.Compile(t).robustMAEBounded(NewBatch(d), m, bound)
}

// scoreCompiled runs n's compiled form over the dataset and hands the
// predictions to the metric — the one scoring helper behind every public
// metric entry point.
func scoreCompiled(n *Node, d *Dataset, metric func(preds []float64) float64) float64 {
	c := compilerPool.Get().(*Compiler)
	defer compilerPool.Put(c)
	m := machinePool.Get().(*Machine)
	defer machinePool.Put(m)
	return metric(c.Compile(n).Eval(NewBatch(d), m))
}

// meanDiff is the shared MAE/MSE accumulation: mean |pred-y| or mean
// (pred-y)², infinite as soon as any difference is non-finite.
//
//dplint:hotpath gp-score
func meanDiff(preds, y []float64, squared bool) float64 {
	sum := 0.0
	for i, v := range preds {
		diff := v - y[i]
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return math.Inf(1)
		}
		if squared {
			sum += diff * diff
		} else {
			sum += math.Abs(diff)
		}
	}
	return sum / float64(len(y))
}

// robustMAEBounded is the allocation-free core of RobustMAE and
// RobustMAEBounded: machine-owned scratch, batch evaluation, streaming
// abort checks every 64 samples.
//
//dplint:hotpath gp-score
func (p *Program) robustMAEBounded(b *Batch, m *Machine, bound float64) (float64, bool) {
	preds := p.Eval(b, m)
	n := len(preds)
	keep, drop := n, 0
	if n >= 10 {
		keep = n * 4 / 5
		drop = n - keep
	}
	resids := m.resids(n)
	budget := bound * float64(keep)
	sum, maxr := 0.0, 0.0
	for i, v := range preds {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			inf := math.Inf(1)
			return inf, inf > bound
		}
		r := math.Abs(v - b.y[i])
		resids[i] = r
		sum += r
		if r > maxr {
			maxr = r
		}
		if i&63 == 63 {
			if lb := sum - float64(drop)*maxr; lb > budget {
				return lb / float64(keep), true
			}
		}
	}
	exact := trimmedMean(resids)
	return exact, exact > bound
}
