// Package can implements the CAN 2.0 data-link substrate: frames, an
// in-process broadcast bus with ID-based arbitration ordering, and the
// sniffer tap DP-Reverser attaches at the OBD port.
//
// The paper's data-collection module "monitors the OBD port to capture all
// CAN frames" (§3.1); here the bus is simulated, but the capture surface —
// timestamped 11/29-bit-ID frames with up to 8 data bytes — is identical,
// so everything above this layer (ISO 15765-2, VW TP 2.0, UDS, KWP 2000,
// and the reverse-engineering pipeline) operates exactly as it would on
// hardware captures.
package can

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dpreverser/internal/sim"
)

// MaxDataLen is the CAN 2.0 data-field limit in bytes.
const MaxDataLen = 8

// ErrDataTooLong reports an attempt to build a frame with more than 8 data
// bytes.
var ErrDataTooLong = errors.New("can: data field exceeds 8 bytes")

// ErrBadID reports a CAN identifier outside the standard (11-bit) or
// extended (29-bit) range.
var ErrBadID = errors.New("can: identifier out of range")

// Frame is one CAN 2.0 frame. Data holds Len valid bytes.
type Frame struct {
	// ID is the arbitration identifier. Lower IDs win arbitration.
	ID uint32
	// Extended marks a 29-bit identifier frame.
	Extended bool
	// Data is the payload; only the first Len bytes are meaningful.
	Data [MaxDataLen]byte
	// Len is the DLC (0-8).
	Len int
	// Timestamp is the virtual instant the frame appeared on the bus. It
	// is stamped by the Bus on transmit and preserved by sniffer captures.
	Timestamp time.Duration
}

// NewFrame builds a standard-ID frame, validating the identifier range and
// data length.
func NewFrame(id uint32, data []byte) (Frame, error) {
	return newFrame(id, data, false)
}

// NewExtendedFrame builds a 29-bit-ID frame.
func NewExtendedFrame(id uint32, data []byte) (Frame, error) {
	return newFrame(id, data, true)
}

func newFrame(id uint32, data []byte, extended bool) (Frame, error) {
	maxID := uint32(0x7FF)
	if extended {
		maxID = 0x1FFFFFFF
	}
	if id > maxID {
		return Frame{}, fmt.Errorf("%w: %#x (extended=%v)", ErrBadID, id, extended)
	}
	if len(data) > MaxDataLen {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrDataTooLong, len(data))
	}
	f := Frame{ID: id, Extended: extended, Len: len(data)}
	copy(f.Data[:], data)
	return f, nil
}

// MustFrame is NewFrame that panics on error; for tables of literal frames
// in tests and fixtures.
func MustFrame(id uint32, data []byte) Frame {
	f, err := NewFrame(id, data)
	if err != nil {
		panic(err)
	}
	return f
}

// Payload returns the valid data bytes as a slice (aliasing the frame's
// array; callers must copy before mutating).
func (f *Frame) Payload() []byte { return f.Data[:f.Len] }

// String renders the frame in candump-like notation: "123#0102AB".
func (f Frame) String() string {
	var b strings.Builder
	if f.Extended {
		fmt.Fprintf(&b, "%08X#", f.ID)
	} else {
		fmt.Fprintf(&b, "%03X#", f.ID)
	}
	for _, d := range f.Data[:f.Len] {
		fmt.Fprintf(&b, "%02X", d)
	}
	return b.String()
}

// Handler consumes frames delivered by the bus.
type Handler func(Frame)

// Bus is an in-process CAN bus. Frames sent within the same virtual instant
// are delivered in arbitration order (ascending ID, FIFO within an ID),
// which mirrors how a real bus serialises simultaneous transmissions.
type Bus struct {
	clock *sim.Clock

	mu       sync.Mutex
	handlers []busHandler
	nextSub  int
	pending  []Frame
	flushing bool
	stats    BusStats
}

type busHandler struct {
	id int
	fn Handler
}

// BusStats counts bus-level activity.
type BusStats struct {
	// FramesSent is the total number of frames transmitted.
	FramesSent int
	// Deliveries is the total number of frame deliveries (frames × taps).
	Deliveries int
}

// NewBus returns a bus reading timestamps from clock. A nil clock is
// replaced with a fresh zero clock so the bus is always usable.
func NewBus(clock *sim.Clock) *Bus {
	if clock == nil {
		clock = sim.NewClock(0)
	}
	return &Bus{clock: clock}
}

// Clock exposes the bus's virtual clock, which simulated nodes share.
func (b *Bus) Clock() *sim.Clock { return b.clock }

// Subscribe registers a handler for every frame on the bus and returns an
// unsubscribe function. Handlers run synchronously during Send, after
// arbitration ordering.
func (b *Bus) Subscribe(fn Handler) (unsubscribe func()) {
	if fn == nil {
		panic("can: Subscribe with nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextSub
	b.nextSub++
	b.handlers = append(b.handlers, busHandler{id: id, fn: fn})
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		for i, h := range b.handlers {
			if h.id == id {
				b.handlers = append(b.handlers[:i], b.handlers[i+1:]...)
				return
			}
		}
	}
}

// Send queues the frame for transmission and flushes the pending set in
// arbitration order. Re-entrant sends (a handler replying from within its
// callback, as ECUs do) are queued and flushed by the outermost Send, so
// request/response ordering on the captured trace matches a real bus.
func (b *Bus) Send(f Frame) {
	b.mu.Lock()
	f.Timestamp = b.clock.Now()
	b.pending = append(b.pending, f)
	if b.flushing {
		b.mu.Unlock()
		return
	}
	b.flushing = true
	b.mu.Unlock()
	b.flush()
}

func (b *Bus) flush() {
	for {
		b.mu.Lock()
		if len(b.pending) == 0 {
			b.flushing = false
			b.mu.Unlock()
			return
		}
		// Arbitration: lowest ID wins among frames queued at this instant.
		// sort.SliceStable keeps FIFO order within an ID.
		sort.SliceStable(b.pending, func(i, j int) bool {
			if b.pending[i].Timestamp != b.pending[j].Timestamp {
				return b.pending[i].Timestamp < b.pending[j].Timestamp
			}
			return b.pending[i].ID < b.pending[j].ID
		})
		f := b.pending[0]
		b.pending = b.pending[1:]
		handlers := make([]busHandler, len(b.handlers))
		copy(handlers, b.handlers)
		b.stats.FramesSent++
		b.stats.Deliveries += len(handlers)
		b.mu.Unlock()

		for _, h := range handlers {
			h.fn(f)
		}
	}
}

// Stats returns a snapshot of bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
