package can

import (
	"fmt"
	"strings"
	"sync"
)

// Sniffer is the OBD-port capture tap: it records every frame on the bus
// with its virtual timestamp, exactly like the paper's "sniff the CAN
// frames exchanged between the diagnostic tool and the vehicle" step
// (§3.1). Captures feed the diagnostic-frames-analysis module.
type Sniffer struct {
	mu     sync.Mutex
	frames []Frame
	filter func(Frame) bool
	stop   func()
}

// NewSniffer attaches a capture tap to the bus. filter may be nil to
// capture everything; otherwise only frames for which filter returns true
// are recorded.
func NewSniffer(bus *Bus, filter func(Frame) bool) *Sniffer {
	s := &Sniffer{filter: filter}
	s.stop = bus.Subscribe(func(f Frame) {
		// filter is immutable after construction, so it runs outside the
		// lock: a filter that reads back into the sniffer (s.Len, s.Frames)
		// must not deadlock against the capture path.
		if s.filter != nil && !s.filter(f) {
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.frames = append(s.frames, f)
	})
	return s
}

// Close detaches the sniffer from the bus. The capture remains readable.
func (s *Sniffer) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// Frames returns a copy of the capture so far, in bus order.
func (s *Sniffer) Frames() []Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Frame, len(s.frames))
	copy(out, s.frames)
	return out
}

// Len reports the number of captured frames.
func (s *Sniffer) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// Reset discards the capture buffer, keeping the tap attached.
func (s *Sniffer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = nil
}

// IDFilter returns a filter admitting only the given identifiers —
// convenient for isolating one diagnostic request/response ID pair.
func IDFilter(ids ...uint32) func(Frame) bool {
	set := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(f Frame) bool { return set[f.ID] }
}

// Dump renders a capture as a candump-style log, one frame per line with
// timestamps, for debugging and example output.
func Dump(frames []Frame) string {
	var b strings.Builder
	for _, f := range frames {
		fmt.Fprintf(&b, "(%012.6f) %s\n", f.Timestamp.Seconds(), f.String())
	}
	return b.String()
}
