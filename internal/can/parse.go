package can

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ErrBadDumpLine reports an unparsable capture line.
var ErrBadDumpLine = errors.New("can: malformed dump line")

// ParseDump parses a candump-style log (the format Dump emits:
// "(000012.345678) 7E0#021003"), returning the frames in file order.
// Blank lines and lines starting with '#' are skipped, so captures can be
// annotated. Parsing a real candump from hardware works too — this is the
// bridge for feeding DP-Reverser traffic that was recorded outside the
// simulation.
func ParseDump(r io.Reader) ([]Frame, error) {
	var out []Frame
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := ParseDumpLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("can: reading dump: %w", err)
	}
	return out, nil
}

// ParseDumpLine parses one "(timestamp) ID#DATA" line.
func ParseDumpLine(line string) (Frame, error) {
	open := strings.IndexByte(line, '(')
	closeIdx := strings.IndexByte(line, ')')
	if open != 0 || closeIdx < 0 {
		return Frame{}, fmt.Errorf("%w: missing timestamp in %q", ErrBadDumpLine, line)
	}
	tsText := strings.TrimSpace(line[1:closeIdx])
	seconds, err := strconv.ParseFloat(tsText, 64)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: timestamp %q", ErrBadDumpLine, tsText)
	}
	rest := strings.TrimSpace(line[closeIdx+1:])
	// Hardware candump logs include an interface column ("can0"); skip it.
	if i := strings.IndexByte(rest, ' '); i >= 0 && !strings.Contains(rest[:i], "#") {
		rest = strings.TrimSpace(rest[i+1:])
	}
	hash := strings.IndexByte(rest, '#')
	if hash < 0 {
		return Frame{}, fmt.Errorf("%w: missing '#' in %q", ErrBadDumpLine, line)
	}
	idText, dataText := rest[:hash], rest[hash+1:]
	id64, err := strconv.ParseUint(idText, 16, 32)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: id %q", ErrBadDumpLine, idText)
	}
	data, err := hex.DecodeString(dataText)
	if err != nil {
		return Frame{}, fmt.Errorf("%w: data %q", ErrBadDumpLine, dataText)
	}
	extended := len(idText) > 3 || id64 > 0x7FF
	var f Frame
	if extended {
		f, err = NewExtendedFrame(uint32(id64), data)
	} else {
		f, err = NewFrame(uint32(id64), data)
	}
	if err != nil {
		return Frame{}, err
	}
	f.Timestamp = time.Duration(seconds * float64(time.Second))
	return f, nil
}
