package can

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dpreverser/internal/sim"
)

func TestParseDumpLine(t *testing.T) {
	f, err := ParseDumpLine("(000001.500000) 7E0#021003")
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 0x7E0 || f.Timestamp != 1500*time.Millisecond {
		t.Fatalf("frame = %+v", f)
	}
	if f.Len != 3 || f.Data[1] != 0x10 {
		t.Fatalf("payload = % X", f.Payload())
	}
}

func TestParseDumpLineHardwareFormat(t *testing.T) {
	// Real candump: "(1436509052.249713) vcan0 044#2A366C2BBA".
	f, err := ParseDumpLine("(1436509052.249713) vcan0 044#2A366C2BBA")
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 0x44 || f.Len != 5 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestParseDumpLineExtendedID(t *testing.T) {
	f, err := ParseDumpLine("(0.1) 18DB33F1#0102")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Extended || f.ID != 0x18DB33F1 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestParseDumpLineErrors(t *testing.T) {
	for _, line := range []string{
		"7E0#01",                               // no timestamp
		"(x) 7E0#01",                           // bad timestamp
		"(0.1) 7E0",                            // no '#'
		"(0.1) ZZZ#01",                         // bad id
		"(0.1) 7E0#0",                          // odd hex
		"(0.1) 7E0#" + strings.Repeat("00", 9), // too long
	} {
		if _, err := ParseDumpLine(line); err == nil {
			t.Errorf("line %q parsed", line)
		}
	}
	if _, err := ParseDumpLine("7E0#01"); !errors.Is(err, ErrBadDumpLine) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseDumpSkipsCommentsAndBlanks(t *testing.T) {
	text := "# capture of Car A\n\n(0.1) 7E0#0221F40D\n(0.2) 7E8#0462F40D21\n"
	frames, err := ParseDump(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || frames[1].ID != 0x7E8 {
		t.Fatalf("frames = %v", frames)
	}
}

func TestParseDumpReportsLine(t *testing.T) {
	_, err := ParseDump(strings.NewReader("(0.1) 7E0#01\ngarbage\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

// Property: Dump → ParseDump round-trips frames (ID, payload, timestamp to
// microsecond precision).
func TestDumpParseRoundTripProperty(t *testing.T) {
	f := func(id uint16, data []byte, ts uint32) bool {
		if len(data) > 8 {
			data = data[:8]
		}
		fr, err := NewFrame(uint32(id)&0x7FF, data)
		if err != nil {
			return false
		}
		fr.Timestamp = time.Duration(ts) * time.Microsecond
		text := Dump([]Frame{fr})
		parsed, err := ParseDump(strings.NewReader(text))
		if err != nil || len(parsed) != 1 {
			return false
		}
		got := parsed[0]
		if got.ID != fr.ID || got.Len != fr.Len {
			return false
		}
		for i := 0; i < fr.Len; i++ {
			if got.Data[i] != fr.Data[i] {
				return false
			}
		}
		diff := got.Timestamp - fr.Timestamp
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDumpParseRoundTripLiveCapture(t *testing.T) {
	clock := sim.NewClock(0)
	bus := NewBus(clock)
	s := NewSniffer(bus, nil)
	for i := 0; i < 10; i++ {
		bus.Send(MustFrame(uint32(0x700+i), []byte{byte(i), 0x22}))
		clock.Advance(137 * time.Millisecond)
	}
	text := Dump(s.Frames())
	parsed, err := ParseDump(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 10 {
		t.Fatalf("parsed %d frames", len(parsed))
	}
	for i, f := range parsed {
		if f.ID != uint32(0x700+i) {
			t.Fatalf("frame %d id = %#x", i, f.ID)
		}
	}
}
