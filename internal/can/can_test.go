package can

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dpreverser/internal/sim"
)

func TestNewFrameValidation(t *testing.T) {
	cases := []struct {
		name    string
		id      uint32
		data    []byte
		ext     bool
		wantErr error
	}{
		{"ok std", 0x7DF, []byte{1, 2, 3}, false, nil},
		{"ok std max id", 0x7FF, nil, false, nil},
		{"std id too big", 0x800, nil, false, ErrBadID},
		{"ok ext", 0x18DB33F1, []byte{1}, true, nil},
		{"ext id too big", 0x20000000, nil, true, ErrBadID},
		{"ok 8 bytes", 0x100, make([]byte, 8), false, nil},
		{"9 bytes", 0x100, make([]byte, 9), false, ErrDataTooLong},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var err error
			if c.ext {
				_, err = NewExtendedFrame(c.id, c.data)
			} else {
				_, err = NewFrame(c.id, c.data)
			}
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("err = %v, want %v", err, c.wantErr)
			}
		})
	}
}

func TestFramePayloadAndString(t *testing.T) {
	f := MustFrame(0x123, []byte{0x01, 0x02, 0xAB})
	if got := f.String(); got != "123#0102AB" {
		t.Fatalf("String = %q", got)
	}
	p := f.Payload()
	if len(p) != 3 || p[2] != 0xAB {
		t.Fatalf("Payload = %v", p)
	}
	ext, _ := NewExtendedFrame(0x18DB33F1, []byte{0xFF})
	if got := ext.String(); got != "18DB33F1#FF" {
		t.Fatalf("ext String = %q", got)
	}
}

func TestMustFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFrame with bad ID did not panic")
		}
	}()
	MustFrame(0x1000, nil)
}

func TestBusDeliversToAllSubscribers(t *testing.T) {
	bus := NewBus(nil)
	var got1, got2 []Frame
	bus.Subscribe(func(f Frame) { got1 = append(got1, f) })
	bus.Subscribe(func(f Frame) { got2 = append(got2, f) })
	bus.Send(MustFrame(0x100, []byte{1}))
	if len(got1) != 1 || len(got2) != 1 {
		t.Fatalf("deliveries: %d, %d; want 1, 1", len(got1), len(got2))
	}
	st := bus.Stats()
	if st.FramesSent != 1 || st.Deliveries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBusUnsubscribe(t *testing.T) {
	bus := NewBus(nil)
	n := 0
	unsub := bus.Subscribe(func(Frame) { n++ })
	bus.Send(MustFrame(0x1, nil))
	unsub()
	bus.Send(MustFrame(0x1, nil))
	if n != 1 {
		t.Fatalf("handler ran %d times after unsubscribe, want 1", n)
	}
	unsub() // second call must be harmless
}

func TestBusTimestampsFromClock(t *testing.T) {
	clock := sim.NewClock(0)
	bus := NewBus(clock)
	var seen []time.Duration
	bus.Subscribe(func(f Frame) { seen = append(seen, f.Timestamp) })
	bus.Send(MustFrame(0x1, nil))
	clock.Advance(250 * time.Millisecond)
	bus.Send(MustFrame(0x1, nil))
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 250*time.Millisecond {
		t.Fatalf("timestamps = %v", seen)
	}
}

// A handler that replies from inside its callback (like an ECU) must have
// its reply delivered after the request, not nested within it.
func TestBusReentrantSendOrder(t *testing.T) {
	bus := NewBus(nil)
	var order []uint32
	bus.Subscribe(func(f Frame) {
		order = append(order, f.ID)
		if f.ID == 0x7E0 { // request triggers response
			bus.Send(MustFrame(0x7E8, []byte{0x50}))
		}
	})
	bus.Send(MustFrame(0x7E0, []byte{0x10}))
	if len(order) != 2 || order[0] != 0x7E0 || order[1] != 0x7E8 {
		t.Fatalf("delivery order = %#v", order)
	}
}

func TestBusArbitrationOrderWithinInstant(t *testing.T) {
	bus := NewBus(nil)
	var order []uint32
	first := true
	bus.Subscribe(func(f Frame) {
		order = append(order, f.ID)
		if first {
			first = false
			// Two replies race; the lower ID must be delivered first.
			bus.Send(MustFrame(0x300, nil))
			bus.Send(MustFrame(0x200, nil))
		}
	})
	bus.Send(MustFrame(0x100, nil))
	want := []uint32{0x100, 0x200, 0x300}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("arbitration order = %#v, want %#v", order, want)
		}
	}
}

func TestBusFIFOWithinSameID(t *testing.T) {
	bus := NewBus(nil)
	var payloads []byte
	first := true
	bus.Subscribe(func(f Frame) {
		if f.Len > 0 {
			payloads = append(payloads, f.Data[0])
		}
		if first {
			first = false
			bus.Send(MustFrame(0x200, []byte{1}))
			bus.Send(MustFrame(0x200, []byte{2}))
			bus.Send(MustFrame(0x200, []byte{3}))
		}
	})
	bus.Send(MustFrame(0x100, nil))
	if string(payloads) != "\x01\x02\x03" {
		t.Fatalf("same-ID FIFO violated: %v", payloads)
	}
}

func TestSnifferCaptureAndReset(t *testing.T) {
	bus := NewBus(nil)
	s := NewSniffer(bus, nil)
	bus.Send(MustFrame(0x1, []byte{1}))
	bus.Send(MustFrame(0x2, []byte{2}))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	bus.Send(MustFrame(0x3, nil))
	if s.Len() != 1 {
		t.Fatalf("Len after resume = %d", s.Len())
	}
}

func TestSnifferClose(t *testing.T) {
	bus := NewBus(nil)
	s := NewSniffer(bus, nil)
	bus.Send(MustFrame(0x1, nil))
	s.Close()
	bus.Send(MustFrame(0x2, nil))
	if s.Len() != 1 {
		t.Fatalf("sniffer captured after Close: Len = %d", s.Len())
	}
	s.Close() // idempotent
}

func TestSnifferFilter(t *testing.T) {
	bus := NewBus(nil)
	s := NewSniffer(bus, IDFilter(0x7E0, 0x7E8))
	for _, id := range []uint32{0x7E0, 0x123, 0x7E8, 0x456} {
		bus.Send(MustFrame(id, nil))
	}
	frames := s.Frames()
	if len(frames) != 2 || frames[0].ID != 0x7E0 || frames[1].ID != 0x7E8 {
		t.Fatalf("filtered capture = %v", frames)
	}
}

func TestSnifferFilterMayReadBack(t *testing.T) {
	// Regression: the capture path used to invoke the filter with s.mu
	// held, so a filter reading back into the sniffer (Len, Frames)
	// self-deadlocked. Filters are immutable after construction and must
	// run outside the lock.
	bus := NewBus(nil)
	var s *Sniffer
	s = NewSniffer(bus, func(f Frame) bool {
		return s.Len() < 2 // reads back into the sniffer
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			bus.Send(MustFrame(uint32(i+1), nil))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("send deadlocked: sniffer filter ran with the capture lock held")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (filter admits while fewer than 2 captured)", s.Len())
	}
}

func TestSnifferFramesIsCopy(t *testing.T) {
	bus := NewBus(nil)
	s := NewSniffer(bus, nil)
	bus.Send(MustFrame(0x1, []byte{9}))
	frames := s.Frames()
	frames[0].Data[0] = 0xFF
	if s.Frames()[0].Data[0] != 9 {
		t.Fatal("Frames() exposed internal storage")
	}
}

func TestDumpFormat(t *testing.T) {
	clock := sim.NewClock(1500 * time.Millisecond)
	bus := NewBus(clock)
	s := NewSniffer(bus, nil)
	bus.Send(MustFrame(0x7E0, []byte{0x02, 0x10, 0x03}))
	out := Dump(s.Frames())
	if !strings.Contains(out, "7E0#021003") {
		t.Fatalf("Dump output %q missing frame", out)
	}
	if !strings.Contains(out, "1.500000") {
		t.Fatalf("Dump output %q missing timestamp", out)
	}
}

// Property: frames round-trip their payload regardless of content.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint16, data []byte) bool {
		if len(data) > 8 {
			data = data[:8]
		}
		fr, err := NewFrame(uint32(id)&0x7FF, data)
		if err != nil {
			return false
		}
		got := fr.Payload()
		if len(got) != len(data) {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
