package rig

import (
	"sort"
	"strings"

	"dpreverser/internal/ocr"
	"dpreverser/internal/ui"
)

// Target is a resolved click target.
type Target struct {
	X, Y int
	Text string
}

// Analyzer is §3.1's UI analyzer: it works from the OCR view of camera a
// (text detection + recognition) plus shape matching for text-less icon
// widgets, and filters out areas that are not collection targets.
type Analyzer struct {
	// FilterKeywords lists text fragments whose regions must not be
	// clicked (the paper's example: "clear trouble codes").
	FilterKeywords []string
}

// NewAnalyzer returns an analyzer with the default filter list.
func NewAnalyzer() *Analyzer {
	return &Analyzer{FilterKeywords: []string{
		"Clear Trouble", "Read Trouble", "Settings", "Data Playback",
		"Software Update",
	}}
}

func (a *Analyzer) filtered(text string) bool {
	for _, k := range a.FilterKeywords {
		if containsFold(text, k) {
			return true
		}
	}
	return false
}

// FindText locates an OCR region matching the keyword: exact
// (case-insensitive) matches win over substring matches, so short button
// captions like "OK" are not hijacked by longer texts that merely contain
// the letters.
func (a *Analyzer) FindText(f ocr.Frame, keyword string) (Target, bool) {
	for _, t := range f.Texts {
		if strings.EqualFold(strings.TrimSpace(t.Content), keyword) {
			x, y := t.Center()
			return Target{X: x, Y: y, Text: t.Content}, true
		}
	}
	for _, t := range f.Texts {
		if containsFold(t.Content, keyword) {
			x, y := t.Center()
			return Target{X: x, Y: y, Text: t.Content}, true
		}
	}
	return Target{}, false
}

// MenuTargets lists the clickable menu entries of a frame: every text
// region except the title (the topmost region) and filtered keywords —
// the selection logic the paper's UI analyzer applies to ECU lists.
func (a *Analyzer) MenuTargets(f ocr.Frame) []Target {
	if len(f.Texts) == 0 {
		return nil
	}
	minY := f.Texts[0].Y
	for _, t := range f.Texts {
		if t.Y < minY {
			minY = t.Y
		}
	}
	var out []Target
	for _, t := range f.Texts {
		if t.Y == minY || a.filtered(t.Content) {
			continue
		}
		x, y := t.Center()
		out = append(out, Target{X: x, Y: y, Text: t.Content})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}

// StreamItems lists the selectable data-stream rows of a selection page
// (texts carrying the "[ ]"/"[x]" checkbox marker).
func (a *Analyzer) StreamItems(f ocr.Frame) (unselected, selected []Target) {
	for _, t := range f.Texts {
		x, y := t.Center()
		tgt := Target{X: x, Y: y, Text: t.Content}
		switch {
		case strings.HasPrefix(t.Content, "[ ] "):
			unselected = append(unselected, tgt)
		case strings.HasPrefix(t.Content, "[x] "):
			selected = append(selected, tgt)
		}
	}
	return unselected, selected
}

// FindIcon locates a text-less icon button by template similarity — the
// paper's Canny-edge + widget-similarity path for buttons OCR cannot see.
// The simulation's "similarity" is an exact template-name match on the
// rendered screen.
func (a *Analyzer) FindIcon(s ui.Screen, template string) (Target, bool) {
	for _, w := range s.Widgets {
		if w.Kind == ui.IconButton && w.Icon == template {
			x, y := w.Center()
			return Target{X: x, Y: y, Text: "<" + template + ">"}, true
		}
	}
	return Target{}, false
}

// containsFold is a case-insensitive substring test.
func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}
