package rig

import (
	"math/rand"
	"testing"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/isotp"
	"dpreverser/internal/obd"
	"dpreverser/internal/ocr"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

func TestClickerMovementCost(t *testing.T) {
	clock := sim.NewClock(0)
	c := NewClicker(clock, 100) // 100 px/s
	c.MoveTo(30, 40)
	if c.Traveled() != 70 {
		t.Fatalf("Traveled = %v, want 70 (Manhattan)", c.Traveled())
	}
	if clock.Now() != 700*time.Millisecond {
		t.Fatalf("clock = %v, want 700ms", clock.Now())
	}
	x, y := c.Position()
	if x != 30 || y != 40 {
		t.Fatalf("position = (%d,%d)", x, y)
	}
}

func TestClickerClickLogsEvent(t *testing.T) {
	clock := sim.NewClock(0)
	c := NewClicker(clock, 1000)
	hits := 0
	c.Click(10, 10, "OK", func(x, y int) bool { hits++; return true })
	c.Click(20, 20, "missing", func(x, y int) bool { return false })
	log := c.Log()
	if len(log) != 2 || hits != 1 {
		t.Fatalf("log = %+v, hits = %d", log, hits)
	}
	if !log[0].Hit || log[1].Hit {
		t.Fatal("hit flags wrong")
	}
	if log[0].Text != "OK" || log[0].X != 10 {
		t.Fatalf("event = %+v", log[0])
	}
	if log[1].At <= log[0].At {
		t.Fatal("timestamps not increasing")
	}
}

func TestTourLength(t *testing.T) {
	start := Point{0, 0}
	order := []Point{{10, 0}, {10, 10}}
	// 10 + 10 + back home 20 = 40.
	if got := TourLength(start, order); got != 40 {
		t.Fatalf("TourLength = %v, want 40", got)
	}
	if TourLength(start, nil) != 0 {
		t.Fatal("empty tour length != 0")
	}
}

func TestNearestNeighborVisitsAll(t *testing.T) {
	points := []Point{{5, 5}, {1, 1}, {9, 9}, {3, 3}}
	order := NearestNeighbor(Point{0, 0}, points)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// Greedy from origin: 1,1 then 3,3 then 5,5 then 9,9.
	want := []Point{{1, 1}, {3, 3}, {5, 5}, {9, 9}}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNearestNeighborBeatsRandomOn14Targets(t *testing.T) {
	// The §3.1 claim: nearest neighbour saves ≈7% of movement over random
	// ordering when clicking 14 ESVs.
	rng := rand.New(rand.NewSource(99))
	var nnTotal, rndTotal float64
	for trial := 0; trial < 50; trial++ {
		points := make([]Point, 14)
		for i := range points {
			points[i] = Point{X: rng.Intn(1024), Y: rng.Intn(768)}
		}
		start := Point{0, 0}
		nnTotal += TourLength(start, NearestNeighbor(start, points))
		rndTotal += TourLength(start, RandomOrder(points, rng))
	}
	if nnTotal >= rndTotal {
		t.Fatalf("NN (%v) not better than random (%v)", nnTotal, rndTotal)
	}
	savings := (rndTotal - nnTotal) / rndTotal
	if savings < 0.05 {
		t.Fatalf("NN savings = %.1f%%, expected ≥5%%", savings*100)
	}
}

func TestExhaustiveOptimalAndBounded(t *testing.T) {
	points := []Point{{10, 0}, {0, 10}, {10, 10}, {5, 5}}
	start := Point{0, 0}
	best, ok := Exhaustive(start, points)
	if !ok {
		t.Fatal("exhaustive refused 4 points")
	}
	bestLen := TourLength(start, best)
	nnLen := TourLength(start, NearestNeighbor(start, points))
	if bestLen > nnLen {
		t.Fatalf("exhaustive (%v) worse than NN (%v)", bestLen, nnLen)
	}
	if _, ok := Exhaustive(start, make([]Point, 10)); ok {
		t.Fatal("exhaustive accepted 10 points")
	}
}

func TestGenerateAndExecuteScript(t *testing.T) {
	clock := sim.NewClock(0)
	c := NewClicker(clock, 1000)
	targets := []Target{{X: 10, Y: 10, Text: "A"}, {X: 20, Y: 20, Text: "B"}}
	script := GenerateClickScript(targets, 100*time.Millisecond)
	if len(script) != 4 {
		t.Fatalf("script steps = %d", len(script))
	}
	var clicked []string
	waits := 0
	script.Execute(c,
		func(x, y int) bool { return true },
		func(d time.Duration) { waits++; clock.Advance(d) })
	for _, e := range c.Log() {
		clicked = append(clicked, e.Text)
	}
	if len(clicked) != 2 || clicked[0] != "A" || clicked[1] != "B" || waits != 2 {
		t.Fatalf("clicked = %v, waits = %d", clicked, waits)
	}
}

func TestScriptExecuteNilOnWait(t *testing.T) {
	clock := sim.NewClock(0)
	c := NewClicker(clock, 1000)
	script := Script{{Kind: StepWait, Wait: time.Second}}
	script.Execute(c, func(int, int) bool { return true }, nil)
	if clock.Now() != time.Second {
		t.Fatalf("clock = %v", clock.Now())
	}
}

func newRig(t *testing.T, car string, cfg Config) (*Rig, *vehicle.Vehicle) {
	t.Helper()
	p, ok := vehicle.ProfileByCar(car)
	if !ok {
		t.Fatalf("unknown car %q", car)
	}
	clock := sim.NewClock(0)
	tool, veh, err := diagtool.ForProfile(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	r := New(tool, veh, cfg)
	t.Cleanup(func() { r.Close(); tool.Close(); veh.Close() })
	return r, veh
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ReadDuration = 5 * time.Second
	cfg.AlignDuration = 3 * time.Second
	cfg.TestDuration = time.Second
	return cfg
}

func TestRigAlignmentPhase(t *testing.T) {
	r, _ := newRig(t, "Car A", fastConfig())
	if err := r.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()
	// OBD traffic must be on the wire.
	obdFrames := 0
	for _, f := range cap.Frames {
		if f.ID == obd.FunctionalRequestID || f.ID == obd.FirstResponseID {
			obdFrames++
		}
	}
	if obdFrames == 0 {
		t.Fatal("no OBD frames captured during alignment")
	}
	// And the video must show the OBD screen with values.
	obdUI := 0
	for _, f := range cap.UIFrames {
		if f.ScreenName == "obd-live" && len(f.Rows) > 0 {
			obdUI++
		}
	}
	if obdUI == 0 {
		t.Fatal("no OBD UI frames recorded")
	}
}

func TestRigReadSessionCapture(t *testing.T) {
	r, veh := newRig(t, "Car A", fastConfig())
	if err := r.CollectReadSessions(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()
	if len(cap.Frames) == 0 || len(cap.UIFrames) == 0 || len(cap.Clicks) == 0 {
		t.Fatalf("capture empty: %d frames, %d ui, %d clicks",
			len(cap.Frames), len(cap.UIFrames), len(cap.Clicks))
	}
	// Diagnostic requests to every ECU's request ID must appear.
	reqIDs := map[uint32]bool{}
	for _, f := range cap.Frames {
		reqIDs[f.ID] = true
	}
	for _, b := range veh.Bindings() {
		if !reqIDs[b.ReqID] {
			t.Fatalf("no traffic to ECU %s (id %#x)", b.ECU.Name, b.ReqID)
		}
	}
	// Live-data UI frames must carry parsed values.
	withValues := 0
	for _, f := range cap.UIFrames {
		if f.ScreenName != "live-data" {
			continue
		}
		for _, row := range f.Rows {
			if row.ParseOK {
				withValues++
				break
			}
		}
	}
	if withValues < 5 {
		t.Fatalf("only %d live-data frames with values", withValues)
	}
}

func TestRigReadSessionKWP(t *testing.T) {
	r, _ := newRig(t, "Car C", fastConfig()) // Lavida: KWP over VW TP 2.0
	if err := r.CollectReadSessions(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()
	if len(cap.UIFrames) == 0 {
		t.Fatal("no UI frames")
	}
	dataFrames := 0
	for _, f := range cap.Frames {
		if f.Len > 0 && f.ID != obd.FunctionalRequestID && f.ID != obd.FirstResponseID {
			dataFrames++
		}
	}
	if dataFrames == 0 {
		t.Fatal("no VW TP traffic")
	}
}

func TestRigActiveTests(t *testing.T) {
	r, veh := newRig(t, "Car I", fastConfig()) // Changan Eado: 10 ECRs, 2F
	if err := r.CollectActiveTests(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range veh.Bindings() {
		events := b.ECU.Events()
		total += len(events)
	}
	if total == 0 {
		t.Fatal("no actuation events recorded")
	}
	// Every configured actuator must have been driven.
	for _, b := range veh.Bindings() {
		driven := map[string]bool{}
		for _, e := range b.ECU.Events() {
			driven[e.Actuator] = true
		}
		for _, a := range b.ECU.Actuators() {
			if !driven[a.Name] {
				t.Fatalf("actuator %q never driven", a.Name)
			}
		}
	}
	// IO-control frames must be in the capture.
	cap := r.Capture()
	ioFrames := 0
	for _, f := range cap.Frames {
		for _, by := range f.Payload() {
			if by == 0x2F {
				ioFrames++
				break
			}
		}
	}
	if ioFrames == 0 {
		t.Fatal("no IO-control traffic captured")
	}
}

func TestRigFullSessionOnSmallCar(t *testing.T) {
	r, _ := newRig(t, "Car M", fastConfig()) // Peugeot: small inventory
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if cap.Car != "Car M" || cap.ToolName != "AUTEL 919" {
		t.Fatalf("capture meta = %+v", cap)
	}
	if len(cap.Frames) == 0 || len(cap.UIFrames) == 0 {
		t.Fatal("full session produced empty capture")
	}
}

func TestCameraOffsetAppliedToUIFrames(t *testing.T) {
	// Run the same deterministic session twice, once with a 2s camera
	// skew: every video frame must be stamped exactly 2s later.
	cfgZero := fastConfig()
	cfgZero.CameraOffset = 0
	rZero, _ := newRig(t, "Car M", cfgZero)
	if err := rZero.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	capZero := rZero.Capture()

	cfgSkew := fastConfig()
	cfgSkew.CameraOffset = 2 * time.Second
	rSkew, _ := newRig(t, "Car M", cfgSkew)
	if err := rSkew.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	capSkew := rSkew.Capture()

	if len(capZero.UIFrames) == 0 || len(capZero.UIFrames) != len(capSkew.UIFrames) {
		t.Fatalf("frame counts differ: %d vs %d", len(capZero.UIFrames), len(capSkew.UIFrames))
	}
	for i := range capZero.UIFrames {
		if got := capSkew.UIFrames[i].At - capZero.UIFrames[i].At; got != 2*time.Second {
			t.Fatalf("frame %d skew = %v, want 2s", i, got)
		}
	}
}

func TestAnalyzerFindTextExactBeatsSubstring(t *testing.T) {
	a := NewAnalyzer()
	f := frameWithTexts("Central lock status", "OK")
	tgt, ok := a.FindText(f, "OK")
	if !ok || tgt.Text != "OK" {
		t.Fatalf("FindText(OK) = %+v, %v", tgt, ok)
	}
}

func TestAnalyzerMenuTargetsFiltersTitleAndKeywords(t *testing.T) {
	a := NewAnalyzer()
	f := frameWithTexts("Engine — Functions", "Read Data Stream", "Active Test", "Clear Trouble Codes")
	targets := a.MenuTargets(f)
	if len(targets) != 2 {
		t.Fatalf("targets = %+v", targets)
	}
	for _, tgt := range targets {
		if tgt.Text == "Engine — Functions" || tgt.Text == "Clear Trouble Codes" {
			t.Fatalf("target %q should be filtered", tgt.Text)
		}
	}
}

// frameWithTexts lays texts out vertically: the first is the title (top).
func frameWithTexts(texts ...string) (f ocr.Frame) {
	for i, s := range texts {
		f.Texts = append(f.Texts, ocr.Text{Content: s, X: 40, Y: 20 + i*44, W: 300, H: 40})
	}
	return f
}

func TestRigCaptureIncludesSniffedBusTraffic(t *testing.T) {
	r, veh := newRig(t, "Car M", fastConfig())
	// Inject an unrelated frame: the sniffer must capture everything on
	// the OBD port, not only diagnostic traffic.
	veh.Bus.Send(can.MustFrame(0x123, []byte{1, 2, 3}))
	cap := r.Capture()
	found := false
	for _, f := range cap.Frames {
		if f.ID == 0x123 {
			found = true
		}
	}
	if !found {
		t.Fatal("sniffer missed non-diagnostic frame")
	}
}

func TestRigIsotpTrafficReassembles(t *testing.T) {
	r, _ := newRig(t, "Car A", fastConfig())
	if err := r.CollectReadSessions(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()
	// At least one multi-frame exchange must appear (Table 9's premise).
	ff := 0
	for _, f := range cap.Frames {
		if isotp.Classify(f.Payload()) == isotp.FirstFrame {
			ff++
		}
	}
	if ff == 0 {
		t.Fatal("no first frames: multi-DID polling should produce multi-frame responses")
	}
}
