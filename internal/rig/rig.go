package rig

import (
	"fmt"
	"time"

	"dpreverser/internal/can"
	"dpreverser/internal/diagtool"
	"dpreverser/internal/ocr"
	"dpreverser/internal/sim"
	"dpreverser/internal/vehicle"
)

// Config tunes a collection session.
type Config struct {
	// PollInterval is the live-data refresh cadence.
	PollInterval time.Duration
	// ReadDuration is how long each data-stream screen is recorded (the
	// paper waits ~30 seconds per reading to gather enough samples).
	ReadDuration time.Duration
	// AlignDuration is the OBD-II recording used for timestamp alignment
	// (§9.4 method 2).
	AlignDuration time.Duration
	// TestDuration is how long each active test runs.
	TestDuration time.Duration
	// SettleTime is the pause after menu clicks.
	SettleTime time.Duration
	// CameraOffset is the constant skew between the video clock and the
	// CAN-capture clock, before NTP/OBD alignment corrects it.
	CameraOffset time.Duration
	// ValueErrProb overrides the OCR error rate; negative selects the
	// preset for the tool's screen quality.
	ValueErrProb float64
	// Seed drives the OCR error streams.
	Seed int64
}

// DefaultConfig returns the session parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		PollInterval:  500 * time.Millisecond,
		ReadDuration:  30 * time.Second,
		AlignDuration: 8 * time.Second,
		TestDuration:  3 * time.Second,
		SettleTime:    300 * time.Millisecond,
		CameraOffset:  120 * time.Millisecond,
		ValueErrProb:  -1,
		Seed:          1,
	}
}

// Capture is a completed collection session: everything the
// reverse-engineering pipeline is allowed to see.
type Capture struct {
	Car      string
	Model    string
	ToolName string
	Protocol vehicle.Protocol

	// Frames is the full OBD-port CAN capture.
	Frames []can.Frame
	// UIFrames is the OCR'd video of camera b. Frame timestamps carry the
	// camera clock (skewed by the configured offset until alignment).
	UIFrames []ocr.Frame
	// Clicks is the robotic clicker's log.
	Clicks []ClickEvent
}

// Rig couples a tool, its vehicle, the clicker, the cameras and the OCR
// engines into one collection system.
type Rig struct {
	cfg      Config
	tool     *diagtool.Tool
	veh      *vehicle.Vehicle
	clock    *sim.Clock
	clicker  *Clicker
	analyzer *Analyzer
	camA     *ocr.Engine // guides the clicker
	camB     *ocr.Engine // records the video used for reverse engineering

	sniffer *can.Sniffer
	capture Capture
}

// New assembles a rig for a tool/vehicle pair.
func New(tool *diagtool.Tool, veh *vehicle.Vehicle, cfg Config) *Rig {
	errProb := cfg.ValueErrProb
	if errProb < 0 {
		if tool.Quality == diagtool.QualityLow {
			errProb = ocr.LowQualityValueErr
		} else {
			errProb = ocr.HighQualityValueErr
		}
	}
	r := &Rig{
		cfg:      cfg,
		tool:     tool,
		veh:      veh,
		clock:    veh.Clock,
		clicker:  NewClicker(veh.Clock, 400),
		analyzer: NewAnalyzer(),
		camA:     ocr.NewEngine(errProb, cfg.Seed*2+1),
		camB:     ocr.NewEngine(errProb, cfg.Seed*2+2),
	}
	r.capture = Capture{
		Car: veh.Profile.Car, Model: veh.Profile.Model,
		ToolName: tool.Name, Protocol: veh.Profile.Protocol,
	}
	r.sniffer = can.NewSniffer(veh.Bus, nil)
	return r
}

// Close detaches the sniffer.
func (r *Rig) Close() {
	if r.sniffer != nil {
		r.sniffer.Close()
	}
}

// Capture finalises and returns the session capture.
func (r *Rig) Capture() Capture {
	r.capture.Frames = r.sniffer.Frames()
	r.capture.Clicks = r.clicker.Log()
	return r.capture
}

// CameraB exposes the recording OCR engine (Table 4 reads its stats).
func (r *Rig) CameraB() *ocr.Engine { return r.camB }

// Clicker exposes the stylus (the planner experiment reads its odometry).
func (r *Rig) Clicker() *Clicker { return r.clicker }

// screenshotA captures camera a's OCR view of the current screen.
func (r *Rig) screenshotA() ocr.Frame {
	return r.camA.Recognize(r.tool.Screen(), r.clock.Now())
}

// recordB captures one camera-b video frame with the camera clock skew.
func (r *Rig) recordB() {
	f := r.camB.Recognize(r.tool.Screen(), r.clock.Now()+r.cfg.CameraOffset)
	r.capture.UIFrames = append(r.capture.UIFrames, f)
}

// click resolves and taps one target.
func (r *Rig) click(t Target) bool {
	hit := r.clicker.Click(t.X, t.Y, t.Text, r.tool.Click)
	r.clock.Advance(r.cfg.SettleTime)
	return hit
}

// clickText finds a keyword on screen and clicks it. A fresh screenshot is
// taken on each attempt, so transient OCR noise on the target caption is
// retried away.
func (r *Rig) clickText(keyword string) error {
	for attempt := 0; attempt < 3; attempt++ {
		f := r.screenshotA()
		t, ok := r.analyzer.FindText(f, keyword)
		if !ok {
			continue
		}
		if r.click(t) {
			return nil
		}
	}
	return fmt.Errorf("rig: %q not found on screen %q", keyword, r.tool.ScreenName())
}

// clickBack uses the icon-similarity path.
func (r *Rig) clickBack() error {
	t, ok := r.analyzer.FindIcon(r.tool.Screen(), "back-arrow")
	if !ok {
		return fmt.Errorf("rig: back icon not found on %q", r.tool.ScreenName())
	}
	if !r.click(t) {
		return fmt.Errorf("rig: back click missed")
	}
	return nil
}

// recordLiveData polls and films the current live screen for d.
func (r *Rig) recordLiveData(d time.Duration) {
	deadline := r.clock.Now() + d
	for r.clock.Now() < deadline {
		r.tool.Poll()
		// The camera films mid-interval: displayed values lag the traffic
		// by half a poll period, like a real screen refresh.
		r.clock.Advance(r.cfg.PollInterval / 2)
		r.recordB()
		r.clock.Advance(r.cfg.PollInterval / 2)
	}
}

// CollectAlignment records the OBD-II phase used by §9.4's alignment: the
// tool reads well-documented PIDs while both the traffic and the screen
// are recorded.
func (r *Rig) CollectAlignment() error {
	if err := r.navigateHome(); err != nil {
		return err
	}
	if err := r.clickText("Diagnostics"); err != nil {
		return err
	}
	ecus := r.analyzer.MenuTargets(r.screenshotA())
	if len(ecus) == 0 {
		return fmt.Errorf("rig: no ECUs listed")
	}
	if !r.click(ecus[0]) {
		return fmt.Errorf("rig: ECU click missed")
	}
	if err := r.clickText("OBD-II Live Data"); err != nil {
		return err
	}
	r.recordLiveData(r.cfg.AlignDuration)
	// Return to the ECU list.
	if err := r.clickBack(); err != nil {
		return err
	}
	if err := r.clickBack(); err != nil {
		return err
	}
	return nil
}

// CollectReadSessions walks every ECU's data-stream list, selects every
// item (planning click order with the nearest-neighbour heuristic), and
// records the live screen.
func (r *Rig) CollectReadSessions() error {
	if err := r.navigateECUList(); err != nil {
		return err
	}
	ecus := r.analyzer.MenuTargets(r.screenshotA())
	for _, ecuTarget := range ecus {
		if !r.click(ecuTarget) {
			continue
		}
		if err := r.clickText("Read Data Stream"); err != nil {
			return err
		}
		if err := r.selectAllStreamItems(); err != nil {
			return err
		}
		if err := r.clickText("OK"); err != nil {
			return err
		}
		r.recordLiveData(r.cfg.ReadDuration)
		// live-data -> stream-select -> func-menu -> ecu-list.
		for i := 0; i < 3; i++ {
			if err := r.clickBack(); err != nil {
				return err
			}
		}
	}
	return nil
}

// selectAllStreamItems pages through the selection list clicking every
// unselected item, ordering each page's clicks with the TSP heuristic.
func (r *Rig) selectAllStreamItems() error {
	prevPage := ""
	for page := 0; page < 64; page++ {
		f := r.screenshotA()
		unselected, selected := r.analyzer.StreamItems(f)
		signature := pageSignature(unselected, selected)
		if signature == prevPage {
			return nil // paging stopped advancing: last page done
		}
		prevPage = signature

		points := make([]Point, len(unselected))
		for i, t := range unselected {
			points[i] = Point{X: t.X, Y: t.Y}
		}
		cx, cy := r.clicker.Position()
		order := NearestNeighbor(Point{X: cx, Y: cy}, points)
		for _, p := range order {
			// Find the target at this point to carry its text into the log.
			var tgt Target
			for _, t := range unselected {
				if t.X == p.X && t.Y == p.Y {
					tgt = t
					break
				}
			}
			r.click(tgt)
		}
		// Advance to the next page if there is one.
		next, ok := r.analyzer.FindText(r.screenshotA(), "Next Page")
		if !ok {
			return nil
		}
		r.click(next)
	}
	return fmt.Errorf("rig: selection paging did not terminate")
}

func pageSignature(unselected, selected []Target) string {
	sig := ""
	for _, t := range unselected {
		sig += "u" + t.Text
	}
	for _, t := range selected {
		sig += "s" + t.Text
	}
	return sig
}

// CollectActiveTests runs every active test on every ECU, filming the
// status screen while each actuator is driven.
func (r *Rig) CollectActiveTests() error {
	if err := r.navigateECUList(); err != nil {
		return err
	}
	ecus := r.analyzer.MenuTargets(r.screenshotA())
	for _, ecuTarget := range ecus {
		if !r.click(ecuTarget) {
			continue
		}
		if err := r.clickText("Active Test"); err != nil {
			return err
		}
		tests := r.analyzer.MenuTargets(r.screenshotA())
		for _, test := range tests {
			if !r.click(test) {
				continue
			}
			// Film the running test.
			deadline := r.clock.Now() + r.cfg.TestDuration
			for r.clock.Now() < deadline {
				r.recordB()
				r.clock.Advance(r.cfg.PollInterval)
			}
			if err := r.clickText("Stop"); err != nil {
				return err
			}
			if err := r.clickBack(); err != nil {
				return err
			}
		}
		// active-list -> func-menu -> ecu-list.
		if err := r.clickBack(); err != nil {
			return err
		}
		if err := r.clickBack(); err != nil {
			return err
		}
	}
	return nil
}

// RunFull performs the complete session: alignment, reads, active tests.
func (r *Rig) RunFull() (Capture, error) {
	if err := r.CollectAlignment(); err != nil {
		return Capture{}, fmt.Errorf("alignment phase: %w", err)
	}
	if err := r.CollectReadSessions(); err != nil {
		return Capture{}, fmt.Errorf("read phase: %w", err)
	}
	if err := r.CollectActiveTests(); err != nil {
		return Capture{}, fmt.Errorf("active-test phase: %w", err)
	}
	return r.Capture(), nil
}

// navigateHome backs out to the home screen from anywhere.
func (r *Rig) navigateHome() error {
	for i := 0; i < 8 && r.tool.ScreenName() != "home"; i++ {
		if err := r.clickBack(); err != nil {
			return err
		}
	}
	if r.tool.ScreenName() != "home" {
		return fmt.Errorf("rig: could not reach home screen")
	}
	return nil
}

// navigateECUList reaches the ECU list from wherever the tool is.
func (r *Rig) navigateECUList() error {
	if r.tool.ScreenName() == "ecu-list" {
		return nil
	}
	if r.tool.ScreenName() == "home" {
		return r.clickText("Diagnostics")
	}
	for i := 0; i < 8 && r.tool.ScreenName() != "ecu-list"; i++ {
		if err := r.clickBack(); err != nil {
			return err
		}
		if r.tool.ScreenName() == "home" {
			return r.clickText("Diagnostics")
		}
	}
	if r.tool.ScreenName() != "ecu-list" {
		return fmt.Errorf("rig: could not reach ECU list (stuck on %q)", r.tool.ScreenName())
	}
	return nil
}
