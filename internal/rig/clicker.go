// Package rig implements the cyber-physical data-collection system of
// §3.1: a robotic clicker (stylus on an XY gantry), two cameras, the UI
// analyzer that decides what to click, the travelling-salesman click
// planner, the script generator/executor, and the session runner that
// produces the captures (CAN frames + OCR'd UI video + click log) the
// reverse-engineering pipeline consumes.
package rig

import (
	"time"

	"dpreverser/internal/sim"
)

// ClickEvent is one logged stylus tap (§3.1 "logs the timestamp of each UI
// clicking so that we can split the captured CAN frames and recorded video
// into multiple parts").
type ClickEvent struct {
	At   time.Duration
	X, Y int
	// Text is what the UI analyzer believed it was clicking (from OCR).
	Text string
	// Hit reports whether the tool reacted.
	Hit bool
}

// Clicker models the robotic stylus: it moves along one axis at a time at
// a fixed speed, so travel time between clicks is the Manhattan distance
// divided by the speed — the cost model the planner minimises.
type Clicker struct {
	clock *sim.Clock
	// SpeedPxPerSec is the stylus travel speed.
	SpeedPxPerSec float64
	// DwellTime is the press duration per click.
	DwellTime time.Duration

	x, y          int
	traveled      float64
	travelElapsed time.Duration
	log           []ClickEvent
}

// NewClicker parks the stylus at the origin.
func NewClicker(clock *sim.Clock, speedPxPerSec float64) *Clicker {
	if speedPxPerSec <= 0 {
		speedPxPerSec = 400
	}
	return &Clicker{clock: clock, SpeedPxPerSec: speedPxPerSec, DwellTime: 150 * time.Millisecond}
}

// Position reports the stylus location.
func (c *Clicker) Position() (x, y int) { return c.x, c.y }

// Traveled reports the cumulative Manhattan distance moved, in pixels.
func (c *Clicker) Traveled() float64 { return c.traveled }

// TravelTime reports the cumulative time spent moving.
func (c *Clicker) TravelTime() time.Duration { return c.travelElapsed }

// Log returns the click log.
func (c *Clicker) Log() []ClickEvent { return append([]ClickEvent(nil), c.log...) }

// MoveTo drives the stylus to (x, y), advancing the virtual clock by the
// travel time.
func (c *Clicker) MoveTo(x, y int) {
	dist := manhattan(c.x, c.y, x, y)
	d := time.Duration(dist / c.SpeedPxPerSec * float64(time.Second))
	c.clock.Advance(d)
	c.traveled += dist
	c.travelElapsed += d
	c.x, c.y = x, y
}

// Click moves to the point and taps it, reporting the tap to tap (the
// tool's Click entry point) and logging the event.
func (c *Clicker) Click(x, y int, text string, tap func(x, y int) bool) bool {
	c.MoveTo(x, y)
	c.clock.Advance(c.DwellTime)
	hit := tap(x, y)
	c.log = append(c.log, ClickEvent{At: c.clock.Now(), X: x, Y: y, Text: text, Hit: hit})
	return hit
}

func manhattan(x0, y0, x1, y1 int) float64 {
	return float64(abs(x1-x0) + abs(y1-y0))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
