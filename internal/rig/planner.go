package rig

import "math/rand"

// Point is one click target for the planner.
type Point struct {
	X, Y int
}

// TourLength computes the total Manhattan travel of visiting the points in
// order, starting from start and returning to it — the paper's TSP
// formulation ("the shortest route that visits each ESV exactly once and
// returns to the origin ESV").
func TourLength(start Point, order []Point) float64 {
	if len(order) == 0 {
		return 0
	}
	total := 0.0
	cur := start
	for _, p := range order {
		total += manhattan(cur.X, cur.Y, p.X, p.Y)
		cur = p
	}
	total += manhattan(cur.X, cur.Y, start.X, start.Y)
	return total
}

// NearestNeighbor orders the points greedily by closest-next from start —
// the heuristic §3.1 selects because exhaustive search is NP-hard.
func NearestNeighbor(start Point, points []Point) []Point {
	remaining := append([]Point(nil), points...)
	out := make([]Point, 0, len(points))
	cur := start
	for len(remaining) > 0 {
		best, bestDist := 0, manhattan(cur.X, cur.Y, remaining[0].X, remaining[0].Y)
		for i := 1; i < len(remaining); i++ {
			if d := manhattan(cur.X, cur.Y, remaining[i].X, remaining[i].Y); d < bestDist {
				best, bestDist = i, d
			}
		}
		cur = remaining[best]
		out = append(out, cur)
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

// RandomOrder shuffles the points — the baseline §3.1 compares against
// (nearest neighbour saved 7.3% of movement over random on 14 ESVs).
func RandomOrder(points []Point, rng *rand.Rand) []Point {
	out := append([]Point(nil), points...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Exhaustive finds the optimal order by brute force. It refuses more than
// 9 points (9! ≈ 363k permutations) — the NP-hardness that justifies the
// heuristic.
func Exhaustive(start Point, points []Point) ([]Point, bool) {
	if len(points) > 9 {
		return nil, false
	}
	best := append([]Point(nil), points...)
	bestLen := TourLength(start, best)
	cur := append([]Point(nil), points...)
	var permute func(k int)
	permute = func(k int) {
		if k == len(cur) {
			if l := TourLength(start, cur); l < bestLen {
				bestLen = l
				copy(best, cur)
			}
			return
		}
		for i := k; i < len(cur); i++ {
			cur[k], cur[i] = cur[i], cur[k]
			permute(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	permute(0)
	return best, true
}
