package rig

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// captureFormatVersion guards against loading captures written by an
// incompatible build.
const captureFormatVersion = 1

// captureEnvelope wraps a Capture with a version stamp for persistence.
type captureEnvelope struct {
	Version int     `json:"version"`
	Capture Capture `json:"capture"`
}

// Save serialises the capture as JSON, so collection and analysis can
// run in different processes (the paper's workflow: capture in the garage,
// analyse at the desk).
func (c Capture) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(captureEnvelope{Version: captureFormatVersion, Capture: c}); err != nil {
		return fmt.Errorf("rig: encoding capture: %w", err)
	}
	return nil
}

// ReadCapture deserialises a capture written by Save.
func ReadCapture(r io.Reader) (Capture, error) {
	var env captureEnvelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return Capture{}, fmt.Errorf("rig: decoding capture: %w", err)
	}
	if env.Version != captureFormatVersion {
		return Capture{}, fmt.Errorf("rig: capture format version %d, want %d", env.Version, captureFormatVersion)
	}
	return env.Capture, nil
}

// SaveCaptureFile writes the capture to a file.
func SaveCaptureFile(c Capture, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rig: creating capture file: %w", err)
	}
	defer f.Close()
	if err := c.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("rig: closing capture file: %w", err)
	}
	return nil
}

// LoadCaptureFile reads a capture from a file.
func LoadCaptureFile(path string) (Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return Capture{}, fmt.Errorf("rig: opening capture file: %w", err)
	}
	defer f.Close()
	return ReadCapture(f)
}
