package rig

import "time"

// StepKind discriminates script steps.
type StepKind int

// Script step kinds.
const (
	StepClick StepKind = iota
	StepWait
)

// Step is one statement of a generated control script (§3.1's script
// generator maps each target to a clicking statement and inserts waiting
// statements between them).
type Step struct {
	Kind StepKind
	// X, Y, Text describe a click step.
	X, Y int
	Text string
	// Wait is the pause duration of a wait step.
	Wait time.Duration
}

// Script is an executable clicking program.
type Script []Step

// GenerateClickScript produces a script that clicks each target in order
// with a fixed settle pause after each click.
func GenerateClickScript(targets []Target, settle time.Duration) Script {
	var s Script
	for _, t := range targets {
		s = append(s, Step{Kind: StepClick, X: t.X, Y: t.Y, Text: t.Text})
		if settle > 0 {
			s = append(s, Step{Kind: StepWait, Wait: settle})
		}
	}
	return s
}

// Execute runs the script through the clicker. tap delivers clicks to the
// tool; onWait is invoked for wait statements so the caller can keep
// polling/recording while the script pauses (nil onWait just advances the
// clock).
func (s Script) Execute(c *Clicker, tap func(x, y int) bool, onWait func(d time.Duration)) {
	for _, step := range s {
		switch step.Kind {
		case StepClick:
			c.Click(step.X, step.Y, step.Text, tap)
		case StepWait:
			if onWait != nil {
				onWait(step.Wait)
			} else {
				c.clock.Advance(step.Wait)
			}
		}
	}
}
