package rig

import (
	"strings"
	"testing"

	"dpreverser/internal/ui"
)

func TestRigAccessors(t *testing.T) {
	r, _ := newRig(t, "Car M", fastConfig())
	if r.CameraB() == nil {
		t.Fatal("CameraB nil")
	}
	if r.Clicker() == nil {
		t.Fatal("Clicker nil")
	}
	if err := r.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	if r.Clicker().TravelTime() <= 0 {
		t.Fatal("no travel time recorded")
	}
	frames, _ := r.CameraB().Stats()
	if frames == 0 {
		t.Fatal("camera b saw no frames")
	}
}

func TestClickerDefaultSpeed(t *testing.T) {
	c := NewClicker(nil, 0)
	if c.SpeedPxPerSec != 400 {
		t.Fatalf("default speed = %v", c.SpeedPxPerSec)
	}
}

func TestRigRunFullFromNestedScreen(t *testing.T) {
	// RunFull must navigate home from wherever the tool was left.
	r, _ := newRig(t, "Car M", fastConfig())
	// Walk the tool deep into the menus first.
	if err := r.clickText("Diagnostics"); err != nil {
		t.Fatal(err)
	}
	ecus := r.analyzer.MenuTargets(r.screenshotA())
	if len(ecus) == 0 {
		t.Fatal("no ECUs")
	}
	r.click(ecus[0])
	if err := r.clickText("Read Data Stream"); err != nil {
		t.Fatal(err)
	}
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Frames) == 0 {
		t.Fatal("empty capture")
	}
}

func TestAnalyzerStreamItems(t *testing.T) {
	a := NewAnalyzer()
	f := frameWithTexts("Select Data Stream Items", "[ ] Engine speed", "[x] Vehicle speed", "OK")
	unsel, sel := a.StreamItems(f)
	if len(unsel) != 1 || !strings.Contains(unsel[0].Text, "Engine speed") {
		t.Fatalf("unselected = %+v", unsel)
	}
	if len(sel) != 1 || !strings.Contains(sel[0].Text, "Vehicle speed") {
		t.Fatalf("selected = %+v", sel)
	}
}

func TestAnalyzerFindIconMissing(t *testing.T) {
	a := NewAnalyzer()
	s := ui.Screen{Widgets: []ui.Widget{{ID: "x", Kind: ui.Button, Text: "OK"}}}
	if _, ok := a.FindIcon(s, "back-arrow"); ok {
		t.Fatal("icon found on icon-less screen")
	}
}

func TestAnalyzerMenuTargetsEmptyFrame(t *testing.T) {
	a := NewAnalyzer()
	if got := a.MenuTargets(frameWithTexts()); got != nil {
		t.Fatalf("targets on empty frame = %+v", got)
	}
}

func TestTourLengthSinglePoint(t *testing.T) {
	// One point: out and back.
	if got := TourLength(Point{0, 0}, []Point{{3, 4}}); got != 14 {
		t.Fatalf("TourLength = %v, want 14 (7 out, 7 back)", got)
	}
}

func TestPageSignatureDistinguishesSelection(t *testing.T) {
	u := []Target{{Text: "A"}}
	s := []Target{{Text: "A"}}
	if pageSignature(u, nil) == pageSignature(nil, s) {
		t.Fatal("signature ignores selection state")
	}
}

func TestCaptureOfKWPCarIncludesChannelSetup(t *testing.T) {
	r, _ := newRig(t, "Car B", fastConfig())
	if err := r.CollectReadSessions(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()
	setup := 0
	for _, f := range cap.Frames {
		if f.ID >= 0x200 && f.ID < 0x300 {
			setup++
		}
	}
	if setup == 0 {
		t.Fatal("no VW TP channel-setup frames captured")
	}
}
