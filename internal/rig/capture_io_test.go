package rig

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCaptureRoundTripBuffer(t *testing.T) {
	r, _ := newRig(t, "Car M", fastConfig())
	if err := r.CollectAlignment(); err != nil {
		t.Fatal(err)
	}
	cap := r.Capture()

	var buf bytes.Buffer
	if err := cap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Car != cap.Car || got.ToolName != cap.ToolName || got.Protocol != cap.Protocol {
		t.Fatalf("meta = %+v", got)
	}
	if len(got.Frames) != len(cap.Frames) || len(got.UIFrames) != len(cap.UIFrames) || len(got.Clicks) != len(cap.Clicks) {
		t.Fatalf("sizes: %d/%d frames, %d/%d ui, %d/%d clicks",
			len(got.Frames), len(cap.Frames), len(got.UIFrames), len(cap.UIFrames),
			len(got.Clicks), len(cap.Clicks))
	}
	for i := range cap.Frames {
		if got.Frames[i] != cap.Frames[i] {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestCaptureRoundTripFile(t *testing.T) {
	r, _ := newRig(t, "Car M", fastConfig())
	cap, err := r.RunFull()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "capture.json")
	if err := SaveCaptureFile(cap, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCaptureFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.UIFrames) != len(cap.UIFrames) {
		t.Fatalf("ui frames: %d vs %d", len(loaded.UIFrames), len(cap.UIFrames))
	}
	for i, f := range cap.UIFrames {
		got := loaded.UIFrames[i]
		if got.At != f.At || got.ScreenName != f.ScreenName || len(got.Rows) != len(f.Rows) {
			t.Fatalf("ui frame %d differs", i)
		}
	}
	if len(loaded.Clicks) != len(cap.Clicks) {
		t.Fatalf("clicks: %d vs %d", len(loaded.Clicks), len(cap.Clicks))
	}
}

func TestReadCaptureRejectsWrongVersion(t *testing.T) {
	_, err := ReadCapture(strings.NewReader(`{"version":99,"capture":{}}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadCaptureFileMissing(t *testing.T) {
	if _, err := LoadCaptureFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
