package telemetry

// JobServerMetrics is the named metric set the dpreversed job server
// increments. Like PipelineMetrics, names and label schemas live here —
// one home shared by the server, its tests and the CI smoke check — and
// every metric method is nil-safe against a nil registry.
type JobServerMetrics struct {
	// JobsByState tracks the live population of jobs in each lifecycle
	// state (queued|running|done|failed|cancelled). Terminal states only
	// ever grow; queued/running breathe with the workload.
	JobsByState *GaugeVec
	// JobsFinished counts jobs reaching each terminal state
	// (done|failed|cancelled).
	JobsFinished *CounterVec
	// QueueDepth tracks the number of queued jobs per shard (label: shard
	// index as a decimal string).
	QueueDepth *GaugeVec
	// TenantAdmissions counts accepted submissions per tenant.
	TenantAdmissions *CounterVec
	// TenantRejections counts refused submissions per tenant and reason
	// (quota|backpressure|draining).
	TenantRejections *CounterVec
	// QueueWait observes how long jobs sat queued before a worker picked
	// them up, in seconds (injected clock).
	QueueWait *Histogram
	// RunDuration observes per-job pipeline wall time in seconds
	// (injected clock).
	RunDuration *Histogram
	// StreamSessions counts canbridge ingest sessions by outcome
	// (complete|truncated|rejected).
	StreamSessions *CounterVec
	// TenantQueueWait breaks queue wait down per tenant, in seconds.
	TenantQueueWait *HistogramVec
	// TenantRunDuration breaks run latency down per tenant, in seconds.
	TenantRunDuration *HistogramVec
}

// Job-server metric names, exported so tests and the CI smoke check
// assert against one source of truth.
const (
	MetricJobsByState      = "dpreverser_jobs_by_state"
	MetricJobsFinished     = "dpreverser_jobs_finished_total"
	MetricQueueDepth       = "dpreverser_job_queue_depth"
	MetricTenantAdmissions = "dpreverser_tenant_admissions_total"
	MetricTenantRejections = "dpreverser_tenant_rejections_total"
	MetricJobQueueWait     = "dpreverser_job_queue_wait_seconds"
	MetricJobRunDuration   = "dpreverser_job_run_seconds"
	MetricStreamSessions   = "dpreverser_stream_sessions_total"

	MetricTenantQueueWait   = "dpreverser_tenant_job_queue_wait_seconds"
	MetricTenantRunDuration = "dpreverser_tenant_job_run_seconds"
)

// NewJobServerMetrics registers the job-server metric set on reg. A nil
// registry yields a JobServerMetrics whose every operation is a no-op.
func NewJobServerMetrics(reg *Registry) *JobServerMetrics {
	m := &JobServerMetrics{}
	if reg == nil {
		return m
	}
	m.JobsByState = reg.GaugeVec(MetricJobsByState,
		"jobs currently in each lifecycle state", "state")
	m.JobsFinished = reg.CounterVec(MetricJobsFinished,
		"jobs reaching each terminal state", "state")
	m.QueueDepth = reg.GaugeVec(MetricQueueDepth,
		"queued jobs per shard", "shard")
	m.TenantAdmissions = reg.CounterVec(MetricTenantAdmissions,
		"accepted job submissions per tenant", "tenant")
	m.TenantRejections = reg.CounterVec(MetricTenantRejections,
		"refused job submissions per tenant and reason", "tenant", "reason")
	m.QueueWait = reg.Histogram(MetricJobQueueWait,
		"job queue wait in seconds (injected clock)", nil)
	m.RunDuration = reg.Histogram(MetricJobRunDuration,
		"per-job pipeline wall time in seconds (injected clock)", nil)
	m.StreamSessions = reg.CounterVec(MetricStreamSessions,
		"canbridge ingest sessions by outcome", "outcome")
	m.TenantQueueWait = reg.HistogramVec(MetricTenantQueueWait,
		"per-tenant job queue wait in seconds (injected clock)", nil, "tenant")
	m.TenantRunDuration = reg.HistogramVec(MetricTenantRunDuration,
		"per-tenant pipeline wall time in seconds (injected clock)", nil, "tenant")
	return m
}
