package telemetry

import (
	"sort"
	"sync"
	"time"
)

// SLO tracks one latency objective ("queue wait under 5s", "run under
// 2m") as good/bad counters plus multi-window burn-rate gauges. Every
// observation is classified against the objective; the burn rate over a
// window is the bad fraction within that window divided by the error
// budget (1 - target), so burn 1.0 means "spending budget exactly at the
// sustainable rate" and burn >> 1 means "paging soon". Time comes from
// the injected Clock, so tests drive burn windows with a ManualClock.

// SLO metric names, exported for tests and the CI smoke check.
const (
	// MetricSLOJobs counts observations per objective and verdict
	// (labels: slo, verdict=good|bad).
	MetricSLOJobs = "dpreverser_slo_jobs_total"
	// MetricSLOBurn gauges the burn rate per objective and window
	// (labels: slo, window).
	MetricSLOBurn = "dpreverser_slo_burn_rate"
)

// SLOWindows are the burn-rate evaluation windows, shortest first — the
// classic fast/slow pair for multi-window alerting.
var SLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloSampleCap bounds the per-SLO timestamped sample ring; at the
// default windows this covers hours of steady load without growing.
const sloSampleCap = 4096

// sloSample is one classified observation.
type sloSample struct {
	at   time.Duration
	good bool
}

// SLO is one tracked latency objective. Methods are nil-receiver safe.
type SLO struct {
	name      string
	objective time.Duration
	target    float64

	clock Clock
	good  *Counter
	bad   *Counter
	burn  []*Gauge // parallel to SLOWindows

	mu      sync.Mutex
	samples []sloSample // ring, bounded by sloSampleCap
	start   int
}

// NewSLO registers an objective named name (e.g. "queue-wait"): latency
// observations at or under objective are good; target is the good
// fraction the objective promises (e.g. 0.99). A nil registry still
// returns a functional SLO whose metric writes are no-ops.
func NewSLO(reg *Registry, clock Clock, name string, objective time.Duration, target float64) *SLO {
	if clock == nil {
		clock = NewWallClock()
	}
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	s := &SLO{name: name, objective: objective, target: target, clock: clock}
	jobs := reg.CounterVec(MetricSLOJobs,
		"SLO observations per objective and verdict", "slo", "verdict")
	s.good = jobs.With(name, "good")
	s.bad = jobs.With(name, "bad")
	burn := reg.GaugeVec(MetricSLOBurn,
		"SLO burn rate per objective and window (bad fraction over error budget)", "slo", "window")
	for _, w := range SLOWindows {
		s.burn = append(s.burn, burn.With(name, w.String()))
	}
	return s
}

// Name returns the objective's name.
func (s *SLO) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Objective returns the latency bound.
func (s *SLO) Objective() time.Duration {
	if s == nil {
		return 0
	}
	return s.objective
}

// Target returns the promised good fraction.
func (s *SLO) Target() float64 {
	if s == nil {
		return 0
	}
	return s.target
}

// Observe classifies one latency observation, updates the counters, and
// refreshes the burn gauges.
func (s *SLO) Observe(d time.Duration) {
	if s == nil {
		return
	}
	good := d <= s.objective
	if good {
		s.good.Inc()
	} else {
		s.bad.Inc()
	}
	now := s.clock.Now()
	s.mu.Lock()
	if len(s.samples) < sloSampleCap {
		s.samples = append(s.samples, sloSample{at: now, good: good})
	} else {
		s.samples[s.start] = sloSample{at: now, good: good}
		s.start = (s.start + 1) % sloSampleCap
	}
	s.mu.Unlock()
	s.Sample()
}

// Burn returns the burn rate over the given window: the bad fraction of
// observations newer than now-window, divided by the error budget. No
// observations in the window means zero burn.
func (s *SLO) Burn(window time.Duration) float64 {
	if s == nil {
		return 0
	}
	now := s.clock.Now()
	cutoff := now - window
	var good, bad int
	s.mu.Lock()
	for i := 0; i < len(s.samples); i++ {
		smp := s.samples[(s.start+i)%len(s.samples)]
		if smp.at < cutoff {
			continue
		}
		if smp.good {
			good++
		} else {
			bad++
		}
	}
	s.mu.Unlock()
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.target)
}

// Sample recomputes the burn gauges for every window. The job server
// calls this on each scrape/status render, so burn decays as bad
// observations age out even when no new jobs arrive.
func (s *SLO) Sample() {
	if s == nil {
		return
	}
	for i, w := range SLOWindows {
		s.burn[i].Set(s.Burn(w))
	}
}

// SLOStatus is one objective's state for the status surface.
type SLOStatus struct {
	Name        string             `json:"name"`
	ObjectiveMS float64            `json:"objective_ms"`
	Target      float64            `json:"target"`
	Good        uint64             `json:"good"`
	Bad         uint64             `json:"bad"`
	Burn        map[string]float64 `json:"burn"` // window → burn rate
}

// Status snapshots the objective, refreshing the burn gauges as a side
// effect.
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	s.Sample()
	st := SLOStatus{
		Name:        s.name,
		ObjectiveMS: float64(s.objective.Microseconds()) / 1e3,
		Target:      s.target,
		Good:        uint64(s.good.Value()),
		Bad:         uint64(s.bad.Value()),
		Burn:        make(map[string]float64, len(SLOWindows)),
	}
	for _, w := range SLOWindows {
		st.Burn[w.String()] = s.Burn(w)
	}
	return st
}

// SortedBurnWindows returns the window labels in ascending order — the
// stable column order for dashboards.
func SortedBurnWindows() []string {
	ws := make([]time.Duration, len(SLOWindows))
	copy(ws, SLOWindows)
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.String()
	}
	return out
}
