package telemetry

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIConfig carries the standard command-line telemetry settings shared by
// the repo's binaries: the optional HTTP listener and the exit dumps.
type CLIConfig struct {
	Addr       string // -telemetry-addr
	MetricsOut string // -metrics-out
	TraceOut   string // -trace-out
	LogFormat  string // -log-format: "", "text" or "json"
	LogLevel   string // -log-level: debug|info|warn|error
}

// RegisterFlags installs the standard telemetry flags on fs and returns
// the config they fill in.
func RegisterFlags(fs *flag.FlagSet) *CLIConfig {
	c := &CLIConfig{}
	fs.StringVar(&c.Addr, "telemetry-addr", "",
		"serve /metrics, /trace and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	fs.StringVar(&c.MetricsOut, "metrics-out", "",
		"write a JSON metrics dump to this file at exit")
	fs.StringVar(&c.TraceOut, "trace-out", "",
		"write a chrome://tracing JSON trace to this file at exit")
	fs.StringVar(&c.LogFormat, "log-format", "",
		"emit structured logs to stderr in this format (text or json; empty disables)")
	fs.StringVar(&c.LogLevel, "log-level", "info",
		"minimum structured-log level (debug, info, warn or error)")
	return c
}

// Enabled reports whether any telemetry flag was set.
func (c *CLIConfig) Enabled() bool {
	return c != nil && (c.Addr != "" || c.MetricsOut != "" || c.TraceOut != "" || c.LogFormat != "")
}

// BuildLogger constructs the stderr logger the -log-format / -log-level
// flags call for, reading time from clock (nil = wall clock). An empty
// LogFormat yields a nil logger (every method a no-op).
func (c *CLIConfig) BuildLogger(clock Clock) (*Logger, error) {
	if c == nil || c.LogFormat == "" {
		return nil, nil
	}
	var sink Sink
	switch c.LogFormat {
	case "text":
		sink = NewTextSink(os.Stderr)
	case "json":
		sink = NewJSONSink(os.Stderr)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", c.LogFormat)
	}
	lvl, err := ParseLevel(c.LogLevel)
	if err != nil {
		return nil, err
	}
	return NewLogger(clock, sink).WithLevel(lvl), nil
}

// Activate builds the Provider the flags call for — nil when no flag was
// set, which keeps instrumented code on its no-op path — starts the HTTP
// listener when -telemetry-addr was given, and returns a flush function
// that writes the -metrics-out / -trace-out dumps and stops the listener.
// logf, when non-nil, receives human-readable status lines.
func (c *CLIConfig) Activate(logf func(format string, args ...any)) (*Provider, func() error, error) {
	if !c.Enabled() {
		return nil, func() error { return nil }, nil
	}
	p := New(nil)
	log, err := c.BuildLogger(p.Clock)
	if err != nil {
		return nil, nil, err
	}
	p.Logger = log
	var srv *Server
	if c.Addr != "" {
		s, addr, err := Serve(c.Addr, p.Metrics, p.Tracer)
		if err != nil {
			return nil, nil, err
		}
		srv = s
		if logf != nil {
			logf("telemetry: serving /metrics, /trace and /debug/pprof on http://%s", addr)
		}
	}
	flush := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if c.MetricsOut != "" {
			keep(writeFileDump(c.MetricsOut, p.Metrics.WriteJSON))
		}
		if c.TraceOut != "" {
			keep(writeFileDump(c.TraceOut, p.Tracer.WriteChromeTrace))
		}
		if srv != nil {
			keep(srv.Close())
			srv.Wait()
		}
		return firstErr
	}
	return p, flush, nil
}

// writeFileDump writes one exporter's output to a file.
func writeFileDump(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
