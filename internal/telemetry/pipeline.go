package telemetry

// PipelineMetrics is the named metric set the DP-Reverser pipeline
// increments. Names and label schemas live here — one home for the table
// DESIGN.md documents — so the reverser, the GP engine adapter and the
// CLIs cannot drift apart. Every field is nil when built against a nil
// registry, and every metric method is nil-safe, so an uninstrumented
// pipeline pays only dead branches.
type PipelineMetrics struct {
	// RunsTotal counts completed (*Reverser).Reverse calls.
	RunsTotal *Counter
	// FramesTotal counts raw CAN frames fed to payload assembly.
	FramesTotal *Counter
	// MessagesAssembled counts application messages reassembled across all
	// transports.
	MessagesAssembled *Counter
	// TransportErrors counts reassembly failures by transport
	// (isotp|vwtp|bmwtp) and reason (the transport packages' Reason
	// classification: bad-sequence, unexpected-frame, ...).
	TransportErrors *CounterVec
	// ESVObservations and ECRObservations count extracted field
	// observations (read-data responses paired to requests, IO-control
	// exchanges).
	ESVObservations *Counter
	ECRObservations *Counter
	// StreamsExtracted counts prepared inference streams by kind
	// (formula-candidate|enum|under-sampled).
	StreamsExtracted *CounterVec
	// ESVsReversed counts pipeline outputs by result kind
	// (formula|enum|under-sampled).
	ESVsReversed *CounterVec
	// ECRsRecovered counts recovered actuator-control records.
	ECRsRecovered *Counter
	// GPEvaluations/GPCacheHits/GPCacheMisses mirror the GP engine's
	// fitness-scoring counters (Evaluations = CacheHits + CacheMisses);
	// they reconcile exactly with Result.Evaluations/CacheHits.
	GPEvaluations *Counter
	GPCacheHits   *Counter
	GPCacheMisses *Counter
	// GPGenerations counts GP generations run across all streams.
	GPGenerations *Counter
	// StageDuration observes per-stage wall time
	// (assemble|extract|align|streams|infer|controls), in seconds, read
	// from the injected Clock.
	StageDuration *HistogramVec
	// StreamDuration observes per-stream inference wall time in seconds.
	StreamDuration *Histogram
	// DegradedStreams counts streams reported on Result.Degraded, by the
	// pipeline stage that damaged them (assemble|pairing|infer|attack).
	DegradedStreams *CounterVec
	// AttackSignatures counts classified transport-layer attack findings
	// by attack class (flow-control-starvation|first-frame-flood|
	// interleaved-transfer|session-starvation|slow-drip).
	AttackSignatures *CounterVec
}

// Pipeline metric names, exported so tests and the CI smoke check assert
// against one source of truth.
const (
	MetricRuns              = "dpreverser_runs_total"
	MetricFrames            = "dpreverser_can_frames_total"
	MetricMessagesAssembled = "dpreverser_messages_assembled_total"
	MetricTransportErrors   = "dpreverser_transport_errors_total"
	MetricESVObservations   = "dpreverser_esv_observations_total"
	MetricECRObservations   = "dpreverser_ecr_observations_total"
	MetricStreamsExtracted  = "dpreverser_streams_extracted_total"
	MetricESVsReversed      = "dpreverser_esvs_reversed_total"
	MetricECRsRecovered     = "dpreverser_ecrs_recovered_total"
	MetricGPEvaluations     = "dpreverser_gp_evaluations_total"
	MetricGPCacheHits       = "dpreverser_gp_cache_hits_total"
	MetricGPCacheMisses     = "dpreverser_gp_cache_misses_total"
	MetricGPGenerations     = "dpreverser_gp_generations_total"
	MetricStageDuration     = "dpreverser_stage_duration_seconds"
	MetricStreamDuration    = "dpreverser_stream_inference_duration_seconds"
	MetricDegradedStreams   = "dpreverser_degraded_streams_total"
	MetricAttackSignatures  = "dpreverser_attack_signatures_total"
	// MetricFaultsInjected is registered by the fault injector
	// (internal/faults), not by the pipeline, but the name lives here with
	// the rest of the schema.
	MetricFaultsInjected = "dpreverser_faults_injected_total"
	// MetricAppsScanned and MetricAppFormulas are registered by the
	// telematics-app scanner (cmd/appscan); the names live here with the
	// rest of the schema.
	MetricAppsScanned = "dpreverser_apps_scanned_total"
	MetricAppFormulas = "dpreverser_app_formulas_total"
)

// NewPipelineMetrics registers the pipeline metric set on reg. A nil
// registry yields a PipelineMetrics whose every operation is a no-op.
func NewPipelineMetrics(reg *Registry) *PipelineMetrics {
	m := &PipelineMetrics{}
	if reg == nil {
		return m
	}
	m.RunsTotal = reg.Counter(MetricRuns, "completed Reverse pipeline runs")
	m.FramesTotal = reg.Counter(MetricFrames, "raw CAN frames fed to payload assembly")
	m.MessagesAssembled = reg.Counter(MetricMessagesAssembled, "application messages reassembled")
	m.TransportErrors = reg.CounterVec(MetricTransportErrors,
		"transport reassembly failures by transport and reason", "transport", "reason")
	m.ESVObservations = reg.Counter(MetricESVObservations, "extracted ESV field observations")
	m.ECRObservations = reg.Counter(MetricECRObservations, "extracted IO-control observations")
	m.StreamsExtracted = reg.CounterVec(MetricStreamsExtracted,
		"prepared inference streams by kind", "kind")
	m.ESVsReversed = reg.CounterVec(MetricESVsReversed,
		"reversed ECU signal values by result kind", "kind")
	m.ECRsRecovered = reg.Counter(MetricECRsRecovered, "recovered ECU control records")
	m.GPEvaluations = reg.Counter(MetricGPEvaluations, "GP fitness evaluations requested")
	m.GPCacheHits = reg.Counter(MetricGPCacheHits, "GP fitness evaluations served by the cross-generation cache")
	m.GPCacheMisses = reg.Counter(MetricGPCacheMisses, "GP fitness evaluations run on the compiled VM")
	m.GPGenerations = reg.Counter(MetricGPGenerations, "GP generations evolved across all streams")
	m.StageDuration = reg.HistogramVec(MetricStageDuration,
		"pipeline stage wall time in seconds (injected clock)", nil, "stage")
	m.StreamDuration = reg.Histogram(MetricStreamDuration,
		"per-stream formula inference wall time in seconds (injected clock)", nil)
	m.DegradedStreams = reg.CounterVec(MetricDegradedStreams,
		"streams reported degraded, by damaging stage", "stage")
	m.AttackSignatures = reg.CounterVec(MetricAttackSignatures,
		"classified transport-layer attack signatures by class", "class")
	return m
}
