package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLoggerLevelsAndAttrs(t *testing.T) {
	clock := NewManualClock(0)
	ring := NewRingSink(16)
	log := NewLogger(clock, ring)

	log.Debug("dropped-below-threshold")
	log.Info("hello", String("k", "v"))
	clock.Advance(time.Millisecond)
	log.Warn("uh-oh")
	log.Error("boom", Int("code", 7))

	recs, dropped := ring.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (debug filtered at default level): %+v", len(recs), recs)
	}
	if recs[0].Msg != "hello" || recs[0].Level != LevelInfo || recs[0].At != 0 {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[1].At != time.Millisecond {
		t.Errorf("second record At = %v, want 1ms", recs[1].At)
	}
	if got := recs[2].Attrs; len(got) != 1 || got[0].Key != "code" || got[0].Value != "7" {
		t.Errorf("error record attrs = %+v", got)
	}

	dbg := log.WithLevel(LevelDebug)
	dbg.Debug("now-visible")
	if recs, _ := ring.Snapshot(); len(recs) != 4 {
		t.Fatalf("debug record not emitted after WithLevel: %d records", len(recs))
	}
}

func TestLoggerWithBindsCorrelationContext(t *testing.T) {
	clock := NewManualClock(0)
	ring := NewRingSink(8)
	base := NewLogger(clock, ring)
	job := base.With(String("tenant", "acme"), String("job", "j-1"))
	stream := job.With(String("stream", "0x7E8"))

	stream.Info("stage-done", String("stage", "align"))
	job.Info("job-finished")

	recs, _ := ring.Snapshot()
	wantFirst := []Attr{
		{Key: "tenant", Value: "acme"}, {Key: "job", Value: "j-1"},
		{Key: "stream", Value: "0x7E8"}, {Key: "stage", Value: "align"},
	}
	if fmt.Sprint(recs[0].Attrs) != fmt.Sprint(wantFirst) {
		t.Errorf("bound attrs out of order: %+v", recs[0].Attrs)
	}
	// Deriving stream must not have mutated the parent job logger.
	if fmt.Sprint(recs[1].Attrs) != fmt.Sprint([]Attr{{Key: "tenant", Value: "acme"}, {Key: "job", Value: "j-1"}}) {
		t.Errorf("parent logger contaminated by child With: %+v", recs[1].Attrs)
	}
}

func TestLoggerTeeFansOut(t *testing.T) {
	clock := NewManualClock(0)
	var buf bytes.Buffer
	ring := NewRingSink(4)
	log := NewLogger(clock, NewJSONSink(&buf)).Tee(ring)
	log.Info("fan-out", String("k", "v"))

	want := `{"at_us":0,"level":"info","msg":"fan-out","k":"v"}` + "\n"
	if buf.String() != want {
		t.Errorf("json sink line = %q, want %q", buf.String(), want)
	}
	if recs, _ := ring.Snapshot(); len(recs) != 1 {
		t.Errorf("ring missed teed record")
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored", String("k", "v"))
	l = l.With(String("a", "b")).Tee(NewRingSink(1)).WithLevel(LevelDebug)
	if l != nil {
		t.Fatalf("nil logger derivations should stay nil")
	}
	l.Error("still ignored")
}

func TestTextRendering(t *testing.T) {
	r := Record{At: 1500 * time.Millisecond, Level: LevelWarn, Msg: "odd values",
		Attrs: []Attr{{Key: "plain", Value: "x"}, {Key: "spaced", Value: "a b"}, {Key: "empty", Value: ""}}}
	got := r.Text()
	want := `[1.500000] warn odd values plain=x spaced="a b" empty=""`
	if got != want {
		t.Errorf("Text() = %q, want %q", got, want)
	}
}

func TestRingSinkEvictionOrder(t *testing.T) {
	ring := NewRingSink(3)
	for i := 0; i < 5; i++ {
		ring.Emit(Record{At: time.Duration(i), Msg: fmt.Sprintf("m%d", i)})
	}
	recs, dropped := ring.Snapshot()
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2", dropped)
	}
	var msgs []string
	for _, r := range recs {
		msgs = append(msgs, r.Msg)
	}
	if got := strings.Join(msgs, ","); got != "m2,m3,m4" {
		t.Errorf("retained = %s, want m2,m3,m4 (oldest evicted first)", got)
	}
}

func TestRingSinkDumpJSONCanonicalOrder(t *testing.T) {
	// Two rings receive the same record multiset in different arrival
	// orders; their dumps must be byte-identical.
	recs := []Record{
		{At: 2 * time.Millisecond, Level: LevelInfo, Msg: "b"},
		{At: time.Millisecond, Level: LevelWarn, Msg: "c", Attrs: []Attr{{Key: "k", Value: "1"}}},
		{At: time.Millisecond, Level: LevelInfo, Msg: "a"},
		{At: time.Millisecond, Level: LevelWarn, Msg: "c", Attrs: []Attr{{Key: "k", Value: "0"}}},
	}
	a, b := NewRingSink(8), NewRingSink(8)
	for _, r := range recs {
		a.Emit(r)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		b.Emit(recs[i])
	}
	var da, db bytes.Buffer
	if err := a.DumpJSON(&da); err != nil {
		t.Fatal(err)
	}
	if err := b.DumpJSON(&db); err != nil {
		t.Fatal(err)
	}
	if da.String() != db.String() {
		t.Errorf("dumps differ:\n%s\nvs\n%s", da.String(), db.String())
	}
	wantFirst := `{"at_us":1000,"level":"info","msg":"a"}`
	if !strings.HasPrefix(da.String(), wantFirst) {
		t.Errorf("dump not canonically sorted; starts %q, want %q", da.String()[:50], wantFirst)
	}
}

func TestWriterSinkConcurrentLines(t *testing.T) {
	var buf bytes.Buffer
	sink := NewTextSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sink.Emit(Record{Msg: fmt.Sprintf("w%d-%d", i, j)})
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "[0.000000] debug w") {
			t.Fatalf("mangled line %q", l)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{"debug": LevelDebug, "": LevelInfo, "warn": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}

func TestMillisAttr(t *testing.T) {
	if a := Millis("ms", 1234567*time.Microsecond); a.Value != "1234.567" {
		t.Errorf("Millis = %q, want 1234.567", a.Value)
	}
}

// TestRecordJSONRoundTrip checks UnmarshalJSON inverts the deterministic
// renderer, attribute order included.
func TestRecordJSONRoundTrip(t *testing.T) {
	in := Record{
		At: 1500 * time.Microsecond, Level: LevelWarn, Msg: "round trip",
		Attrs: []Attr{String("tenant", "acme"), Int("shard", 3), String("z", "a b")},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Record
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("round trip changed the record:\n %s\n %s", raw, raw2)
	}
	if out.At != in.At || out.Level != in.Level || len(out.Attrs) != 3 {
		t.Fatalf("round trip = %+v", out)
	}
	if err := json.Unmarshal([]byte(`[1]`), &out); err == nil {
		t.Fatal("non-object record unmarshalled")
	}
	if err := json.Unmarshal([]byte(`{"level":"loud"}`), &out); err == nil {
		t.Fatal("unknown level unmarshalled")
	}
}
