package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSLOCountsGoodAndBad(t *testing.T) {
	reg := NewRegistry()
	clock := NewManualClock(0)
	slo := NewSLO(reg, clock, "queue-wait", 5*time.Second, 0.9)

	for i := 0; i < 9; i++ {
		slo.Observe(time.Second)
	}
	slo.Observe(time.Minute)

	st := slo.Status()
	if st.Good != 9 || st.Bad != 1 {
		t.Fatalf("good/bad = %d/%d, want 9/1", st.Good, st.Bad)
	}
	// 10% bad over a 10% error budget → burn exactly 1.0 in every window.
	for w, b := range st.Burn {
		if math.Abs(b-1.0) > 1e-9 {
			t.Errorf("burn[%s] = %g, want 1.0", w, b)
		}
	}

	var dump strings.Builder
	if err := reg.WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		MetricSLOJobs + `{slo="queue-wait",verdict="good"} 9`,
		MetricSLOJobs + `{slo="queue-wait",verdict="bad"} 1`,
		MetricSLOBurn + `{slo="queue-wait",window="5m0s"} 1`,
	} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("prometheus dump missing %q", want)
		}
	}
}

func TestSLOBurnDecaysAsSamplesAge(t *testing.T) {
	clock := NewManualClock(0)
	slo := NewSLO(NewRegistry(), clock, "run", time.Second, 0.99)

	slo.Observe(time.Minute) // bad at t=0
	if b := slo.Burn(5 * time.Minute); math.Abs(b-100) > 1e-9 {
		t.Fatalf("burn = %g, want 100 (all-bad over 1%% budget)", b)
	}

	// Age the bad sample out of the 5m window; fresh good samples remain.
	clock.Advance(6 * time.Minute)
	slo.Observe(time.Millisecond)
	if b := slo.Burn(5 * time.Minute); b != 0 {
		t.Errorf("short-window burn = %g, want 0 after bad sample aged out", b)
	}
	if b := slo.Burn(time.Hour); math.Abs(b-50) > 1e-9 {
		t.Errorf("long-window burn = %g, want 50 (1 bad of 2 over 1%% budget)", b)
	}
}

func TestSLOSampleRingBounded(t *testing.T) {
	clock := NewManualClock(0)
	slo := NewSLO(NewRegistry(), clock, "x", time.Second, 0.99)
	for i := 0; i < sloSampleCap+100; i++ {
		slo.Observe(time.Millisecond)
	}
	slo.mu.Lock()
	n := len(slo.samples)
	slo.mu.Unlock()
	if n != sloSampleCap {
		t.Fatalf("sample ring grew to %d, want bound %d", n, sloSampleCap)
	}
}

func TestSLONilRegistryStillClassifies(t *testing.T) {
	slo := NewSLO(nil, NewManualClock(0), "x", time.Second, 0.5)
	slo.Observe(2 * time.Second)
	if b := slo.Burn(time.Hour); math.Abs(b-2) > 1e-9 {
		t.Errorf("burn = %g, want 2 (all-bad over 50%% budget)", b)
	}
	var nilSLO *SLO
	nilSLO.Observe(time.Second)
	nilSLO.Sample()
	if nilSLO.Burn(time.Minute) != 0 || nilSLO.Status().Name != "" {
		t.Error("nil SLO not inert")
	}
}

func TestRuntimeMetricsSample(t *testing.T) {
	reg := NewRegistry()
	rm := NewRuntimeMetrics(reg)
	s := rm.Sample()
	if s.Goroutines < 1 || s.HeapAlloc == 0 {
		t.Fatalf("implausible runtime sample %+v", s)
	}
	var dump strings.Builder
	if err := reg.WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		MetricRuntimeGoroutines, MetricRuntimeHeapAlloc, MetricRuntimeHeapObjects,
		MetricRuntimeGCPauseTotal, MetricRuntimeGCCycles,
	} {
		if !strings.Contains(dump.String(), "# TYPE "+fam+" gauge") {
			t.Errorf("dump missing runtime family %s", fam)
		}
	}
	var nilRM *RuntimeMetrics
	if s := nilRM.Sample(); s.Goroutines < 1 {
		t.Error("nil RuntimeMetrics sample should still read the runtime")
	}
}

func TestNameFilter(t *testing.T) {
	q := map[string][]string{"family": {"a_total"}, "prefix": {"dp_"}}
	keep := NameFilter(q)
	for name, want := range map[string]bool{"a_total": true, "dp_x": true, "b_total": false} {
		if keep(name) != want {
			t.Errorf("keep(%q) = %v, want %v", name, keep(name), want)
		}
	}
	if NameFilter(map[string][]string{}) != nil {
		t.Error("empty query should produce nil filter")
	}
}
