package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanHierarchyAndTiming(t *testing.T) {
	clk := NewManualClock(0)
	tr := NewTracer(clk)

	root := tr.Start("run", String("car", "Car A"))
	clk.Advance(10 * time.Millisecond)
	stage := root.Child("stage", Int("n", 1))
	clk.Advance(5 * time.Millisecond)
	stage.End()
	clk.Advance(time.Millisecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	r, s := spans[0], spans[1]
	if r.Name != "run" || s.Name != "stage" {
		t.Fatalf("order = %q, %q", r.Name, s.Name)
	}
	if s.Parent != r.ID {
		t.Fatalf("stage parent = %d, want %d", s.Parent, r.ID)
	}
	if s.Lane != r.Lane {
		t.Fatalf("Child must inherit the lane: %d vs %d", s.Lane, r.Lane)
	}
	if r.Start != 0 || r.End != 16*time.Millisecond {
		t.Fatalf("root timing = [%v, %v]", r.Start, r.End)
	}
	if s.Start != 10*time.Millisecond || s.End != 15*time.Millisecond {
		t.Fatalf("stage timing = [%v, %v]", s.Start, s.End)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != (Attr{"car", "Car A"}) {
		t.Fatalf("root attrs = %v", r.Attrs)
	}
}

func TestChildLaneGetsOwnLane(t *testing.T) {
	tr := NewTracer(NewManualClock(0))
	root := tr.Start("run")
	a := root.ChildLane("stream-a")
	b := root.ChildLane("stream-b")
	a.End()
	b.End()
	root.End()
	spans := tr.Spans()
	lanes := map[int64]bool{}
	for _, s := range spans {
		lanes[s.Lane] = true
	}
	if len(lanes) != 3 {
		t.Fatalf("want 3 distinct lanes, got %d (%+v)", len(lanes), spans)
	}
}

func TestChildFromBackdatesStart(t *testing.T) {
	clk := NewManualClock(0)
	tr := NewTracer(clk)
	root := tr.Start("run")
	clk.Advance(20 * time.Millisecond)
	gen := root.ChildFrom("generation", 5*time.Millisecond, Int("gen", 3))
	gen.End()
	root.End()
	spans := tr.Spans()
	if spans[1].Start != 5*time.Millisecond || spans[1].End != 20*time.Millisecond {
		t.Fatalf("generation timing = [%v, %v]", spans[1].Start, spans[1].End)
	}
}

func TestEndIsIdempotentAndNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x") // nil tracer -> nil span
	sp.End()
	sp.SetAttr(String("k", "v"))
	if sp.Child("y") != nil || sp.ChildLane("z") != nil {
		t.Fatal("children of a nil span must be nil")
	}

	real := NewTracer(NewManualClock(0))
	s := real.Start("once")
	s.End()
	s.End()
	if got := len(real.Spans()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

func TestChromeTraceOutput(t *testing.T) {
	clk := NewManualClock(0)
	tr := NewTracer(clk)
	root := tr.Start("run")
	clk.Advance(time.Millisecond)
	st := root.Child("stage", String("stage", "assemble"))
	clk.Advance(2 * time.Millisecond)
	st.End()
	root.End()

	var b bytes.Buffer
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	stage := doc.TraceEvents[1]
	if stage.Ph != "X" || stage.Ts != 1000 || stage.Dur != 2000 {
		t.Fatalf("stage event = %+v", stage)
	}
	if stage.Args["stage"] != "assemble" {
		t.Fatalf("stage args = %v", stage.Args)
	}

	// A nil tracer still writes a valid document.
	var nilTr *Tracer
	b.Reset()
	if err := nilTr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer trace does not parse: %v", err)
	}
}
