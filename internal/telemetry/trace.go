package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer records hierarchical spans: run → stage → stream → GP
// generation. Spans nest by parent ID and are grouped into lanes — a lane
// maps onto one chrome://tracing thread row, so concurrent streams render
// side by side instead of stacking incorrectly.
//
// All methods are safe on a nil *Tracer and nil *Span (no-ops returning
// nil), so instrumented code calls unconditionally.
type Tracer struct {
	clock Clock

	mu     sync.Mutex
	spans  []SpanData
	nextID int64
}

// SpanData is one finished span.
type SpanData struct {
	// ID and Parent identify the span in the hierarchy (Parent 0 = root).
	ID, Parent int64
	// Lane groups spans that must not overlap on one display row; root
	// spans and ChildLane spans start fresh lanes.
	Lane  int64
	Name  string
	Start time.Duration
	End   time.Duration
	Attrs []Attr
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Span is an in-flight span. End publishes it to the tracer.
type Span struct {
	t    *Tracer
	data SpanData

	mu    sync.Mutex
	ended bool
}

// NewTracer returns a tracer reading time from clock (nil = wall clock).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Tracer{clock: clock}
}

func (t *Tracer) newSpan(name string, parent, lane int64, start time.Duration, attrs []Attr) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	if lane == 0 {
		lane = id
	}
	return &Span{t: t, data: SpanData{
		ID: id, Parent: parent, Lane: lane, Name: name,
		Start: start, Attrs: attrs,
	}}
}

// Start opens a root span in its own lane.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, 0, t.clock.Now(), attrs)
}

// Child opens a sub-span in the parent's lane.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.data.ID, s.data.Lane, s.t.clock.Now(), attrs)
}

// ChildLane opens a sub-span in a fresh lane — for work that runs
// concurrently with its siblings (per-stream inference workers).
func (s *Span) ChildLane(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.data.ID, 0, s.t.clock.Now(), attrs)
}

// ChildFrom opens a sub-span with an explicit start instant, for callers
// that mark a boundary first and materialise the span at its end (the GP
// generation observer).
func (s *Span) ChildFrom(name string, start time.Duration, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.data.ID, s.data.Lane, start, attrs)
}

// ID returns the span's tracer-unique identifier (0 for a nil span) —
// what log records carry to correlate with the trace dump.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.data.ID
}

// SetAttr adds an annotation to an unfinished span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// End stamps the span's end time and publishes it. Multiple Ends are
// idempotent; only the first counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = s.t.clock.Now()
	data := s.data
	s.mu.Unlock()

	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, data)
	s.t.mu.Unlock()
}

// Spans snapshots the finished spans, ordered by (start, ID) so the
// result is stable for a frozen clock.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one chrome://tracing "complete" event.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the finished spans as a chrome://tracing (or
// https://ui.perfetto.dev) compatible JSON document: one complete ("X")
// event per span, lanes mapped to thread IDs so parallel streams get
// their own rows.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return t.WriteChromeTraceFiltered(w, nil)
}

// WriteChromeTraceFiltered is WriteChromeTrace restricted to spans whose
// name keep accepts (nil keep means all) — the ?family=/?prefix= query
// filter behind /trace.
func (t *Tracer) WriteChromeTraceFiltered(w io.Writer, keep func(name string) bool) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if keep != nil && !keep(s.Name) {
			continue
		}
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start) / float64(time.Microsecond),
			Dur: float64(s.End-s.Start) / float64(time.Microsecond),
			Pid: 1, Tid: s.Lane,
		}
		if len(s.Attrs) > 0 {
			ev.Args = map[string]string{}
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
