package telemetry

import (
	"sync"
	"time"
)

// Clock is the injectable time source every telemetry consumer reads.
// Now reports a monotonic offset from an arbitrary per-clock epoch; only
// differences between readings are meaningful. This is the one sanctioned
// path to elapsed time in instrumented packages — the determinism linter
// flags direct time.Now/time.Since in any file that imports this package.
type Clock interface {
	Now() time.Duration
}

// wallClock reads the process monotonic clock relative to its construction
// instant.
type wallClock struct {
	base time.Time
}

// NewWallClock returns the real clock. This constructor is the single
// place the repo's production code touches the wall clock for telemetry;
// everything downstream sees only the Clock interface.
func NewWallClock() Clock {
	return &wallClock{base: time.Now()} //dplint:allow determinism the one sanctioned real-clock constructor
}

func (c *wallClock) Now() time.Duration {
	return time.Since(c.base) //dplint:allow determinism the one sanctioned real-clock constructor
}

// ManualClock is a settable clock for tests: it only moves when told to,
// so span durations and latency observations are exactly reproducible.
// The zero value is a clock at instant zero, ready to use.
type ManualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewManualClock returns a manual clock positioned at start.
func NewManualClock(start time.Duration) *ManualClock {
	return &ManualClock{now: start}
}

// Now reports the clock's current instant.
func (c *ManualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored: the
// timeline is monotonic).
func (c *ManualClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}
