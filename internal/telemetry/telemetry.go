// Package telemetry is the repo's observability subsystem: a hierarchical
// tracer, a zero-dependency metrics registry with Prometheus text and JSON
// exposition, and an HTTP server that mounts both next to net/http/pprof.
//
// Everything in this package reads time through the injected Clock
// interface, never through time.Now directly — NewWallClock (the one
// annotated real-clock constructor) is the only place the wall clock
// enters, so production pipelines stay dplint-clean and tests drive a
// ManualClock for byte-identical output. With a manual clock that never
// advances, two pipeline runs at different parallelism produce identical
// metric dumps: every counter is deterministic and every latency
// observation is zero.
//
// The pipeline-facing surface is Provider — one bundle of clock, registry
// and tracer handed to reverser.WithTelemetry and the CLIs — plus
// PipelineMetrics, the named metric set the pipeline increments (see
// DESIGN.md's metric-name table). All tracer, span and metric methods are
// nil-receiver safe, so instrumented code never branches on whether
// telemetry is enabled.
package telemetry

// Provider bundles the telemetry facilities a pipeline consumes.
// A nil *Provider disables telemetry entirely: the accessors return nil,
// and every nil tracer/metric/logger method is a no-op.
type Provider struct {
	// Clock is the time source for spans and latency histograms.
	Clock Clock
	// Metrics is the process-wide metric registry.
	Metrics *Registry
	// Tracer records hierarchical spans.
	Tracer *Tracer
	// Logger emits structured log records; usually carries correlation
	// attributes bound by the caller (see WithLogger).
	Logger *Logger
}

// New builds a fully enabled Provider. A nil clock means the wall clock
// (the usual CLI configuration); tests pass a ManualClock for determinism.
func New(clock Clock) *Provider {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Provider{Clock: clock, Metrics: NewRegistry(), Tracer: NewTracer(clock)}
}

// TracerOrNil returns the tracer, tolerating a nil provider.
func (p *Provider) TracerOrNil() *Tracer {
	if p == nil {
		return nil
	}
	return p.Tracer
}

// RegistryOrNil returns the registry, tolerating a nil provider.
func (p *Provider) RegistryOrNil() *Registry {
	if p == nil {
		return nil
	}
	return p.Metrics
}

// LoggerOrNil returns the logger, tolerating a nil provider.
func (p *Provider) LoggerOrNil() *Logger {
	if p == nil {
		return nil
	}
	return p.Logger
}

// WithLogger returns a shallow copy of the provider carrying l — how the
// job server hands each worker run a job-scoped logger while sharing the
// process registry and tracer. On a nil receiver it returns a provider
// holding only the logger.
func (p *Provider) WithLogger(l *Logger) *Provider {
	if p == nil {
		return &Provider{Logger: l}
	}
	d := *p
	d.Logger = l
	return &d
}
