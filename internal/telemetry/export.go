package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, one line per series,
// histograms as cumulative le-buckets plus _sum and _count. Families and
// series are sorted, so the output is byte-stable for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusFiltered(w, nil)
}

// WritePrometheusFiltered is WritePrometheus restricted to families for
// which keep returns true (nil keep means all) — the ?family=/?prefix=
// query filter behind /metrics.
func (r *Registry) WritePrometheusFiltered(w io.Writer, keep func(name string) bool) error {
	for _, f := range r.sortedFamilies() {
		if keep != nil && !keep(f.name) {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writePromSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, f *family, s any) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %s\n", promName(f.name, f.labelNames, m.vals, nil), formatFloat(m.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", promName(f.name, f.labelNames, m.vals, nil), formatFloat(m.Value()))
		return err
	case *Histogram:
		bounds, cum, sum, total := m.snapshot()
		for i, b := range bounds {
			le := []string{"le", formatFloat(b)}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				promName(f.name+"_bucket", f.labelNames, m.vals, le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			promName(f.name+"_bucket", f.labelNames, m.vals, []string{"le", "+Inf"}), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n",
			promName(f.name+"_sum", f.labelNames, m.vals, nil), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", promName(f.name+"_count", f.labelNames, m.vals, nil), total)
		return err
	}
	return nil
}

// promName renders name{label="value",...}; extra is an optional trailing
// key/value pair (the histogram le label).
func promName(name string, labels, values, extra []string) string {
	if len(labels) == 0 && extra == nil {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	first := true
	for i, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", l, escapeLabel(values[i]))
	}
	if extra != nil {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[0], escapeLabel(extra[1]))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	// %q already escapes backslash and quote; newlines become \n through it
	// too, so the only normalisation needed is none — but keep the helper
	// so the escaping rule has one home.
	return v
}

func escapeHelp(h string) string {
	return strings.NewReplacer("\\", "\\\\", "\n", "\\n").Replace(h)
}

// formatFloat renders floats the way Prometheus does: shortest
// round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONMetric is one family in the JSON dump.
type JSONMetric struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   string       `json:"kind"`
	Labels []string     `json:"labels,omitempty"`
	Series []JSONSeries `json:"series"`
}

// JSONSeries is one labeled series: a scalar value for counters and
// gauges, buckets/sum/count for histograms.
type JSONSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Count  *uint64           `json:"count,omitempty"`
	Sum    *float64          `json:"sum,omitempty"`
	// Buckets holds cumulative counts per upper bound; the final entry's
	// Le is "+Inf".
	Buckets []JSONBucket `json:"buckets,omitempty"`
}

// JSONBucket is one cumulative histogram bucket.
type JSONBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot returns the registry's current state in the JSON dump shape,
// deterministically ordered.
func (r *Registry) Snapshot() []JSONMetric {
	return r.SnapshotFiltered(nil)
}

// SnapshotFiltered is Snapshot restricted to families for which keep
// returns true (nil keep means all).
func (r *Registry) SnapshotFiltered(keep func(name string) bool) []JSONMetric {
	var out []JSONMetric
	for _, f := range r.sortedFamilies() {
		if keep != nil && !keep(f.name) {
			continue
		}
		jm := JSONMetric{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labelNames}
		for _, s := range f.sortedSeries() {
			jm.Series = append(jm.Series, jsonSeries(f, s))
		}
		out = append(out, jm)
	}
	return out
}

func jsonSeries(f *family, s any) JSONSeries {
	js := JSONSeries{}
	var vals []string
	switch m := s.(type) {
	case *Counter:
		v := m.Value()
		js.Value, vals = &v, m.vals
	case *Gauge:
		v := m.Value()
		js.Value, vals = &v, m.vals
	case *Histogram:
		bounds, cum, sum, total := m.snapshot()
		for i, b := range bounds {
			js.Buckets = append(js.Buckets, JSONBucket{Le: formatFloat(b), Count: cum[i]})
		}
		js.Buckets = append(js.Buckets, JSONBucket{Le: "+Inf", Count: total})
		js.Count, js.Sum, vals = &total, &sum, m.vals
	}
	if len(f.labelNames) > 0 {
		js.Labels = map[string]string{}
		for i, l := range f.labelNames {
			js.Labels[l] = vals[i]
		}
	}
	return js
}

// WriteJSON renders the registry as an indented JSON document:
// {"metrics": [...]}. Like the Prometheus writer it is fully sorted, so
// two registries in the same state dump byte-identically.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.WriteJSONFiltered(w, nil)
}

// WriteJSONFiltered is WriteJSON restricted to families for which keep
// returns true (nil keep means all).
func (r *Registry) WriteJSONFiltered(w io.Writer, keep func(name string) bool) error {
	doc := struct {
		Metrics []JSONMetric `json:"metrics"`
	}{Metrics: r.SnapshotFiltered(keep)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
