package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strings"
)

// NameFilter builds a keep predicate from ?family= (exact match,
// repeatable) and ?prefix= query parameters. With neither present it
// returns nil, meaning "keep everything". Exported so the job-server
// status surface applies the same filter semantics.
func NameFilter(q url.Values) func(name string) bool {
	families := q["family"]
	prefixes := q["prefix"]
	if len(families) == 0 && len(prefixes) == 0 {
		return nil
	}
	exact := make(map[string]bool, len(families))
	for _, f := range families {
		exact[f] = true
	}
	return func(name string) bool {
		if exact[name] {
			return true
		}
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
}

// NewMux builds the telemetry HTTP handler tree:
//
//	/metrics        Prometheus text exposition (scrape target)
//	/metrics.json   the same registry as a JSON document
//	/trace          chrome://tracing-compatible span dump
//	/debug/pprof/   the standard Go profiling endpoints
//
// Either argument may be nil; the corresponding endpoints then serve an
// empty document.
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "dpreverser telemetry\n\n"+
			"/metrics        Prometheus text format\n"+
			"/metrics.json   metrics as JSON\n"+
			"/trace          chrome://tracing span dump\n"+
			"/debug/pprof/   Go profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheusFiltered(w, NameFilter(r.URL.Query()))
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			fmt.Fprintln(w, `{"metrics":[]}`)
			return
		}
		reg.WriteJSONFiltered(w, NameFilter(r.URL.Query()))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr.WriteChromeTraceFiltered(w, NameFilter(r.URL.Query()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry listener: the embedded http.Server plus
// a join handle on its serve goroutine, so shutdown can wait for the
// accept loop to actually exit instead of leaking it.
type Server struct {
	*http.Server
	done chan struct{}
}

// Wait blocks until the serve loop has exited; it returns promptly after
// Close or Shutdown.
func (s *Server) Wait() { <-s.done }

// Serve starts the telemetry listener on addr (e.g. "localhost:9090";
// ":0" picks a free port) and returns the running server plus the bound
// address. The caller owns shutdown: Close (or Shutdown), then Wait to
// join the serve goroutine.
func Serve(addr string, reg *Registry, tr *Tracer) (*Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &Server{
		Server: &http.Server{Handler: NewMux(reg, tr)},
		done:   make(chan struct{}),
	}
	go func() {
		defer close(srv.done)
		// Serve always returns a non-nil error once the server closes;
		// http.ErrServerClosed is the clean-shutdown case.
		_ = srv.Server.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
