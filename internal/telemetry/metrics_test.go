package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := reg.Gauge("g", "help")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %v, want 6", got)
	}
	// Re-registration returns the same series.
	if reg.Counter("c_total", "help").Value() != 3.5 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	var reg *Registry
	reg.Counter("x", "").Inc()
	reg.CounterVec("y", "", "l").With("v").Inc()
	reg.Histogram("z", "", nil).Observe(1)
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	bounds, cum, sum, total := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=0.1 captures 0.05 and 0.1 (upper-bound inclusive); le=1 adds 0.5;
	// le=10 adds 5; +Inf adds 50.
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 || total != 5 {
		t.Fatalf("cumulative = %v, total %d", cum, total)
	}
	if math.Abs(sum-55.65) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestVecSeriesIndependent(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("errs_total", "", "transport", "reason")
	v.With("isotp", "bad-sequence").Add(3)
	v.With("vwtp", "length-mismatch").Inc()
	if v.With("isotp", "bad-sequence").Value() != 3 {
		t.Fatal("labeled series not stable")
	}
	if v.With("vwtp", "length-mismatch").Value() != 1 {
		t.Fatal("second series wrong")
	}
}

func TestMismatchedReRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("dp_errs_total", "errors by kind", "kind").With(`with"quote`).Add(2)
	reg.Gauge("dp_up", "").Set(1)
	h := reg.Histogram("dp_lat_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(3)

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dp_errs_total errors by kind",
		"# TYPE dp_errs_total counter",
		"dp_errs_total{kind=\"with\\\"quote\"} 2",
		"# TYPE dp_lat_seconds histogram",
		`dp_lat_seconds_bucket{le="0.5"} 1`,
		`dp_lat_seconds_bucket{le="1"} 1`,
		`dp_lat_seconds_bucket{le="+Inf"} 2`,
		"dp_lat_seconds_sum 3.2",
		"dp_lat_seconds_count 2",
		"# TYPE dp_up gauge",
		"dp_up 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "dp_errs_total") > strings.Index(out, "dp_up") {
		t.Error("families not sorted")
	}
}

// Two registries populated in different orders must dump byte-identically
// — the property the pipeline's determinism test builds on.
func TestExpositionDeterministicAcrossInsertionOrder(t *testing.T) {
	build := func(flip bool) *Registry {
		reg := NewRegistry()
		v := reg.CounterVec("a_total", "h", "k")
		if flip {
			v.With("y").Add(2)
			v.With("x").Inc()
			reg.Gauge("b", "h").Set(5)
		} else {
			reg.Gauge("b", "h").Set(5)
			v.With("x").Inc()
			v.With("y").Add(2)
		}
		return reg
	}
	var p1, p2, j1, j2 bytes.Buffer
	if err := build(false).WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Errorf("prometheus output order-dependent:\n%s\nvs\n%s", p1.String(), p2.String())
	}
	if err := build(false).WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Errorf("JSON output order-dependent:\n%s\nvs\n%s", j1.String(), j2.String())
	}
}

func TestJSONDumpShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("n_total", "things").Add(7)
	reg.Histogram("d_seconds", "", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "d_seconds" || doc.Metrics[0].Kind != "histogram" {
		t.Fatalf("first family = %+v", doc.Metrics[0])
	}
	hist := doc.Metrics[0].Series[0]
	if hist.Count == nil || *hist.Count != 1 || len(hist.Buckets) != 2 {
		t.Fatalf("histogram series = %+v", hist)
	}
	if doc.Metrics[1].Series[0].Value == nil || *doc.Metrics[1].Series[0].Value != 7 {
		t.Fatalf("counter series = %+v", doc.Metrics[1].Series[0])
	}
}

// Metric updates must be safe under heavy concurrency (run with -race).
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	v := reg.CounterVec("v_total", "", "w")
	h := reg.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With(lbl).Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	var sum float64
	for _, l := range []string{"a", "b", "c", "d"} {
		sum += v.With(l).Value()
	}
	if sum != 8000 {
		t.Fatalf("vec total = %v, want 8000", sum)
	}
}
