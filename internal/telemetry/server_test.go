package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dpreverser_runs_total", "runs").Inc()
	tr := NewTracer(NewManualClock(0))
	tr.Start("run").End()

	srv := httptest.NewServer(NewMux(reg, tr))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "# TYPE dpreverser_runs_total counter") ||
		!strings.Contains(body, "dpreverser_runs_total 1") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	code, body, _ = get("/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var doc struct {
		Metrics []JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "dpreverser_runs_total" {
		t.Fatalf("/metrics.json = %+v", doc.Metrics)
	}

	code, body, _ = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var trace struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(trace.TraceEvents) != 1 {
		t.Fatalf("/trace events = %d", len(trace.TraceEvents))
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
	if code, _, _ = get("/nope"); code != http.StatusNotFound {
		t.Fatalf("/nope status %d, want 404", code)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The serve goroutine must be joinable: Wait has to return once the
	// server is closed instead of leaking the accept loop.
	waited := make(chan struct{})
	go func() {
		srv.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("srv.Wait did not return after Close; serve goroutine leaked")
	}
}
