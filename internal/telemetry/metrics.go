package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families. It is safe for concurrent use; all
// exposition (Prometheus text, JSON) iterates a sorted snapshot, so output
// is deterministic regardless of registration or update order.
//
// Registration is idempotent: asking for an existing name with the same
// kind and label names returns the existing family, and mismatched
// re-registration panics (it is always a programming error).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed kind and label schema.
type family struct {
	name, help, kind string
	labelNames       []string
	buckets          []float64 // histogram kind only

	mu     sync.Mutex
	series map[string]any // label-value key -> *Counter/*Gauge/*Histogram
	order  []string       // insertion order of keys (sorted at exposition)
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

func (r *Registry) family(name, help, kind string, buckets []float64, labels []string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s(%v), was %s(%v)",
				name, kind, labels, f.kind, f.labelNames))
		}
		for i := range labels {
			if f.labelNames[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: metric %q re-registered with labels %v, was %v",
					name, labels, f.labelNames))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labels...),
		buckets:    buckets,
		series:     map[string]any{},
	}
	r.families[name] = f
	return f
}

// seriesKey joins label values with a separator that cannot appear
// unescaped; label values are free-form, so escape the separator.
func seriesKey(values []string) string {
	esc := make([]string, len(values))
	for i, v := range values {
		esc[i] = strings.NewReplacer(`\`, `\\`, "\x1f", `\x1f`).Replace(v)
	}
	return strings.Join(esc, "\x1f")
}

func (f *family) get(values []string, make func() any) any {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q used with %d label values, schema has %d",
			f.name, len(values), len(f.labelNames)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	// Callers are this package's own metric constructors; the closure only
	// allocates the series value, it cannot block or touch the registry.
	s := make() //dplint:allow lockhold the callback is a package-private allocation closure, not user code
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter is a monotonically increasing value. All methods are safe on a
// nil receiver (no-ops), so disabled telemetry costs one nil check.
type Counter struct {
	bits atomic.Uint64 // float64 bits
	vals []string
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative v is ignored.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	vals []string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative v decreases it).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper-bound
// inclusive, Prometheus-style cumulative at exposition) plus a sum and a
// count. Buckets are fixed at registration so aggregation across scrapes
// is sound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the +Inf overflow
	sum    float64
	total  uint64
	vals   []string
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
}

// ObserveDuration records a duration in seconds — the unit every
// *_seconds histogram in the repo uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot returns cumulative bucket counts, the sum and the total count.
func (h *Histogram) snapshot() (bounds []float64, cumulative []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return h.bounds, cumulative, h.sum, h.total
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DurationBuckets is the default latency bucket ladder (seconds): wide
// enough to cover a microsecond frame feed and a two-minute full-budget
// GP stream in one schema.
var DurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 120,
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a counter family with label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, nil, labels)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a gauge family with label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, nil, labels)}
}

// Histogram registers (or fetches) an unlabeled histogram. nil buckets
// mean DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	f := r.family(name, help, kindHistogram, buckets, nil)
	return f.get(nil, func() any { return newHistogram(f.buckets, nil) }).(*Histogram)
}

// HistogramVec registers (or fetches) a histogram family with label names.
// nil buckets mean DurationBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, buckets, labels)}
}

func newHistogram(bounds []float64, vals []string) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		vals:   vals,
	}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves (creating on first use) the series for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	vals := append([]string(nil), values...)
	return v.f.get(vals, func() any { return &Counter{vals: vals} }).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves (creating on first use) the series for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	vals := append([]string(nil), values...)
	return v.f.get(vals, func() any { return &Gauge{vals: vals} }).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves (creating on first use) the series for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	vals := append([]string(nil), values...)
	return v.f.get(vals, func() any { return newHistogram(v.f.buckets, vals) }).(*Histogram)
}

// sortedFamilies snapshots the registry's families sorted by name, each
// with its series keys sorted, so exposition is deterministic.
func (r *Registry) sortedFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns the family's series in label-value order.
func (f *family) sortedSeries() []any {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	f.mu.Unlock()
	sort.Strings(keys)
	out := make([]any, 0, len(keys))
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	return out
}
