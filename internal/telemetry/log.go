package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the repo's structured event log: slog-shaped (leveled
// records with key/value attributes) but clock-injected, so two runs
// under a frozen ManualClock emit byte-identical records. A Logger is an
// immutable value — With / Tee / WithLevel derive new loggers instead of
// mutating — which is what lets the job server hand every job a logger
// that carries the job's correlation context (tenant, job ID, shard,
// span) plus a private flight-recorder ring, while all of them share the
// process-wide stderr sink.
//
// Records render deterministically: attributes keep their declared order
// (bound attributes first, call-site attributes after), JSON is emitted
// by a hand-rolled renderer rather than a map, and RingSink.DumpJSON
// sorts records canonically so equal record multisets dump to equal
// bytes regardless of goroutine interleaving.

// Level is a log record's severity.
type Level int

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer with the wire names the JSON sink uses.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "unknown"
	}
}

// ParseLevel reads a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Int64 builds a 64-bit integer attribute (job-span IDs).
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Millis renders a duration as fixed three-decimal milliseconds — the
// one duration shape every log record and flight record uses, so grep
// and jq see consistent values.
func Millis(k string, d time.Duration) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(float64(d.Microseconds())/1e3, 'f', 3, 64)}
}

// Record is one structured log event. Attrs hold the logger's bound
// correlation attributes first, then the call site's, in declared order.
type Record struct {
	// At is the injected-clock instant of the record.
	At time.Duration
	// Level is the record severity.
	Level Level
	// Msg is the stable event name ("job-start", "stage-done", ...).
	Msg string
	// Attrs are the key/value annotations, correlation context included.
	Attrs []Attr
}

// appendJSON renders the record as a single JSON object. Keys appear in
// a fixed order and attributes keep their declared order (duplicates are
// emitted as-is), so the bytes are a pure function of the record.
func (r Record) appendJSON(b []byte) []byte {
	b = append(b, `{"at_us":`...)
	b = strconv.AppendInt(b, r.At.Microseconds(), 10)
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, r.Level.String())
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, r.Msg)
	for _, a := range r.Attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		b = strconv.AppendQuote(b, a.Value)
	}
	return append(b, '}')
}

// MarshalJSON implements json.Marshaler with the deterministic renderer,
// so flight records and JSON dumps embed records byte-stably.
func (r Record) MarshalJSON() ([]byte, error) { return r.appendJSON(nil), nil }

// UnmarshalJSON implements json.Unmarshaler for Level from its wire name.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	lv, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = lv
	return nil
}

// UnmarshalJSON parses the wire shape appendJSON emits, preserving
// attribute order, so API clients (flight records, dptop) round-trip
// records losslessly.
func (r *Record) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return fmt.Errorf("telemetry: log record must be a JSON object")
	}
	*r = Record{}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("telemetry: log record key is not a string")
		}
		switch key {
		case "at_us":
			var us int64
			if err := dec.Decode(&us); err != nil {
				return fmt.Errorf("telemetry: log record at_us: %w", err)
			}
			r.At = time.Duration(us) * time.Microsecond
		case "level":
			var lv Level
			if err := dec.Decode(&lv); err != nil {
				return err
			}
			r.Level = lv
		case "msg":
			if err := dec.Decode(&r.Msg); err != nil {
				return fmt.Errorf("telemetry: log record msg: %w", err)
			}
		default:
			var v string
			if err := dec.Decode(&v); err != nil {
				return fmt.Errorf("telemetry: log record attr %q: %w", key, err)
			}
			r.Attrs = append(r.Attrs, Attr{Key: key, Value: v})
		}
	}
	// Consume the closing brace.
	_, err = dec.Token()
	return err
}

// Text renders the record in the human-readable stderr shape:
// [seconds] LEVEL msg key=value ...
func (r Record) Text() string {
	b := make([]byte, 0, 64)
	b = append(b, '[')
	b = strconv.AppendFloat(b, r.At.Seconds(), 'f', 6, 64)
	b = append(b, "] "...)
	b = append(b, r.Level.String()...)
	b = append(b, ' ')
	b = append(b, r.Msg...)
	for _, a := range r.Attrs {
		b = append(b, ' ')
		b = append(b, a.Key...)
		b = append(b, '=')
		if needsQuote(a.Value) {
			b = strconv.AppendQuote(b, a.Value)
		} else {
			b = append(b, a.Value...)
		}
	}
	return string(b)
}

// needsQuote reports whether a text-format value must be quoted.
func needsQuote(v string) bool {
	if v == "" {
		return true
	}
	for i := 0; i < len(v); i++ {
		if v[i] <= ' ' || v[i] == '"' || v[i] == '=' {
			return true
		}
	}
	return false
}

// compareRecords orders records canonically: by instant, then severity,
// then message, then rendered attributes. Equal multisets of records
// sort into identical sequences, which is what makes ring dumps
// byte-identical across worker counts.
func compareRecords(a, b Record) int {
	switch {
	case a.At != b.At:
		if a.At < b.At {
			return -1
		}
		return 1
	case a.Level != b.Level:
		if a.Level < b.Level {
			return -1
		}
		return 1
	case a.Msg != b.Msg:
		if a.Msg < b.Msg {
			return -1
		}
		return 1
	}
	aj, bj := string(a.appendJSON(nil)), string(b.appendJSON(nil))
	switch {
	case aj < bj:
		return -1
	case aj > bj:
		return 1
	default:
		return 0
	}
}

// Sink receives finished records. Implementations must be safe for
// concurrent Emit calls; the Logger does not serialise them.
type Sink interface {
	Emit(Record)
}

// WriterSink writes one line per record to an io.Writer, in text or JSON
// form. A mutex keeps concurrent records on separate lines.
type WriterSink struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
}

// NewTextSink returns a sink emitting the human-readable line format.
func NewTextSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// NewJSONSink returns a sink emitting one JSON object per line.
func NewJSONSink(w io.Writer) *WriterSink { return &WriterSink{w: w, json: true} }

// Emit implements Sink.
func (s *WriterSink) Emit(r Record) {
	if s == nil {
		return
	}
	var line []byte
	if s.json {
		line = append(r.appendJSON(nil), '\n')
	} else {
		line = append([]byte(r.Text()), '\n')
	}
	s.mu.Lock()
	s.w.Write(line) //nolint:errcheck // logging best-effort; nothing to do about a dead writer
	s.mu.Unlock()
}

// RingSink retains the most recent records in a fixed-size ring — the
// flight recorder's storage. Overflow evicts the oldest record and
// counts it, so a dump always says how much history it lost.
type RingSink struct {
	mu      sync.Mutex
	cap     int
	recs    []Record
	start   int // index of the oldest record
	dropped uint64
}

// DefaultRingCapacity sizes a flight-recorder ring when the caller does
// not choose one.
const DefaultRingCapacity = 256

// NewRingSink returns a ring retaining the last capacity records
// (DefaultRingCapacity when capacity < 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = DefaultRingCapacity
	}
	return &RingSink{cap: capacity}
}

// Emit implements Sink: append, evicting the oldest record when full.
func (s *RingSink) Emit(r Record) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.recs) < s.cap {
		s.recs = append(s.recs, r)
	} else {
		s.recs[s.start] = r
		s.start = (s.start + 1) % s.cap
		s.dropped++
	}
	s.mu.Unlock()
}

// Snapshot returns the retained records in arrival order (oldest first)
// plus the count of records evicted by overflow.
func (s *RingSink) Snapshot() ([]Record, uint64) {
	if s == nil {
		return nil, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for i := 0; i < len(s.recs); i++ {
		out = append(out, s.recs[(s.start+i)%len(s.recs)])
	}
	return out, s.dropped
}

// DumpJSON writes the retained records as one JSON object per line, in
// canonical order (instant, severity, message, attributes) rather than
// arrival order — so two rings holding the same record multiset dump
// byte-identically even when goroutine scheduling interleaved their
// arrivals differently.
func (s *RingSink) DumpJSON(w io.Writer) error {
	recs, _ := s.Snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return compareRecords(recs[i], recs[j]) < 0 })
	var b []byte
	for _, r := range recs {
		b = append(r.appendJSON(b), '\n')
	}
	_, err := w.Write(b)
	return err
}

// Logger emits leveled, attributed records to its sinks, stamping each
// with the injected clock. Loggers are immutable values: With binds
// correlation attributes, Tee adds sinks, WithLevel changes the
// threshold — each returns a derived logger sharing everything else.
// All methods are nil-receiver safe no-ops.
type Logger struct {
	clock Clock
	min   Level
	sinks []Sink
	attrs []Attr
}

// NewLogger builds a logger reading time from clock (nil = wall clock)
// and writing to the given sinks, at LevelInfo. A logger with no sinks
// is still useful: Tee later attaches a flight-recorder ring.
func NewLogger(clock Clock, sinks ...Sink) *Logger {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Logger{clock: clock, min: LevelInfo, sinks: sinks}
}

// With returns a logger whose every record carries the given attributes
// (before any call-site attributes) — the correlation-context primitive.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	d := *l
	// Copy-on-write: the parent's slice is shared by siblings, so bind into
	// a fresh slice.
	d.attrs = append(append(make([]Attr, 0, len(l.attrs)+len(attrs)), l.attrs...), attrs...)
	return &d
}

// Tee returns a logger that additionally writes to the given sinks.
func (l *Logger) Tee(sinks ...Sink) *Logger {
	if l == nil || len(sinks) == 0 {
		return l
	}
	d := *l
	d.sinks = append(append(make([]Sink, 0, len(l.sinks)+len(sinks)), l.sinks...), sinks...)
	return &d
}

// WithLevel returns a logger with the given minimum level.
func (l *Logger) WithLevel(min Level) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.min = min
	return &d
}

// Log emits one record at the given level.
func (l *Logger) Log(level Level, msg string, attrs ...Attr) {
	if l == nil || level < l.min || len(l.sinks) == 0 {
		return
	}
	r := Record{At: l.clock.Now(), Level: level, Msg: msg}
	r.Attrs = append(append(make([]Attr, 0, len(l.attrs)+len(attrs)), l.attrs...), attrs...)
	for _, s := range l.sinks {
		s.Emit(r)
	}
}

// Debug emits a LevelDebug record.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LevelDebug, msg, attrs...) }

// Info emits a LevelInfo record.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(LevelInfo, msg, attrs...) }

// Warn emits a LevelWarn record.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(LevelWarn, msg, attrs...) }

// Error emits a LevelError record.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LevelError, msg, attrs...) }
