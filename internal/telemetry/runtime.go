package telemetry

import "runtime"

// RuntimeMetrics exposes Go runtime health as gauges, sampled on demand
// (each scrape or status render) rather than by a background goroutine —
// there is nothing to leak and nothing for goroutinelifecycle to flag.

// Runtime metric names, exported for tests and the CI smoke check.
const (
	MetricRuntimeGoroutines   = "dpreverser_runtime_goroutines"
	MetricRuntimeHeapAlloc    = "dpreverser_runtime_heap_alloc_bytes"
	MetricRuntimeHeapObjects  = "dpreverser_runtime_heap_objects"
	MetricRuntimeGCPauseTotal = "dpreverser_runtime_gc_pause_seconds_total"
	MetricRuntimeGCCycles     = "dpreverser_runtime_gc_cycles_total"
)

// RuntimeMetrics is the sampled runtime gauge set. Methods are nil-safe.
type RuntimeMetrics struct {
	goroutines  *Gauge
	heapAlloc   *Gauge
	heapObjects *Gauge
	gcPause     *Gauge
	gcCycles    *Gauge
}

// RuntimeSample is one point-in-time reading, reused by /debug/status.
type RuntimeSample struct {
	Goroutines  int     `json:"goroutines"`
	HeapAlloc   uint64  `json:"heap_alloc_bytes"`
	HeapObjects uint64  `json:"heap_objects"`
	GCPauseSec  float64 `json:"gc_pause_seconds_total"`
	GCCycles    uint32  `json:"gc_cycles_total"`
}

// NewRuntimeMetrics registers the runtime gauge family set on reg.
func NewRuntimeMetrics(reg *Registry) *RuntimeMetrics {
	m := &RuntimeMetrics{}
	if reg == nil {
		return m
	}
	m.goroutines = reg.Gauge(MetricRuntimeGoroutines, "live goroutines")
	m.heapAlloc = reg.Gauge(MetricRuntimeHeapAlloc, "bytes of allocated heap objects")
	m.heapObjects = reg.Gauge(MetricRuntimeHeapObjects, "allocated heap objects")
	m.gcPause = reg.Gauge(MetricRuntimeGCPauseTotal, "cumulative GC stop-the-world pause seconds")
	m.gcCycles = reg.Gauge(MetricRuntimeGCCycles, "completed GC cycles")
	return m
}

// Sample reads the runtime and refreshes the gauges, returning the
// reading for direct rendering.
func (m *RuntimeMetrics) Sample() RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		Goroutines:  runtime.NumGoroutine(),
		HeapAlloc:   ms.HeapAlloc,
		HeapObjects: ms.HeapObjects,
		GCPauseSec:  float64(ms.PauseTotalNs) / 1e9,
		GCCycles:    ms.NumGC,
	}
	if m == nil {
		return s
	}
	m.goroutines.Set(float64(s.Goroutines))
	m.heapAlloc.Set(float64(s.HeapAlloc))
	m.heapObjects.Set(float64(s.HeapObjects))
	m.gcPause.Set(s.GCPauseSec)
	m.gcCycles.Set(float64(s.GCCycles))
	return s
}
