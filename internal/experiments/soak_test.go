package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dpreverser/internal/vehicle"
)

// TestFaultSoakDifferential is the resilience acceptance check: the same
// car is reversed from a clean capture and from a fault-injected one
// (the default spec: dropped, bit-flipped frames and OCR digit errors).
// The faulted run must complete best-effort, attribute its damage on
// Result.Degraded, and still recover at least 80% of the formulas the
// clean run found — and be byte-deterministic at any parallelism.
func TestFaultSoakDifferential(t *testing.T) {
	p, ok := vehicle.ProfileByCar("Car M")
	if !ok {
		t.Fatal("Car M missing from the fleet")
	}
	base := Options{Quick: true, Seed: 1, Parallelism: 4}

	clean, err := RunCar(p, base)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Vehicle.Close()

	faulted := base
	faulted.Faults = "default"
	faulted.FaultSeed = 1
	fr, err := RunCar(p, faulted)
	if err != nil {
		t.Fatalf("best-effort faulted run failed outright: %v", err)
	}
	defer fr.Vehicle.Close()

	if fr.Faults.Total() == 0 {
		t.Fatal("default spec injected no faults")
	}
	if len(fr.Result.Degraded) == 0 {
		t.Fatal("faulted run reported no degradation")
	}
	// Every CAN ID that saw reassembly errors must be covered by the
	// degradation report.
	for id, n := range fr.Result.Stats.ErrorsByID {
		if n == 0 {
			continue
		}
		covered := false
		for _, se := range fr.Result.Degraded {
			if se.Stage != "assemble" {
				continue
			}
			if se.Key.RespID == id || strings.Contains(se.Detail, fmt.Sprintf("%03X", id)) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("damaged ID %03X missing from the degradation report", id)
		}
	}

	// Formula recovery: at least 80% of the clean run's formulas must
	// survive the default fault load.
	cleanFormulas := map[string]bool{}
	for _, e := range clean.Result.ESVs {
		if e.Formula != nil {
			cleanFormulas[e.Key.String()] = true
		}
	}
	if len(cleanFormulas) == 0 {
		t.Fatal("clean run recovered no formulas; soak has nothing to compare")
	}
	recovered := 0
	for _, e := range fr.Result.ESVs {
		if e.Formula != nil && cleanFormulas[e.Key.String()] {
			recovered++
		}
	}
	if 5*recovered < 4*len(cleanFormulas) {
		t.Fatalf("faulted run recovered %d of %d clean formulas (< 80%%)", recovered, len(cleanFormulas))
	}

	// Determinism: the faulted pipeline is byte-identical at any
	// parallelism, injection included.
	serial := faulted
	serial.Parallelism = 1
	wide := faulted
	wide.Parallelism = 8
	r1, err := RunCar(p, serial)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Vehicle.Close()
	r8, err := RunCar(p, wide)
	if err != nil {
		t.Fatal(err)
	}
	defer r8.Vehicle.Close()
	j1, err := json.Marshal(r1.Result)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(r8.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("faulted result differs between Parallelism 1 and 8")
	}
	if r1.Faults != fr.Faults {
		t.Fatalf("fault injection not deterministic: %+v vs %+v", r1.Faults, fr.Faults)
	}
}
